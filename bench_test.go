// Package repro's root benchmark suite maps one benchmark to every table
// and figure of the paper's evaluation (see DESIGN.md's per-experiment
// index). Run with:
//
//	go test -bench=. -benchmem .
//
// Output values beyond ns/op are reported via b.ReportMetric: analytic and
// simulated communication costs, so the paper's numbers appear directly in
// benchmark output.
package repro

import (
	"io"
	"runtime"
	"testing"

	"repro/internal/adversary"
	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/experiment"
	"repro/internal/graph"
	hinetmodel "repro/internal/hinet"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/obs/recorder"
	"repro/internal/provenance"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// BenchmarkTable2 evaluates the closed-form Table 2 model at the Table 3
// point and reports the headline cells as metrics.
func BenchmarkTable2(b *testing.B) {
	var rows []analysis.Row
	for i := 0; i < b.N; i++ {
		rows = analysis.Table3()
	}
	b.ReportMetric(float64(rows[0].Cost.Comm), "kloT-comm")
	b.ReportMetric(float64(rows[1].Cost.Comm), "alg1-comm")
	b.ReportMetric(float64(rows[2].Cost.Comm), "klo1-comm")
	b.ReportMetric(float64(rows[3].Cost.Comm), "alg2-comm")
}

// BenchmarkTable3 runs the full simulated Table 3 point (all four rows,
// one seed each per iteration) and reports measured communication.
func BenchmarkTable3(b *testing.B) {
	var rows []experiment.RowResult
	for i := 0; i < b.N; i++ {
		cfg := experiment.Table3Config(1)
		var err error
		rows, err = experiment.RunPoint(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MeasuredComm, "kloT-sim-comm")
	b.ReportMetric(rows[1].MeasuredComm, "alg1-sim-comm")
	b.ReportMetric(rows[2].MeasuredComm, "klo1-sim-comm")
	b.ReportMetric(rows[3].MeasuredComm, "alg2-sim-comm")
}

// BenchmarkFig1 regenerates the Fig. 1 artefact: clustering a connected
// network into the head/member/gateway hierarchy.
func BenchmarkFig1(b *testing.B) {
	g := graph.RandomConnected(100, 220, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := cluster.Form(g, cluster.Config{})
		if len(h.Heads()) == 0 {
			b.Fatal("no heads")
		}
	}
}

// BenchmarkFig2 exercises the Definition 2-8 predicate tree (the Fig. 2
// relationships) over a generated HiNet window.
func BenchmarkFig2(b *testing.B) {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 100, Theta: 30, L: 2, T: 18, Reaffiliations: 3, ChurnEdges: 10,
	}, xrand.New(1))
	adv.At(17) // materialise one phase
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := (hinetmodel.Model{T: 18, L: 2}).CheckWindow(adv, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 runs the Fig. 3 walkthrough: one token crossing two
// clusters via a gateway under Algorithm 1.
func BenchmarkFig3(b *testing.B) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	h := ctvg.NewHierarchy(5)
	h.SetHead(0)
	h.SetHead(3)
	h.SetMember(1, 0)
	h.SetGateway(2, 0)
	h.SetMember(4, 3)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(5, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		met := sim.MustRunProtocol(d, core.Alg1{T: 8}, assign, sim.Options{
			MaxRounds: 8, StopWhenComplete: true,
		})
		if !met.Complete {
			b.Fatal("walkthrough incomplete")
		}
	}
}

// hiNet1kDynamic records the fixed-seed 1000-node HiNet instance used by
// the hot-path benchmarks: θ=50 heads, L=2 backbone, T=k+αL=20-round
// phases, 20 member re-affiliations and 2 head rotations per phase
// boundary, no per-round edge churn — so every phase is a genuine
// T-interval stable window. Recording the trace up front keeps adversary
// generation out of the measured loop; what remains is the engine's round
// hot path itself.
func hiNet1kDynamic(tb testing.TB) (ctvg.Dynamic, *token.Assignment, int, int) {
	tb.Helper()
	const (
		n     = 1000
		k     = 16
		alpha = 2
		l     = 2
		theta = 50
	)
	T := core.Theorem1T(k, alpha, l) // 20
	rounds := core.Theorem1Phases(theta, alpha) * T
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: l, T: T,
		Reaffiliations: 20, HeadChurn: 2,
	}, xrand.New(1))
	tr := ctvg.Record(adv, rounds)
	assign := token.Spread(n, k, xrand.New(2))
	return tr, assign, T, rounds
}

// uncachedDynamic hides any stability knowledge of the wrapped dynamic, so
// the engine refreshes graph, hierarchy and views every round.
type uncachedDynamic struct{ ctvg.Dynamic }

func benchHiNet1k(b *testing.B, cached bool) {
	d, assign, T, rounds := hiNet1kDynamic(b)
	if !cached {
		d = uncachedDynamic{d}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		met := sim.MustRunProtocol(d, core.Alg1{T: T}, assign, sim.Options{
			MaxRounds: rounds, SizeFn: wire.Size,
		})
		if !met.Complete {
			b.Fatalf("1k-node HiNet run incomplete: %v", met)
		}
	}
}

// BenchmarkHiNet1k is the headline engine benchmark: Algorithm 1 over the
// full Theorem-1 budget on a 1000-node recorded (20, 2)-HiNet, byte
// accounting on. BENCH_PR2.json tracks its allocs/op and ns/op trajectory.
func BenchmarkHiNet1k(b *testing.B) { benchHiNet1k(b, true) }

// BenchmarkHiNet1kUncached runs the identical instance with stability
// knowledge hidden, isolating what the stability-window cache buys.
func BenchmarkHiNet1kUncached(b *testing.B) { benchHiNet1k(b, false) }

// BenchmarkHiNet1kTraced is the tracing-on counterpart of
// BenchmarkHiNet1k: the same workload with a provenance tracer attached
// and its JSONL stream serialised (to io.Discard, so disk speed stays out
// of the measurement). BENCH_PR4.json records the delta against the
// tracing-off numbers; BenchmarkHiNet1k itself must stay at the
// BENCH_PR2.json baseline since a nil tracer takes none of these paths.
func BenchmarkHiNet1kTraced(b *testing.B) {
	d, assign, T, rounds := hiNet1kDynamic(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := provenance.New(provenance.Config{Sink: io.Discard})
		met := sim.MustRunProtocol(d, core.Alg1{T: T}, assign, sim.Options{
			MaxRounds: rounds, SizeFn: wire.Size, Tracer: tr,
		})
		if !met.Complete {
			b.Fatalf("1k-node HiNet traced run incomplete: %v", met)
		}
		if err := tr.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHiNet1kTimed is the self-profiling-on counterpart of
// BenchmarkHiNet1k: the same workload with a timing sink attached (JSONL to
// io.Discard, resource samples every 32 rounds) and the per-stage wall
// totals reported as <stage>-ns/op metrics — the numbers BENCH_PR6.json
// records as stage ceilings and benchdiff enforces. BenchmarkHiNet1k itself
// must stay at the BENCH_PR2.json baseline since a nil sink takes none of
// these paths (TestTimingOffAllocParity pins that).
func BenchmarkHiNet1kTimed(b *testing.B) {
	d, assign, T, rounds := hiNet1kDynamic(b)
	var wall [sim.NumStages]int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := obs.NewTiming(obs.TimingConfig{Sink: io.Discard})
		met := sim.MustRunProtocol(d, core.Alg1{T: T}, assign, sim.Options{
			MaxRounds: rounds, SizeFn: wire.Size, Timing: tm,
		})
		if !met.Complete {
			b.Fatalf("1k-node HiNet timed run incomplete: %v", met)
		}
		if err := tm.Flush(); err != nil {
			b.Fatal(err)
		}
		for st, br := range tm.Breakdown() {
			wall[st] += br.WallNs
		}
	}
	b.StopTimer()
	for st := sim.Stage(0); st < sim.NumStages; st++ {
		b.ReportMetric(float64(wall[st])/float64(b.N), st.String()+"-ns/op")
	}
}

// BenchmarkHiNet1kArrivals is the steady-state counterpart of
// BenchmarkHiNet1k: the same 1000-node workload with a Poisson arrival
// process injecting 0.5 tokens/round over the first half of the budget and
// garbage collection reclaiming slots throughout. BENCH_PR7.json records
// its ceilings; plain BenchmarkHiNet1k must stay at the BENCH_PR2.json
// baseline since a nil Arrivals takes none of these paths.
func BenchmarkHiNet1kArrivals(b *testing.B) {
	d, assign, T, rounds := hiNet1kDynamic(b)
	var collected, peak int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr := sim.Arrivals{Rate: 0.5, Seed: 3, Stop: rounds / 2}
		met := sim.MustRunProtocol(d, core.Alg1{T: T}, assign, sim.Options{
			MaxRounds: rounds, SizeFn: wire.Size, Arrivals: &arr,
		})
		if met.TokensInjected == 0 || met.TokensCollected == 0 {
			b.Fatalf("arrival run moved no tokens: %v", met)
		}
		collected += met.TokensCollected
		if p := int64(met.PeakOutstanding); p > peak {
			peak = p
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(collected)/float64(b.N), "tokens-collected")
	b.ReportMetric(float64(peak), "peak-queue")
}

// BenchmarkHiNet1kRecorded is the flight-recorder-on counterpart of
// BenchmarkHiNet1k: the same workload with the full black box attached — a
// 512-round event ring, the online health engine evaluating the Theorem 1
// pace and stall rules, and the event stream serialised (to io.Discard, so
// disk speed stays out of the measurement). BENCH_PR9.json records the
// delta against the recorder-off numbers; BenchmarkHiNet1k itself must stay
// at the BENCH_PR2.json baseline since a disabled recorder is one nil
// pointer (TestTimingOffAllocParity pins that).
func BenchmarkHiNet1kRecorded(b *testing.B) {
	d, assign, T, rounds := hiNet1kDynamic(b)
	rules, err := health.ParseRules("pace,stall>=50")
	if err != nil {
		b.Fatal(err)
	}
	var violations int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := recorder.New(recorder.Config{
			Obs: obs.Config{
				N: 1000, K: 16, PhaseLen: T,
				Sink: io.Discard, SizeFn: wire.Size,
			},
			Rules: rules, Alpha: 2,
		})
		met := sim.MustRunProtocol(d, core.Alg1{T: T}, assign, sim.Options{
			MaxRounds: rounds, SizeFn: wire.Size, Observer: rec.Observer(),
		})
		if !met.Complete {
			b.Fatalf("1k-node HiNet recorded run incomplete: %v", met)
		}
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
		if h := rec.Health(); h != nil {
			violations = h.Violations()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(violations), "slo-violations")
}

// BenchmarkHiNet10kRecorded is the 10k-scale recorder-on workload: like
// BenchmarkHiNet10k (adversary generation and trace recording inside the
// measured loop) with the flight recorder and health engine attached.
func BenchmarkHiNet10kRecorded(b *testing.B) {
	const (
		n     = 10000
		k     = 16
		alpha = 2
		l     = 2
		theta = 50
	)
	T := core.Theorem1T(k, alpha, l)
	rounds := core.Theorem1Phases(theta, alpha) * T
	rules, err := health.ParseRules("pace,stall>=50")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, L: l, T: T,
			Reaffiliations: 200, HeadChurn: 2,
		}, xrand.New(1))
		tr := ctvg.Record(adv, rounds)
		assign := token.Spread(n, k, xrand.New(2))
		rec := recorder.New(recorder.Config{
			Obs: obs.Config{
				N: n, K: k, PhaseLen: T,
				Sink: io.Discard, SizeFn: wire.Size,
			},
			Rules: rules, Alpha: alpha,
		})
		met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
			MaxRounds: rounds, SizeFn: wire.Size, Observer: rec.Observer(),
		})
		if !met.Complete {
			b.Fatalf("10k recorded run incomplete: %v", met)
		}
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// hiNet1kAllocBudget is the timing-off allocation budget of the 1k hot-path
// benchmark, unchanged since BENCH_PR2.json. Growing it means the timing
// layer (or anything else) leaked allocations into the disabled path.
const hiNet1kAllocBudget = 7913

// TestTimingOffAllocParity pins the zero-cost contract of Options.Timing:
// the exact BenchmarkHiNet1k workload, timing off, must stay at the PR 2
// allocation baseline. The timing state hangs off one pointer allocated
// only when a sink is attached, so this holds to the allocation.
func TestTimingOffAllocParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second 1k runs")
	}
	d, assign, T, rounds := hiNet1kDynamic(t)
	avg := testing.AllocsPerRun(2, func() {
		met := sim.MustRunProtocol(d, core.Alg1{T: T}, assign, sim.Options{
			MaxRounds: rounds, SizeFn: wire.Size,
		})
		if !met.Complete {
			t.Fatalf("1k-node HiNet run incomplete: %v", met)
		}
	})
	if avg > hiNet1kAllocBudget {
		t.Fatalf("timing-off 1k run allocates %.0f times, budget %d: the disabled path is no longer free",
			avg, hiNet1kAllocBudget)
	}
}

// benchHiNet10k is the order-of-magnitude scaling workload: the full
// pipeline — adversary generation, trace recording, run — on a 10000-node
// (20, 2)-HiNet with θ=50 heads and 200 re-affiliations per phase boundary.
// Unlike the 1k family, recording stays inside the measured loop: at this
// scale snapshot construction and window cloning are themselves the
// bottleneck the CSR builder and Record dedup exist to fix, so the
// benchmark must see them. Alg1 runs the full Theorem-1 budget; Alg2 (whose
// full-set broadcasts dominate) runs to completion, at several k so the
// delta-delivery A/B pairs bracket the crossover where skipping unions
// starts to pay (see BENCH_PR5.json).
func benchHiNet10k(b *testing.B, k int, alg2, noDelta bool) {
	const (
		n     = 10000
		alpha = 2
		l     = 2
		theta = 50
	)
	T := core.Theorem1T(16, alpha, l) // 20-round phases regardless of k
	rounds := core.Theorem1Phases(theta, alpha) * T
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, L: l, T: T,
			Reaffiliations: 200, HeadChurn: 2,
		}, xrand.New(1))
		tr := ctvg.Record(adv, rounds)
		assign := token.Spread(n, k, xrand.New(2))
		var met *sim.Metrics
		if alg2 {
			met = sim.MustRunProtocol(tr, core.Alg2{}, assign, sim.Options{
				MaxRounds: 400, StopWhenComplete: true, SizeFn: wire.Size,
				NoDeltaDelivery: noDelta,
			})
		} else {
			met = sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
				MaxRounds: rounds, SizeFn: wire.Size,
				NoDeltaDelivery: noDelta,
			})
		}
		if !met.Complete {
			b.Fatalf("10k run incomplete: %v", met)
		}
	}
}

// BenchmarkHiNet10k is the scaling headline: Algorithm 1 at 10× the 1k
// instance. BENCH_PR5.json tracks it against the pre-CSR engine.
func BenchmarkHiNet10k(b *testing.B) { benchHiNet10k(b, 16, false, false) }

// BenchmarkHiNet10kAlg2 runs Algorithm 2 to completion on the same
// instance: the full-set-broadcast workload where delta-aware delivery
// pays.
func BenchmarkHiNet10kAlg2(b *testing.B) { benchHiNet10k(b, 16, true, false) }

// BenchmarkHiNet10kAlg2K256 is the k-scaling variant (k=256 tokens, 4
// bitset words per payload) of the Alg2 workload.
func BenchmarkHiNet10kAlg2K256(b *testing.B) { benchHiNet10k(b, 256, true, false) }

// BenchmarkHiNet10kAlg2NoDelta is the A/B switch: identical to
// BenchmarkHiNet10kAlg2 but with delta-aware delivery disabled
// (Options.NoDeltaDelivery, `hinetbench -nodelta`). Results are identical
// by TestDeltaDeliveryEquivalence; the ns/op gap is what the version stamps
// buy — or cost: at k=16 a payload union is one word, cheaper than the
// per-sender map lookup, so the naive path WINS here. The k=4096 pair below
// shows the other side of the crossover.
func BenchmarkHiNet10kAlg2NoDelta(b *testing.B) { benchHiNet10k(b, 16, true, true) }

// BenchmarkHiNet10kAlg2K4096 / NoDelta are the wide-payload A/B pair: at
// k=4096 every elided union saves a 64-word scan, which outweighs the skip
// bookkeeping.
func BenchmarkHiNet10kAlg2K4096(b *testing.B)        { benchHiNet10k(b, 4096, true, false) }
func BenchmarkHiNet10kAlg2K4096NoDelta(b *testing.B) { benchHiNet10k(b, 4096, true, true) }

// benchHiNetStream runs the delta-streamed pipeline end to end at scale:
// the engine pulls rounds straight from a ForwardOnly HiNet adversary, so
// phases materialise copy-on-write as the run advances and everything
// behind the working window is discarded. No snapshot list is ever built —
// retained memory is O(n + window), independent of how many rounds run,
// which the live-MB metric (live heap after the run, trace still
// referenced) makes visible next to ns/op.
func benchHiNetStream(b *testing.B, n, k, rounds int, alg2 bool) {
	const (
		alpha = 2
		l     = 2
		theta = 50
	)
	T := core.Theorem1T(16, alpha, l) // 20-round phases, as in the 10k family
	reaff := n / 50
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, L: l, T: T,
			Reaffiliations: reaff, HeadChurn: 2,
		}, xrand.New(1)).ForwardOnly()
		assign := token.Spread(n, k, xrand.New(2))
		var met *sim.Metrics
		if alg2 {
			met = sim.MustRunProtocol(adv, core.Alg2{}, assign, sim.Options{
				MaxRounds: rounds, StopWhenComplete: true, SizeFn: wire.Size,
			})
		} else {
			met = sim.MustRunProtocol(adv, core.Alg1{T: T}, assign, sim.Options{
				MaxRounds: rounds, SizeFn: wire.Size,
			})
		}
		if !met.Complete {
			b.Fatalf("streamed run incomplete: %v", met)
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.ReportMetric(float64(ms.HeapAlloc)/1e6, "live-MB")
	}
}

// BenchmarkHiNet100k is the tentpole scale point: Algorithm 1 on a
// 100k-node (20, 2)-HiNet over the full Theorem 1 budget (26 phases x 20
// rounds), streamed via deltas. ns/op should sit roughly 10x the
// BenchmarkHiNet10k reference (time linear in n); live-MB should match
// BenchmarkHiNet100kLongTrace (memory independent of trace length).
func BenchmarkHiNet100k(b *testing.B) {
	T := core.Theorem1T(16, 2, 2)
	rounds := core.Theorem1Phases(50, 2) * T
	benchHiNetStream(b, 100_000, 16, rounds, false)
}

// BenchmarkHiNet100kLongTrace doubles the round budget at the same point:
// ns/op roughly doubles, live-MB must stay flat — the O(changes)-storage
// claim in one A/B pair.
func BenchmarkHiNet100kLongTrace(b *testing.B) {
	T := core.Theorem1T(16, 2, 2)
	rounds := 2 * core.Theorem1Phases(50, 2) * T
	benchHiNetStream(b, 100_000, 16, rounds, false)
}

// BenchmarkHiNet100kAlg2 runs Algorithm 2 to completion at 100k: per-round
// communication is Θ(n) relays regardless of n's flat neighborhoods, so
// completion cost scales like n · completion-rounds.
func BenchmarkHiNet100kAlg2(b *testing.B) {
	benchHiNetStream(b, 100_000, 16, 400, true)
}

// BenchmarkHiNet10kStream is the same streamed pipeline at 10k — the base
// point of the 10k -> 100k linearity comparison, on the identical path.
func BenchmarkHiNet10kStream(b *testing.B) {
	T := core.Theorem1T(16, 2, 2)
	rounds := core.Theorem1Phases(50, 2) * T
	benchHiNetStream(b, 10_000, 16, rounds, false)
}

// BenchmarkHiNet10kTimed is the timing-on variant of BenchmarkHiNet10k —
// the scale where per-stage attribution starts to matter (snapshot
// construction and delivery dominate differently than at 1k). Per-stage
// wall totals are reported as <stage>-ns/op; note the measured loop
// includes adversary generation and trace recording, which the engine's
// stages do not cover, so the stage metrics sum below ns/op.
func BenchmarkHiNet10kTimed(b *testing.B) {
	const (
		n     = 10000
		k     = 16
		alpha = 2
		l     = 2
		theta = 50
	)
	T := core.Theorem1T(k, alpha, l)
	rounds := core.Theorem1Phases(theta, alpha) * T
	var wall [sim.NumStages]int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, L: l, T: T,
			Reaffiliations: 200, HeadChurn: 2,
		}, xrand.New(1))
		tr := ctvg.Record(adv, rounds)
		assign := token.Spread(n, k, xrand.New(2))
		tm := obs.NewTiming(obs.TimingConfig{Sink: io.Discard})
		met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
			MaxRounds: rounds, SizeFn: wire.Size, Timing: tm,
		})
		if !met.Complete {
			b.Fatalf("10k timed run incomplete: %v", met)
		}
		if err := tm.Flush(); err != nil {
			b.Fatal(err)
		}
		for st, br := range tm.Breakdown() {
			wall[st] += br.WallNs
		}
	}
	b.StopTimer()
	for st := sim.Stage(0); st < sim.NumStages; st++ {
		b.ReportMetric(float64(wall[st])/float64(b.N), st.String()+"-ns/op")
	}
}

// BenchmarkSweepN0 measures one non-headline sweep point (n0=40) per
// iteration; the full sweep is produced by `hinetbench -sweep n0`.
func BenchmarkSweepN0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SweepN0([]int{40}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepK measures the k=4 sweep point per iteration.
func BenchmarkSweepK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SweepK([]int{4}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepNR measures the nr=5 sweep point per iteration.
func BenchmarkSweepNR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SweepNR([]int{5}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchmarkHarnessSanity keeps the benchmark inputs honest under plain
// `go test`: the Table 3 simulation completes on every row.
func TestBenchmarkHarnessSanity(t *testing.T) {
	rows, err := experiment.RunPoint(experiment.Table3Config(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Completed != r.Seeds {
			t.Fatalf("%s incomplete in harness", r.Model)
		}
	}
}
