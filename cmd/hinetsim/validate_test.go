package main

import (
	"math"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name     string
		drop     float64
		arrival  float64
		stall    int
		stallSet bool
		wantErr  string // substring, "" = valid
	}{
		{name: "all defaults", wantErr: ""},
		{name: "valid drop", drop: 0.05, wantErr: ""},
		{name: "drop at one", drop: 1, wantErr: ""},
		{name: "negative drop", drop: -0.1, wantErr: "-drop"},
		{name: "drop above one", drop: 1.5, wantErr: "-drop"},
		{name: "NaN drop", drop: math.NaN(), wantErr: "-drop"},
		{name: "valid arrival", arrival: 0.5, wantErr: ""},
		{name: "negative arrival", arrival: -2, wantErr: "-arrival"},
		{name: "NaN arrival", arrival: math.NaN(), wantErr: "-arrival"},
		{name: "valid stall window", stall: 50, stallSet: true, wantErr: ""},
		{name: "default stall off", stall: 0, stallSet: false, wantErr: ""},
		{name: "explicit zero stall window", stall: 0, stallSet: true, wantErr: "-stall-window"},
		{name: "negative stall window", stall: -3, stallSet: true, wantErr: "-stall-window"},
		{name: "negative stall window unset", stall: -3, stallSet: false, wantErr: "-stall-window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.drop, tc.arrival, tc.stall, tc.stallSet)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
