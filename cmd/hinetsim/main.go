// Command hinetsim runs a single dissemination scenario and prints its
// metrics; the fig1 and fig3 scenarios regenerate the paper's illustrative
// figures in text form.
//
// Usage:
//
//	hinetsim -scenario fig1                 # Fig. 1: an example clustered network
//	hinetsim -scenario fig3                 # Fig. 3: Algorithm 1 token-flow walkthrough
//	hinetsim -scenario hinet  [-n -k ...]   # Algorithm 1 on a (T, L)-HiNet
//	hinetsim -scenario onel   [-n -k ...]   # Algorithm 2 on a (1, L)-HiNet
//	hinetsim -scenario mobility [-n -k ...] # Algorithm 2 on random waypoint mobility
//	hinetsim -scenario emdg     [-n -k ...] # Algorithm 2 on a clustered edge-Markovian graph
//	hinetsim -scenario coded    [-n -k ...] # Haeupler-Karger network coding vs flooding
//	hinetsim -scenario multihop [-n -k ...] # Algorithm 1 on d-hop (multi-hop) clusters
//
// Fault injection applies to every simulating scenario:
//
//	-drop 0.05                  # i.i.d. 5% per-delivery loss
//	-burst 0.05,0.3,0.9         # Gilbert–Elliott bursty loss (pGoodBad,pBadGood,dropBad)
//	-crash-heads 20,50          # every live cluster head crashes at these rounds
//	-recover-after 15           # crashed heads rejoin after 15 rounds (0 = crash-stop)
//	-failover 3                 # run the self-healing protocol variant (head-silence window)
//	-selfstab                   # emergent hierarchy: self-stabilizing clustering protocol
//	-stall-window 50            # terminate with a diagnostic after 50 zero-progress rounds
//
// Self-profiling and parallelism apply to every simulating scenario too:
//
//	-timing run.timing.jsonl    # per-round stage spans (JSONL) + breakdown table
//	-timing-sample 32           # resource-sample (heap/arena/goroutines) interval
//	-timing-normalize           # zero durations in the JSONL (determinism checks)
//	-workers 4                  # within-round parallelism (sim.Options.Workers)
//
// Steady-state traffic (sim.Options.Arrivals) applies to every simulating
// scenario whose protocol supports injection (Algorithms 1/2, flooding):
//
//	-arrival 0.5                # Poisson token arrivals per round (0 = off)
//	-arrival-stop 200           # arrival window end; extends the round budget
//	-arrival-on 3 -arrival-off 9 # bursty on/off traffic windows
//	-arrival-hotspot 4          # concentrate arrivals on node 4's cluster
//	-arrival-max 100            # cap total injected tokens
//
// The flight recorder and online health engine apply to every simulating
// scenario:
//
//	-record 512                 # keep the last 512 rounds in the flight-recorder ring
//	-health "pace,stall>=50"    # online SLO rules (see internal/obs/health)
//	-dump-dir dumps             # write postmortem bundles here on any anomaly
//
// With -pprof serving, the recorder also exposes live /statusz and
// /healthz pages on the same listener. Bundles are rendered with
// `hinettrace postmortem <bundle>`. SIGINT/SIGTERM end the run cleanly at
// the next round barrier: all JSONL/metrics/timing streams are flushed
// complete, and the process exits 130.
//
// Every scenario runs under runtime/pprof labels (scenario=, plus the
// engine's stage=/shard= labels when -timing is on), so CPU profiles taken
// through -pprof attribute samples by round stage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	rpprof "runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hinet"
	"repro/internal/multihop"
	"repro/internal/netcode"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/obs/recorder"
	"repro/internal/provenance"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

func main() {
	var (
		scenario = flag.String("scenario", "hinet", "fig1 | fig3 | hinet | onel | mobility | emdg | coded | multihop")
		n        = flag.Int("n", 100, "number of nodes")
		k        = flag.Int("k", 8, "number of tokens")
		theta    = flag.Int("theta", 30, "max cluster heads (θ)")
		alpha    = flag.Int("alpha", 5, "progress coefficient (α)")
		l        = flag.Int("l", 2, "head connectivity hop bound (L)")
		reaffil  = flag.Int("reaffil", 3, "member re-affiliations per phase boundary")
		churn    = flag.Int("churn", 10, "random extra edges per round")
		seed     = flag.Uint64("seed", 1, "random seed")
		metrics  = flag.String("metrics", "", "write one JSONL round event per round to this file")
		prov     = flag.String("provenance", "", "write the provenance JSONL stream into this directory")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		timing   = flag.String("timing", "", "write per-round engine stage spans (JSONL) to this file and print a breakdown")
		tsample  = flag.Int("timing-sample", 0, "rounds between timing resource samples (0 = default 32)")
		tnorm    = flag.Bool("timing-normalize", false, "zero durations/resources in the timing JSONL, keeping structure (determinism checks)")
		workers  = flag.Int("workers", 0, "within-round parallelism (0 or 1 = serial)")
		deltas   = flag.Bool("deltas", false, "record the scenario's dynamic as an O(changes) delta trace before running (hinet/onel; A/B storage check, results are identical)")

		drop         = flag.Float64("drop", 0, "i.i.d. per-delivery message loss probability")
		burst        = flag.String("burst", "", "Gilbert–Elliott bursty loss as pGoodBad,pBadGood,dropBad")
		crashHeads   = flag.String("crash-heads", "", "comma-separated rounds at which every live cluster head crashes")
		recoverAfter = flag.Int("recover-after", 0, "rounds after which crashed heads recover (0 = crash-stop)")
		failover     = flag.Int("failover", 0, "run the self-healing protocol variant with this head-silence window (0 = plain)")
		stallWindow  = flag.Int("stall-window", 0, "terminate after this many consecutive zero-progress rounds (0 = off)")
		selfstab     = flag.Bool("selfstab", false, "maintain the hierarchy with the self-stabilizing clustering protocol (emergent, rides the same faulty links) instead of the scenario's oracle")

		record    = flag.Int("record", 0, "flight recorder: keep the last N rounds in a ring for postmortem dumps (0 = off unless -health/-dump-dir)")
		healthSpc = flag.String("health", "", `online SLO rules, e.g. "pace,p99<=40,queue<=500,stall>=50" (see internal/obs/health)`)
		dumpDir   = flag.String("dump-dir", "", "write postmortem bundles to this directory on stall/pace/SLO/divergence anomalies")

		arrival = flag.Float64("arrival", 0, "steady-state mode: expected token arrivals per round (0 = off)")
		arrStop = flag.Int("arrival-stop", 0, "arrival window end round (0 = arrivals never stop)")
		arrOn   = flag.Int("arrival-on", 0, "bursty traffic: rounds on per cycle (with -arrival-off)")
		arrOff  = flag.Int("arrival-off", 0, "bursty traffic: rounds off per cycle")
		arrHot  = flag.Int("arrival-hotspot", -1, "concentrate arrivals on this node's cluster (-1 = uniform)")
		arrMax  = flag.Int("arrival-max", 0, "cap on total injected tokens (0 = unbounded)")
	)
	flag.Parse()

	stallSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "stall-window" {
			stallSet = true
		}
	})
	if err := validateFlags(*drop, *arrival, *stallWindow, stallSet); err != nil {
		fmt.Fprintln(os.Stderr, "hinetsim:", err)
		os.Exit(1)
	}

	if *pprof != "" {
		startPprof("hinetsim", *pprof)
	}
	plan, err := buildFaults(*drop, *burst, *crashHeads, *recoverAfter, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinetsim:", err)
		os.Exit(1)
	}
	arr, err := buildArrivals(*arrival, *arrStop, *arrOn, *arrOff, *arrHot, *arrMax, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinetsim:", err)
		os.Exit(1)
	}
	mi := &instr{
		path: *metrics, provDir: *prov, faults: plan, stall: *stallWindow,
		timingPath: *timing, tsample: *tsample, tnorm: *tnorm, workers: *workers,
		arr: arr, selfstab: *selfstab, deltas: *deltas,
		record: *record, healthSpec: *healthSpc, dumpDir: *dumpDir,
		scenario: *scenario, alpha: *alpha,
		fing: map[string]string{
			"scenario": *scenario,
			"n":        strconv.Itoa(*n), "k": strconv.Itoa(*k),
			"theta": strconv.Itoa(*theta), "alpha": strconv.Itoa(*alpha),
			"l": strconv.Itoa(*l), "seed": strconv.FormatUint(*seed, 10),
			"workers": strconv.Itoa(*workers),
			"drop":    strconv.FormatFloat(*drop, 'g', -1, 64),
			"burst":   *burst, "crash_heads": *crashHeads,
			"selfstab": strconv.FormatBool(*selfstab),
			"deltas":   strconv.FormatBool(*deltas),
			"arrival":  strconv.FormatFloat(*arrival, 'g', -1, 64),
		},
	}
	if *failover > 0 {
		mi.fo = &core.Failover{Window: *failover}
	}

	// SIGINT/SIGTERM end the run cleanly at the next round barrier: the
	// engine returns, the normal close path flushes every stream
	// (metrics/provenance/timing/bundles stay valid, non-truncated), and
	// the process exits 130. A second signal kills the process as usual.
	var interrupted atomic.Bool
	mi.stopFlag = &interrupted
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		interrupted.Store(true)
		signal.Stop(sigc)
	}()

	// Run the whole scenario under a scenario= pprof label so CPU profiles
	// taken through -pprof attribute samples to it; the engine layers its
	// stage=/shard= labels on top when timing is on.
	rpprof.Do(context.Background(), rpprof.Labels("scenario", *scenario), func(ctx context.Context) {
		mi.labelCtx = ctx
		switch *scenario {
		case "fig1":
			if *metrics != "" || *prov != "" {
				fmt.Fprintln(os.Stderr, "hinetsim: fig1 runs no simulation; -metrics/-provenance ignored")
			}
			err = runFig1(*seed)
		case "fig3":
			err = runFig3(mi)
		case "hinet":
			err = runHiNet(*n, *k, *theta, *alpha, *l, *reaffil, *churn, *seed, mi)
		case "onel":
			err = runOneL(*n, *k, *theta, *l, *reaffil, *churn, *seed, mi)
		case "mobility":
			err = runMobility(*n, *k, *seed, mi)
		case "emdg":
			err = runEMDG(*n, *k, *seed, mi)
		case "coded":
			err = runCoded(*n, *k, *seed, mi)
		case "multihop":
			err = runMultiHop(*n, *k, *seed, mi)
		default:
			err = fmt.Errorf("unknown scenario %q", *scenario)
		}
	})
	if err == nil {
		err = mi.close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinetsim:", err)
		os.Exit(1)
	}
	if interrupted.Load() {
		fmt.Fprintln(os.Stderr, "hinetsim: interrupted; streams flushed cleanly")
		os.Exit(130)
	}
}

// startPprof serves the standard net/http/pprof handlers in the
// background for profiling long scenario runs.
func startPprof(tool, addr string) {
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", tool, err)
		}
	}()
}

// buildFaults assembles the fault plan requested on the command line, or
// nil when every fault flag is at its zero value.
func buildFaults(drop float64, burst, crashHeads string, recoverAfter int, seed uint64) (*sim.Faults, error) {
	plan := sim.Faults{Seed: seed, DropProb: drop}
	if burst != "" {
		parts := strings.Split(burst, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("-burst wants pGoodBad,pBadGood,dropBad (got %q)", burst)
		}
		vals := make([]float64, 3)
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("-burst: %v", err)
			}
			vals[i] = v
		}
		plan.Burst = &faults.GilbertElliott{PGoodBad: vals[0], PBadGood: vals[1], DropBad: vals[2]}
	}
	if crashHeads != "" {
		for _, p := range strings.Split(crashHeads, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("-crash-heads: %v", err)
			}
			plan.HeadCrashRounds = append(plan.HeadCrashRounds, r)
		}
		plan.HeadCrashDowntime = recoverAfter
	} else if recoverAfter != 0 {
		return nil, fmt.Errorf("-recover-after needs -crash-heads")
	}
	if !plan.Active() {
		return nil, nil
	}
	return &plan, nil
}

// buildArrivals assembles the steady-state traffic process requested on the
// command line, or nil when -arrival is off.
func buildArrivals(rate float64, stop, on, off, hotspot, max int, seed uint64) (*sim.Arrivals, error) {
	if rate == 0 {
		if stop != 0 || on != 0 || off != 0 || hotspot >= 0 || max != 0 {
			return nil, fmt.Errorf("the -arrival-* flags need -arrival")
		}
		return nil, nil
	}
	arr := &sim.Arrivals{
		Rate: rate, Seed: seed, Stop: stop,
		OnRounds: on, OffRounds: off, MaxTokens: max,
	}
	if hotspot >= 0 {
		arr.Hotspot = true
		arr.HotspotNode = hotspot
	}
	return arr, nil
}

// instr wires the -metrics, -provenance and fault flags into a scenario
// run: attach decorates the engine options with a JSONL collector, a
// provenance tracer, the fault plan and the stall watchdog; close flushes
// both streams.
type instr struct {
	path string
	f    *os.File
	col  *obs.Collector

	provDir string
	pf      *os.File
	tracer  *provenance.Tracer
	// budget arms the tracer's online pace checker; set by scenarios that
	// run Algorithm 1 under a Theorem 1 schedule, before attach.
	budget *provenance.Budget

	faults *sim.Faults
	stall  int
	fo     *core.Failover
	// selfstab switches every scenario to the emergent hierarchy: the
	// self-stabilizing clustering protocol maintains the roles over the
	// same faulty links, with the convergence watchdog armed at one phase
	// length (8 rounds for per-round protocols).
	selfstab bool
	// deltas records the hinet/onel scenario dynamic into a ctvg.DeltaTrace
	// before the run — the O(changes) storage path; results are identical
	// to the live adversary (the -deltas/-nodeltas A/B pair keeps the
	// snapshot oracle reachable from the CLI).
	deltas bool
	// arr is the -arrival traffic process; attach copies it into each
	// scenario's options and stretches short round budgets to cover the
	// arrival window plus a drain allowance.
	arr *sim.Arrivals

	// -timing / -workers wiring: the engine self-instruments each round
	// stage into tm's JSONL sink; labelCtx carries the scenario= pprof
	// label into the engine so stage=/shard= labels nest under it.
	timingPath string
	tsample    int
	tnorm      bool
	workers    int
	tf         *os.File
	tm         *obs.Timing
	labelCtx   context.Context

	// Flight recorder / online health wiring (-record, -health,
	// -dump-dir): the recorder owns the metrics collector when enabled,
	// so the ring, the health rules and the JSONL sink see one stream.
	record     int
	healthSpec string
	dumpDir    string
	scenario   string
	alpha      int
	fing       map[string]string
	rec        *recorder.Recorder

	// stopFlag is flipped by the SIGINT/SIGTERM handler; attach installs
	// it as the engine's cooperative Stop hook so runs end at a round
	// barrier and every stream flushes complete.
	stopFlag *atomic.Bool
}

// recording reports whether any flight-recorder flag is set.
func (in *instr) recording() bool {
	return in.record > 0 || in.healthSpec != "" || in.dumpDir != ""
}

// alg1 returns the scenario's Algorithm 1: the self-healing failover
// variant when -failover is set, the paper's plain protocol otherwise.
func (in *instr) alg1(T int) core.Alg1 {
	if in != nil && in.fo != nil {
		return core.Alg1{T: T, Failover: in.fo}
	}
	return core.Alg1{T: T}
}

// alg2 is the Algorithm 2 counterpart of alg1.
func (in *instr) alg2() core.Alg2 {
	if in != nil && in.fo != nil {
		return core.Alg2{Failover: in.fo}
	}
	return core.Alg2{}
}

// attach opens the JSONL sink (first call only) and hooks a collector into
// opts, combining with any observer the scenario already set. It also
// applies the command-line fault plan and stall window, so every scenario
// picks them up through its one attach call.
func (in *instr) attach(opts sim.Options, n, k, phaseLen int) (sim.Options, error) {
	if in == nil {
		return opts, nil
	}
	if in.faults != nil {
		opts.Faults = in.faults
	}
	if in.arr != nil {
		a := *in.arr
		opts.Arrivals = &a
		if a.Stop > 0 {
			if min := a.Stop + 4*n; opts.MaxRounds < min {
				opts.MaxRounds = min
			}
		}
	}
	if in.stall > 0 {
		opts.StallWindow = in.stall
	}
	if in.selfstab {
		wd := phaseLen
		if wd <= 0 {
			wd = 8
		}
		opts.SelfStabilize = &sim.SelfStabilize{Watchdog: wd}
		opts.Observer = obs.Combine(opts.Observer, &sim.Observer{
			Diverged: func(r int, rep *sim.ConvergenceReport) {
				fmt.Fprintln(os.Stderr, "hinetsim: warning:", rep)
			},
		})
		// The theorem budgets assume an oracle hierarchy from round 0;
		// the emergent hierarchy spends its own rounds converging (and
		// reconverging after faults), so give the run a repair allowance.
		opts.MaxRounds *= 4
	}
	if in.workers != 0 {
		opts.Workers = in.workers
	}
	if in.timingPath != "" && in.tf == nil {
		tf, err := os.Create(in.timingPath)
		if err != nil {
			return opts, err
		}
		in.tf = tf
		in.tm = obs.NewTiming(obs.TimingConfig{
			Sink: tf, Normalize: in.tnorm, SampleEvery: in.tsample,
		})
	}
	if in.tm != nil && opts.Timing == nil {
		opts.Timing = in.tm
		opts.LabelCtx = in.labelCtx
	}
	if in.stopFlag != nil {
		stop := in.stopFlag
		opts.Stop = func(int) bool { return stop.Load() }
	}
	if in.recording() && in.rec == nil {
		rules, err := health.ParseRules(in.healthSpec)
		if err != nil {
			return opts, err
		}
		var sink io.Writer
		if in.path != "" {
			f, err := os.Create(in.path)
			if err != nil {
				return opts, err
			}
			in.f = f
			sink = f
		}
		in.rec = recorder.New(recorder.Config{
			Obs: obs.Config{
				N: n, K: k, PhaseLen: phaseLen, Sink: sink,
				SizeFn: opts.SizeFn, Arrivals: in.arr != nil,
			},
			Depth:       in.record,
			Rules:       rules,
			Alpha:       in.alpha,
			DumpDir:     in.dumpDir,
			Prefix:      in.scenario,
			Fingerprint: in.fing,
			FaultPlan:   in.faults,
		})
		in.col = in.rec.Collector()
		// Live inspection on the -pprof listener (DefaultServeMux).
		in.rec.RegisterHTTP(nil)
		opts.Observer = obs.Combine(opts.Observer, in.rec.Observer())
		if in.tm != nil {
			// Tee stage timings into the ring (and the stage-regression
			// rule) on their way to the -timing sink.
			opts.Timing = in.rec.TimingSink(in.tm)
		}
	}
	if in.provDir != "" && in.pf == nil {
		if err := os.MkdirAll(in.provDir, 0o755); err != nil {
			return opts, err
		}
		pf, err := os.Create(filepath.Join(in.provDir, "provenance.jsonl"))
		if err != nil {
			return opts, err
		}
		in.pf = pf
		in.tracer = provenance.New(provenance.Config{
			Sink:   pf,
			Budget: in.budget,
			OnPace: func(v provenance.PaceViolation) {
				fmt.Fprintln(os.Stderr, "hinetsim: warning:", v)
				if in.rec != nil {
					in.rec.Trigger("pace", v.Round)
				}
			},
		})
		opts.Tracer = in.tracer
	}
	if in.rec != nil || in.path == "" || in.f != nil {
		return opts, nil
	}
	f, err := os.Create(in.path)
	if err != nil {
		return opts, err
	}
	in.f = f
	in.col = obs.NewCollector(obs.Config{
		N: n, K: k, PhaseLen: phaseLen, Sink: f, SizeFn: opts.SizeFn,
		Arrivals: in.arr != nil,
	})
	opts.Observer = obs.Combine(opts.Observer, in.col.Observer())
	return opts, nil
}

// close flushes the collector and the provenance stream and reports where
// each went.
func (in *instr) close() error {
	if in == nil {
		return nil
	}
	if in.pf != nil {
		err := in.tracer.Flush()
		if cerr := in.pf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote provenance stream to %s\n", filepath.Join(in.provDir, "provenance.jsonl"))
		if pv := in.tracer.PaceViolations(); pv > 0 {
			fmt.Printf("pace checker: %d violation(s) — the run fell behind the Theorem 1 schedule\n", pv)
		}
	}
	if in.tf != nil {
		err := in.tm.Flush()
		if cerr := in.tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote timing series to %s\n", in.timingPath)
		if r := in.tm.Rounds(); r > 0 {
			tbl := obs.TimingTable("per-stage timing", in.tm.Breakdown(), r)
			if err := tbl.WriteText(os.Stdout); err != nil {
				return err
			}
		}
	}
	if in.rec != nil {
		err := in.rec.Close()
		if in.f != nil {
			if cerr := in.f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return err
		}
		if in.path != "" {
			fmt.Printf("wrote per-round metrics to %s\n", in.path)
		}
		if h := in.rec.Health(); h != nil {
			if h.Healthy() {
				fmt.Println("health: ok — all SLO rules held")
			} else {
				fmt.Printf("health: %d violation(s)\n", h.Violations())
				for _, s := range h.States() {
					if s.Violations > 0 {
						fmt.Printf("  rule %-12s ×%d, first at round %d, last %.2f vs %.2f\n",
							s.Rule.Kind, s.Violations, s.FirstRound, s.LastValue, s.LastLimit)
					}
				}
			}
		}
		for _, b := range in.rec.Bundles() {
			fmt.Printf("wrote postmortem bundle %s\n", b)
		}
		return nil
	}
	if in.f == nil {
		return nil
	}
	if err := in.col.Flush(); err != nil {
		in.f.Close()
		return err
	}
	if err := in.f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote per-round metrics to %s\n", in.path)
	return nil
}

// runFig1 reproduces Fig. 1: cluster a random geometric network and print
// the hierarchy (heads, members, gateways, backbone).
func runFig1(seed uint64) error {
	rng := xrand.New(seed)
	field := geom.Field{W: 60, H: 60}
	pos := make([]geom.Point, 24)
	for i := range pos {
		pos[i] = field.RandomPoint(rng)
	}
	g := geom.UnitDisk(pos, 20)
	// Patch to connectivity so the example matches the figure's connected
	// network.
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			break
		}
		g.AddEdge(comps[0][0], comps[1][0])
	}
	h := cluster.Form(g, cluster.Config{})
	fmt.Println("Fig. 1 — an example network with cluster-based hierarchy")
	fmt.Printf("nodes=%d edges=%d\n\n", g.N(), g.M())
	fmt.Print(render.Network(pos, field, h, 60, 18))
	fmt.Println()
	for _, head := range h.Heads() {
		fmt.Printf("cluster %d: head=%d members=%v\n", head, head, h.MembersOf(head))
	}
	fmt.Printf("\ngateways: %v\n", h.Gateways())
	bb := cluster.Backbone(g, h)
	fmt.Printf("backbone edges: %v\n", bb.Edges())
	if L, ok := hinet.HeadLinkage(bb, h.Heads()); ok {
		fmt.Printf("head linkage L = %d (paper: L <= 3 for 1-hop clusterings)\n", L)
	}
	return h.Validate(g)
}

// runFig3 reproduces Fig. 3's walkthrough: token t travels member u ->
// head v -> gateway -> head w -> members, printed round by round.
func runFig3(mi *instr) error {
	// u=1 member of head v=0; gateway 2; head w=3 with member 4.
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	h := ctvg.NewHierarchy(5)
	h.SetHead(0)
	h.SetHead(3)
	h.SetMember(1, 0)
	h.SetGateway(2, 0)
	h.SetMember(4, 3)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(5, 1, 1)

	fmt.Println("Fig. 3 — Algorithm 1 walkthrough: token 0 starts at member node 1")
	fmt.Println("topology: member1 - head0 - gateway2 - head3 - member4")
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		role := h.Role[m.From]
		if m.To == sim.NoAddr {
			fmt.Printf("  round %d: node %d (%s) broadcasts %v\n", r, m.From, role, m.Tokens)
		} else {
			fmt.Printf("  round %d: node %d (%s) sends %v to head %d\n", r, m.From, role, m.Tokens, m.To)
		}
	}}
	opts, err := mi.attach(sim.Options{
		MaxRounds: 8, StopWhenComplete: true, Observer: obs,
	}, 5, 1, 8)
	if err != nil {
		return err
	}
	met, err := sim.RunProtocol(d, mi.alg1(8), assign, opts)
	if err != nil {
		return err
	}
	fmt.Println("result:", met)
	if !met.Complete {
		return fmt.Errorf("walkthrough did not complete")
	}
	return nil
}

func runHiNet(n, k, theta, alpha, l, reaffil, churn int, seed uint64, mi *instr) error {
	T := core.Theorem1T(k, alpha, l)
	phases := core.Theorem1Phases(theta, alpha)
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: l, T: T,
		Reaffiliations: reaffil, ChurnEdges: churn,
	}, xrand.New(seed))
	if err := (hinet.Model{T: T, L: l}).CheckValid(adv, phases); err != nil {
		return fmt.Errorf("generated network violates the model: %w", err)
	}
	assign := token.Spread(n, k, xrand.New(seed+1))
	mi.budget = &provenance.Budget{PhaseLen: T, Phases: phases, Alpha: alpha, Theta: theta}
	opts, err := mi.attach(sim.Options{
		MaxRounds: phases * T, StopWhenComplete: true,
	}, n, k, T)
	if err != nil {
		return err
	}
	var d ctvg.Dynamic = adv
	if mi.deltas {
		d = ctvg.RecordDeltas(adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, L: l, T: T,
			Reaffiliations: reaffil, ChurnEdges: churn,
		}, xrand.New(seed)), phases*T)
	}
	met, err := sim.RunProtocol(d, mi.alg1(T), assign, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1 on a (%d, %d)-HiNet (n=%d θ=%d k=%d α=%d)\n", T, l, n, theta, k, alpha)
	fmt.Printf("theorem budget: %d phases x %d rounds = %d rounds\n", phases, T, phases*T)
	fmt.Println("result:", met)
	return nil
}

func runOneL(n, k, theta, l, reaffil, churn int, seed uint64, mi *instr) error {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: l, T: 1,
		Reaffiliations: reaffil, HeadChurn: 1, ChurnEdges: churn,
	}, xrand.New(seed))
	assign := token.Spread(n, k, xrand.New(seed+1))
	opts, err := mi.attach(sim.Options{
		MaxRounds: core.Theorem2Rounds(n), StopWhenComplete: true,
	}, n, k, 1)
	if err != nil {
		return err
	}
	var d ctvg.Dynamic = adv
	if mi.deltas {
		d = ctvg.RecordDeltas(adv, core.Theorem2Rounds(n))
	}
	met, err := sim.RunProtocol(d, mi.alg2(), assign, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 2 on a (1, %d)-HiNet (n=%d θ=%d k=%d)\n", l, n, theta, k)
	fmt.Printf("theorem budget: n-1 = %d rounds\n", core.Theorem2Rounds(n))
	fmt.Println("result:", met)
	return nil
}

func runEMDG(n, k int, seed uint64, mi *instr) error {
	adv := adversary.NewClusteredEMDG(n, 0.02, 0.11, cluster.Config{}, xrand.New(seed))
	assign := token.Spread(n, k, xrand.New(seed+1))
	opts, err := mi.attach(sim.Options{
		MaxRounds: 3 * n, StopWhenComplete: true,
	}, n, k, 0)
	if err != nil {
		return err
	}
	met, err := sim.RunProtocol(adv, mi.alg2(), assign, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 2 on a clustered edge-Markovian graph (n=%d k=%d, birth=0.02 death=0.11)\n", n, k)
	fmt.Println("result:", met)
	st := adv.Stats()
	fmt.Printf("clustering churn: %d re-affiliations, %d new heads, %d removed heads\n",
		st.Reaffiliations, st.NewHeads, st.RemovedHeads)
	return nil
}

func runCoded(n, k int, seed uint64, mi *instr) error {
	assign := token.Spread(n, k, xrand.New(seed+1))

	// The -metrics series covers the coded run (the scenario's subject).
	opts, err := mi.attach(sim.Options{MaxRounds: 6 * (n + k), StopWhenComplete: true}, n, k, 0)
	if err != nil {
		return err
	}
	cAdv := adversary.NewOneInterval(n, 0, xrand.New(seed))
	coded, err := sim.RunProtocol(sim.NewFlat(cAdv), netcode.CodedFlood{Seed: seed}, assign, opts)
	if err != nil {
		return err
	}

	fAdv := adversary.NewOneInterval(n, 0, xrand.New(seed))
	flood, err := sim.RunProtocol(sim.NewFlat(fAdv), baseline.Flood{}, assign,
		sim.Options{MaxRounds: n - 1, StopWhenComplete: true})
	if err != nil {
		return err
	}

	fmt.Printf("network coding vs flooding on 1-interval dynamics (n=%d k=%d)\n", n, k)
	fmt.Println("  coded (HK): ", coded)
	fmt.Println("  flooding:   ", flood)
	if coded.Complete && flood.Complete {
		fmt.Printf("coding sends %.1f%% of flooding's tokens at %.1fx its round count\n",
			100*float64(coded.TokensSent)/float64(flood.TokensSent),
			float64(coded.CompletionRound)/float64(flood.CompletionRound))
	}
	return nil
}

func runMultiHop(n, k int, seed uint64, mi *instr) error {
	const d = 2
	rng := xrand.New(seed)
	g := graph.RandomConnected(n, 2*n, rng)
	nw, hier, err := multihop.NewNetwork(g, d, 0, n/10, rng)
	if err != nil {
		return err
	}
	T := k + (2*d + 1) + d
	budget := (len(hier.Heads) + 2) * T
	assign := token.Spread(n, k, xrand.New(seed+1))
	opts, err := mi.attach(sim.Options{MaxRounds: budget, StopWhenComplete: true}, n, k, T)
	if err != nil {
		return err
	}
	met, err := sim.RunProtocol(nw, mi.alg1(T), assign, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1 on %d-hop clusters (n=%d k=%d, %d heads, T=%d)\n",
		d, n, k, len(hier.Heads), T)
	if L, ok := hier.MaxHeadSeparation(g); ok {
		fmt.Printf("head separation: %d hops (bound 2d+1 = %d)\n", L, 2*d+1)
	}
	fmt.Println("result:", met)
	return nil
}

func runMobility(n, k int, seed uint64, mi *instr) error {
	adv := adversary.NewMobility(adversary.MobilityConfig{
		N: n, Field: geom.Field{W: 100, H: 100}, Radius: 22,
		MinSpeed: 0.5, MaxSpeed: 2, PauseRounds: 1,
		Cluster:         cluster.Config{},
		EnsureConnected: true,
	}, xrand.New(seed))
	assign := token.Spread(n, k, xrand.New(seed+1))
	opts, err := mi.attach(sim.Options{
		MaxRounds: 6 * n, StopWhenComplete: true,
	}, n, k, 0)
	if err != nil {
		return err
	}
	met, err := sim.RunProtocol(adv, mi.alg2(), assign, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 2 on random-waypoint mobility (n=%d k=%d)\n", n, k)
	fmt.Println("result:", met)
	st := adv.Stats()
	fmt.Printf("clustering churn: %d re-affiliations, %d new heads, %d removed heads\n",
		st.Reaffiliations, st.NewHeads, st.RemovedHeads)
	return nil
}
