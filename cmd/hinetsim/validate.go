package main

import (
	"fmt"
	"math"
)

// validateFlags rejects numeric flag values that would otherwise reach the
// engine as undefined behaviour: a NaN or negative -drop probability (the
// injector's comparisons would silently never or always fire), a -drop
// above 1 (same), a NaN or negative -arrival rate (the Poisson sampler
// would spin or inject nothing while looking armed), and a zero or
// negative -stall-window given explicitly (0 only means "watchdog off"
// as the untouched default; asking for it is a misconfiguration).
// stallSet reports whether -stall-window appeared on the command line.
func validateFlags(drop, arrival float64, stallWindow int, stallSet bool) error {
	if math.IsNaN(drop) || drop < 0 || drop > 1 {
		return fmt.Errorf("-drop: loss probability must be in [0, 1] (got %v)", drop)
	}
	if math.IsNaN(arrival) || arrival < 0 {
		return fmt.Errorf("-arrival: rate must be a non-negative number of tokens per round (got %v)", arrival)
	}
	if stallWindow < 0 || (stallSet && stallWindow == 0) {
		return fmt.Errorf("-stall-window: window must be a positive round count (got %d); omit the flag to disable the watchdog", stallWindow)
	}
	return nil
}
