package main

import (
	"strings"
	"testing"
)

func TestParseRates(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    []float64
		wantErr string // substring, "" = valid
	}{
		{name: "single rate", in: "0.5", want: []float64{0.5}},
		{name: "zero rate", in: "0", want: []float64{0}},
		{name: "sweep", in: "0.25, 0.5,1,2", want: []float64{0.25, 0.5, 1, 2}},
		{name: "negative rate", in: "-1", wantErr: "non-negative"},
		{name: "negative in sweep", in: "0.5,-0.25", wantErr: "non-negative"},
		{name: "NaN rate", in: "NaN", wantErr: "non-negative"},
		{name: "garbage", in: "fast", wantErr: "-arrival"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseRates(tc.in)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error mentioning %q, got rates %v", tc.wantErr, got)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}
