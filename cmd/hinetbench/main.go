// Command hinetbench regenerates the paper's evaluation: Table 2 (the
// closed-form cost model), Table 3 (the numerical instance, side by side
// with simulation measurements), and the extension sweeps of DESIGN.md.
//
// Usage:
//
//	hinetbench -table 2            # symbolic + evaluated Table 2
//	hinetbench -table 3            # paper vs formula vs simulation
//	hinetbench -sweep n0           # communication vs network size
//	hinetbench -sweep k            # communication vs token count
//	hinetbench -sweep nr           # communication vs re-affiliation rate
//	hinetbench -all                # everything
//	hinetbench -csv                # CSV instead of aligned text
//	hinetbench -seeds 8            # Monte-Carlo replications per row
//	hinetbench -table 3 -metrics d # per-seed round-series JSONL into d/
//	hinetbench -table 3 -nocache   # A/B check: identical results, uncached engine
//	hinetbench -table 3 -nodelta   # A/B check: identical results, naive delivery
//	hinetbench -table 3 -timing d  # per-seed engine stage spans into d/, plus a
//	                               # per-stage breakdown table over all Table 3 runs
//	hinetbench -pprof :6060        # expose net/http/pprof while running
//	hinetbench -table 3 -health "pace,stall>=50" -dump-dir dumps
//	                               # arm the flight recorder: online SLO rules
//	                               # per replication, postmortem bundles into
//	                               # dumps/ on any anomaly
//
// SIGINT/SIGTERM stops in-flight replications at their next round barrier,
// flushes every sink, prints what completed, and exits 130.
//
// Steady-state load testing (continuous token arrivals with GC):
//
//	hinetbench -arrival 0.5                  # 1k-node Poisson load at 0.5 tokens/round
//	hinetbench -arrival 0.25,0.5,1,2         # sweep several offered rates
//	hinetbench -arrival 1 -arrival-n 200 -arrival-proto flood -workers 4
//	hinetbench -arrival 1 -arrival-on 3 -arrival-off 9 -arrival-sla 40
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	var (
		table    = flag.Int("table", 0, "paper table to regenerate (2 or 3)")
		sweep    = flag.String("sweep", "", "parameter sweep: n0 | k | nr | alpha | mobility")
		all      = flag.Bool("all", false, "run every table and sweep")
		seeds    = flag.Int("seeds", 8, "Monte-Carlo replications per row")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		curve    = flag.Bool("curve", false, "print per-round convergence sparklines")
		claims   = flag.Bool("claims", false, "print the reproduction ledger")
		outDir   = flag.String("out", "", "directory to additionally write each table as CSV")
		metrics  = flag.String("metrics", "", "directory for per-seed round-series JSONL (Table 3 rows)")
		noCache  = flag.Bool("nocache", false, "disable the engine's stability-window cache (A/B timing check; results are identical)")
		noDelta  = flag.Bool("nodelta", false, "disable delta-aware delivery (A/B timing check; results are identical)")
		deltas   = flag.Bool("deltas", false, "record each replication's dynamic as an O(changes) delta trace before running (A/B storage check; results are identical)")
		timing   = flag.String("timing", "", "directory for per-seed engine stage-span JSONL (Table 3 rows); prints a per-stage breakdown")
		selfstab = flag.Bool("selfstab", false, "Table 3: replace the oracle hierarchies with the self-stabilizing clustering protocol in every replication")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		healthS  = flag.String("health", "", `online SLO rules per replication, e.g. "pace,p99<=40,queue<=500" (see internal/obs/health)`)
		dumpDir  = flag.String("dump-dir", "", "write postmortem bundles to this directory on per-replication anomalies")

		arrival   = flag.String("arrival", "", "steady-state load test: offered rate(s) in tokens per round, comma-separated")
		arrN      = flag.Int("arrival-n", 1000, "load test network size")
		arrK      = flag.Int("arrival-k", 8, "load test initial batch size")
		arrRounds = flag.Int("arrival-rounds", 200, "load test measurement window in rounds")
		arrProto  = flag.String("arrival-proto", "alg2", "load test protocol: alg2 | alg1 | flood")
		arrOn     = flag.Int("arrival-on", 0, "bursty traffic: rounds on per cycle (with -arrival-off)")
		arrOff    = flag.Int("arrival-off", 0, "bursty traffic: rounds off per cycle")
		arrHot    = flag.Int("arrival-hotspot", -1, "concentrate arrivals on this node's cluster (-1 = uniform)")
		arrSLA    = flag.Int("arrival-sla", 0, "per-token latency deadline in rounds (0 = off)")
		arrSeed   = flag.Uint64("arrival-seed", 1, "load test seed (topology and traffic)")
		workers   = flag.Int("workers", 0, "engine shards for the load test (0 = serial)")
	)
	flag.Parse()

	// SIGINT/SIGTERM flips a flag every running replication polls at its
	// round barrier, so in-flight runs end cleanly with all sinks flushed
	// before the process exits 130.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		interrupted.Store(true)
		signal.Stop(sigc)
	}()
	stop := func() bool { return interrupted.Load() }

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "hinetbench: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "hinetbench: pprof listening on http://%s/debug/pprof/\n", *pprof)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	out := os.Stdout
	emitted := 0
	emit := func(tb *report.Table) {
		if *csv {
			if err := tb.WriteCSV(out); err != nil {
				fatal(err)
			}
		} else {
			if err := tb.WriteText(out); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintln(out)
		if *outDir != "" {
			emitted++
			path := filepath.Join(*outDir, fmt.Sprintf("table_%02d.csv", emitted))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	ran := false
	if *arrival != "" {
		rates, err := parseRates(*arrival)
		if err != nil {
			fatal(err)
		}
		cfg := experiment.ArrivalPoint(*arrN, *arrK)
		cfg.Proto = *arrProto
		cfg.SLA = *arrSLA
		cfg.Seed = *arrSeed
		cfg.Workers = *workers
		cfg.HealthRules = *healthS
		cfg.DumpDir = *dumpDir
		cfg.Stop = stop
		cfg.Arrivals = sim.Arrivals{
			Seed: *arrSeed, Stop: *arrRounds,
			OnRounds: *arrOn, OffRounds: *arrOff,
		}
		if *arrHot >= 0 {
			cfg.Arrivals.Hotspot = true
			cfg.Arrivals.HotspotNode = *arrHot
		}
		start := time.Now()
		results, err := experiment.ArrivalSweep(cfg, rates)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		emit(experiment.ArrivalTable(fmt.Sprintf(
			"Steady-state load — %s on n0=%d over a %d-round window (Theorem 1 pace %.3f tokens/round)",
			results[0].Proto, *arrN, *arrRounds, results[0].PaceThroughput), results))
		var collected, rounds int64
		for _, r := range results {
			collected += r.Collected
			rounds += int64(r.Rounds)
		}
		fmt.Fprintf(out, "wall clock: %d tokens through %d simulated rounds in %v (%.0f tokens/sec)\n\n",
			collected, rounds, elapsed.Round(time.Millisecond),
			float64(collected)/elapsed.Seconds())
		if *healthS != "" || *dumpDir != "" {
			var viol, bundles int
			for _, r := range results {
				viol += r.HealthViolations
				bundles += r.Bundles
			}
			emitHealthLine(out, viol, bundles, *dumpDir)
		}
		ran = true
	}
	if *all || *table == 2 {
		emit(table2())
		ran = true
	}
	if *all || *table == 3 {
		cfg := experiment.Table3Config(*seeds)
		cfg.MetricsDir = *metrics
		cfg.NoCache = *noCache
		cfg.NoDelta = *noDelta
		cfg.UseDeltaTraces = *deltas
		cfg.TimingDir = *timing
		cfg.HealthRules = *healthS
		cfg.DumpDir = *dumpDir
		cfg.Stop = stop
		if *selfstab {
			cfg.SelfStabilize = &sim.SelfStabilize{Watchdog: cfg.P.T()}
		}
		tb, rows, err := experiment.Table3Report(cfg)
		if err != nil {
			fatal(err)
		}
		emit(tb)
		emitHeadline(out, rows)
		if *healthS != "" || *dumpDir != "" {
			var viol, bundles int
			for _, r := range rows {
				viol += r.HealthViolations
				bundles += r.Bundles
			}
			emitHealthLine(out, viol, bundles, *dumpDir)
		}
		if *metrics != "" {
			fmt.Fprintf(out, "wrote per-seed round series to %s/\n\n", *metrics)
		}
		if *timing != "" {
			emit(timingBreakdown(rows))
			fmt.Fprintf(out, "wrote per-seed timing series to %s/\n\n", *timing)
		}
		ran = true
	}
	if *all || *sweep == "n0" {
		pts, err := experiment.SweepN0([]int{40, 80, 120, 200, 300, 400}, *seeds)
		if err != nil {
			fatal(err)
		}
		emit(experiment.SweepTable("Sweep A — communication vs network size (Table 3 proportions)", "n0", pts))
		ran = true
	}
	if *all || *sweep == "k" {
		pts, err := experiment.SweepK([]int{1, 2, 4, 8, 16, 32}, *seeds)
		if err != nil {
			fatal(err)
		}
		emit(experiment.SweepTable("Sweep B — communication vs token count (n0=100)", "k", pts))
		ran = true
	}
	if *all || *sweep == "nr" {
		pts, err := experiment.SweepNR([]int{0, 2, 5, 10, 15, 20}, *seeds)
		if err != nil {
			fatal(err)
		}
		emit(experiment.SweepTable("Sweep C — communication vs re-affiliation rate (n0=100)", "nr", pts))
		fmt.Fprintf(out, "analytic crossovers at this point: Alg1 stops paying at nr > %.1f; Alg2 at nr > %.0f\n\n",
			analysis.CrossoverNRT(analysis.Table3Params), analysis.CrossoverNR1(analysis.Table3Params))
		ran = true
	}
	if *all || *sweep == "alpha" {
		pts, err := experiment.SweepAlpha([]int{1, 2, 3, 5, 8, 12, 15, 30}, *seeds)
		if err != nil {
			fatal(err)
		}
		emit(experiment.AlphaTable(pts))
		ran = true
	}
	if *all || *sweep == "mobility" {
		pts, err := experiment.MobilityCampaign(60, 6, []float64{0.5, 2, 5, 10}, *seeds)
		if err != nil {
			fatal(err)
		}
		emit(experiment.MobilityTable(pts))
		ran = true
	}
	if *all || *curve {
		curves, err := experiment.ConvergenceCurves(experiment.Table3Config(1), 7, 60)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, "Convergence — fraction of (node, token) pairs delivered per round (Table 3 point, seed 7)")
		fmt.Fprint(out, experiment.RenderCurves(curves))
		fmt.Fprintln(out)
		ran = true
	}
	if *all || *claims {
		if err := experiment.VerifyCheapClaims(); err != nil {
			fatal(err)
		}
		emit(experiment.ClaimsTable())
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if interrupted.Load() {
		fmt.Fprintln(os.Stderr, "hinetbench: interrupted; partial results above, streams flushed cleanly")
		os.Exit(130)
	}
}

// emitHealthLine summarises the flight recorder's verdict over a batch of
// replications.
func emitHealthLine(w io.Writer, viol, bundles int, dumpDir string) {
	if viol == 0 {
		fmt.Fprintf(w, "health: ok — all SLO rules held in every replication\n\n")
		return
	}
	fmt.Fprintf(w, "health: %d violation(s) across replications", viol)
	if bundles > 0 {
		fmt.Fprintf(w, "; %d postmortem bundle(s) in %s", bundles, dumpDir)
	}
	fmt.Fprint(w, "\n\n")
}

// table2 renders the symbolic Table 2 next to its evaluation at the Table 3
// parameters.
func table2() *report.Table {
	tb := report.NewTable(
		"Table 2 — performance of the algorithms (evaluated at the Table 3 point)",
		"model", "time formula", "comm formula", "time", "comm",
	)
	for _, r := range analysis.Table3() {
		tb.AddRowf(r.Model, r.TimeFormula, r.CommFormula, r.Cost.Time, r.Cost.Comm)
	}
	return tb
}

// emitHeadline prints the paper's headline comparison in ratio form.
func emitHeadline(w io.Writer, rows []experiment.RowResult) {
	kloT, alg1, klo1, alg2 := rows[0], rows[1], rows[2], rows[3]
	fmt.Fprintf(w, "headline: Alg1 vs KLO-T comm saving: formula %s, simulated %s\n",
		report.Pct(1-float64(alg1.Analytic.Comm)/float64(kloT.Analytic.Comm)),
		report.Pct(1-alg1.MeasuredComm/kloT.MeasuredComm))
	fmt.Fprintf(w, "headline: Alg2 vs KLO-1 comm saving: formula %s, simulated %s\n\n",
		report.Pct(1-float64(alg2.Analytic.Comm)/float64(klo1.Analytic.Comm)),
		report.Pct(1-alg2.MeasuredComm/klo1.MeasuredComm))
}

// timingBreakdown folds the per-row stage totals collected under -timing
// into one per-stage table covering every Table 3 simulation run.
func timingBreakdown(rows []experiment.RowResult) *report.Table {
	var wall, cpu []int64
	rounds := 0
	for _, r := range rows {
		if r.StageWallNs == nil {
			continue
		}
		if wall == nil {
			wall = make([]int64, len(r.StageWallNs))
			cpu = make([]int64, len(r.StageCPUNs))
		}
		for i := range r.StageWallNs {
			wall[i] += r.StageWallNs[i]
			cpu[i] += r.StageCPUNs[i]
		}
		rounds += r.TimedRounds
	}
	return obs.TimingTable("Engine per-stage timing — all Table 3 simulation runs",
		obs.WallBreakdown(wall, cpu), rounds)
}

// parseRates splits the -arrival flag's comma-separated offered rates,
// rejecting NaN and negative values (the Poisson sampler treats them as
// undefined) with a clear error.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("-arrival: %v", err)
		}
		if math.IsNaN(v) || v < 0 {
			return nil, fmt.Errorf("-arrival: rate must be a non-negative number of tokens per round (got %v)", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hinetbench:", err)
	os.Exit(1)
}
