// Command benchdiff compares `go test -bench` output against the committed
// BENCH_*.json performance records, so a perf regression fails `make
// benchstat` instead of slipping past review.
//
//	go test -run '^$' -bench 'BenchmarkHiNet' -benchmem . | \
//	    go run ./cmd/benchdiff BENCH_PR2.json BENCH_PR4.json BENCH_PR5.json
//
// Every record's "after" section is treated as a ceiling: for each benchmark
// that appears both there and in the measured output, ns/op may exceed the
// recorded value by at most -tol (fractional; timing is noisy on shared
// machines), while bytes/op and allocs/op — which are deterministic for
// these seeded workloads — get a tighter -memtol. Records are merged in
// argument order with later files overriding earlier ones per benchmark, so
// a PR that re-records a benchmark supersedes the stale ceiling — pass the
// files oldest first. Benchmarks recorded but not run are reported and
// skipped (a shrunk -bench filter is not a regression). Multiple -count
// samples of one benchmark are reduced to their minimum before comparison.
//
// Records may carry a "stages" map of per-engine-stage ns/op ceilings (the
// timed benchmarks emit them as `<stage>-ns/op` custom metrics). Each stage
// is checked against -tol like ns/op; the verdict line also names the worst
// stage regression and the best stage improvement, so a PR that shifts time
// between stages shows where. Records without "stages" (BENCH_PR2–PR5) and
// runs without timed benchmarks are both fine: absent data is skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type metrics struct {
	Ns     float64            `json:"ns_per_op"`
	Bytes  float64            `json:"bytes_per_op"`
	Allocs float64            `json:"allocs_per_op"`
	Stages map[string]float64 `json:"stages,omitempty"`
}

// benchLine matches one benchmark result line up through ns/op; custom
// metrics (stage spans) and -benchmem columns follow in the tail, e.g.
// "BenchmarkHiNet1kTimed-4  39  29623629 ns/op  12580243 collect-ns/op  ...  363696 B/op  7967 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

// metricPair matches one "value unit" column of the tail.
var metricPair = regexp.MustCompile(`([\d.]+(?:[eE][+-]?\d+)?) (\S+)`)

func parseBench(r io.Reader) (map[string]metrics, error) {
	out := make(map[string]metrics)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		var got metrics
		got.Ns, _ = strconv.ParseFloat(m[2], 64)
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch unit := pair[2]; {
			case unit == "B/op":
				got.Bytes = v
			case unit == "allocs/op":
				got.Allocs = v
			case strings.HasSuffix(unit, "-ns/op"):
				if got.Stages == nil {
					got.Stages = make(map[string]float64)
				}
				got.Stages[strings.TrimSuffix(unit, "-ns/op")] = v
			}
		}
		// -count > 1 repeats each benchmark; keep the best sample, the
		// standard way to strip scheduling noise from a ceiling check.
		if prev, ok := out[m[1]]; !ok || got.Ns < prev.Ns {
			out[m[1]] = got
		}
	}
	return out, sc.Err()
}

// record is the subset of a BENCH_*.json file benchdiff consumes: the
// "after" section maps benchmark names to metrics (other keys, like
// "commit", simply fail the per-entry unmarshal and are skipped).
type record struct {
	After map[string]json.RawMessage `json:"after"`
}

func loadCeilings(path string) (map[string]metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]metrics)
	for name, raw := range rec.After {
		var m metrics
		if err := json.Unmarshal(raw, &m); err != nil || m.Ns == 0 {
			continue
		}
		out[name] = m
	}
	return out, nil
}

func main() {
	tol := flag.Float64("tol", 0.30, "allowed fractional ns/op regression vs the recorded ceiling")
	memtol := flag.Float64("memtol", 0.05, "allowed fractional bytes/op and allocs/op regression")
	input := flag.String("input", "-", "bench output to check ('-' = stdin)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol f] [-memtol f] [-input file] BENCH_*.json...")
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines in input")
		os.Exit(2)
	}

	ceilings := make(map[string]metrics)
	source := make(map[string]string)
	for _, path := range flag.Args() {
		ceil, err := loadCeilings(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		for name, m := range ceil {
			ceilings[name] = m
			source[name] = path
		}
	}

	names := make([]string, 0, len(ceilings))
	for name := range ceilings {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := ceilings[name]
		have, ok := got[name]
		if !ok {
			fmt.Printf("%-38s not run (skipped; record %s)\n", name, source[name])
			continue
		}
		verdict := "ok"
		switch {
		case have.Ns > want.Ns*(1+*tol):
			verdict = fmt.Sprintf("FAIL ns/op +%.0f%% over ceiling", 100*(have.Ns/want.Ns-1))
		case want.Bytes > 0 && have.Bytes > want.Bytes*(1+*memtol):
			verdict = fmt.Sprintf("FAIL B/op +%.0f%% over ceiling", 100*(have.Bytes/want.Bytes-1))
		case want.Allocs > 0 && have.Allocs > want.Allocs*(1+*memtol):
			verdict = fmt.Sprintf("FAIL allocs/op +%.0f%% over ceiling", 100*(have.Allocs/want.Allocs-1))
		}
		stageNote, stageFail := diffStages(want.Stages, have.Stages, *tol)
		if verdict == "ok" && stageFail != "" {
			verdict = stageFail
		}
		if verdict != "ok" {
			failed = true
		}
		fmt.Printf("%-38s %12.0f ns/op (x%.2f of %s)  %s\n",
			name, have.Ns, have.Ns/want.Ns, source[name], verdict)
		if stageNote != "" {
			fmt.Printf("%-38s %s\n", "", stageNote)
		}
	}
	if failed {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: PASS")
}

// diffStages compares per-stage ns/op against the recorded stage ceilings.
// It returns a note naming the worst-regressing and best-improving stages
// (empty when either side has no stage data — pre-PR6 records and untimed
// runs are not an error), and a FAIL verdict when any stage breaches tol.
func diffStages(want, have map[string]float64, tol float64) (note, fail string) {
	if len(want) == 0 || len(have) == 0 {
		return "", ""
	}
	type delta struct {
		stage string
		ratio float64
	}
	var ds []delta
	for stage, w := range want {
		h, ok := have[stage]
		if !ok || w <= 0 {
			continue
		}
		ds = append(ds, delta{stage, h / w})
	}
	if len(ds) == 0 {
		return "", ""
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].ratio != ds[j].ratio {
			return ds[i].ratio > ds[j].ratio
		}
		return ds[i].stage < ds[j].stage
	})
	worst, best := ds[0], ds[len(ds)-1]
	note = fmt.Sprintf("stages: worst %s x%.2f, best %s x%.2f (%d compared)",
		worst.stage, worst.ratio, best.stage, best.ratio, len(ds))
	if worst.ratio > 1+tol {
		fail = fmt.Sprintf("FAIL %s-ns/op +%.0f%% over ceiling", worst.stage, 100*(worst.ratio-1))
	}
	return note, fail
}
