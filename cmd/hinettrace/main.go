// Command hinettrace records, inspects and replays CTVG traces: frozen
// dynamic-network runs that make experiments forensically reproducible.
//
// Usage:
//
//	hinettrace record -out net.ctvg [-n -theta -l -t -rounds -seed]
//	hinettrace info   -in net.ctvg
//	hinettrace replay -in net.ctvg [-proto alg1|alg2] [-k -seed]
//	hinettrace probe  -in net.ctvg   # infer which (T, L)-HiNet the trace satisfies
//	hinettrace stats  -in net.ctvg [-proto alg1|alg2] [-k -t -seed -metrics out.jsonl]
//
// stats replays a recorded trace through the internal/obs layer and prints
// a phase-by-phase breakdown (uploads, relays, progress, churn, stalls) —
// the forensic view for diagnosing a run that misses the Theorem 1 bound.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/hinet"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "probe":
		err = probe(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinettrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hinettrace record|info|replay|probe|stats [flags]")
	os.Exit(2)
}

// probe infers which (T, L)-HiNet model a recorded trace satisfies.
func probe(args []string) error {
	fs := flag.NewFlagSet("probe", flag.ExitOnError)
	in := fs.String("in", "net.ctvg", "input file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := load(*in)
	if err != nil {
		return err
	}
	rep := hinet.Probe(tr, tr.Len())
	fmt.Println(rep)
	fmt.Printf("backbone fragility: %d bridge edges, %d cut relays\n",
		rep.BackboneBridges, rep.BackboneCutNodes)
	return nil
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "net.ctvg", "output file")
	n := fs.Int("n", 50, "nodes")
	theta := fs.Int("theta", 10, "max heads")
	l := fs.Int("l", 2, "hop bound L")
	t := fs.Int("t", 12, "phase length T")
	rounds := fs.Int("rounds", 60, "rounds to record")
	reaffil := fs.Int("reaffil", 3, "re-affiliations per boundary")
	churn := fs.Int("churn", 5, "churn edges per round")
	seed := fs.Uint64("seed", 1, "seed")
	full := fs.Bool("full", false, "use the uncompressed v1 format instead of delta encoding")
	if err := fs.Parse(args); err != nil {
		return err
	}
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: *n, Theta: *theta, L: *l, T: *t,
		Reaffiliations: *reaffil, ChurnEdges: *churn,
	}, xrand.New(*seed))
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	rec := ctvg.Record(adv, *rounds)
	if *full {
		err = trace.Write(f, rec)
	} else {
		err = trace.WriteDelta(f, rec)
	}
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d rounds of a (%d, %d)-HiNet on %d nodes to %s\n", *rounds, *t, *l, *n, *out)
	return f.Sync()
}

func load(path string) (*ctvg.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "net.ctvg", "input file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := load(*in)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d nodes, %d rounds\n", tr.N(), tr.Len())
	if err := tr.Validate(); err != nil {
		fmt.Printf("structural validation: FAILED: %v\n", err)
	} else {
		fmt.Println("structural validation: ok")
	}
	for r := 0; r < tr.Len(); r++ {
		g := tr.At(r)
		h := tr.HierarchyAt(r)
		fmt.Printf("round %3d: edges=%3d heads=%v gateways=%d connected=%v\n",
			r, g.M(), h.Heads(), len(h.Gateways()), g.Connected())
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "net.ctvg", "input file")
	proto := fs.String("proto", "alg1", "protocol: alg1 | alg2")
	k := fs.Int("k", 8, "tokens")
	t := fs.Int("t", 12, "Algorithm 1 phase length")
	seed := fs.Uint64("seed", 1, "token placement seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := load(*in)
	if err != nil {
		return err
	}
	var p sim.Protocol
	switch *proto {
	case "alg1":
		p = core.Alg1{T: *t}
	case "alg2":
		p = core.Alg2{}
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	assign := token.Spread(tr.N(), *k, xrand.New(*seed))
	met := sim.MustRunProtocol(tr, p, assign, sim.Options{
		MaxRounds: tr.Len(), StopWhenComplete: true,
	})
	fmt.Printf("replayed %s over %s: %v\n", p.Name(), *in, met)
	return nil
}

// stats replays a trace through the obs layer and prints the phase-by-phase
// breakdown. With -metrics it also dumps the raw per-round JSONL series.
func stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "net.ctvg", "input file")
	proto := fs.String("proto", "alg1", "protocol: alg1 | alg2")
	k := fs.Int("k", 8, "tokens")
	t := fs.Int("t", 12, "Algorithm 1 phase length")
	seed := fs.Uint64("seed", 1, "token placement seed")
	metrics := fs.String("metrics", "", "also write the per-round JSONL event stream here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := load(*in)
	if err != nil {
		return err
	}
	var p sim.Protocol
	phaseLen := *t
	switch *proto {
	case "alg1":
		p = core.Alg1{T: *t}
	case "alg2":
		p = core.Alg2{}
		phaseLen = 1 // Algorithm 2 re-elects every round; phases degenerate.
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	cfg := obs.Config{
		N: tr.N(), K: *k, PhaseLen: phaseLen,
		SizeFn: wire.Size, Keep: true,
	}
	var mf *os.File
	if *metrics != "" {
		mf, err = os.Create(*metrics)
		if err != nil {
			return err
		}
		defer mf.Close()
		cfg.Sink = mf
	}
	col := obs.NewCollector(cfg)
	assign := token.Spread(tr.N(), *k, xrand.New(*seed))
	met := sim.MustRunProtocol(tr, p, assign, sim.Options{
		MaxRounds:        tr.Len(),
		StopWhenComplete: true,
		Observer:         col.Observer(),
		SizeFn:           wire.Size,
	})
	if err := col.Flush(); err != nil {
		return err
	}
	events := col.Events()
	tb := obs.PhaseTable(fmt.Sprintf("%s over %s (n=%d k=%d)", p.Name(), *in, tr.N(), *k), obs.Summarize(events))
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("result: %v\n", met)
	if len(events) > 0 {
		last := events[len(events)-1]
		fmt.Printf("final progress: %d/%d (%.1f%%)\n", last.Delivered, last.Total, 100*last.ProgressRatio())
	}
	if mf != nil {
		fmt.Printf("wrote %d per-round events to %s\n", len(events), *metrics)
		return mf.Sync()
	}
	return nil
}
