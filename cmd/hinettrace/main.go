// Command hinettrace records, inspects and replays CTVG traces: frozen
// dynamic-network runs that make experiments forensically reproducible.
//
// Usage:
//
//	hinettrace record -out net.ctvg [-n -theta -l -t -rounds -seed]
//	hinettrace info   -in net.ctvg
//	hinettrace replay -in net.ctvg [-proto alg1|alg2] [-k -seed]
//	hinettrace probe  -in net.ctvg   # infer which (T, L)-HiNet the trace satisfies
//	hinettrace stats  -in net.ctvg [-proto alg1|alg2] [-k -t -seed -metrics out.jsonl]
//	                  [-provenance prov.jsonl] [-format text|json|csv]
//	hinettrace lineage       -log prov.jsonl -node N -token T [-format ...]
//	hinettrace critical-path -log prov.jsonl [-token T] [-format ...]
//	hinettrace redundancy    -log prov.jsonl [-top N] [-format ...]
//	hinettrace timing        -in run.timing.jsonl [-format ...]
//	hinettrace postmortem    run-r42-stall.dump [-format ...]
//
// stats replays a recorded trace through the internal/obs layer and prints
// a phase-by-phase breakdown (uploads, relays, progress, churn, stalls) —
// the forensic view for diagnosing a run that misses the Theorem 1 bound.
// It also replays the run through the provenance tracer, reporting
// first/redundant delivery totals and critical-path depth quantiles; with
// -provenance the full dissemination DAG is written as JSONL.
//
// lineage, critical-path and redundancy read that provenance JSONL back:
// lineage prints the first-delivery chain that brought one token to one
// node; critical-path prints each token's slowest acquisition route
// (member→head→gateway→head→member hop composition, rounds in flight vs
// queued at heads); redundancy prints the run's wasted-delivery account and
// its per-sender hotspots.
//
// timing reads back a per-round engine stage-span JSONL stream (written by
// hinetsim -timing, hinetbench -timing or experiment TimingDir) and prints
// the per-stage wall/CPU breakdown plus the last resource sample.
//
// postmortem reads back a flight-recorder bundle (written automatically by
// hinetsim/hinetbench -dump-dir when a stall, Theorem 1 pace violation, SLO
// miss or convergence divergence fires) and prints the diagnosis: the
// anomaly, the last healthy round, the first violated invariant, the
// progress trajectory over the recorded window, and the stage-time trend
// when timing was attached.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/hinet"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/obs/recorder"
	"repro/internal/provenance"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "probe":
		err = probe(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	case "lineage":
		err = lineage(os.Args[2:])
	case "critical-path":
		err = criticalPath(os.Args[2:])
	case "redundancy":
		err = redundancy(os.Args[2:])
	case "timing":
		err = timing(os.Args[2:])
	case "postmortem":
		err = postmortem(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinettrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hinettrace record|info|replay|probe|stats|lineage|critical-path|redundancy|timing|postmortem [flags]")
	os.Exit(2)
}

// writeTable renders tb to stdout in the requested -format.
func writeTable(tb *report.Table, format string) error {
	switch format {
	case "", "text":
		return tb.WriteText(os.Stdout)
	case "json":
		return tb.WriteJSON(os.Stdout)
	case "csv":
		return tb.WriteCSV(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q (want text, json or csv)", format)
	}
}

// auxOut returns where prose around a table belongs: stdout for text, but
// stderr for machine formats so the stdout stream stays parseable.
func auxOut(format string) *os.File {
	if format == "" || format == "text" {
		return os.Stdout
	}
	return os.Stderr
}

// probe infers which (T, L)-HiNet model a recorded trace satisfies.
func probe(args []string) error {
	fs := flag.NewFlagSet("probe", flag.ExitOnError)
	in := fs.String("in", "net.ctvg", "input file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := load(*in)
	if err != nil {
		return err
	}
	rep := hinet.Probe(tr, tr.Len())
	fmt.Println(rep)
	fmt.Printf("backbone fragility: %d bridge edges, %d cut relays\n",
		rep.BackboneBridges, rep.BackboneCutNodes)
	return nil
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "net.ctvg", "output file")
	n := fs.Int("n", 50, "nodes")
	theta := fs.Int("theta", 10, "max heads")
	l := fs.Int("l", 2, "hop bound L")
	t := fs.Int("t", 12, "phase length T")
	rounds := fs.Int("rounds", 60, "rounds to record")
	reaffil := fs.Int("reaffil", 3, "re-affiliations per boundary")
	churn := fs.Int("churn", 5, "churn edges per round")
	seed := fs.Uint64("seed", 1, "seed")
	full := fs.Bool("full", false, "use the uncompressed v1 format instead of delta encoding")
	if err := fs.Parse(args); err != nil {
		return err
	}
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: *n, Theta: *theta, L: *l, T: *t,
		Reaffiliations: *reaffil, ChurnEdges: *churn,
	}, xrand.New(*seed))
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	rec := ctvg.Record(adv, *rounds)
	if *full {
		err = trace.Write(f, rec)
	} else {
		err = trace.WriteDelta(f, rec)
	}
	if err == nil {
		err = f.Sync()
	}
	// Close errors are the last place a full disk can surface; losing them
	// here would report a truncated trace as recorded.
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d rounds of a (%d, %d)-HiNet on %d nodes to %s\n", *rounds, *t, *l, *n, *out)
	return nil
}

func load(path string) (*ctvg.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "net.ctvg", "input file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := load(*in)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d nodes, %d rounds\n", tr.N(), tr.Len())
	if err := tr.Validate(); err != nil {
		fmt.Printf("structural validation: FAILED: %v\n", err)
	} else {
		fmt.Println("structural validation: ok")
	}
	for r := 0; r < tr.Len(); r++ {
		g := tr.At(r)
		h := tr.HierarchyAt(r)
		fmt.Printf("round %3d: edges=%3d heads=%v gateways=%d connected=%v\n",
			r, g.M(), h.Heads(), len(h.Gateways()), g.Connected())
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "net.ctvg", "input file")
	proto := fs.String("proto", "alg1", "protocol: alg1 | alg2")
	k := fs.Int("k", 8, "tokens")
	t := fs.Int("t", 12, "Algorithm 1 phase length")
	seed := fs.Uint64("seed", 1, "token placement seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := load(*in)
	if err != nil {
		return err
	}
	var p sim.Protocol
	switch *proto {
	case "alg1":
		p = core.Alg1{T: *t}
	case "alg2":
		p = core.Alg2{}
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	assign := token.Spread(tr.N(), *k, xrand.New(*seed))
	met := sim.MustRunProtocol(tr, p, assign, sim.Options{
		MaxRounds: tr.Len(), StopWhenComplete: true,
	})
	fmt.Printf("replayed %s over %s: %v\n", p.Name(), *in, met)
	return nil
}

// stats replays a trace through the obs layer and prints the phase-by-phase
// breakdown. With -metrics it also dumps the raw per-round JSONL series;
// with -provenance it records the full dissemination DAG.
func stats(args []string) (err error) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "net.ctvg", "input file")
	proto := fs.String("proto", "alg1", "protocol: alg1 | alg2")
	k := fs.Int("k", 8, "tokens")
	t := fs.Int("t", 12, "Algorithm 1 phase length")
	seed := fs.Uint64("seed", 1, "token placement seed")
	metrics := fs.String("metrics", "", "also write the per-round JSONL event stream here")
	prov := fs.String("provenance", "", "also write the provenance JSONL stream here")
	format := fs.String("format", "text", "table output: text | json | csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := load(*in)
	if err != nil {
		return err
	}
	var p sim.Protocol
	phaseLen := *t
	switch *proto {
	case "alg1":
		p = core.Alg1{T: *t}
	case "alg2":
		p = core.Alg2{}
		phaseLen = 1 // Algorithm 2 re-elects every round; phases degenerate.
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	cfg := obs.Config{
		N: tr.N(), K: *k, PhaseLen: phaseLen,
		SizeFn: wire.Size, Keep: true,
	}
	var mf *os.File
	if *metrics != "" {
		mf, err = os.Create(*metrics)
		if err != nil {
			return err
		}
		// Propagate the Close error into the subcommand's result: with a
		// buffered sink a full disk can surface only at Close, and a
		// dropped error would pass a truncated JSONL off as complete.
		defer func() {
			if cerr := mf.Close(); err == nil {
				err = cerr
			}
		}()
		cfg.Sink = mf
	}
	col := obs.NewCollector(cfg)
	aux := auxOut(*format)
	pcfg := provenance.Config{
		Keep: true,
		OnPace: func(v provenance.PaceViolation) {
			fmt.Fprintln(aux, "warning:", v)
		},
	}
	var pf *os.File
	if *prov != "" {
		pf, err = os.Create(*prov)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := pf.Close(); err == nil {
				err = cerr
			}
		}()
		pcfg.Sink = pf
	}
	tracer := provenance.New(pcfg)
	assign := token.Spread(tr.N(), *k, xrand.New(*seed))
	met := sim.MustRunProtocol(tr, p, assign, sim.Options{
		MaxRounds:        tr.Len(),
		StopWhenComplete: true,
		Observer:         col.Observer(),
		Tracer:           tracer,
		SizeFn:           wire.Size,
	})
	if err := col.Flush(); err != nil {
		return err
	}
	if err := tracer.Flush(); err != nil {
		return err
	}
	events := col.Events()
	tb := obs.PhaseTable(fmt.Sprintf("%s over %s (n=%d k=%d)", p.Name(), *in, tr.N(), *k), obs.Summarize(events))
	if err := writeTable(tb, *format); err != nil {
		return err
	}
	fmt.Fprintf(aux, "result: %v\n", met)
	if len(events) > 0 {
		last := events[len(events)-1]
		fmt.Fprintf(aux, "final progress: %d/%d (%.1f%%)\n", last.Delivered, last.Total, 100*last.ProgressRatio())
	}
	plog := tracer.Log()
	if s := plog.Summary; s != nil {
		fmt.Fprintf(aux, "deliveries: %d first, %d redundant messages (%d redundant token copies)\n",
			s.First, s.Redundant, s.RedundantTokens)
	}
	if p50, p99, ok := depthQuantiles(plog); ok {
		fmt.Fprintf(aux, "critical-path depth: p50=%.1f p99=%.1f hops\n", p50, p99)
	}
	if mf != nil {
		fmt.Fprintf(aux, "wrote %d per-round events to %s\n", len(events), *metrics)
		if err := mf.Sync(); err != nil {
			return err
		}
	}
	if pf != nil {
		fmt.Fprintf(aux, "wrote %d provenance edges to %s\n", len(plog.Edges), *prov)
		return pf.Sync()
	}
	return nil
}

// timing summarizes a per-round engine stage-span JSONL stream into the
// per-stage wall/CPU breakdown, with the last resource sample appended.
func timing(args []string) error {
	fs := flag.NewFlagSet("timing", flag.ExitOnError)
	in := fs.String("in", "run.timing.jsonl", "timing JSONL file (from hinetsim/hinetbench -timing)")
	format := fs.String("format", "text", "table output: text | json | csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	rows, err := obs.ParseTiming(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s holds no timing rows", *in)
	}
	tb := obs.TimingTable(fmt.Sprintf("per-stage timing (%s, %d rounds)", *in, len(rows)),
		obs.SummarizeTiming(rows), len(rows))
	if err := writeTable(tb, *format); err != nil {
		return err
	}
	aux := auxOut(*format)
	for i := len(rows) - 1; i >= 0; i-- {
		if r := rows[i].Res; r != nil {
			fmt.Fprintf(aux, "last resource sample (round %d): heap=%dB objects=%d goroutines=%d arena=%d msgs / %d sets / %dB\n",
				rows[i].Round, r.HeapInuse, r.HeapObjects, r.Goroutines,
				r.ArenaMsgs, r.ArenaSets, r.ArenaSetBytes)
			break
		}
	}
	return nil
}

// postmortem reads back a flight-recorder bundle (written automatically on
// stall/pace/SLO/divergence anomalies) and renders its diagnosis: the last
// healthy round, the first violated invariant, the progress trajectory over
// the ring window, and the stage-time trend when timing was attached.
func postmortem(args []string) error {
	fs := flag.NewFlagSet("postmortem", flag.ExitOnError)
	in := fs.String("in", "", "postmortem bundle (.dump); may also be the first positional argument")
	format := fs.String("format", "text", "table output: text | json | csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *in
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" {
		return fmt.Errorf("postmortem: bundle path required (hinettrace postmortem run-r42-stall.dump)")
	}
	b, err := recorder.ReadBundle(path)
	if err != nil {
		return err
	}
	d := b.Diagnose()
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Bundle    string              `json:"bundle"`
			Diagnosis *recorder.Diagnosis `json:"diagnosis"`
			Health    []health.State      `json:"health,omitempty"`
			Metrics   sim.Metrics         `json:"metrics"`
			Faults    any                 `json:"faults,omitempty"`
			Finger    map[string]string   `json:"fingerprint,omitempty"`
		}{path, d, b.Health, b.Metrics, b.Faults, b.Fingerprint})
	}
	aux := auxOut(*format)
	fmt.Fprintf(aux, "postmortem %s\n", path)
	fmt.Fprintf(aux, "anomaly: %s at round %d (run %q, n=%d k=%d phase-len=%d, ring depth %d)\n",
		d.Reason, d.Round, b.Prefix, b.N, b.K, b.PhaseLen, b.Depth)
	if d.LastHealthyRound >= 0 {
		fmt.Fprintf(aux, "last healthy round: %d\n", d.LastHealthyRound)
	} else {
		fmt.Fprintln(aux, "last healthy round: none inside the ring window")
	}
	if fv := d.FirstViolated; fv != nil {
		fmt.Fprintf(aux, "first violated invariant: rule %s at round %d (last %.2f vs limit %.2f)\n",
			fv.Rule.Kind, fv.FirstRound, fv.LastValue, fv.LastLimit)
	}
	for _, s := range b.Health {
		if s.Violations > 0 && (d.FirstViolated == nil || s.Rule.Kind != d.FirstViolated.Rule.Kind) {
			fmt.Fprintf(aux, "also violated: rule %s ×%d, first at round %d\n",
				s.Rule.Kind, s.Violations, s.FirstRound)
		}
	}
	for _, note := range d.Notes {
		fmt.Fprintln(aux, "note:", note)
	}
	if keys := sortedKeys(b.Fingerprint); len(keys) > 0 {
		fmt.Fprint(aux, "config:")
		for _, k := range keys {
			fmt.Fprintf(aux, " %s=%s", k, b.Fingerprint[k])
		}
		fmt.Fprintln(aux)
	}
	tb := report.NewTable(fmt.Sprintf("progress trajectory — last %d recorded rounds", len(d.Trajectory)),
		"round", "delivered", "total", "stall", "msgs", "outstanding", "crashes", "drops")
	for _, p := range d.Trajectory {
		tb.AddRowf(p.Round, p.Delivered, p.Total, p.Stall, p.Messages, p.Outstanding, p.Crashes, p.Drops)
	}
	if err := writeTable(tb, *format); err != nil {
		return err
	}
	if len(d.Stages) > 0 {
		st := report.NewTable("stage-time trend — ring first half vs last quarter",
			"stage", "base ns/round", "tail ns/round", "ratio")
		for _, s := range d.Stages {
			st.AddRowf(s.Stage, s.BaseNs, s.TailNs, fmt.Sprintf("%.2f", s.Ratio))
		}
		if err := writeTable(st, *format); err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns m's keys in deterministic order.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// depthQuantiles folds the log's first-delivery hop depths through an obs
// histogram with unit buckets and reads off p50/p99.
func depthQuantiles(l *provenance.Log) (p50, p99 float64, ok bool) {
	depths := l.Depths()
	if len(depths) == 0 {
		return 0, 0, false
	}
	maxDepth := 0
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	bounds := make([]float64, maxDepth)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := obs.NewHistogram(bounds)
	for _, d := range depths {
		h.Observe(float64(d))
	}
	return h.Quantile(0.5), h.Quantile(0.99), true
}

// loadProv reads a provenance JSONL stream from disk.
func loadProv(path string) (*provenance.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return provenance.ParseLog(f)
}

// lineage prints the first-delivery chain that brought one token to one
// node.
func lineage(args []string) error {
	fs := flag.NewFlagSet("lineage", flag.ExitOnError)
	logPath := fs.String("log", "prov.jsonl", "provenance JSONL file")
	node := fs.Int("node", 0, "node that acquired the token")
	tok := fs.Int("token", 0, "token to trace")
	format := fs.String("format", "text", "table output: text | json | csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := loadProv(*logPath)
	if err != nil {
		return err
	}
	chain, ok := l.Lineage(*node, *tok)
	if !ok {
		return fmt.Errorf("node %d never acquired token %d", *node, *tok)
	}
	aux := auxOut(*format)
	if len(chain) == 0 {
		fmt.Fprintf(aux, "node %d held token %d initially; no lineage\n", *node, *tok)
		return nil
	}
	tb := edgeTable(fmt.Sprintf("lineage of token %d to node %d (%d hops)", *tok, *node, len(chain)), chain)
	return writeTable(tb, *format)
}

// edgeTable renders provenance edges as a report table.
func edgeTable(title string, edges []provenance.Edge) *report.Table {
	tb := report.NewTable(title, "round", "token", "teacher", "role", "kind", "learner", "cluster")
	for _, e := range edges {
		teacher := "-"
		if e.Teacher != provenance.NoTeacher {
			teacher = fmt.Sprint(e.Teacher)
		}
		tb.AddRowf(e.Round, e.Token, teacher, e.TeacherRole, e.Kind, e.Learner, e.Cluster)
	}
	return tb
}

// criticalPath prints each token's slowest acquisition route: hop depth,
// end-to-end rounds, rounds queued at holders, and the hop composition by
// message kind and teacher role.
func criticalPath(args []string) error {
	fs := flag.NewFlagSet("critical-path", flag.ExitOnError)
	logPath := fs.String("log", "prov.jsonl", "provenance JSONL file")
	tok := fs.Int("token", -1, "single token to report (-1 = all)")
	format := fs.String("format", "text", "table output: text | json | csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := loadProv(*logPath)
	if err != nil {
		return err
	}
	var paths []provenance.Path
	if *tok >= 0 {
		p, ok := l.TokenCritical(*tok)
		if !ok {
			return fmt.Errorf("no first delivery of token %d in the log", *tok)
		}
		paths = append(paths, p)
	} else {
		paths = l.AllCritical()
		if len(paths) == 0 {
			return fmt.Errorf("log has no first deliveries")
		}
	}
	tb := report.NewTable(fmt.Sprintf("critical paths (%s)", *logPath),
		"token", "slowest-node", "depth", "rounds", "queued",
		"uploads", "relays", "broadcasts", "coded",
		"via-member", "via-head", "via-gateway")
	for _, p := range paths {
		tb.AddRowf(p.Token, p.Node, p.Depth, p.Rounds, p.Queued,
			p.KindHops[sim.KindUpload], p.KindHops[sim.KindRelay],
			p.KindHops[sim.KindBroadcast], p.KindHops[sim.KindCoded],
			p.RoleHops[ctvg.Member], p.RoleHops[ctvg.Head], p.RoleHops[ctvg.Gateway])
	}
	if err := writeTable(tb, *format); err != nil {
		return err
	}
	if p50, p99, ok := depthQuantiles(l); ok {
		fmt.Fprintf(auxOut(*format), "first-delivery depth over all %d edges: p50=%.1f p99=%.1f hops\n",
			len(l.Edges), p50, p99)
	}
	return nil
}

// redundancy prints the run's wasted-delivery account and the per-sender
// hotspots.
func redundancy(args []string) error {
	fs := flag.NewFlagSet("redundancy", flag.ExitOnError)
	logPath := fs.String("log", "prov.jsonl", "provenance JSONL file")
	top := fs.Int("top", 10, "sender hotspots to list (0 = all)")
	format := fs.String("format", "text", "table output: text | json | csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := loadProv(*logPath)
	if err != nil {
		return err
	}
	s := l.Summary
	if s == nil {
		return fmt.Errorf("log %s has no summary record (run was not flushed)", *logPath)
	}
	aux := auxOut(*format)
	total := s.First + s.Redundant
	waste := 0.0
	if total > 0 {
		waste = float64(s.Redundant) / float64(total)
	}
	fmt.Fprintf(aux, "deliveries: %d first, %d redundant messages (%.1f%% of useful+redundant), %d redundant token copies\n",
		s.First, s.Redundant, 100*waste, s.RedundantTokens)
	fmt.Fprintf(aux, "redundant by kind: broadcast=%d upload=%d relay=%d coded=%d\n",
		s.RedundantByKind[sim.KindBroadcast], s.RedundantByKind[sim.KindUpload],
		s.RedundantByKind[sim.KindRelay], s.RedundantByKind[sim.KindCoded])
	if s.PaceViolations > 0 {
		fmt.Fprintf(aux, "pace violations: %d (run fell behind the Theorem 1 schedule)\n", s.PaceViolations)
	}
	rows := s.BySender
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}
	tb := report.NewTable(fmt.Sprintf("redundant-message hotspots (%s)", *logPath),
		"sender", "redundant-msgs", "share")
	for _, r := range rows {
		share := "-"
		if s.Redundant > 0 {
			share = report.Pct(float64(r.Count) / float64(s.Redundant))
		}
		tb.AddRowf(r.Node, r.Count, share)
	}
	return writeTable(tb, *format)
}
