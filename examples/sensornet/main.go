// Sensornet: the paper's motivating scenario — a resource-constrained
// wireless sensor network where every transmission costs energy.
//
// A field of sensors must share k alarm readings network-wide. The network
// has a clustered topology maintained by the deployment's clustering layer
// and re-clusters slowly (a stable hierarchy per phase). This example
// quantifies the energy argument: it runs Algorithm 1 and the flat KLO
// T-interval protocol over networks of equal dynamics and reports the
// token-sends each role pays — the clustered design concentrates cost on
// the backbone and silences the (battery-poor) leaf members.
package main

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

func main() {
	const (
		n     = 120 // sensors
		k     = 6   // alarm readings
		theta = 24  // elected cluster heads
		alpha = 4
		l     = 2
		seeds = 5
	)
	T := core.Theorem1T(k, alpha, l)
	phases := core.Theorem1Phases(theta, alpha)

	fmt.Printf("sensor field: %d nodes, %d readings, θ=%d heads, T=%d, %d phases\n\n",
		n, k, theta, T, phases)

	var alg1Tokens, kloTokens, alg1Upload, alg1Relay int64
	for seed := uint64(0); seed < seeds; seed++ {
		// Clustered network for Algorithm 1.
		clustered := adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, L: l, T: T,
			Reaffiliations: 2, ChurnEdges: 8,
		}, xrand.New(seed))
		assign := token.Spread(n, k, xrand.New(seed+100))
		m1 := sim.MustRunProtocol(clustered, core.Alg1{T: T}, assign,
			sim.Options{MaxRounds: phases * T})
		if !m1.Complete {
			fmt.Printf("seed %d: WARNING Algorithm 1 incomplete\n", seed)
		}
		alg1Tokens += m1.TokensSent
		alg1Upload += m1.TokensByKind[sim.KindUpload]
		alg1Relay += m1.TokensByKind[sim.KindRelay]

		// Flat network of the same dynamics class for KLO-T.
		flat := sim.NewFlat(adversary.NewTInterval(n, T, 8, xrand.New(seed)))
		mk := sim.MustRunProtocol(flat, baseline.KLOT{T: T}, assign,
			sim.Options{MaxRounds: baseline.KLOTPhases(n, T, k) * T})
		if !mk.Complete {
			fmt.Printf("seed %d: WARNING KLO-T incomplete\n", seed)
		}
		kloTokens += mk.TokensSent
	}

	avg := func(x int64) float64 { return float64(x) / seeds }
	fmt.Printf("KLO T-interval (flat)   : %.0f token-sends (every sensor transmits every phase)\n", avg(kloTokens))
	fmt.Printf("Algorithm 1 (clustered) : %.0f token-sends\n", avg(alg1Tokens))
	fmt.Printf("  backbone (heads+gateways): %.0f  — the mains-powered minority\n", avg(alg1Relay))
	fmt.Printf("  member uploads           : %.0f  — the battery-powered majority\n", avg(alg1Upload))
	saving := 1 - avg(alg1Tokens)/avg(kloTokens)
	fmt.Printf("energy saving            : %.1f%%\n", 100*saving)
	if saving <= 0 {
		fmt.Println("unexpected: clustering did not pay off at this operating point")
	}
}
