// Quickstart: disseminate 8 tokens across a 100-node dynamic network with a
// cluster hierarchy using Algorithm 1, under the exact guarantees of the
// paper's Theorem 1.
package main

import (
	"fmt"
	"log"

	"repro/hinet"
)

func main() {
	const (
		n     = 100 // nodes
		k     = 8   // tokens to disseminate
		theta = 30  // upper bound on cluster heads (θ)
		alpha = 5   // progress coefficient (α)
		l     = 2   // head connectivity hop bound (L)
	)

	// Theorem 1 tells us the phase length and phase budget that guarantee
	// delivery: T = k + α·L rounds per phase, M = ⌈θ/α⌉ + 1 phases.
	T := hinet.Theorem1T(k, alpha, l)
	phases := hinet.Theorem1Phases(theta, alpha)

	// A scripted (T, L)-HiNet: stable hierarchy within each phase, member
	// re-affiliations at phase boundaries, random edge churn every round.
	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
		N: n, Theta: theta, L: l, T: T,
		Reaffiliations: 3,
		ChurnEdges:     10,
	}, 42)

	// Machine-check the model before trusting the theorem.
	if err := hinet.CheckModel(net, T, l, phases); err != nil {
		log.Fatalf("network violates the (T, L)-HiNet model: %v", err)
	}

	// k tokens at k random nodes; run Algorithm 1 for the theorem budget.
	tokens := hinet.SpreadTokens(n, k, 43)
	res := hinet.MustRun(net, hinet.Algorithm1(T), tokens, hinet.RunOptions{
		MaxRounds:        phases * T,
		StopWhenComplete: true,
	})

	fmt.Printf("network : (%d, %d)-HiNet, n=%d, θ=%d\n", T, l, n, theta)
	fmt.Printf("budget  : %d phases × %d rounds = %d rounds\n", phases, T, phases*T)
	fmt.Printf("result  : %v\n", res)
	if !res.Complete {
		log.Fatal("dissemination did not complete — theorem hypothesis violated?")
	}
	fmt.Printf("verdict : all %d nodes hold all %d tokens after %d rounds, %d token-sends\n",
		n, k, res.CompletionRound, res.TokensSent)
}
