// Manet: dissemination in a mobile ad hoc network driven by physical node
// movement rather than a scripted adversary.
//
// Vehicles move by random waypoint in a 1 km² field; the radio range
// induces the topology, and the clustering layer (lowest-ID election +
// gateway selection) maintains the hierarchy incrementally as nodes move.
// No (T, L)-HiNet guarantee holds a priori — this is the robustness check:
// Algorithm 2 must still deliver, and its cost is compared with flooding
// at increasing speeds.
package main

import (
	"fmt"

	"repro/hinet"
	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

func main() {
	const (
		n     = 60
		k     = 6
		seeds = 4
	)
	fmt.Printf("MANET: %d vehicles, %d messages, 100x100 field, radio range 20\n\n", n, k)
	fmt.Printf("%-10s  %-12s %-12s %-10s %-14s\n", "max speed", "alg2 rounds", "alg2 tokens", "flood tokens", "reaffiliations")

	for _, speed := range []float64{0.5, 2, 5, 10} {
		var rounds, alg2Tok, floodTok float64
		var reaffil int
		for seed := uint64(0); seed < seeds; seed++ {
			cfg := adversary.MobilityConfig{
				N: n, Field: hinet.Field{W: 100, H: 100}, Radius: 20,
				MinSpeed: speed / 4, MaxSpeed: speed, PauseRounds: 1,
				EnsureConnected: true,
			}
			adv := adversary.NewMobility(cfg, xrand.New(seed))
			assign := token.Spread(n, k, xrand.New(seed+77))
			m := sim.MustRunProtocol(adv, core.Alg2{}, assign,
				sim.Options{MaxRounds: 6 * n, StopWhenComplete: true})
			if !m.Complete {
				fmt.Printf("  seed %d speed %.1f: WARNING incomplete\n", seed, speed)
			}
			rounds += float64(m.CompletionRound)
			alg2Tok += float64(m.TokensSent)
			reaffil += adv.Stats().Reaffiliations

			// Flooding over the identical recorded physical topology.
			fadv := adversary.NewMobility(cfg, xrand.New(seed))
			mf := sim.MustRunProtocol(fadv, baseline.Flood{}, assign,
				sim.Options{MaxRounds: 6 * n, StopWhenComplete: true})
			floodTok += float64(mf.TokensSent)
		}
		fmt.Printf("%-10.1f  %-12.1f %-12.0f %-10.0f %-14d\n",
			speed, rounds/seeds, alg2Tok/seeds, floodTok/seeds, reaffil/seeds)
	}
	fmt.Println("\nreading: Algorithm 2 stays complete as mobility rises; its cost grows")
	fmt.Println("with re-clustering churn but remains below flat flooding.")
}
