// Compare: the full four-way comparison of the paper's Section V at a
// user-chosen operating point — both the closed-form Table 2 costs and
// measured simulation costs, rendered side by side.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/report"
)

func main() {
	var (
		n     = flag.Int("n", 100, "nodes (n0)")
		theta = flag.Int("theta", 30, "max cluster heads (θ)")
		nm    = flag.Int("nm", 40, "average members per round (n_m)")
		k     = flag.Int("k", 8, "tokens (k)")
		alpha = flag.Int("alpha", 5, "progress coefficient (α)")
		l     = flag.Int("l", 2, "hop bound (L)")
		nrT   = flag.Int("nrt", 3, "re-affiliations per member, (T,L)-HiNet row")
		nr1   = flag.Int("nr1", 10, "re-affiliations per member, (1,L)-HiNet row")
		seeds = flag.Int("seeds", 6, "replications")
	)
	flag.Parse()

	cfg := experiment.PointConfig{
		P:          analysis.Params{N0: *n, Theta: *theta, NM: *nm, K: *k, Alpha: *alpha, L: *l},
		NRT:        *nrT,
		NR1:        *nr1,
		Seeds:      *seeds,
		ChurnEdges: *n / 10,
	}
	rows, err := experiment.RunPoint(cfg)
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable(
		fmt.Sprintf("four-way comparison at n0=%d θ=%d k=%d α=%d L=%d (%d seeds)",
			*n, *theta, *k, *alpha, *l, *seeds),
		"model", "budget (rounds)", "formula comm", "sim time", "sim comm", "done",
	)
	for _, r := range rows {
		tb.AddRowf(r.Model, r.Budget, r.Analytic.Comm, r.MeasuredTime, r.MeasuredComm,
			fmt.Sprintf("%d/%d", r.Completed, r.Seeds))
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	kloT, alg1, klo1, alg2 := rows[0], rows[1], rows[2], rows[3]
	fmt.Printf("\nAlg1 saves %s of KLO-T's measured communication\n",
		report.Pct(1-alg1.MeasuredComm/kloT.MeasuredComm))
	fmt.Printf("Alg2 saves %s of 1-interval flooding's measured communication\n",
		report.Pct(1-alg2.MeasuredComm/klo1.MeasuredComm))
}
