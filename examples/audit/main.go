// Audit: the operations workflow — given a dynamic network whose stability
// parameters are unknown, measure them, pick the right algorithm and
// parameters from the measurement, and verify the choice by running it.
//
// The workflow: probe the network (largest stable T, minimal L, head
// count θ, measured re-affiliation rate, backbone fragility), ask the
// advisor for protocol parameters, execute, and cross-check against the
// analytic cost model.
package main

import (
	"fmt"
	"log"

	"repro/hinet"
)

func main() {
	const (
		n = 80
		k = 6
	)

	// A network handed to us by "someone else": we pretend not to know
	// its construction parameters (T=16, L=2, θ=12 under the hood).
	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
		N: n, Theta: 12, L: 2, T: 16,
		Reaffiliations: 3,
		ChurnEdges:     8,
	}, 2026)

	// Step 1: measure. The probe recovers the stability model from the
	// observed rounds alone.
	rep := hinet.ProbeNetwork(net, 64)
	fmt.Println("probe:", rep)
	fmt.Printf("heads θ=%d, backbone fragility: %d bridges, %d cut relays\n\n",
		rep.Heads, rep.BackboneBridges, rep.BackboneCutNodes)

	// Step 2: advise. Theorem 1 needs T >= k + α·L; the advisor derives
	// the α the observed window affords and the matching phase budget.
	advice := hinet.Advise(rep, n, k)
	if !advice.UseAlg1 {
		log.Fatalf("network measured too dynamic for Algorithm 1: %+v", advice)
	}
	fmt.Printf("advice: Algorithm 1 with T=%d (α=%d), budget %d rounds\n\n",
		advice.T, advice.Alpha, advice.MaxRounds)

	// Step 3: execute and verify.
	tokens := hinet.SpreadTokens(n, k, 7)
	res := hinet.MustRun(net, hinet.Algorithm1(advice.T), tokens, hinet.RunOptions{
		MaxRounds:        advice.MaxRounds,
		StopWhenComplete: true,
	})
	fmt.Println("run:", res)
	if !res.Complete {
		log.Fatal("advised parameters did not deliver — measurement or advice is wrong")
	}

	// Step 4: cross-check the cost against the analytic model evaluated
	// with the *measured* parameters.
	members := int(rep.AvgMembers)
	costs := hinet.AnalyticCosts(hinet.Params{
		N0: n, Theta: rep.Heads, NM: members,
		K: k, Alpha: advice.Alpha, L: rep.MinL,
	}, int(rep.MeasuredNR)+1, int(rep.MeasuredNR)+1)
	fmt.Printf("\nanalytic worst case at measured parameters: %d token-sends\n", costs[1].Comm)
	fmt.Printf("measured: %d token-sends (%.0f%% of the bound)\n",
		res.TokensSent, 100*float64(res.TokensSent)/float64(costs[1].Comm))
}
