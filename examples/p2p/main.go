// P2p: announcement dissemination in a peer-to-peer overlay with Markovian
// link churn — the paper's proposed future-work model (edge-Markovian
// dynamics extended with clusters) made executable.
//
// Peers maintain overlay links that appear and disappear per round with
// birth/death probabilities; a super-peer tier (cluster heads) is
// maintained incrementally on top. k content announcements must reach
// every peer.
//
// The run sweeps the link death rate and compares the hierarchical
// Algorithm 2 on the clustered overlay against flat flooding on identical
// link dynamics. It demonstrates the boundary the paper's analysis
// predicts: clustering pays while the hierarchy is reasonably stable
// (members re-affiliate rarely) and the saving erodes as churn destroys
// cluster stability — the executable form of the "n_r must be much less
// than n_0" premise.
package main

import (
	"fmt"

	"repro/hinet"
)

func main() {
	const (
		n     = 50 // peers
		k     = 6  // announcements
		seeds = 5
	)
	fmt.Printf("P2P overlay: %d peers, %d announcements (stationary link density held at ~0.15)\n\n", n, k)
	fmt.Printf("%-18s  %-10s %-12s %-12s %-8s\n",
		"per-round death", "dyn diam", "alg2 tokens", "flood tokens", "saving")

	// Hold the stationary density p/(p+q) ≈ 0.15 while scaling how fast
	// individual links churn.
	for _, q := range []float64{0.02, 0.10, 0.40} {
		p := q / 5.5
		probe := hinet.NewEMDGNetwork(n, p, q, true, 999)
		dd := hinet.DynamicDiameter(probe, 3, n-1)

		var alg2Tok, floodTok float64
		for seed := uint64(0); seed < seeds; seed++ {
			tokens := hinet.SpreadTokens(n, k, seed+500)

			clustered := hinet.NewClusteredEMDGNetwork(n, p, q, seed)
			m2 := hinet.MustRun(clustered, hinet.Algorithm2(), tokens, hinet.RunOptions{
				MaxRounds: 3 * n, StopWhenComplete: true,
			})
			if !m2.Complete {
				fmt.Printf("  seed %d q=%.2f: WARNING Algorithm 2 incomplete\n", seed, q)
			}
			alg2Tok += float64(m2.TokensSent)

			flat := hinet.NewEMDGNetwork(n, p, q, true, seed)
			mf := hinet.MustRun(flat, hinet.KLOFlood(), tokens, hinet.RunOptions{
				MaxRounds: 3 * n, StopWhenComplete: true,
			})
			if !mf.Complete {
				fmt.Printf("  seed %d q=%.2f: WARNING flooding incomplete\n", seed, q)
			}
			floodTok += float64(mf.TokensSent)
		}
		fmt.Printf("%-18.2f  %-10d %-12.0f %-12.0f %.1f%%\n",
			q, dd, alg2Tok/seeds, floodTok/seeds, 100*(1-alg2Tok/floodTok))
	}
	fmt.Println("\nreading: while links are reasonably stable the super-peer tier saves;")
	fmt.Println("at extreme churn (links living ~2.5 rounds) re-affiliation uploads cross")
	fmt.Println("over and clustering costs more than flooding — the executable boundary of")
	fmt.Println("the paper's stability premise, on its own proposed EMDG extension.")
}
