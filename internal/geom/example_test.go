package geom_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Example builds the physical substrate of a wireless scenario: positions
// in a field and the unit-disk communication graph they induce.
func Example() {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 4}}
	g := geom.UnitDisk(pos, 4)
	fmt.Println("0-1 in range:", g.HasEdge(0, 1))
	fmt.Println("1-2 in range:", g.HasEdge(1, 2))
	fmt.Println("0-2 in range (distance 5):", g.HasEdge(0, 2))
	// Output:
	// 0-1 in range: true
	// 1-2 in range: true
	// 0-2 in range (distance 5): false
}

// ExampleMobility runs random-waypoint motion and takes topology
// snapshots, the driver behind the MANET scenarios.
func ExampleMobility() {
	m := geom.NewMobility(20, geom.Field{W: 50, H: 50}, 1, 2, 0, xrand.New(7))
	for i := 0; i < 10; i++ {
		m.Step()
	}
	g := m.Snapshot(20)
	fmt.Println("nodes:", g.N(), "edges nonzero:", g.M() > 0)
	// Output: nodes: 20 edges nonzero: true
}
