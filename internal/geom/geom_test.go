package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, 1}
	if p.Norm() != 5 {
		t.Fatalf("Norm = %f", p.Norm())
	}
	if p.Dist(Point{0, 0}) != 5 {
		t.Fatalf("Dist = %f", p.Dist(Point{0, 0}))
	}
	if p.Add(q) != (Point{4, 5}) || p.Sub(q) != (Point{2, 3}) || p.Scale(2) != (Point{6, 8}) {
		t.Fatal("arithmetic wrong")
	}
	if p.String() != "(3.00, 4.00)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestFieldRandomPointInside(t *testing.T) {
	f := Field{W: 10, H: 5}
	rng := xrand.New(1)
	for i := 0; i < 1000; i++ {
		p := f.RandomPoint(rng)
		if !f.Contains(p) {
			t.Fatalf("point %v outside field", p)
		}
	}
}

func TestFieldClamp(t *testing.T) {
	f := Field{W: 10, H: 5}
	cases := []struct{ in, want Point }{
		{Point{-1, 2}, Point{0, 2}},
		{Point{11, 2}, Point{10, 2}},
		{Point{3, -4}, Point{3, 0}},
		{Point{3, 9}, Point{3, 5}},
		{Point{3, 3}, Point{3, 3}},
	}
	for _, c := range cases {
		if got := f.Clamp(c.in); got != c.want {
			t.Fatalf("Clamp(%v) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestUnitDisk(t *testing.T) {
	pos := []Point{{0, 0}, {1, 0}, {3, 0}}
	g := UnitDisk(pos, 1.5)
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatalf("unit disk edges wrong: %v", g.Edges())
	}
	if g.HasEdge(1, 2) {
		t.Fatal("edge 1-2 present despite dist 2 > radius 1.5")
	}
}

func TestUnitDiskRadiusBoundaryInclusive(t *testing.T) {
	pos := []Point{{0, 0}, {2, 0}}
	if !UnitDisk(pos, 2).HasEdge(0, 1) {
		t.Fatal("distance exactly radius should be an edge")
	}
	if UnitDisk(pos, 1.999).HasEdge(0, 1) {
		t.Fatal("distance above radius should not be an edge")
	}
}

func TestMobilityStaysInField(t *testing.T) {
	f := Field{W: 20, H: 20}
	m := NewMobility(30, f, 0.5, 2.0, 2, xrand.New(7))
	for r := 0; r < 500; r++ {
		m.Step()
		for _, p := range m.Positions() {
			if !f.Contains(p) {
				t.Fatalf("round %d: node escaped to %v", r, p)
			}
		}
	}
}

func TestMobilityActuallyMoves(t *testing.T) {
	m := NewMobility(10, Field{W: 100, H: 100}, 1, 1, 0, xrand.New(3))
	before := m.Positions()
	for i := 0; i < 20; i++ {
		m.Step()
	}
	after := m.Positions()
	moved := 0
	for i := range before {
		if before[i].Dist(after[i]) > 1e-9 {
			moved++
		}
	}
	if moved < 8 {
		t.Fatalf("only %d/10 nodes moved", moved)
	}
}

func TestMobilityStepLengthBounded(t *testing.T) {
	m := NewMobility(20, Field{W: 50, H: 50}, 0.5, 1.5, 0, xrand.New(9))
	prev := m.Positions()
	for r := 0; r < 200; r++ {
		m.Step()
		cur := m.Positions()
		for i := range cur {
			step := prev[i].Dist(cur[i])
			if step > 1.5+1e-9 {
				t.Fatalf("round %d node %d moved %f > max speed", r, i, step)
			}
		}
		prev = cur
	}
}

func TestMobilityPause(t *testing.T) {
	// With speed large enough to arrive in one step and a long pause, a
	// node must sit still for PauseRounds rounds after arrival.
	m := NewMobility(1, Field{W: 10, H: 10}, 100, 100, 5, xrand.New(11))
	m.Step() // arrives at destination
	arrived := m.Positions()[0]
	for i := 0; i < 5; i++ {
		m.Step()
		if m.Positions()[0] != arrived {
			t.Fatalf("node moved during pause at step %d", i)
		}
	}
	m.Step()
	if m.Positions()[0] == arrived {
		t.Fatal("node still paused after pause expired")
	}
}

func TestNewMobilityInvalidSpeedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid speed range did not panic")
		}
	}()
	NewMobility(1, Field{W: 1, H: 1}, 2, 1, 0, xrand.New(1))
}

func TestMobilityDeterministic(t *testing.T) {
	a := NewMobility(10, Field{W: 30, H: 30}, 0.5, 2, 1, xrand.New(42))
	b := NewMobility(10, Field{W: 30, H: 30}, 0.5, 2, 1, xrand.New(42))
	for r := 0; r < 100; r++ {
		a.Step()
		b.Step()
	}
	pa, pb := a.Positions(), b.Positions()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("mobility nondeterministic at node %d", i)
		}
	}
}

func TestQuickDistSymmetricTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Bound inputs to avoid float overflow artifacts.
		norm := func(v float64) float64 { return math.Mod(v, 1000) }
		a := Point{norm(ax), norm(ay)}
		b := Point{norm(bx), norm(by)}
		c := Point{norm(cx), norm(cy)}
		if math.IsNaN(a.X) || math.IsNaN(b.X) || math.IsNaN(c.X) ||
			math.IsNaN(a.Y) || math.IsNaN(b.Y) || math.IsNaN(c.Y) {
			return true
		}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnitDisk(b *testing.B) {
	rng := xrand.New(1)
	f := Field{W: 100, H: 100}
	pos := make([]Point, 200)
	for i := range pos {
		pos[i] = f.RandomPoint(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnitDisk(pos, 15)
	}
}

func BenchmarkMobilityStep(b *testing.B) {
	m := NewMobility(500, Field{W: 100, H: 100}, 0.5, 2, 2, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}
