// Package geom provides the 2-D geometry used by the mobility-driven
// dynamic-network scenarios: points, a rectangular field, unit-disk
// (communication-range) graphs, and a random-waypoint mobility model.
//
// The paper's system model is an ad hoc wireless network whose neighbourhood
// relation "is determined by the communication range of the wireless
// transmission" and whose topology changes "due to node mobility or other
// reasons". This package supplies that physical substrate for the examples
// and the mobility adversary.
package geom

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Point is a position in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Add returns p + q (componentwise).
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q (componentwise).
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String formats the point as (x, y) with two decimals.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Field is an axis-aligned rectangular deployment area [0,W] x [0,H].
type Field struct {
	W, H float64
}

// RandomPoint returns a uniform point inside the field.
func (f Field) RandomPoint(rng *xrand.Rand) Point {
	return Point{rng.Float64() * f.W, rng.Float64() * f.H}
}

// Clamp returns the nearest point of the field to p.
func (f Field) Clamp(p Point) Point {
	return Point{clamp(p.X, 0, f.W), clamp(p.Y, 0, f.H)}
}

// Contains reports whether p lies inside the field (inclusive).
func (f Field) Contains(p Point) bool {
	return p.X >= 0 && p.X <= f.W && p.Y >= 0 && p.Y <= f.H
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// UnitDisk builds the communication graph induced by positions: nodes u and
// v are neighbours iff their distance is at most radius.
func UnitDisk(pos []Point, radius float64) *graph.Graph {
	g := graph.New(len(pos))
	for u := 0; u < len(pos); u++ {
		for v := u + 1; v < len(pos); v++ {
			if pos[u].Dist(pos[v]) <= radius {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Waypoint is the per-node state of the random-waypoint mobility model.
type Waypoint struct {
	pos   Point
	dest  Point
	speed float64
	pause int // rounds left to pause at the current destination
}

// Mobility simulates n nodes moving in a field under the random-waypoint
// model: each node repeatedly picks a uniform destination and a uniform
// speed in [MinSpeed, MaxSpeed], travels there in straight-line steps (one
// step per round), pauses for PauseRounds, and repeats.
type Mobility struct {
	Field       Field
	MinSpeed    float64 // distance units per round
	MaxSpeed    float64
	PauseRounds int

	nodes []Waypoint
	rng   *xrand.Rand
}

// NewMobility places n nodes uniformly in the field and assigns initial
// destinations. Speeds must satisfy 0 < MinSpeed <= MaxSpeed.
func NewMobility(n int, field Field, minSpeed, maxSpeed float64, pauseRounds int, rng *xrand.Rand) *Mobility {
	if minSpeed <= 0 || maxSpeed < minSpeed {
		panic("geom: invalid speed range")
	}
	m := &Mobility{
		Field:       field,
		MinSpeed:    minSpeed,
		MaxSpeed:    maxSpeed,
		PauseRounds: pauseRounds,
		nodes:       make([]Waypoint, n),
		rng:         rng,
	}
	for i := range m.nodes {
		m.nodes[i].pos = field.RandomPoint(rng)
		m.retarget(i)
	}
	return m
}

// retarget assigns node i a fresh destination and speed.
func (m *Mobility) retarget(i int) {
	w := &m.nodes[i]
	w.dest = m.Field.RandomPoint(m.rng)
	w.speed = m.MinSpeed + m.rng.Float64()*(m.MaxSpeed-m.MinSpeed)
}

// Step advances every node by one round.
func (m *Mobility) Step() {
	for i := range m.nodes {
		w := &m.nodes[i]
		if w.pause > 0 {
			w.pause--
			continue
		}
		d := w.dest.Sub(w.pos)
		dist := d.Norm()
		if dist <= w.speed {
			w.pos = w.dest
			w.pause = m.PauseRounds
			m.retarget(i)
			continue
		}
		w.pos = w.pos.Add(d.Scale(w.speed / dist))
	}
}

// Positions returns a snapshot of current node positions.
func (m *Mobility) Positions() []Point {
	out := make([]Point, len(m.nodes))
	for i := range m.nodes {
		out[i] = m.nodes[i].pos
	}
	return out
}

// Snapshot returns the current communication graph for the given radio
// range.
func (m *Mobility) Snapshot(radius float64) *graph.Graph {
	return UnitDisk(m.Positions(), radius)
}

// N returns the number of mobile nodes.
func (m *Mobility) N() int { return len(m.nodes) }
