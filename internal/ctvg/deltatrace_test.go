package ctvg

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// buildClusteredTrace assembles a small clustered trace whose windows
// change a few member edges and roles each, exercising both delta layers.
func buildClusteredTrace(t *testing.T, windows, winLen int, seed uint64) *Trace {
	t.Helper()
	const n = 20
	rng := xrand.New(seed)
	g := graph.New(n)
	h := NewHierarchy(n)
	h.SetHead(0)
	h.SetHead(1)
	for v := 2; v < n; v++ {
		head := rng.Intn(2)
		h.SetMember(v, head)
		g.AddEdge(v, head)
	}
	g.AddEdge(0, 1)

	var snaps []*graph.Graph
	var hier []*Hierarchy
	for w := 0; w < windows; w++ {
		if w > 0 {
			g = g.Clone()
			h = h.Clone()
			for i := 0; i < 2; i++ {
				v := 2 + rng.Intn(n-2)
				old := h.HeadOf(v)
				nh := 1 - old
				g.RemoveEdge(v, old)
				g.AddEdge(v, nh)
				h.SetMember(v, nh)
			}
		}
		for r := 0; r < winLen; r++ {
			snaps = append(snaps, g)
			hier = append(hier, h)
		}
	}
	return NewTrace(tvg.NewTrace(snaps), hier)
}

func TestCTVGDeltaTraceMatchesTrace(t *testing.T) {
	tr := buildClusteredTrace(t, 6, 4, 1)
	dt := RecordDeltas(tr, tr.Len())

	for r := 0; r < tr.Len()+5; r++ {
		if !dt.At(r).Equal(tr.At(r)) {
			t.Fatalf("round %d: snapshot mismatch", r)
		}
		if !dt.HierarchyAt(r).Equal(tr.HierarchyAt(r)) {
			t.Fatalf("round %d: hierarchy mismatch", r)
		}
		if got, want := dt.StableUntil(r), tr.StableUntil(r); got != want {
			t.Fatalf("round %d: StableUntil %d, want %d", r, got, want)
		}
	}
	for r := tr.Len() - 1; r >= 0; r-- {
		if !dt.At(r).Equal(tr.At(r)) || !dt.HierarchyAt(r).Equal(tr.HierarchyAt(r)) {
			t.Fatalf("round %d: backward mismatch", r)
		}
	}
	rng := xrand.New(5)
	for i := 0; i < 40; i++ {
		r := rng.Intn(tr.Len())
		if !dt.At(r).Equal(tr.At(r)) || !dt.HierarchyAt(r).Equal(tr.HierarchyAt(r)) {
			t.Fatalf("round %d: random-access mismatch", r)
		}
	}
	if err := dt.Validate(); err != nil {
		t.Fatalf("delta trace fails model validation: %v", err)
	}
}

func TestCTVGDeltaTracePointerStability(t *testing.T) {
	tr := buildClusteredTrace(t, 4, 5, 2)
	dt := RecordDeltas(tr, tr.Len())
	for r := 0; r < tr.Len(); r++ {
		if dt.At(r) != dt.At(r) || dt.HierarchyAt(r) != dt.HierarchyAt(r) {
			t.Fatalf("round %d: repeated access returned distinct pointers", r)
		}
	}
	// Record over the delta trace must dedup windows via those pointers and
	// reproduce the original window structure.
	rec := Record(dt, tr.Len())
	for r := 0; r < tr.Len(); r++ {
		if got, want := rec.StableUntil(r), tr.StableUntil(r); got != want {
			t.Fatalf("round %d: re-recorded StableUntil %d, want %d", r, got, want)
		}
	}
}

func TestHierarchyDeltaRoundTrip(t *testing.T) {
	a := NewHierarchy(6)
	a.SetHead(0)
	a.SetMember(1, 0)
	a.SetGateway(2, 0)
	b := a.Clone()
	b.SetHead(3)
	b.SetMember(1, 3)
	b.SetMember(2, 3)

	d := HierarchyDeltaBetween(a, b)
	if len(d) != 3 {
		t.Fatalf("delta has %d changes, want 3", len(d))
	}
	fwd := a.ApplyDelta(d)
	if !fwd.Equal(b) {
		t.Fatal("ApplyDelta did not reach b")
	}
	back := fwd.UnapplyDelta(d)
	if !back.Equal(a) {
		t.Fatal("UnapplyDelta did not rewind to a")
	}
	if HierarchyDeltaBetween(a, a) != nil {
		t.Fatal("self-delta not empty")
	}
}

func TestHierarchyDeltaStrict(t *testing.T) {
	a := NewHierarchy(3)
	a.SetHead(0)
	d := HierarchyDelta{{V: 1, OldRole: Member, NewRole: Head, OldCluster: 0, NewCluster: 1}}
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyDelta on mismatched state did not panic")
		}
	}()
	a.ApplyDelta(d) // node 1 is Unaffiliated, not Member
}

func TestCTVGDeltaTraceHierarchyOnlyWindow(t *testing.T) {
	// A transition that changes only the hierarchy (same graph) must still
	// open a window, mirroring Trace's min-of-both-layers StableUntil.
	g := graph.FromEdgeList(4, []graph.Edge{{U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
	h1 := NewHierarchy(4)
	h1.SetHead(0)
	h1.SetMember(2, 0)
	h1.SetMember(3, 0)
	h1.SetHead(1)
	h2 := h1.Clone()
	h2.SetMember(3, 1)
	tr := NewTrace(tvg.NewTrace([]*graph.Graph{g, g, g, g}), []*Hierarchy{h1, h1, h2, h2})
	dt := RecordDeltas(tr, 4)
	if dt.Windows() != 2 {
		t.Fatalf("windows = %d, want 2", dt.Windows())
	}
	if got := dt.StableUntil(0); got != 1 {
		t.Fatalf("StableUntil(0) = %d, want 1", got)
	}
	if got := dt.StableUntil(2); got != math.MaxInt {
		t.Fatalf("StableUntil(2) = %d, want MaxInt", got)
	}
	if dt.At(0) != dt.At(2) {
		// Graph layer is untouched; the snapshot may legitimately share
		// the same pointer across the hierarchy-only transition.
		t.Log("graph pointer changed across hierarchy-only window (allowed)")
	}
	if !dt.HierarchyAt(2).Equal(h2) || !dt.HierarchyAt(0).Equal(h1) {
		t.Fatal("hierarchy windows wrong")
	}
}
