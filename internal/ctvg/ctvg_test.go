package ctvg

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/tvg"
)

// starCluster builds a 5-node graph where 0 is a head with members 1,2 and
// gateway 3 (affiliated), plus an unaffiliated node 4 adjacent to 3.
func starCluster() (*graph.Graph, *Hierarchy) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	h := NewHierarchy(5)
	h.SetHead(0)
	h.SetMember(1, 0)
	h.SetMember(2, 0)
	h.SetGateway(3, 0)
	return g, h
}

func TestRoleString(t *testing.T) {
	if Member.String() != "m" || Head.String() != "h" || Gateway.String() != "g" || Unaffiliated.String() != "-" {
		t.Fatal("role strings wrong")
	}
	if !strings.HasPrefix(Role(200).String(), "Role(") {
		t.Fatal("unknown role string wrong")
	}
}

func TestNewHierarchyUnaffiliated(t *testing.T) {
	h := NewHierarchy(3)
	for v := 0; v < 3; v++ {
		if h.Role[v] != Unaffiliated || h.Cluster[v] != NoCluster {
			t.Fatal("fresh hierarchy not unaffiliated")
		}
	}
	if h.N() != 3 {
		t.Fatalf("N=%d", h.N())
	}
}

func TestAccessors(t *testing.T) {
	_, h := starCluster()
	heads := h.Heads()
	if len(heads) != 1 || heads[0] != 0 {
		t.Fatalf("heads %v", heads)
	}
	mem := h.MembersOf(0)
	if len(mem) != 3 || mem[0] != 1 || mem[1] != 2 || mem[2] != 3 {
		t.Fatalf("members %v", mem)
	}
	gw := h.Gateways()
	if len(gw) != 1 || gw[0] != 3 {
		t.Fatalf("gateways %v", gw)
	}
	if h.HeadOf(1) != 0 || h.HeadOf(0) != 0 || h.HeadOf(4) != NoCluster {
		t.Fatal("HeadOf wrong")
	}
	if !h.IsHead(0) || h.IsHead(1) {
		t.Fatal("IsHead wrong")
	}
	if !h.IsRelay(0) || !h.IsRelay(3) || h.IsRelay(1) || h.IsRelay(4) {
		t.Fatal("IsRelay wrong")
	}
}

func TestValidateAccepts(t *testing.T) {
	g, h := starCluster()
	if err := h.Validate(g); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(g *graph.Graph, h *Hierarchy)
	}{
		{"head with foreign cluster id", func(g *graph.Graph, h *Hierarchy) {
			h.Cluster[0] = 1
		}},
		{"member without cluster", func(g *graph.Graph, h *Hierarchy) {
			h.Cluster[1] = NoCluster
		}},
		{"member naming non-head", func(g *graph.Graph, h *Hierarchy) {
			h.Cluster[1] = 2
		}},
		{"member not adjacent to head", func(g *graph.Graph, h *Hierarchy) {
			g.RemoveEdge(0, 1)
		}},
		{"gateway naming non-head", func(g *graph.Graph, h *Hierarchy) {
			h.Cluster[3] = 2
		}},
		{"gateway not adjacent to head", func(g *graph.Graph, h *Hierarchy) {
			g.RemoveEdge(0, 3)
		}},
		{"unaffiliated with cluster id", func(g *graph.Graph, h *Hierarchy) {
			h.Cluster[4] = 0
		}},
		{"invalid role value", func(g *graph.Graph, h *Hierarchy) {
			h.Role[4] = Role(99)
		}},
	}
	for _, c := range cases {
		g, h := starCluster()
		c.mutate(g, h)
		if err := h.Validate(g); err == nil {
			t.Fatalf("%s: Validate accepted invalid hierarchy", c.name)
		}
	}
}

func TestValidateSizeMismatch(t *testing.T) {
	_, h := starCluster()
	if err := h.Validate(graph.New(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	_, h := starCluster()
	c := h.Clone()
	c.SetHead(4)
	if h.Role[4] == Head {
		t.Fatal("Clone shares storage")
	}
	if !h.Clone().Equal(h) {
		t.Fatal("clone not equal to original")
	}
}

func TestEqualAndSameHeadSet(t *testing.T) {
	_, a := starCluster()
	_, b := starCluster()
	if !a.Equal(b) || !a.SameHeadSet(b) {
		t.Fatal("identical hierarchies compare unequal")
	}
	b.SetMember(4, 0)
	// Head set unchanged but membership differs.
	if a.Equal(b) {
		t.Fatal("different hierarchies compare equal")
	}
	if !a.SameHeadSet(b) {
		t.Fatal("head set should still match")
	}
	b.SetHead(4)
	if a.SameHeadSet(b) {
		t.Fatal("head sets should differ")
	}
	if a.Equal(nil) || a.SameHeadSet(nil) {
		t.Fatal("nil comparisons should be false")
	}
	if a.Equal(NewHierarchy(3)) {
		t.Fatal("size mismatch compares equal")
	}
}

func TestSameCluster(t *testing.T) {
	_, a := starCluster()
	_, b := starCluster()
	if !a.SameCluster(b, 0) {
		t.Fatal("identical clusters differ")
	}
	b.SetMember(4, 0)
	if a.SameCluster(b, 0) {
		t.Fatal("changed cluster compares same")
	}
	// A cluster that exists in neither is vacuously the same.
	if !a.SameCluster(b, 2) {
		t.Fatal("empty clusters should compare same")
	}
	if a.SameCluster(nil, 0) {
		t.Fatal("nil compares same")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g, h := starCluster()
	g2 := g.Clone()
	g2.AddEdge(0, 4)
	h2 := h.Clone()
	h2.SetMember(4, 0)
	tr := NewTrace(tvg.NewTrace([]*graph.Graph{g, g2}), []*Hierarchy{h, h2})
	if tr.N() != 5 || tr.Len() != 2 {
		t.Fatalf("N=%d Len=%d", tr.N(), tr.Len())
	}
	if tr.HierarchyAt(0) != h || tr.HierarchyAt(1) != h2 {
		t.Fatal("HierarchyAt wrong")
	}
	if tr.HierarchyAt(7) != h2 {
		t.Fatal("HierarchyAt past end should repeat last")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestTraceHierarchyNegativePanics(t *testing.T) {
	g, h := starCluster()
	tr := NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*Hierarchy{h})
	defer func() {
		if recover() == nil {
			t.Fatal("negative round did not panic")
		}
	}()
	tr.HierarchyAt(-1)
}

func TestNewTraceLengthMismatchPanics(t *testing.T) {
	g, h := starCluster()
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewTrace(tvg.NewTrace([]*graph.Graph{g, g.Clone()}), []*Hierarchy{h})
}

func TestTraceValidateCatchesBadRound(t *testing.T) {
	g, h := starCluster()
	badH := h.Clone()
	badH.SetMember(4, 2) // 2 is not a head
	tr := NewTrace(tvg.NewTrace([]*graph.Graph{g, g.Clone()}), []*Hierarchy{h, badH})
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted bad round")
	}
}

func TestRecord(t *testing.T) {
	g, h := starCluster()
	src := NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*Hierarchy{h})
	rec := Record(src, 3)
	if rec.Len() != 3 {
		t.Fatalf("Len=%d", rec.Len())
	}
	// Deep copies.
	rec.HierarchyAt(0).SetHead(4)
	if h.IsHead(4) {
		t.Fatal("Record aliased hierarchy")
	}
}

func TestTraceStableUntilIsMinOfGraphAndHierarchy(t *testing.T) {
	g, h := starCluster()
	h2 := h.Clone()
	h2.SetHead(4) // different hierarchy, same graph

	// Constant graph, hierarchy changes at round 2: hierarchy limits.
	graphs := tvg.NewTrace([]*graph.Graph{g, g.Clone(), g.Clone(), g.Clone()})
	tr := NewTrace(graphs, []*Hierarchy{h, h.Clone(), h2, h2.Clone()})
	for r, w := range []int{1, 1, math.MaxInt, math.MaxInt} {
		if got := tr.StableUntil(r); got != w {
			t.Errorf("hier-limited StableUntil(%d) = %d want %d", r, got, w)
		}
	}

	// Constant hierarchy, graph changes at round 1: graph limits.
	ring := graph.Ring(5)
	graphs2 := tvg.NewTrace([]*graph.Graph{g, ring, ring.Clone()})
	tr2 := NewTrace(graphs2, []*Hierarchy{h, h.Clone(), h.Clone()})
	for r, w := range []int{0, math.MaxInt, math.MaxInt} {
		if got := tr2.StableUntil(r); got != w {
			t.Errorf("graph-limited StableUntil(%d) = %d want %d", r, got, w)
		}
	}

	// Past the recorded range both components repeat forever.
	if got := tr.StableUntil(50); got != math.MaxInt {
		t.Errorf("StableUntil past end = %d want MaxInt", got)
	}
}

// phasedDynamic presents 2-round phases alternating between two
// (graph, hierarchy) pairs and advertises the windows through Stability.
type phasedDynamic struct {
	g0, g1 *graph.Graph
	h0, h1 *Hierarchy
}

func (d phasedDynamic) N() int { return d.g0.N() }

func (d phasedDynamic) At(r int) *graph.Graph {
	if (r/2)%2 == 0 {
		return d.g0
	}
	return d.g1
}

func (d phasedDynamic) HierarchyAt(r int) *Hierarchy {
	if (r/2)%2 == 0 {
		return d.h0
	}
	return d.h1
}

func (d phasedDynamic) StableUntil(r int) int { return (r/2+1)*2 - 1 }

func TestRecordDedupsStableWindows(t *testing.T) {
	g0, h0 := starCluster()
	g1 := g0.Clone()
	g1.AddEdge(1, 2)
	h1 := h0.Clone()
	h1.SetHead(4)
	d := phasedDynamic{g0: g0, g1: g1, h0: h0, h1: h1}

	tr := Record(d, 6)
	// Windows survive recording (rounds 4-5 are the repeated tail).
	for r, want := range []int{1, 1, 3, 3, math.MaxInt, math.MaxInt} {
		if got := tr.StableUntil(r); got != want {
			t.Errorf("StableUntil(%d) = %d want %d", r, got, want)
		}
	}
	// One clone per window for BOTH layers.
	if tr.At(0) != tr.At(1) || tr.HierarchyAt(0) != tr.HierarchyAt(1) {
		t.Error("first window rounds do not share snapshot/hierarchy")
	}
	if tr.At(2) != tr.At(3) || tr.HierarchyAt(2) != tr.HierarchyAt(3) {
		t.Error("second window rounds do not share snapshot/hierarchy")
	}
	if tr.At(1) == tr.At(2) || tr.HierarchyAt(1) == tr.HierarchyAt(2) {
		t.Error("distinct windows share state")
	}
	// Still copies of the source, and content-faithful.
	if tr.At(0) == g0 || tr.HierarchyAt(0) == h0 {
		t.Error("Record aliased the source")
	}
	for r := 0; r < 6; r++ {
		if !tr.At(r).Equal(d.At(r)) || !tr.HierarchyAt(r).Equal(d.HierarchyAt(r)) {
			t.Fatalf("round %d content mismatch", r)
		}
	}
}

func TestRecordNonPositiveRoundsPanics(t *testing.T) {
	g, h := starCluster()
	src := NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*Hierarchy{h})
	defer func() {
		if recover() == nil {
			t.Fatal("Record(d, 0) did not panic")
		}
	}()
	Record(src, 0)
}
