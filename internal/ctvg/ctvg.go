// Package ctvg implements the Cluster-based Time-Varying Graph of the
// paper's Definition 1: a flat time-varying graph (internal/tvg) extended
// with a per-round role function C: V×Γ → {head, gateway, member} and a
// per-round cluster-membership function I: V×Γ → N.
//
// A CTVG dynamic network is the object on which the (T, L)-HiNet stability
// properties (internal/hinet) are stated and on which the hierarchical
// dissemination algorithms (internal/core) run.
package ctvg

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tvg"
)

// Role is the cluster status of a node in a given round: the value of the
// paper's C(v, t).
type Role byte

const (
	// Member is an ordinary cluster member ("m" in the paper).
	Member Role = iota
	// Head is a cluster head ("h"); its node ID doubles as the cluster ID.
	Head
	// Gateway is an ordinary node that forwards packets between clusters
	// ("g"); it may additionally belong to a cluster.
	Gateway
	// Unaffiliated marks a node currently in no cluster. The paper allows
	// this ("each node belongs to AT MOST one cluster at any given time").
	Unaffiliated
)

// String returns the paper's single-letter status for the role.
func (r Role) String() string {
	switch r {
	case Member:
		return "m"
	case Head:
		return "h"
	case Gateway:
		return "g"
	case Unaffiliated:
		return "-"
	default:
		return fmt.Sprintf("Role(%d)", byte(r))
	}
}

// NoCluster is the I(v, t) value of a node that belongs to no cluster.
const NoCluster = -1

// Hierarchy is the cluster structure of one round: the restriction of C and
// I to a single time instant.
type Hierarchy struct {
	// Role[v] is C(v, t).
	Role []Role
	// Cluster[v] is I(v, t): the node ID of v's cluster head, or NoCluster.
	Cluster []int
}

// NewHierarchy returns a hierarchy on n nodes with every node unaffiliated.
func NewHierarchy(n int) *Hierarchy {
	h := &Hierarchy{
		Role:    make([]Role, n),
		Cluster: make([]int, n),
	}
	for v := range h.Role {
		h.Role[v] = Unaffiliated
		h.Cluster[v] = NoCluster
	}
	return h
}

// N returns the number of nodes.
func (h *Hierarchy) N() int { return len(h.Role) }

// Clone returns an independent copy.
func (h *Hierarchy) Clone() *Hierarchy {
	c := &Hierarchy{
		Role:    append([]Role(nil), h.Role...),
		Cluster: append([]int(nil), h.Cluster...),
	}
	return c
}

// SetHead makes v the head of its own cluster.
func (h *Hierarchy) SetHead(v int) {
	h.Role[v] = Head
	h.Cluster[v] = v
}

// SetMember affiliates v with the cluster headed by head.
func (h *Hierarchy) SetMember(v, head int) {
	h.Role[v] = Member
	h.Cluster[v] = head
}

// SetGateway marks v a gateway affiliated with the cluster headed by head
// (pass NoCluster for a gateway that belongs to no cluster).
func (h *Hierarchy) SetGateway(v, head int) {
	h.Role[v] = Gateway
	h.Cluster[v] = head
}

// Heads returns the cluster-head set V_h of this round, ascending.
func (h *Hierarchy) Heads() []int {
	var out []int
	for v, r := range h.Role {
		if r == Head {
			out = append(out, v)
		}
	}
	return out
}

// MembersOf returns the member set M_k of the cluster headed by k,
// including gateway nodes affiliated with k but excluding k itself,
// ascending.
func (h *Hierarchy) MembersOf(k int) []int {
	var out []int
	for v, c := range h.Cluster {
		if c == k && v != k {
			out = append(out, v)
		}
	}
	return out
}

// Gateways returns all gateway nodes of this round, ascending.
func (h *Hierarchy) Gateways() []int {
	var out []int
	for v, r := range h.Role {
		if r == Gateway {
			out = append(out, v)
		}
	}
	return out
}

// HeadOf returns the cluster head of v (which is v itself for a head), or
// NoCluster if v is unaffiliated.
func (h *Hierarchy) HeadOf(v int) int { return h.Cluster[v] }

// IsHead reports whether v is a cluster head.
func (h *Hierarchy) IsHead(v int) bool { return h.Role[v] == Head }

// IsRelay reports whether v broadcasts like a head/gateway under the
// paper's algorithms (both roles execute the identical relay code).
func (h *Hierarchy) IsRelay(v int) bool {
	return h.Role[v] == Head || h.Role[v] == Gateway
}

// Validate checks the structural invariants of the paper's system model
// against the round's communication graph g:
//
//   - a head's cluster ID is its own node ID;
//   - every affiliated node's cluster ID names a head;
//   - members are neighbours of their head ("the members of a cluster are
//     neighbors of the cluster head");
//   - roles and cluster IDs are consistent (unaffiliated ⇔ no cluster).
func (h *Hierarchy) Validate(g *graph.Graph) error {
	if g.N() != h.N() {
		return fmt.Errorf("ctvg: hierarchy has %d nodes, graph has %d", h.N(), g.N())
	}
	for v, role := range h.Role {
		c := h.Cluster[v]
		switch role {
		case Head:
			if c != v {
				return fmt.Errorf("ctvg: head %d has cluster ID %d", v, c)
			}
		case Member:
			if c == NoCluster {
				return fmt.Errorf("ctvg: member %d has no cluster", v)
			}
			if h.Role[c] != Head {
				return fmt.Errorf("ctvg: member %d names non-head %d", v, c)
			}
			if !g.HasEdge(v, c) {
				return fmt.Errorf("ctvg: member %d not adjacent to head %d", v, c)
			}
		case Gateway:
			if c != NoCluster {
				if h.Role[c] != Head {
					return fmt.Errorf("ctvg: gateway %d names non-head %d", v, c)
				}
				if !g.HasEdge(v, c) {
					return fmt.Errorf("ctvg: gateway %d not adjacent to head %d", v, c)
				}
			}
		case Unaffiliated:
			if c != NoCluster {
				return fmt.Errorf("ctvg: unaffiliated %d has cluster %d", v, c)
			}
		default:
			return fmt.Errorf("ctvg: node %d has invalid role %d", v, byte(role))
		}
	}
	return nil
}

// Equal reports whether two hierarchies assign identical roles and cluster
// IDs to every node.
func (h *Hierarchy) Equal(o *Hierarchy) bool {
	if o == nil || h.N() != o.N() {
		return false
	}
	for v := range h.Role {
		if h.Role[v] != o.Role[v] || h.Cluster[v] != o.Cluster[v] {
			return false
		}
	}
	return true
}

// SameHeadSet reports whether h and o have identical head sets (Definition
// 2's per-round comparison V_h^i = V_h^j).
func (h *Hierarchy) SameHeadSet(o *Hierarchy) bool {
	if o == nil || h.N() != o.N() {
		return false
	}
	for v := range h.Role {
		if (h.Role[v] == Head) != (o.Role[v] == Head) {
			return false
		}
	}
	return true
}

// SameCluster reports whether cluster k has identical member sets in h and
// o (Definition 3's per-round comparison M_k^i = M_k^j).
func (h *Hierarchy) SameCluster(o *Hierarchy, k int) bool {
	if o == nil || h.N() != o.N() {
		return false
	}
	for v := range h.Cluster {
		if (h.Cluster[v] == k) != (o.Cluster[v] == k) {
			return false
		}
	}
	return true
}

// Dynamic is a dynamic network with a cluster hierarchy: the full CTVG.
type Dynamic interface {
	tvg.Dynamic
	// HierarchyAt returns the round-r hierarchy (read-only).
	HierarchyAt(r int) *Hierarchy
}

// Stability is the optional window-stability interface (see tvg.Stability).
// For a clustered dynamic the contract covers both layers: within
// [r, StableUntil(r)] the snapshot AND the hierarchy are content-identical
// to round r's.
type Stability = tvg.Stability

// Trace is a recorded CTVG: parallel snapshot and hierarchy sequences.
// Rounds beyond the recorded range repeat the final entries.
type Trace struct {
	graphs *tvg.Trace
	hier   []*Hierarchy
	// stable[r] bounds the hierarchy's stability window at round r,
	// precomputed eagerly so shared traces stay read-only under concurrent
	// runs. The graph layer keeps its own index inside graphs.
	stable []int
}

// NewTrace pairs a graph trace with per-round hierarchies of equal length.
func NewTrace(graphs *tvg.Trace, hier []*Hierarchy) *Trace {
	if graphs.Len() != len(hier) {
		panic(fmt.Sprintf("ctvg: %d graph rounds but %d hierarchy rounds", graphs.Len(), len(hier)))
	}
	for r, h := range hier {
		if h.N() != graphs.N() {
			panic(fmt.Sprintf("ctvg: hierarchy %d has wrong node count", r))
		}
	}
	t := &Trace{graphs: graphs, hier: hier}
	t.stable = make([]int, len(hier))
	t.stable[len(hier)-1] = math.MaxInt // past-the-end rounds repeat it
	for r := len(hier) - 2; r >= 0; r-- {
		if hier[r] == hier[r+1] || hier[r].Equal(hier[r+1]) {
			t.stable[r] = t.stable[r+1]
		} else {
			t.stable[r] = r
		}
	}
	return t
}

// N implements Dynamic.
func (t *Trace) N() int { return t.graphs.N() }

// Len returns the number of recorded rounds.
func (t *Trace) Len() int { return len(t.hier) }

// At implements Dynamic.
func (t *Trace) At(r int) *graph.Graph { return t.graphs.At(r) }

// HierarchyAt implements Dynamic.
func (t *Trace) HierarchyAt(r int) *Hierarchy {
	if r < 0 {
		panic("ctvg: negative round")
	}
	if r >= len(t.hier) {
		r = len(t.hier) - 1
	}
	return t.hier[r]
}

// StableUntil implements Stability: the window end is the tighter of the
// graph trace's and the hierarchy sequence's stability bounds.
func (t *Trace) StableUntil(r int) int {
	gs := t.graphs.StableUntil(r)
	hs := math.MaxInt
	if r < len(t.stable) {
		hs = t.stable[r]
	}
	if hs < gs {
		return hs
	}
	return gs
}

// Record materialises rounds [0, rounds) of any CTVG Dynamic into a Trace.
//
// Stable windows are deduplicated exactly as in tvg.Record: when the source
// advertises Stability (or hands back the identical snapshot/hierarchy
// pointers for consecutive rounds), every round of the window shares one
// clone of each layer. A (T, L)-stable adversary therefore records in
// O(windows·E) memory instead of O(rounds·E), and the shared pointers let
// the NewTrace stability precomputes hit their pointer fast-paths.
func Record(d Dynamic, rounds int) *Trace {
	if rounds <= 0 {
		panic("ctvg: Record needs rounds > 0")
	}
	st, _ := d.(Stability)
	snaps := make([]*graph.Graph, rounds)
	hier := make([]*Hierarchy, rounds)
	var prevSrcG, prevSnapG *graph.Graph
	var prevSrcH, prevSnapH *Hierarchy
	for r := 0; r < rounds; {
		srcG, srcH := d.At(r), d.HierarchyAt(r)
		snapG := prevSnapG
		if srcG != prevSrcG || snapG == nil {
			snapG = srcG.Clone()
		}
		snapH := prevSnapH
		if srcH != prevSrcH || snapH == nil {
			snapH = srcH.Clone()
		}
		end := r
		if st != nil {
			if s := st.StableUntil(r); s > end {
				end = s
				if end > rounds-1 {
					end = rounds - 1
				}
			}
		}
		for w := r; w <= end; w++ {
			snaps[w] = snapG
			hier[w] = snapH
		}
		prevSrcG, prevSnapG = srcG, snapG
		prevSrcH, prevSnapH = srcH, snapH
		r = end + 1
	}
	return NewTrace(tvg.NewTrace(snaps), hier)
}

// Validate checks every recorded round's hierarchy against its graph.
func (t *Trace) Validate() error {
	for r := 0; r < t.Len(); r++ {
		if err := t.hier[r].Validate(t.At(r)); err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
	}
	return nil
}

var (
	_ Dynamic   = (*Trace)(nil)
	_ Stability = (*Trace)(nil)
)
