package ctvg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// RoleChange is one node's hierarchy transition between two stability
// windows: both the old and the new (role, cluster) pair are carried so the
// change can be unapplied when a delta trace rewinds.
type RoleChange struct {
	V          int
	OldRole    Role
	NewRole    Role
	OldCluster int
	NewCluster int
}

// HierarchyDelta is the set of per-node changes between two hierarchies,
// sorted by node ID. An empty delta means the hierarchies are Equal.
type HierarchyDelta []RoleChange

// HierarchyDeltaBetween returns the delta transforming a into b (equal node
// counts required).
func HierarchyDeltaBetween(a, b *Hierarchy) HierarchyDelta {
	if a.N() != b.N() {
		panic("ctvg: HierarchyDeltaBetween on different node counts")
	}
	if a == b {
		return nil
	}
	var d HierarchyDelta
	for v := range a.Role {
		if a.Role[v] != b.Role[v] || a.Cluster[v] != b.Cluster[v] {
			d = append(d, RoleChange{
				V:          v,
				OldRole:    a.Role[v],
				NewRole:    b.Role[v],
				OldCluster: a.Cluster[v],
				NewCluster: b.Cluster[v],
			})
		}
	}
	return d
}

// ApplyDelta returns a fresh hierarchy equal to h with the delta applied.
// Applying to a hierarchy that does not match the delta's old state panics,
// so forward/backward replays cannot silently drift.
func (h *Hierarchy) ApplyDelta(d HierarchyDelta) *Hierarchy {
	c := h.Clone()
	for _, ch := range d {
		if c.Role[ch.V] != ch.OldRole || c.Cluster[ch.V] != ch.OldCluster {
			panic(fmt.Sprintf("ctvg: ApplyDelta on node %d: state (%v,%d) does not match delta old state (%v,%d)",
				ch.V, c.Role[ch.V], c.Cluster[ch.V], ch.OldRole, ch.OldCluster))
		}
		c.Role[ch.V] = ch.NewRole
		c.Cluster[ch.V] = ch.NewCluster
	}
	return c
}

// UnapplyDelta returns a fresh hierarchy equal to h with the delta undone.
func (h *Hierarchy) UnapplyDelta(d HierarchyDelta) *Hierarchy {
	c := h.Clone()
	for _, ch := range d {
		if c.Role[ch.V] != ch.NewRole || c.Cluster[ch.V] != ch.NewCluster {
			panic(fmt.Sprintf("ctvg: UnapplyDelta on node %d: state (%v,%d) does not match delta new state (%v,%d)",
				ch.V, c.Role[ch.V], c.Cluster[ch.V], ch.NewRole, ch.NewCluster))
		}
		c.Role[ch.V] = ch.OldRole
		c.Cluster[ch.V] = ch.OldCluster
	}
	return c
}

// DeltaSource is the optional interface through which a generating CTVG
// Dynamic emits window transitions natively as deltas on both layers (see
// tvg.DeltaSource for the flat half of the contract).
type DeltaSource interface {
	Dynamic
	// WindowDelta returns the graph and hierarchy deltas transforming the
	// state of round prevStart into the state of round start. Both rounds
	// must be stability-window starts with prevStart < start, visited in
	// ascending order.
	WindowDelta(prevStart, start int) (*graph.Delta, HierarchyDelta)
}

// DeltaTrace is a recorded CTVG stored as one base snapshot/hierarchy pair
// plus one (graph delta, hierarchy delta) pair per stability-window
// transition: the O(changes) counterpart of Trace. Windows are the rounds
// over which BOTH layers are constant, matching Trace's combined
// StableUntil. Rounds beyond the recorded range repeat the final window.
//
// Like tvg.DeltaTrace, the materialising cursor makes this type stateful:
// a DeltaTrace must not be shared by concurrent runs (the engine's own
// worker parallelism is fine — snapshots are fetched by the coordinating
// goroutine only). Within one window, At and HierarchyAt return stable
// pointers, which Record's dedup and the engine's stability cache rely on.
type DeltaTrace struct {
	n       int
	length  int
	starts  []int // starts[i] is the first round of window i; starts[0] == 0
	gdeltas []*graph.Delta
	hdeltas []HierarchyDelta

	cur   int
	curG  *graph.Graph
	curH  *Hierarchy
	baseG *graph.Graph
	baseH *Hierarchy
}

// NewDeltaTrace assembles a clustered delta trace. starts must be strictly
// increasing within (0, rounds); the two delta slices run parallel to it
// and may contain empty entries for the layer that did not change (but not
// both empty at once — such a transition is no window boundary).
func NewDeltaTrace(baseG *graph.Graph, baseH *Hierarchy, starts []int, gdeltas []*graph.Delta, hdeltas []HierarchyDelta, rounds int) *DeltaTrace {
	if rounds <= 0 {
		panic("ctvg: DeltaTrace needs rounds > 0")
	}
	if baseG.N() != baseH.N() {
		panic("ctvg: DeltaTrace base graph/hierarchy node counts differ")
	}
	if len(starts) != len(gdeltas) || len(starts) != len(hdeltas) {
		panic(fmt.Sprintf("ctvg: %d window starts but %d graph deltas, %d hierarchy deltas",
			len(starts), len(gdeltas), len(hdeltas)))
	}
	prev := 0
	for i, s := range starts {
		if s <= prev || s >= rounds {
			panic(fmt.Sprintf("ctvg: window start %d out of order (round %d, %d recorded)", i, s, rounds))
		}
		if gdeltas[i].Empty() && len(hdeltas[i]) == 0 {
			panic(fmt.Sprintf("ctvg: window %d changes neither layer", i))
		}
		prev = s
	}
	return &DeltaTrace{
		n:       baseG.N(),
		length:  rounds,
		starts:  append([]int{0}, starts...),
		gdeltas: append([]*graph.Delta{{}}, gdeltas...),
		hdeltas: append([]HierarchyDelta{nil}, hdeltas...),
		baseG:   baseG,
		baseH:   baseH,
		curG:    baseG,
		curH:    baseH,
	}
}

// N implements Dynamic.
func (t *DeltaTrace) N() int { return t.n }

// Len returns the number of recorded rounds.
func (t *DeltaTrace) Len() int { return t.length }

// Windows returns the number of stability windows.
func (t *DeltaTrace) Windows() int { return len(t.starts) }

// Changes returns the total edge and role changes across all transitions.
func (t *DeltaTrace) Changes() (edges, roles int) {
	for i := 1; i < len(t.starts); i++ {
		edges += t.gdeltas[i].Len()
		roles += len(t.hdeltas[i])
	}
	return edges, roles
}

func (t *DeltaTrace) windowOf(r int) int {
	return sort.SearchInts(t.starts, r+1) - 1
}

// seek moves the cursor to window w, materialising both layers.
func (t *DeltaTrace) seek(w int) {
	for t.cur < w {
		i := t.cur + 1
		if !t.gdeltas[i].Empty() {
			t.curG = t.curG.ApplyDelta(t.gdeltas[i])
		}
		if len(t.hdeltas[i]) > 0 {
			t.curH = t.curH.ApplyDelta(t.hdeltas[i])
		}
		t.cur = i
	}
	if t.cur > w {
		if w == 0 {
			t.cur, t.curG, t.curH = 0, t.baseG, t.baseH
		}
		for t.cur > w {
			i := t.cur
			if !t.gdeltas[i].Empty() {
				t.curG = t.curG.UnapplyDelta(t.gdeltas[i])
			}
			if len(t.hdeltas[i]) > 0 {
				t.curH = t.curH.UnapplyDelta(t.hdeltas[i])
			}
			t.cur = i - 1
		}
	}
}

func (t *DeltaTrace) clamp(r int) int {
	if r < 0 {
		panic("ctvg: negative round")
	}
	if r >= t.length {
		r = t.length - 1
	}
	return r
}

// At implements Dynamic; rounds past the end repeat the last window.
func (t *DeltaTrace) At(r int) *graph.Graph {
	t.seek(t.windowOf(t.clamp(r)))
	return t.curG
}

// HierarchyAt implements Dynamic.
func (t *DeltaTrace) HierarchyAt(r int) *Hierarchy {
	t.seek(t.windowOf(t.clamp(r)))
	return t.curH
}

// StableUntil implements Stability over both layers: windows are maximal
// runs where neither the snapshot nor the hierarchy changes.
func (t *DeltaTrace) StableUntil(r int) int {
	if r < 0 {
		panic("ctvg: negative round")
	}
	if r >= t.length {
		return math.MaxInt
	}
	w := t.windowOf(r)
	if w == len(t.starts)-1 {
		return math.MaxInt
	}
	return t.starts[w+1] - 1
}

// RecordDeltas materialises rounds [0, rounds) of any CTVG Dynamic into a
// DeltaTrace: the streaming counterpart of Record. Native DeltaSource
// transitions are consumed when offered; otherwise consecutive window
// states are diffed. Transitions that change neither layer are merged into
// the preceding window, matching Record's dedup.
func RecordDeltas(d Dynamic, rounds int) *DeltaTrace {
	if rounds <= 0 {
		panic("ctvg: RecordDeltas needs rounds > 0")
	}
	st, _ := d.(Stability)
	src, native := d.(DeltaSource)

	prevG, prevH := d.At(0), d.HierarchyAt(0)
	baseG, baseH := prevG.Clone(), prevH.Clone()
	var starts []int
	var gdeltas []*graph.Delta
	var hdeltas []HierarchyDelta
	prevStart := 0
	next := func(r int) int {
		if st != nil {
			if s := st.StableUntil(r); s > r {
				if s >= rounds-1 {
					return rounds // this window covers the rest
				}
				return s + 1
			}
		}
		return r + 1
	}
	for r := next(0); r < rounds; r = next(r) {
		var gd *graph.Delta
		var hd HierarchyDelta
		if native {
			gd, hd = src.WindowDelta(prevStart, r)
		} else {
			curG, curH := d.At(r), d.HierarchyAt(r)
			gd = graph.DeltaBetween(prevG, curG)
			hd = HierarchyDeltaBetween(prevH, curH)
			prevG, prevH = curG, curH
		}
		if gd.Empty() && len(hd) == 0 {
			continue
		}
		starts = append(starts, r)
		gdeltas = append(gdeltas, gd)
		hdeltas = append(hdeltas, hd)
		prevStart = r
	}
	return NewDeltaTrace(baseG, baseH, starts, gdeltas, hdeltas, rounds)
}

// Validate checks each window's hierarchy against its graph (one check per
// window suffices: both layers are constant inside a window).
func (t *DeltaTrace) Validate() error {
	for _, r := range t.starts {
		if err := t.HierarchyAt(r).Validate(t.At(r)); err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
	}
	return nil
}

var (
	_ Dynamic   = (*DeltaTrace)(nil)
	_ Stability = (*DeltaTrace)(nil)
)
