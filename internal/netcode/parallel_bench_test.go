package netcode

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// The within-round parallel engine pays off when per-node work is real:
// GF(2) basis reduction at large k is the heaviest per-node step in the
// repository.
func benchCoded(b *testing.B, workers int) {
	const n, k = 600, 256
	adv := adversary.NewOneInterval(n, 3*n, xrand.New(1))
	assign := token.Random(n, k, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.MustRunProtocol(sim.NewFlat(adv), CodedFlood{Seed: uint64(i)}, assign,
			sim.Options{MaxRounds: 25, Workers: workers})
	}
}

func BenchmarkCodedSerial(b *testing.B)   { benchCoded(b, 1) }
func BenchmarkCodedParallel(b *testing.B) { benchCoded(b, 2) }
