package netcode

import (
	"repro/internal/bitset"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// CodedFlood is the Haeupler–Karger style network-coded dissemination
// protocol: every node broadcasts, each round, a uniformly random GF(2)
// combination of the coded packets it has received (plus its own tokens as
// unit vectors), and decodes once its basis reaches full rank.
//
// Cost accounting: a coded packet carries one token-sized payload plus a
// k-bit coefficient header, so it is charged 1 token-equivalent
// (Message.Units = 1) — the standard accounting under which Haeupler &
// Karger report their speed-ups. Compared with full-set flooding, coding
// sends k-times smaller packets at the price of a randomized completion
// time of O(n + k) rounds with high probability.
type CodedFlood struct {
	// Seed derives each node's private coding randomness. Two runs with
	// equal seeds are identical.
	Seed uint64
}

// Name implements sim.Protocol.
func (p CodedFlood) Name() string { return "hk-coded-flood" }

// Nodes implements sim.Protocol.
func (p CodedFlood) Nodes(assign *token.Assignment) []sim.Node {
	master := xrand.New(p.Seed)
	nodes := make([]sim.Node, assign.N())
	for v := range nodes {
		b := NewBasis(assign.K)
		assign.Initial[v].Range(func(t int) bool {
			b.Add(Unit(assign.K, t))
			return true
		})
		nodes[v] = &codedNode{basis: b, rng: master.Split(), k: assign.K}
	}
	return nodes
}

type codedNode struct {
	basis *Basis
	rng   *xrand.Rand
	k     int

	// decoded caches the decodable-token set; it is invalidated whenever
	// the rank grows (Decodable is a reduction per token, so caching
	// matters in the engine's completion check, which runs every round).
	decoded   *bitset.Set
	decodedOK bool
}

// Send implements sim.Node: broadcast a random combination of the span.
func (n *codedNode) Send(v sim.View) *sim.Message {
	if n.basis.Rank() == 0 {
		return nil
	}
	comb := n.basis.RandomCombination(n.rng)
	// A zero combination carries no information; retry a few times (the
	// probability of three consecutive zeros is 2^{-3·rank}).
	for tries := 0; comb.IsZero() && tries < 3; tries++ {
		comb = n.basis.RandomCombination(n.rng)
	}
	if comb.IsZero() {
		return nil
	}
	// Round-scoped arena payload; receivers clone before reducing
	// (Basis.Add), so nothing retains it past the round.
	payload := v.NewSet()
	payload.SetWords(comb)
	m := v.NewMessage()
	m.To = sim.NoAddr
	m.Kind = sim.KindCoded
	m.Tokens = payload
	m.Units = 1
	return m
}

// Deliver implements sim.Node: absorb received combinations.
func (n *codedNode) Deliver(v sim.View, msgs []*sim.Message) {
	for _, m := range msgs {
		if m.Kind != sim.KindCoded {
			continue
		}
		if n.basis.Add(Vec(m.Tokens.Words())) {
			n.decodedOK = false
		}
	}
}

// Tokens implements sim.Node: the set of currently decodable tokens.
func (n *codedNode) Tokens() *bitset.Set {
	if !n.decodedOK {
		s := bitset.New(n.k)
		if n.basis.Full() {
			for t := 0; t < n.k; t++ {
				s.Add(t)
			}
		} else {
			for t := 0; t < n.k; t++ {
				if n.basis.Decodable(t) {
					s.Add(t)
				}
			}
		}
		n.decoded = s
		n.decodedOK = true
	}
	return n.decoded
}

var _ sim.Protocol = CodedFlood{}
