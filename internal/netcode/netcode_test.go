package netcode

import (
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

func TestVecBasics(t *testing.T) {
	v := NewVec(70)
	if !v.IsZero() || v.LowestBit() != -1 {
		t.Fatal("fresh vec not zero")
	}
	v.Set(3)
	v.Set(69)
	if !v.Bit(3) || !v.Bit(69) || v.Bit(4) {
		t.Fatal("Set/Bit wrong")
	}
	if v.LowestBit() != 3 {
		t.Fatalf("LowestBit=%d", v.LowestBit())
	}
	c := v.Clone()
	c.Xor(v)
	if !c.IsZero() {
		t.Fatal("v xor v != 0")
	}
	if v.IsZero() {
		t.Fatal("Clone aliased")
	}
}

func TestUnit(t *testing.T) {
	u := Unit(10, 7)
	if !u.Bit(7) || u.LowestBit() != 7 {
		t.Fatal("Unit wrong")
	}
}

func TestBasisRankAndContains(t *testing.T) {
	b := NewBasis(8)
	if b.Rank() != 0 || b.Full() {
		t.Fatal("fresh basis wrong")
	}
	if !b.Add(Unit(8, 1)) || !b.Add(Unit(8, 3)) {
		t.Fatal("fresh adds failed")
	}
	if b.Add(Unit(8, 1)) {
		t.Fatal("duplicate grew rank")
	}
	// e1 ^ e3 is in the span; e2 is not.
	v := Unit(8, 1)
	v.Xor(Unit(8, 3))
	if !b.Contains(v) {
		t.Fatal("span membership wrong")
	}
	if b.Contains(Unit(8, 2)) {
		t.Fatal("non-member accepted")
	}
	if b.Add(v) {
		t.Fatal("span member grew rank")
	}
	if b.Rank() != 2 {
		t.Fatalf("rank %d", b.Rank())
	}
}

func TestBasisDecodable(t *testing.T) {
	b := NewBasis(4)
	// Add e0^e1 and e1: both e0 and e1 become decodable; e2, e3 not.
	v01 := Unit(4, 0)
	v01.Xor(Unit(4, 1))
	b.Add(v01)
	b.Add(Unit(4, 1))
	if !b.Decodable(0) || !b.Decodable(1) {
		t.Fatal("decodable wrong")
	}
	if b.Decodable(2) || b.Decodable(3) {
		t.Fatal("undecodable reported decodable")
	}
}

func TestBasisFull(t *testing.T) {
	b := NewBasis(5)
	for i := 0; i < 5; i++ {
		b.Add(Unit(5, i))
	}
	if !b.Full() {
		t.Fatal("not full")
	}
	for i := 0; i < 5; i++ {
		if !b.Decodable(i) {
			t.Fatalf("token %d not decodable at full rank", i)
		}
	}
}

func TestBasisZeroDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBasis(0)
}

func TestRandomCombinationInSpan(t *testing.T) {
	rng := xrand.New(5)
	b := NewBasis(16)
	b.Add(Unit(16, 2))
	b.Add(Unit(16, 9))
	v := Unit(16, 2)
	v.Xor(Unit(16, 14))
	b.Add(v)
	for i := 0; i < 100; i++ {
		c := b.RandomCombination(rng)
		if !b.Contains(c) {
			t.Fatal("combination outside span")
		}
	}
}

func TestQuickBasisRankNeverExceedsAdds(t *testing.T) {
	f := func(raw []byte) bool {
		const k = 12
		b := NewBasis(k)
		adds := 0
		grown := 0
		for _, by := range raw {
			v := NewVec(k)
			v[0] = uint64(by) & ((1 << k) - 1)
			if v.IsZero() {
				continue
			}
			adds++
			if b.Add(v) {
				grown++
			}
			if !b.Contains(v) {
				return false // everything added must be in the span
			}
		}
		return b.Rank() == grown && b.Rank() <= adds && b.Rank() <= k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodedFloodCompletesOnStaticAndDynamic(t *testing.T) {
	const n, k = 30, 8
	for seed := uint64(0); seed < 5; seed++ {
		adv := adversary.NewOneInterval(n, 0, xrand.New(seed))
		assign := token.Spread(n, k, xrand.New(seed+10))
		met := sim.MustRunProtocol(sim.NewFlat(adv), CodedFlood{Seed: seed}, assign,
			sim.Options{MaxRounds: 4 * (n + k), StopWhenComplete: true})
		if !met.Complete {
			t.Fatalf("seed %d: coded flood incomplete: %v", seed, met)
		}
	}
}

func TestCodedFloodCostBelowFloodAtLargeK(t *testing.T) {
	// Haeupler–Karger's advantage: with k large, sending 1-token coded
	// packets beats broadcasting k-token sets, despite more rounds.
	const n, k = 25, 32
	adv1 := adversary.NewOneInterval(n, 0, xrand.New(3))
	assign := token.Random(n, k, xrand.New(4))
	coded := sim.MustRunProtocol(sim.NewFlat(adv1), CodedFlood{Seed: 9}, assign,
		sim.Options{MaxRounds: 6 * (n + k), StopWhenComplete: true})
	if !coded.Complete {
		t.Fatalf("coded incomplete: %v", coded)
	}
	adv2 := adversary.NewOneInterval(n, 0, xrand.New(3))
	flood := sim.MustRunProtocol(sim.NewFlat(adv2), baseline.Flood{}, assign,
		sim.Options{MaxRounds: n - 1, StopWhenComplete: true})
	if !flood.Complete {
		t.Fatalf("flood incomplete: %v", flood)
	}
	if coded.TokensSent >= flood.TokensSent {
		t.Fatalf("coded cost %d not below flood cost %d at k=%d",
			coded.TokensSent, flood.TokensSent, k)
	}
}

func TestCodedPacketsChargedOneUnit(t *testing.T) {
	const n, k = 10, 6
	adv := adversary.NewOneInterval(n, 0, xrand.New(7))
	assign := token.Spread(n, k, xrand.New(8))
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.Kind != sim.KindCoded {
			t.Fatalf("non-coded message %v", m.Kind)
		}
		if m.Cost() != 1 {
			t.Fatalf("coded packet charged %d", m.Cost())
		}
	}}
	met := sim.MustRunProtocol(sim.NewFlat(adv), CodedFlood{Seed: 1}, assign,
		sim.Options{MaxRounds: 30, Observer: obs})
	if met.TokensSent != met.Messages {
		t.Fatalf("unit accounting broken: %d tokens, %d messages", met.TokensSent, met.Messages)
	}
	if met.MessagesByKind[sim.KindCoded] != met.Messages {
		t.Fatal("per-kind accounting missing coded packets")
	}
}

func TestCodedFloodDeterministicWithSeed(t *testing.T) {
	const n, k = 15, 5
	run := func() *sim.Metrics {
		adv := adversary.NewOneInterval(n, 0, xrand.New(2))
		assign := token.Spread(n, k, xrand.New(3))
		return sim.MustRunProtocol(sim.NewFlat(adv), CodedFlood{Seed: 11}, assign,
			sim.Options{MaxRounds: 60, StopWhenComplete: true})
	}
	a, b := run(), run()
	if a.TokensSent != b.TokensSent || a.CompletionRound != b.CompletionRound {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func BenchmarkBasisAdd(b *testing.B) {
	rng := xrand.New(1)
	const k = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bas := NewBasis(k)
		for j := 0; j < k; j++ {
			v := NewVec(k)
			v[0] = rng.Uint64()
			bas.Add(v)
		}
	}
}

func BenchmarkCodedFlood(b *testing.B) {
	const n, k = 50, 16
	for i := 0; i < b.N; i++ {
		adv := adversary.NewOneInterval(n, 0, xrand.New(uint64(i)))
		assign := token.Spread(n, k, xrand.New(uint64(i)+1))
		sim.MustRunProtocol(sim.NewFlat(adv), CodedFlood{Seed: uint64(i)}, assign,
			sim.Options{MaxRounds: 4 * (n + k), StopWhenComplete: true})
	}
}
