package netcode_test

import (
	"fmt"

	"repro/internal/netcode"
)

// Example shows the GF(2) decoding substrate: a receiver accumulates coded
// combinations and can decode token i once the unit vector e_i enters the
// span.
func Example() {
	b := netcode.NewBasis(4)

	// Receive e0^e1 — nothing decodable yet.
	v01 := netcode.Unit(4, 0)
	v01.Xor(netcode.Unit(4, 1))
	b.Add(v01)
	fmt.Println("after e0^e1: rank", b.Rank(), "token 0 decodable:", b.Decodable(0))

	// Receive e1 — now both 0 and 1 decode.
	b.Add(netcode.Unit(4, 1))
	fmt.Println("after e1:    rank", b.Rank(), "token 0 decodable:", b.Decodable(0))
	// Output:
	// after e0^e1: rank 1 token 0 decodable: false
	// after e1:    rank 2 token 0 decodable: true
}
