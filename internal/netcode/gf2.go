// Package netcode implements random linear network coding over GF(2) and
// the Haeupler–Karger coded dissemination protocol (PODC 2011) — the
// paper's reference [8], which speeds up KLO-style token dissemination by
// broadcasting random combinations instead of individual tokens.
//
// The substrate is a row-reduced GF(2) basis over k-dimensional bit
// vectors: nodes accumulate received coefficient vectors, track their
// rank, and can decode token i as soon as the unit vector e_i enters the
// span (full decode at rank k).
package netcode

import (
	"math/bits"

	"repro/internal/xrand"
)

// Vec is a k-dimensional GF(2) vector packed into 64-bit words.
type Vec []uint64

// NewVec returns the zero vector of dimension k.
func NewVec(k int) Vec {
	return make(Vec, (k+63)/64)
}

// Unit returns the unit vector e_i of dimension k.
func Unit(k, i int) Vec {
	v := NewVec(k)
	v.Set(i)
	return v
}

// Set sets bit i.
func (v Vec) Set(i int) { v[i/64] |= 1 << (uint(i) % 64) }

// Bit reports bit i.
func (v Vec) Bit(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }

// Xor adds o into v (GF(2) addition). Dimensions must match.
func (v Vec) Xor(o Vec) {
	for i := range v {
		v[i] ^= o[i]
	}
}

// IsZero reports whether v is the zero vector.
func (v Vec) IsZero() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// LowestBit returns the index of the lowest set bit, or -1 for zero.
func (v Vec) LowestBit() int {
	for i, w := range v {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Basis is a GF(2) row space kept in reduced form: each stored row has a
// distinct pivot (its lowest set bit) and no row has a one in another
// row's pivot column below it. Rows are stored densely by pivot index —
// basis operations are the simulator's hottest loop under network coding.
// The zero value is unusable; use NewBasis.
type Basis struct {
	k    int
	rank int
	rows []Vec // indexed by pivot; nil = no row with that pivot
}

// NewBasis returns an empty basis of dimension k.
func NewBasis(k int) *Basis {
	if k <= 0 {
		panic("netcode: basis dimension must be positive")
	}
	return &Basis{k: k, rows: make([]Vec, k)}
}

// K returns the vector dimension.
func (b *Basis) K() int { return b.k }

// Rank returns the current rank.
func (b *Basis) Rank() int { return b.rank }

// Full reports whether the basis spans the whole space.
func (b *Basis) Full() bool { return b.rank == b.k }

// reduce XORs matching-pivot rows into v until v is zero or has a fresh
// pivot; v is modified in place and returned.
func (b *Basis) reduce(v Vec) Vec {
	for {
		p := v.LowestBit()
		if p < 0 || b.rows[p] == nil {
			return v
		}
		v.Xor(b.rows[p])
	}
}

// Add inserts vector v (copied) into the span; it returns true if the rank
// grew.
func (b *Basis) Add(v Vec) bool {
	r := b.reduce(v.Clone())
	p := r.LowestBit()
	if p < 0 {
		return false
	}
	b.rows[p] = r
	b.rank++
	return true
}

// Contains reports whether v lies in the span.
func (b *Basis) Contains(v Vec) bool {
	return b.reduce(v.Clone()).IsZero()
}

// Decodable reports whether token i is decodable: e_i ∈ span. With the
// reduced representation this needs a reduction of the unit vector.
func (b *Basis) Decodable(i int) bool {
	return b.Contains(Unit(b.k, i))
}

// RandomCombination returns a uniformly random vector from the span
// (XOR of a random subset of basis rows); for an empty basis it returns
// the zero vector. The combination is non-zero with probability
// 1 - 2^{-rank}; callers typically retry on zero. Rows are visited in
// pivot order, so runs are reproducible from the RNG seed.
func (b *Basis) RandomCombination(rng *xrand.Rand) Vec {
	out := NewVec(b.k)
	for _, row := range b.rows {
		if row != nil && rng.Bool() {
			out.Xor(row)
		}
	}
	return out
}
