package cluster

import (
	"repro/internal/graph"
)

// This file implements weakly-connected dominating set (WCDS) head
// election, the clustering family the paper cites for delicate control of
// the head-connectivity bound L ("L can be delicately controlled by
// clustering algorithms, as in WCDS-based clusters" — refs [12, 13], Han &
// Jia / Chen & Liestman).
//
// A set S is a WCDS when S dominates V and the subgraph *weakly induced*
// by S (S, its neighbours, and every edge with at least one endpoint in S)
// is connected. Consecutive WCDS heads are at most 2 hops apart (they
// share a dominated neighbour), so WCDS clusterings achieve L <= 2 — one
// hop tighter than the L <= 3 of independent-set clusterings.
//
// The construction is the classic greedy piece-merging approximation:
// repeatedly colour black the grey/white vertex that merges the most
// "pieces" (components of the weakly induced structure, with undominated
// vertices as singleton pieces), until every vertex is dominated and the
// black vertices share one piece.

// WCDSHeads returns a weakly-connected dominating set of the connected
// graph g as a sorted head list. It panics if g is disconnected (a WCDS
// only exists per component) and returns {0} for the single-vertex graph.
func WCDSHeads(g *graph.Graph) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}
	if !g.Connected() {
		panic("cluster: WCDSHeads requires a connected graph")
	}

	const (
		white = iota // undominated
		gray         // dominated, not in the set
		black        // in the WCDS
	)
	color := make([]byte, n)
	pieces := graph.NewUnionFind(n)
	whites := n
	var blacks []int

	// distinctRoots returns the number of distinct pieces among v and its
	// neighbours — colouring v black merges them all, so the merit of v
	// is distinctRoots-1.
	merit := func(v int) int {
		seen := map[int]bool{pieces.Find(v): true}
		for _, u := range g.Neighbors(v) {
			seen[pieces.Find(u)] = true
		}
		return len(seen) - 1
	}

	blacksConnected := func() bool {
		if len(blacks) <= 1 {
			return true
		}
		r := pieces.Find(blacks[0])
		for _, b := range blacks[1:] {
			if pieces.Find(b) != r {
				return false
			}
		}
		return true
	}

	for whites > 0 || !blacksConnected() {
		// Pick the non-black vertex with the greatest merit; ties go to
		// the higher degree, then the lower ID (deterministic).
		best, bestMerit := -1, 0
		for v := 0; v < n; v++ {
			if color[v] == black {
				continue
			}
			m := merit(v)
			if m > bestMerit ||
				(m == bestMerit && best >= 0 && m > 0 &&
					(g.Degree(v) > g.Degree(best) ||
						(g.Degree(v) == g.Degree(best) && v < best))) {
				best, bestMerit = v, m
			}
		}
		if best < 0 || bestMerit == 0 {
			// No merging move exists; cannot happen on a connected graph
			// unless we are already done.
			break
		}
		if color[best] == white {
			whites--
		}
		color[best] = black
		blacks = append(blacks, best)
		for _, u := range g.Neighbors(best) {
			if color[u] == white {
				color[u] = gray
				whites--
			}
			pieces.Union(best, u)
		}
	}

	sortInts(blacks)
	return blacks
}

// sortInts is a tiny insertion sort (head lists are short).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// IsWCDS verifies the two defining properties of a weakly-connected
// dominating set on g.
func IsWCDS(g *graph.Graph, heads []int) bool {
	n := g.N()
	isHead := make([]bool, n)
	for _, h := range heads {
		if h < 0 || h >= n {
			return false
		}
		isHead[h] = true
	}
	// Domination.
	for v := 0; v < n; v++ {
		if isHead[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if isHead[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	if len(heads) <= 1 {
		return len(heads) == 1 || n == 0
	}
	// Weak connectivity: the subgraph with every edge incident to a head
	// must connect all heads.
	weak := graph.New(n)
	for _, e := range g.Edges() {
		if isHead[e.U] || isHead[e.V] {
			weak.AddEdge(e.U, e.V)
		}
	}
	return weak.ConnectedSubset(heads)
}
