package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/hinet"
	"repro/internal/xrand"
)

func TestWCDSHeadsOnSmallGraphs(t *testing.T) {
	// Single vertex.
	if h := WCDSHeads(graph.New(1)); len(h) != 1 || h[0] != 0 {
		t.Fatalf("single vertex: %v", h)
	}
	// Empty graph.
	if h := WCDSHeads(graph.New(0)); h != nil {
		t.Fatalf("empty graph: %v", h)
	}
	// Star: the center alone is a WCDS.
	s := WCDSHeads(graph.Star(6, 2))
	if len(s) != 1 || s[0] != 2 {
		t.Fatalf("star: %v", s)
	}
	// Path of 5: a WCDS needs at least 2 heads (e.g. {1, 3}).
	p := WCDSHeads(graph.Path(5))
	if !IsWCDS(graph.Path(5), p) {
		t.Fatalf("path WCDS invalid: %v", p)
	}
	if len(p) > 3 {
		t.Fatalf("path WCDS too large: %v", p)
	}
}

func TestWCDSDisconnectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	WCDSHeads(graph.New(3))
}

func TestIsWCDS(t *testing.T) {
	g := graph.Path(5)
	if !IsWCDS(g, []int{1, 3}) {
		t.Fatal("{1,3} is a WCDS of P5")
	}
	if IsWCDS(g, []int{1}) {
		t.Fatal("{1} does not dominate P5")
	}
	if IsWCDS(g, []int{0, 4}) {
		// 0 and 4 dominate only 1 and 3; vertex 2 is uncovered.
		t.Fatal("{0,4} should fail domination")
	}
	// Weak connectivity failure: C6 with opposite heads {0, 3} dominates
	// 1,2,4,5 but the weakly induced structure is two disjoint stars.
	c6 := graph.Ring(6)
	if IsWCDS(c6, []int{0, 3}) {
		t.Fatal("{0,3} on C6 should fail weak connectivity")
	}
	if !IsWCDS(c6, []int{0, 2, 4}) {
		t.Fatal("{0,2,4} on C6 is a WCDS")
	}
	if IsWCDS(g, []int{9}) {
		t.Fatal("out-of-range head accepted")
	}
}

func TestWCDSHeadsAlwaysValidOnRandomGraphs(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		rng := xrand.New(seed)
		n := 10 + rng.Intn(50)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), rng)
		heads := WCDSHeads(g)
		if !IsWCDS(g, heads) {
			t.Fatalf("seed %d: invalid WCDS %v", seed, heads)
		}
	}
}

func TestWCDSAchievesL2(t *testing.T) {
	// The point of WCDS clustering: head linkage <= 2 (vs <= 3 for MIS).
	for seed := uint64(0); seed < 10; seed++ {
		rng := xrand.New(100 + seed)
		g := graph.RandomConnected(40, 70, rng)
		h := Form(g, Config{Election: WCDS, GatewayDepth: 2})
		if err := h.Validate(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bb := Backbone(g, h)
		heads := h.Heads()
		if !bb.ConnectedSubset(heads) {
			t.Fatalf("seed %d: WCDS backbone does not connect heads", seed)
		}
		L, ok := hinet.HeadLinkage(bb, heads)
		if !ok || L > 2 {
			t.Fatalf("seed %d: WCDS head linkage %d > 2", seed, L)
		}
	}
}

func TestWCDSFormCoversEveryNode(t *testing.T) {
	rng := xrand.New(7)
	g := graph.RandomConnected(30, 50, rng)
	h := Form(g, Config{Election: WCDS})
	for v := 0; v < g.N(); v++ {
		if h.HeadOf(v) == ctvg.NoCluster {
			t.Fatalf("node %d uncovered", v)
		}
	}
}

func TestWCDSSmallerOrSimilarToMIS(t *testing.T) {
	// WCDS never needs to be dramatically larger than the MIS head set;
	// on many graphs it is smaller. Check it stays within 1.5x across
	// seeds (a loose structural sanity bound, not a theorem).
	worse := 0
	for seed := uint64(0); seed < 10; seed++ {
		rng := xrand.New(200 + seed)
		g := graph.RandomConnected(40, 80, rng)
		wcds := len(WCDSHeads(g))
		mis := len(Form(g, Config{}).Heads())
		if float64(wcds) > 1.5*float64(mis) {
			worse++
		}
	}
	if worse > 2 {
		t.Fatalf("WCDS exceeded 1.5x MIS size on %d/10 seeds", worse)
	}
}

func TestElectionStringWCDS(t *testing.T) {
	if WCDS.String() != "wcds" {
		t.Fatal("wcds string wrong")
	}
}

func TestQuickWCDSAlwaysWCDS(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(30)
		g := graph.RandomConnected(n, n-1+rng.Intn(n), rng)
		return IsWCDS(g, WCDSHeads(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWCDSHeads(b *testing.B) {
	g := graph.RandomConnected(100, 200, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WCDSHeads(g)
	}
}
