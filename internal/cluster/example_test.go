package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/graph"
)

// Example clusters a path network with the lowest-ID rule: heads 0 and 2,
// node 1 promoted to gateway on the inter-head path.
func Example() {
	g := graph.Path(4)
	h := cluster.Form(g, cluster.Config{Election: cluster.LowestID})
	fmt.Println("heads:   ", h.Heads())
	fmt.Println("gateways:", h.Gateways())
	fmt.Println("node 3 -> head", h.HeadOf(3))
	// Output:
	// heads:    [0 2]
	// gateways: [1]
	// node 3 -> head 2
}

// ExampleWCDSHeads elects a weakly-connected dominating set — the
// clustering family the paper cites for achieving L <= 2.
func ExampleWCDSHeads() {
	g := graph.Star(5, 2)
	fmt.Println(cluster.WCDSHeads(g))
	// Output: [2]
}
