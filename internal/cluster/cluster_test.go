package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/hinet"
	"repro/internal/xrand"
)

func TestFormLowestIDOnStar(t *testing.T) {
	g := graph.Star(5, 2)
	h := Form(g, Config{})
	// Node 0 has the lowest ID and no lower neighbour, so it is a head;
	// 2 is adjacent to 0? No: star center is 2, so 0's only neighbour is
	// 2. Greedy: 0 becomes head; 1 becomes head (only neighbour 2 not a
	// head yet and 2 > 1)... verify structural invariants instead of the
	// exact set, then the exact set.
	if err := h.Validate(g); err != nil {
		t.Fatal(err)
	}
	heads := h.Heads()
	// Greedy by ID on star(center=2): 0 head, 1 head (nb 2 not head),
	// 2 not head (nb 0,1 lower are heads), 3 head? nb of 3 is 2 only,
	// 2 is not a head, so 3 is a head; same for 4.
	want := []int{0, 1, 3, 4}
	if len(heads) != len(want) {
		t.Fatalf("heads %v", heads)
	}
	for i := range want {
		if heads[i] != want[i] {
			t.Fatalf("heads %v want %v", heads, want)
		}
	}
	if h.HeadOf(2) != 0 {
		t.Fatalf("center affiliated to %d, want 0", h.HeadOf(2))
	}
}

func TestFormHeadsIndependentAndDominating(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		rng := xrand.New(seed)
		g := graph.RandomConnected(40, 80, rng)
		for _, rule := range []Election{LowestID, HighestDegree} {
			h := Form(g, Config{Election: rule})
			if err := h.Validate(g); err != nil {
				t.Fatalf("seed %d rule %v: %v", seed, rule, err)
			}
			heads := h.Heads()
			isHead := make([]bool, g.N())
			for _, v := range heads {
				isHead[v] = true
			}
			// Independent: no two heads adjacent.
			for _, e := range g.Edges() {
				if isHead[e.U] && isHead[e.V] {
					t.Fatalf("seed %d rule %v: adjacent heads %d-%d", seed, rule, e.U, e.V)
				}
			}
			// Dominating: every node is a head or affiliated with an
			// adjacent head.
			for v := 0; v < g.N(); v++ {
				if h.HeadOf(v) == ctvg.NoCluster {
					t.Fatalf("seed %d rule %v: node %d uncovered", seed, rule, v)
				}
			}
		}
	}
}

func TestFormBackboneConnectsHeadsWithinL3(t *testing.T) {
	// The paper's claim: in a 1-hop clustering, head linkage L <= 3, and
	// the backbone (heads + gateways) connects all heads.
	for seed := uint64(0); seed < 10; seed++ {
		rng := xrand.New(1000 + seed)
		g := graph.RandomConnected(50, 90, rng)
		h := Form(g, Config{})
		bb := Backbone(g, h)
		heads := h.Heads()
		if !bb.ConnectedSubset(heads) {
			t.Fatalf("seed %d: backbone does not connect heads", seed)
		}
		L, ok := hinet.HeadLinkage(bb, heads)
		if !ok || L > 3 {
			t.Fatalf("seed %d: head linkage %d (ok=%v), want <= 3", seed, L, ok)
		}
	}
}

func TestFormHighestDegreePicksHubs(t *testing.T) {
	// Star with center 3: highest-degree must elect the center.
	g := graph.Star(6, 3)
	h := Form(g, Config{Election: HighestDegree})
	if !h.IsHead(3) {
		t.Fatal("center not elected")
	}
	if len(h.Heads()) != 1 {
		t.Fatalf("heads %v", h.Heads())
	}
	for v := 0; v < 6; v++ {
		if v != 3 && h.HeadOf(v) != 3 {
			t.Fatalf("node %d head %d", v, h.HeadOf(v))
		}
	}
}

func TestGatewaysOnTwoClusterPath(t *testing.T) {
	// Path 0-1-2-3: lowest-ID heads are 0 and 2? Greedy: 0 head; 1 (nb 0
	// head) not; 2 (nb 1 not head, 3 higher) head; 3 member of 2.
	g := graph.Path(4)
	h := Form(g, Config{})
	heads := h.Heads()
	if len(heads) != 2 || heads[0] != 0 || heads[1] != 2 {
		t.Fatalf("heads %v", heads)
	}
	// Node 1 sits on the 0-2 path and must be a gateway retaining its
	// affiliation to head 0.
	if h.Role[1] != ctvg.Gateway {
		t.Fatalf("node 1 role %v", h.Role[1])
	}
	if h.HeadOf(1) != 0 {
		t.Fatalf("gateway lost affiliation: head %d", h.HeadOf(1))
	}
}

func TestSelectGatewaysDepthLimit(t *testing.T) {
	// Heads 5 hops apart with depth 3 must not promote the whole path.
	g := graph.Path(6)
	h := ctvg.NewHierarchy(6)
	h.SetHead(0)
	h.SetHead(5)
	for v := 1; v < 5; v++ {
		h.Role[v] = ctvg.Unaffiliated
	}
	SelectGateways(g, h, 3)
	if len(h.Gateways()) != 0 {
		t.Fatalf("gateways %v promoted across a 5-hop gap", h.Gateways())
	}
	SelectGateways(g, h, 5)
	if len(h.Gateways()) != 4 {
		t.Fatalf("gateways %v, want interior of the path", h.Gateways())
	}
}

func TestBackbone(t *testing.T) {
	g := graph.Path(4)
	h := Form(g, Config{})
	bb := Backbone(g, h)
	// Backbone vertices: heads 0, 2 and gateway 1; member 3 excluded.
	if !bb.HasEdge(0, 1) || !bb.HasEdge(1, 2) {
		t.Fatalf("backbone edges %v", bb.Edges())
	}
	if bb.Degree(3) != 0 {
		t.Fatal("member 3 in backbone")
	}
}

func TestMaintainKeepsStableAffiliation(t *testing.T) {
	g := graph.Path(4)
	h := Form(g, Config{})
	// Unchanged topology: no churn.
	next, st := Maintain(g, h, Config{})
	if st.Reaffiliations != 0 || st.NewHeads != 0 || st.RemovedHeads != 0 {
		t.Fatalf("stats %+v on unchanged topology", st)
	}
	if !next.SameHeadSet(h) {
		t.Fatal("head set changed on unchanged topology")
	}
	if err := next.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainReaffiliates(t *testing.T) {
	// 0 and 3 heads; 1 member of 0; edge 0-1 breaks, 1-3 appears.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	h := ctvg.NewHierarchy(4)
	h.SetHead(0)
	h.SetHead(3)
	h.SetMember(1, 0)
	h.SetMember(2, 3)

	g2 := graph.New(4)
	g2.AddEdge(1, 3)
	g2.AddEdge(2, 3)
	next, st := Maintain(g2, h, Config{})
	if st.Reaffiliations != 1 {
		t.Fatalf("reaffiliations %d, want 1", st.Reaffiliations)
	}
	if next.HeadOf(1) != 3 {
		t.Fatalf("node 1 head %d, want 3", next.HeadOf(1))
	}
	// Node 0 is now isolated: it must found its own cluster (it stays a
	// head, so no churn counted for it).
	if !next.IsHead(0) {
		t.Fatal("isolated former head lost head status")
	}
	if err := next.Validate(g2); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainMergesAdjacentHeads(t *testing.T) {
	// Heads 0 and 1 become adjacent: 1 must abdicate (lower-ID wins).
	h := ctvg.NewHierarchy(3)
	h.SetHead(0)
	h.SetHead(1)
	h.SetMember(2, 1)
	g2 := graph.New(3)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 2)
	g2.AddEdge(0, 2)
	next, st := Maintain(g2, h, Config{})
	if st.RemovedHeads != 1 {
		t.Fatalf("removed heads %d", st.RemovedHeads)
	}
	if !next.IsHead(0) || next.IsHead(1) {
		t.Fatalf("merge wrong: heads %v", next.Heads())
	}
	if next.HeadOf(1) != 0 {
		t.Fatalf("demoted head affiliation %d", next.HeadOf(1))
	}
	if err := next.Validate(g2); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainMergeRepairsBackbone(t *testing.T) {
	// Regression: a merge that empties a cluster used to leave a stale,
	// disconnected backbone. Path 0-1-2-3 with prev heads {0, 1, 3}: the
	// 0-1 edge merges head 1 into 0 and empties 1's cluster, leaving the
	// surviving heads 0 and 3 three hops apart — past GatewayDepth 2, so
	// the plain gateway pass bridged nothing and Maintain returned a
	// backbone with no relay path between the heads.
	g := graph.Path(4)
	prev := ctvg.NewHierarchy(4)
	prev.SetHead(0)
	prev.SetHead(1)
	prev.SetHead(3)
	prev.SetMember(2, 3)
	next, st := Maintain(g, prev, Config{GatewayDepth: 2})
	if st.RemovedHeads != 1 {
		t.Fatalf("removed heads %d, want 1 (merge must fire)", st.RemovedHeads)
	}
	if st.GatewayRepairs == 0 {
		t.Fatal("repair pass reported no escalation on a broken backbone")
	}
	heads := next.Heads()
	bb := Backbone(g, next)
	if !bb.ConnectedSubset(heads) {
		t.Fatalf("backbone does not reconnect surviving heads %v (edges %v)", heads, bb.Edges())
	}
	if err := next.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainMergeAcrossComponentsNoEscalation(t *testing.T) {
	// Heads in different components of g must not trigger runaway depth
	// escalation: the repair pass groups heads by component and accepts a
	// backbone that bridges each component internally.
	g := graph.New(5)
	g.AddEdge(0, 1) // component A: merge 1 into 0
	g.AddEdge(3, 4) // component B: head 3, member 4
	prev := ctvg.NewHierarchy(5)
	prev.SetHead(0)
	prev.SetHead(1)
	prev.SetHead(2) // isolated head
	prev.SetHead(3)
	prev.SetMember(4, 3)
	next, st := Maintain(g, prev, Config{})
	if st.RemovedHeads != 1 {
		t.Fatalf("removed heads %d, want 1", st.RemovedHeads)
	}
	if st.GatewayRepairs != 0 {
		t.Fatalf("escalated %d times across disconnected components", st.GatewayRepairs)
	}
	if err := next.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainOrphanBecomesHead(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	h := ctvg.NewHierarchy(2)
	h.SetHead(0)
	h.SetMember(1, 0)
	g2 := graph.New(2) // edge gone
	next, st := Maintain(g2, h, Config{})
	if !next.IsHead(1) || st.NewHeads != 1 {
		t.Fatalf("orphan handling wrong: %v %+v", next.Heads(), st)
	}
}

func TestMaintainSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Maintain(graph.New(3), ctvg.NewHierarchy(2), Config{})
}

func TestElectionString(t *testing.T) {
	if LowestID.String() != "lowest-id" || HighestDegree.String() != "highest-degree" {
		t.Fatal("strings wrong")
	}
	if Election(9).String() != "election(9)" {
		t.Fatal("unknown string wrong")
	}
}

func TestFormUnknownElectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Form(graph.New(2), Config{Election: Election(9)})
}

func TestQuickFormAlwaysValid(t *testing.T) {
	f := func(seed uint64, ruleRaw bool) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(40)
		maxM := n * (n - 1) / 2
		m := n - 1 + rng.Intn(maxM-(n-1)+1)
		g := graph.RandomConnected(n, m, rng)
		rule := LowestID
		if ruleRaw {
			rule = HighestDegree
		}
		h := Form(g, Config{Election: rule})
		if h.Validate(g) != nil {
			return false
		}
		// Coverage.
		for v := 0; v < n; v++ {
			if h.HeadOf(v) == ctvg.NoCluster {
				return false
			}
		}
		// Backbone connects heads.
		return Backbone(g, h).ConnectedSubset(h.Heads())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaintainAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(30)
		g := graph.RandomConnected(n, n+5, rng)
		h := Form(g, Config{})
		// Perturb the topology and maintain.
		g2 := graph.RandomConnected(n, n+5, rng)
		next, _ := Maintain(g2, h, Config{})
		if next.Validate(g2) != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if next.HeadOf(v) == ctvg.NoCluster {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForm(b *testing.B) {
	g := graph.RandomConnected(200, 500, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Form(g, Config{})
	}
}

func BenchmarkMaintain(b *testing.B) {
	rng := xrand.New(1)
	g := graph.RandomConnected(200, 500, rng)
	h := Form(g, Config{})
	g2 := graph.RandomConnected(200, 500, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Maintain(g2, h, Config{})
	}
}
