package selfstab

import (
	"testing"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// step runs one full protocol round over nShards equal shards.
func step(s *State, g *graph.Graph, crashed []bool, drop func(u, v int) bool, nShards int) Stats {
	s.Begin(g, crashed)
	n := g.N()
	per := (n + nShards - 1) / nShards
	for i := 0; i < nShards; i++ {
		lo, hi := i*per, (i+1)*per
		if hi > n {
			hi = n
		}
		if lo < hi {
			s.Shard(i, lo, hi, drop)
		}
	}
	return s.Commit()
}

func noDrop(u, v int) bool { return false }

// converge steps until the state is valid AND quiescent (a round changes
// nothing — validity alone can hold mid-merge-cascade), returning the
// rounds taken (-1 when the budget runs out first).
func converge(s *State, g *graph.Graph, crashed []bool, drop func(u, v int) bool, budget int) int {
	prev := s.Hierarchy().Clone()
	for r := 0; r < budget; r++ {
		step(s, g, crashed, drop, 1)
		if s.Valid() && s.Hierarchy().Equal(prev) {
			return r + 1
		}
		prev = s.Hierarchy().Clone()
	}
	return -1
}

func TestConvergesOnRandomConnected(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := xrand.New(seed)
		n := 10 + rng.Intn(40)
		g := graph.RandomConnected(n, 2*n, rng)
		crashed := make([]bool, n)
		s := New(n, Config{}, 1)
		rounds := converge(s, g, crashed, noDrop, 4*n)
		if rounds < 0 {
			t.Fatalf("seed %d: no convergence on %v", seed, g)
		}
		h := s.Hierarchy()
		if err := h.Validate(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for v := 0; v < n; v++ {
			if h.HeadOf(v) == ctvg.NoCluster {
				t.Fatalf("seed %d: node %d uncovered after convergence", seed, v)
			}
		}
		// Fixed point: one more fault-free round must change nothing.
		before := h.Clone()
		step(s, g, crashed, noDrop, 1)
		if !s.Hierarchy().Equal(before) {
			t.Fatalf("seed %d: converged state is not a fixed point", seed)
		}
	}
}

func TestRepairsAfterHeadCrash(t *testing.T) {
	rng := xrand.New(42)
	n := 30
	g := graph.RandomConnected(n, 70, rng)
	crashed := make([]bool, n)
	s := New(n, Config{}, 1)
	if converge(s, g, crashed, noDrop, 4*n) < 0 {
		t.Fatal("no initial convergence")
	}
	// Kill every elected head.
	killed := 0
	for _, v := range s.Hierarchy().Heads() {
		crashed[v] = true
		killed++
	}
	if killed == 0 {
		t.Fatal("no heads elected")
	}
	var repair Stats
	reconverged := -1
	for r := 0; r < 4*n; r++ {
		repair.add(step(s, g, crashed, noDrop, 1))
		if s.Valid() {
			reconverged = r + 1
			break
		}
	}
	if reconverged < 0 {
		t.Fatal("no reconvergence after head crashes")
	}
	if repair.Elections == 0 {
		t.Fatalf("repair elected nobody: %+v", repair)
	}
	// The dead heads must not be named by any live node.
	h := s.Hierarchy()
	for v := 0; v < n; v++ {
		if !crashed[v] && crashed[h.HeadOf(v)] {
			t.Fatalf("live node %d still affiliated to dead head %d", v, h.HeadOf(v))
		}
	}
}

func TestAdjacentHeadsMerge(t *testing.T) {
	// Two 3-cliques {0,1,2} and {3,4,5} converge separately (heads 0 and
	// 3); adding the 0-3 bridge must merge head 3 into head 0.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}} {
		g.AddEdge(e[0], e[1])
	}
	crashed := make([]bool, 6)
	s := New(6, Config{}, 1)
	if converge(s, g, crashed, noDrop, 20) < 0 {
		t.Fatal("no convergence on disjoint cliques")
	}
	if !s.Hierarchy().IsHead(0) || !s.Hierarchy().IsHead(3) {
		t.Fatalf("heads %v, want 0 and 3", s.Hierarchy().Heads())
	}
	g.AddEdge(0, 3)
	var merged Stats
	for r := 0; r < 20; r++ {
		merged.add(step(s, g, crashed, noDrop, 1))
		if s.Valid() && !s.Hierarchy().IsHead(3) {
			break
		}
	}
	if s.Hierarchy().IsHead(3) {
		t.Fatal("head 3 never abdicated to adjacent lower-ID head 0")
	}
	if merged.HeadMerges == 0 {
		t.Fatalf("merge not counted: %+v", merged)
	}
	if got := s.Hierarchy().HeadOf(3); got != 0 {
		t.Fatalf("demoted head affiliated to %d, want 0", got)
	}
}

func TestMemberForgivesOneLostBeacon(t *testing.T) {
	// Path 0-1: head 0, member 1 (OrphanAfter 2). One dropped beacon must
	// not orphan the member; two must.
	g := graph.Path(2)
	crashed := make([]bool, 2)
	s := New(2, Config{}, 1)
	if converge(s, g, crashed, noDrop, 10) < 0 {
		t.Fatal("no convergence")
	}
	if !s.Hierarchy().IsHead(0) || s.Hierarchy().HeadOf(1) != 0 {
		t.Fatalf("unexpected shape: %v", s.Hierarchy().Heads())
	}
	dropHeadBeacon := func(u, v int) bool { return u == 0 && v == 1 }
	step(s, g, crashed, dropHeadBeacon, 1)
	if s.Hierarchy().HeadOf(1) != 0 {
		t.Fatal("one lost beacon orphaned the member")
	}
	step(s, g, crashed, dropHeadBeacon, 1)
	if s.Hierarchy().HeadOf(1) == 0 && s.Hierarchy().Role[1] != ctvg.Head {
		t.Fatal("member never gave up a silent head")
	}
}

func TestShardCountInvariance(t *testing.T) {
	// The same lossy run sharded 1, 2 and 5 ways must produce identical
	// hierarchies and stats every round.
	rng := xrand.New(7)
	n := 37
	g := graph.RandomConnected(n, 90, rng)
	seed := rng.Uint64()
	crashed := make([]bool, n)
	crashed[5] = true
	crashed[11] = true

	type trace struct {
		stats []Stats
		hier  *ctvg.Hierarchy
	}
	run := func(shards int) trace {
		s := New(n, Config{}, shards)
		var tr trace
		for r := 0; r < 60; r++ {
			drop := func(u, v int) bool {
				return xrand.HashFloat64(seed, uint64(r), uint64(u), uint64(v)) < 0.2
			}
			tr.stats = append(tr.stats, step(s, g, crashed, drop, shards))
		}
		tr.hier = s.Hierarchy().Clone()
		return tr
	}
	base := run(1)
	for _, shards := range []int{2, 5} {
		got := run(shards)
		if !got.hier.Equal(base.hier) {
			t.Fatalf("%d shards: hierarchy diverged", shards)
		}
		for r := range base.stats {
			if got.stats[r] != base.stats[r] {
				t.Fatalf("%d shards: round %d stats %+v != %+v", shards, r, got.stats[r], base.stats[r])
			}
		}
	}
}

func TestValidRejectsUncoveredAndUnbridged(t *testing.T) {
	// Freshly initialised state: everyone unaffiliated, so Valid is false
	// until the protocol has run.
	g := graph.Path(4)
	crashed := make([]bool, 4)
	s := New(4, Config{}, 1)
	s.Begin(g, crashed)
	s.Shard(0, 0, 4, noDrop)
	s.Commit()
	if s.Valid() {
		t.Fatal("one round from cold cannot already be valid")
	}
	if converge(s, g, crashed, noDrop, 20) < 0 {
		t.Fatal("no convergence on a path")
	}
	// All nodes crashed: vacuously valid.
	for v := range crashed {
		crashed[v] = true
	}
	step(s, g, crashed, noDrop, 1)
	if !s.Valid() {
		t.Fatal("fully-crashed network must be vacuously valid")
	}
}

func TestOrphanAfterDefault(t *testing.T) {
	if (Config{}).orphanAfter() != 2 || (Config{OrphanAfter: 5}).orphanAfter() != 5 {
		t.Fatal("orphanAfter defaulting wrong")
	}
}
