// Package selfstab implements a message-passing, self-stabilizing
// clustering protocol in the style of Bernard–Bui–Pilard–Sohier: every
// live node broadcasts one beacon per round (its ID, whether it claims to
// be a head, and which cluster it is affiliated with), and each node
// recomputes its own role purely from the beacons it heard. There is no
// oracle: heads are elected, members affiliate, gateways mark themselves,
// orphans are adopted and adjacent heads merge — all from node-local state
// over the same faulty links the dissemination payload rides.
//
// The protocol converges to the same target shape the cluster package
// constructs centrally (a ctvg.Hierarchy whose heads dominate the graph
// and whose heads-plus-gateways backbone connects them), and it repairs
// that shape after arbitrary transient faults — the self-stabilization
// property. The rules mirror cluster's lowest-ID election:
//
//   - a head that hears a lower-ID head abdicates and joins it (merge);
//   - a member that hears its head stays put; one whose head has been
//     silent for OrphanAfter rounds (or is heard beaconing as a non-head)
//     re-affiliates to the lowest-ID head it heard, elects itself when it
//     heard neither a head nor a lower-ID unaffiliated contender, and
//     otherwise waits unaffiliated;
//   - an unaffiliated node adopts the lowest-ID head it heard, elects
//     itself when no head and no lower-ID contender is audible, and
//     otherwise defers;
//   - a member that hears any cluster other than its own sits on a
//     cluster boundary and marks itself gateway (keeping its
//     affiliation), which bridges heads up to three hops apart.
//
// The state update is double-buffered: a round reads only the previous
// round's states and writes only the next, so the per-node transition can
// be sharded across workers in any order and still produce byte-identical
// results. Link faults enter exclusively through the drop predicate passed
// to Shard, which the engine binds to the same counter-based fault
// injector that filters payload messages.
package selfstab

import (
	"repro/internal/ctvg"
	"repro/internal/graph"
)

// Config parameterises the protocol.
type Config struct {
	// OrphanAfter is the number of consecutive rounds a member tolerates
	// silence from its head before treating itself as orphaned; 0 means
	// the default of 2 (one lost beacon is forgiven, two are a crash).
	OrphanAfter int
}

func (c Config) orphanAfter() int {
	if c.OrphanAfter <= 0 {
		return 2
	}
	return c.OrphanAfter
}

// Stats counts the repair events of one protocol round. The engine merges
// the per-shard counters in shard order, so totals are deterministic at
// any worker count.
type Stats struct {
	// Elections counts nodes that elected themselves head this round.
	Elections int
	// Adoptions counts orphaned or unaffiliated nodes that (re-)joined a
	// cluster this round.
	Adoptions int
	// HeadMerges counts heads that abdicated to a lower-ID neighbour.
	HeadMerges int
	// BeaconsSent counts the beacons broadcast this round: one per live
	// node — the maintenance message budget the protocol consumes.
	BeaconsSent int
	// BeaconsHeard counts beacon receptions that survived the link
	// faults, summed over all receivers.
	BeaconsHeard int
}

func (s *Stats) add(o Stats) {
	s.Elections += o.Elections
	s.Adoptions += o.Adoptions
	s.HeadMerges += o.HeadMerges
	s.BeaconsSent += o.BeaconsSent
	s.BeaconsHeard += o.BeaconsHeard
}

type nodeState struct {
	head    int // claimed cluster head; ctvg.NoCluster when none
	role    ctvg.Role
	silence int // consecutive rounds the claimed head has been silent
}

// State holds the node-local protocol state of all n nodes plus the
// emergent hierarchy the engine substitutes for the oracle's. All storage
// is allocated by New; Begin/Shard/Commit are allocation-free so the
// engine's hot loop stays flat.
type State struct {
	cfg     Config
	n       int
	cur     []nodeState
	next    []nodeState
	hier    *ctvg.Hierarchy
	shards  []Stats
	g       *graph.Graph
	crashed []bool
	sent    int

	// BFS scratch for Valid: epoch-stamped visit marks and component
	// labels, reused across rounds without clearing.
	visit      []uint32
	epoch      uint32
	relayComp  []int32
	relayEpoch []uint32
	queue      []int
}

// New returns protocol state for n nodes sharded over shards stat slots
// (one per worker shard; pass 1 for serial runs).
func New(n int, cfg Config, shards int) *State {
	if shards < 1 {
		shards = 1
	}
	s := &State{
		cfg:        cfg,
		n:          n,
		cur:        make([]nodeState, n),
		next:       make([]nodeState, n),
		hier:       ctvg.NewHierarchy(n),
		shards:     make([]Stats, shards),
		visit:      make([]uint32, n),
		relayComp:  make([]int32, n),
		relayEpoch: make([]uint32, n),
		queue:      make([]int, 0, n),
	}
	for v := range s.cur {
		s.cur[v] = nodeState{head: ctvg.NoCluster, role: ctvg.Unaffiliated}
		s.next[v] = s.cur[v]
	}
	return s
}

// Hierarchy returns the emergent hierarchy as of the last Commit. The
// engine hands it to protocols and observers for the duration of one
// round; it is rewritten in place by the next Shard pass.
func (s *State) Hierarchy() *ctvg.Hierarchy { return s.hier }

// Begin starts a protocol round on snapshot g with the given crash mask.
// Both are retained until the next Begin; the crash mask must not change
// while shards run.
func (s *State) Begin(g *graph.Graph, crashed []bool) {
	s.g = g
	s.crashed = crashed
	s.sent = 0
	for v := 0; v < s.n; v++ {
		if !crashed[v] {
			s.sent++
		}
	}
	for i := range s.shards {
		s.shards[i] = Stats{}
	}
}

// Shard advances nodes [lo, hi) one round. drop reports whether the
// beacon from u to v is lost this round; it must be pure in (u, v) for
// the duration of the round. Shard only reads previous-round states and
// writes states and hierarchy entries it owns, so distinct shards may run
// concurrently.
func (s *State) Shard(shard, lo, hi int, drop func(u, v int) bool) {
	st := &s.shards[shard]
	for v := lo; v < hi; v++ {
		if s.crashed[v] {
			// A crashed node holds no state: it rejoins as a fresh
			// unaffiliated node, and its silence lets members detect the
			// dead head.
			s.next[v] = nodeState{head: ctvg.NoCluster, role: ctvg.Unaffiliated}
			s.hier.Role[v] = ctvg.Unaffiliated
			s.hier.Cluster[v] = ctvg.NoCluster
			continue
		}
		s0 := s.cur[v]
		myHead := ctvg.NoCluster
		if s0.role != ctvg.Head {
			myHead = s0.head
		}

		lowestHead := -1
		headAlive := false
		headDemoted := false
		lowerContender := false
		affA, affB := -1, -1 // first two distinct cluster IDs heard
		heard := 0
		for _, u := range s.g.Neighbors(v) {
			if s.crashed[u] || drop(u, v) {
				continue
			}
			heard++
			su := s.cur[u]
			var claim int
			switch {
			case su.role == ctvg.Head:
				if lowestHead == -1 || u < lowestHead {
					lowestHead = u
				}
				if u == myHead {
					headAlive = true
				}
				claim = u
			case su.head != ctvg.NoCluster:
				if u == myHead {
					headDemoted = true // our head now claims membership elsewhere
				}
				claim = su.head
			default:
				if u == myHead {
					headDemoted = true
				}
				if u < v {
					lowerContender = true
				}
				continue
			}
			if claim != affA {
				if affA == -1 {
					affA = claim
				} else if affB == -1 {
					affB = claim
				}
			}
		}

		var ns nodeState
		switch {
		case s0.role == ctvg.Head:
			if lowestHead != -1 && lowestHead < v {
				ns = nodeState{head: lowestHead, role: ctvg.Member}
				st.HeadMerges++
			} else {
				ns = nodeState{head: v, role: ctvg.Head}
			}
		case s0.head != ctvg.NoCluster:
			switch {
			case headAlive:
				ns = nodeState{head: s0.head, role: ctvg.Member}
			case !headDemoted && s0.silence+1 < s.cfg.orphanAfter():
				ns = nodeState{head: s0.head, role: ctvg.Member, silence: s0.silence + 1}
			case lowestHead != -1:
				ns = nodeState{head: lowestHead, role: ctvg.Member}
				st.Adoptions++
			case !lowerContender:
				ns = nodeState{head: v, role: ctvg.Head}
				st.Elections++
			default:
				ns = nodeState{head: ctvg.NoCluster, role: ctvg.Unaffiliated}
			}
		default:
			switch {
			case lowestHead != -1:
				ns = nodeState{head: lowestHead, role: ctvg.Member}
				st.Adoptions++
			case !lowerContender:
				ns = nodeState{head: v, role: ctvg.Head}
				st.Elections++
			default:
				ns = nodeState{head: ctvg.NoCluster, role: ctvg.Unaffiliated}
			}
		}
		// Boundary detection: a member that heard any cluster other than
		// its own bridges clusters and marks itself gateway. Tracking the
		// first two distinct claims suffices — at most one of them can
		// equal the member's own cluster.
		if ns.role == ctvg.Member &&
			((affA != -1 && affA != ns.head) || (affB != -1 && affB != ns.head)) {
			ns.role = ctvg.Gateway
		}
		st.BeaconsHeard += heard
		s.next[v] = ns
		s.hier.Role[v] = ns.role
		s.hier.Cluster[v] = ns.head
	}
}

// Commit finishes the round: swaps the state buffers and returns the
// per-shard counters merged in shard order.
func (s *State) Commit() Stats {
	s.cur, s.next = s.next, s.cur
	var total Stats
	total.BeaconsSent = s.sent
	for i := range s.shards {
		total.add(s.shards[i])
	}
	return total
}

// Valid reports whether the hierarchy produced by the last Commit is
// structurally valid for the live part of the round's graph: every live
// node is covered (heads self-identify, members and gateways name a live
// adjacent head, nobody is unaffiliated), and within each connected
// component of the live subgraph the heads are mutually connected through
// live relays — the paper's stable-head-subgraph shape. Crashed nodes are
// ignored on both sides.
func (s *State) Valid() bool {
	h := s.hier
	anyLive := false
	for v := 0; v < s.n; v++ {
		if s.crashed[v] {
			continue
		}
		anyLive = true
		switch h.Role[v] {
		case ctvg.Head:
			if h.Cluster[v] != v {
				return false
			}
		case ctvg.Member, ctvg.Gateway:
			c := h.Cluster[v]
			if c == ctvg.NoCluster || s.crashed[c] || h.Role[c] != ctvg.Head || !s.g.HasEdge(v, c) {
				return false
			}
		default:
			return false // a live unaffiliated node means repair is unfinished
		}
	}
	if !anyLive {
		return true
	}
	return s.headsBridged()
}

// headsBridged labels relay-connected components by BFS over live relays,
// then checks that all heads inside one live-graph component share a
// relay component.
func (s *State) headsBridged() bool {
	h := s.hier
	s.epoch++
	var nComp int32
	for v := 0; v < s.n; v++ {
		if s.crashed[v] || !h.IsRelay(v) || s.relayEpoch[v] == s.epoch {
			continue
		}
		nComp++
		s.queue = s.queue[:0]
		s.queue = append(s.queue, v)
		s.relayEpoch[v] = s.epoch
		s.relayComp[v] = nComp
		for len(s.queue) > 0 {
			u := s.queue[len(s.queue)-1]
			s.queue = s.queue[:len(s.queue)-1]
			for _, w := range s.g.Neighbors(u) {
				if s.crashed[w] || !h.IsRelay(w) || s.relayEpoch[w] == s.epoch {
					continue
				}
				s.relayEpoch[w] = s.epoch
				s.relayComp[w] = nComp
				s.queue = append(s.queue, w)
			}
		}
	}
	// Walk each live-graph component and require one relay label across
	// its heads.
	for v := 0; v < s.n; v++ {
		if s.crashed[v] || s.visit[v] == s.epoch {
			continue
		}
		comp := int32(0)
		s.queue = s.queue[:0]
		s.queue = append(s.queue, v)
		s.visit[v] = s.epoch
		for len(s.queue) > 0 {
			u := s.queue[len(s.queue)-1]
			s.queue = s.queue[:len(s.queue)-1]
			if h.Role[u] == ctvg.Head {
				if comp == 0 {
					comp = s.relayComp[u]
				} else if s.relayComp[u] != comp {
					return false
				}
			}
			for _, w := range s.g.Neighbors(u) {
				if s.crashed[w] || s.visit[w] == s.epoch {
					continue
				}
				s.visit[w] = s.epoch
				s.queue = append(s.queue, w)
			}
		}
	}
	return true
}
