// Package cluster implements the clustering substrate the paper assumes:
// cluster-head election, member affiliation, gateway selection between
// clusters, and incremental maintenance under topology change.
//
// The paper deliberately treats clustering as out of scope ("the clustering
// procedure can be carried out by clustering algorithms") and only assumes
// the resulting 1-hop hierarchy: one head per cluster, members adjacent to
// their head, heads connected through gateway nodes with hop bound L ≤ 3.
// This package supplies concrete algorithms with exactly those guarantees —
// lowest-ID and highest-degree head election (both classic ad hoc
// clustering rules) — so the simulated hierarchies are constructed rather
// than conjured.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/ctvg"
	"repro/internal/graph"
)

// Election selects which head-election rule Form uses.
type Election byte

const (
	// LowestID elects a node head iff it has the smallest ID among the
	// still-undecided nodes in its closed neighbourhood (Lin & Gerla's
	// lowest-ID cluster algorithm). Heads form a maximal independent set.
	LowestID Election = iota
	// HighestDegree elects heads by descending degree (ties by ascending
	// ID) — the "highest-connectivity" rule. Heads also form a maximal
	// independent set.
	HighestDegree
	// WCDS elects a weakly-connected dominating set (greedy
	// piece-merging approximation; see wcds.go). Heads need not be
	// independent; consecutive heads are at most two hops apart, giving
	// L <= 2. Requires a connected graph.
	WCDS
)

// String names the election rule.
func (e Election) String() string {
	switch e {
	case LowestID:
		return "lowest-id"
	case HighestDegree:
		return "highest-degree"
	case WCDS:
		return "wcds"
	default:
		return fmt.Sprintf("election(%d)", byte(e))
	}
}

// Config parameterises clustering.
type Config struct {
	// Election is the head-election rule (default LowestID).
	Election Election
	// GatewayDepth is the maximum hop distance between heads bridged by
	// gateway selection; 0 means the default of 3, the bound the paper
	// cites for 1-hop clusterings ("the value of L is not more than
	// three").
	GatewayDepth int
}

func (c Config) gatewayDepth() int {
	if c.GatewayDepth <= 0 {
		return 3
	}
	return c.GatewayDepth
}

// Form clusters the graph from scratch: elects heads, affiliates every
// remaining node to an adjacent head, and marks gateway nodes on shortest
// paths between nearby heads. The result satisfies ctvg's structural
// invariants (heads self-identify, members adjacent to heads), and on a
// connected graph the heads plus gateways form a connected backbone with
// head linkage at most Config.GatewayDepth.
func Form(g *graph.Graph, cfg Config) *ctvg.Hierarchy {
	heads := electHeads(g, cfg.Election)
	h := ctvg.NewHierarchy(g.N())
	for _, v := range heads {
		h.SetHead(v)
	}
	affiliate(g, h, cfg.Election)
	SelectGateways(g, h, cfg.gatewayDepth())
	return h
}

// electHeads returns the head set as a sorted slice.
func electHeads(g *graph.Graph, rule Election) []int {
	n := g.N()
	isHead := make([]bool, n)
	switch rule {
	case WCDS:
		return WCDSHeads(g)
	case LowestID:
		// Greedy MIS in ID order: v becomes head iff no lower-ID
		// neighbour already is one.
		for v := 0; v < n; v++ {
			ok := true
			for _, u := range g.Neighbors(v) {
				if u < v && isHead[u] {
					ok = false
					break
				}
			}
			if ok {
				isHead[v] = true
			}
		}
	case HighestDegree:
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := g.Degree(order[i]), g.Degree(order[j])
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
		covered := make([]bool, n)
		for _, v := range order {
			if covered[v] {
				continue
			}
			isHead[v] = true
			covered[v] = true
			for _, u := range g.Neighbors(v) {
				covered[u] = true
			}
		}
	default:
		panic(fmt.Sprintf("cluster: unknown election rule %d", byte(rule)))
	}
	var out []int
	for v, ok := range isHead {
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// affiliate attaches every non-head node to an adjacent head: the lowest-ID
// adjacent head under LowestID, the highest-degree one (ties by ID) under
// HighestDegree. Nodes with no adjacent head stay unaffiliated (cannot
// happen when heads form a maximal independent set, but isolated vertices
// of disconnected inputs are covered by becoming their own heads during
// election).
func affiliate(g *graph.Graph, h *ctvg.Hierarchy, rule Election) {
	for v := 0; v < h.N(); v++ {
		if h.IsHead(v) {
			continue
		}
		best := -1
		for _, u := range g.Neighbors(v) {
			if !h.IsHead(u) {
				continue
			}
			if best == -1 {
				best = u
				continue
			}
			if rule == HighestDegree {
				du, db := g.Degree(u), g.Degree(best)
				if du > db || (du == db && u < best) {
					best = u
				}
			} // LowestID: neighbours iterate ascending, first head wins.
		}
		if best >= 0 {
			h.SetMember(v, best)
		}
	}
}

// SelectGateways promotes to Gateway every interior node of a shortest path
// between each pair of heads within depth hops of each other, preserving
// the node's cluster affiliation. It mutates h in place.
func SelectGateways(g *graph.Graph, h *ctvg.Hierarchy, depth int) {
	heads := h.Heads()
	for _, u := range heads {
		dist, parent := g.BFS(u)
		for _, w := range heads {
			if w <= u || dist[w] == graph.Inf || dist[w] > depth {
				continue
			}
			// Walk the BFS path w -> u, promoting interior nodes.
			for cur := parent[w]; cur != u && cur != -1; cur = parent[cur] {
				if h.Role[cur] == ctvg.Member {
					h.SetGateway(cur, h.Cluster[cur])
				} else if h.Role[cur] == ctvg.Unaffiliated {
					h.SetGateway(cur, ctvg.NoCluster)
				}
			}
		}
	}
}

// Backbone returns the subgraph of g induced by heads and gateways — the
// candidate stable head subgraph Υ of Definition 5.
func Backbone(g *graph.Graph, h *ctvg.Hierarchy) *graph.Graph {
	in := make([]bool, h.N())
	for v := 0; v < h.N(); v++ {
		if h.IsRelay(v) {
			in[v] = true
		}
	}
	b := graph.New(g.N())
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			b.AddEdge(e.U, e.V)
		}
	}
	return b
}

// repairBackbone checks that the backbone still connects the heads after a
// cluster merge and, when it does not, re-runs gateway selection at
// increasing depth until every pair of heads connected in g is connected
// through relays. Within one component the escalation terminates at the
// component diameter at the latest, so the g.N() bound is never the
// binding one; heads in different components of g stay apart, as they
// must. Returns the number of escalation steps taken.
func repairBackbone(g *graph.Graph, h *ctvg.Hierarchy, depth int) int {
	heads := h.Heads()
	repairs := 0
	for d := depth; d < g.N(); d++ {
		if backboneBridges(g, h, heads) {
			break
		}
		SelectGateways(g, h, d+1)
		repairs++
	}
	return repairs
}

// backboneBridges reports whether, within every connected component of g,
// the heads of that component are mutually connected through the backbone
// (the subgraph induced by heads and gateways).
func backboneBridges(g *graph.Graph, h *ctvg.Hierarchy, heads []int) bool {
	if len(heads) <= 1 {
		return true
	}
	bb := Backbone(g, h)
	grouped := make([]bool, g.N())
	group := make([]int, 0, len(heads))
	for _, u := range heads {
		if grouped[u] {
			continue
		}
		dist, _ := g.BFS(u)
		group = group[:0]
		for _, w := range heads {
			if dist[w] != graph.Inf {
				grouped[w] = true
				group = append(group, w)
			}
		}
		if len(group) > 1 && !bb.ConnectedSubset(group) {
			return false
		}
	}
	return true
}

// Stats reports what incremental maintenance changed.
type Stats struct {
	// Reaffiliations counts nodes whose cluster head changed to a
	// different head (the paper's n_r events).
	Reaffiliations int
	// NewHeads and RemovedHeads count head-set churn.
	NewHeads     int
	RemovedHeads int
	// Unchanged reports that maintenance reproduced prev exactly; the
	// returned hierarchy is then prev itself (pointer-identical), which
	// lets round caches recognise stable windows by identity.
	Unchanged bool
	// GatewayRepairs counts the extra gateway-depth escalation steps the
	// post-merge backbone revalidation needed to reconnect the surviving
	// heads (0 when the configured depth already bridged them).
	GatewayRepairs int
}

// Maintain updates a hierarchy after a topology change with minimal churn:
//
//   - an existing head abdicates only if it is adjacent to a surviving
//     lower-ID head (cluster merge);
//   - a member keeps its head while the adjacency survives, otherwise it
//     re-affiliates to an adjacent head, or becomes a head itself if none
//     is adjacent;
//   - gateways are recomputed from scratch.
//
// It returns the new hierarchy and churn statistics; prev is not modified.
func Maintain(g *graph.Graph, prev *ctvg.Hierarchy, cfg Config) (*ctvg.Hierarchy, Stats) {
	if g.N() != prev.N() {
		panic("cluster: Maintain with mismatched sizes")
	}
	n := g.N()
	var st Stats
	next := ctvg.NewHierarchy(n)

	// Pass 1: surviving heads. Process ascending so merges cascade
	// deterministically.
	isHead := make([]bool, n)
	for v := 0; v < n; v++ {
		if !prev.IsHead(v) {
			continue
		}
		merge := false
		for _, u := range g.Neighbors(v) {
			if u < v && isHead[u] {
				merge = true
				break
			}
		}
		if merge {
			st.RemovedHeads++
		} else {
			isHead[v] = true
			next.SetHead(v)
		}
	}

	// Pass 2: everyone else keeps or changes affiliation.
	for v := 0; v < n; v++ {
		if next.IsHead(v) {
			continue
		}
		oldHead := prev.HeadOf(v)
		if oldHead == v {
			oldHead = ctvg.NoCluster // was a head, now demoted
		}
		if oldHead != ctvg.NoCluster && isHead[oldHead] && g.HasEdge(v, oldHead) {
			next.SetMember(v, oldHead)
			continue
		}
		// Re-affiliate to the lowest-ID adjacent head.
		newHead := -1
		for _, u := range g.Neighbors(v) {
			if isHead[u] {
				newHead = u
				break
			}
		}
		if newHead >= 0 {
			next.SetMember(v, newHead)
			if oldHead != ctvg.NoCluster && oldHead != newHead {
				st.Reaffiliations++
			}
		} else {
			// No head in range: v founds its own cluster.
			isHead[v] = true
			next.SetHead(v)
			st.NewHeads++
		}
	}

	SelectGateways(g, next, cfg.gatewayDepth())
	if st.RemovedHeads > 0 {
		// A merge empties the abdicating head's cluster, and the span that
		// cluster covered can leave the surviving heads further apart than
		// cfg.GatewayDepth — the gateway pass above then bridges nothing
		// and the backbone silently falls apart even though the graph is
		// connected. Revalidate instead of trusting it.
		st.GatewayRepairs = repairBackbone(g, next, cfg.gatewayDepth())
	}
	if st == (Stats{}) && next.Equal(prev) {
		st.Unchanged = true
		return prev, st
	}
	return next, st
}
