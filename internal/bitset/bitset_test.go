package bitset

import (
	"sort"
	"testing"
	"testing/quick"
)

// mkSet builds a Set from raw bytes, interpreting each byte mod 200 as an
// element. Used by the quick-check properties.
func mkSet(raw []byte) (*Set, map[int]bool) {
	s := &Set{}
	m := map[int]bool{}
	for _, b := range raw {
		e := int(b) % 200
		s.Add(e)
		m[e] = true
	}
	return s, m
}

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 || s.Min() != -1 || s.Max() != -1 {
		t.Fatal("zero value is not an empty set")
	}
	s.Add(100)
	if !s.Contains(100) || s.Len() != 1 {
		t.Fatal("Add on zero value failed")
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(0)
	for _, e := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		if s.Contains(e) {
			t.Fatalf("fresh set contains %d", e)
		}
		s.Add(e)
		if !s.Contains(e) {
			t.Fatalf("set missing %d after Add", e)
		}
		s.Remove(e)
		if s.Contains(e) {
			t.Fatalf("set contains %d after Remove", e)
		}
	}
}

func TestRemoveOutOfRangeIsNoop(t *testing.T) {
	s := FromSlice([]int{1, 2})
	s.Remove(-1)
	s.Remove(100000)
	if s.Len() != 2 {
		t.Fatalf("out-of-range Remove changed set: %v", s)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(0).Add(-1)
}

func TestContainsNegative(t *testing.T) {
	s := FromSlice([]int{0})
	if s.Contains(-1) {
		t.Fatal("Contains(-1) true")
	}
}

func TestLenAndElements(t *testing.T) {
	elems := []int{5, 70, 3, 3, 130, 64}
	s := FromSlice(elems)
	want := []int{3, 5, 64, 70, 130}
	got := s.Elements()
	if len(got) != len(want) || s.Len() != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	cases := []struct {
		elems    []int
		min, max int
	}{
		{nil, -1, -1},
		{[]int{0}, 0, 0},
		{[]int{63}, 63, 63},
		{[]int{64}, 64, 64},
		{[]int{7, 200, 64}, 7, 200},
	}
	for _, c := range cases {
		s := FromSlice(c.elems)
		if s.Min() != c.min || s.Max() != c.max {
			t.Fatalf("elems %v: min/max = %d/%d want %d/%d",
				c.elems, s.Min(), s.Max(), c.min, c.max)
		}
	}
}

func TestMinNotInMaxNotIn(t *testing.T) {
	s := FromSlice([]int{1, 5, 70, 130})
	o := FromSlice([]int{5, 130})
	if got := s.MinNotIn(o); got != 1 {
		t.Fatalf("MinNotIn = %d want 1", got)
	}
	if got := s.MaxNotIn(o); got != 70 {
		t.Fatalf("MaxNotIn = %d want 70", got)
	}
	if got := s.MinNotIn(s); got != -1 {
		t.Fatalf("MinNotIn(self) = %d want -1", got)
	}
	if got := s.MaxNotIn(nil); got != 130 {
		t.Fatalf("MaxNotIn(nil) = %d want 130", got)
	}
	// o larger than s in word count.
	big := FromSlice([]int{1000})
	if got := s.MinNotIn(big); got != 1 {
		t.Fatalf("MinNotIn(bigger) = %d want 1", got)
	}
}

func TestUnionDifferenceIntersection(t *testing.T) {
	a := FromSlice([]int{1, 2, 65})
	b := FromSlice([]int{2, 3, 200})

	u := Union(a, b)
	for _, e := range []int{1, 2, 3, 65, 200} {
		if !u.Contains(e) {
			t.Fatalf("union missing %d", e)
		}
	}
	if u.Len() != 5 {
		t.Fatalf("union len %d", u.Len())
	}

	d := Difference(a, b)
	if !d.Equal(FromSlice([]int{1, 65})) {
		t.Fatalf("difference = %v", d)
	}

	i := Intersection(a, b)
	if !i.Equal(FromSlice([]int{2})) {
		t.Fatalf("intersection = %v", i)
	}

	// In-place variants must not have modified operands.
	if !a.Equal(FromSlice([]int{1, 2, 65})) || !b.Equal(FromSlice([]int{2, 3, 200})) {
		t.Fatal("operands were modified")
	}
}

func TestDifferenceWithShorter(t *testing.T) {
	a := FromSlice([]int{1, 300})
	b := FromSlice([]int{1})
	a.DifferenceWith(b)
	if !a.Equal(FromSlice([]int{300})) {
		t.Fatalf("got %v", a)
	}
}

func TestIntersectWithShorterAndNil(t *testing.T) {
	a := FromSlice([]int{1, 300})
	a.IntersectWith(FromSlice([]int{300, 1, 5}))
	if !a.Equal(FromSlice([]int{1, 300})) {
		t.Fatalf("got %v", a)
	}
	a.IntersectWith(FromSlice([]int{1}))
	if !a.Equal(FromSlice([]int{1})) {
		t.Fatalf("got %v", a)
	}
	a.IntersectWith(nil)
	if !a.Empty() {
		t.Fatalf("intersect with nil not empty: %v", a)
	}
}

func TestEqualDifferentCapacities(t *testing.T) {
	a := New(1000)
	b := New(0)
	a.Add(3)
	b.Add(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equal sets with different capacities compare unequal")
	}
	a.Add(999)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("unequal sets compare equal")
	}
}

func TestEqualNil(t *testing.T) {
	empty := New(10)
	if !empty.Equal(nil) {
		t.Fatal("empty set != nil")
	}
	nonEmpty := FromSlice([]int{1})
	if nonEmpty.Equal(nil) {
		t.Fatal("non-empty set == nil")
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := FromSlice([]int{1, 2, 3})
	if !a.SubsetOf(b) {
		t.Fatal("a not subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b subset of a")
	}
	if !New(0).SubsetOf(a) {
		t.Fatal("empty not subset")
	}
	if !New(0).SubsetOf(nil) {
		t.Fatal("empty not subset of nil")
	}
	if a.SubsetOf(nil) {
		t.Fatal("non-empty subset of nil")
	}
	big := FromSlice([]int{500})
	if big.SubsetOf(a) {
		t.Fatal("big subset of a")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]int{1, 2})
	c := a.Clone()
	c.Add(3)
	a.Remove(1)
	if a.Contains(3) || !c.Contains(1) {
		t.Fatal("clone shares storage")
	}
}

func TestClearRetainsUsability(t *testing.T) {
	a := FromSlice([]int{1, 500})
	a.Clear()
	if !a.Empty() {
		t.Fatal("not empty after clear")
	}
	a.Add(7)
	if !a.Contains(7) || a.Len() != 1 {
		t.Fatal("set unusable after clear")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4})
	var got []int
	s.Range(func(i int) bool {
		got = append(got, i)
		return len(got) < 2
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Range early stop got %v", got)
	}
}

func TestString(t *testing.T) {
	if s := FromSlice([]int{2, 1}).String(); s != "{1, 2}" {
		t.Fatalf("String() = %q", s)
	}
	if s := New(0).String(); s != "{}" {
		t.Fatalf("empty String() = %q", s)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	a := FromSlice([]int{0, 63, 64, 199})
	var b Set
	b.SetWords(a.Words())
	if !a.Equal(&b) {
		t.Fatal("Words/SetWords round trip failed")
	}
}

// --- property-based tests ---

func TestQuickUnionCommutative(t *testing.T) {
	f := func(x, y []byte) bool {
		a, _ := mkSet(x)
		b, _ := mkSet(y)
		return Union(a, b).Equal(Union(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionMatchesMapModel(t *testing.T) {
	f := func(x, y []byte) bool {
		a, am := mkSet(x)
		b, bm := mkSet(y)
		u := Union(a, b)
		model := map[int]bool{}
		for e := range am {
			model[e] = true
		}
		for e := range bm {
			model[e] = true
		}
		if u.Len() != len(model) {
			return false
		}
		for e := range model {
			if !u.Contains(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferenceMatchesMapModel(t *testing.T) {
	f := func(x, y []byte) bool {
		a, am := mkSet(x)
		b, bm := mkSet(y)
		d := Difference(a, b)
		want := []int{}
		for e := range am {
			if !bm[e] {
				want = append(want, e)
			}
		}
		sort.Ints(want)
		got := d.Elements()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// Within a universe U: U \ (A ∪ B) == (U \ A) ∩ (U \ B).
	f := func(x, y []byte) bool {
		u := &Set{}
		for i := 0; i < 200; i++ {
			u.Add(i)
		}
		a, _ := mkSet(x)
		b, _ := mkSet(y)
		lhs := Difference(u, Union(a, b))
		rhs := Intersection(Difference(u, a), Difference(u, b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinNotInMatchesScan(t *testing.T) {
	f := func(x, y []byte) bool {
		a, _ := mkSet(x)
		b, _ := mkSet(y)
		want := -1
		for _, e := range a.Elements() {
			if !b.Contains(e) {
				want = e
				break
			}
		}
		return a.MinNotIn(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxNotInMatchesScan(t *testing.T) {
	f := func(x, y []byte) bool {
		a, _ := mkSet(x)
		b, _ := mkSet(y)
		want := -1
		es := a.Elements()
		for i := len(es) - 1; i >= 0; i-- {
			if !b.Contains(es[i]) {
				want = es[i]
				break
			}
		}
		return a.MaxNotIn(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetUnion(t *testing.T) {
	f := func(x, y []byte) bool {
		a, _ := mkSet(x)
		b, _ := mkSet(y)
		u := Union(a, b)
		return a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	a := New(1024)
	o := New(1024)
	for i := 0; i < 1024; i += 3 {
		a.Add(i)
	}
	for i := 0; i < 1024; i += 5 {
		o.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.UnionWith(o)
	}
}

func BenchmarkMinNotIn(b *testing.B) {
	a := New(1024)
	o := New(1024)
	for i := 0; i < 1024; i++ {
		a.Add(i)
	}
	for i := 0; i < 1000; i++ {
		o.Add(i)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = a.MinNotIn(o)
	}
	_ = sink
}

func TestCopyFrom(t *testing.T) {
	src := FromSlice([]int{2, 64, 300})
	var dst Set
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatalf("copy differs: %v vs %v", &dst, src)
	}
	// Independence: mutating the copy leaves the source alone.
	dst.Add(7)
	if src.Contains(7) {
		t.Fatal("CopyFrom aliased the source storage")
	}
	// Shrinking reuse: copying a small set into a wide one must drop the
	// high elements, not merge them.
	dst.CopyFrom(FromSlice([]int{1}))
	if dst.Contains(300) || dst.Len() != 1 {
		t.Fatalf("shrinking copy kept stale elements: %v", &dst)
	}
	// Nil empties.
	dst.CopyFrom(nil)
	if !dst.Empty() {
		t.Fatalf("CopyFrom(nil) left %v", &dst)
	}
}

func TestGrowAfterShrinkZeroesStaleWords(t *testing.T) {
	// A set that shrank via CopyFrom keeps its old words as spare capacity;
	// growing back into that capacity must expose zeroes, not the old bits.
	s := FromSlice([]int{200, 250})
	s.CopyFrom(FromSlice([]int{1}))
	s.Add(130) // regrow into spare capacity, below the stale words
	if s.Contains(200) || s.Contains(250) {
		t.Fatalf("stale words resurfaced: %v", s)
	}
	if got := s.Elements(); len(got) != 2 || got[0] != 1 || got[1] != 130 {
		t.Fatalf("got %v want [1 130]", got)
	}
	// Same hazard via SetWords.
	s2 := FromSlice([]int{500})
	s2.SetWords([]uint64{1})
	s2.Add(400)
	if s2.Contains(500) {
		t.Fatalf("stale words resurfaced after SetWords: %v", s2)
	}
}

func TestMinMaxNotInUnion(t *testing.T) {
	s := FromSlice([]int{1, 5, 70, 130, 260})
	a := FromSlice([]int{5, 260})
	b := FromSlice([]int{1, 130})
	if got := s.MinNotInUnion(a, b); got != 70 {
		t.Fatalf("MinNotInUnion = %d want 70", got)
	}
	if got := s.MaxNotInUnion(a, b); got != 70 {
		t.Fatalf("MaxNotInUnion = %d want 70", got)
	}
	// Nil arguments behave as empty sets, in either position.
	if got := s.MinNotInUnion(nil, b); got != 5 {
		t.Fatalf("MinNotInUnion(nil, b) = %d want 5", got)
	}
	if got := s.MaxNotInUnion(a, nil); got != 130 {
		t.Fatalf("MaxNotInUnion(a, nil) = %d want 130", got)
	}
	if got := s.MinNotInUnion(nil, nil); got != 1 {
		t.Fatalf("MinNotInUnion(nil, nil) = %d want 1", got)
	}
	// Fully covered → -1.
	if got := s.MinNotInUnion(s, nil); got != -1 {
		t.Fatalf("MinNotInUnion(self) = %d want -1", got)
	}
	if got := s.MaxNotInUnion(a, s); got != -1 {
		t.Fatalf("MaxNotInUnion(_, self) = %d want -1", got)
	}
}

func TestQuickNotInUnionMatchesMaterialised(t *testing.T) {
	f := func(xs, as, bs []byte) bool {
		s, _ := mkSet(xs)
		a, _ := mkSet(as)
		b, _ := mkSet(bs)
		u := Union(a, b)
		return s.MinNotInUnion(a, b) == s.MinNotIn(u) &&
			s.MaxNotInUnion(a, b) == s.MaxNotIn(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnionChanged(t *testing.T) {
	s := FromSlice([]int{1, 63})
	o := FromSlice([]int{63, 64, 127, 128})
	if !s.UnionChanged(o) {
		t.Fatal("union that adds elements must report changed")
	}
	for _, e := range []int{1, 63, 64, 127, 128} {
		if !s.Contains(e) {
			t.Fatalf("missing %d after union", e)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d want 5", s.Len())
	}
	// Re-union of an absorbed set must report unchanged.
	if s.UnionChanged(o) {
		t.Fatal("idempotent re-union reported changed")
	}
	if s.UnionChanged(nil) {
		t.Fatal("nil union reported changed")
	}
	if s.UnionChanged(&Set{}) {
		t.Fatal("empty union reported changed")
	}
	// A subset of s must not report changed even when its word count differs.
	if s.UnionChanged(FromSlice([]int{1})) {
		t.Fatal("subset union reported changed")
	}
}

func TestUnionCount(t *testing.T) {
	s := FromSlice([]int{0, 64})
	if got := s.UnionCount(FromSlice([]int{0, 63, 64, 65, 128})); got != 3 {
		t.Fatalf("UnionCount = %d want 3", got)
	}
	if got := s.UnionCount(FromSlice([]int{63, 65, 128})); got != 0 {
		t.Fatalf("repeat UnionCount = %d want 0", got)
	}
	if got := s.UnionCount(nil); got != 0 {
		t.Fatalf("nil UnionCount = %d want 0", got)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d want 5", s.Len())
	}
}

// TestUnionChangedWordBoundaries exercises each side of every word seam the
// delta path crosses: last bit of a word, first bit of the next.
func TestUnionChangedWordBoundaries(t *testing.T) {
	for _, e := range []int{0, 1, 62, 63, 64, 65, 126, 127, 128, 129, 191, 192} {
		s := New(0)
		if !s.UnionChanged(FromSlice([]int{e})) {
			t.Fatalf("element %d: first union not reported", e)
		}
		if !s.Contains(e) || s.Len() != 1 {
			t.Fatalf("element %d: wrong content %v", e, s)
		}
		if s.UnionChanged(FromSlice([]int{e})) {
			t.Fatalf("element %d: re-union reported changed", e)
		}
		if got := s.UnionCount(FromSlice([]int{e, e + 1})); got != 1 {
			t.Fatalf("element %d: UnionCount = %d want 1", e, got)
		}
	}
}

// TestUnionChangedAfterShrink re-creates the PR 2 stale-word hazard: a set
// shrunk by CopyFrom/SetWords regrows over storage whose spare words held
// old bits. UnionChanged/UnionCount must observe zeroes there, not stale
// garbage (which would both corrupt the union and mis-report the delta).
func TestUnionChangedAfterShrink(t *testing.T) {
	s := FromSlice([]int{5, 100, 180}) // three words in use
	s.CopyFrom(FromSlice([]int{5}))    // shrink to one word; words 1,2 stale
	if changed := s.UnionChanged(FromSlice([]int{100})); !changed {
		t.Fatal("union into shrunk set not reported as change")
	}
	if !s.Contains(100) || s.Contains(180) || s.Len() != 2 {
		t.Fatalf("stale words leaked: %v", s)
	}

	s2 := FromSlice([]int{5, 100, 180})
	s2.SetWords([]uint64{1 << 5}) // shrink via the codec path
	if got := s2.UnionCount(FromSlice([]int{100, 180})); got != 2 {
		t.Fatalf("UnionCount after SetWords shrink = %d want 2", got)
	}
	if s2.Len() != 3 {
		t.Fatalf("Len = %d want 3", s2.Len())
	}
}

func TestQuickUnionChangedAndCountMatchUnionWith(t *testing.T) {
	f := func(ra, rb []byte) bool {
		a1, _ := mkSet(ra)
		b, _ := mkSet(rb)
		a2 := a1.Clone()
		a3 := a1.Clone()
		before := a1.Len()
		a1.UnionWith(b)
		changed := a2.UnionChanged(b)
		count := a3.UnionCount(b)
		return a1.Equal(a2) && a1.Equal(a3) &&
			changed == (a1.Len() > before) &&
			count == a1.Len()-before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
