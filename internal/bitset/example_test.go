package bitset_test

import (
	"fmt"

	"repro/internal/bitset"
)

// Example shows the token-set algebra used by the dissemination protocols:
// TA (collected), TS (sent), TR (received from head), and the min/max
// selection rules of Algorithm 1.
func Example() {
	ta := bitset.FromSlice([]int{0, 2, 5, 7}) // tokens collected
	ts := bitset.FromSlice([]int{5})          // already sent
	tr := bitset.FromSlice([]int{0})          // received from the head

	known := bitset.Union(ts, tr)
	fmt.Println("next upload (max unknown):", ta.MaxNotIn(known))
	fmt.Println("next relay (min unsent):  ", ta.MinNotIn(ts))
	fmt.Println("outstanding:", bitset.Difference(ta, known))
	// Output:
	// next upload (max unknown): 7
	// next relay (min unsent):   0
	// outstanding: {2, 7}
}

func ExampleSet_SubsetOf() {
	have := bitset.FromSlice([]int{1, 2, 3})
	want := bitset.FromSlice([]int{1, 2, 3, 4})
	fmt.Println(have.SubsetOf(want), want.SubsetOf(have))
	// Output: true false
}
