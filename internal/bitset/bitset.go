// Package bitset implements a dense, growable bit set over non-negative
// integer elements.
//
// The simulator uses bit sets to represent token sets: with k tokens drawn
// from {0..k-1}, set algebra (union into TA, difference TA \ (TS ∪ TR),
// min/max of a difference) dominates the inner loop of every protocol, so
// the representation is a packed []uint64 with word-at-a-time operations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a growable bit set. The zero value is an empty set ready to use.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity hint n bits.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set containing exactly the given elements.
func FromSlice(elems []int) *Set {
	s := &Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// grow ensures the set can index bit i. Spare capacity is reused without
// allocating; the exposed extension is zeroed because it may hold stale
// words from before a CopyFrom/SetWords shrank the set.
func (s *Set) grow(i int) {
	need := i/wordBits + 1
	if need <= len(s.words) {
		return
	}
	if need <= cap(s.words) {
		n := len(s.words)
		s.words = s.words[:need]
		for j := n; j < need; j++ {
			s.words[j] = 0
		}
		return
	}
	w := make([]uint64, need)
	copy(w, s.words)
	s.words = w
}

// Add inserts element i. It panics if i is negative.
func (s *Set) Add(i int) {
	if i < 0 {
		panic("bitset: negative element")
	}
	s.grow(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes element i if present. Negative i is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 || i/wordBits >= len(s.words) {
		return
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i/wordBits >= len(s.words) {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom makes s an exact copy of o, reusing s's storage when it has the
// capacity (the allocation-free counterpart of Clone; nil o empties s).
func (s *Set) CopyFrom(o *Set) {
	if o == nil {
		s.words = s.words[:0]
		return
	}
	if cap(s.words) >= len(o.words) {
		s.words = s.words[:len(o.words)]
	} else {
		s.words = make([]uint64, len(o.words))
	}
	copy(s.words, o.words)
}

// UnionWith adds every element of o to s (s ∪= o).
func (s *Set) UnionWith(o *Set) {
	if o == nil {
		return
	}
	if len(o.words) > len(s.words) {
		s.grow(len(o.words)*wordBits - 1)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// UnionChanged adds every element of o to s (s ∪= o) and reports whether s
// gained any element. It is the delta-delivery primitive: a receiver that
// unions an incoming token set can tell in the same word-level pass whether
// the message taught it anything, without a separate Len or Equal sweep.
func (s *Set) UnionChanged(o *Set) bool {
	if o == nil {
		return false
	}
	if len(o.words) > len(s.words) {
		s.grow(len(o.words)*wordBits - 1)
	}
	changed := false
	for i, w := range o.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// UnionCount adds every element of o to s (s ∪= o) and returns how many
// elements s gained (|o \ s| before the union). Like UnionChanged it costs
// one word-level pass and allocates nothing beyond any required growth.
func (s *Set) UnionCount(o *Set) int {
	if o == nil {
		return 0
	}
	if len(o.words) > len(s.words) {
		s.grow(len(o.words)*wordBits - 1)
	}
	added := 0
	for i, w := range o.words {
		old := s.words[i]
		if d := w &^ old; d != 0 {
			s.words[i] = old | w
			added += bits.OnesCount64(d)
		}
	}
	return added
}

// IntersectWith removes from s every element not in o (s ∩= o).
func (s *Set) IntersectWith(o *Set) {
	if o == nil {
		s.Clear()
		return
	}
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &= o.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// DifferenceWith removes every element of o from s (s \= o).
func (s *Set) DifferenceWith(o *Set) {
	if o == nil {
		return
	}
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// Union returns a new set s ∪ o.
func Union(s, o *Set) *Set {
	r := s.Clone()
	r.UnionWith(o)
	return r
}

// Difference returns a new set s \ o.
func Difference(s, o *Set) *Set {
	r := s.Clone()
	r.DifferenceWith(o)
	return r
}

// Intersection returns a new set s ∩ o.
func Intersection(s, o *Set) *Set {
	r := s.Clone()
	r.IntersectWith(o)
	return r
}

// Equal reports whether s and o contain the same elements.
func (s *Set) Equal(o *Set) bool {
	if o == nil {
		return s == nil || s.Empty()
	}
	a, b := s.words, o.words
	if len(a) > len(b) {
		a, b = b, a
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	for _, w := range b[len(a):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	for i, w := range s.words {
		var ow uint64
		if o != nil && i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// MinNotIn returns the smallest element of s that is not in o, or -1 if
// s \ o is empty. It allocates nothing.
func (s *Set) MinNotIn(o *Set) int {
	for i, w := range s.words {
		var ow uint64
		if o != nil && i < len(o.words) {
			ow = o.words[i]
		}
		if d := w &^ ow; d != 0 {
			return i*wordBits + bits.TrailingZeros64(d)
		}
	}
	return -1
}

// MaxNotIn returns the largest element of s that is not in o, or -1 if
// s \ o is empty. It allocates nothing.
func (s *Set) MaxNotIn(o *Set) int {
	for i := len(s.words) - 1; i >= 0; i-- {
		w := s.words[i]
		var ow uint64
		if o != nil && i < len(o.words) {
			ow = o.words[i]
		}
		if d := w &^ ow; d != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(d)
		}
	}
	return -1
}

// MinNotInUnion returns the smallest element of s that is in neither a nor
// b — Min of s \ (a ∪ b) without materialising the union. It allocates
// nothing; either argument may be nil.
func (s *Set) MinNotInUnion(a, b *Set) int {
	for i, w := range s.words {
		var ow uint64
		if a != nil && i < len(a.words) {
			ow = a.words[i]
		}
		if b != nil && i < len(b.words) {
			ow |= b.words[i]
		}
		if d := w &^ ow; d != 0 {
			return i*wordBits + bits.TrailingZeros64(d)
		}
	}
	return -1
}

// MaxNotInUnion returns the largest element of s that is in neither a nor
// b — Max of s \ (a ∪ b) without materialising the union. It allocates
// nothing; either argument may be nil.
func (s *Set) MaxNotInUnion(a, b *Set) int {
	for i := len(s.words) - 1; i >= 0; i-- {
		w := s.words[i]
		var ow uint64
		if a != nil && i < len(a.words) {
			ow = a.words[i]
		}
		if b != nil && i < len(b.words) {
			ow |= b.words[i]
		}
		if d := w &^ ow; d != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(d)
		}
	}
	return -1
}

// Elements returns the elements in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Len())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// Range calls fn for each element in ascending order; it stops early if fn
// returns false.
func (s *Set) Range(fn func(i int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// String formats the set as {a, b, c}.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.Range(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

// Words exposes the packed representation (for codecs). The returned slice
// aliases the set's storage and must not be modified.
func (s *Set) Words() []uint64 {
	return s.words
}

// SetWords replaces the packed representation (for codecs). The slice is
// copied; existing storage is reused when it has the capacity.
func (s *Set) SetWords(w []uint64) {
	if cap(s.words) >= len(w) {
		s.words = s.words[:len(w)]
	} else {
		s.words = make([]uint64, len(w))
	}
	copy(s.words, w)
}
