package obs

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// ev builds a RoundEvent with just the fields Summarize folds.
func ev(round, phase int, msgs, uploads, relays int64, delivered, total int, idle bool, stall int) RoundEvent {
	e := RoundEvent{
		Round: round, Phase: phase,
		Messages: msgs, Tokens: 2 * msgs,
		Delivered: delivered, Total: total,
		Idle: idle, Stall: stall,
	}
	e.MsgsByKind[sim.KindUpload] = uploads
	e.MsgsByKind[sim.KindRelay] = relays
	e.TokensByKind[sim.KindUpload] = 2 * uploads
	e.TokensByKind[sim.KindRelay] = 2 * relays
	return e
}

func TestSummarizePhaseTransitions(t *testing.T) {
	// Three rounds in phase 0, two in phase 1, one in phase 2: the group
	// boundaries must fall exactly where the Phase field changes, and the
	// per-phase Gained deltas must chain through the transitions.
	events := []RoundEvent{
		ev(0, 0, 10, 4, 2, 5, 40, false, 0),
		ev(1, 0, 8, 3, 1, 9, 40, false, 0),
		ev(2, 0, 0, 0, 0, 9, 40, true, 1),
		ev(3, 1, 6, 2, 2, 20, 40, false, 0),
		ev(4, 1, 4, 1, 1, 28, 40, false, 0),
		ev(5, 2, 2, 1, 0, 40, 40, false, 0),
	}
	phases := Summarize(events)
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	wantRounds := []int{3, 2, 1}
	wantMsgs := []int64{18, 10, 2}
	wantUploads := []int64{7, 3, 1}
	wantRelays := []int64{3, 3, 0}
	wantDelivered := []int{9, 28, 40}
	wantGained := []int{9, 19, 12}
	for i, p := range phases {
		if p.Phase != i {
			t.Fatalf("phase %d has Phase=%d", i, p.Phase)
		}
		if p.Rounds != wantRounds[i] || p.Messages != wantMsgs[i] {
			t.Fatalf("phase %d: rounds=%d msgs=%d, want %d/%d",
				i, p.Rounds, p.Messages, wantRounds[i], wantMsgs[i])
		}
		if p.Uploads != wantUploads[i] || p.Relays != wantRelays[i] {
			t.Fatalf("phase %d: uploads=%d relays=%d, want %d/%d",
				i, p.Uploads, p.Relays, wantUploads[i], wantRelays[i])
		}
		if p.UploadTokens != 2*wantUploads[i] || p.RelayTokens != 2*wantRelays[i] {
			t.Fatalf("phase %d: upload/relay token costs %d/%d, want %d/%d",
				i, p.UploadTokens, p.RelayTokens, 2*wantUploads[i], 2*wantRelays[i])
		}
		// Delivered is a snapshot (phase end), Gained a delta over the phase.
		if p.Delivered != wantDelivered[i] || p.Gained != wantGained[i] {
			t.Fatalf("phase %d: delivered=%d gained=%d, want %d/%d",
				i, p.Delivered, p.Gained, wantDelivered[i], wantGained[i])
		}
		if p.Total != 40 {
			t.Fatalf("phase %d: total=%d, want 40", i, p.Total)
		}
	}
	if phases[0].IdleRounds != 1 || phases[0].StallRounds != 1 {
		t.Fatalf("phase 0 idle/stall = %d/%d, want 1/1", phases[0].IdleRounds, phases[0].StallRounds)
	}
	if phases[1].IdleRounds != 0 || phases[1].StallRounds != 0 {
		t.Fatalf("phase 1 idle/stall = %d/%d, want 0/0", phases[1].IdleRounds, phases[1].StallRounds)
	}
}

func TestSummarizeNonContiguousPhases(t *testing.T) {
	// Phases need not be consecutive integers (Alg 2 degenerates to phase
	// == round under PhaseLen 1, and a truncated event stream can open on
	// any phase): every Phase-field change starts a new group, and the
	// first group's Gained baseline is zero delivered pairs.
	events := []RoundEvent{
		ev(7, 3, 5, 0, 0, 12, 40, false, 0),
		ev(8, 5, 5, 0, 0, 15, 40, false, 0),
		ev(9, 5, 5, 0, 0, 16, 40, false, 0),
	}
	phases := Summarize(events)
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	if phases[0].Phase != 3 || phases[1].Phase != 5 {
		t.Fatalf("phase ids %d,%d, want 3,5", phases[0].Phase, phases[1].Phase)
	}
	if phases[0].Gained != 12 || phases[1].Gained != 4 {
		t.Fatalf("gained %d,%d, want 12,4", phases[0].Gained, phases[1].Gained)
	}
}

func TestSummarizeChurnAndCrashes(t *testing.T) {
	a := ev(0, 0, 1, 0, 0, 1, 8, false, 0)
	a.HeadChanges, a.Reaffiliations, a.GatewayFlips = 2, 3, 1
	a.Crashed = []int{4, 5}
	b := ev(1, 0, 1, 0, 0, 2, 8, false, 0)
	b.HeadChanges, b.Crashed = 1, []int{6}
	phases := Summarize([]RoundEvent{a, b})
	if len(phases) != 1 {
		t.Fatalf("got %d phases, want 1", len(phases))
	}
	p := phases[0]
	if p.HeadChanges != 3 || p.Reaffiliations != 3 || p.GatewayFlips != 1 || p.Crashes != 3 {
		t.Fatalf("churn sums %+v, want head-chg=3 reaffil=3 gw-flip=1 crashes=3", p)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); len(got) != 0 {
		t.Fatalf("Summarize(nil) = %v, want empty", got)
	}
}

func TestPhaseTableRendersProgress(t *testing.T) {
	phases := Summarize([]RoundEvent{
		ev(0, 0, 10, 4, 2, 20, 40, false, 0),
		ev(1, 1, 2, 1, 0, 40, 40, false, 0),
	})
	var sb strings.Builder
	if err := PhaseTable("t", phases).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"50.0%", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing progress %q:\n%s", want, out)
		}
	}
	// A zero-Total phase renders "-" rather than dividing by zero.
	var empty strings.Builder
	if err := PhaseTable("t", []PhaseSummary{{Phase: 0, Rounds: 1}}).WriteText(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "-") {
		t.Fatalf("zero-total phase should render '-':\n%s", empty.String())
	}
}
