package recorder

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/sim"
)

// Bundle format: a JSONL file. Line 1 is the header; each following line
// is a single-key section object ({"fingerprint":...}, {"metrics":...},
// {"faults":...}, {"health":...}) until {"events":N}, which is followed
// by exactly N round-event lines (the Collector's wire encoding), an
// optional {"timing":M} with M timing lines, and a closing {"end":true}.
//
// Every section except timing is deterministic — fingerprint maps encode
// with sorted keys, Metrics and fault plans are fixed structs, events use
// the Collector's fixed-key-order encoder — so bundles from serial and
// parallel runs of the same configuration are byte-identical. Timing rows
// carry wall-clock durations and are exempt from that guarantee (they are
// only present when a timing sink was attached).

const (
	bundleMagic   = "hinet-postmortem"
	bundleVersion = 1
)

// bundleHeader is line 1 of a dump.
type bundleHeader struct {
	Bundle   string `json:"bundle"`
	Version  int    `json:"version"`
	Reason   string `json:"reason"`
	Round    int    `json:"round"`
	Prefix   string `json:"prefix"`
	N        int    `json:"n"`
	K        int    `json:"k"`
	PhaseLen int    `json:"phase_len"`
	Depth    int    `json:"depth"`
}

// TimingRow is one recorded round's stage timing in a bundle.
type TimingRow struct {
	Round int     `json:"round"`
	Wall  []int64 `json:"wall"`
	// Shard holds per-shard stage durations for the fan-out stages, one
	// row per shard, when the run executed with Workers > 1.
	Shard [][]int64 `json:"shard,omitempty"`
}

// Bundle is a parsed postmortem dump.
type Bundle struct {
	Reason      string
	Round       int
	Prefix      string
	N, K        int
	PhaseLen    int
	Depth       int
	Fingerprint map[string]string
	Metrics     sim.Metrics
	Faults      *faults.Plan
	Health      []health.State
	Events      []obs.RoundEvent
	Timing      []TimingRow
}

// writeBundle renders the ring (and the run's metadata) into
// DumpDir/<prefix>-r<round>-<reason>.dump and returns the path.
func (rec *Recorder) writeBundle(req dumpReq) (string, error) {
	if err := os.MkdirAll(rec.cfg.DumpDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(rec.cfg.DumpDir, rec.bundleName(req))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	w := bufio.NewWriter(f)
	werr := rec.renderBundle(w, req)
	if ferr := w.Flush(); werr == nil {
		werr = ferr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return "", fmt.Errorf("recorder: writing %s: %w", path, werr)
	}
	return path, nil
}

// renderBundle writes the dump body. It snapshots the ring under rec.mu
// but runs the encoding outside it where possible.
func (rec *Recorder) renderBundle(w io.Writer, req dumpReq) error {
	writeLine := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		_, err = w.Write(b)
		return err
	}

	if err := writeLine(bundleHeader{
		Bundle: bundleMagic, Version: bundleVersion,
		Reason: req.reason, Round: req.round, Prefix: rec.cfg.Prefix,
		N: rec.cfg.Obs.N, K: rec.cfg.Obs.K, PhaseLen: rec.cfg.Obs.PhaseLen,
		Depth: len(rec.ring),
	}); err != nil {
		return err
	}
	// json.Marshal emits map keys sorted, keeping the section
	// deterministic across runs.
	if err := writeLine(map[string]map[string]string{"fingerprint": orEmpty(rec.cfg.Fingerprint)}); err != nil {
		return err
	}

	rec.mu.Lock()
	met := rec.met
	events := rec.eventsLocked()
	var timing []TimingRow
	if rec.timed {
		start := rec.head - rec.n
		if start < 0 {
			start += len(rec.ring)
		}
		for i := 0; i < rec.n; i++ {
			row := &rec.timing[(start+i)%len(rec.ring)]
			tr := TimingRow{Round: row.round, Wall: append([]int64(nil), row.wall[:]...)}
			for _, s := range row.shard {
				tr.Shard = append(tr.Shard, append([]int64(nil), s[:]...))
			}
			timing = append(timing, tr)
		}
	}
	// Deep-copy the events before releasing the lock: the engine may
	// overwrite ring slots while we encode.
	evs := make([]obs.RoundEvent, len(events))
	for i, e := range events {
		evs[i] = *e
		evs[i].Crashed = append([]int(nil), e.Crashed...)
		evs[i].Recovered = append([]int(nil), e.Recovered...)
	}
	rec.mu.Unlock()

	if err := writeLine(map[string]sim.Metrics{"metrics": met}); err != nil {
		return err
	}
	if rec.cfg.FaultPlan != nil {
		if err := writeLine(map[string]*faults.Plan{"faults": rec.cfg.FaultPlan}); err != nil {
			return err
		}
	}
	if states := rec.hea.States(); len(states) > 0 {
		if err := writeLine(map[string][]health.State{"health": states}); err != nil {
			return err
		}
	}
	if err := writeLine(map[string]int{"events": len(evs)}); err != nil {
		return err
	}
	var buf []byte
	for i := range evs {
		buf = evs[i].AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	if timing != nil {
		if err := writeLine(map[string]int{"timing": len(timing)}); err != nil {
			return err
		}
		for _, tr := range timing {
			if err := writeLine(tr); err != nil {
				return err
			}
		}
	}
	return writeLine(map[string]bool{"end": true})
}

func orEmpty(m map[string]string) map[string]string {
	if m == nil {
		return map[string]string{}
	}
	return m
}

// ReadBundle parses the dump at path.
func ReadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseBundle(f)
}

// ParseBundle parses a dump stream written by the flight recorder.
func ParseBundle(r io.Reader) (*Bundle, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := func() ([]byte, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.ErrUnexpectedEOF
		}
		return sc.Bytes(), nil
	}

	var hdr bundleHeader
	l, err := line()
	if err != nil {
		return nil, fmt.Errorf("recorder: reading bundle header: %w", err)
	}
	if err := json.Unmarshal(l, &hdr); err != nil || hdr.Bundle != bundleMagic {
		return nil, fmt.Errorf("recorder: not a postmortem bundle")
	}
	if hdr.Version != bundleVersion {
		return nil, fmt.Errorf("recorder: bundle version %d, want %d", hdr.Version, bundleVersion)
	}
	b := &Bundle{
		Reason: hdr.Reason, Round: hdr.Round, Prefix: hdr.Prefix,
		N: hdr.N, K: hdr.K, PhaseLen: hdr.PhaseLen, Depth: hdr.Depth,
	}

	// section is the union of every possible section line.
	type section struct {
		Fingerprint *map[string]string `json:"fingerprint"`
		Metrics     *sim.Metrics       `json:"metrics"`
		Faults      *faults.Plan       `json:"faults"`
		Health      []health.State     `json:"health"`
		Events      *int               `json:"events"`
		Timing      *int               `json:"timing"`
		End         bool               `json:"end"`
	}
	for {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("recorder: truncated bundle: %w", err)
		}
		var s section
		if err := json.Unmarshal(l, &s); err != nil {
			return nil, fmt.Errorf("recorder: bad bundle section: %w", err)
		}
		switch {
		case s.End:
			return b, nil
		case s.Fingerprint != nil:
			b.Fingerprint = *s.Fingerprint
		case s.Metrics != nil:
			b.Metrics = *s.Metrics
		case s.Faults != nil:
			b.Faults = s.Faults
		case s.Health != nil:
			b.Health = s.Health
		case s.Events != nil:
			var raw bytes.Buffer
			for i := 0; i < *s.Events; i++ {
				el, err := line()
				if err != nil {
					return nil, fmt.Errorf("recorder: truncated event section: %w", err)
				}
				raw.Write(el)
				raw.WriteByte('\n')
			}
			evs, err := obs.ParseEvents(&raw)
			if err != nil {
				return nil, fmt.Errorf("recorder: event section: %w", err)
			}
			b.Events = evs
		case s.Timing != nil:
			for i := 0; i < *s.Timing; i++ {
				tl, err := line()
				if err != nil {
					return nil, fmt.Errorf("recorder: truncated timing section: %w", err)
				}
				var tr TimingRow
				if err := json.Unmarshal(tl, &tr); err != nil {
					return nil, fmt.Errorf("recorder: timing row: %w", err)
				}
				b.Timing = append(b.Timing, tr)
			}
		default:
			return nil, fmt.Errorf("recorder: unrecognised bundle section %q", l)
		}
	}
}

// TrajectoryPoint is one ring round in a diagnosis: the progress and
// pressure series heading into the failure.
type TrajectoryPoint struct {
	Round       int   `json:"round"`
	Delivered   int   `json:"delivered"`
	Total       int   `json:"total"`
	Stall       int   `json:"stall"`
	Messages    int64 `json:"messages"`
	Outstanding int   `json:"outstanding"`
	Crashes     int   `json:"crashes"`
	Drops       int64 `json:"drops"`
}

// StageTrend compares one stage's wall time early in the ring window
// against its tail (the approach into the anomaly).
type StageTrend struct {
	Stage string `json:"stage"`
	// BaseNs / TailNs are mean per-round nanoseconds over the first half
	// and last quarter of the timed window; Ratio is tail/base.
	BaseNs int64   `json:"base_ns"`
	TailNs int64   `json:"tail_ns"`
	Ratio  float64 `json:"ratio"`
}

// Diagnosis is what `hinettrace postmortem` renders: the bundle's anomaly
// located against the recorded window.
type Diagnosis struct {
	Reason string `json:"reason"`
	Round  int    `json:"round"`
	// LastHealthyRound is the newest recorded round that was still making
	// delivery progress before the first violation (−1 if the whole
	// window is already unhealthy or progress-free).
	LastHealthyRound int `json:"last_healthy_round"`
	// FirstViolated is the health rule that broke first (nil when the
	// bundle carries no health verdicts — the trigger reason then stands
	// alone, e.g. an engine-watchdog stall with no rule set).
	FirstViolated *health.State `json:"first_violated,omitempty"`
	// Trajectory is the tail of the ring window (up to 16 rounds).
	Trajectory []TrajectoryPoint `json:"trajectory,omitempty"`
	// Stages lists per-stage time trends when the bundle has timing rows,
	// slowest-regressing first.
	Stages []StageTrend `json:"stages,omitempty"`
	// Notes are one-line observations about the window.
	Notes []string `json:"notes,omitempty"`
}

// Diagnose locates the bundle's anomaly: the first violated rule, the
// last round that still looked healthy, and the progress/stage-time
// trajectory into the failure.
func (b *Bundle) Diagnose() *Diagnosis {
	d := &Diagnosis{Reason: b.Reason, Round: b.Round, LastHealthyRound: -1}

	for i := range b.Health {
		s := &b.Health[i]
		if s.Violations == 0 {
			continue
		}
		if d.FirstViolated == nil || s.FirstRound < d.FirstViolated.FirstRound {
			d.FirstViolated = s
		}
	}

	// Last healthy round: newest recorded round before the first
	// violation that was still making progress (stall streak 0).
	limit := b.Round
	if d.FirstViolated != nil && d.FirstViolated.FirstRound <= limit {
		limit = d.FirstViolated.FirstRound - 1
	}
	for i := len(b.Events) - 1; i >= 0; i-- {
		e := &b.Events[i]
		if e.Round <= limit && e.Stall == 0 && !e.Stalled {
			d.LastHealthyRound = e.Round
			break
		}
	}

	tail := b.Events
	if len(tail) > 16 {
		tail = tail[len(tail)-16:]
	}
	var crashes int
	var drops int64
	for i := range b.Events {
		crashes += len(b.Events[i].Crashed)
		drops += b.Events[i].Drops
	}
	for i := range tail {
		e := &tail[i]
		d.Trajectory = append(d.Trajectory, TrajectoryPoint{
			Round: e.Round, Delivered: e.Delivered, Total: e.Total,
			Stall: e.Stall, Messages: e.Messages, Outstanding: e.Outstanding,
			Crashes: len(e.Crashed), Drops: e.Drops,
		})
	}
	d.Stages = stageTrends(b.Timing)

	if n := len(b.Events); n > 0 {
		first, last := &b.Events[0], &b.Events[n-1]
		d.Notes = append(d.Notes, fmt.Sprintf("window covers rounds %d–%d (%d of %d ring slots)",
			first.Round, last.Round, n, b.Depth))
		if last.Total > 0 {
			d.Notes = append(d.Notes, fmt.Sprintf("progress at dump: %d/%d pairs (%.1f%%), stall streak %d",
				last.Delivered, last.Total, 100*last.ProgressRatio(), last.Stall))
		}
		if crashes > 0 {
			d.Notes = append(d.Notes, fmt.Sprintf("%d crashes in window", crashes))
		}
		if drops > 0 {
			d.Notes = append(d.Notes, fmt.Sprintf("%d link-fault drops in window", drops))
		}
		if last.Stalled {
			d.Notes = append(d.Notes, "engine stall watchdog terminated the run")
		}
	}
	if b.Metrics.Stall != nil {
		d.Notes = append(d.Notes, b.Metrics.Stall.String())
	}
	return d
}

// stageTrends summarises per-stage wall-time drift across the timed
// window: mean of the first half vs mean of the last quarter.
func stageTrends(rows []TimingRow) []StageTrend {
	if len(rows) < 8 {
		return nil
	}
	half, quarter := rows[:len(rows)/2], rows[len(rows)-len(rows)/4:]
	var out []StageTrend
	for s := 0; s < int(sim.NumStages); s++ {
		var base, tail int64
		for _, r := range half {
			if s < len(r.Wall) {
				base += r.Wall[s]
			}
		}
		for _, r := range quarter {
			if s < len(r.Wall) {
				tail += r.Wall[s]
			}
		}
		base /= int64(len(half))
		tail /= int64(len(quarter))
		if base == 0 && tail == 0 {
			continue
		}
		ratio := 0.0
		if base > 0 {
			ratio = float64(tail) / float64(base)
		}
		out = append(out, StageTrend{Stage: sim.Stage(s).String(), BaseNs: base, TailNs: tail, Ratio: ratio})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Ratio > out[j-1].Ratio; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
