package recorder

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// testTrace freezes a churning HiNet so every worker count replays the
// same dynamics.
func testTrace(t testing.TB, n, rounds, T int) *ctvg.Trace {
	t.Helper()
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: n / 4, L: 2, T: T,
		Reaffiliations: 2, ChurnEdges: 4,
	}, xrand.New(3))
	return ctvg.Record(adv, rounds)
}

func mustRules(t testing.TB, spec string) []health.Rule {
	t.Helper()
	rules, err := health.ParseRules(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// runStalled drives Algorithm 1 into the stall watchdog (the entire
// population crashes mid-run) with a fully wired recorder.
func runStalled(t testing.TB, workers int, dir string) (*Recorder, *sim.Metrics) {
	t.Helper()
	const n, k, T, rounds = 32, 6, 12, 160
	tr := testTrace(t, n, rounds, T)
	assign := token.Spread(n, k, xrand.New(9))
	crash := map[int]int{}
	for v := 0; v < n; v++ {
		crash[v] = 4 // well before any run can complete
	}
	plan := &sim.Faults{Seed: 5, CrashAt: crash}
	rec := New(Config{
		Obs:     obs.Config{N: n, K: k, PhaseLen: T, SizeFn: wire.Size},
		Depth:   64,
		Rules:   mustRules(t, "stall>=8"),
		Alpha:   2,
		DumpDir: dir, Prefix: "t",
		Fingerprint: map[string]string{"scenario": "test", "n": "32"},
		FaultPlan:   plan,
	})
	met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds:   rounds,
		StallWindow: 8,
		Observer:    rec.Observer(),
		SizeFn:      wire.Size,
		Workers:     workers,
		Faults:      plan,
	})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return rec, met
}

func TestStallProducesExactlyOneBundle(t *testing.T) {
	dir := t.TempDir()
	rec, met := runStalled(t, 0, dir)
	if met.Stall == nil {
		t.Fatalf("run did not stall: %v", met)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.dump"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("stall wrote %d bundles, want exactly 1: %v", len(files), files)
	}
	if got := rec.Bundles(); len(got) != 1 || got[0] != files[0] {
		t.Fatalf("Bundles() = %v, files = %v", got, files)
	}
	if !strings.HasSuffix(files[0], "-stall.dump") {
		t.Fatalf("bundle name %q does not carry the stall reason", files[0])
	}

	b, err := ReadBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "stall" || b.N != 32 || b.K != 6 || b.PhaseLen != 12 {
		t.Fatalf("bundle header %+v", b)
	}
	if b.Fingerprint["scenario"] != "test" {
		t.Fatalf("fingerprint lost: %v", b.Fingerprint)
	}
	if b.Faults == nil || len(b.Faults.CrashAt) != 32 {
		t.Fatalf("fault plan lost: %+v", b.Faults)
	}
	if b.Metrics.Stall == nil || b.Metrics.Rounds != met.Rounds {
		t.Fatalf("metrics snapshot incomplete: %+v", b.Metrics)
	}
	if len(b.Events) == 0 || len(b.Events) > 64 {
		t.Fatalf("%d events in a depth-64 ring", len(b.Events))
	}
	last := b.Events[len(b.Events)-1]
	if !last.Stalled || last.Round != met.Stall.Round {
		t.Fatalf("ring tail %+v does not end at the watchdog round %d", last, met.Stall.Round)
	}

	d := b.Diagnose()
	if d.FirstViolated == nil || d.FirstViolated.Rule.Kind != health.KindStall {
		t.Fatalf("diagnosis blames %+v, want the stall rule", d.FirstViolated)
	}
	if d.LastHealthyRound < 0 || d.LastHealthyRound >= d.FirstViolated.FirstRound {
		t.Fatalf("last healthy round %d vs first violation %d", d.LastHealthyRound, d.FirstViolated.FirstRound)
	}
	if len(d.Trajectory) == 0 {
		t.Fatal("diagnosis has no trajectory")
	}
}

func TestBundleByteIdenticalAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 4} {
		dir := t.TempDir()
		rec, _ := runStalled(t, workers, dir)
		files := rec.Bundles()
		if len(files) != 1 {
			t.Fatalf("workers=%d wrote %d bundles", workers, len(files))
		}
		raw, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = raw
			continue
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("workers=%d bundle differs from serial (%d vs %d bytes)", workers, len(raw), len(want))
		}
	}
	// The ring itself must agree too, not just its serialisation.
	dirA, dirB := t.TempDir(), t.TempDir()
	recA, _ := runStalled(t, 0, dirA)
	recB, _ := runStalled(t, 4, dirB)
	evA, evB := recA.Events(), recB.Events()
	if len(evA) != len(evB) {
		t.Fatalf("ring lengths differ: %d vs %d", len(evA), len(evB))
	}
	var bufA, bufB []byte
	for i := range evA {
		bufA = evA[i].AppendJSON(bufA[:0])
		bufB = evB[i].AppendJSON(bufB[:0])
		if !bytes.Equal(bufA, bufB) {
			t.Fatalf("ring slot %d differs:\n%s\n%s", i, bufA, bufB)
		}
	}
}

func TestPaceViolationDump(t *testing.T) {
	// An α far above what any run can sustain forces the Theorem-1 floor
	// past reality at the second phase boundary.
	const n, k, T, rounds = 32, 8, 4, 60
	tr := testTrace(t, n, rounds, 12)
	assign := token.Spread(n, k, xrand.New(9))
	dir := t.TempDir()
	rec := New(Config{
		Obs:     obs.Config{N: n, K: k, PhaseLen: T},
		Rules:   mustRules(t, "pace"),
		Alpha:   8,
		DumpDir: dir, Prefix: "pace",
	})
	sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: rounds,
		Observer:  rec.Observer(),
	})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	files := rec.Bundles()
	if len(files) != 1 || !strings.HasSuffix(files[0], "-pace.dump") {
		t.Fatalf("pace violation bundles: %v", files)
	}
	b, err := ReadBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	d := b.Diagnose()
	if d.Reason != "pace" || d.FirstViolated == nil || d.FirstViolated.Rule.Kind != health.KindPace {
		t.Fatalf("diagnosis %+v does not blame the pace rule", d.FirstViolated)
	}
}

func TestQueueSLAMissDump(t *testing.T) {
	// A queue budget of zero is a deliberate SLA miss: the first phase
	// boundary with anything outstanding violates.
	const n = 6
	d := sim.NewFlat(tvg.Static{G: graph.Path(n)})
	dir := t.TempDir()
	rec := New(Config{
		Obs:     obs.Config{N: n, K: 1, PhaseLen: 10, Arrivals: true},
		Rules:   mustRules(t, "queue<=0,conservation"),
		DumpDir: dir, Prefix: "sla",
	})
	arr := sim.Arrivals{Rate: 2, Seed: 7, OnRounds: 3, OffRounds: 12, Stop: 60}
	sim.MustRunProtocol(d, baseline.Flood{}, token.SingleSource(n, 1, 0), sim.Options{
		MaxRounds:        300,
		StopWhenComplete: true,
		StallWindow:      50,
		Observer:         rec.Observer(),
		Arrivals:         &arr,
	})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	files := rec.Bundles()
	if len(files) != 1 || !strings.HasSuffix(files[0], "-queue.dump") {
		t.Fatalf("SLA miss bundles: %v (conservation must stay clean)", files)
	}
	b, err := ReadBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	d2 := b.Diagnose()
	if d2.FirstViolated == nil || d2.FirstViolated.Rule.Kind != health.KindQueue {
		t.Fatalf("diagnosis %+v does not blame the queue rule", d2.FirstViolated)
	}
	// The genuine conservation invariant must have been judged and held.
	for _, s := range b.Health {
		if s.Rule.Kind == health.KindConservation {
			if s.LastRound < 0 {
				t.Fatal("conservation rule never judged")
			}
			if s.Violations != 0 {
				t.Fatalf("conservation broke on a healthy run: %+v", s)
			}
		}
	}
}

func TestRingWrapKeepsNewestRounds(t *testing.T) {
	const n, k, T, rounds = 24, 4, 8, 96
	tr := testTrace(t, n, rounds, T)
	assign := token.Spread(n, k, xrand.New(9))
	rec := New(Config{Obs: obs.Config{N: n, K: k, PhaseLen: T}, Depth: 16})
	met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: rounds,
		Observer:  rec.Observer(),
	})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d rounds, want 16", len(evs))
	}
	for i, e := range evs {
		if want := met.Rounds - 16 + i; e.Round != want {
			t.Fatalf("slot %d holds round %d, want %d", i, e.Round, want)
		}
	}
}

func TestRecorderWithoutDumpDir(t *testing.T) {
	// No dump dir: triggers mark the run unhealthy but write nothing.
	dir := t.TempDir()
	rec, _ := runStalledNoDir(t)
	if got := rec.Bundles(); len(got) != 0 {
		t.Fatalf("bundles written without a dump dir: %v", got)
	}
	if rec.Health().Healthy() {
		t.Fatal("stalled run reads healthy")
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatal("stray files")
	}
}

func runStalledNoDir(t testing.TB) (*Recorder, *sim.Metrics) {
	t.Helper()
	return runStalled(t, 0, "")
}

func TestStatusAndHTTPSurfaces(t *testing.T) {
	dir := t.TempDir()
	rec, met := runStalled(t, 2, dir)
	st := rec.Status()
	if st.Round != met.Stall.Round || !st.Stalled || st.Healthy || st.Violations == 0 {
		t.Fatalf("status %+v", st)
	}
	if st.RingLen == 0 || st.RingCap != 64 || len(st.Bundles) != 1 || len(st.Rules) != 1 {
		t.Fatalf("status %+v", st)
	}

	mux := http.NewServeMux()
	rec.RegisterHTTP(mux)

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "rule stall") {
		t.Fatalf("healthz on an unhealthy run: %d %q", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/statusz", nil))
	body := rr.Body.String()
	for _, want := range []string{"round ", "flight recorder: ", "VIOLATED", "bundle: "} {
		if !strings.Contains(body, want) {
			t.Fatalf("statusz missing %q:\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/statusz?format=json", nil))
	if !strings.Contains(rr.Body.String(), `"ring_cap": 64`) {
		t.Fatalf("statusz json: %s", rr.Body.String())
	}

	// A healthy run's probe must answer 200.
	rec2 := New(Config{Obs: obs.Config{N: 8, K: 2}, Rules: mustRules(t, "stall>=50")})
	mux2 := http.NewServeMux()
	rec2.RegisterHTTP(mux2)
	rr = httptest.NewRecorder()
	mux2.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz on a fresh run: %d", rr.Code)
	}
}

// TestInProcessCancelLeavesValidStreams is the CLIs' SIGINT path in
// miniature: a cooperative Options.Stop ends the run mid-flight and the
// normal close path still flushes complete, parseable streams and a
// coherent recorder state.
func TestInProcessCancelLeavesValidStreams(t *testing.T) {
	const n, k, T, rounds = 24, 4, 8, 200
	tr := testTrace(t, n, rounds, T)
	assign := token.Spread(n, k, xrand.New(9))
	var sink bytes.Buffer
	rec := New(Config{Obs: obs.Config{N: n, K: k, PhaseLen: T, Sink: &sink}, Depth: 32})
	stopAt := 10
	met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: rounds,
		Observer:  rec.Observer(),
		Stop:      func(r int) bool { return r >= stopAt },
	})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if met.Rounds != stopAt+1 {
		t.Fatalf("stop hook ended the run after %d rounds, want %d", met.Rounds, stopAt+1)
	}
	events, err := obs.ParseEvents(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatalf("interrupted stream does not parse: %v", err)
	}
	if len(events) != met.Rounds {
		t.Fatalf("stream has %d events for %d executed rounds", len(events), met.Rounds)
	}
	if got := rec.Events(); len(got) != met.Rounds || got[len(got)-1].Round != stopAt {
		t.Fatalf("ring disagrees with the interrupted run: %d events", len(got))
	}
}
