package recorder

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// RegisterHTTP installs the live inspection surfaces on mux
// (http.DefaultServeMux when nil, which is what the CLIs' -pprof listener
// serves):
//
//   - /statusz — human-readable run status: round, phase, progress,
//     outstanding tokens, ring occupancy, rule states, bundles written.
//     ?format=json returns the Status struct.
//   - /healthz — 200 "ok" while every SLO rule holds, 503 naming the
//     violated rules otherwise. Suitable as a liveness/quality probe for
//     long unattended runs.
func (rec *Recorder) RegisterHTTP(mux *http.ServeMux) {
	if mux == nil {
		mux = http.DefaultServeMux
	}
	mux.HandleFunc("/statusz", rec.handleStatusz)
	mux.HandleFunc("/healthz", rec.handleHealthz)
}

func (rec *Recorder) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := rec.Status()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if st.Round < 0 {
		fmt.Fprintln(w, "run: no rounds recorded yet")
		return
	}
	fmt.Fprintf(w, "round %d (phase %d)\n", st.Round, st.Phase)
	if st.Total > 0 {
		fmt.Fprintf(w, "progress: %d/%d pairs (%.1f%%)\n",
			st.Delivered, st.Total, 100*float64(st.Delivered)/float64(st.Total))
	}
	fmt.Fprintf(w, "outstanding tokens: %d\n", st.Outstanding)
	fmt.Fprintf(w, "stall streak: %d", st.Stall)
	if st.Stalled {
		fmt.Fprint(w, " (watchdog fired)")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "flight recorder: %d/%d rounds\n", st.RingLen, st.RingCap)
	if st.Healthy {
		fmt.Fprintln(w, "health: ok")
	} else {
		fmt.Fprintf(w, "health: %d violations\n", st.Violations)
	}
	for _, s := range st.Rules {
		verdict := "ok"
		if s.Violations > 0 {
			verdict = fmt.Sprintf("VIOLATED ×%d (first at round %d)", s.Violations, s.FirstRound)
		}
		fmt.Fprintf(w, "  rule %-12s %s  last: %.2f vs %.2f @ round %d\n",
			s.Rule.Kind, verdict, s.LastValue, s.LastLimit, s.LastRound)
	}
	for _, b := range st.Bundles {
		fmt.Fprintf(w, "bundle: %s\n", b)
	}
}

func (rec *Recorder) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	st := rec.Status()
	if st.Healthy {
		fmt.Fprintln(w, "ok")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, "unhealthy: %d violations\n", st.Violations)
	for _, s := range st.Rules {
		if s.Violations > 0 {
			fmt.Fprintf(w, "rule %s: ×%d, first at round %d, last %.2f vs %.2f\n",
				s.Rule.Kind, s.Violations, s.FirstRound, s.LastValue, s.LastLimit)
		}
	}
}
