// Package recorder is the engine's flight recorder: a bounded ring of the
// last N rounds of full-fidelity observability — round events, barrier
// Metrics snapshots, stage timings when timing is attached — kept in
// memory regardless of whether any sink is wired, so a multi-hour run that
// goes wrong at round 40k can dump exactly the window that matters instead
// of either nothing (sinks off) or gigabytes (sinks on).
//
// The recorder wraps an obs.Collector (it owns one, built from Config.Obs)
// and feeds on its OnEvent hook, so it sees the same normalised, shard-
// merged events as the JSONL stream and inherits the engine's
// serial-vs-parallel determinism: ring contents, and therefore dump
// bundles, are byte-identical across Options.Workers (timing sections
// excepted — wall clocks are not deterministic).
//
// Anomalies — the stall watchdog, convergence-watchdog divergence, online
// health-rule breaches (internal/obs/health), and externally signalled
// triggers such as the provenance pace checker — each queue a postmortem
// dump: ring contents + latest Metrics + active fault plan + config
// fingerprint + health verdicts, written once per distinct reason to
// Config.DumpDir as `<prefix>-r<round>-<reason>.dump`. `hinettrace
// postmortem` renders a diagnosis from the bundle.
package recorder

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/sim"
)

// DefaultDepth is the ring capacity (rounds) when Config.Depth is zero.
const DefaultDepth = 512

// Config parameterises a Recorder.
type Config struct {
	// Obs configures the inner obs.Collector (sink, registry, Keep, ...).
	// Its OnEvent hook is chained: the recorder records first, then calls
	// the configured hook.
	Obs obs.Config
	// Depth is the ring capacity in rounds (DefaultDepth when 0).
	Depth int
	// Rules is the online health-rule set (internal/obs/health); empty
	// means no health engine. Alpha is the Theorem-1 progress coefficient
	// for the pace rule.
	Rules []health.Rule
	Alpha int
	// OnViolation, if set, is chained after the recorder's own
	// dump-trigger handling of each health breach.
	OnViolation func(health.Violation)
	// DumpDir is where anomaly bundles are written; empty disables
	// dumping (triggers still mark the run unhealthy).
	DumpDir string
	// Prefix names bundle files, `<prefix>-r<round>-<reason>.dump`
	// ("run" when empty).
	Prefix string
	// Fingerprint identifies the run configuration in bundles (flag
	// values, scenario name, seed, worker count...). Keys are emitted
	// sorted, so equal fingerprints encode to equal bytes.
	Fingerprint map[string]string
	// FaultPlan, if non-nil, is embedded in bundles so a postmortem shows
	// what adversity was configured.
	FaultPlan *faults.Plan
}

// timingRow is one ring slot's stage-timing record.
type timingRow struct {
	round int
	wall  [sim.NumStages]int64
	shard [][sim.NumStages]int64
}

// Recorder is the flight recorder for one run. It is driven from the
// engine goroutine via Observer() and (optionally) TimingSink(); Status,
// Bundles, Events and the HTTP handlers may be called concurrently.
type Recorder struct {
	cfg    Config
	col    *obs.Collector
	hea    *health.Engine
	chain  func(*obs.RoundEvent)
	closed bool

	mu     sync.Mutex
	ring   []obs.RoundEvent
	timing []timingRow
	timed  bool // a TimingSink tee was attached
	head   int  // next ring slot to overwrite
	n      int  // filled slots
	met    sim.Metrics
	last   obs.RoundEvent // shallow copy of the newest event (status surface)
	have   bool

	pending []dumpReq
	dumped  map[string]bool
	bundles []string
	dumpErr error
}

type dumpReq struct {
	reason string
	round  int
}

// New builds a recorder (and its inner collector and health engine) for
// one run.
func New(cfg Config) *Recorder {
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultDepth
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "run"
	}
	rec := &Recorder{
		cfg:    cfg,
		ring:   make([]obs.RoundEvent, cfg.Depth),
		timing: make([]timingRow, cfg.Depth),
		dumped: map[string]bool{},
		chain:  cfg.Obs.OnEvent,
	}
	rec.hea = health.New(health.Config{
		Rules:    cfg.Rules,
		N:        cfg.Obs.N,
		K:        cfg.Obs.K,
		PhaseLen: cfg.Obs.PhaseLen,
		Alpha:    cfg.Alpha,
		Arrivals: cfg.Obs.Arrivals,
		Registry: cfg.Obs.Registry,
		OnViolation: func(v health.Violation) {
			rec.Trigger(v.Rule, v.Round)
			if cfg.OnViolation != nil {
				cfg.OnViolation(v)
			}
		},
	})
	inner := cfg.Obs
	inner.OnEvent = rec.record
	rec.col = obs.NewCollector(inner)
	return rec
}

// Collector returns the inner collector (for Events, LatencyQuantile...).
func (rec *Recorder) Collector() *obs.Collector { return rec.col }

// Health returns the online health engine, nil when no rules were
// configured.
func (rec *Recorder) Health() *health.Engine { return rec.hea }

// Observer returns the sim.Observer feeding this recorder: the inner
// collector's observer plus the recorder's barrier, latency and
// divergence hooks.
func (rec *Recorder) Observer() *sim.Observer {
	extra := &sim.Observer{
		Barrier: rec.barrier,
		Diverged: func(r int, rep *sim.ConvergenceReport) {
			rec.Trigger("divergence", r)
		},
		// The watchdog fires after the barrier, so the report would miss
		// the last Metrics snapshot without this hook.
		Stalled: func(r int, rep *sim.StallReport) {
			rec.mu.Lock()
			rec.met.Stall = rep
			rec.mu.Unlock()
		},
	}
	if rec.hea != nil {
		extra.Collected = func(r, tok int, seq int64, born int) {
			rec.hea.ObserveLatency(r - born)
		}
	}
	return obs.Combine(rec.col.Observer(), extra)
}

// TimingSink returns a sim.TimingSink that records per-round stage wall
// times (and per-shard splits) into the ring and feeds the health
// engine's stage-regression rule, then forwards to inner (which may be
// nil — the recorder alone is a valid sink).
func (rec *Recorder) TimingSink(inner sim.TimingSink) sim.TimingSink {
	rec.timed = true
	return &timingTee{rec: rec, inner: inner}
}

type timingTee struct {
	rec   *Recorder
	inner sim.TimingSink
}

func (t *timingTee) RunStart(nshards int) {
	if t.inner != nil {
		t.inner.RunStart(nshards)
	}
}

func (t *timingTee) RoundEnd(r int, wall *[sim.NumStages]int64, shard [][sim.NumStages]int64) {
	rec := t.rec
	rec.mu.Lock()
	// Timing rows land in the same slot layout as events; RoundEnd(r)
	// precedes the event finalize for r, so the slot is the one record()
	// will fill next for this round.
	row := &rec.timing[rec.slotFor(r)]
	row.round = r
	row.wall = *wall
	row.shard = row.shard[:0]
	for _, s := range shard {
		row.shard = append(row.shard, s)
	}
	rec.mu.Unlock()
	rec.hea.RoundTiming(r, wall)
	if t.inner != nil {
		t.inner.RoundEnd(r, wall, shard)
	}
}

func (t *timingTee) SampleArena(r int) bool {
	if t.inner != nil {
		return t.inner.SampleArena(r)
	}
	return false
}

func (t *timingTee) Arena(r int, msgs, sets int, setBytes int64) {
	if t.inner != nil {
		t.inner.Arena(r, msgs, sets, setBytes)
	}
}

// slotFor maps round r to its ring slot under the invariant that events
// are recorded in round order: r lands at head + (r − nextRound) — but
// since record() advances head once per round, the slot for the round
// currently being accumulated is simply head. Callers hold rec.mu.
func (rec *Recorder) slotFor(r int) int { return rec.head }

// barrier snapshots the engine's Metrics each round and feeds the
// conservation rule.
func (rec *Recorder) barrier(r int, met *sim.Metrics) {
	rec.mu.Lock()
	rec.met = *met
	rec.mu.Unlock()
	rec.hea.ObserveMetrics(r, met)
}

// record is the inner collector's OnEvent hook: deep-copy the finalized
// event into the ring, judge health, trigger/flush dumps, forward.
func (rec *Recorder) record(ev *obs.RoundEvent) {
	rec.mu.Lock()
	slot := &rec.ring[rec.head]
	crashed := append(slot.Crashed[:0], ev.Crashed...)
	recovered := append(slot.Recovered[:0], ev.Recovered...)
	*slot = *ev
	slot.Crashed = crashed
	slot.Recovered = recovered
	rec.head = (rec.head + 1) % len(rec.ring)
	if rec.n < len(rec.ring) {
		rec.n++
	}
	rec.last = *ev
	rec.have = true
	rec.mu.Unlock()

	rec.hea.Observe(ev)
	if ev.Stalled {
		rec.Trigger("stall", ev.Round)
	}
	rec.flushPending()
	if rec.chain != nil {
		rec.chain(ev)
	}
}

// Trigger queues a postmortem dump for reason (e.g. "pace" from the
// provenance checker's OnPace callback). Each distinct reason dumps at
// most once per run; the bundle is written when the data for the
// triggering round is complete (the next recorded event, or Close).
// Safe from the engine goroutine; round is the round the anomaly was
// observed at.
func (rec *Recorder) Trigger(reason string, round int) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.dumped[reason] {
		return
	}
	rec.dumped[reason] = true
	rec.pending = append(rec.pending, dumpReq{reason: reason, round: round})
}

// flushPending writes queued bundles. Called with data complete for every
// queued round (after record, or at Close).
func (rec *Recorder) flushPending() {
	rec.mu.Lock()
	pending := rec.pending
	rec.pending = nil
	rec.mu.Unlock()
	for _, req := range pending {
		if rec.cfg.DumpDir == "" {
			continue
		}
		path, err := rec.writeBundle(req)
		rec.mu.Lock()
		if err != nil {
			if rec.dumpErr == nil {
				rec.dumpErr = err
			}
		} else {
			rec.bundles = append(rec.bundles, path)
		}
		rec.mu.Unlock()
	}
}

// events returns the ring contents oldest→newest. Callers hold rec.mu.
func (rec *Recorder) eventsLocked() []*obs.RoundEvent {
	out := make([]*obs.RoundEvent, 0, rec.n)
	start := rec.head - rec.n
	if start < 0 {
		start += len(rec.ring)
	}
	for i := 0; i < rec.n; i++ {
		out = append(out, &rec.ring[(start+i)%len(rec.ring)])
	}
	return out
}

// Events snapshots the ring contents, oldest first. The returned events
// are deep copies and safe to retain.
func (rec *Recorder) Events() []obs.RoundEvent {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	evs := rec.eventsLocked()
	out := make([]obs.RoundEvent, len(evs))
	for i, e := range evs {
		out[i] = *e
		out[i].Crashed = append([]int(nil), e.Crashed...)
		out[i].Recovered = append([]int(nil), e.Recovered...)
	}
	return out
}

// Close flushes the inner collector (finalising the last round, which
// also lands it in the ring and fires any stall-triggered dump), writes
// any still-pending bundles, and returns the first error among sink
// writes and bundle writes.
func (rec *Recorder) Close() error {
	if rec.closed {
		return rec.Err()
	}
	rec.closed = true
	ferr := rec.col.Flush()
	rec.flushPending()
	if ferr != nil {
		return ferr
	}
	return rec.Err()
}

// Err returns the first dump-write error, if any (sink errors surface
// through Close / the inner collector's Err).
func (rec *Recorder) Err() error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.dumpErr
}

// Bundles lists the postmortem bundle paths written so far.
func (rec *Recorder) Bundles() []string {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]string(nil), rec.bundles...)
}

// Status is a point-in-time summary of the run for the /statusz and
// /healthz surfaces.
type Status struct {
	// Round / Phase are the newest fully recorded round.
	Round int `json:"round"`
	Phase int `json:"phase"`
	// Delivered / Total / Outstanding / Stall mirror that round's event.
	Delivered   int  `json:"delivered"`
	Total       int  `json:"total"`
	Outstanding int  `json:"outstanding"`
	Stall       int  `json:"stall"`
	Stalled     bool `json:"stalled"`
	// RingLen / RingCap are the flight-recorder occupancy.
	RingLen int `json:"ring_len"`
	RingCap int `json:"ring_cap"`
	// Healthy / Violations summarise the health engine; Rules carries
	// each rule's running verdict.
	Healthy    bool           `json:"healthy"`
	Violations int            `json:"violations"`
	Rules      []health.State `json:"rules,omitempty"`
	// Bundles lists postmortem dumps written so far.
	Bundles []string `json:"bundles,omitempty"`
}

// Status snapshots the run state. Safe to call concurrently with the run.
func (rec *Recorder) Status() Status {
	rec.mu.Lock()
	st := Status{
		Round:       rec.last.Round,
		Phase:       rec.last.Phase,
		Delivered:   rec.last.Delivered,
		Total:       rec.last.Total,
		Outstanding: rec.last.Outstanding,
		Stall:       rec.last.Stall,
		Stalled:     rec.last.Stalled,
		RingLen:     rec.n,
		RingCap:     len(rec.ring),
		Bundles:     append([]string(nil), rec.bundles...),
	}
	if !rec.have {
		st.Round = -1
	}
	rec.mu.Unlock()
	st.Healthy = rec.hea.Healthy()
	st.Violations = rec.hea.Violations()
	st.Rules = rec.hea.States()
	return st
}

// fingerprintKeys returns the fingerprint's keys, sorted, so bundle bytes
// are stable.
func (rec *Recorder) fingerprintKeys() []string {
	keys := make([]string, 0, len(rec.cfg.Fingerprint))
	for k := range rec.cfg.Fingerprint {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bundleName renders the deterministic bundle filename for req.
func (rec *Recorder) bundleName(req dumpReq) string {
	return fmt.Sprintf("%s-r%d-%s.dump", rec.cfg.Prefix, req.round, req.reason)
}
