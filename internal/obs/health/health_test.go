package health

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(" pace, p99<=40,queue<=500 ,beacons<=1200,stage>2.0,conservation,stall>=50")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{KindPace, 0}, {KindLatencyP99, 40}, {KindQueue, 500},
		{KindBeacons, 1200}, {KindStage, 2}, {KindConservation, 0}, {KindStall, 50},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	if r, err := ParseRules(""); err != nil || r != nil {
		t.Fatalf("empty spec: %v %v", r, err)
	}
	for _, bad := range []string{
		"p99<=40x", "latency<=40", "stage>0.5", "stall>=0", "p99>=40",
		"pace,pace", "queue<=-1", "stall", "stage>NaN",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestNilEngineIsSafe(t *testing.T) {
	e := New(Config{})
	if e != nil {
		t.Fatal("no rules should yield a nil engine")
	}
	e.Observe(&obs.RoundEvent{})
	e.ObserveMetrics(0, &sim.Metrics{})
	e.ObserveLatency(3)
	e.RoundTiming(0, &[sim.NumStages]int64{})
	if !e.Healthy() || e.Violations() != 0 || e.States() != nil || e.Rules() != nil {
		t.Fatal("nil engine must read as healthy and empty")
	}
	if _, ok := e.FirstViolated(); ok {
		t.Fatal("nil engine reported a violation")
	}
}

func TestStallRule(t *testing.T) {
	var got []Violation
	e := New(Config{
		Rules: mustRules(t, "stall>=3"),
		N:     10, K: 4, PhaseLen: 5,
		OnViolation: func(v Violation) { got = append(got, v) },
	})
	for r, stall := range []int{0, 1, 2, 0, 1} {
		e.Observe(&obs.RoundEvent{Round: r, Stall: stall})
	}
	if len(got) != 0 {
		t.Fatalf("streaks below threshold violated: %+v", got)
	}
	e.Observe(&obs.RoundEvent{Round: 5, Stall: 3})
	e.Observe(&obs.RoundEvent{Round: 6, Stall: 4})
	if len(got) != 2 {
		t.Fatalf("%d violations, want 2 (one per round at/over threshold)", len(got))
	}
	if got[0].Rule != "stall" || got[0].Round != 5 || got[0].Value != 3 {
		t.Fatalf("first violation %+v", got[0])
	}
	s, ok := e.FirstViolated()
	if !ok || s.Rule.Kind != KindStall || s.FirstRound != 5 {
		t.Fatalf("FirstViolated = %+v, %v", s, ok)
	}
	// The watchdog event itself violates even under the threshold.
	e2 := New(Config{Rules: mustRules(t, "stall>=50")})
	e2.Observe(&obs.RoundEvent{Round: 9, Stall: 12, Stalled: true})
	if e2.Healthy() {
		t.Fatal("watchdog-terminated round did not violate the stall rule")
	}
}

func TestPaceRule(t *testing.T) {
	e := New(Config{Rules: mustRules(t, "pace"), N: 10, K: 6, PhaseLen: 5, Alpha: 2})
	// Phase 1 boundary (round 4) is grace: even zero progress is on pace.
	e.Observe(&obs.RoundEvent{Round: 4, Phase: 0, Delivered: 0, Total: 60})
	if !e.Healthy() {
		t.Fatal("grace phase violated")
	}
	// Phase 2 boundary: floor is min(6, 2·1) = 2 tokens/node = 20 pairs.
	e.Observe(&obs.RoundEvent{Round: 9, Phase: 1, Delivered: 19, Total: 60})
	if e.Healthy() {
		t.Fatal("19/10 = 1.9 tokens/node passed a floor of 2")
	}
	st := e.States()[0]
	if st.FirstRound != 9 || st.LastLimit != 2 {
		t.Fatalf("pace state %+v", st)
	}
	// Off-boundary rounds are never judged.
	e2 := New(Config{Rules: mustRules(t, "pace"), N: 10, K: 6, PhaseLen: 5, Alpha: 2})
	e2.Observe(&obs.RoundEvent{Round: 8, Delivered: 0, Total: 60})
	if !e2.Healthy() {
		t.Fatal("pace judged off a phase boundary")
	}
	// On-pace run stays healthy.
	e3 := New(Config{Rules: mustRules(t, "pace"), N: 10, K: 6, PhaseLen: 5, Alpha: 2})
	e3.Observe(&obs.RoundEvent{Round: 9, Delivered: 20, Total: 60})
	if !e3.Healthy() {
		t.Fatal("exactly-on-floor run violated")
	}
}

func TestQueueAndBeaconRules(t *testing.T) {
	e := New(Config{Rules: mustRules(t, "queue<=10,beacons<=2"), N: 8, K: 4, PhaseLen: 4, Arrivals: true})
	for r := 0; r < 3; r++ {
		e.Observe(&obs.RoundEvent{Round: r, Outstanding: 99, Beacons: 3})
	}
	if !e.Healthy() {
		t.Fatal("phase-scoped rules judged before the boundary")
	}
	e.Observe(&obs.RoundEvent{Round: 3, Outstanding: 25, Beacons: 3})
	if e.Violations() != 2 {
		t.Fatalf("%d violations at the boundary, want queue+beacons = 2", e.Violations())
	}
	states := e.States()
	if states[0].LastValue != 25 || states[1].LastValue != 3 {
		t.Fatalf("states %+v", states)
	}
	// Queue never binds outside arrival mode.
	e2 := New(Config{Rules: mustRules(t, "queue<=10"), N: 8, K: 4, PhaseLen: 4})
	e2.Observe(&obs.RoundEvent{Round: 3, Outstanding: 25})
	if !e2.Healthy() {
		t.Fatal("queue rule fired with arrivals off")
	}
}

func TestLatencyP99Rule(t *testing.T) {
	e := New(Config{Rules: mustRules(t, "p99<=8"), N: 8, K: 4, PhaseLen: 4, Arrivals: true})
	for i := 0; i < 100; i++ {
		e.ObserveLatency(4)
	}
	e.Observe(&obs.RoundEvent{Round: 3})
	if !e.Healthy() {
		t.Fatal("p99≈4 violated a budget of 8")
	}
	for i := 0; i < 100; i++ {
		e.ObserveLatency(64)
	}
	e.Observe(&obs.RoundEvent{Round: 7})
	if e.Healthy() {
		t.Fatal("p99≈64 passed a budget of 8")
	}
	if v := e.States()[0].LastValue; v <= 8 {
		t.Fatalf("recorded p99 %.1f not over budget", v)
	}
}

func TestConservationRule(t *testing.T) {
	e := New(Config{Rules: mustRules(t, "conservation"), N: 8, K: 3, PhaseLen: 4, Arrivals: true})
	e.ObserveMetrics(5, &sim.Metrics{TokensInjected: 4, TokensCollected: 2, OutstandingTokens: 5})
	if !e.Healthy() {
		t.Fatal("balanced ledger violated: 3+4−2 = 5")
	}
	e.ObserveMetrics(6, &sim.Metrics{TokensInjected: 4, TokensCollected: 2, OutstandingTokens: 6})
	if e.Healthy() {
		t.Fatal("unbalanced ledger passed")
	}
	v, _ := e.FirstViolated()
	if v.FirstRound != 6 {
		t.Fatalf("conservation broke at round %d, want 6", v.FirstRound)
	}
	// Vacuous outside arrival mode (all counters stay zero there).
	e2 := New(Config{Rules: mustRules(t, "conservation"), N: 8, K: 3, PhaseLen: 4})
	e2.ObserveMetrics(1, &sim.Metrics{})
	if !e2.Healthy() {
		t.Fatal("conservation judged with arrivals off")
	}
}

func TestStageRegressionRule(t *testing.T) {
	e := New(Config{Rules: mustRules(t, "stage>2.0"), N: 8, K: 4, PhaseLen: 4, StageWarmup: 4})
	var wall [sim.NumStages]int64
	for s := range wall {
		wall[s] = 1_000_000 // 1ms per stage
	}
	for r := 0; r < 6; r++ {
		e.RoundTiming(r, &wall)
	}
	if !e.Healthy() {
		t.Fatal("steady timings violated the regression rule")
	}
	spike := wall
	spike[sim.StageDeliver] = 10_000_000
	e.RoundTiming(6, &spike)
	if e.Healthy() {
		t.Fatal("10× stage spike passed a 2× budget")
	}
	st := e.States()[0]
	if st.LastValue < 2 || !strings.Contains(stageDetail(t, e), "deliver") {
		t.Fatalf("stage state %+v", st)
	}
	// Sub-floor stages never violate, however large the ratio.
	e2 := New(Config{Rules: mustRules(t, "stage>2.0"), N: 8, K: 4, PhaseLen: 4, StageWarmup: 2})
	tiny := [sim.NumStages]int64{}
	for s := range tiny {
		tiny[s] = 10 // 10ns
	}
	for r := 0; r < 4; r++ {
		e2.RoundTiming(r, &tiny)
	}
	tiny[0] = 100_000 // 10000× but under the 200µs floor
	e2.RoundTiming(4, &tiny)
	if !e2.Healthy() {
		t.Fatal("noise under StageMinNanos violated")
	}
}

// stageDetail replays the last violation's detail via the callback.
func stageDetail(t *testing.T, e *Engine) string {
	t.Helper()
	var detail string
	e.cfg.OnViolation = func(v Violation) { detail = v.Detail }
	spike := [sim.NumStages]int64{}
	for s := range spike {
		spike[s] = 1_000_000
	}
	spike[sim.StageDeliver] = 10_000_000
	e.RoundTiming(100, &spike)
	return detail
}

func TestRegistrySeries(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Rules: mustRules(t, "stall>=2,queue<=5"), N: 4, K: 2, PhaseLen: 2, Arrivals: true, Registry: reg})
	gauge := reg.Gauge("sim_health_state", "")
	if gauge.Value() != 1 {
		t.Fatal("sim_health_state must start at 1")
	}
	e.Observe(&obs.RoundEvent{Round: 0, Stall: 0, Outstanding: 2})
	if gauge.Value() != 1 {
		t.Fatal("healthy round flipped the gauge")
	}
	e.Observe(&obs.RoundEvent{Round: 1, Stall: 2, Outstanding: 9})
	if gauge.Value() != 0 {
		t.Fatal("violations left sim_health_state at 1")
	}
	if v := reg.Counter(`sim_slo_violations_total{rule="stall"}`, "").Value(); v != 1 {
		t.Fatalf(`stall violation counter = %d, want 1`, v)
	}
	if v := reg.Counter(`sim_slo_violations_total{rule="queue"}`, "").Value(); v != 1 {
		t.Fatalf(`queue violation counter = %d, want 1`, v)
	}
}

func mustRules(t *testing.T, spec string) []Rule {
	t.Helper()
	rules, err := ParseRules(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}
