// Package health is the online SLO engine: declarative rules judged
// against the live round-event stream while a run executes, instead of a
// post-hoc sweep over a recorded trace. It exists for the regimes where
// recording everything is impossible — a 10k-node steady-state run is
// healthy or not *now*, against the Theorem-1 pace and the operator's
// latency/queue budgets, and the verdict has to come out of bounded
// per-round state.
//
// The engine consumes three feeds, all on the engine goroutine:
//
//   - Observe: one finalized obs.RoundEvent per round (the Collector's
//     OnEvent hook, or the flight recorder's tee of it);
//   - ObserveMetrics: the engine's own Metrics at the round barrier
//     (sim.Observer.Barrier) — the token-conservation invariant must be
//     checked against engine truth, not against counters the event stream
//     itself derives from;
//   - RoundTiming: per-stage wall times (a sim.TimingSink tee) for the
//     regression-vs-rolling-baseline rule.
//
// Phase-scoped rules (pace, p99, queue, beacons) are evaluated at phase
// boundaries; stall, conservation and stage regression fire the round they
// are observed. Verdicts surface three ways: an OnViolation callback (the
// flight recorder's dump trigger), the sim_health_state gauge plus
// sim_slo_violations_total{rule} counters on the run's Registry, and
// States() snapshots for the /statusz and /healthz surfaces.
package health

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind enumerates the rule types the engine knows how to judge.
type Kind int

const (
	// KindPace is the Theorem-1 schedule floor: after p complete phases
	// the run must average at least min(k, α·(p−1)) delivered tokens per
	// node (the aggregate form of the per-head pace the provenance
	// checker enforces; phase 1 is grace, mirroring Budget.RequiredHeadMin).
	KindPace Kind = iota
	// KindLatencyP99 bounds the p99 of token arrival→collection latency
	// in rounds (arrival-mode runs; fed via ObserveLatency).
	KindLatencyP99
	// KindQueue bounds the outstanding-token queue depth at phase
	// boundaries (arrival-mode runs).
	KindQueue
	// KindBeacons bounds the self-stabilization maintenance budget: mean
	// beacons per round over each phase.
	KindBeacons
	// KindStage flags a per-stage wall-time regression: any stage whose
	// round time exceeds Threshold × its rolling baseline (after a
	// warmup) violates.
	KindStage
	// KindConservation checks the token-conservation invariant each
	// barrier: OutstandingTokens == K + TokensInjected − TokensCollected
	// (arrival-mode runs; vacuous otherwise).
	KindConservation
	// KindStall bounds the engine's no-progress streak; the stall
	// watchdog's own firing (RoundEvent.Stalled) violates regardless of
	// threshold.
	KindStall

	numKinds
)

var kindNames = [numKinds]string{
	"pace", "p99", "queue", "beacons", "stage", "conservation", "stall",
}

// String returns the rule-spec name ("pace", "p99", ...), which is also
// the {rule=...} label on sim_slo_violations_total.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// MarshalJSON encodes the kind by its spec name, so bundles and /statusz
// stay readable and stable across enum reordering.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a spec name back into a Kind.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("health: unknown rule kind %q", s)
}

// Rule is one declarative SLO clause.
type Rule struct {
	Kind Kind `json:"kind"`
	// Threshold is the clause's bound; meaning depends on Kind (rounds
	// for p99 and stall, tokens for queue, beacons/round for beacons, a
	// slowdown factor for stage). Unused by pace and conservation.
	Threshold float64 `json:"threshold"`
}

// ParseRules parses a comma-separated rule spec, e.g.
//
//	pace,p99<=40,queue<=500,beacons<=1200,stage>2.0,conservation,stall>=50
//
// Clause grammar: bare "pace" and "conservation"; "p99<=F", "queue<=N",
// "beacons<=F" (upper bounds); "stage>F" (slowdown factor, > 1);
// "stall>=N" (streak length, ≥ 1). Whitespace around clauses is ignored;
// an empty spec yields no rules.
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	seen := [numKinds]bool{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		if seen[r.Kind] {
			return nil, fmt.Errorf("health: duplicate %q rule in %q", r.Kind, spec)
		}
		seen[r.Kind] = true
		rules = append(rules, r)
	}
	return rules, nil
}

func parseClause(clause string) (Rule, error) {
	switch clause {
	case "pace":
		return Rule{Kind: KindPace}, nil
	case "conservation":
		return Rule{Kind: KindConservation}, nil
	}
	for _, c := range [...]struct {
		prefix string
		op     string
		kind   Kind
		min    float64
	}{
		{"p99", "<=", KindLatencyP99, 0},
		{"queue", "<=", KindQueue, 0},
		{"beacons", "<=", KindBeacons, 0},
		{"stage", ">", KindStage, 1},
		{"stall", ">=", KindStall, 1},
	} {
		rest, ok := strings.CutPrefix(clause, c.prefix)
		if !ok {
			continue
		}
		val, ok := strings.CutPrefix(rest, c.op)
		if !ok {
			return Rule{}, fmt.Errorf("health: clause %q: want %s%s<value>", clause, c.prefix, c.op)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || math.IsNaN(f) || f < c.min {
			return Rule{}, fmt.Errorf("health: clause %q: bad threshold %q", clause, val)
		}
		return Rule{Kind: c.kind, Threshold: f}, nil
	}
	return Rule{}, fmt.Errorf("health: unknown rule clause %q", clause)
}

// Violation is one rule breach, delivered to OnViolation as it is judged.
type Violation struct {
	// Rule is the violated rule's spec name ("pace", "p99", ...).
	Rule string
	// Round / Phase locate the judgement (the round whose event or
	// barrier triggered it).
	Round int
	Phase int
	// Value is the observed quantity, Limit the bound it broke.
	Value float64
	Limit float64
	// Detail is a one-line human rendering, e.g. for postmortem output.
	Detail string
}

// State is one rule's running verdict, snapshotted by States().
type State struct {
	Rule Rule `json:"rule"`
	// Violations counts breaches so far; FirstRound is the round of the
	// first one (−1 while clean).
	Violations int `json:"violations"`
	FirstRound int `json:"first_round"`
	// LastValue / LastLimit are the most recent judgement's observed
	// value and bound (whether or not it violated); LastRound is when.
	LastValue float64 `json:"last_value"`
	LastLimit float64 `json:"last_limit"`
	LastRound int     `json:"last_round"`
}

// Healthy reports whether the rule has never been breached.
func (s *State) Healthy() bool { return s.Violations == 0 }

// Config parameterises an Engine.
type Config struct {
	// Rules is the SLO set to enforce (typically from ParseRules).
	Rules []Rule
	// N, K and PhaseLen mirror the run's obs.Config; Alpha is the
	// Theorem-1 progress coefficient for the pace rule (0 disables the
	// floor, matching provenance.Budget semantics).
	N, K, PhaseLen, Alpha int
	// Arrivals marks an arrival-mode run; the conservation and queue
	// rules only bind there.
	Arrivals bool
	// Registry, if non-nil, receives the sim_health_state gauge and
	// sim_slo_violations_total{rule} counters.
	Registry *obs.Registry
	// OnViolation, if set, is called once per breach, on the engine
	// goroutine, after the engine's own state and registry updates.
	OnViolation func(Violation)
	// StageWarmup is how many timed rounds seed the rolling baseline
	// before the stage rule starts judging (default 16).
	StageWarmup int
	// StageMinNanos is the per-round floor below which a stage is never
	// flagged, so microsecond jitter on trivial stages cannot violate
	// (default 200µs).
	StageMinNanos int64
}

// Engine evaluates a rule set online. All Observe* methods must be called
// from the engine goroutine (they are fed by sim.Observer / sim.TimingSink
// callbacks, which the engine serialises); States, Healthy and Violations
// may be called concurrently from other goroutines (the HTTP surfaces).
type Engine struct {
	cfg Config

	mu     sync.Mutex
	states []State
	total  int

	// latency is the engine's own arrival→collection histogram; the p99
	// rule cannot read the run Registry's histogram because the registry
	// is optional and shared across seeds in the experiment harness.
	latency *obs.Histogram

	// phaseBeacons / phaseRounds accumulate the current phase for the
	// beacon-budget rule.
	phaseBeacons int64
	phaseRounds  int

	// baseline is the per-stage rolling (exponentially weighted) mean
	// wall time; warm counts rounds folded in so judging waits for
	// StageWarmup.
	baseline [sim.NumStages]float64
	warm     int

	gauge      *obs.Gauge
	violations [numKinds]*obs.Counter
}

// New builds an engine for one run. A nil return means no rules were
// configured; all Engine methods are nil-safe no-ops, so callers can wire
// the hooks unconditionally.
func New(cfg Config) *Engine {
	if len(cfg.Rules) == 0 {
		return nil
	}
	if cfg.StageWarmup <= 0 {
		cfg.StageWarmup = 16
	}
	if cfg.StageMinNanos <= 0 {
		cfg.StageMinNanos = 200_000
	}
	e := &Engine{cfg: cfg, states: make([]State, len(cfg.Rules))}
	for i, r := range cfg.Rules {
		e.states[i] = State{Rule: r, FirstRound: -1, LastRound: -1}
		if r.Kind == KindLatencyP99 {
			e.latency = obs.NewHistogram(obs.LatencyBuckets)
		}
	}
	if reg := cfg.Registry; reg != nil {
		e.gauge = reg.Gauge("sim_health_state", "1 while every SLO rule holds, 0 after any breach")
		e.gauge.Set(1)
		for _, r := range cfg.Rules {
			e.violations[r.Kind] = reg.Counter(
				`sim_slo_violations_total{rule="`+r.Kind.String()+`"}`,
				"SLO rule breaches judged by the online health engine")
		}
	}
	return e
}

// Rules returns the configured rule set (nil-safe).
func (e *Engine) Rules() []Rule {
	if e == nil {
		return nil
	}
	return e.cfg.Rules
}

// judge records one evaluation of rule index i; violated breaches it.
func (e *Engine) judge(i, round, phase int, value, limit float64, violated bool, detail string) {
	e.mu.Lock()
	s := &e.states[i]
	s.LastValue, s.LastLimit, s.LastRound = value, limit, round
	var v Violation
	if violated {
		s.Violations++
		if s.FirstRound < 0 {
			s.FirstRound = round
		}
		e.total++
		v = Violation{
			Rule: s.Rule.Kind.String(), Round: round, Phase: phase,
			Value: value, Limit: limit, Detail: detail,
		}
	}
	e.mu.Unlock()
	if !violated {
		return
	}
	if c := e.violations[e.cfg.Rules[i].Kind]; c != nil {
		c.Add(1)
	}
	if e.gauge != nil {
		e.gauge.Set(0)
	}
	if e.cfg.OnViolation != nil {
		e.cfg.OnViolation(v)
	}
}

// Observe judges one finalized round event. Phase-scoped rules (pace,
// p99, queue, beacons) are evaluated only when ev.Round closes a phase;
// the stall rule is judged every round.
func (e *Engine) Observe(ev *obs.RoundEvent) {
	if e == nil {
		return
	}
	e.phaseBeacons += int64(ev.Beacons)
	e.phaseRounds++
	boundary := e.cfg.PhaseLen > 0 && (ev.Round+1)%e.cfg.PhaseLen == 0
	phases := 0
	if boundary {
		phases = (ev.Round + 1) / e.cfg.PhaseLen
	}
	for i, r := range e.cfg.Rules {
		switch r.Kind {
		case KindStall:
			limit := r.Threshold
			streak := float64(ev.Stall)
			if ev.Stalled || (limit > 0 && streak >= limit) {
				e.judge(i, ev.Round, ev.Phase, streak, limit, true,
					fmt.Sprintf("no delivery progress for %d rounds (watchdog=%v)", ev.Stall, ev.Stalled))
			} else {
				e.judge(i, ev.Round, ev.Phase, streak, limit, false, "")
			}
		case KindPace:
			if !boundary || e.cfg.Alpha <= 0 || phases <= 1 || e.cfg.N <= 0 || e.cfg.Arrivals {
				continue
			}
			req := e.cfg.Alpha * (phases - 1)
			if req > e.cfg.K {
				req = e.cfg.K
			}
			perNode := float64(ev.Delivered) / float64(e.cfg.N)
			e.judge(i, ev.Round, ev.Phase, perNode, float64(req), perNode < float64(req),
				fmt.Sprintf("%.2f tokens/node after %d phases, Theorem-1 floor min(k, α·(p−1)) = %d", perNode, phases, req))
		case KindLatencyP99:
			if !boundary || e.latency == nil || e.latency.Count() == 0 {
				continue
			}
			p99 := e.latency.Quantile(0.99)
			e.judge(i, ev.Round, ev.Phase, p99, r.Threshold, p99 > r.Threshold,
				fmt.Sprintf("delivery-latency p99 %.1f rounds over budget %.1f", p99, r.Threshold))
		case KindQueue:
			if !boundary || !e.cfg.Arrivals {
				continue
			}
			depth := float64(ev.Outstanding)
			e.judge(i, ev.Round, ev.Phase, depth, r.Threshold, depth > r.Threshold,
				fmt.Sprintf("%d outstanding tokens over queue budget %.0f", ev.Outstanding, r.Threshold))
		case KindBeacons:
			if !boundary || e.phaseRounds == 0 {
				continue
			}
			mean := float64(e.phaseBeacons) / float64(e.phaseRounds)
			e.judge(i, ev.Round, ev.Phase, mean, r.Threshold, mean > r.Threshold,
				fmt.Sprintf("%.1f maintenance beacons/round this phase over budget %.0f", mean, r.Threshold))
		}
	}
	if boundary {
		e.phaseBeacons, e.phaseRounds = 0, 0
	}
}

// ObserveLatency feeds one token's arrival→collection latency (rounds)
// into the p99 rule.
func (e *Engine) ObserveLatency(rounds int) {
	if e == nil || e.latency == nil {
		return
	}
	e.latency.Observe(float64(rounds))
}

// ObserveMetrics judges the token-conservation invariant against the
// engine's own Metrics at round r's barrier: every live token is exactly
// one of {initial batch, injected} minus {collected}. met aliases engine
// storage and is read, not retained.
func (e *Engine) ObserveMetrics(r int, met *sim.Metrics) {
	if e == nil || !e.cfg.Arrivals {
		return
	}
	for i, rule := range e.cfg.Rules {
		if rule.Kind != KindConservation {
			continue
		}
		want := int64(e.cfg.K) + met.TokensInjected - met.TokensCollected
		got := int64(met.OutstandingTokens)
		e.judge(i, r, e.phaseOf(r), float64(got), float64(want), got != want,
			fmt.Sprintf("outstanding=%d but K+injected−collected = %d+%d−%d = %d",
				got, e.cfg.K, met.TokensInjected, met.TokensCollected, want))
	}
}

// RoundTiming judges the per-stage regression rule against a rolling
// baseline and folds this round into it. wall aliases engine storage and
// is read, not retained. Feed it from a sim.TimingSink's RoundEnd.
func (e *Engine) RoundTiming(r int, wall *[sim.NumStages]int64) {
	if e == nil {
		return
	}
	idx := -1
	for i, rule := range e.cfg.Rules {
		if rule.Kind == KindStage {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	factor := e.cfg.Rules[idx].Threshold
	if e.warm >= e.cfg.StageWarmup {
		worst, worstStage := 0.0, -1
		for s := 0; s < int(sim.NumStages); s++ {
			base := e.baseline[s]
			w := float64(wall[s])
			if base <= 0 || wall[s] < e.cfg.StageMinNanos {
				continue
			}
			if ratio := w / base; ratio > worst {
				worst, worstStage = ratio, s
			}
		}
		if worstStage >= 0 {
			e.judge(idx, r, e.phaseOf(r), worst, factor, worst > factor,
				fmt.Sprintf("stage %q ran %.2f× its rolling baseline (budget %.2f×)",
					sim.Stage(worstStage), worst, factor))
		}
	}
	// Fold the round into the baseline after judging, so a spike is
	// compared against history that does not yet include it.
	const decay = 0.9
	for s := 0; s < int(sim.NumStages); s++ {
		if e.warm == 0 {
			e.baseline[s] = float64(wall[s])
		} else {
			e.baseline[s] = decay*e.baseline[s] + (1-decay)*float64(wall[s])
		}
	}
	e.warm++
}

func (e *Engine) phaseOf(r int) int {
	if e.cfg.PhaseLen <= 0 {
		return 0
	}
	return r / e.cfg.PhaseLen
}

// States snapshots every rule's running verdict, in Config.Rules order.
func (e *Engine) States() []State {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]State, len(e.states))
	copy(out, e.states)
	return out
}

// Healthy reports whether no rule has been breached (true for a nil
// engine: no rules, nothing to violate).
func (e *Engine) Healthy() bool {
	if e == nil {
		return true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total == 0
}

// Violations returns the total breach count across all rules.
func (e *Engine) Violations() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}

// FirstViolated returns the first-breached rule's state: the one with the
// smallest FirstRound (ties broken by rule order). ok is false while the
// run is clean.
func (e *Engine) FirstViolated() (State, bool) {
	if e == nil {
		return State{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	best, ok := State{}, false
	for _, s := range e.states {
		if s.Violations == 0 {
			continue
		}
		if !ok || s.FirstRound < best.FirstRound {
			best, ok = s, true
		}
	}
	return best, ok
}
