package obs

// Collector behaviour in arrival mode: per-round arrival/collection/
// outstanding series, the dynamic delivery ceiling, quiet-gap stall
// semantics, the latency histogram, JSONL round-tripping, and byte-identity
// of the event stream under the parallel engine.

import (
	"bytes"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
)

// runArrivalCollected floods a path network under a bursty arrival process
// with a fully wired collector.
func runArrivalCollected(t testing.TB, n, workers int, arr sim.Arrivals, reg *Registry) ([]byte, *Collector, *sim.Metrics) {
	t.Helper()
	d := sim.NewFlat(tvg.Static{G: graph.Path(n)})
	var sink bytes.Buffer
	col := NewCollector(Config{
		N: n, K: 1, Sink: &sink, Registry: reg, Keep: true, Arrivals: true,
	})
	met := sim.MustRunProtocol(d, baseline.Flood{}, token.SingleSource(n, 1, 0), sim.Options{
		MaxRounds:        300,
		StopWhenComplete: true,
		StallWindow:      50,
		Observer:         col.Observer(),
		Workers:          workers,
		Arrivals:         &arr,
	})
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes(), col, met
}

func TestCollectorArrivalMode(t *testing.T) {
	reg := NewRegistry()
	arr := sim.Arrivals{Rate: 2, Seed: 7, OnRounds: 3, OffRounds: 12, Stop: 60}
	raw, col, met := runArrivalCollected(t, 6, 1, arr, reg)
	if !met.Complete || met.TokensInjected == 0 {
		t.Fatalf("want a completed run with arrivals, got %v", met)
	}
	events := col.Events()
	if len(events) != met.Rounds {
		t.Fatalf("%d events for %d rounds", len(events), met.Rounds)
	}

	var arrivals, collected int64
	sawDynamicTotal := false
	for _, e := range events {
		arrivals += int64(e.Arrivals)
		collected += int64(e.Collected)
		if e.Total != 6*1 && e.Total == 6*e.Outstanding {
			sawDynamicTotal = true
		}
		if e.Total != 6*e.Outstanding {
			t.Errorf("round %d: Total = %d, want N*Outstanding = %d", e.Round, e.Total, 6*e.Outstanding)
		}
		// Quiet-gap semantics: a drained queue must not accrue stall rounds.
		if e.Outstanding == 0 && e.Stall != 0 {
			t.Errorf("round %d: stall series %d with nothing outstanding", e.Round, e.Stall)
		}
	}
	if arrivals != met.TokensInjected {
		t.Errorf("event arrivals sum %d, metrics %d", arrivals, met.TokensInjected)
	}
	if collected != met.TokensCollected {
		t.Errorf("event collected sum %d, metrics %d", collected, met.TokensCollected)
	}
	if !sawDynamicTotal {
		t.Error("delivery ceiling never tracked the live token universe")
	}
	last := events[len(events)-1]
	if last.Outstanding != 0 || last.Total != 0 {
		t.Errorf("drained run ends with outstanding=%d total=%d", last.Outstanding, last.Total)
	}

	// Registry instruments.
	if got := reg.Counter("sim_token_arrivals_total", "").Value(); got != met.TokensInjected {
		t.Errorf("sim_token_arrivals_total = %d, want %d", got, met.TokensInjected)
	}
	if got := reg.Counter("sim_tokens_collected_total", "").Value(); got != met.TokensCollected {
		t.Errorf("sim_tokens_collected_total = %d, want %d", got, met.TokensCollected)
	}
	if got := reg.Gauge("sim_outstanding_tokens", "").Value(); got != 0 {
		t.Errorf("sim_outstanding_tokens = %d after drain", got)
	}
	lat := reg.Histogram("sim_token_latency_rounds", "", LatencyBuckets)
	if lat.Count() != met.TokensCollected {
		t.Errorf("latency histogram has %d samples, want %d", lat.Count(), met.TokensCollected)
	}
	p50, p99 := col.LatencyQuantile(0.50), col.LatencyQuantile(0.99)
	if !(p50 >= 1) || !(p99 >= p50) {
		t.Errorf("latency quantiles p50=%v p99=%v, want 1 <= p50 <= p99", p50, p99)
	}

	// JSONL round-trip preserves the arrival fields.
	parsed, err := ParseEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(events))
	}
	for i := range parsed {
		if parsed[i].Arrivals != events[i].Arrivals ||
			parsed[i].Collected != events[i].Collected ||
			parsed[i].Outstanding != events[i].Outstanding ||
			parsed[i].Total != events[i].Total {
			t.Fatalf("event %d arrival fields did not round-trip: %+v vs %+v", i, parsed[i], events[i])
		}
	}
}

// TestArrivalEventStreamByteIdentical extends the serial-vs-parallel
// determinism contract to arrival mode: the collector's JSONL must be
// byte-identical under any worker count.
func TestArrivalEventStreamByteIdentical(t *testing.T) {
	arr := sim.Arrivals{Rate: 1.5, Seed: 21, Stop: 80}
	ref, _, refMet := runArrivalCollected(t, 40, 1, arr, nil)
	if refMet.TokensInjected == 0 {
		t.Fatal("reference run injected nothing")
	}
	for _, workers := range []int{2, 4} {
		got, _, met := runArrivalCollected(t, 40, workers, arr, nil)
		if met.TokensInjected != refMet.TokensInjected || met.TokensCollected != refMet.TokensCollected {
			t.Errorf("workers=%d: token accounting diverges from serial", workers)
		}
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: arrival-mode event stream diverges from serial (%d vs %d bytes)",
				workers, len(got), len(ref))
		}
	}
}

// TestCombineArrivalCallbacks checks the new callbacks chain through
// Combine like the rest.
func TestCombineArrivalCallbacks(t *testing.T) {
	var calls []int
	a := &sim.Observer{
		Arrived:   func(r, v, tok int, seq int64) { calls = append(calls, 1) },
		Collected: func(r, tok int, seq int64, born int) { calls = append(calls, 3) },
	}
	b := &sim.Observer{
		Arrived:   func(r, v, tok int, seq int64) { calls = append(calls, 2) },
		Collected: func(r, tok int, seq int64, born int) { calls = append(calls, 4) },
	}
	c := Combine(a, b)
	c.Arrived(0, 1, 2, 3)
	c.Collected(0, 2, 3, 0)
	want := []int{1, 2, 3, 4}
	if len(calls) != len(want) {
		t.Fatalf("calls %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls %v, want %v", calls, want)
		}
	}
}
