package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"

	"repro/internal/report"
	"repro/internal/sim"
)

// DurationBuckets is the default bucket layout for per-round stage
// durations, in nanoseconds: 1µs to 1s in 1–3–10 steps. One engine round at
// the 1k scale is tens of microseconds per stage; at the 10k scale single
// stages reach milliseconds, and a full snapshot rebuild can touch tens of
// milliseconds.
var DurationBuckets = []float64{
	1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9,
}

// TimingConfig parameterises a Timing sink.
type TimingConfig struct {
	// Sink, if non-nil, receives one JSON object per line per round: the
	// per-stage wall durations on the engine goroutine, the shard-summed
	// per-stage CPU durations, and — on sampled rounds — a resource
	// snapshot. The Timing buffers internally; call Flush before reading.
	Sink io.Writer
	// Registry, if non-nil, additionally maintains per-stage duration
	// histograms (per round, and per shard for the fan-out stages),
	// cumulative wall counters, and resource gauges.
	Registry *Registry
	// SampleEvery is the round interval of the resource sample (heap,
	// goroutines, arena occupancy); it costs a runtime.ReadMemStats, so it
	// is taken every SampleEvery-th round rather than every round. Zero or
	// negative means every 32 rounds.
	SampleEvery int
	// Normalize zeroes every duration and resource value in the JSONL
	// output while keeping the record structure — rounds, stage keys, key
	// order, sample placement — intact. A serial and a Workers>1 run over
	// the same inputs then emit byte-identical streams (durations are the
	// only nondeterministic content), which is what the determinism tests
	// and the CI smoke check compare.
	Normalize bool
}

// timingInstruments caches the registry handles for the timing series.
type timingInstruments struct {
	roundNs   [sim.NumStages]*Histogram
	wallTotal [sim.NumStages]*Counter
	// Per-shard histograms for the fan-out stages, sized at RunStart.
	collectShard []*Histogram
	deliverShard []*Histogram

	heapInuse  *Gauge
	heapObjs   *Gauge
	goroutines *Gauge
	arenaMsgs  *Gauge
	arenaSets  *Gauge
	arenaBytes *Gauge
}

func newTimingInstruments(r *Registry) *timingInstruments {
	ti := &timingInstruments{
		heapInuse:  r.Gauge("sim_heap_inuse_bytes", "heap bytes in use at the last resource sample"),
		heapObjs:   r.Gauge("sim_heap_objects", "live heap objects at the last resource sample"),
		goroutines: r.Gauge("sim_goroutines", "goroutines at the last resource sample"),
		arenaMsgs:  r.Gauge("sim_arena_msgs", "pooled messages retained by the per-shard arenas"),
		arenaSets:  r.Gauge("sim_arena_sets", "pooled payload sets retained by the per-shard arenas"),
		arenaBytes: r.Gauge("sim_arena_set_bytes", "bitset word storage retained by pooled payload sets"),
	}
	for st := sim.Stage(0); st < sim.NumStages; st++ {
		name := st.String()
		ti.roundNs[st] = r.Histogram(`sim_stage_round_ns{stage="`+name+`"}`,
			"per-round stage wall time on the engine goroutine (ns)", DurationBuckets)
		ti.wallTotal[st] = r.Counter(`sim_stage_wall_ns_total{stage="`+name+`"}`,
			"cumulative stage wall time on the engine goroutine (ns)")
	}
	return ti
}

// shardHists registers the per-(stage, shard) histograms once the shard
// count is known.
func (ti *timingInstruments) shardHists(r *Registry, nshards int) {
	ti.collectShard = make([]*Histogram, nshards)
	ti.deliverShard = make([]*Histogram, nshards)
	for s := 0; s < nshards; s++ {
		sh := strconv.Itoa(s)
		ti.collectShard[s] = r.Histogram(
			`sim_stage_shard_ns{stage="`+sim.StageCollect.String()+`",shard="`+sh+`"}`,
			"per-round stage time on one shard goroutine (ns)", DurationBuckets)
		ti.deliverShard[s] = r.Histogram(
			`sim_stage_shard_ns{stage="`+sim.StageDeliver.String()+`",shard="`+sh+`"}`,
			"per-round stage time on one shard goroutine (ns)", DurationBuckets)
	}
}

// Timing is the standard sim.TimingSink: it turns the engine's per-round
// stage spans into a JSONL series, registry histograms/gauges, and an
// end-of-run breakdown. Like the Collector, it is driven from the engine
// goroutine (the engine flushes timing at the round barrier) and is not
// otherwise goroutine-safe.
type Timing struct {
	cfg   TimingConfig
	every int

	w   *bufio.Writer
	buf []byte
	err error

	nshards   int
	rounds    int
	wallTotal [sim.NumStages]int64
	cpuTotal  [sim.NumStages]int64

	res        TimingResources
	resPending bool

	reg *timingInstruments
}

// NewTiming builds a timing sink for one run.
func NewTiming(cfg TimingConfig) *Timing {
	t := &Timing{cfg: cfg, every: cfg.SampleEvery, nshards: 1}
	if t.every <= 0 {
		t.every = 32
	}
	if cfg.Sink != nil {
		t.w = bufio.NewWriter(cfg.Sink)
	}
	if cfg.Registry != nil {
		t.reg = newTimingInstruments(cfg.Registry)
	}
	return t
}

// RunStart implements sim.TimingSink.
func (t *Timing) RunStart(nshards int) {
	t.nshards = nshards
	if t.reg != nil {
		t.reg.shardHists(t.cfg.Registry, nshards)
	}
}

// SampleArena implements sim.TimingSink: the engine takes the arena /
// resource sample on every SampleEvery-th round (round 0 included, so every
// run has at least one sample).
func (t *Timing) SampleArena(r int) bool { return r%t.every == 0 }

// Arena implements sim.TimingSink. The runtime side of the resource sample
// (heap, goroutines) is taken here, on the engine goroutine, so one sampled
// round yields one coherent snapshot; runtime.ReadMemStats is the expensive
// part and the reason sampling is interval-based.
func (t *Timing) Arena(r int, msgs, sets int, setBytes int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.res = TimingResources{
		HeapInuse:     ms.HeapInuse,
		HeapObjects:   ms.HeapObjects,
		Goroutines:    runtime.NumGoroutine(),
		ArenaMsgs:     msgs,
		ArenaSets:     sets,
		ArenaSetBytes: setBytes,
	}
	t.resPending = true
	if t.reg != nil {
		t.reg.heapInuse.Set(int64(ms.HeapInuse))
		t.reg.heapObjs.Set(int64(ms.HeapObjects))
		t.reg.goroutines.Set(int64(t.res.Goroutines))
		t.reg.arenaMsgs.Set(int64(msgs))
		t.reg.arenaSets.Set(int64(sets))
		t.reg.arenaBytes.Set(setBytes)
	}
}

// RoundEnd implements sim.TimingSink: fold the round's spans into the run
// totals and the registry, and emit the round's JSONL record.
func (t *Timing) RoundEnd(r int, wall *[sim.NumStages]int64, shard [][sim.NumStages]int64) {
	t.rounds++
	var cpu [sim.NumStages]int64
	for s := range shard {
		for st, v := range shard[s] {
			cpu[st] += v
		}
	}
	for st := 0; st < int(sim.NumStages); st++ {
		// The engine goroutine's wall clock covers every stage; the
		// fan-out stages additionally report shard-goroutine time, which
		// is the CPU view (≈ wall when serial, > wall when shards overlap).
		// Non-fan-out stages run on the engine goroutine only, so their
		// CPU time is their wall time.
		if cpu[st] == 0 {
			cpu[st] = wall[st]
		}
		t.wallTotal[st] += wall[st]
		t.cpuTotal[st] += cpu[st]
	}
	if t.reg != nil {
		for st := 0; st < int(sim.NumStages); st++ {
			t.reg.roundNs[st].Observe(float64(wall[st]))
			t.reg.wallTotal[st].Add(wall[st])
		}
		if len(shard) == len(t.reg.collectShard) {
			for s := range shard {
				t.reg.collectShard[s].Observe(float64(shard[s][sim.StageCollect]))
				t.reg.deliverShard[s].Observe(float64(shard[s][sim.StageDeliver]))
			}
		}
	}
	if t.w != nil && t.err == nil {
		t.buf = t.appendRound(t.buf[:0], r, wall, &cpu)
		t.buf = append(t.buf, '\n')
		if _, err := t.w.Write(t.buf); err != nil {
			t.err = err
		}
	}
	t.resPending = false
}

// appendStages renders {"faults":0,...} with the stages in enum order —
// fixed keys and order, so equal records encode to equal bytes.
func (t *Timing) appendStages(b []byte, vals *[sim.NumStages]int64) []byte {
	b = append(b, '{')
	for st := sim.Stage(0); st < sim.NumStages; st++ {
		if st > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, st.String()...)
		b = append(b, '"', ':')
		v := vals[st]
		if t.cfg.Normalize {
			v = 0
		}
		b = strconv.AppendInt(b, v, 10)
	}
	return append(b, '}')
}

func (t *Timing) appendRound(b []byte, r int, wall, cpu *[sim.NumStages]int64) []byte {
	b = append(b, `{"round":`...)
	b = strconv.AppendInt(b, int64(r), 10)
	b = append(b, `,"wall":`...)
	b = t.appendStages(b, wall)
	b = append(b, `,"cpu":`...)
	b = t.appendStages(b, cpu)
	if t.resPending {
		norm := func(v int64) int64 {
			if t.cfg.Normalize {
				return 0
			}
			return v
		}
		b = append(b, `,"res":{"heap_inuse":`...)
		b = strconv.AppendInt(b, norm(int64(t.res.HeapInuse)), 10)
		b = append(b, `,"heap_objects":`...)
		b = strconv.AppendInt(b, norm(int64(t.res.HeapObjects)), 10)
		b = append(b, `,"goroutines":`...)
		b = strconv.AppendInt(b, norm(int64(t.res.Goroutines)), 10)
		b = append(b, `,"arena_msgs":`...)
		b = strconv.AppendInt(b, norm(int64(t.res.ArenaMsgs)), 10)
		b = append(b, `,"arena_sets":`...)
		b = strconv.AppendInt(b, norm(int64(t.res.ArenaSets)), 10)
		b = append(b, `,"arena_set_bytes":`...)
		b = strconv.AppendInt(b, norm(t.res.ArenaSetBytes), 10)
		b = append(b, '}')
	}
	return append(b, '}')
}

// Flush drains the sink buffer; call it after the run returns and before
// reading the sink. It is idempotent and returns the first write error.
func (t *Timing) Flush() error {
	if t.w != nil {
		if err := t.w.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Err returns the first sink write error, if any.
func (t *Timing) Err() error { return t.err }

// Rounds returns the number of rounds recorded.
func (t *Timing) Rounds() int { return t.rounds }

// Resources returns the most recent resource sample (the zero value before
// the first sampled round).
func (t *Timing) Resources() TimingResources { return t.res }

// StageBreak is one stage's share of a run (or of an aggregated series):
// wall time on the engine goroutine, CPU time summed over shard goroutines,
// and the stage's fraction of the total wall time.
type StageBreak struct {
	Stage  string
	WallNs int64
	CPUNs  int64
	Share  float64
}

// Breakdown returns the run's per-stage totals in stage order, shares
// computed against the summed wall time.
func (t *Timing) Breakdown() []StageBreak {
	return WallBreakdown(t.wallTotal[:], t.cpuTotal[:])
}

// WallBreakdown builds a per-stage breakdown from totals indexed by
// sim.Stage (cpu may be nil when only wall time was aggregated).
func WallBreakdown(wall, cpu []int64) []StageBreak {
	var total int64
	for _, v := range wall {
		total += v
	}
	out := make([]StageBreak, 0, sim.NumStages)
	for st := sim.Stage(0); st < sim.NumStages && int(st) < len(wall); st++ {
		b := StageBreak{Stage: st.String(), WallNs: wall[st]}
		if cpu != nil {
			b.CPUNs = cpu[st]
		}
		if total > 0 {
			b.Share = float64(wall[st]) / float64(total)
		}
		out = append(out, b)
	}
	return out
}

// TimingTable renders a breakdown as a report table: per stage, the wall
// total, its share, the shard-CPU total, and the mean wall time per round
// (rounds <= 0 omits the mean column's denominator and renders "-").
func TimingTable(title string, breaks []StageBreak, rounds int) *report.Table {
	tb := report.NewTable(title, "stage", "wall_ms", "share", "cpu_ms", "us_per_round")
	for _, b := range breaks {
		perRound := "-"
		if rounds > 0 {
			perRound = fmt.Sprintf("%.1f", float64(b.WallNs)/float64(rounds)/1e3)
		}
		tb.AddRow(
			b.Stage,
			fmt.Sprintf("%.3f", float64(b.WallNs)/1e6),
			fmt.Sprintf("%.1f%%", 100*b.Share),
			fmt.Sprintf("%.3f", float64(b.CPUNs)/1e6),
			perRound,
		)
	}
	return tb
}

// TimingResources is one sampled resource snapshot from the timing stream.
type TimingResources struct {
	HeapInuse     uint64 `json:"heap_inuse"`
	HeapObjects   uint64 `json:"heap_objects"`
	Goroutines    int    `json:"goroutines"`
	ArenaMsgs     int    `json:"arena_msgs"`
	ArenaSets     int    `json:"arena_sets"`
	ArenaSetBytes int64  `json:"arena_set_bytes"`
}

// TimingRow is one decoded line of a timing JSONL series.
type TimingRow struct {
	Round int              `json:"round"`
	Wall  map[string]int64 `json:"wall"`
	CPU   map[string]int64 `json:"cpu"`
	Res   *TimingResources `json:"res"`
}

// ParseTiming decodes a timing JSONL series written by a Timing sink.
func ParseTiming(r io.Reader) ([]TimingRow, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []TimingRow
	for dec.More() {
		var row TimingRow
		if err := dec.Decode(&row); err != nil {
			return nil, fmt.Errorf("obs: timing row %d: %w", len(out), err)
		}
		out = append(out, row)
	}
	return out, nil
}

// SummarizeTiming folds a decoded timing series into a per-stage breakdown
// (stages in canonical order; unknown keys are ignored).
func SummarizeTiming(rows []TimingRow) []StageBreak {
	var wall, cpu [sim.NumStages]int64
	for _, row := range rows {
		for st := sim.Stage(0); st < sim.NumStages; st++ {
			name := st.String()
			wall[st] += row.Wall[name]
			cpu[st] += row.CPU[name]
		}
	}
	return WallBreakdown(wall[:], cpu[:])
}
