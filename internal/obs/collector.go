package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Config parameterises a Collector.
type Config struct {
	// N and K size the convergence denominator: Total = N·K delivered
	// (node, token) pairs.
	N, K int
	// PhaseLen is Algorithm 1's phase length T; events carry
	// Phase = Round / PhaseLen. Zero or negative means no phase structure
	// (every round reports phase 0).
	PhaseLen int
	// Sink, if non-nil, receives one JSON event per line per round. The
	// Collector buffers internally; call Flush before reading the sink.
	Sink io.Writer
	// SizeFn, if set, mirrors the engine's byte accounting into the event
	// stream (pass the same function as sim.Options.SizeFn).
	SizeFn func(*sim.Message) int
	// Registry, if non-nil, additionally maintains cumulative metrics
	// (counters/gauges/histograms) updated once per round.
	Registry *Registry
	// Arrivals marks an arrival-mode run (sim.Options.Arrivals set). The
	// collector then tracks the live token universe — Total becomes
	// N · outstanding rather than the static N·K — and derives the stall
	// series from outstanding work, so quiet arrival gaps do not read as
	// stalls.
	Arrivals bool
	// Keep retains the per-round events in memory for Events() — the
	// input to phase summaries and convergence analysis.
	Keep bool
	// OnEvent, if set, receives every finalized round event, after
	// normalisation and after the sink/registry updates. The event aliases
	// collector storage (its slices are reused across rounds): read-only,
	// valid only during the call — deep-copy anything retained past it.
	// This is the flight recorder's feed; it fires even when the sink has
	// already failed, so in-memory consumers outlive a full disk.
	OnEvent func(*RoundEvent)
}

// regInstruments caches the registry handles so round finalisation does no
// name lookups.
type regInstruments struct {
	rounds       *Counter
	msgs         *Counter
	tokens       *Counter
	bytes        *Counter
	crashes      *Counter
	recoveries   *Counter
	drops        *Counter
	dups         *Counter
	handovers    *Counter
	floodFalls   *Counter
	stalledRuns  *Counter
	firstDeliv   *Counter
	redunDeliv   *Counter
	msgsKind     [sim.NumKinds]*Counter
	tokensKind   [sim.NumKinds]*Counter
	msgsRole     [sim.NumRoles]*Counter
	tokensRole   [sim.NumRoles]*Counter
	headChanges  *Counter
	reaffil      *Counter
	gatewayFlips *Counter
	arrivals     *Counter
	collectedTok *Counter
	elections    *Counter
	adoptions    *Counter
	headMerges   *Counter
	beacons      *Counter
	convReports  *Counter
	delivered    *Gauge
	totalPairs   *Gauge
	heads        *Gauge
	stall        *Gauge
	outstanding  *Gauge
	roundTokens  *Histogram
	latency      *Histogram
	reconverge   *Histogram
}

func newRegInstruments(r *Registry) *regInstruments {
	ri := &regInstruments{
		rounds:       r.Counter("sim_rounds_total", "rounds executed"),
		msgs:         r.Counter("sim_messages_total", "transmissions"),
		tokens:       r.Counter("sim_tokens_total", "communication cost in token units"),
		bytes:        r.Counter("sim_bytes_total", "wire-level cost in bytes"),
		crashes:      r.Counter("sim_crashes_total", "nodes felled by fault injection"),
		recoveries:   r.Counter("sim_recoveries_total", "crashed nodes that rejoined"),
		drops:        r.Counter("sim_drops_total", "deliveries suppressed by link fault injection"),
		dups:         r.Counter("sim_dups_total", "deliveries duplicated by link fault injection"),
		handovers:    r.Counter("sim_handovers_total", "members self-promoted to acting cluster head"),
		floodFalls:   r.Counter("sim_flood_fallbacks_total", "nodes escalated to blind flooding"),
		stalledRuns:  r.Counter("sim_stalled_runs_total", "runs terminated by the stall watchdog"),
		firstDeliv:   r.Counter("sim_first_deliveries_total", "(node, token) pairs first acquired (provenance tracer attached)"),
		redunDeliv:   r.Counter("sim_redundant_deliveries_total", "cost-bearing messages that taught their receiver nothing (provenance tracer attached)"),
		headChanges:  r.Counter("sim_head_changes_total", "nodes whose head-ness flipped between rounds"),
		reaffil:      r.Counter("sim_reaffiliations_total", "members that switched clusters between rounds"),
		gatewayFlips: r.Counter("sim_gateway_flips_total", "nodes entering or leaving gateway duty"),
		arrivals:     r.Counter("sim_token_arrivals_total", "tokens injected by the arrival process"),
		collectedTok: r.Counter("sim_tokens_collected_total", "fully disseminated tokens garbage-collected"),
		elections:    r.Counter("sim_elections_total", "nodes elected themselves cluster head (self-stabilization)"),
		adoptions:    r.Counter("sim_adoptions_total", "orphaned or unaffiliated nodes adopted into a cluster (self-stabilization)"),
		headMerges:   r.Counter("sim_head_merges_total", "heads abdicated to a lower-ID neighbouring head (self-stabilization)"),
		beacons:      r.Counter("sim_maintenance_beacons_total", "maintenance beacons sent by the self-stabilizing protocol"),
		convReports:  r.Counter("sim_convergence_reports_total", "convergence watchdog reports (hierarchy invalid for the configured window)"),
		delivered:    r.Gauge("sim_delivered_pairs", "(node, token) pairs delivered so far"),
		totalPairs:   r.Gauge("sim_total_pairs", "delivery ceiling n*k"),
		heads:        r.Gauge("sim_heads", "current head-set size"),
		stall:        r.Gauge("sim_stall_rounds", "consecutive rounds without delivery progress"),
		outstanding:  r.Gauge("sim_outstanding_tokens", "live (injected, not yet collected) tokens"),
		roundTokens:  r.Histogram("sim_round_tokens", "tokens sent per round", RoundBuckets),
		latency:      r.Histogram("sim_token_latency_rounds", "rounds from token arrival to garbage collection", LatencyBuckets),
		reconverge:   r.Histogram("sim_reconverge_rounds", "rounds the emergent hierarchy spent invalid before reconverging", LatencyBuckets),
	}
	for i := range kindNames {
		ri.msgsKind[i] = r.Counter(`sim_messages_kind_total{kind="`+kindNames[i]+`"}`, "transmissions by message kind")
		ri.tokensKind[i] = r.Counter(`sim_tokens_kind_total{kind="`+kindNames[i]+`"}`, "token cost by message kind")
	}
	for i := range roleNames {
		ri.msgsRole[i] = r.Counter(`sim_messages_role_total{role="`+roleNames[i]+`"}`, "transmissions by sender role")
		ri.tokensRole[i] = r.Counter(`sim_tokens_role_total{role="`+roleNames[i]+`"}`, "token cost by sender role")
	}
	return ri
}

// Collector accumulates the engine's observer callbacks into RoundEvents,
// streaming them to the configured JSONL sink and registry.
//
// The per-message path (the Sent callback) only increments fixed-size
// arrays — no heap allocation — so attaching a Collector does not perturb
// the engine's allocation profile (asserted by TestSentHotPathNoAllocs).
// Per-round work (event encoding, churn diffing) is O(n) once per round.
//
// A Collector is driven from the engine goroutine (the engine serialises
// observer callbacks even when Workers > 1) and is not otherwise
// goroutine-safe.
type Collector struct {
	cfg Config

	w   *bufio.Writer
	buf []byte
	err error

	cur     RoundEvent
	started bool
	curHier *ctvg.Hierarchy // aliases engine storage; valid within the round

	// errRound / lostRounds attribute a sink write failure: the round whose
	// emission first failed, and how many later rounds were dropped because
	// of it. Flush folds both into the returned error, so callers learn not
	// just that a write failed but how much of the stream is missing.
	errRound   int
	lostRounds int

	prevRole    []ctvg.Role
	prevCluster []int
	havePrev    bool

	prevDelivered int
	stall         int

	// liveTok tracks the live token universe in arrival mode: the initial
	// batch plus injected-minus-collected.
	liveTok int

	events []RoundEvent
	reg    *regInstruments
}

// NewCollector builds a collector for one run.
func NewCollector(cfg Config) *Collector {
	c := &Collector{cfg: cfg}
	if cfg.Sink != nil {
		c.w = bufio.NewWriter(cfg.Sink)
	}
	if cfg.Registry != nil {
		c.reg = newRegInstruments(cfg.Registry)
		c.reg.totalPairs.Set(int64(cfg.N * cfg.K))
	}
	c.liveTok = cfg.K
	return c
}

// Observer returns the sim.Observer that feeds this collector. Combine
// with other observers via Combine if the run also needs ad-hoc hooks.
func (c *Collector) Observer() *sim.Observer {
	return &sim.Observer{
		RoundStart:  c.roundStart,
		Sent:        c.sent,
		Progress:    c.progress,
		Crashed:     c.crashed,
		Recovered:   c.recovered,
		Noted:       c.noted,
		Deliveries:  c.deliveries,
		LinkFaults:  c.linkFaults,
		Arrived:     c.arrived,
		Collected:   c.collected,
		Stalled:     c.stalled,
		Maintenance: c.maintenance,
		Diverged:    c.diverged,
	}
}

// ensure opens the accumulator for round r, finalising the previous round
// first. Crash events arrive before RoundStart, so any callback may be the
// one that opens a round.
func (c *Collector) ensure(r int) {
	if c.started && c.cur.Round == r {
		return
	}
	if c.started {
		c.finalize()
	}
	c.started = true
	crashed := c.cur.Crashed[:0] // reuse the slices across rounds
	recovered := c.cur.Recovered[:0]
	c.cur = RoundEvent{Round: r, Total: c.cfg.N * c.cfg.K, Crashed: crashed, Recovered: recovered}
	if c.cfg.PhaseLen > 0 {
		c.cur.Phase = r / c.cfg.PhaseLen
	}
}

func (c *Collector) roundStart(r int, g *graph.Graph, h *ctvg.Hierarchy) {
	c.ensure(r)
	c.curHier = h
	heads := 0
	for v := range h.Role {
		if h.Role[v] == ctvg.Head {
			heads++
		}
	}
	c.cur.Heads = heads
	if c.havePrev && len(c.prevRole) == len(h.Role) {
		for v := range h.Role {
			wasHead := c.prevRole[v] == ctvg.Head
			isHead := h.Role[v] == ctvg.Head
			if wasHead != isHead {
				c.cur.HeadChanges++
			}
			wasGw := c.prevRole[v] == ctvg.Gateway
			isGw := h.Role[v] == ctvg.Gateway
			if wasGw != isGw {
				c.cur.GatewayFlips++
			}
			// A re-affiliation is a node that is a member now, was
			// affiliated before, and answers to a different head — the
			// n_r of the paper's cost model.
			if h.Role[v] == ctvg.Member && c.prevCluster[v] != ctvg.NoCluster &&
				h.Cluster[v] != c.prevCluster[v] {
				c.cur.Reaffiliations++
			}
		}
	}
	if c.prevRole == nil {
		c.prevRole = make([]ctvg.Role, len(h.Role))
		c.prevCluster = make([]int, len(h.Cluster))
	}
	copy(c.prevRole, h.Role)
	copy(c.prevCluster, h.Cluster)
	c.havePrev = true
}

// sent is the hot path: one call per transmission, allocation-free.
func (c *Collector) sent(r int, m *sim.Message) {
	c.ensure(r)
	cost := int64(m.Cost())
	c.cur.Messages++
	c.cur.Tokens += cost
	if int(m.Kind) < sim.NumKinds {
		c.cur.MsgsByKind[m.Kind]++
		c.cur.TokensByKind[m.Kind] += cost
	}
	if c.cfg.SizeFn != nil {
		c.cur.Bytes += int64(c.cfg.SizeFn(m))
	}
	if h := c.curHier; h != nil && m.From >= 0 && m.From < len(h.Role) {
		if role := h.Role[m.From]; int(role) < sim.NumRoles {
			c.cur.MsgsByRole[role]++
			c.cur.TokensByRole[role] += cost
		}
	}
}

func (c *Collector) progress(r, delivered int) {
	c.ensure(r)
	c.cur.Delivered = delivered
}

func (c *Collector) crashed(r, v int) {
	c.ensure(r)
	c.cur.Crashed = append(c.cur.Crashed, v)
}

func (c *Collector) recovered(r, v int) {
	c.ensure(r)
	c.cur.Recovered = append(c.cur.Recovered, v)
}

func (c *Collector) noted(r, v int, kind sim.NoteKind) {
	c.ensure(r)
	switch kind {
	case sim.NoteHandover:
		c.cur.Handovers++
	case sim.NoteFloodFallback:
		c.cur.FloodFallbacks++
	}
}

func (c *Collector) deliveries(r, first, redundant int) {
	c.ensure(r)
	c.cur.FirstDeliveries += first
	c.cur.RedundantDeliveries += redundant
}

func (c *Collector) linkFaults(r, drops, dups int) {
	c.ensure(r)
	c.cur.Drops += int64(drops)
	c.cur.Dups += int64(dups)
}

func (c *Collector) arrived(r, v, tok int, seq int64) {
	c.ensure(r)
	c.cur.Arrivals++
	c.liveTok++
}

func (c *Collector) collected(r, tok int, seq int64, born int) {
	c.ensure(r)
	c.cur.Collected++
	c.liveTok--
	if c.reg != nil {
		c.reg.latency.Observe(float64(r - born))
	}
}

func (c *Collector) stalled(r int, rep *sim.StallReport) {
	c.ensure(r)
	c.cur.Stalled = true
}

func (c *Collector) maintenance(r int, ms sim.MaintenanceStats) {
	c.ensure(r)
	c.cur.Elections = ms.Elections
	c.cur.Adoptions = ms.Adoptions
	c.cur.HeadMerges = ms.HeadMerges
	c.cur.Beacons = ms.BeaconsSent
	c.cur.StabValid = ms.Valid
	c.cur.Reconverge = ms.Reconverged
}

func (c *Collector) diverged(r int, rep *sim.ConvergenceReport) {
	c.ensure(r)
	if c.reg != nil {
		c.reg.convReports.Inc()
	}
}

// finalize closes the current round: derives idle/stall, emits JSONL,
// updates the registry, and retains the event when configured.
func (c *Collector) finalize() {
	e := &c.cur
	e.Idle = e.Messages == 0
	// Defensive normalisation before anything (JSONL, registry, provenance
	// consumers) reads the crash/recovery lists: the engine emits both
	// sorted and without duplicates, but a combined observer chain or a
	// replayed trace may not — and duplicate entries skew the redundancy
	// accounting downstream.
	e.Crashed = sortDedup(e.Crashed)
	e.Recovered = sortDedup(e.Recovered)
	if c.cfg.Arrivals {
		// Arrival mode: the delivery ceiling tracks the live token universe
		// (it shrinks on GC and grows on injection), and a flat delivered
		// count only counts toward the stall series while tokens are
		// actually outstanding — a drained queue waiting for the next burst
		// is healthy idleness, not a stall (mirrors the engine's watchdog).
		e.Outstanding = c.liveTok
		e.Total = c.cfg.N * c.liveTok
		if e.Delivered == c.prevDelivered && e.Outstanding > 0 {
			c.stall++
		} else {
			c.stall = 0
		}
	} else if e.Delivered <= c.prevDelivered && (e.Total <= 0 || e.Delivered < e.Total) {
		c.stall++
	} else {
		c.stall = 0
	}
	e.Stall = c.stall
	c.prevDelivered = e.Delivered

	if c.w != nil {
		if c.err == nil {
			c.buf = e.AppendJSON(c.buf[:0])
			c.buf = append(c.buf, '\n')
			if _, err := c.w.Write(c.buf); err != nil {
				// Latch the first write error where emission failed, not
				// where Flush happened to notice it: Err() reports it from
				// this round on, and Flush attributes the loss.
				c.err = err
				c.errRound = e.Round
			}
		} else {
			c.lostRounds++
		}
	}
	if c.reg != nil {
		ri := c.reg
		ri.rounds.Inc()
		ri.msgs.Add(e.Messages)
		ri.tokens.Add(e.Tokens)
		ri.bytes.Add(e.Bytes)
		ri.crashes.Add(int64(len(e.Crashed)))
		ri.recoveries.Add(int64(len(e.Recovered)))
		ri.drops.Add(e.Drops)
		ri.dups.Add(e.Dups)
		ri.handovers.Add(int64(e.Handovers))
		ri.floodFalls.Add(int64(e.FloodFallbacks))
		if e.Stalled {
			ri.stalledRuns.Inc()
		}
		ri.firstDeliv.Add(int64(e.FirstDeliveries))
		ri.redunDeliv.Add(int64(e.RedundantDeliveries))
		for i := range ri.msgsKind {
			ri.msgsKind[i].Add(e.MsgsByKind[i])
			ri.tokensKind[i].Add(e.TokensByKind[i])
		}
		for i := range ri.msgsRole {
			ri.msgsRole[i].Add(e.MsgsByRole[i])
			ri.tokensRole[i].Add(e.TokensByRole[i])
		}
		ri.headChanges.Add(int64(e.HeadChanges))
		ri.reaffil.Add(int64(e.Reaffiliations))
		ri.gatewayFlips.Add(int64(e.GatewayFlips))
		ri.arrivals.Add(int64(e.Arrivals))
		ri.collectedTok.Add(int64(e.Collected))
		ri.elections.Add(int64(e.Elections))
		ri.adoptions.Add(int64(e.Adoptions))
		ri.headMerges.Add(int64(e.HeadMerges))
		ri.beacons.Add(int64(e.Beacons))
		if e.Reconverge > 0 {
			ri.reconverge.Observe(float64(e.Reconverge))
		}
		ri.delivered.Set(int64(e.Delivered))
		if c.cfg.Arrivals {
			ri.totalPairs.Set(int64(e.Total))
			ri.outstanding.Set(int64(e.Outstanding))
		}
		ri.heads.Set(int64(e.Heads))
		ri.stall.Set(int64(c.stall))
		ri.roundTokens.Observe(float64(e.Tokens))
	}
	if c.cfg.Keep {
		ev := *e
		ev.Crashed = append([]int(nil), e.Crashed...)
		ev.Recovered = append([]int(nil), e.Recovered...)
		c.events = append(c.events, ev)
	}
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(e)
	}
}

// sortDedup sorts xs ascending and removes adjacent duplicates in place.
func sortDedup(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Flush finalises the in-flight round and drains the sink buffer. Call it
// after the run returns (and before reading the sink); it is idempotent.
// A sink write error that surfaced during round emission is returned
// attributed: which round's event failed first and how many later events
// were dropped — so a full disk reports a truncated stream, never passes
// one off as complete (the same contract hinettrace record enforces at
// Close).
func (c *Collector) Flush() error {
	if c.started {
		c.finalize()
		c.started = false
		c.curHier = nil
	}
	if c.w != nil {
		if err := c.w.Flush(); err != nil && c.err == nil {
			c.err = err
			c.errRound = c.cur.Round
		}
	}
	return c.Err()
}

// Err returns the first sink write error, attributed to the round whose
// emission failed (plus the count of later events dropped because of it),
// or nil. Unlike Flush it never touches the sink, so it is safe to poll
// mid-run from observer callbacks.
func (c *Collector) Err() error {
	if c.err == nil {
		return nil
	}
	if c.lostRounds > 0 {
		return fmt.Errorf("obs: event sink failed at round %d (%d later events dropped): %w",
			c.errRound, c.lostRounds, c.err)
	}
	return fmt.Errorf("obs: event sink failed at round %d: %w", c.errRound, c.err)
}

// Events returns the retained per-round series (Config.Keep must be set;
// call Flush first so the final round is included).
func (c *Collector) Events() []RoundEvent { return c.events }

// LatencyQuantile returns the q-quantile of token delivery latency in
// rounds (arrival to garbage collection), from the registry-backed
// sim_token_latency_rounds histogram. It returns NaN when no registry is
// attached or nothing has been collected yet.
func (c *Collector) LatencyQuantile(q float64) float64 {
	if c.reg == nil {
		return math.NaN()
	}
	return c.reg.latency.Quantile(q)
}

// Combine merges observers: every non-nil callback of every observer is
// invoked in argument order. Nil observers are skipped; a single observer
// is returned as-is.
func Combine(list ...*sim.Observer) *sim.Observer {
	live := list[:0:0]
	for _, o := range list {
		if o != nil {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	out := &sim.Observer{}
	for _, o := range live {
		o := o
		if o.RoundStart != nil {
			prev := out.RoundStart
			out.RoundStart = func(r int, g *graph.Graph, h *ctvg.Hierarchy) {
				if prev != nil {
					prev(r, g, h)
				}
				o.RoundStart(r, g, h)
			}
		}
		if o.Sent != nil {
			prev := out.Sent
			out.Sent = func(r int, m *sim.Message) {
				if prev != nil {
					prev(r, m)
				}
				o.Sent(r, m)
			}
		}
		if o.Progress != nil {
			prev := out.Progress
			out.Progress = func(r, delivered int) {
				if prev != nil {
					prev(r, delivered)
				}
				o.Progress(r, delivered)
			}
		}
		if o.Crashed != nil {
			prev := out.Crashed
			out.Crashed = func(r, v int) {
				if prev != nil {
					prev(r, v)
				}
				o.Crashed(r, v)
			}
		}
		if o.Recovered != nil {
			prev := out.Recovered
			out.Recovered = func(r, v int) {
				if prev != nil {
					prev(r, v)
				}
				o.Recovered(r, v)
			}
		}
		if o.Noted != nil {
			prev := out.Noted
			out.Noted = func(r, v int, kind sim.NoteKind) {
				if prev != nil {
					prev(r, v, kind)
				}
				o.Noted(r, v, kind)
			}
		}
		if o.Deliveries != nil {
			prev := out.Deliveries
			out.Deliveries = func(r, first, redundant int) {
				if prev != nil {
					prev(r, first, redundant)
				}
				o.Deliveries(r, first, redundant)
			}
		}
		if o.LinkFaults != nil {
			prev := out.LinkFaults
			out.LinkFaults = func(r, drops, dups int) {
				if prev != nil {
					prev(r, drops, dups)
				}
				o.LinkFaults(r, drops, dups)
			}
		}
		if o.Arrived != nil {
			prev := out.Arrived
			out.Arrived = func(r, v, tok int, seq int64) {
				if prev != nil {
					prev(r, v, tok, seq)
				}
				o.Arrived(r, v, tok, seq)
			}
		}
		if o.Collected != nil {
			prev := out.Collected
			out.Collected = func(r, tok int, seq int64, born int) {
				if prev != nil {
					prev(r, tok, seq, born)
				}
				o.Collected(r, tok, seq, born)
			}
		}
		if o.Stalled != nil {
			prev := out.Stalled
			out.Stalled = func(r int, rep *sim.StallReport) {
				if prev != nil {
					prev(r, rep)
				}
				o.Stalled(r, rep)
			}
		}
		if o.Maintenance != nil {
			prev := out.Maintenance
			out.Maintenance = func(r int, ms sim.MaintenanceStats) {
				if prev != nil {
					prev(r, ms)
				}
				o.Maintenance(r, ms)
			}
		}
		if o.Diverged != nil {
			prev := out.Diverged
			out.Diverged = func(r int, rep *sim.ConvergenceReport) {
				if prev != nil {
					prev(r, rep)
				}
				o.Diverged(r, rep)
			}
		}
		if o.Barrier != nil {
			prev := out.Barrier
			out.Barrier = func(r int, met *sim.Metrics) {
				if prev != nil {
					prev(r, met)
				}
				o.Barrier(r, met)
			}
		}
	}
	return out
}
