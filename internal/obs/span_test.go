package obs

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// runTimed runs Algorithm 1 over tr with a fresh timing sink and returns
// the JSONL bytes, the sink and the engine metrics.
func runTimed(t testing.TB, tr *ctvg.Trace, k, T, workers int, cfg TimingConfig) ([]byte, *Timing, *sim.Metrics) {
	t.Helper()
	assign := token.Spread(tr.N(), k, xrand.New(9))
	var sink bytes.Buffer
	if cfg.Sink == nil {
		cfg.Sink = &sink
	}
	tm := NewTiming(cfg)
	met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: tr.Len(),
		Workers:   workers,
		Timing:    tm,
	})
	if err := tm.Flush(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes(), tm, met
}

func TestTimingRoundSeries(t *testing.T) {
	const n, k, T, rounds = 32, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	raw, tm, met := runTimed(t, tr, k, T, 0, TimingConfig{SampleEvery: 10})

	if tm.Rounds() != met.Rounds {
		t.Fatalf("timing recorded %d rounds, engine ran %d", tm.Rounds(), met.Rounds)
	}
	rows, err := ParseTiming(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != met.Rounds {
		t.Fatalf("parsed %d timing rows, want %d", len(rows), met.Rounds)
	}
	for i, row := range rows {
		if row.Round != i {
			t.Fatalf("row %d has round %d", i, row.Round)
		}
		if len(row.Wall) != int(sim.NumStages) || len(row.CPU) != int(sim.NumStages) {
			t.Fatalf("row %d has %d wall / %d cpu stages, want %d",
				i, len(row.Wall), len(row.CPU), sim.NumStages)
		}
		for st := sim.Stage(0); st < sim.NumStages; st++ {
			if _, ok := row.Wall[st.String()]; !ok {
				t.Fatalf("row %d missing wall stage %q", i, st)
			}
		}
		// Resource samples land exactly on the configured interval.
		if got, want := row.Res != nil, i%10 == 0; got != want {
			t.Fatalf("row %d res presence = %v, want %v", i, got, want)
		}
	}
	// Round 0 always samples, and the arena must have handed something out.
	if rows[0].Res == nil || rows[0].Res.ArenaMsgs == 0 || rows[0].Res.ArenaSetBytes == 0 {
		t.Fatalf("round-0 resource sample missing or empty: %+v", rows[0].Res)
	}
	if tm.Resources().HeapInuse == 0 || tm.Resources().Goroutines == 0 {
		t.Fatalf("final resource sample empty: %+v", tm.Resources())
	}

	// The run breakdown must reconcile with the emitted series, and the
	// engine must have spent real time in the load-bearing stages.
	breaks := tm.Breakdown()
	sum := SummarizeTiming(rows)
	if len(breaks) != int(sim.NumStages) || len(sum) != len(breaks) {
		t.Fatalf("breakdown has %d stages, summary %d, want %d", len(breaks), len(sum), sim.NumStages)
	}
	var share float64
	for i := range breaks {
		if breaks[i] != sum[i] {
			t.Fatalf("stage %s: breakdown %+v != series summary %+v", breaks[i].Stage, breaks[i], sum[i])
		}
		share += breaks[i].Share
	}
	if math.Abs(share-1) > 1e-9 {
		t.Fatalf("stage shares sum to %v, want 1", share)
	}
	for _, st := range []sim.Stage{sim.StageCollect, sim.StageDeliver, sim.StageProgress} {
		if breaks[st].WallNs <= 0 {
			t.Fatalf("stage %s recorded no wall time", st)
		}
	}
	// Serial runs execute shards on the engine goroutine: the shard clock
	// nests inside the wall segment for the fan-out stages (so CPU is
	// positive but no larger than wall), and every other stage reports its
	// wall time as its CPU time.
	for st, b := range breaks {
		switch sim.Stage(st) {
		case sim.StageCollect, sim.StageDeliver:
			if b.CPUNs <= 0 || b.CPUNs > b.WallNs {
				t.Fatalf("serial stage %s: cpu %d outside (0, wall=%d]", b.Stage, b.CPUNs, b.WallNs)
			}
		default:
			if b.CPUNs != b.WallNs {
				t.Fatalf("serial stage %s: cpu %d != wall %d", b.Stage, b.CPUNs, b.WallNs)
			}
		}
	}

	// The table renders one row per stage.
	var tbl strings.Builder
	if err := TimingTable("t", breaks, tm.Rounds()).WriteText(&tbl); err != nil {
		t.Fatal(err)
	}
	for st := sim.Stage(0); st < sim.NumStages; st++ {
		if !strings.Contains(tbl.String(), st.String()) {
			t.Fatalf("timing table missing stage %q:\n%s", st, tbl.String())
		}
	}
}

// TestTimingSerialParallelByteIdentical is the determinism contract of the
// timing stream: with durations normalized away, a serial and a Workers=4
// run over the same trace must emit byte-identical JSONL — same rounds,
// same stage structure, same resource-sample placement. CI re-checks the
// same property end to end through the hinetsim binary.
func TestTimingSerialParallelByteIdentical(t *testing.T) {
	const n, k, T, rounds = 64, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	serial, _, metS := runTimed(t, tr, k, T, 0, TimingConfig{Normalize: true})
	par, _, metP := runTimed(t, tr, k, T, 4, TimingConfig{Normalize: true})
	if metS.Rounds != metP.Rounds || metS.TokensSent != metP.TokensSent {
		t.Fatalf("serial and parallel runs diverged: %v vs %v", metS, metP)
	}
	if !bytes.Equal(serial, par) {
		t.Fatalf("normalized timing JSONL differs between serial and Workers=4:\nserial: %s\npar:    %s",
			firstDiffLine(serial, par), firstDiffLine(par, serial))
	}
	// Normalized output has zeroed durations but intact structure.
	rows, err := ParseTiming(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != metS.Rounds {
		t.Fatalf("normalized stream has %d rows, want %d", len(rows), metS.Rounds)
	}
	for _, row := range rows {
		for st, v := range row.Wall {
			if v != 0 {
				t.Fatalf("normalized wall[%s] = %d, want 0", st, v)
			}
		}
	}
}

// firstDiffLine returns the first line at which a and b differ.
func firstDiffLine(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := range al {
		if i >= len(bl) || !bytes.Equal(al[i], bl[i]) {
			return "line " + string(rune('0'+i%10)) + ": " + string(al[i])
		}
	}
	return ""
}

func TestTimingRegistry(t *testing.T) {
	const n, k, T, rounds = 64, 6, 12, 32
	tr := testTrace(t, n, rounds, T)
	reg := NewRegistry()
	_, tm, met := runTimed(t, tr, k, T, 4, TimingConfig{Registry: reg})

	// Per-stage round histograms carry one observation per round; the
	// cumulative counters must agree with the run breakdown.
	for st := sim.Stage(0); st < sim.NumStages; st++ {
		h := reg.Histogram(`sim_stage_round_ns{stage="`+st.String()+`"}`, "", DurationBuckets)
		if h.Count() != int64(met.Rounds) {
			t.Fatalf("stage %s histogram has %d observations, want %d", st, h.Count(), met.Rounds)
		}
		c := reg.Counter(`sim_stage_wall_ns_total{stage="`+st.String()+`"}`, "")
		if c.Value() != tm.Breakdown()[st].WallNs {
			t.Fatalf("stage %s counter %d != breakdown %d", st, c.Value(), tm.Breakdown()[st].WallNs)
		}
	}
	// Four shards → four per-shard histograms per fan-out stage, each with
	// one observation per round.
	for s := 0; s < 4; s++ {
		for _, stage := range []sim.Stage{sim.StageCollect, sim.StageDeliver} {
			name := `sim_stage_shard_ns{stage="` + stage.String() + `",shard="` +
				string(rune('0'+s)) + `"}`
			h := reg.Histogram(name, "", DurationBuckets)
			if h.Count() != int64(met.Rounds) {
				t.Fatalf("%s has %d observations, want %d", name, h.Count(), met.Rounds)
			}
		}
	}
	var text strings.Builder
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"sim_stage_round_ns", "sim_stage_shard_ns", "sim_stage_wall_ns_total",
		"sim_heap_inuse_bytes", "sim_goroutines", "sim_arena_set_bytes",
	} {
		if !strings.Contains(text.String(), fam) {
			t.Fatalf("exposition missing %s family", fam)
		}
	}
}

// failAfterWriter fails every write once n bytes have been accepted —
// a stand-in for a full disk.
type failAfterWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

func TestTimingSinkErrorPropagates(t *testing.T) {
	const n, k, T, rounds = 32, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	assign := token.Spread(tr.N(), k, xrand.New(9))
	tm := NewTiming(TimingConfig{Sink: &failAfterWriter{n: 8 << 10}})
	sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: tr.Len(),
		Timing:    tm,
	})
	if err := tm.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Flush() = %v, want the sink's write error", err)
	}
	if err := tm.Err(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Err() = %v, want the sink's write error", err)
	}
	// Flush stays idempotent: the same error, not a new one, on re-call.
	if err := tm.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("second Flush() = %v, want the sink's write error", err)
	}
}

func TestTimingOffRunUnchanged(t *testing.T) {
	// A run with timing attached must not change the simulation itself:
	// metrics are bit-identical to an uninstrumented run.
	const n, k, T, rounds = 32, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	assign := token.Spread(tr.N(), k, xrand.New(9))
	plain := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{MaxRounds: tr.Len()})
	_, _, timed := runTimed(t, tr, k, T, 0, TimingConfig{})
	if *plain != *timed {
		t.Fatalf("timing perturbed the run:\nplain %+v\ntimed %+v", plain, timed)
	}
}
