package obs

import (
	"repro/internal/report"
	"repro/internal/sim"
)

// PhaseSummary aggregates a run's RoundEvents over one Algorithm 1 phase —
// the granularity at which Theorem 1 argues (each phase of T >= k + α·L
// rounds advances every head by at least α tokens). Comparing the
// per-phase upload/relay volumes and the delivered delta against that
// argument localises *which* phase a failing run lost ground in.
type PhaseSummary struct {
	Phase  int
	Rounds int
	// Messages / Tokens are the phase's transmission totals; Uploads and
	// Relays single out Algorithm 1's two message kinds (message counts).
	Messages int64
	Tokens   int64
	Uploads  int64
	Relays   int64
	// UploadTokens / RelayTokens are the corresponding token costs.
	UploadTokens int64
	RelayTokens  int64
	// Delivered is the (node, token) pair count at phase end, Gained the
	// delta over the phase, Total the n·k ceiling.
	Delivered int
	Gained    int
	Total     int
	// IdleRounds and StallRounds count rounds with no transmissions and
	// rounds with no delivery progress respectively.
	IdleRounds  int
	StallRounds int
	// Hierarchy churn summed over the phase.
	HeadChanges    int
	Reaffiliations int
	GatewayFlips   int
	Crashes        int
}

// Summarize groups per-round events by their Phase field. Events must be
// in round order (as a Collector emits them).
func Summarize(events []RoundEvent) []PhaseSummary {
	var out []PhaseSummary
	prevDelivered := 0
	for _, e := range events {
		if len(out) == 0 || out[len(out)-1].Phase != e.Phase {
			out = append(out, PhaseSummary{Phase: e.Phase, Total: e.Total})
		}
		p := &out[len(out)-1]
		p.Rounds++
		p.Messages += e.Messages
		p.Tokens += e.Tokens
		p.Uploads += e.MsgsByKind[sim.KindUpload]
		p.Relays += e.MsgsByKind[sim.KindRelay]
		p.UploadTokens += e.TokensByKind[sim.KindUpload]
		p.RelayTokens += e.TokensByKind[sim.KindRelay]
		p.Delivered = e.Delivered
		p.Total = e.Total
		if e.Idle {
			p.IdleRounds++
		}
		if e.Stall > 0 {
			p.StallRounds++
		}
		p.HeadChanges += e.HeadChanges
		p.Reaffiliations += e.Reaffiliations
		p.GatewayFlips += e.GatewayFlips
		p.Crashes += len(e.Crashed)
	}
	for i := range out {
		out[i].Gained = out[i].Delivered - prevDelivered
		prevDelivered = out[i].Delivered
	}
	return out
}

// PhaseTable renders phase summaries as a report table: the phase-by-phase
// breakdown printed by `hinettrace stats`.
func PhaseTable(title string, phases []PhaseSummary) *report.Table {
	tb := report.NewTable(title,
		"phase", "rounds", "msgs", "tokens", "uploads", "relays",
		"delivered", "gained", "progress", "idle", "stall",
		"head-chg", "reaffil", "gw-flip")
	for _, p := range phases {
		progress := "-"
		if p.Total > 0 {
			progress = report.Pct(float64(p.Delivered) / float64(p.Total))
		}
		tb.AddRowf(p.Phase, p.Rounds, p.Messages, p.Tokens, p.Uploads, p.Relays,
			p.Delivered, p.Gained, progress, p.IdleRounds, p.StallRounds,
			p.HeadChanges, p.Reaffiliations, p.GatewayFlips)
	}
	return tb
}
