package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// RoundEvent is one round of derived observability series: the structured
// record emitted (one JSON object per line) by the Collector's sink.
//
// Kind arrays are indexed by sim.MsgKind (broadcast, upload, relay,
// coded); role arrays by ctvg.Role (member, head, gateway, unaffiliated).
type RoundEvent struct {
	// Round is the 0-based engine round.
	Round int
	// Phase is Round / PhaseLen under Algorithm 1's phase structure
	// (0 when no phase length is configured).
	Phase int
	// Messages / Tokens / Bytes are this round's transmission totals.
	Messages int64
	Tokens   int64
	Bytes    int64
	// Per-kind and per-role splits of the same totals.
	MsgsByKind   [sim.NumKinds]int64
	TokensByKind [sim.NumKinds]int64
	MsgsByRole   [sim.NumRoles]int64
	TokensByRole [sim.NumRoles]int64
	// Delivered is the number of (node, token) pairs held after this
	// round's deliveries; Total is the n·k ceiling.
	Delivered int
	Total     int
	// Idle marks a round in which no node transmitted.
	Idle bool
	// Stall counts consecutive rounds (including this one) without
	// delivery progress while dissemination is still incomplete; 0 means
	// this round made progress (or everything was already delivered).
	Stall int
	// Heads is the size of this round's head set V_h; HeadChanges counts
	// nodes whose head-ness flipped since the previous round (Definition
	// 2's stability probe), Reaffiliations counts members that switched
	// clusters (Definition 3), and GatewayFlips counts nodes entering or
	// leaving gateway duty.
	Heads          int
	HeadChanges    int
	Reaffiliations int
	GatewayFlips   int
	// Crashed lists nodes felled by fault injection this round, ascending.
	Crashed []int
	// Recovered lists crashed nodes that rejoined this round, ascending.
	// Rejoining nodes keep their token sets (stable storage) but restart
	// with reset volatile protocol state.
	Recovered []int
	// Drops and Dups count deliveries suppressed / duplicated by link
	// fault injection this round.
	Drops int64
	Dups  int64
	// Handovers counts members that promoted themselves to acting cluster
	// head this round (failover protocols only); FloodFallbacks counts
	// nodes that escalated to blind flooding.
	Handovers      int
	FloodFallbacks int
	// FirstDeliveries / RedundantDeliveries carry the provenance tracer's
	// per-round accounting: (node, token) pairs first acquired this round,
	// and cost-bearing messages that taught their receiver nothing. Both
	// stay 0 unless the run attached a sim.Tracer.
	FirstDeliveries     int
	RedundantDeliveries int
	// Arrivals / Collected count, in arrival-mode runs, the tokens injected
	// by the arrival process this round and the tokens garbage-collected at
	// this round's barrier. Outstanding is the live token count after the
	// barrier (Total then equals N · Outstanding). All stay 0 with
	// arrivals off.
	Arrivals    int
	Collected   int
	Outstanding int
	// Elections / Adoptions / HeadMerges / Beacons carry the
	// self-stabilizing clustering protocol's per-round repair account in
	// emergent-hierarchy runs (sim.Options.SelfStabilize): nodes electing
	// themselves head, orphans joining a cluster, heads abdicating to a
	// lower-ID neighbour, and the maintenance beacons spent doing it.
	// StabValid reports whether the emergent hierarchy was valid this
	// round; Reconverge, when positive, is the length of the invalid
	// streak this round ended (the protocol's rounds-to-reconverge). All
	// stay zero (and StabValid false) with self-stabilization off.
	Elections  int
	Adoptions  int
	HeadMerges int
	Beacons    int
	StabValid  bool
	Reconverge int
	// Stalled marks the round on which the engine's stall watchdog
	// terminated the run (at most one event per run has it set).
	Stalled bool
}

// ProgressRatio returns Delivered/Total in [0, 1] (0 when Total is 0).
func (e *RoundEvent) ProgressRatio() float64 {
	if e.Total <= 0 {
		return 0
	}
	return float64(e.Delivered) / float64(e.Total)
}

var kindNames = [sim.NumKinds]string{"broadcast", "upload", "relay", "coded"}
var roleNames = [sim.NumRoles]string{"member", "head", "gateway", "unaffiliated"}

// appendCounts renders {"broadcast":1,...} style objects without reflection.
func appendCounts(b []byte, names *[4]string, counts *[4]int64) []byte {
	b = append(b, '{')
	for i := range names {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, names[i]...)
		b = append(b, '"', ':')
		b = strconv.AppendInt(b, counts[i], 10)
	}
	return append(b, '}')
}

// AppendJSON appends the event as one JSON object (no trailing newline) to
// buf and returns the extended slice. Key order is fixed, so equal events
// encode to equal bytes — the property the serial-vs-parallel determinism
// tests assert on.
func (e *RoundEvent) AppendJSON(buf []byte) []byte {
	b := buf
	b = append(b, `{"round":`...)
	b = strconv.AppendInt(b, int64(e.Round), 10)
	b = append(b, `,"phase":`...)
	b = strconv.AppendInt(b, int64(e.Phase), 10)
	b = append(b, `,"msgs":`...)
	b = strconv.AppendInt(b, e.Messages, 10)
	b = append(b, `,"tokens":`...)
	b = strconv.AppendInt(b, e.Tokens, 10)
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, e.Bytes, 10)
	b = append(b, `,"msgs_kind":`...)
	b = appendCounts(b, &kindNames, &e.MsgsByKind)
	b = append(b, `,"tokens_kind":`...)
	b = appendCounts(b, &kindNames, &e.TokensByKind)
	b = append(b, `,"msgs_role":`...)
	b = appendCounts(b, &roleNames, &e.MsgsByRole)
	b = append(b, `,"tokens_role":`...)
	b = appendCounts(b, &roleNames, &e.TokensByRole)
	b = append(b, `,"delivered":`...)
	b = strconv.AppendInt(b, int64(e.Delivered), 10)
	b = append(b, `,"total":`...)
	b = strconv.AppendInt(b, int64(e.Total), 10)
	b = append(b, `,"progress":`...)
	b = strconv.AppendFloat(b, e.ProgressRatio(), 'f', 6, 64)
	b = append(b, `,"idle":`...)
	b = strconv.AppendBool(b, e.Idle)
	b = append(b, `,"stall":`...)
	b = strconv.AppendInt(b, int64(e.Stall), 10)
	b = append(b, `,"heads":`...)
	b = strconv.AppendInt(b, int64(e.Heads), 10)
	b = append(b, `,"head_changes":`...)
	b = strconv.AppendInt(b, int64(e.HeadChanges), 10)
	b = append(b, `,"reaffiliations":`...)
	b = strconv.AppendInt(b, int64(e.Reaffiliations), 10)
	b = append(b, `,"gateway_flips":`...)
	b = strconv.AppendInt(b, int64(e.GatewayFlips), 10)
	b = append(b, `,"crashed":[`...)
	for i, v := range e.Crashed {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	b = append(b, `],"recovered":[`...)
	for i, v := range e.Recovered {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	b = append(b, `],"drops":`...)
	b = strconv.AppendInt(b, e.Drops, 10)
	b = append(b, `,"dups":`...)
	b = strconv.AppendInt(b, e.Dups, 10)
	b = append(b, `,"handover":`...)
	b = strconv.AppendInt(b, int64(e.Handovers), 10)
	b = append(b, `,"flood_fallback":`...)
	b = strconv.AppendInt(b, int64(e.FloodFallbacks), 10)
	b = append(b, `,"first_deliveries":`...)
	b = strconv.AppendInt(b, int64(e.FirstDeliveries), 10)
	b = append(b, `,"redundant_deliveries":`...)
	b = strconv.AppendInt(b, int64(e.RedundantDeliveries), 10)
	b = append(b, `,"arrivals":`...)
	b = strconv.AppendInt(b, int64(e.Arrivals), 10)
	b = append(b, `,"collected":`...)
	b = strconv.AppendInt(b, int64(e.Collected), 10)
	b = append(b, `,"outstanding":`...)
	b = strconv.AppendInt(b, int64(e.Outstanding), 10)
	b = append(b, `,"elections":`...)
	b = strconv.AppendInt(b, int64(e.Elections), 10)
	b = append(b, `,"adoptions":`...)
	b = strconv.AppendInt(b, int64(e.Adoptions), 10)
	b = append(b, `,"head_merges":`...)
	b = strconv.AppendInt(b, int64(e.HeadMerges), 10)
	b = append(b, `,"beacons":`...)
	b = strconv.AppendInt(b, int64(e.Beacons), 10)
	b = append(b, `,"stab_valid":`...)
	b = strconv.AppendBool(b, e.StabValid)
	b = append(b, `,"reconverge":`...)
	b = strconv.AppendInt(b, int64(e.Reconverge), 10)
	b = append(b, `,"stalled":`...)
	b = strconv.AppendBool(b, e.Stalled)
	b = append(b, '}')
	return b
}

// eventJSON mirrors the wire schema for decoding.
type eventJSON struct {
	Round          int              `json:"round"`
	Phase          int              `json:"phase"`
	Msgs           int64            `json:"msgs"`
	Tokens         int64            `json:"tokens"`
	Bytes          int64            `json:"bytes"`
	MsgsKind       map[string]int64 `json:"msgs_kind"`
	TokensKind     map[string]int64 `json:"tokens_kind"`
	MsgsRole       map[string]int64 `json:"msgs_role"`
	TokensRole     map[string]int64 `json:"tokens_role"`
	Delivered      int              `json:"delivered"`
	Total          int              `json:"total"`
	Idle           bool             `json:"idle"`
	Stall          int              `json:"stall"`
	Heads          int              `json:"heads"`
	HeadChanges    int              `json:"head_changes"`
	Reaffiliations int              `json:"reaffiliations"`
	GatewayFlips   int              `json:"gateway_flips"`
	Crashed        []int            `json:"crashed"`
	Recovered      []int            `json:"recovered"`
	Drops          int64            `json:"drops"`
	Dups           int64            `json:"dups"`
	Handovers      int              `json:"handover"`
	FloodFallbacks int              `json:"flood_fallback"`
	FirstDeliv     int              `json:"first_deliveries"`
	RedundantDeliv int              `json:"redundant_deliveries"`
	Arrivals       int              `json:"arrivals"`
	Collected      int              `json:"collected"`
	Outstanding    int              `json:"outstanding"`
	Elections      int              `json:"elections"`
	Adoptions      int              `json:"adoptions"`
	HeadMerges     int              `json:"head_merges"`
	Beacons        int              `json:"beacons"`
	StabValid      bool             `json:"stab_valid"`
	Reconverge     int              `json:"reconverge"`
	Stalled        bool             `json:"stalled"`
}

func fillCounts(dst *[4]int64, names *[4]string, src map[string]int64) {
	for i, n := range names {
		dst[i] = src[n]
	}
}

// ParseEvents decodes a JSONL event stream written by a Collector.
func ParseEvents(r io.Reader) ([]RoundEvent, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []RoundEvent
	for dec.More() {
		var ej eventJSON
		if err := dec.Decode(&ej); err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", len(out), err)
		}
		e := RoundEvent{
			Round:               ej.Round,
			Phase:               ej.Phase,
			Messages:            ej.Msgs,
			Tokens:              ej.Tokens,
			Bytes:               ej.Bytes,
			Delivered:           ej.Delivered,
			Total:               ej.Total,
			Idle:                ej.Idle,
			Stall:               ej.Stall,
			Heads:               ej.Heads,
			HeadChanges:         ej.HeadChanges,
			Reaffiliations:      ej.Reaffiliations,
			GatewayFlips:        ej.GatewayFlips,
			Crashed:             ej.Crashed,
			Recovered:           ej.Recovered,
			Drops:               ej.Drops,
			Dups:                ej.Dups,
			Handovers:           ej.Handovers,
			FloodFallbacks:      ej.FloodFallbacks,
			FirstDeliveries:     ej.FirstDeliv,
			RedundantDeliveries: ej.RedundantDeliv,
			Arrivals:            ej.Arrivals,
			Collected:           ej.Collected,
			Outstanding:         ej.Outstanding,
			Elections:           ej.Elections,
			Adoptions:           ej.Adoptions,
			HeadMerges:          ej.HeadMerges,
			Beacons:             ej.Beacons,
			StabValid:           ej.StabValid,
			Reconverge:          ej.Reconverge,
			Stalled:             ej.Stalled,
		}
		fillCounts(&e.MsgsByKind, &kindNames, ej.MsgsKind)
		fillCounts(&e.TokensByKind, &kindNames, ej.TokensKind)
		fillCounts(&e.MsgsByRole, &roleNames, ej.MsgsRole)
		fillCounts(&e.TokensByRole, &roleNames, ej.TokensRole)
		out = append(out, e)
	}
	return out, nil
}
