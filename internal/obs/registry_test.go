package obs

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "things")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	if r.Counter("x_total", "ignored") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("y", "level")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge %d, want 5", g.Value())
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type conflict")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0, 1, 2, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 110 {
		t.Fatalf("sum %v", h.Sum())
	}
	// Cumulative: le=1 -> 2 (0, 1), le=5 -> 3 (+2), le=10 -> 4 (+7), +Inf -> 5.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	// Ten observations land in (0, 10] and ten in (10, 20]; under the
	// uniform-within-bucket assumption the distribution is effectively
	// uniform on (0, 20], so quantiles interpolate linearly.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 0},
		{0.25, 5},
		{0.5, 10},
		{0.75, 15},
		{0.9, 15}, // interpolation says 18, capped at the max observation
		{1, 15},   // likewise capped (nothing above 15 was ever observed)
		{-3, 0},   // clamps to q=0
		{7, 15},   // clamps to q=1, then caps at the max
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty histogram and NaN rank both yield NaN.
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram Quantile = %v, want NaN", got)
	}
	h.Observe(1.5)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}

	// Ranks landing in the implicit +Inf bucket return the tracked maximum
	// observation — clamping to the highest finite bound would report a
	// p99 of 2 for a distribution whose tail actually reached 100.
	inf := NewHistogram([]float64{1, 2})
	inf.Observe(100)
	if got := inf.Quantile(0.99); got != 100 {
		t.Fatalf("+Inf-bucket quantile = %v, want max observation 100", got)
	}

	// A boundless count/sum histogram falls back to the mean.
	mean := NewHistogram(nil)
	mean.Observe(3)
	mean.Observe(5)
	if got := mean.Quantile(0.9); got != 4 {
		t.Fatalf("boundless quantile = %v, want mean 4", got)
	}

	// A first bucket with a non-positive upper edge cannot interpolate
	// from 0 and collapses to its bound.
	zero := NewHistogram([]float64{0, 5})
	zero.Observe(0)
	if got := zero.Quantile(0.5); got != 0 {
		t.Fatalf("zero-bound quantile = %v, want 0", got)
	}

	// The extreme ranks on an empty histogram are still NaN — clamping
	// must not manufacture a value from zero observations.
	for _, q := range []float64{0, 1} {
		if got := h2empty().Quantile(q); !math.IsNaN(got) {
			t.Fatalf("empty Quantile(%v) = %v, want NaN", q, got)
		}
	}
}

func h2empty() *Histogram { return NewHistogram([]float64{1, 2}) }

func TestHistogramOverflowBucketQuantiles(t *testing.T) {
	// Regression for the tail-latency understatement: with observations in
	// the implicit +Inf bucket, high quantiles must reflect the real tail,
	// not the top finite edge.
	h := NewHistogram([]float64{10, 20})
	for i := 0; i < 98; i++ {
		h.Observe(5)
	}
	h.Observe(500)
	h.Observe(900)
	// Rank 99 of 100 is the first +Inf-bucket rank; the old clamp answered
	// 20 here, hiding a 45x tail.
	if got := h.Quantile(0.99); got != 900 {
		t.Fatalf("p99 = %v, want max observation 900", got)
	}
	if got := h.Quantile(1); got != 900 {
		t.Fatalf("p100 = %v, want 900", got)
	}
	// Ranks inside the finite buckets are untouched by the max tracking.
	if got := h.Quantile(0.5); math.Abs(got-float64(50)/98*10) > 1e-9 {
		t.Fatalf("p50 = %v, want interpolation inside (0,10]", got)
	}

	// Every observation in the overflow bucket: all quantiles report max.
	all := NewHistogram([]float64{1})
	all.Observe(7)
	all.Observe(9)
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := all.Quantile(q); got != 9 {
			t.Fatalf("all-overflow Quantile(%v) = %v, want 9", q, got)
		}
	}

	// Max is exposed directly, and NaN while empty.
	if got := all.Max(); got != 9 {
		t.Fatalf("Max = %v, want 9", got)
	}
	if got := h2empty().Max(); !math.IsNaN(got) {
		t.Fatalf("empty Max = %v, want NaN", got)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	// One finite bound, every observation inside it: q=0 pins the lower
	// edge, interior ranks interpolate linearly across the single bucket,
	// and the max observation caps whatever the interpolation claims above
	// it (the bucket alone would answer 8 for q=1 when nothing above 3 was
	// ever observed).
	h := NewHistogram([]float64{8})
	for i := 0; i < 4; i++ {
		h.Observe(3)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 0}, {0.25, 2}, {0.5, 3}, {1, 3},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("single-bucket Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// A single observation: every rank collapses onto it once the cap
	// bites; low ranks still interpolate from the bucket's lower edge.
	one := NewHistogram([]float64{8})
	one.Observe(5)
	if got := one.Quantile(0); got != 0 {
		t.Fatalf("single-obs Quantile(0) = %v, want 0", got)
	}
	if got := one.Quantile(1); got != 5 {
		t.Fatalf("single-obs Quantile(1) = %v, want max observation 5", got)
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`m_total{kind="a"}`, "a metric").Add(3)
	r.Counter(`m_total{kind="b"}`, "a metric").Add(4)
	r.Gauge("level", "current level").Set(-2)
	h := r.Histogram("lat", "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP m_total a metric",
		"# TYPE m_total counter",
		`m_total{kind="a"} 3`,
		`m_total{kind="b"} 4`,
		"# TYPE level gauge",
		"level -2",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 1`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 20.5",
		"lat_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The family comment must appear exactly once despite two label sets.
	if strings.Count(out, "# TYPE m_total counter") != 1 {
		t.Fatalf("duplicated family comments:\n%s", out)
	}
}

func TestInstrumentHotPathNoAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", RoundBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(17)
	}); n != 0 {
		t.Fatalf("instrument updates allocate %.1f times per op", n)
	}
}
