package obs

import (
	"strings"
	"testing"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "things")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	if r.Counter("x_total", "ignored") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("y", "level")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge %d, want 5", g.Value())
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type conflict")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0, 1, 2, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 110 {
		t.Fatalf("sum %v", h.Sum())
	}
	// Cumulative: le=1 -> 2 (0, 1), le=5 -> 3 (+2), le=10 -> 4 (+7), +Inf -> 5.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`m_total{kind="a"}`, "a metric").Add(3)
	r.Counter(`m_total{kind="b"}`, "a metric").Add(4)
	r.Gauge("level", "current level").Set(-2)
	h := r.Histogram("lat", "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP m_total a metric",
		"# TYPE m_total counter",
		`m_total{kind="a"} 3`,
		`m_total{kind="b"} 4`,
		"# TYPE level gauge",
		"level -2",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 1`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 20.5",
		"lat_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The family comment must appear exactly once despite two label sets.
	if strings.Count(out, "# TYPE m_total counter") != 1 {
		t.Fatalf("duplicated family comments:\n%s", out)
	}
}

func TestInstrumentHotPathNoAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", RoundBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(17)
	}); n != 0 {
		t.Fatalf("instrument updates allocate %.1f times per op", n)
	}
}
