// Package obs is the structured observability layer of the simulator: a
// typed metrics registry, a per-round JSONL event stream, and a Collector
// that turns the engine's sim.Observer callbacks into both.
//
// The paper's evaluation is an accounting argument — communication cost by
// message kind and sender role, per-phase progress of Algorithm 1, and the
// (T, L)-HiNet stability assumptions that justify the Theorem 1 bound
// T >= k + α·L. This package makes every term of that argument observable
// per round: tokens and messages by kind and role, upload/relay counts per
// phase, idle-round and stall detection, convergence progress as
// delivered-(node, token)-pairs out of n·k, and hierarchy-churn gauges
// (head-set changes, re-affiliations, gateway flips) that connect the
// observed dynamics back to the stability assumptions.
//
// Design constraints: the hot path (one callback per message) performs no
// heap allocation, and the emitted byte stream is deterministic — a
// Workers > 1 run produces output byte-identical to the serial engine on
// the same inputs (the engine merges shard-local observer buffers at each
// round barrier in (round, sender) order).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; increments are atomic and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 for the exposition to stay meaningful).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use; updates are atomic and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bounds are upper bucket edges, ascending, with an implicit +Inf
// bucket. Observations are atomic and allocation-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; buckets[i] counts v <= bounds[i]
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	maxBits atomic.Uint64 // float64 bits of the largest observation (-Inf when empty)
}

// NewHistogram builds a histogram with the given upper bounds (ascending;
// the +Inf bucket is implicit). An empty bounds slice yields a pure
// count/sum histogram.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// RoundBuckets is the default bucket layout for per-round count
// distributions (messages or tokens per round).
var RoundBuckets = []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// LatencyBuckets is the default bucket layout for round-denominated
// latency distributions (token arrival to garbage collection).
var LatencyBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 512, 1024}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest observation, or NaN on an empty histogram.
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return math.NaN()
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (q clamped to [0, 1]) by linear
// interpolation within the bucket containing the target rank, in the style
// of Prometheus' histogram_quantile: each bucket's observations are
// assumed uniformly spread between its lower and upper edge (the first
// bucket interpolates from 0, or collapses to its bound when that bound is
// ≤ 0). The tracked maximum bounds the estimate on both sides of the top:
// ranks landing in the implicit +Inf bucket return it (the bucket has no
// upper edge, so clamping to the highest finite bound would silently
// understate the tail), and finite-bucket interpolation is capped at it (a
// sparse top bucket would otherwise report a p99 above the largest
// observation ever made). It returns NaN on an empty histogram, and the
// mean for a boundless count/sum histogram.
func (h *Histogram) Quantile(q float64) float64 {
	count := h.count.Load()
	if count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	if len(h.bounds) == 0 {
		return h.Sum() / float64(count)
	}
	v := h.interpolate(q * float64(count))
	if m := h.Max(); v > m {
		return m
	}
	return v
}

// interpolate locates the bucket containing rank and interpolates inside
// it; ranks past every finite bucket yield +Inf for Quantile to cap.
func (h *Histogram) interpolate(rank float64) float64 {
	var cum int64
	for i, upper := range h.bounds {
		bc := h.buckets[i].Load()
		if float64(cum+bc) >= rank {
			if bc == 0 {
				// The rank lands exactly on a cumulative boundary of an
				// empty bucket; its upper edge is the tightest claim.
				return upper
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			} else if upper <= 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-float64(cum))/float64(bc)
		}
		cum += bc
	}
	return math.Inf(1)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// kindOf tags a registry entry for the exposition writer.
type metricKind byte

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric. name may carry a Prometheus label set in
// braces, e.g. `sim_messages_total{kind="upload"}`; entries sharing a base
// name form one family in the exposition.
type entry struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is cheap but synchronised; hold on to
// the returned instrument and update it directly on the hot path.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name with a different metric type panics.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.lookup(name, help, kindCounter)
	return e.c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.lookup(name, help, kindGauge)
	return e.g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		if r.entries[i].kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different type", name))
		}
		return r.entries[i].h
	}
	e := entry{name: name, help: help, kind: kindHistogram, h: NewHistogram(bounds)}
	r.byName[name] = len(r.entries)
	r.entries = append(r.entries, e)
	return e.h
}

func (r *Registry) lookup(name, help string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		if r.entries[i].kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different type", name))
		}
		return &r.entries[i]
	}
	e := entry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	}
	r.byName[name] = len(r.entries)
	r.entries = append(r.entries, e)
	return &r.entries[len(r.entries)-1]
}

// baseName strips a trailing {label="..."} set, yielding the family name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel merges an extra label into a possibly-labelled metric name:
// withLabel(`m{a="1"}`, `le="5"`) == `m{a="1",le="5"}`.
func withLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (help and type comments once per family, samples in
// registration order).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	typeName := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}
	seenFamily := map[string]bool{}
	for _, e := range entries {
		fam := baseName(e.name)
		if !seenFamily[fam] {
			seenFamily[fam] = true
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", fam, e.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, typeName[e.kind])
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.g.Value())
		case kindHistogram:
			suffixed := func(suffix string) string {
				if i := strings.IndexByte(e.name, '{'); i >= 0 {
					return e.name[:i] + suffix + e.name[i:]
				}
				return e.name + suffix
			}
			cum := int64(0)
			for i, b := range e.h.bounds {
				cum += e.h.buckets[i].Load()
				fmt.Fprintf(bw, "%s %d\n", withLabel(suffixed("_bucket"), `le="`+formatFloat(b)+`"`), cum)
			}
			cum += e.h.buckets[len(e.h.bounds)].Load()
			fmt.Fprintf(bw, "%s %d\n", withLabel(suffixed("_bucket"), `le="+Inf"`), cum)
			fmt.Fprintf(bw, "%s %s\n", suffixed("_sum"), formatFloat(e.h.Sum()))
			fmt.Fprintf(bw, "%s %d\n", suffixed("_count"), e.h.Count())
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
