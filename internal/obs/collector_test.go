package obs

import (
	"bytes"
	"errors"
	"slices"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// testTrace freezes a churning (T, L)-HiNet so serial and parallel runs
// see the exact same dynamics.
func testTrace(t testing.TB, n, rounds, T int) *ctvg.Trace {
	t.Helper()
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: n / 4, L: 2, T: T,
		Reaffiliations: 2, ChurnEdges: 4,
	}, xrand.New(3))
	return ctvg.Record(adv, rounds)
}

// runCollected runs Algorithm 1 over tr with a fresh collector and returns
// the JSONL bytes plus the collector itself.
func runCollected(t testing.TB, tr *ctvg.Trace, k, T, workers int, reg *Registry) ([]byte, *Collector, *sim.Metrics) {
	t.Helper()
	assign := token.Spread(tr.N(), k, xrand.New(9))
	var sink bytes.Buffer
	col := NewCollector(Config{
		N: tr.N(), K: k, PhaseLen: T,
		Sink: &sink, SizeFn: wire.Size, Registry: reg, Keep: true,
	})
	met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: tr.Len(),
		Observer:  col.Observer(),
		SizeFn:    wire.Size,
		Workers:   workers,
	})
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes(), col, met
}

func TestCollectorRoundSeries(t *testing.T) {
	const n, k, T, rounds = 32, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	reg := NewRegistry()
	raw, col, met := runCollected(t, tr, k, T, 0, reg)

	events := col.Events()
	if len(events) != rounds {
		t.Fatalf("%d events, want %d", len(events), rounds)
	}
	var totMsgs, totTokens, totBytes int64
	prevDelivered := 0
	for i, e := range events {
		if e.Round != i {
			t.Fatalf("event %d has round %d", i, e.Round)
		}
		if e.Phase != i/T {
			t.Fatalf("round %d phase %d, want %d", i, e.Phase, i/T)
		}
		if e.Total != n*k {
			t.Fatalf("round %d total %d, want %d", i, e.Total, n*k)
		}
		if e.Delivered < prevDelivered {
			t.Fatalf("round %d delivered %d regressed below %d", i, e.Delivered, prevDelivered)
		}
		prevDelivered = e.Delivered
		if e.Idle != (e.Messages == 0) {
			t.Fatalf("round %d idle flag inconsistent", i)
		}
		var kindMsgs, roleMsgs int64
		for j := 0; j < sim.NumKinds; j++ {
			kindMsgs += e.MsgsByKind[j]
		}
		for j := 0; j < sim.NumRoles; j++ {
			roleMsgs += e.MsgsByRole[j]
		}
		if kindMsgs != e.Messages || roleMsgs != e.Messages {
			t.Fatalf("round %d splits don't sum: kinds=%d roles=%d msgs=%d", i, kindMsgs, roleMsgs, e.Messages)
		}
		totMsgs += e.Messages
		totTokens += e.Tokens
		totBytes += e.Bytes
	}
	// The event stream must reconcile exactly with the engine's metrics.
	if totMsgs != met.Messages || totTokens != met.TokensSent || totBytes != met.BytesSent {
		t.Fatalf("series totals (%d, %d, %d) != metrics (%d, %d, %d)",
			totMsgs, totTokens, totBytes, met.Messages, met.TokensSent, met.BytesSent)
	}
	// Algorithm 1 on a clustered network must attribute uploads to members
	// and relays to heads/gateways.
	var uploads, relays int64
	for _, e := range events {
		uploads += e.MsgsByKind[sim.KindUpload]
		relays += e.MsgsByKind[sim.KindRelay]
	}
	if uploads == 0 || relays == 0 {
		t.Fatalf("expected both uploads (%d) and relays (%d)", uploads, relays)
	}

	// JSONL round-trips through ParseEvents.
	parsed, err := ParseEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(events))
	}
	for i := range parsed {
		a, b := parsed[i], events[i]
		if len(a.Crashed) != len(b.Crashed) {
			t.Fatalf("event %d crash list changed over the wire", i)
		}
		a.Crashed, b.Crashed = nil, nil
		var ab, bb bytes.Buffer
		ab.Write(a.AppendJSON(nil))
		bb.Write(b.AppendJSON(nil))
		if ab.String() != bb.String() {
			t.Fatalf("event %d changed over the wire:\n%s\n%s", i, ab.String(), bb.String())
		}
	}

	// Registry totals agree with the engine.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"sim_messages_total " + itoa(met.Messages),
		"sim_tokens_total " + itoa(met.TokensSent),
		"sim_bytes_total " + itoa(met.BytesSent),
		`sim_messages_kind_total{kind="upload"} ` + itoa(met.MessagesByKind[sim.KindUpload]),
		`sim_tokens_role_total{role="head"} ` + itoa(met.TokensByRole[ctvg.Head]),
		"sim_rounds_total " + itoa(int64(rounds)),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func itoa(v int64) string {
	var b []byte
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestParallelEventStreamByteIdentical(t *testing.T) {
	// The acceptance criterion: Workers > 1 with a collector produces a
	// JSONL stream byte-identical to the serial engine on the same seed.
	const n, k, T, rounds = 48, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	serial, _, smet := runCollected(t, tr, k, T, 0, nil)
	for _, workers := range []int{2, 4, 7} {
		par, _, pmet := runCollected(t, tr, k, T, workers, nil)
		if smet.String() != pmet.String() {
			t.Fatalf("workers=%d: metrics diverge: %v vs %v", workers, smet, pmet)
		}
		if !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d: event stream diverges from serial", workers)
		}
	}
	if len(serial) == 0 {
		t.Fatal("empty event stream")
	}
}

func TestCollectorCrashEvents(t *testing.T) {
	// Crashes must appear in the round event, ascending, and feed the
	// crash counter.
	tr := testTrace(t, 16, 10, 5)
	assign := token.Spread(16, 3, xrand.New(1))
	reg := NewRegistry()
	col := NewCollector(Config{N: 16, K: 3, PhaseLen: 5, Registry: reg, Keep: true})
	sim.MustRunProtocol(tr, core.Alg1{T: 5}, assign, sim.Options{
		MaxRounds: 10,
		Observer:  col.Observer(),
		Faults:    &sim.Faults{CrashAt: map[int]int{5: 2, 3: 2, 9: 0}},
	})
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if got := events[0].Crashed; len(got) != 1 || got[0] != 9 {
		t.Fatalf("round 0 crashes %v, want [9]", got)
	}
	if got := events[2].Crashed; len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("round 2 crashes %v, want [3 5]", got)
	}
	if c := reg.Counter("sim_crashes_total", ""); c.Value() != 3 {
		t.Fatalf("crash counter %d, want 3", c.Value())
	}
}

func TestCrashRecoveryListsSortedDeduped(t *testing.T) {
	// Regression for the sharded-collector normalisation: the engine emits
	// crash/recovery callbacks sorted and once each, but a combined observer
	// chain or a replayed trace may not — and duplicated entries would skew
	// the provenance layer's redundancy accounting and the crash counters.
	// The collector must sort and deduplicate before the event is finalised.
	reg := NewRegistry()
	col := NewCollector(Config{N: 8, K: 2, Registry: reg, Keep: true})
	o := col.Observer()
	o.Crashed(0, 5)
	o.Crashed(0, 3)
	o.Crashed(0, 5) // duplicate
	o.Crashed(0, 1)
	o.Recovered(1, 4)
	o.Recovered(1, 4) // duplicate
	o.Recovered(1, 2)
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	if got := events[0].Crashed; !slices.Equal(got, []int{1, 3, 5}) {
		t.Fatalf("round 0 crashes %v, want sorted deduped [1 3 5]", got)
	}
	if got := events[1].Recovered; !slices.Equal(got, []int{2, 4}) {
		t.Fatalf("round 1 recoveries %v, want sorted deduped [2 4]", got)
	}
	// The counters must see the normalised lists, not the raw callbacks.
	if c := reg.Counter("sim_crashes_total", ""); c.Value() != 3 {
		t.Fatalf("crash counter %d, want 3", c.Value())
	}
	if c := reg.Counter("sim_recoveries_total", ""); c.Value() != 2 {
		t.Fatalf("recovery counter %d, want 2", c.Value())
	}
}

// stubTracer drives the engine's delivery accounting with fixed per-round
// counts so the obs plumbing can be tested without importing the provenance
// package (which depends on obs and would cycle).
type stubTracer struct{ first, redundant int }

func (s *stubTracer) RunStart(n, k, shards int, nodes []sim.Node) {}
func (s *stubTracer) RoundStart(r int, hier *ctvg.Hierarchy)      {}
func (s *stubTracer) Delivered(shard, v int, vw *sim.View, inbox []*sim.Message, tokens *bitset.Set) {
}
func (s *stubTracer) RoundEnd(r int, crashed []bool) (int, int) { return s.first, s.redundant }

func TestDeliveriesFlowThroughEvents(t *testing.T) {
	// Tracer-reported delivery counts must reach the round events, the
	// JSONL stream (surviving a ParseEvents round trip) and the registry.
	const n, k, T, rounds = 16, 3, 5, 10
	tr := testTrace(t, n, rounds, T)
	assign := token.Spread(n, k, xrand.New(2))
	reg := NewRegistry()
	var sink bytes.Buffer
	col := NewCollector(Config{N: n, K: k, PhaseLen: T, Sink: &sink, Registry: reg, Keep: true})
	met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: rounds,
		Observer:  col.Observer(),
		Tracer:    &stubTracer{first: 3, redundant: 2},
	})
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	if met.FirstDeliveries != 3*int64(met.Rounds) || met.RedundantDeliveries != 2*int64(met.Rounds) {
		t.Fatalf("engine metrics (%d, %d) don't fold the tracer counts over %d rounds",
			met.FirstDeliveries, met.RedundantDeliveries, met.Rounds)
	}
	events := col.Events()
	if len(events) != met.Rounds {
		t.Fatalf("%d events, want %d", len(events), met.Rounds)
	}
	for i, e := range events {
		if e.FirstDeliveries != 3 || e.RedundantDeliveries != 2 {
			t.Fatalf("event %d carries (%d, %d), want (3, 2)", i, e.FirstDeliveries, e.RedundantDeliveries)
		}
	}
	raw := sink.Bytes()
	if !bytes.Contains(raw, []byte(`"first_deliveries":3`)) ||
		!bytes.Contains(raw, []byte(`"redundant_deliveries":2`)) {
		t.Fatalf("JSONL missing delivery fields:\n%s", raw)
	}
	parsed, err := ParseEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i := range parsed {
		if parsed[i].FirstDeliveries != events[i].FirstDeliveries ||
			parsed[i].RedundantDeliveries != events[i].RedundantDeliveries {
			t.Fatalf("event %d delivery fields changed over the wire", i)
		}
	}
	if c := reg.Counter("sim_first_deliveries_total", ""); c.Value() != met.FirstDeliveries {
		t.Fatalf("first-delivery counter %d, want %d", c.Value(), met.FirstDeliveries)
	}
	if c := reg.Counter("sim_redundant_deliveries_total", ""); c.Value() != met.RedundantDeliveries {
		t.Fatalf("redundant-delivery counter %d, want %d", c.Value(), met.RedundantDeliveries)
	}
}

func TestStallEventUnderParallelEngine(t *testing.T) {
	// Crashing the whole population stalls dissemination; the watchdog's
	// report and the collector's stalled/stall fields must agree, and the
	// parallel engine must emit an event stream byte-identical to serial.
	const n, k, T, window = 16, 3, 5, 4
	tr := testTrace(t, n, 40, T)
	assign := token.Spread(n, k, xrand.New(4))
	crashAll := map[int]int{}
	for v := 0; v < n; v++ {
		crashAll[v] = 2
	}
	run := func(workers int) ([]byte, []RoundEvent, *sim.Metrics, *Registry) {
		reg := NewRegistry()
		var sink bytes.Buffer
		col := NewCollector(Config{N: n, K: k, PhaseLen: T, Sink: &sink, Registry: reg, Keep: true})
		met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
			MaxRounds:   40,
			StallWindow: window,
			Workers:     workers,
			Observer:    col.Observer(),
			Faults:      &sim.Faults{CrashAt: crashAll},
		})
		if err := col.Flush(); err != nil {
			t.Fatal(err)
		}
		return sink.Bytes(), col.Events(), met, reg
	}
	serialRaw, events, met, reg := run(0)
	if met.Complete || met.Stall == nil {
		t.Fatalf("run did not stall: %v", met)
	}
	// The report renders every population term.
	s := met.Stall.String()
	for _, want := range []string{
		"stalled at round", "no progress for 4 rounds",
		"0 live", "16 down", "0 pending recovery",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("StallReport %q missing %q", s, want)
		}
	}
	// Exactly the final event is marked stalled, its round matches the
	// report, and its Stall streak covers the watchdog window.
	last := events[len(events)-1]
	if !last.Stalled || last.Round != met.Stall.Round {
		t.Fatalf("final event %+v does not record the stall at round %d", last, met.Stall.Round)
	}
	if last.Stall < window {
		t.Fatalf("final event stall streak %d < window %d", last.Stall, window)
	}
	for _, e := range events[:len(events)-1] {
		if e.Stalled {
			t.Fatalf("round %d marked stalled before the watchdog fired", e.Round)
		}
	}
	if c := reg.Counter("sim_stalled_runs_total", ""); c.Value() != 1 {
		t.Fatalf("stalled-runs counter %d, want 1", c.Value())
	}
	if !bytes.Contains(serialRaw, []byte(`"stalled":true`)) {
		t.Fatalf("JSONL stream does not mark the stalled round:\n%s", serialRaw)
	}
	for _, workers := range []int{2, 4} {
		parRaw, _, pmet, preg := run(workers)
		if !bytes.Equal(serialRaw, parRaw) {
			t.Fatalf("workers=%d: stalled event stream diverges from serial", workers)
		}
		if pmet.Stall == nil || pmet.Stall.Round != met.Stall.Round {
			t.Fatalf("workers=%d: stall report diverges: %+v vs %+v", workers, pmet.Stall, met.Stall)
		}
		if c := preg.Counter("sim_stalled_runs_total", ""); c.Value() != 1 {
			t.Fatalf("workers=%d: stalled-runs counter %d, want 1", workers, c.Value())
		}
	}
}

func TestSentHotPathNoAllocs(t *testing.T) {
	// The acceptance criterion: the per-message obs path must not allocate
	// in the serial engine.
	h := ctvg.NewHierarchy(4)
	h.SetHead(0)
	h.SetMember(1, 0)
	col := NewCollector(Config{N: 4, K: 2, PhaseLen: 3})
	obs := col.Observer()
	obs.RoundStart(0, nil, h)
	msg := &sim.Message{From: 1, To: 0, Kind: sim.KindUpload, Tokens: nil, Units: 1}
	if n := testing.AllocsPerRun(1000, func() {
		obs.Sent(0, msg)
	}); n != 0 {
		t.Fatalf("Sent hot path allocates %.1f times per message", n)
	}
}

func TestCombine(t *testing.T) {
	var a, b int
	oa := &sim.Observer{Sent: func(r int, m *sim.Message) { a++ }}
	ob := &sim.Observer{Sent: func(r int, m *sim.Message) { b++ }, Progress: func(r, d int) { b += 10 }}
	merged := Combine(oa, nil, ob)
	merged.Sent(0, &sim.Message{})
	merged.Progress(0, 5)
	if a != 1 || b != 11 {
		t.Fatalf("combine dispatch wrong: a=%d b=%d", a, b)
	}
	if merged.RoundStart != nil || merged.Crashed != nil {
		t.Fatal("combine invented callbacks")
	}
	if Combine(nil, nil) != nil {
		t.Fatal("all-nil combine should be nil")
	}
	if Combine(oa) != oa {
		t.Fatal("single observer should pass through")
	}
}

func TestSummarizePhases(t *testing.T) {
	const n, k, T, rounds = 32, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	_, col, _ := runCollected(t, tr, k, T, 0, nil)
	phases := Summarize(col.Events())
	if len(phases) != rounds/T {
		t.Fatalf("%d phases, want %d", len(phases), rounds/T)
	}
	gained := 0
	for i, p := range phases {
		if p.Phase != i {
			t.Fatalf("phase %d labelled %d", i, p.Phase)
		}
		if p.Rounds != T {
			t.Fatalf("phase %d has %d rounds, want %d", i, p.Rounds, T)
		}
		gained += p.Gained
	}
	last := phases[len(phases)-1]
	if gained != last.Delivered {
		t.Fatalf("gained sum %d != final delivered %d", gained, last.Delivered)
	}
	tb := PhaseTable("phases", phases)
	if tb.Len() != len(phases) {
		t.Fatalf("table rows %d", tb.Len())
	}
	if !strings.Contains(tb.String(), "uploads") {
		t.Fatal("phase table missing uploads column")
	}
}

// TestCollectorPropagatesEmissionErrors pins the mid-run error contract: a
// sink write failure during round emission is visible through Err() while
// the run is still going (not only at Flush), later rounds keep being
// collected but are counted as dropped, and Flush returns the attributed
// error.
func TestCollectorPropagatesEmissionErrors(t *testing.T) {
	const n, k, T, rounds = 32, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	assign := token.Spread(n, k, xrand.New(9))

	// Let two buffer spills through (~8 KiB ≈ a dozen rounds), then fail
	// (failAfterWriter is shared with the timing-sink error test).
	w := &failAfterWriter{n: 8192}
	onEvents := 0
	col := NewCollector(Config{
		N: n, K: k, PhaseLen: T, Sink: w, Keep: true,
		OnEvent: func(*RoundEvent) { onEvents++ },
	})
	errSeenAtRound := -1
	obsv := Combine(col.Observer(), &sim.Observer{
		Barrier: func(r int, met *sim.Metrics) {
			if errSeenAtRound < 0 && col.Err() != nil {
				errSeenAtRound = r
			}
		},
	})
	met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: rounds, Observer: obsv,
	})

	err := col.Flush()
	if err == nil {
		t.Fatal("Flush returned nil after the sink failed")
	}
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("error lost its cause: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "event sink failed at round") {
		t.Fatalf("error not attributed to a round: %q", msg)
	}
	if !strings.Contains(msg, "later events dropped") {
		t.Fatalf("error does not count the dropped tail: %q", msg)
	}
	if errSeenAtRound < 0 {
		t.Fatal("write error only surfaced at Flush, not at emission time")
	}
	if errSeenAtRound >= met.Rounds-1 {
		t.Fatalf("error latched only at the last round (%d of %d)", errSeenAtRound, met.Rounds)
	}
	// In-memory consumers must outlive the dead sink: every round still
	// reached OnEvent and the retained series.
	if onEvents != met.Rounds {
		t.Fatalf("OnEvent fired %d times for %d rounds", onEvents, met.Rounds)
	}
	if len(col.Events()) != met.Rounds {
		t.Fatalf("retained %d events for %d rounds", len(col.Events()), met.Rounds)
	}
	// Err is idempotent and Flush after an error keeps returning it.
	if err2 := col.Flush(); err2 == nil || !errors.Is(err2, errDiskFull) {
		t.Fatalf("second Flush: %v", err2)
	}
}
