package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// testTrace freezes a churning (T, L)-HiNet so serial and parallel runs
// see the exact same dynamics.
func testTrace(t testing.TB, n, rounds, T int) *ctvg.Trace {
	t.Helper()
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: n / 4, L: 2, T: T,
		Reaffiliations: 2, ChurnEdges: 4,
	}, xrand.New(3))
	return ctvg.Record(adv, rounds)
}

// runCollected runs Algorithm 1 over tr with a fresh collector and returns
// the JSONL bytes plus the collector itself.
func runCollected(t testing.TB, tr *ctvg.Trace, k, T, workers int, reg *Registry) ([]byte, *Collector, *sim.Metrics) {
	t.Helper()
	assign := token.Spread(tr.N(), k, xrand.New(9))
	var sink bytes.Buffer
	col := NewCollector(Config{
		N: tr.N(), K: k, PhaseLen: T,
		Sink: &sink, SizeFn: wire.Size, Registry: reg, Keep: true,
	})
	met := sim.MustRunProtocol(tr, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: tr.Len(),
		Observer:  col.Observer(),
		SizeFn:    wire.Size,
		Workers:   workers,
	})
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes(), col, met
}

func TestCollectorRoundSeries(t *testing.T) {
	const n, k, T, rounds = 32, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	reg := NewRegistry()
	raw, col, met := runCollected(t, tr, k, T, 0, reg)

	events := col.Events()
	if len(events) != rounds {
		t.Fatalf("%d events, want %d", len(events), rounds)
	}
	var totMsgs, totTokens, totBytes int64
	prevDelivered := 0
	for i, e := range events {
		if e.Round != i {
			t.Fatalf("event %d has round %d", i, e.Round)
		}
		if e.Phase != i/T {
			t.Fatalf("round %d phase %d, want %d", i, e.Phase, i/T)
		}
		if e.Total != n*k {
			t.Fatalf("round %d total %d, want %d", i, e.Total, n*k)
		}
		if e.Delivered < prevDelivered {
			t.Fatalf("round %d delivered %d regressed below %d", i, e.Delivered, prevDelivered)
		}
		prevDelivered = e.Delivered
		if e.Idle != (e.Messages == 0) {
			t.Fatalf("round %d idle flag inconsistent", i)
		}
		var kindMsgs, roleMsgs int64
		for j := 0; j < sim.NumKinds; j++ {
			kindMsgs += e.MsgsByKind[j]
		}
		for j := 0; j < sim.NumRoles; j++ {
			roleMsgs += e.MsgsByRole[j]
		}
		if kindMsgs != e.Messages || roleMsgs != e.Messages {
			t.Fatalf("round %d splits don't sum: kinds=%d roles=%d msgs=%d", i, kindMsgs, roleMsgs, e.Messages)
		}
		totMsgs += e.Messages
		totTokens += e.Tokens
		totBytes += e.Bytes
	}
	// The event stream must reconcile exactly with the engine's metrics.
	if totMsgs != met.Messages || totTokens != met.TokensSent || totBytes != met.BytesSent {
		t.Fatalf("series totals (%d, %d, %d) != metrics (%d, %d, %d)",
			totMsgs, totTokens, totBytes, met.Messages, met.TokensSent, met.BytesSent)
	}
	// Algorithm 1 on a clustered network must attribute uploads to members
	// and relays to heads/gateways.
	var uploads, relays int64
	for _, e := range events {
		uploads += e.MsgsByKind[sim.KindUpload]
		relays += e.MsgsByKind[sim.KindRelay]
	}
	if uploads == 0 || relays == 0 {
		t.Fatalf("expected both uploads (%d) and relays (%d)", uploads, relays)
	}

	// JSONL round-trips through ParseEvents.
	parsed, err := ParseEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(events))
	}
	for i := range parsed {
		a, b := parsed[i], events[i]
		if len(a.Crashed) != len(b.Crashed) {
			t.Fatalf("event %d crash list changed over the wire", i)
		}
		a.Crashed, b.Crashed = nil, nil
		var ab, bb bytes.Buffer
		ab.Write(a.AppendJSON(nil))
		bb.Write(b.AppendJSON(nil))
		if ab.String() != bb.String() {
			t.Fatalf("event %d changed over the wire:\n%s\n%s", i, ab.String(), bb.String())
		}
	}

	// Registry totals agree with the engine.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"sim_messages_total " + itoa(met.Messages),
		"sim_tokens_total " + itoa(met.TokensSent),
		"sim_bytes_total " + itoa(met.BytesSent),
		`sim_messages_kind_total{kind="upload"} ` + itoa(met.MessagesByKind[sim.KindUpload]),
		`sim_tokens_role_total{role="head"} ` + itoa(met.TokensByRole[ctvg.Head]),
		"sim_rounds_total " + itoa(int64(rounds)),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func itoa(v int64) string {
	var b []byte
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestParallelEventStreamByteIdentical(t *testing.T) {
	// The acceptance criterion: Workers > 1 with a collector produces a
	// JSONL stream byte-identical to the serial engine on the same seed.
	const n, k, T, rounds = 48, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	serial, _, smet := runCollected(t, tr, k, T, 0, nil)
	for _, workers := range []int{2, 4, 7} {
		par, _, pmet := runCollected(t, tr, k, T, workers, nil)
		if smet.String() != pmet.String() {
			t.Fatalf("workers=%d: metrics diverge: %v vs %v", workers, smet, pmet)
		}
		if !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d: event stream diverges from serial", workers)
		}
	}
	if len(serial) == 0 {
		t.Fatal("empty event stream")
	}
}

func TestCollectorCrashEvents(t *testing.T) {
	// Crashes must appear in the round event, ascending, and feed the
	// crash counter.
	tr := testTrace(t, 16, 10, 5)
	assign := token.Spread(16, 3, xrand.New(1))
	reg := NewRegistry()
	col := NewCollector(Config{N: 16, K: 3, PhaseLen: 5, Registry: reg, Keep: true})
	sim.MustRunProtocol(tr, core.Alg1{T: 5}, assign, sim.Options{
		MaxRounds: 10,
		Observer:  col.Observer(),
		Faults:    &sim.Faults{CrashAt: map[int]int{5: 2, 3: 2, 9: 0}},
	})
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if got := events[0].Crashed; len(got) != 1 || got[0] != 9 {
		t.Fatalf("round 0 crashes %v, want [9]", got)
	}
	if got := events[2].Crashed; len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("round 2 crashes %v, want [3 5]", got)
	}
	if c := reg.Counter("sim_crashes_total", ""); c.Value() != 3 {
		t.Fatalf("crash counter %d, want 3", c.Value())
	}
}

func TestSentHotPathNoAllocs(t *testing.T) {
	// The acceptance criterion: the per-message obs path must not allocate
	// in the serial engine.
	h := ctvg.NewHierarchy(4)
	h.SetHead(0)
	h.SetMember(1, 0)
	col := NewCollector(Config{N: 4, K: 2, PhaseLen: 3})
	obs := col.Observer()
	obs.RoundStart(0, nil, h)
	msg := &sim.Message{From: 1, To: 0, Kind: sim.KindUpload, Tokens: nil, Units: 1}
	if n := testing.AllocsPerRun(1000, func() {
		obs.Sent(0, msg)
	}); n != 0 {
		t.Fatalf("Sent hot path allocates %.1f times per message", n)
	}
}

func TestCombine(t *testing.T) {
	var a, b int
	oa := &sim.Observer{Sent: func(r int, m *sim.Message) { a++ }}
	ob := &sim.Observer{Sent: func(r int, m *sim.Message) { b++ }, Progress: func(r, d int) { b += 10 }}
	merged := Combine(oa, nil, ob)
	merged.Sent(0, &sim.Message{})
	merged.Progress(0, 5)
	if a != 1 || b != 11 {
		t.Fatalf("combine dispatch wrong: a=%d b=%d", a, b)
	}
	if merged.RoundStart != nil || merged.Crashed != nil {
		t.Fatal("combine invented callbacks")
	}
	if Combine(nil, nil) != nil {
		t.Fatal("all-nil combine should be nil")
	}
	if Combine(oa) != oa {
		t.Fatal("single observer should pass through")
	}
}

func TestSummarizePhases(t *testing.T) {
	const n, k, T, rounds = 32, 6, 12, 48
	tr := testTrace(t, n, rounds, T)
	_, col, _ := runCollected(t, tr, k, T, 0, nil)
	phases := Summarize(col.Events())
	if len(phases) != rounds/T {
		t.Fatalf("%d phases, want %d", len(phases), rounds/T)
	}
	gained := 0
	for i, p := range phases {
		if p.Phase != i {
			t.Fatalf("phase %d labelled %d", i, p.Phase)
		}
		if p.Rounds != T {
			t.Fatalf("phase %d has %d rounds, want %d", i, p.Rounds, T)
		}
		gained += p.Gained
	}
	last := phases[len(phases)-1]
	if gained != last.Delivered {
		t.Fatalf("gained sum %d != final delivered %d", gained, last.Delivered)
	}
	tb := PhaseTable("phases", phases)
	if tb.Len() != len(phases) {
		t.Fatalf("table rows %d", tb.Len())
	}
	if !strings.Contains(tb.String(), "uploads") {
		t.Fatal("phase table missing uploads column")
	}
}
