package faults

import (
	"strings"
	"sync"
	"testing"
)

func TestNilAndInactivePlans(t *testing.T) {
	var p *Plan
	if p.Active() || p.Lossy() {
		t.Fatal("nil plan reports active")
	}
	if err := p.Validate(10); err != nil {
		t.Fatalf("nil plan invalid: %v", err)
	}
	in, err := New(p, 10)
	if err != nil || in != nil {
		t.Fatalf("New(nil) = %v, %v; want nil, nil", in, err)
	}
	if in.Drop(3, 1, 2) || in.Duplicate(3, 1, 2) || in.Lossy() || in.Duplicating() {
		t.Fatal("nil injector injects")
	}
	if cs := in.Crashes(); cs != nil {
		t.Fatalf("nil injector has crashes: %v", cs)
	}
	if kill, _ := in.HeadCrash(5); kill {
		t.Fatal("nil injector kills heads")
	}

	zero := &Plan{Seed: 7}
	if zero.Active() {
		t.Fatal("zero plan reports active")
	}
	in, err = New(zero, 10)
	if err != nil || in != nil {
		t.Fatalf("New(zero) = %v, %v; want nil, nil", in, err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error
	}{
		{"drop prob", Plan{DropProb: 1.5}, "DropProb"},
		{"negative drop", Plan{DropProb: -0.1}, "DropProb"},
		{"dup prob", Plan{DupProb: 2}, "DupProb"},
		{"crash node high", Plan{CrashAt: map[int]int{10: 3}}, "node 10"},
		{"crash node negative", Plan{CrashAt: map[int]int{-1: 3}}, "node -1"},
		{"crash round negative", Plan{CrashAt: map[int]int{2: -4}}, "CrashAt[2]"},
		{"recover orphan", Plan{RecoverAfter: map[int]int{5: 2}}, "no CrashAt"},
		{"recover zero", Plan{CrashAt: map[int]int{5: 1}, RecoverAfter: map[int]int{5: 0}}, "RecoverAfter[5]"},
		{"head round negative", Plan{HeadCrashRounds: []int{4, -1}}, "negative round"},
		{"head round dup", Plan{HeadCrashRounds: []int{4, 4}}, "twice"},
		{"head downtime", Plan{HeadCrashRounds: []int{4}, HeadCrashDowntime: -2}, "HeadCrashDowntime"},
		{"burst prob", Plan{Burst: &GilbertElliott{PGoodBad: 1.2}}, "Burst.PGoodBad"},
		{"burst black hole", Plan{Burst: &GilbertElliott{PGoodBad: 0.1, PBadGood: 0, DropBad: 1}}, "black hole"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(10)
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.plan)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, err := New(&tc.plan, 10); err == nil {
				t.Fatal("New accepted invalid plan")
			}
		})
	}
}

func TestCrashesSortedAndCompiled(t *testing.T) {
	p := &Plan{
		CrashAt:      map[int]int{7: 3, 2: 10, 5: 0},
		RecoverAfter: map[int]int{5: 4},
	}
	in, err := New(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := in.Crashes()
	want := []Crash{
		{Node: 2, At: 10, RecoverAt: NoRecovery},
		{Node: 5, At: 0, RecoverAt: 4},
		{Node: 7, At: 3, RecoverAt: NoRecovery},
	}
	if len(got) != len(want) {
		t.Fatalf("Crashes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Crashes()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHeadCrashSchedule(t *testing.T) {
	in, err := New(&Plan{HeadCrashRounds: []int{5, 12}, HeadCrashDowntime: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if kill, rec := in.HeadCrash(5); !kill || rec != 8 {
		t.Fatalf("HeadCrash(5) = %v, %d; want true, 8", kill, rec)
	}
	if kill, _ := in.HeadCrash(6); kill {
		t.Fatal("HeadCrash(6) fired off-schedule")
	}
	stop, err := New(&Plan{HeadCrashRounds: []int{5}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if kill, rec := stop.HeadCrash(5); !kill || rec != NoRecovery {
		t.Fatalf("crash-stop HeadCrash(5) = %v, %d; want true, NoRecovery", kill, rec)
	}
}

// TestDropDeterministicAcrossInjectors is the core parallel-safety
// property: every (round, src, dst) decision is a pure function of the
// plan, independent of query order, of other queries, and of which
// injector instance answers.
func TestDropDeterministicAcrossInjectors(t *testing.T) {
	plan := &Plan{
		Seed:     42,
		DropProb: 0.2,
		DupProb:  0.1,
		Burst:    &GilbertElliott{PGoodBad: 0.1, PBadGood: 0.4, DropBad: 0.9},
	}
	const n, rounds = 16, 40

	// Reference: query every link every round, in order.
	ref, err := New(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	drops := make(map[[3]int]bool)
	dups := make(map[[3]int]bool)
	for r := 0; r < rounds; r++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				drops[[3]int{r, src, dst}] = ref.Drop(r, src, dst)
				dups[[3]int{r, src, dst}] = ref.Duplicate(r, src, dst)
			}
		}
	}

	// Sparse injector: query only a scattered subset, still per-link
	// non-decreasing rounds. Skipped queries must not shift outcomes.
	sparse, err := New(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r += 7 {
		for src := n - 1; src >= 0; src -= 3 {
			for dst := 0; dst < n; dst += 2 {
				key := [3]int{r, src, dst}
				if got := sparse.Drop(r, src, dst); got != drops[key] {
					t.Fatalf("sparse Drop%v = %v, reference %v", key, got, drops[key])
				}
				if got := sparse.Duplicate(r, src, dst); got != dups[key] {
					t.Fatalf("sparse Duplicate%v = %v, reference %v", key, got, dups[key])
				}
			}
		}
	}

	// Concurrent injector: receivers partitioned across goroutines, as the
	// engine shards them. Run with -race to check the ownership contract.
	conc, err := New(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for dst := 0; dst < n; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for src := 0; src < n; src++ {
					key := [3]int{r, src, dst}
					if got := conc.Drop(r, src, dst); got != drops[key] {
						errs <- "concurrent Drop mismatch"
						return
					}
				}
			}
		}(dst)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestDropRates sanity-checks the statistics: empirical i.i.d. loss near
// DropProb, Gilbert–Elliott loss near its stationary rate, and burst
// (consecutive-loss) runs materially longer than i.i.d. at the same rate.
func TestDropRates(t *testing.T) {
	const n, rounds = 32, 400
	total := float64(n * n * rounds)

	count := func(p *Plan) (lost int, maxRun int) {
		in, err := New(p, n)
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				run := 0
				for r := 0; r < rounds; r++ {
					if in.Drop(r, src, dst) {
						lost++
						run++
						if run > maxRun {
							maxRun = run
						}
					} else {
						run = 0
					}
				}
			}
		}
		return lost, maxRun
	}

	iid, _ := count(&Plan{Seed: 1, DropProb: 0.05})
	if rate := float64(iid) / total; rate < 0.04 || rate > 0.06 {
		t.Fatalf("i.i.d. loss rate %.4f, want ≈ 0.05", rate)
	}

	// Stationary loss: DropBad · PGB/(PGB+PBG) = 0.9 · 0.02/0.22 ≈ 0.0818.
	ge := &Plan{Seed: 1, Burst: &GilbertElliott{PGoodBad: 0.02, PBadGood: 0.2, DropBad: 0.9}}
	burstLost, burstRun := count(ge)
	if rate := float64(burstLost) / total; rate < 0.06 || rate > 0.10 {
		t.Fatalf("burst loss rate %.4f, want ≈ 0.082", rate)
	}
	// Mean bad-state dwell is 1/PBadGood = 5 rounds at DropBad = 0.9, so
	// long loss runs must appear; i.i.d. at 8% has vanishing probability of
	// an 8-run (0.08^8 over ~4e5 trials ≈ 7e-4 expected occurrences).
	if burstRun < 8 {
		t.Fatalf("longest burst run %d, want ≥ 8 (losses are not bursty)", burstRun)
	}
	iid8, iidRun := count(&Plan{Seed: 1, DropProb: 0.082})
	_ = iid8
	if iidRun >= burstRun {
		t.Fatalf("i.i.d. max run %d ≥ burst max run %d; burst model adds no clustering", iidRun, burstRun)
	}
}

func TestSeedDecorrelates(t *testing.T) {
	const n, rounds = 8, 50
	a, err := New(&Plan{Seed: 1, DropProb: 0.3}, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(&Plan{Seed: 2, DropProb: 0.3}, n)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < rounds && same; r++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if a.Drop(r, src, dst) != b.Drop(r, src, dst) {
					same = false
				}
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical drop patterns")
	}
}
