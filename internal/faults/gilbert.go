// Gilbert–Elliott bursty link loss.
//
// Each directed link (src → dst) carries an independent two-state Markov
// channel: in the Good state deliveries are lost with probability DropGood
// (usually 0), in the Bad state with probability DropBad (usually near 1).
// The chain moves Good → Bad with probability PGoodBad and Bad → Good with
// probability PBadGood once per round, so losses cluster into bursts whose
// mean length is 1/PBadGood rounds — the interference pattern i.i.d.
// dropping cannot produce.
//
// Determinism: the chain's trajectory is a pure function of the run seed
// and the link. Every transition at round r draws xrand.Hash(seed, r, link,
// tag) — no draw depends on whether, when, or from which goroutine the link
// was queried. The memo below only caches the trajectory's suffix position
// so repeated queries don't replay history; it never influences outcomes.

package faults

import (
	"fmt"

	"repro/internal/xrand"
)

// GilbertElliott parameterises the two-state burst-loss channel applied
// independently to every directed link.
type GilbertElliott struct {
	// PGoodBad and PBadGood are the per-round transition probabilities
	// Good→Bad and Bad→Good. Mean burst length is 1/PBadGood rounds;
	// stationary loss ≈ DropBad · PGoodBad / (PGoodBad + PBadGood).
	PGoodBad, PBadGood float64
	// DropGood and DropBad are the per-delivery loss probabilities in each
	// state. The classic Gilbert model is DropGood = 0, DropBad = 1.
	DropGood, DropBad float64
}

func (g *GilbertElliott) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Burst.PGoodBad", g.PGoodBad},
		{"Burst.PBadGood", g.PBadGood},
		{"Burst.DropGood", g.DropGood},
		{"Burst.DropBad", g.DropBad},
	} {
		if err := prob(f.name, f.v); err != nil {
			return err
		}
	}
	if g.PGoodBad > 0 && g.PBadGood == 0 && g.DropBad >= 1 {
		return fmt.Errorf("faults: Burst.PBadGood = 0 with DropBad = 1 makes every link eventually a permanent black hole; set PBadGood > 0 (or lower DropBad)")
	}
	return nil
}

// Draw tags for the three hash streams a link consumes each round.
const (
	burstInit uint64 = iota // stationary draw for the round-0 state
	burstStep               // per-round transition draw
	burstLoss               // per-delivery loss draw
)

// linkMemo caches where a link's trajectory has been advanced to.
type linkMemo struct {
	round int  // last round the state was computed for
	bad   bool // state at that round
}

// burstState holds the per-link memos, partitioned by receiver so each
// engine shard touches only the maps of the receivers it owns (the
// sharding contract documented on Injector).
type burstState struct {
	g     GilbertElliott
	n     uint64
	byDst []map[int]linkMemo // indexed by dst, keyed by src
}

func newBurstState(g GilbertElliott, n int) *burstState {
	return &burstState{g: g, n: uint64(n), byDst: make([]map[int]linkMemo, n)}
}

// drop advances link (src → dst) to round r and reports whether the
// delivery is lost. seed already carries the burst stream tag. Queries for
// one link must arrive at non-decreasing rounds (the engine's round loop
// guarantees this); the result is still a pure function of (seed, r, link).
func (b *burstState) drop(seed uint64, r, src, dst int) bool {
	link := uint64(src)*b.n + uint64(dst)
	m := b.byDst[dst]
	if m == nil {
		m = make(map[int]linkMemo)
		b.byDst[dst] = m
	}
	memo, ok := m[src]
	if !ok {
		// Round-0 state from the chain's stationary distribution, so early
		// rounds are statistically indistinguishable from late ones.
		piBad := 0.0
		if s := b.g.PGoodBad + b.g.PBadGood; s > 0 {
			piBad = b.g.PGoodBad / s
		}
		memo = linkMemo{round: 0, bad: xrand.HashFloat64(seed, 0, link, burstInit) < piBad}
	}
	// Replay the un-queried suffix of the trajectory. Each step is a pure
	// draw keyed by its own round, so a link queried at rounds 3 and 40
	// lands in exactly the state it would have reached queried every round.
	for memo.round < r {
		memo.round++
		p := b.g.PGoodBad
		if memo.bad {
			p = b.g.PBadGood
		}
		if xrand.HashFloat64(seed, uint64(memo.round), link, burstStep) < p {
			memo.bad = !memo.bad
		}
	}
	m[src] = memo
	lossP := b.g.DropGood
	if memo.bad {
		lossP = b.g.DropBad
	}
	return lossP > 0 && xrand.HashFloat64(seed, uint64(r), link, burstLoss) < lossP
}
