// Package faults is the composable fault-plan subsystem of the simulator:
// a declarative description of every failure an execution injects, plus the
// deterministic runtime that answers per-round fault queries for the engine.
//
// The paper's guarantees (Theorems 1–4) assume reliable rounds and a
// hierarchy that fails only by re-wiring. Real dynamic networks lose
// messages in bursts, crash cluster heads, and bring nodes back; this
// package models exactly those deviations so the experiments can measure
// how far each protocol strays from its bound when the assumptions break:
//
//   - crash-stop: a node goes down at a scheduled round and stays down;
//   - crash-recovery: a node rejoins after a downtime window — it kept its
//     token set (stable storage) but lost its volatile protocol state, so
//     it must re-affiliate and re-upload (the Remark 1 / Algorithm 2 paths);
//   - head-targeted kills: every live cluster head crashes at scheduled
//     rounds, the worst case for hierarchical dissemination;
//   - i.i.d. message loss (radio fading) and Gilbert–Elliott bursty link
//     loss (interference), applied per (message, receiver);
//   - message duplication (a receiver hears the same transmission twice).
//
// All randomness is counter-based: every decision is a pure function of
// (Seed, round, src, dst) via xrand.Hash, never a draw from a sequential
// stream. Two consequences the engine relies on: fault outcomes are
// independent of the order deliveries are evaluated in, so serial and
// parallel executions of the same plan are bit-identical; and skipping a
// query (a crashed sender, a vanished edge) cannot shift the randomness of
// any other link.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// Stream tags decorrelate the per-purpose hash streams drawn from one seed.
const (
	streamDrop uint64 = iota + 1
	streamBurst
	streamDup
)

// Plan declares every fault injected into one run. The zero value injects
// nothing. A Plan is immutable configuration: the engine compiles it into
// an Injector and never writes back, so one Plan may be shared by any
// number of concurrent runs (the experiment harness does).
type Plan struct {
	// Seed drives all fault randomness. Runs with equal plans and seeds
	// inject identical faults; distinct seeds decorrelate.
	Seed uint64

	// DropProb is the probability that any single (message, receiver)
	// delivery is lost, independently per receiver (radio fading).
	// Transmission cost is still charged — the sender paid for it.
	DropProb float64
	// Burst, if non-nil, adds Gilbert–Elliott bursty loss per directed
	// link on top of DropProb (a delivery is lost if either model drops
	// it). See GilbertElliott.
	Burst *GilbertElliott
	// DupProb is the probability that a delivery is heard twice (link
	// retransmission artefacts). Duplicates are delivered back to back and
	// cost nothing extra — the sender transmitted once.
	DupProb float64

	// CrashAt maps node -> round at the start of which the node crashes:
	// from that round on it neither sends nor receives.
	CrashAt map[int]int
	// RecoverAfter maps node -> downtime in rounds. A node v with
	// CrashAt[v] = r and RecoverAfter[v] = d is down for rounds [r, r+d)
	// and rejoins at round r+d with its token set intact but its volatile
	// protocol state reset (see sim.Recoverer). Nodes in CrashAt without a
	// RecoverAfter entry are crash-stop. An entry here without a matching
	// CrashAt entry is a validation error.
	RecoverAfter map[int]int

	// HeadCrashRounds lists rounds at whose start every live cluster head
	// (per that round's hierarchy) crashes — the adversary the self-healing
	// protocol variants exist for. Duplicate rounds are an error.
	HeadCrashRounds []int
	// HeadCrashDowntime is the downtime of head-targeted crashes: 0 means
	// crash-stop, d > 0 means each felled head recovers after d rounds.
	HeadCrashDowntime int
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	return p != nil && (p.Lossy() || p.DupProb > 0 ||
		len(p.CrashAt) > 0 || len(p.HeadCrashRounds) > 0)
}

// Lossy reports whether the plan can drop deliveries.
func (p *Plan) Lossy() bool {
	return p != nil && (p.DropProb > 0 || p.Burst != nil)
}

// Validate checks the plan against a network of n nodes and returns a
// descriptive error for the first problem found. A nil plan is valid.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	if err := prob("DropProb", p.DropProb); err != nil {
		return err
	}
	if err := prob("DupProb", p.DupProb); err != nil {
		return err
	}
	if p.Burst != nil {
		if err := p.Burst.validate(); err != nil {
			return err
		}
	}
	for v, at := range p.CrashAt {
		if v < 0 || v >= n {
			return fmt.Errorf("faults: CrashAt names node %d, outside [0, %d)", v, n)
		}
		if at < 0 {
			return fmt.Errorf("faults: CrashAt[%d] = %d is negative", v, at)
		}
	}
	for v, d := range p.RecoverAfter {
		if _, ok := p.CrashAt[v]; !ok {
			return fmt.Errorf("faults: RecoverAfter names node %d with no CrashAt entry", v)
		}
		if d <= 0 {
			return fmt.Errorf("faults: RecoverAfter[%d] = %d must be positive", v, d)
		}
	}
	seen := make(map[int]bool, len(p.HeadCrashRounds))
	for _, r := range p.HeadCrashRounds {
		if r < 0 {
			return fmt.Errorf("faults: HeadCrashRounds contains negative round %d", r)
		}
		if seen[r] {
			return fmt.Errorf("faults: HeadCrashRounds lists round %d twice", r)
		}
		seen[r] = true
	}
	if p.HeadCrashDowntime < 0 {
		return fmt.Errorf("faults: HeadCrashDowntime = %d is negative", p.HeadCrashDowntime)
	}
	return nil
}

func prob(name string, v float64) error {
	if v < 0 || v > 1 || v != v {
		return fmt.Errorf("faults: %s = %v is not a probability in [0, 1]", name, v)
	}
	return nil
}

// NoRecovery marks a crash window with no scheduled rejoin.
const NoRecovery = -1

// Crash is one compiled crash window: node v is down for rounds
// [At, RecoverAt), or forever when RecoverAt is NoRecovery.
type Crash struct {
	Node, At, RecoverAt int
}

// Injector is the compiled runtime of one plan for one run. It owns the
// per-link burst-channel memoisation, so an Injector must not be shared
// between runs; compile one per execution with New.
//
// Sharding contract: Drop and Duplicate queries are keyed by receiver, and
// all queries for one receiver must come from a single goroutine at a time
// (the engine's deliver phase partitions receivers by shard, which
// satisfies this). Queries for distinct receivers never share state.
type Injector struct {
	plan  Plan
	burst *burstState
	heads map[int]bool // head-kill rounds
}

// New validates the plan against an n-node network and compiles it.
// A nil plan compiles to a nil Injector, which injects nothing.
func New(p *Plan, n int) (*Injector, error) {
	if !p.Active() {
		if err := p.Validate(n); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	in := &Injector{plan: *p}
	if p.Burst != nil {
		in.burst = newBurstState(*p.Burst, n)
	}
	if len(p.HeadCrashRounds) > 0 {
		in.heads = make(map[int]bool, len(p.HeadCrashRounds))
		for _, r := range p.HeadCrashRounds {
			in.heads[r] = true
		}
	}
	return in, nil
}

// Lossy reports whether deliveries can be dropped.
func (in *Injector) Lossy() bool { return in != nil && in.plan.Lossy() }

// Duplicating reports whether deliveries can be duplicated.
func (in *Injector) Duplicating() bool { return in != nil && in.plan.DupProb > 0 }

// Crashes returns the compiled static crash schedule, sorted by node so
// activation — and the events it emits — is deterministic (map range order
// is not).
func (in *Injector) Crashes() []Crash {
	if in == nil || len(in.plan.CrashAt) == 0 {
		return nil
	}
	out := make([]Crash, 0, len(in.plan.CrashAt))
	for v, at := range in.plan.CrashAt {
		c := Crash{Node: v, At: at, RecoverAt: NoRecovery}
		if d, ok := in.plan.RecoverAfter[v]; ok {
			c.RecoverAt = at + d
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// HeadCrash reports whether round r is a head-kill round, and the round at
// which heads felled now recover (NoRecovery for crash-stop).
func (in *Injector) HeadCrash(r int) (kill bool, recoverAt int) {
	if in == nil || !in.heads[r] {
		return false, NoRecovery
	}
	if in.plan.HeadCrashDowntime > 0 {
		return true, r + in.plan.HeadCrashDowntime
	}
	return true, NoRecovery
}

// Drop reports whether the delivery of src's round-r message to dst is
// lost. Pure counter-based randomness plus (for the burst model) per-link
// state owned by dst's shard; see the sharding contract on Injector.
func (in *Injector) Drop(r, src, dst int) bool {
	if in == nil {
		return false
	}
	if p := in.plan.DropProb; p > 0 {
		if xrand.HashFloat64(in.plan.Seed^streamDrop, uint64(r), uint64(src), uint64(dst)) < p {
			return true
		}
	}
	if in.burst != nil {
		if in.burst.drop(in.plan.Seed^streamBurst, r, src, dst) {
			return true
		}
	}
	return false
}

// Duplicate reports whether dst hears src's round-r message twice.
func (in *Injector) Duplicate(r, src, dst int) bool {
	if in == nil || in.plan.DupProb <= 0 {
		return false
	}
	return xrand.HashFloat64(in.plan.Seed^streamDup, uint64(r), uint64(src), uint64(dst)) < in.plan.DupProb
}
