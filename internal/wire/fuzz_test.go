package wire

import (
	"testing"

	"repro/internal/sim"
)

// FuzzDecode drives the codec with arbitrary byte strings. Whatever Decode
// accepts must be a message the accounting can trust: in-range endpoints,
// non-negative Units, and a lossless re-encode — Encode must accept the
// decoded message (no silent uint16 wraparound in either direction) and
// decoding the re-encoding must reproduce every field, Cost and Size.
// Byte-identity is deliberately not required: Decode tolerates non-minimal
// varints and untrimmed zero words, which Encode canonicalises.
func FuzzDecode(f *testing.F) {
	// The ID boundary, both sides: MaxNodeID encodes; 65535 must not decode.
	top := msg(sim.KindUpload, MaxNodeID, MaxNodeID, []int{0, 3})
	topBuf, err := Encode(nil, top)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(topBuf)
	bad := append([]byte(nil), topBuf...)
	bad[0], bad[1] = 0xFF, 0xFF // sender 65535: reserved, must be rejected
	f.Add(bad)
	multi := msg(sim.KindRelay, 1, sim.NoAddr, []int{7})
	multi.Units = 300 // multi-byte Units varint on a non-coded kind
	multiBuf, _ := Encode(nil, multi)
	f.Add(multiBuf)
	codedBuf, _ := Encode(nil, msg(sim.KindCoded, 2, sim.NoAddr, []int{0, 1, 2}))
	f.Add(codedBuf)
	// Adversarial set header: a huge word count whose byte length check
	// would pass under multiplication overflow.
	f.Add(append([]byte{1, 0, 1, 0, 0, 0}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x1F))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, _, err := Decode(data)
		if err != nil {
			return
		}
		if m.From < 0 || m.From > MaxNodeID {
			t.Fatalf("decoded out-of-range sender %d", m.From)
		}
		if m.To != sim.NoAddr && (m.To < 0 || m.To > MaxNodeID) {
			t.Fatalf("decoded out-of-range addressee %d", m.To)
		}
		if m.Units < 0 {
			t.Fatalf("decoded negative Units %d", m.Units)
		}
		re, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		if Size(m) != len(re) {
			t.Fatalf("Size=%d but encoding is %d bytes", Size(m), len(re))
		}
		m2, rest2, err := Decode(re)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-decoding failed: %v (%d leftover)", err, len(rest2))
		}
		if m2.From != m.From || m2.To != m.To || m2.Kind != m.Kind ||
			m2.Units != m.Units || !m2.Tokens.Equal(m.Tokens) ||
			m2.Cost() != m.Cost() || Size(m2) != Size(m) {
			t.Fatalf("lossy round trip: %+v vs %+v", m2, m)
		}
	})
}
