package wire

import (
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

func msg(kind sim.MsgKind, from, to int, toks []int) *sim.Message {
	m := &sim.Message{From: from, To: to, Kind: kind, Tokens: bitset.FromSlice(toks)}
	if kind == sim.KindCoded {
		m.Units = 1
	}
	return m
}

// encode is the test-side Encode wrapper for messages known to be valid.
func encode(t testing.TB, m *sim.Message) []byte {
	t.Helper()
	buf, err := Encode(nil, m)
	if err != nil {
		t.Fatalf("Encode(%+v): %v", m, err)
	}
	return buf
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []*sim.Message{
		msg(sim.KindBroadcast, 3, sim.NoAddr, []int{0, 5, 63}),
		msg(sim.KindUpload, 7, 2, []int{1}),
		msg(sim.KindRelay, 0, sim.NoAddr, nil),
		msg(sim.KindCoded, 9, sim.NoAddr, []int{0, 1, 2, 3}),
	}
	// Units is an independent field: coded packets usually carry 1, but any
	// kind may carry any count and the decoded Cost must match the sent one.
	multi := msg(sim.KindRelay, 4, sim.NoAddr, []int{2, 3})
	multi.Units = 7
	cases = append(cases, multi)
	for _, m := range cases {
		buf := encode(t, m)
		got, rest, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d leftover bytes", m.Kind, len(rest))
		}
		if got.From != m.From || got.To != m.To || got.Kind != m.Kind || got.Units != m.Units {
			t.Fatalf("%v: field mismatch: %+v vs %+v", m.Kind, got, m)
		}
		if !got.Tokens.Equal(m.Tokens) {
			t.Fatalf("%v: payload mismatch", m.Kind)
		}
		if got.Cost() != m.Cost() {
			t.Fatalf("%v: cost changed: %d vs %d", m.Kind, got.Cost(), m.Cost())
		}
		if Size(got) != Size(m) {
			t.Fatalf("%v: size changed: %d vs %d", m.Kind, Size(got), Size(m))
		}
	}
}

func TestSizeMatchesEncoding(t *testing.T) {
	cases := []*sim.Message{
		msg(sim.KindBroadcast, 1, sim.NoAddr, []int{0, 1, 2}),
		msg(sim.KindUpload, 1, 0, []int{200}),
		msg(sim.KindRelay, 1, sim.NoAddr, nil),
		msg(sim.KindCoded, 1, sim.NoAddr, []int{0, 7}),
	}
	big := msg(sim.KindRelay, 1, sim.NoAddr, []int{9})
	big.Units = 1 << 20 // multi-byte varint
	cases = append(cases, big)
	for _, m := range cases {
		if got, want := Size(m), len(encode(t, m)); got != want {
			t.Fatalf("%v: Size=%d, encoding=%d", m.Kind, got, want)
		}
	}
}

func TestSizeShapes(t *testing.T) {
	// A singleton packet costs header + tiny set + one body.
	single := Size(msg(sim.KindRelay, 0, sim.NoAddr, []int{3}))
	// A k=8 set packet costs header + set + eight bodies.
	full := Size(msg(sim.KindRelay, 0, sim.NoAddr, []int{0, 1, 2, 3, 4, 5, 6, 7}))
	// A coded packet over the same domain costs header + vector + ONE body,
	// plus the one-byte Units=1 varint the other shapes spend on Units=0.
	coded := Size(msg(sim.KindCoded, 0, sim.NoAddr, []int{0, 1, 2, 3, 4, 5, 6, 7}))
	if full <= single {
		t.Fatalf("full set (%d) not larger than singleton (%d)", full, single)
	}
	if coded >= full {
		t.Fatalf("coded (%d) not smaller than full set (%d)", coded, full)
	}
	if coded != single {
		t.Fatalf("coded (%d) should equal singleton (%d): same body count, same set bytes", coded, single)
	}
}

func TestEncodeRejectsOutOfRangeIDs(t *testing.T) {
	cases := []*sim.Message{
		{From: MaxNodeID + 1, To: sim.NoAddr},
		{From: -1, To: sim.NoAddr},
		{From: 0, To: MaxNodeID + 1},
		{From: 0, To: -2},
		{From: 0, To: sim.NoAddr, Units: -1},
	}
	for _, m := range cases {
		if _, err := Encode(nil, m); err == nil {
			t.Fatalf("Encode accepted %+v", m)
		}
	}
	// The boundary itself is legal and round-trips.
	m := msg(sim.KindUpload, MaxNodeID, MaxNodeID, []int{0})
	got, _, err := Decode(encode(t, m))
	if err != nil || got.From != MaxNodeID || got.To != MaxNodeID {
		t.Fatalf("boundary IDs did not survive: %+v, %v", got, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty accepted")
	}
	m := msg(sim.KindBroadcast, 1, sim.NoAddr, []int{1, 2})
	buf := encode(t, m)
	for _, cut := range []int{3, Header, len(buf) - 1} {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A header carrying the reserved 65535 sender must be rejected, so
	// every successfully decoded message is re-encodable.
	bad := append([]byte(nil), buf...)
	bad[0], bad[1] = 0xFF, 0xFF
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("sender sentinel 65535 accepted")
	}
}

// TestQuickRoundTrip is the property test for the codec: for every kind,
// arbitrary in-range endpoints (including To = NoAddr), arbitrary payloads
// and arbitrary Units — including Units > 1 on non-coded kinds — every
// field, the Cost and the Size survive Encode → Decode.
func TestQuickRoundTrip(t *testing.T) {
	f := func(from, to uint16, kindRaw byte, raw []byte, units uint16) bool {
		kind := sim.MsgKind(kindRaw % 4)
		toks := []int{}
		for _, b := range raw {
			toks = append(toks, int(b))
		}
		m := msg(kind, int(from)%(MaxNodeID+1), int(to)%(MaxNodeID+2)-1, toks)
		m.Units = int(units)
		got, rest, err := Decode(encode(t, m))
		return err == nil && len(rest) == 0 &&
			got.From == m.From && got.To == m.To && got.Kind == m.Kind &&
			got.Units == m.Units && got.Tokens.Equal(m.Tokens) &&
			got.Cost() == m.Cost() && Size(got) == Size(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByteAccountingInEngine(t *testing.T) {
	// The headline re-examined in bytes: Algorithm 1's singleton packets
	// vs KLO-T's singleton packets — same shape, fewer senders, so Alg 1
	// must also win under wire-size accounting.
	const n, k, alpha, L = 60, 6, 2, 2
	T := core.Theorem1T(k, alpha, L)
	theta := 10
	phases := core.Theorem1Phases(theta, alpha)

	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: T, Reaffiliations: 2, ChurnEdges: 5,
	}, xrand.New(1))
	assign := token.Spread(n, k, xrand.New(2))
	alg1 := sim.MustRunProtocol(adv, core.Alg1{T: T}, assign, sim.Options{
		MaxRounds: phases * T, SizeFn: Size,
	})
	if !alg1.Complete || alg1.BytesSent == 0 {
		t.Fatalf("alg1: %v bytes=%d", alg1, alg1.BytesSent)
	}

	flat := sim.NewFlat(adversary.NewTInterval(n, T, 5, xrand.New(1)))
	klot := sim.MustRunProtocol(flat, baseline.KLOT{T: T}, assign, sim.Options{
		MaxRounds: baseline.KLOTPhases(n, T, k) * T, SizeFn: Size,
	})
	if !klot.Complete {
		t.Fatalf("klot: %v", klot)
	}
	if alg1.BytesSent >= klot.BytesSent {
		t.Fatalf("Alg1 bytes %d not below KLO-T bytes %d", alg1.BytesSent, klot.BytesSent)
	}
}

func TestByteAccountingOffByDefault(t *testing.T) {
	adv := sim.NewFlat(adversary.NewOneInterval(5, 0, xrand.New(1)))
	assign := token.SingleSource(5, 1, 0)
	m := sim.MustRunProtocol(adv, baseline.Flood{}, assign, sim.Options{MaxRounds: 4})
	if m.BytesSent != 0 {
		t.Fatalf("bytes accumulated without SizeFn: %d", m.BytesSent)
	}
}

func BenchmarkSize(b *testing.B) {
	m := msg(sim.KindBroadcast, 1, sim.NoAddr, []int{0, 1, 2, 3, 4, 5, 6, 7})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Size(m)
	}
}

func TestEncodeNilTokens(t *testing.T) {
	m := &sim.Message{From: 1, To: sim.NoAddr, Kind: sim.KindRelay}
	got, rest, err := Decode(encode(t, m))
	if err != nil || len(rest) != 0 {
		t.Fatalf("nil-payload encode failed: %v", err)
	}
	if !got.Tokens.Empty() {
		t.Fatal("nil payload decoded non-empty")
	}
	if Size(m) != len(encode(t, m)) {
		t.Fatal("Size mismatch for nil payload")
	}
}
