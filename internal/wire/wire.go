// Package wire defines the byte-level encoding of protocol messages and
// the resulting wire-size cost model.
//
// The paper counts communication in *token units* (one token-send = cost
// 1), which makes protocols with different packet shapes comparable at the
// information level. Real radios bill bytes, and the three packet shapes
// in this repository encode very differently:
//
//   - singleton packets (Algorithm 1, KLO-T): one varint token ID;
//   - set packets (Algorithm 2, flooding, gossip): a packed token bitmap;
//   - coded packets (Haeupler–Karger): a k-bit coefficient vector plus one
//     token-sized payload.
//
// Size reports the exact on-wire size of a message under this encoding;
// the engine's byte accounting (sim.Metrics.BytesSent) uses it, giving the
// harness a second, harsher cost model under which the paper's qualitative
// claims can be re-examined.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/sim"
	"repro/internal/token"
)

// Header is the fixed per-packet overhead in bytes: sender ID (2),
// addressee (2), kind (1).
const Header = 5

// TokenBytes is the assumed payload size of one token in bytes. Token IDs
// are metadata; the token body (the actual information being disseminated)
// is modelled as a fixed-size blob, as in the paper's "total size of
// packets" accounting.
const TokenBytes = 32

// Encode serialises a message; Decode reverses it. The format:
//
//	header | payload
//
// where payload is:
//
//	kind broadcast/relay/upload: EncodeSet(token set), plus
//	    TokenBytes per contained token (the bodies);
//	kind coded: EncodeSet(coefficient vector) + one TokenBytes body.
func Encode(buf []byte, m *sim.Message) []byte {
	var hdr [Header]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(m.From))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(m.To+1)) // NoAddr=-1 -> 0
	hdr[4] = byte(m.Kind)
	buf = append(buf, hdr[:]...)
	buf = token.EncodeSet(buf, payloadSet(m))
	buf = append(buf, make([]byte, bodyCount(m)*TokenBytes)...)
	return buf
}

// bodyCount is how many token bodies the message carries.
func bodyCount(m *sim.Message) int {
	if m.Kind == sim.KindCoded {
		return 1 // one coded combination of bodies
	}
	if m.Tokens == nil {
		return 0
	}
	return m.Tokens.Len()
}

// Size returns the exact encoded size of a message in bytes without
// allocating the encoding.
func Size(m *sim.Message) int {
	setBytes := len(token.EncodeSet(nil, payloadSet(m)))
	return Header + setBytes + bodyCount(m)*TokenBytes
}

func payloadSet(m *sim.Message) *bitset.Set {
	if m.Tokens == nil {
		return &bitset.Set{}
	}
	return m.Tokens
}

// Decode reverses Encode, returning the message and remaining bytes.
func Decode(buf []byte) (*sim.Message, []byte, error) {
	if len(buf) < Header {
		return nil, nil, fmt.Errorf("wire: truncated header")
	}
	m := &sim.Message{
		From: int(binary.LittleEndian.Uint16(buf[0:])),
		To:   int(binary.LittleEndian.Uint16(buf[2:])) - 1,
		Kind: sim.MsgKind(buf[4]),
	}
	set, rest, err := token.DecodeSet(buf[Header:])
	if err != nil {
		return nil, nil, fmt.Errorf("wire: payload: %w", err)
	}
	m.Tokens = set
	if m.Kind == sim.KindCoded {
		m.Units = 1
	}
	bodies := bodyCount(m) * TokenBytes
	if len(rest) < bodies {
		return nil, nil, fmt.Errorf("wire: truncated bodies (want %d bytes, have %d)", bodies, len(rest))
	}
	return m, rest[bodies:], nil
}
