// Package wire defines the byte-level encoding of protocol messages and
// the resulting wire-size cost model.
//
// The paper counts communication in *token units* (one token-send = cost
// 1), which makes protocols with different packet shapes comparable at the
// information level. Real radios bill bytes, and the three packet shapes
// in this repository encode very differently:
//
//   - singleton packets (Algorithm 1, KLO-T): one varint token ID;
//   - set packets (Algorithm 2, flooding, gossip): a packed token bitmap;
//   - coded packets (Haeupler–Karger): a k-bit coefficient vector plus one
//     token-sized payload.
//
// Size reports the exact on-wire size of a message under this encoding;
// the engine's byte accounting (sim.Metrics.BytesSent) uses it, giving the
// harness a second, harsher cost model under which the paper's qualitative
// claims can be re-examined.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/sim"
	"repro/internal/token"
)

// Header is the fixed per-packet overhead in bytes: sender ID (2),
// addressee (2), kind (1).
const Header = 5

// MaxNodeID is the largest node ID the 2-byte header fields can carry.
// To is stored as To+1 (so NoAddr = -1 maps to 0), which caps both fields
// one below the uint16 maximum; 65535 stays free as an invalid sentinel so
// silent wraparound can be rejected on both encode and decode.
const MaxNodeID = 65534

// TokenBytes is the assumed payload size of one token in bytes. Token IDs
// are metadata; the token body (the actual information being disseminated)
// is modelled as a fixed-size blob, as in the paper's "total size of
// packets" accounting.
const TokenBytes = 32

// Encode serialises a message; Decode reverses it. The format:
//
//	header | units | payload
//
// where units is the uvarint Message.Units (0 when unset, so every decoded
// message is charged the same Cost as the one sent), and payload is:
//
//	kind broadcast/relay/upload: EncodeSet(token set), plus
//	    TokenBytes per contained token (the bodies);
//	kind coded: EncodeSet(coefficient vector) + one TokenBytes body.
//
// Encode fails on node IDs outside [0, MaxNodeID] (From; To additionally
// admits sim.NoAddr) and on negative Units — the alternative is a silent
// uint16 wraparound that corrupts the accounting.
func Encode(buf []byte, m *sim.Message) ([]byte, error) {
	if m.From < 0 || m.From > MaxNodeID {
		return nil, fmt.Errorf("wire: sender ID %d outside [0, %d]", m.From, MaxNodeID)
	}
	if m.To != sim.NoAddr && (m.To < 0 || m.To > MaxNodeID) {
		return nil, fmt.Errorf("wire: addressee %d neither NoAddr nor in [0, %d]", m.To, MaxNodeID)
	}
	if m.Units < 0 {
		return nil, fmt.Errorf("wire: negative Units %d", m.Units)
	}
	var hdr [Header]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(m.From))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(m.To+1)) // NoAddr=-1 -> 0
	hdr[4] = byte(m.Kind)
	buf = append(buf, hdr[:]...)
	buf = binary.AppendUvarint(buf, uint64(m.Units))
	buf = token.EncodeSet(buf, payloadSet(m))
	buf = append(buf, make([]byte, bodyCount(m)*TokenBytes)...)
	return buf, nil
}

// bodyCount is how many token bodies the message carries.
func bodyCount(m *sim.Message) int {
	if m.Kind == sim.KindCoded {
		return 1 // one coded combination of bodies
	}
	if m.Tokens == nil {
		return 0
	}
	return m.Tokens.Len()
}

// Size returns the exact encoded size of a message in bytes. It is pure
// arithmetic over the packed payload words (token.EncodedSetSize), so the
// per-message byte accounting never materialises an encoding.
func Size(m *sim.Message) int {
	units := m.Units
	if units < 0 {
		units = 0
	}
	return Header + token.UvarintLen(uint64(units)) +
		token.EncodedSetSize(m.Tokens) + bodyCount(m)*TokenBytes
}

// emptySet stands in for a nil Tokens field during encoding.
var emptySet = &bitset.Set{}

func payloadSet(m *sim.Message) *bitset.Set {
	if m.Tokens == nil {
		return emptySet
	}
	return m.Tokens
}

// Decode reverses Encode, returning the message and remaining bytes. Every
// field of the sent message — including Units, and hence Cost and Size —
// survives the round trip; buffers whose header carries the invalid 65535
// sender sentinel are rejected, so Decode only ever produces messages that
// Encode accepts.
func Decode(buf []byte) (*sim.Message, []byte, error) {
	if len(buf) < Header {
		return nil, nil, fmt.Errorf("wire: truncated header")
	}
	from := int(binary.LittleEndian.Uint16(buf[0:]))
	if from > MaxNodeID {
		return nil, nil, fmt.Errorf("wire: invalid sender ID %d", from)
	}
	m := &sim.Message{
		From: from,
		To:   int(binary.LittleEndian.Uint16(buf[2:])) - 1,
		Kind: sim.MsgKind(buf[4]),
	}
	units, sz := binary.Uvarint(buf[Header:])
	if sz <= 0 {
		return nil, nil, fmt.Errorf("wire: truncated units")
	}
	if units > uint64(math.MaxInt64) {
		return nil, nil, fmt.Errorf("wire: Units %d overflows int", units)
	}
	m.Units = int(units)
	set, rest, err := token.DecodeSet(buf[Header+sz:])
	if err != nil {
		return nil, nil, fmt.Errorf("wire: payload: %w", err)
	}
	m.Tokens = set
	bodies := bodyCount(m) * TokenBytes
	if len(rest) < bodies {
		return nil, nil, fmt.Errorf("wire: truncated bodies (want %d bytes, have %d)", bodies, len(rest))
	}
	return m, rest[bodies:], nil
}
