package experiment

import (
	"strings"
	"testing"
)

func TestClaimsLedgerConsistent(t *testing.T) {
	if err := VerifyCheapClaims(); err != nil {
		t.Fatal(err)
	}
	claims := Claims()
	if len(claims) < 10 {
		t.Fatalf("ledger shrank to %d claims", len(claims))
	}
	seen := map[string]bool{}
	valid := map[ClaimStatus]bool{
		StatusExact: true, StatusHolds: true, StatusShape: true,
		StatusDiscrepancy: true, StatusFails: true,
	}
	for _, c := range claims {
		if seen[c.ID] {
			t.Fatalf("duplicate claim ID %q", c.ID)
		}
		seen[c.ID] = true
		if !valid[c.Status] {
			t.Fatalf("claim %q has invalid status %q", c.ID, c.Status)
		}
		if c.Statement == "" || c.Evidence == "" || c.Source == "" {
			t.Fatalf("claim %q incomplete", c.ID)
		}
	}
	// The two known deviations must be recorded.
	if !seen["T3-alg2"] || !seen["THM3"] {
		t.Fatal("known deviations missing from ledger")
	}
}

func TestClaimsTable(t *testing.T) {
	out := ClaimsTable().String()
	for _, want := range []string{"THM1", "fails", "exact", "discrepancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("claims table missing %q:\n%s", want, out)
		}
	}
}
