package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

var arrivalTestParams = analysis.Params{N0: 12, Theta: 4, NM: 4, K: 2, Alpha: 1, L: 1}

func TestArrivalLoadDrained(t *testing.T) {
	cfg := ArrivalConfig{
		P:        arrivalTestParams,
		Proto:    "alg2",
		Arrivals: sim.Arrivals{Rate: 0.5, Seed: 11, Stop: 40},
		SLA:      1,
		Seed:     3,
	}
	res, err := ArrivalLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != "drained" || !res.Complete {
		t.Fatalf("want a drained run, got %+v", res)
	}
	if res.Injected == 0 {
		t.Fatal("no tokens injected over a 40-round window at rate 0.5")
	}
	// Drained: every arrival plus the initial batch was collected.
	if res.Collected != res.Injected+int64(cfg.P.K) {
		t.Fatalf("collected %d, want injected %d + batch %d", res.Collected, res.Injected, cfg.P.K)
	}
	if res.FinalOutstanding != 0 {
		t.Fatalf("drained run with %d outstanding", res.FinalOutstanding)
	}
	if res.PeakOutstanding < cfg.P.K {
		t.Fatalf("peak queue %d below the initial batch", res.PeakOutstanding)
	}
	if !(res.Throughput > 0) {
		t.Fatalf("throughput %v", res.Throughput)
	}
	if !(res.LatencyP50 >= 1) || !(res.LatencyP99 >= res.LatencyP50) || !(res.LatencyMax >= res.LatencyP99) {
		t.Fatalf("latency ordering violated: p50=%v p99=%v max=%v",
			res.LatencyP50, res.LatencyP99, res.LatencyMax)
	}
	// Dissemination through the hierarchy of a 12-node net cannot finish
	// in one round, so an SLA of 1 must flag every collection.
	if res.SLAViolations != int(res.Collected) {
		t.Fatalf("SLA=1 flagged %d of %d collections", res.SLAViolations, res.Collected)
	}
	wantPace := float64(cfg.P.K) / float64(core.Theorem1Phases(cfg.P.Theta, cfg.P.Alpha)*cfg.P.T())
	if res.PaceThroughput != wantPace {
		t.Fatalf("pace throughput %v, want %v", res.PaceThroughput, wantPace)
	}
	if res.OfferedRate != 0.5 || res.Saturation != 0.5/wantPace {
		t.Fatalf("offered/saturation %v/%v", res.OfferedRate, res.Saturation)
	}

	// The whole report is bit-identical under the parallel engine.
	par := cfg
	par.Workers = 4
	resPar, err := ArrivalLoad(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, resPar) {
		t.Fatalf("workers=4 load report diverges:\nserial   %+v\nparallel %+v", res, resPar)
	}
}

func TestArrivalLoadBurstyOfferedRate(t *testing.T) {
	cfg := ArrivalConfig{
		P:        arrivalTestParams,
		Proto:    "flood",
		Arrivals: sim.Arrivals{Rate: 2, Seed: 5, OnRounds: 2, OffRounds: 6, Stop: 40},
	}
	res, err := ArrivalLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2.0 / 8.0; res.OfferedRate != want {
		t.Fatalf("duty-cycled offered rate %v, want %v", res.OfferedRate, want)
	}
	if res.Proto != "flood" {
		t.Fatalf("proto %q", res.Proto)
	}
}

func TestArrivalLoadValidation(t *testing.T) {
	base := ArrivalConfig{P: arrivalTestParams, Arrivals: sim.Arrivals{Rate: 1, Stop: 10}}
	cases := []struct {
		name string
		mut  func(*ArrivalConfig)
		want string
	}{
		{"no window", func(c *ArrivalConfig) { c.Arrivals.Stop = 0 }, "Stop"},
		{"bad rate", func(c *ArrivalConfig) { c.Arrivals.Rate = 0 }, "Rate"},
		{"bad proto", func(c *ArrivalConfig) { c.Proto = "gossip" }, "gossip"},
		{"bad params", func(c *ArrivalConfig) { c.P.N0 = 1 }, "n0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			_, err := ArrivalLoad(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestArrivalSweepAndTable(t *testing.T) {
	cfg := ArrivalConfig{
		P:        arrivalTestParams,
		Arrivals: sim.Arrivals{Seed: 11, Stop: 20},
	}
	results, err := ArrivalSweep(cfg, []float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].OfferedRate != 0.25 || results[1].OfferedRate != 0.5 {
		t.Fatalf("rates %v/%v", results[0].OfferedRate, results[1].OfferedRate)
	}
	tb := ArrivalTable("load", results)
	if tb.Len() != 2 {
		t.Fatalf("table rows %d", tb.Len())
	}
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"verdict", "drained", "peak queue"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table output missing %q:\n%s", want, buf.String())
		}
	}

	// A sweep propagates per-rate failures.
	if _, err := ArrivalSweep(cfg, []float64{-1}); err == nil {
		t.Fatal("negative-rate sweep did not fail")
	}
}

// TestRunPointArrivals wires the traffic process through the grid runner:
// all four rows run in arrival mode, per-seed metrics carry the arrival
// fields, and invalid processes fail the point up front.
func TestRunPointArrivals(t *testing.T) {
	dir := t.TempDir()
	cfg := PointConfig{
		P:          arrivalTestParams,
		NRT:        1,
		NR1:        1,
		Seeds:      2,
		ChurnEdges: 1,
		MetricsDir: dir,
		Arrivals:   &sim.Arrivals{Rate: 0.3, Seed: 9, Stop: 5},
	}
	rows, err := RunPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Completed != r.Seeds {
			t.Errorf("%s: %d/%d replications drained within budget %d",
				r.Model, r.Completed, r.Seeds, r.Budget)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "alg2_seed00.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"arrivals":`)) || !bytes.Contains(raw, []byte(`"outstanding":`)) {
		t.Error("per-seed metrics lack the arrival-mode fields")
	}
	// The process must actually inject traffic, not just flip the schema on:
	// a spec that drops cfg.Arrivals would pass the field check with all
	// counts zero.
	events, err := obs.ParseEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var injected int
	for _, ev := range events {
		injected += ev.Arrivals
	}
	if injected == 0 {
		t.Error("arrival process injected no tokens through RunPoint")
	}

	bad := cfg
	bad.Arrivals = &sim.Arrivals{Rate: -1}
	if _, err := RunPoint(bad); err == nil || !strings.Contains(err.Error(), "Rate") {
		t.Fatalf("invalid arrival process not rejected: %v", err)
	}
}
