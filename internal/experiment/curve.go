package experiment

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/gossip"
	"repro/internal/netcode"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// Curve is a per-round delivery trajectory: fraction of (node, token)
// pairs delivered after each round, in [0, 1].
type Curve struct {
	Name   string
	Points []float64
}

// measureCurve runs a protocol and records its coverage trajectory.
func measureCurve(name string, d ctvg.Dynamic, p sim.Protocol, assign *token.Assignment, rounds int) Curve {
	n := assign.N()
	total := float64(n * assign.K)
	pts := make([]float64, 0, rounds)
	obs := &sim.Observer{Progress: func(r int, delivered int) {
		pts = append(pts, float64(delivered)/total)
	}}
	sim.MustRunProtocol(d, p, assign, sim.Options{MaxRounds: rounds, Observer: obs})
	return Curve{Name: name, Points: pts}
}

// ConvergenceCurves measures the delivery trajectories of all four Table 2
// protocols at the configured operating point for a single seed: the
// extension "figure" showing not just final cost but the whole shape of
// dissemination over time.
func ConvergenceCurves(cfg PointConfig, seed uint64, rounds int) ([]Curve, error) {
	p := cfg.P
	p.NR = cfg.NRT
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, k, theta, L := p.N0, p.K, p.Theta, p.L
	T := p.T()
	assign := token.Spread(n, k, xrand.New(seed^0xabcdef))

	curves := make([]Curve, 0, 4)

	kloT := adversary.NewTInterval(n, T, cfg.ChurnEdges, xrand.New(seed))
	curves = append(curves, measureCurve("KLO T-interval", sim.NewFlat(kloT),
		baseline.KLOT{T: T}, assign, rounds))

	h1 := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: T,
		Reaffiliations: distribute(cfg.P.NM*cfg.NRT, core.Theorem1Phases(theta, p.Alpha)-1),
		ChurnEdges:     cfg.ChurnEdges,
	}, xrand.New(seed))
	curves = append(curves, measureCurve("Algorithm 1", h1, core.Alg1{T: T}, assign, rounds))

	flood := adversary.NewOneInterval(n, 0, xrand.New(seed))
	curves = append(curves, measureCurve("KLO flooding", sim.NewFlat(flood),
		baseline.Flood{}, assign, rounds))

	h2 := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: 1,
		Reaffiliations: distribute(cfg.P.NM*cfg.NR1, n-2),
		ChurnEdges:     cfg.ChurnEdges,
	}, xrand.New(seed))
	curves = append(curves, measureCurve("Algorithm 2", h2, core.Alg2{}, assign, rounds))

	// Comparators beyond the paper's four rows: Haeupler–Karger network
	// coding and push-pull gossip, both on the 1-interval adversary.
	coded := adversary.NewOneInterval(n, 0, xrand.New(seed))
	curves = append(curves, measureCurve("HK network coding", sim.NewFlat(coded),
		netcode.CodedFlood{Seed: seed}, assign, rounds))

	gos := adversary.NewOneInterval(n, 3*n, xrand.New(seed))
	curves = append(curves, measureCurve("push-pull gossip", sim.NewFlat(gos),
		gossip.PushPull{Seed: seed}, assign, rounds))

	return curves, nil
}

// sparkGlyphs are the eight levels of a unicode sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values in [0, 1] as a unicode bar strip.
func Sparkline(points []float64) string {
	var sb strings.Builder
	for _, v := range points {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		idx := int(v * float64(len(sparkGlyphs)-1))
		sb.WriteRune(sparkGlyphs[idx])
	}
	return sb.String()
}

// RenderCurves formats convergence curves as labelled sparklines with the
// round of full delivery.
func RenderCurves(curves []Curve) string {
	var sb strings.Builder
	width := 0
	for _, c := range curves {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, c := range curves {
		doneAt := "-"
		for r, v := range c.Points {
			if v >= 1 {
				doneAt = fmt.Sprintf("%d", r+1)
				break
			}
		}
		fmt.Fprintf(&sb, "%-*s  %s  done@%s\n", width, c.Name, Sparkline(c.Points), doneAt)
	}
	return sb.String()
}
