package experiment

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// RunGrid must be a pure scheduling change: the same points run through the
// shared cross-seed pool must aggregate to exactly the RowResults the
// sequential RunPoint path produces, in the same order.
func TestRunGridMatchesRunPoint(t *testing.T) {
	cfgs := []PointConfig{Table3Config(2), func() PointConfig {
		c := Table3Config(2)
		c.P.K = 4
		return c
	}()}

	var want [][]RowResult
	for _, cfg := range cfgs {
		rows, err := RunPoint(cfg)
		if err != nil {
			t.Fatalf("RunPoint: %v", err)
		}
		want = append(want, rows)
	}
	for _, workers := range []int{1, 4} {
		got, err := RunGrid(cfgs, workers)
		if err != nil {
			t.Fatalf("RunGrid(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("RunGrid(workers=%d) diverges from sequential RunPoint results", workers)
		}
	}
}

// UseDeltaTraces must be a pure storage change: every aggregate of a point
// run over recorded delta traces must equal the live-adversary run.
func TestUseDeltaTracesMatchesLive(t *testing.T) {
	cfg := Table3Config(2)
	live, err := RunPoint(cfg)
	if err != nil {
		t.Fatalf("live: %v", err)
	}
	cfg.UseDeltaTraces = true
	delta, err := RunPoint(cfg)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	if !reflect.DeepEqual(delta, live) {
		t.Fatalf("delta-trace run diverges from live run:\n got  %+v\n want %+v", delta, live)
	}
}

// Per-seed artifact files must land in the same places with the same names
// under RunGrid as under RunPoint.
func TestRunGridWritesPerSeedFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Table3Config(2)
	cfg.MetricsDir = filepath.Join(dir, "obs")
	cfg.ProvenanceDir = filepath.Join(dir, "prov")
	if _, err := RunGrid([]PointConfig{cfg}, 2); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	for _, f := range []string{
		"obs/klo_t_seed00.jsonl", "obs/alg1_seed01.jsonl",
		"obs/flood_seed00.jsonl", "obs/alg2_seed01.jsonl",
		"prov/alg1_seed00.prov.jsonl", "prov/alg2_seed01.prov.jsonl",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("expected artifact %s: %v", f, err)
		}
	}
}
