package experiment

import (
	"strings"
	"testing"
)

func TestMobilityCampaign(t *testing.T) {
	pts, err := MobilityCampaign(30, 4, []float64{0.5, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Alg2Done != pt.Seeds || pt.FloodDone != pt.Seeds {
			t.Fatalf("speed %.1f: incomplete runs (alg2 %d/%d, flood %d/%d)",
				pt.Speed, pt.Alg2Done, pt.Seeds, pt.FloodDone, pt.Seeds)
		}
		if pt.Alg2Comm <= 0 || pt.FloodComm <= 0 {
			t.Fatalf("speed %.1f: zero cost", pt.Speed)
		}
		// Clustering must still beat flooding on the physical substrate.
		if pt.Alg2Comm >= pt.FloodComm {
			t.Fatalf("speed %.1f: Alg2 (%.0f) not below flooding (%.0f)",
				pt.Speed, pt.Alg2Comm, pt.FloodComm)
		}
	}
	// Physical grounding of n_r: faster motion means more re-affiliation.
	if pts[1].MeasuredNR <= pts[0].MeasuredNR {
		t.Fatalf("measured n_r did not rise with speed: %.3f -> %.3f",
			pts[0].MeasuredNR, pts[1].MeasuredNR)
	}
}

func TestMobilityCampaignValidation(t *testing.T) {
	if _, err := MobilityCampaign(5, 1, []float64{1}, 1); err == nil {
		t.Fatal("tiny n accepted")
	}
	if _, err := MobilityCampaign(30, 2, []float64{1}, 0); err == nil {
		t.Fatal("zero seeds accepted")
	}
}

func TestMobilityTable(t *testing.T) {
	pts, err := MobilityCampaign(30, 3, []float64{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := MobilityTable(pts).String()
	if !strings.Contains(out, "measured n_r") || !strings.Contains(out, "saving") {
		t.Fatalf("table malformed:\n%s", out)
	}
}
