package experiment

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// TestAnalyticBoundDominatesMeasured ties the paper's cost formula to the
// simulator: on a conforming (T, L)-HiNet with a stable head set, measured
// communication must stay below the analytic worst case evaluated with the
// adversary's *actual* structural parameters —
//
//	relays·M·k  (every relay may broadcast every token once per phase)
//	+ k         (initial member uploads: each token has one owner)
//	+ reaffils·k (a re-affiliating member re-uploads at most its TA)
func TestAnalyticBoundDominatesMeasured(t *testing.T) {
	const (
		n, theta, L = 100, 30, 2
		k, alpha    = 8, 5
	)
	T := core.Theorem1T(k, alpha, L)
	phases := core.Theorem1Phases(theta, alpha)
	relays := theta + (theta-1)*(L-1)
	for seed := uint64(0); seed < 6; seed++ {
		adv := adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, L: L, T: T,
			Reaffiliations: 4, ChurnEdges: 10,
		}, xrand.New(seed))
		assign := token.Spread(n, k, xrand.New(seed+55))
		met := sim.MustRunProtocol(adv, core.Alg1{T: T}, assign,
			sim.Options{MaxRounds: phases * T})
		if !met.Complete {
			t.Fatalf("seed %d: incomplete", seed)
		}
		reaffils := adv.Stats().Reaffiliations
		bound := int64(relays*phases*k + k + reaffils*k)
		if met.TokensSent > bound {
			t.Fatalf("seed %d: measured %d exceeds analytic bound %d", seed, met.TokensSent, bound)
		}
		// Relay-side sub-bound.
		if relay := met.TokensByKind[sim.KindRelay]; relay > int64(relays*phases*k) {
			t.Fatalf("seed %d: relay tokens %d exceed %d", seed, relay, relays*phases*k)
		}
		// Upload-side sub-bound.
		if up := met.TokensByKind[sim.KindUpload]; up > int64(k+reaffils*k) {
			t.Fatalf("seed %d: upload tokens %d exceed %d", seed, up, k+reaffils*k)
		}
	}
}

// TestScaleN1000 exercises the engine and adversary at an order of
// magnitude above the paper's evaluation point; the shape claim must
// survive the scale-up.
func TestScaleN1000(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const (
		n, theta, L = 1000, 300, 2
		k, alpha    = 8, 5
	)
	T := core.Theorem1T(k, alpha, L)
	phases := core.Theorem1Phases(theta, alpha)

	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: T,
		Reaffiliations: 30, ChurnEdges: 100,
	}, xrand.New(1))
	assign := token.Spread(n, k, xrand.New(2))
	alg1 := sim.MustRunProtocol(adv, core.Alg1{T: T}, assign,
		sim.Options{MaxRounds: phases * T})
	if !alg1.Complete {
		t.Fatalf("Alg1 incomplete at n=1000: %v", alg1)
	}

	flat := sim.NewFlat(adversary.NewTInterval(n, T, 100, xrand.New(1)))
	klot := sim.MustRunProtocol(flat, baseline.KLOT{T: T}, assign,
		sim.Options{MaxRounds: baseline.KLOTPhases(n, T, k) * T, StopWhenComplete: true})
	if !klot.Complete {
		t.Fatalf("KLOT incomplete at n=1000: %v", klot)
	}
	// Shape at scale: the full-budget Alg1 run must still undercut even
	// the early-stopped KLOT run... KLOT here stops at completion, so
	// compare against its full-budget analytic instead: Alg1's measured
	// cost stays under half of KLO-T's analytic cost at these proportions
	// (Sweep A reached x0.40 at n0=400 and the ratio shrinks with n).
	p := scalePoint(n, k, alpha, L, 3, 10, 1, 100).P
	kloAnalytic := float64(analysisKLOT(p))
	if float64(alg1.TokensSent) > 0.5*kloAnalytic {
		t.Fatalf("Alg1 at n=1000 cost %d vs KLO-T analytic %.0f: shape broke at scale",
			alg1.TokensSent, kloAnalytic)
	}
}

func analysisKLOT(p analysis.Params) int {
	return analysis.KLOTInterval(p).Comm
}
