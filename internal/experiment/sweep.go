package experiment

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/report"
)

// SweepPoint is one x-value of a parameter sweep with the four rows'
// analytic and measured communication costs.
type SweepPoint struct {
	// X is the swept parameter value.
	X int
	// Rows are the four Table 2 rows at this x, in paper order.
	Rows []RowResult
}

// scalePoint derives a full operating point from a node count, keeping the
// Table 3 proportions: θ = 0.3·n0 (at least 2), k, α, L fixed, and n_m
// taken as the member population the (T, L)-HiNet construction actually
// yields (n0 − heads − gateways).
func scalePoint(n0, k, alpha, L, nrT, nr1, seeds, churn int) PointConfig {
	theta := (3 * n0) / 10
	if theta < 2 {
		theta = 2
	}
	gateways := (theta - 1) * (L - 1)
	nm := n0 - theta - gateways
	if nm < 1 {
		nm = 1
	}
	return PointConfig{
		P:          analysis.Params{N0: n0, Theta: theta, NM: nm, K: k, Alpha: alpha, L: L},
		NRT:        nrT,
		NR1:        nr1,
		Seeds:      seeds,
		ChurnEdges: churn,
	}
}

// sweepGrid runs one PointConfig per x-value through RunGrid's shared
// cross-seed pool and pairs each x with its rows.
func sweepGrid(xs []int, label string, mk func(x int) PointConfig) ([]SweepPoint, error) {
	cfgs := make([]PointConfig, len(xs))
	for i, x := range xs {
		cfgs[i] = mk(x)
	}
	grid, err := RunGrid(cfgs, 0)
	if err != nil {
		return nil, fmt.Errorf("%s sweep: %w", label, err)
	}
	out := make([]SweepPoint, len(xs))
	for i, x := range xs {
		out[i] = SweepPoint{X: x, Rows: grid[i]}
	}
	return out, nil
}

// SweepN0 sweeps the network size with Table 3 proportions and returns one
// SweepPoint per n0. The paper's headline shape — the HiNet rows cost a
// fraction of their flat counterparts, with the gap widening in n0 — is
// what this sweep regenerates.
func SweepN0(ns []int, seeds int) ([]SweepPoint, error) {
	return sweepGrid(ns, "n0", func(n0 int) PointConfig {
		return scalePoint(n0, 8, 5, 2, analysis.Table3NRT, analysis.Table3NR1, seeds, n0/10)
	})
}

// SweepK sweeps the token count at the Table 3 network point.
func SweepK(ks []int, seeds int) ([]SweepPoint, error) {
	return sweepGrid(ks, "k", func(k int) PointConfig {
		cfg := Table3Config(seeds)
		cfg.P.K = k
		return cfg
	})
}

// SweepNR sweeps the re-affiliation rate applied to both HiNet rows. The
// flat baselines are insensitive to it; the HiNet communication rises
// linearly with slope n_m·k, and the crossover where clustering stops
// paying appears only at implausibly high churn — the paper's "n_r should
// be much less than n_0" argument, made executable.
func SweepNR(nrs []int, seeds int) ([]SweepPoint, error) {
	return sweepGrid(nrs, "nr", func(nr int) PointConfig {
		cfg := Table3Config(seeds)
		cfg.NRT = nr
		cfg.NR1 = nr
		return cfg
	})
}

// SweepAlpha sweeps the progress coefficient α at the Table 3 network
// point — a tradeoff the paper leaves unexplored. Raising α lengthens each
// phase (T = k + α·L) but cuts the phase count (⌈θ/α⌉ + 1), so both the
// analytic time (⌈θ/α⌉+1)(k+αL) and the analytic communication
// (⌈θ/α⌉+1)(n0−nm)k + nm·nr·k are non-monotone in α; the sweep exposes the
// optimum.
func SweepAlpha(alphas []int, seeds int) ([]SweepPoint, error) {
	return sweepGrid(alphas, "alpha", func(a int) PointConfig {
		cfg := Table3Config(seeds)
		cfg.P.Alpha = a
		return cfg
	})
}

// AlphaTable renders the α sweep focused on the Algorithm 1 tradeoff.
func AlphaTable(pts []SweepPoint) *report.Table {
	tb := report.NewTable(
		"Sweep D — the α tradeoff for Algorithm 1 (n0=100, θ=30, k=8, L=2)",
		"α", "T=k+αL", "phases", "budget (rounds)", "formula comm", "sim time", "sim comm",
	)
	for _, pt := range pts {
		alg1 := pt.Rows[1]
		T := 8 + pt.X*2
		tb.AddRowf(pt.X, T, alg1.Budget/T, alg1.Budget, alg1.Analytic.Comm,
			alg1.MeasuredTime, alg1.MeasuredComm)
	}
	return tb
}

// SweepTable renders sweep points as a table: one line per x with the
// analytic and simulated communication of all four rows plus the HiNet/KLO
// cost ratios.
func SweepTable(name, xLabel string, pts []SweepPoint) *report.Table {
	tb := report.NewTable(name,
		xLabel,
		"KLO-T comm", "Alg1 comm", "Alg1/KLO-T",
		"KLO-1 comm", "Alg2 comm", "Alg2/KLO-1",
		"Alg1 sim", "KLO-T sim", "Alg2 sim", "KLO-1 sim",
	)
	for _, pt := range pts {
		kloT, alg1, klo1, alg2 := pt.Rows[0], pt.Rows[1], pt.Rows[2], pt.Rows[3]
		tb.AddRowf(pt.X,
			kloT.Analytic.Comm, alg1.Analytic.Comm,
			report.Ratio(float64(kloT.Analytic.Comm), float64(alg1.Analytic.Comm)),
			klo1.Analytic.Comm, alg2.Analytic.Comm,
			report.Ratio(float64(klo1.Analytic.Comm), float64(alg2.Analytic.Comm)),
			alg1.MeasuredComm, kloT.MeasuredComm, alg2.MeasuredComm, klo1.MeasuredComm,
		)
	}
	return tb
}
