package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/provenance"
)

func TestTable3PointShape(t *testing.T) {
	// The headline reproduction: at the paper's Table 3 operating point,
	// simulation must reproduce the paper's *shape* — Algorithm 1 beats
	// KLO-T on communication, Algorithm 2 beats flooding, and all runs
	// complete within their prescribed budgets.
	cfg := Table3Config(4)
	rows, err := RunPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	kloT, alg1, klo1, alg2 := rows[0], rows[1], rows[2], rows[3]

	// Completion within the paper's budgets, every seed.
	for _, r := range rows {
		if r.Completed != r.Seeds {
			t.Fatalf("%s: only %d/%d replications completed within budget %d",
				r.Model, r.Completed, r.Seeds, r.Budget)
		}
	}

	// Analytic rows must match the analysis package exactly.
	if alg1.Analytic != analysis.Table3()[1].Cost {
		t.Fatalf("alg1 analytic %+v", alg1.Analytic)
	}

	// Shape: measured communication ordering matches the paper.
	if alg1.MeasuredComm >= kloT.MeasuredComm {
		t.Fatalf("Alg1 measured comm %.0f not below KLO-T %.0f",
			alg1.MeasuredComm, kloT.MeasuredComm)
	}
	if alg2.MeasuredComm >= klo1.MeasuredComm {
		t.Fatalf("Alg2 measured comm %.0f not below KLO-1 %.0f",
			alg2.MeasuredComm, klo1.MeasuredComm)
	}
	// Factor check: the analytic saving at this point is ~46% (T rows)
	// and ~36% (1-interval rows). Simulation should show a comparable or
	// larger saving (measured baselines pay full freight; measured HiNet
	// saves on top via TR/TS suppression). Require at least 30%.
	if r := 1 - alg1.MeasuredComm/kloT.MeasuredComm; r < 0.30 {
		t.Fatalf("Alg1 measured saving %.2f below shape threshold", r)
	}
	if r := 1 - alg2.MeasuredComm/klo1.MeasuredComm; r < 0.30 {
		t.Fatalf("Alg2 measured saving %.2f below shape threshold", r)
	}

	// Time shape: Alg1 completes no slower than its budget and the
	// 1-interval rows complete well under n-1.
	if alg1.MeasuredTime > float64(alg1.Budget) {
		t.Fatalf("Alg1 time %.1f exceeds budget %d", alg1.MeasuredTime, alg1.Budget)
	}
	if alg2.MeasuredTime > float64(alg2.Budget) {
		t.Fatalf("Alg2 time %.1f exceeds budget %d", alg2.MeasuredTime, alg2.Budget)
	}
}

func TestRunPointValidation(t *testing.T) {
	cfg := Table3Config(0)
	if _, err := RunPoint(cfg); err == nil {
		t.Fatal("zero seeds accepted")
	}
	cfg = Table3Config(1)
	cfg.P.K = 0
	if _, err := RunPoint(cfg); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestTable3Report(t *testing.T) {
	tb, rows, err := Table3Report(Table3Config(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || tb.Len() != 4 {
		t.Fatalf("report shape: %d rows, table len %d", len(rows), tb.Len())
	}
	out := tb.String()
	for _, want := range []string{"(k+α*L, L)-HiNet", "paper comm", "8000", "4320"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunPointRecordsSeedSeries(t *testing.T) {
	// With MetricsDir and ProvenanceDir set, every row × seed must leave a
	// parseable per-round JSONL series whose final delivered count reflects
	// the row's completion, and a parseable provenance stream whose edge
	// count reconciles with it.
	dir := t.TempDir()
	cfg := Table3Config(2)
	cfg.MetricsDir = filepath.Join(dir, "series")
	cfg.ProvenanceDir = filepath.Join(dir, "prov")
	rows, err := RunPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, slug := range []string{"klo_t", "alg1", "flood", "alg2"} {
		for seed := 0; seed < cfg.Seeds; seed++ {
			path := filepath.Join(cfg.MetricsDir, fmt.Sprintf("%s_seed%02d.jsonl", slug, seed))
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			events, err := obs.ParseEvents(f)
			f.Close()
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if len(events) == 0 {
				t.Fatalf("%s: empty series", path)
			}
			last := events[len(events)-1]
			if last.Total != cfg.P.N0*cfg.P.K {
				t.Fatalf("%s: total %d, want %d", path, last.Total, cfg.P.N0*cfg.P.K)
			}
			if last.Delivered != last.Total {
				t.Fatalf("%s: series ends incomplete (%d/%d) but row completed",
					path, last.Delivered, last.Total)
			}
		}
	}
	// The alg1 series must carry the phase structure (phase advances).
	f, err := os.Open(filepath.Join(cfg.MetricsDir, "alg1_seed00.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ParseEvents(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	T := cfg.P.T()
	for _, e := range events {
		if e.Phase != e.Round/T {
			t.Fatalf("round %d labelled phase %d, want %d", e.Round, e.Phase, e.Round/T)
		}
	}

	// Every row × seed must also leave a parseable provenance stream: a
	// completed run's edge count is exactly the n·k pairs minus the initial
	// holders, and the obs series' first-delivery column reconciles with it.
	for _, slug := range []string{"klo_t", "alg1", "flood", "alg2"} {
		for seed := 0; seed < cfg.Seeds; seed++ {
			path := filepath.Join(cfg.ProvenanceDir, fmt.Sprintf("%s_seed%02d.prov.jsonl", slug, seed))
			pf, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			plog, err := provenance.ParseLog(pf)
			pf.Close()
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			initial := 0
			for _, hs := range plog.Meta.Holders {
				initial += len(hs)
			}
			if want := plog.Meta.N*plog.Meta.K - initial; len(plog.Edges) != want {
				t.Fatalf("%s: %d edges, want %d (complete run)", path, len(plog.Edges), want)
			}
			if plog.Summary == nil || plog.Summary.First != int64(len(plog.Edges)) {
				t.Fatalf("%s: summary does not reconcile with the edge stream", path)
			}
		}
	}
	// All four rows carry mean delivery accounting, and the fault-free
	// Algorithm 1 row must satisfy the Theorem 1 pace (the acceptance
	// criterion: the checker stays silent on conformant runs).
	for _, r := range rows {
		if r.FirstDeliveries <= 0 {
			t.Fatalf("%s: no first-delivery accounting", r.Model)
		}
	}
	if rows[1].PaceViolations != 0 {
		t.Fatalf("alg1 row reports %d pace violations on fault-free runs", rows[1].PaceViolations)
	}
}

func TestDistribute(t *testing.T) {
	if distribute(120, 6) != 20 {
		t.Fatalf("distribute(120,6)=%d", distribute(120, 6))
	}
	if distribute(121, 6) != 21 {
		t.Fatalf("distribute rounds down")
	}
	if distribute(5, 0) != 0 {
		t.Fatal("zero boundaries")
	}
}

func TestScalePointProportions(t *testing.T) {
	cfg := scalePoint(200, 8, 5, 2, 3, 10, 1, 10)
	if cfg.P.N0 != 200 || cfg.P.Theta != 60 {
		t.Fatalf("%+v", cfg.P)
	}
	// nm = 200 - 60 - 59 = 81.
	if cfg.P.NM != 81 {
		t.Fatalf("nm=%d", cfg.P.NM)
	}
	if err := cfg.P.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tiny n floor.
	tiny := scalePoint(5, 2, 1, 1, 1, 1, 1, 0)
	if tiny.P.Theta < 2 || tiny.P.NM < 1 {
		t.Fatalf("floors violated: %+v", tiny.P)
	}
}

func TestSweepN0ShapeHolds(t *testing.T) {
	pts, err := SweepN0([]int{40, 80}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	for _, pt := range pts {
		kloT, alg1, klo1, alg2 := pt.Rows[0], pt.Rows[1], pt.Rows[2], pt.Rows[3]
		if alg1.Analytic.Comm >= kloT.Analytic.Comm {
			t.Fatalf("n0=%d: analytic Alg1 not cheaper", pt.X)
		}
		if alg2.Analytic.Comm >= klo1.Analytic.Comm {
			t.Fatalf("n0=%d: analytic Alg2 not cheaper", pt.X)
		}
		if alg1.MeasuredComm >= kloT.MeasuredComm {
			t.Fatalf("n0=%d: measured Alg1 not cheaper", pt.X)
		}
		if alg2.MeasuredComm >= klo1.MeasuredComm {
			t.Fatalf("n0=%d: measured Alg2 not cheaper", pt.X)
		}
	}
	// The flat-vs-HiNet gap must widen with n0 (analytic: quadratic vs
	// linear in n0).
	r0 := float64(pts[0].Rows[1].Analytic.Comm) / float64(pts[0].Rows[0].Analytic.Comm)
	r1 := float64(pts[1].Rows[1].Analytic.Comm) / float64(pts[1].Rows[0].Analytic.Comm)
	if r1 >= r0 {
		t.Fatalf("Alg1/KLO-T ratio did not shrink with n0: %.3f -> %.3f", r0, r1)
	}
}

func TestSweepKMonotone(t *testing.T) {
	pts, err := SweepK([]int{2, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// All costs grow with k.
	for rowIdx := 0; rowIdx < 4; rowIdx++ {
		if pts[1].Rows[rowIdx].Analytic.Comm <= pts[0].Rows[rowIdx].Analytic.Comm {
			t.Fatalf("row %d analytic comm not increasing in k", rowIdx)
		}
		if pts[1].Rows[rowIdx].MeasuredComm <= pts[0].Rows[rowIdx].MeasuredComm {
			t.Fatalf("row %d measured comm not increasing in k", rowIdx)
		}
	}
}

func TestSweepNRBaselineInsensitive(t *testing.T) {
	pts, err := SweepNR([]int{0, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Flat baselines' analytic cost must not depend on nr.
	if pts[0].Rows[0].Analytic != pts[1].Rows[0].Analytic {
		t.Fatal("KLO-T analytic changed with nr")
	}
	if pts[0].Rows[2].Analytic != pts[1].Rows[2].Analytic {
		t.Fatal("KLO-1 analytic changed with nr")
	}
	// HiNet analytic cost rises with nr.
	if pts[1].Rows[1].Analytic.Comm <= pts[0].Rows[1].Analytic.Comm {
		t.Fatal("Alg1 analytic comm not increasing in nr")
	}
	if pts[1].Rows[3].Analytic.Comm <= pts[0].Rows[3].Analytic.Comm {
		t.Fatal("Alg2 analytic comm not increasing in nr")
	}
	// Measured HiNet cost also rises with churn.
	if pts[1].Rows[1].MeasuredComm <= pts[0].Rows[1].MeasuredComm {
		t.Fatal("Alg1 measured comm not increasing in nr")
	}
}

func TestSweepAlphaTradeoff(t *testing.T) {
	pts, err := SweepAlpha([]int{1, 5, 30}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 1's analytic communication falls with α (fewer phases).
	if !(pts[0].Rows[1].Analytic.Comm > pts[1].Rows[1].Analytic.Comm &&
		pts[1].Rows[1].Analytic.Comm > pts[2].Rows[1].Analytic.Comm) {
		t.Fatalf("comm not decreasing in α: %d %d %d",
			pts[0].Rows[1].Analytic.Comm, pts[1].Rows[1].Analytic.Comm, pts[2].Rows[1].Analytic.Comm)
	}
	// All runs complete within their budgets.
	for _, pt := range pts {
		if pt.Rows[1].Completed != pt.Rows[1].Seeds {
			t.Fatalf("alpha=%d incomplete", pt.X)
		}
	}
	out := AlphaTable(pts).String()
	if !strings.Contains(out, "T=k+αL") {
		t.Fatalf("alpha table malformed:\n%s", out)
	}
}

func TestRowResultBytesAndRoles(t *testing.T) {
	rows, err := RunPoint(Table3Config(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MeasuredBytes <= 0 {
			t.Fatalf("%s: no byte accounting", r.Model)
		}
		if r.RelayTokens+r.MemberTokens == 0 {
			t.Fatalf("%s: no role accounting", r.Model)
		}
	}
	alg1 := rows[1]
	// The energy story: under Algorithm 1 the backbone pays nearly all
	// the cost; members pay a small fraction.
	if alg1.MemberTokens >= alg1.RelayTokens/2 {
		t.Fatalf("members pay too much under Alg1: relay=%.0f member=%.0f",
			alg1.RelayTokens, alg1.MemberTokens)
	}
	// Flat protocols attribute everything to unaffiliated/member senders.
	kloT := rows[0]
	if kloT.RelayTokens != 0 {
		t.Fatalf("flat protocol attributed tokens to relays: %.0f", kloT.RelayTokens)
	}
	// Byte-level shape: Algorithm 1 also wins in bytes.
	if alg1.MeasuredBytes >= kloT.MeasuredBytes {
		t.Fatalf("Alg1 bytes %.0f not below KLO-T %.0f", alg1.MeasuredBytes, kloT.MeasuredBytes)
	}
}

func TestSweepTableRendering(t *testing.T) {
	pts, err := SweepN0([]int{40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := SweepTable("sweep", "n0", pts)
	out := tb.String()
	if !strings.Contains(out, "40") || !strings.Contains(out, "Alg1/KLO-T") {
		t.Fatalf("sweep table malformed:\n%s", out)
	}
}
