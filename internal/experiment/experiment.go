// Package experiment is the harness that regenerates the paper's evaluation
// (Tables 2 and 3) and its extension sweeps, pairing the closed-form
// analytical costs with measured costs from executable simulation.
//
// Every row of the paper's comparison maps to a (protocol, adversary)
// pair run over several seeds:
//
//	(k+αL)-interval connected [7]  -> baseline.KLOT on adversary.TInterval
//	(k+αL, L)-HiNet (Algorithm 1)  -> core.Alg1    on adversary.HiNet (T=k+αL)
//	1-interval connected [7]       -> baseline.Flood on adversary.OneInterval
//	(1, L)-HiNet (Algorithm 2)     -> core.Alg2    on adversary.HiNet (T=1)
//
// Measured communication is the cost of the full prescribed round budget
// (the analytical formulas are worst-case budgets, not early-exit costs);
// measured time is the first round after which every node held all k
// tokens. Replications fan out over a worker pool and aggregate
// deterministically.
package experiment

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"

	"repro/internal/adversary"
	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/obs/recorder"
	"repro/internal/parallel"
	"repro/internal/provenance"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// PointConfig describes one measured operating point.
type PointConfig struct {
	// P carries the paper's Table 1 parameters (NR is ignored here; the
	// per-row NRT/NR1 below are used instead).
	P analysis.Params
	// NRT and NR1 are the average per-member re-affiliation counts for
	// the (T, L)-HiNet and (1, L)-HiNet rows respectively.
	NRT, NR1 int
	// Seeds is the number of Monte-Carlo replications per row.
	Seeds int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// ChurnEdges is the per-round random edge churn of every adversary.
	ChurnEdges int
	// MetricsDir, when non-empty, makes every replication record its
	// per-round event series as <row-slug>_seed<NN>.jsonl in that
	// directory (see internal/obs for the schema). The directory is
	// created if missing.
	MetricsDir string
	// ProvenanceDir, when non-empty, makes every replication record its
	// dissemination DAG as <row-slug>_seed<NN>.prov.jsonl in that directory
	// (see internal/provenance for the schema). The Algorithm 1 row runs
	// with the Theorem 1 pace checker armed; its violation count is summed
	// into the row's PaceViolations. The directory is created if missing.
	ProvenanceDir string
	// TimingDir, when non-empty, attaches the engine's self-profiling
	// layer to every replication and records the per-round stage spans as
	// <row-slug>_seed<NN>.timing.jsonl in that directory (see
	// internal/obs.Timing for the schema). Each replication also runs
	// under an alg=<row-slug> pprof label, so CPU profiles taken over a
	// grid run attribute samples by row and stage. The per-stage wall/CPU
	// totals are summed into the row's StageWallNs / StageCPUNs. The
	// directory is created if missing.
	TimingDir string
	// NoCache disables the engine's stability-window cache
	// (sim.Options.NoStabilityCache) in every replication — the A/B switch
	// for verifying the cache changes timings only, never results.
	NoCache bool
	// NoDelta disables delta-aware delivery (sim.Options.NoDeltaDelivery)
	// in every replication — the A/B switch for verifying the skip changes
	// timings only, never results.
	NoDelta bool
	// UseDeltaTraces records every replication's dynamic into a
	// ctvg.DeltaTrace (O(changes) storage, copy-on-write snapshots) before
	// the run instead of letting the engine pull rounds from the live
	// adversary. Results are identical either way — proven by the
	// delta-trace equivalence suite — so this is the A/B switch keeping the
	// snapshot path reachable as the conformance oracle. Off by default.
	UseDeltaTraces bool
	// Faults, when non-nil, injects the same fault plan into every
	// replication of every row, with the plan's seed mixed with the
	// replication seed so fault randomness varies across seeds like
	// everything else. Invalid plans fail the point before any row runs.
	Faults *sim.Faults
	// Arrivals, when non-nil, switches every replication of every row into
	// steady-state mode (sim.Options.Arrivals): tokens keep arriving per
	// the configured process on top of the initial batch and garbage
	// collection keeps state bounded. The process seed is mixed with the
	// replication seed so each seed draws its own traffic. Invalid
	// processes fail the point before any row runs.
	Arrivals *sim.Arrivals
	// SelfStabilize, when non-nil, switches every replication of every row
	// to the emergent hierarchy (sim.Options.SelfStabilize): the
	// self-stabilizing clustering protocol maintains the roles over the
	// same faulty links the tokens ride, instead of the adversary's oracle
	// hierarchy. Flat-protocol rows (KLO, flooding) ignore roles and are
	// unaffected beyond the maintenance beacon budget.
	SelfStabilize *sim.SelfStabilize
	// HealthRules, when non-empty, attaches the online health engine
	// (internal/obs/health) to every replication with this rule spec
	// (health.ParseRules syntax). Violation counts are summed into each
	// row's HealthViolations. Invalid specs fail the point before any row
	// runs.
	HealthRules string
	// DumpDir, together with HealthRules, arms the flight recorder
	// (internal/obs/recorder) on every replication: when non-empty it
	// receives a postmortem bundle per anomaly, named
	// <row-slug>_seed<NN>-r<round>-<reason>.dump. Bundle counts are summed
	// into each row's Bundles. The directory is created if missing.
	DumpDir string
	// Stop, when non-nil, is polled at every round barrier of every
	// replication; once it returns true each in-flight run ends cleanly at
	// its current round (streams flushed, files valid). The hook for
	// SIGINT-driven graceful shutdown in the CLIs.
	Stop func() bool
}

// Table3Config is the paper's Table 3 operating point with a default
// replication count.
func Table3Config(seeds int) PointConfig {
	return PointConfig{
		P:          analysis.Table3Params,
		NRT:        analysis.Table3NRT,
		NR1:        analysis.Table3NR1,
		Seeds:      seeds,
		ChurnEdges: 10,
	}
}

// RowResult pairs one row's analytical and measured costs.
type RowResult struct {
	// Model is the paper's row label.
	Model string
	// Analytic is the Table 2 formula evaluated at this point.
	Analytic analysis.Cost
	// Budget is the prescribed round budget actually executed.
	Budget int
	// MeasuredTime is the mean completion round across seeds.
	MeasuredTime float64
	// MeasuredComm is the mean total token-sends over the full budget.
	MeasuredComm float64
	// TimeStddev and CommStddev are the sample standard deviations of the
	// per-seed measurements.
	TimeStddev float64
	CommStddev float64
	// MeasuredBytes is the mean wire-level cost under the internal/wire
	// codec (header + token bitmap + 32-byte token bodies).
	MeasuredBytes float64
	// RelayTokens and MemberTokens split MeasuredComm by sender role
	// (heads+gateways vs members) — the paper's energy argument.
	RelayTokens  float64
	MemberTokens float64
	// Completed counts replications that finished within the budget.
	Completed int
	// Seeds is the replication count.
	Seeds int
	// FirstDeliveries and RedundantDeliveries are mean per-replication
	// provenance totals (0 unless ProvenanceDir enabled tracing).
	FirstDeliveries     float64
	RedundantDeliveries float64
	// PaceViolations sums Theorem 1 pace warnings across replications
	// (Algorithm 1 rows with tracing only).
	PaceViolations int
	// StageWallNs / StageCPUNs sum the engine's per-stage self-profiling
	// spans across replications, indexed by sim.Stage; TimedRounds sums
	// the instrumented rounds. All nil/0 unless TimingDir armed timing.
	StageWallNs []int64
	StageCPUNs  []int64
	TimedRounds int
	// HealthViolations sums SLO-rule violations across replications and
	// Bundles counts the postmortem bundles written (0 unless HealthRules
	// / DumpDir armed the flight recorder).
	HealthViolations int
	Bundles          int
}

// measured runs a protocol/adversary pairing over seeds and aggregates.
type runSpec struct {
	model string
	// slug names the row's per-seed metrics files; phaseLen feeds the
	// event stream's phase column (1 for per-round protocols).
	slug       string
	phaseLen   int
	metricsDir string
	provDir    string
	timingDir  string
	// paceBudget arms the provenance tracer's pace checker (Algorithm 1
	// rows only; nil leaves the checker off).
	paceBudget *provenance.Budget
	budget     int
	build      func(seed uint64) (ctvg.Dynamic, sim.Protocol)
	k          int
	n          int
	seeds      int
	workers    int
	noCache    bool
	noDelta    bool
	deltas     bool
	faults     *sim.Faults
	arrivals   *sim.Arrivals
	selfstab   *sim.SelfStabilize
	// healthRules/dumpDir arm the flight recorder; alpha feeds its
	// Theorem-1 pace rule; stop is the graceful-shutdown poll.
	healthRules []health.Rule
	dumpDir     string
	alpha       int
	stop        func() bool
}

// seedSample is one replication's raw measurements, produced by runSeed and
// folded into a RowResult by aggregateRow.
type seedSample struct {
	time      int
	comm      int64
	bytes     int64
	relay     int64
	member    int64
	first     int64
	redundant int64
	pace      int
	complete  bool
	wall      []int64 // per-sim.Stage span totals (timing runs only)
	cpu       []int64
	rounds    int
	health    int
	bundles   int
	err       error
}

// runSeed executes replication i of a row: one (adversary, protocol) run
// with whatever instrumentation the spec arms. It is the unit of work both
// runRow's per-row pool and RunGrid's cross-seed pool schedule.
func runSeed(spec runSpec, i int) seedSample {
	type sample = seedSample
	{
		seed := uint64(i)*1_000_003 + 17
		d, p := spec.build(seed)
		if spec.deltas {
			d = ctvg.RecordDeltas(d, spec.budget)
		}
		assign := token.Spread(spec.n, spec.k, xrand.New(seed^0xabcdef))
		opts := sim.Options{
			MaxRounds:        spec.budget,
			SizeFn:           wire.Size,
			NoStabilityCache: spec.noCache,
			NoDeltaDelivery:  spec.noDelta,
		}
		if spec.faults != nil {
			// Per-replication copy so each seed draws its own fault
			// randomness; the schedule fields are shared read-only.
			plan := *spec.faults
			plan.Seed ^= seed
			opts.Faults = &plan
		}
		if spec.arrivals != nil {
			// Same idiom: each seed draws its own traffic.
			arr := *spec.arrivals
			arr.Seed ^= seed
			opts.Arrivals = &arr
		}
		if spec.selfstab != nil {
			ss := *spec.selfstab
			opts.SelfStabilize = &ss
		}
		if spec.stop != nil {
			stop := spec.stop
			opts.Stop = func(int) bool { return stop() }
		}
		var col *obs.Collector
		var rec *recorder.Recorder
		var mf *os.File
		rules := spec.healthRules
		if spec.paceBudget == nil {
			// The Theorem-1 pace floor only governs Algorithm 1 rows; on
			// the other rows the rule would flag perfectly healthy runs.
			kept := rules[:0:0]
			for _, r := range rules {
				if r.Kind != health.KindPace {
					kept = append(kept, r)
				}
			}
			rules = kept
		}
		recording := len(spec.healthRules) > 0 || spec.dumpDir != ""
		if spec.metricsDir != "" || recording {
			var sink io.Writer
			if spec.metricsDir != "" {
				path := filepath.Join(spec.metricsDir, fmt.Sprintf("%s_seed%02d.jsonl", spec.slug, i))
				var err error
				mf, err = os.Create(path)
				if err != nil {
					return sample{err: err}
				}
				sink = mf
			}
			ocfg := obs.Config{
				N: spec.n, K: spec.k, PhaseLen: spec.phaseLen,
				Sink: sink, SizeFn: wire.Size,
				Arrivals: spec.arrivals != nil,
			}
			if recording {
				rec = recorder.New(recorder.Config{
					Obs:       ocfg,
					Rules:     rules,
					Alpha:     spec.alpha,
					DumpDir:   spec.dumpDir,
					Prefix:    fmt.Sprintf("%s_seed%02d", spec.slug, i),
					FaultPlan: opts.Faults,
				})
				col = rec.Collector()
				opts.Observer = rec.Observer()
			} else {
				col = obs.NewCollector(ocfg)
				opts.Observer = col.Observer()
			}
		}
		var tracer *provenance.Tracer
		var pf *os.File
		if spec.provDir != "" {
			path := filepath.Join(spec.provDir, fmt.Sprintf("%s_seed%02d.prov.jsonl", spec.slug, i))
			var err error
			pf, err = os.Create(path)
			if err != nil {
				if mf != nil {
					mf.Close()
				}
				return sample{err: err}
			}
			tracer = provenance.New(provenance.Config{Sink: pf, Budget: spec.paceBudget})
			opts.Tracer = tracer
		}
		var tm *obs.Timing
		var tf *os.File
		if spec.timingDir != "" {
			path := filepath.Join(spec.timingDir, fmt.Sprintf("%s_seed%02d.timing.jsonl", spec.slug, i))
			var err error
			tf, err = os.Create(path)
			if err != nil {
				if mf != nil {
					mf.Close()
				}
				if pf != nil {
					pf.Close()
				}
				return sample{err: err}
			}
			tm = obs.NewTiming(obs.TimingConfig{Sink: tf})
			opts.Timing = tm
			opts.LabelCtx = pprof.WithLabels(context.Background(),
				pprof.Labels("alg", spec.slug))
		}
		if rec != nil && tm != nil {
			// Tee stage timings into the flight-recorder ring (and its
			// stage-regression rule) on their way to the timing sink.
			opts.Timing = rec.TimingSink(tm)
		}
		met, err := sim.RunProtocol(d, p, assign, opts)
		if err != nil {
			if mf != nil {
				mf.Close()
			}
			if pf != nil {
				pf.Close()
			}
			if tf != nil {
				tf.Close()
			}
			return sample{err: err}
		}
		var healthViol, bundleCnt int
		if rec != nil {
			err := rec.Close()
			if mf != nil {
				if cerr := mf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				return sample{err: err}
			}
			if h := rec.Health(); h != nil {
				healthViol = h.Violations()
			}
			bundleCnt = len(rec.Bundles())
		} else if col != nil {
			err := col.Flush()
			if cerr := mf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return sample{err: err}
			}
		}
		if tracer != nil {
			err := tracer.Flush()
			if cerr := pf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return sample{err: err}
			}
		}
		t := met.CompletionRound
		if !met.Complete {
			t = spec.budget
		}
		var wall, cpu []int64
		rounds := 0
		if tm != nil {
			err := tm.Flush()
			if cerr := tf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return sample{err: err}
			}
			wall = make([]int64, sim.NumStages)
			cpu = make([]int64, sim.NumStages)
			for st, br := range tm.Breakdown() {
				wall[st] = br.WallNs
				cpu[st] = br.CPUNs
			}
			rounds = tm.Rounds()
		}
		s := sample{
			time:      t,
			comm:      met.TokensSent,
			bytes:     met.BytesSent,
			relay:     met.TokensByRole[ctvg.Head] + met.TokensByRole[ctvg.Gateway],
			member:    met.TokensByRole[ctvg.Member] + met.TokensByRole[ctvg.Unaffiliated],
			first:     met.FirstDeliveries,
			redundant: met.RedundantDeliveries,
			complete:  met.Complete,
			wall:      wall,
			cpu:       cpu,
			rounds:    rounds,
			health:    healthViol,
			bundles:   bundleCnt,
		}
		if tracer != nil {
			s.pace = tracer.PaceViolations()
		}
		return s
	}
}

func runRow(spec runSpec, analytic analysis.Cost) (RowResult, error) {
	samples := parallel.Map(spec.seeds, spec.workers, func(i int) seedSample {
		return runSeed(spec, i)
	})
	return aggregateRow(spec, analytic, samples)
}

// aggregateRow folds per-seed samples (in seed order) into the row's
// deterministic aggregate.
func aggregateRow(spec runSpec, analytic analysis.Cost, samples []seedSample) (RowResult, error) {
	for _, s := range samples {
		if s.err != nil {
			return RowResult{}, fmt.Errorf("experiment: %s: %w", spec.model, s.err)
		}
	}
	res := RowResult{
		Model:    spec.model,
		Analytic: analytic,
		Budget:   spec.budget,
		Seeds:    spec.seeds,
	}
	times := make([]float64, 0, len(samples))
	comms := make([]float64, 0, len(samples))
	var bytesSum, relaySum, memberSum, firstSum, redunSum float64
	for _, s := range samples {
		times = append(times, float64(s.time))
		comms = append(comms, float64(s.comm))
		bytesSum += float64(s.bytes)
		relaySum += float64(s.relay)
		memberSum += float64(s.member)
		firstSum += float64(s.first)
		redunSum += float64(s.redundant)
		res.PaceViolations += s.pace
		if s.complete {
			res.Completed++
		}
		if s.wall != nil {
			if res.StageWallNs == nil {
				res.StageWallNs = make([]int64, sim.NumStages)
				res.StageCPUNs = make([]int64, sim.NumStages)
			}
			for st := range s.wall {
				res.StageWallNs[st] += s.wall[st]
				res.StageCPUNs[st] += s.cpu[st]
			}
			res.TimedRounds += s.rounds
		}
		res.HealthViolations += s.health
		res.Bundles += s.bundles
	}
	res.MeasuredTime = parallel.Mean(times)
	res.MeasuredComm = parallel.Mean(comms)
	res.TimeStddev = parallel.Stddev(times)
	res.CommStddev = parallel.Stddev(comms)
	res.MeasuredBytes = bytesSum / float64(spec.seeds)
	res.RelayTokens = relaySum / float64(spec.seeds)
	res.MemberTokens = memberSum / float64(spec.seeds)
	res.FirstDeliveries = firstSum / float64(spec.seeds)
	res.RedundantDeliveries = redunSum / float64(spec.seeds)
	return res, nil
}

// distribute spreads `total` churn events over `boundaries` phase
// boundaries, rounding up so the modelled n_r is a lower bound on the
// injected churn.
func distribute(total, boundaries int) int {
	if boundaries <= 0 {
		return 0
	}
	return (total + boundaries - 1) / boundaries
}

// rowJob pairs one row's run spec with its analytic cost: the unit RunPoint
// runs sequentially and RunGrid schedules onto its shared pool.
type rowJob struct {
	spec     runSpec
	analytic analysis.Cost
}

// pointSpecs validates the operating point, creates its output directories
// and returns the four Table 2 rows as schedulable jobs in paper order.
func pointSpecs(cfg PointConfig) ([]rowJob, error) {
	p := cfg.P
	p.NR = cfg.NRT
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Seeds <= 0 {
		return nil, fmt.Errorf("experiment: Seeds must be positive")
	}
	if err := cfg.Faults.Validate(cfg.P.N0); err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	if cfg.Arrivals != nil {
		if err := cfg.Arrivals.Validate(cfg.P.N0); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
	}
	if cfg.MetricsDir != "" {
		if err := os.MkdirAll(cfg.MetricsDir, 0o755); err != nil {
			return nil, err
		}
	}
	if cfg.ProvenanceDir != "" {
		if err := os.MkdirAll(cfg.ProvenanceDir, 0o755); err != nil {
			return nil, err
		}
	}
	if cfg.TimingDir != "" {
		if err := os.MkdirAll(cfg.TimingDir, 0o755); err != nil {
			return nil, err
		}
	}
	var rules []health.Rule
	if cfg.HealthRules != "" {
		var err error
		rules, err = health.ParseRules(cfg.HealthRules)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
	}
	if cfg.DumpDir != "" {
		if err := os.MkdirAll(cfg.DumpDir, 0o755); err != nil {
			return nil, err
		}
	}
	n, k, alpha, L, theta := p.N0, p.K, p.Alpha, p.L, p.Theta
	T := p.T()

	// Row 1: KLO T-interval.
	kloTPhases := baseline.KLOTPhases(n, T, k)
	jobKLOT := rowJob{spec: runSpec{
		model: "(k+α*L)-interval connected [7]",
		slug:  "klo_t", phaseLen: T, metricsDir: cfg.MetricsDir, provDir: cfg.ProvenanceDir, timingDir: cfg.TimingDir,
		budget: kloTPhases * T,
		build: func(seed uint64) (ctvg.Dynamic, sim.Protocol) {
			adv := adversary.NewTInterval(n, T, cfg.ChurnEdges, xrand.New(seed))
			return sim.NewFlat(adv), baseline.KLOT{T: T}
		},
		k: k, n: n, seeds: cfg.Seeds, workers: cfg.Workers, noCache: cfg.NoCache, noDelta: cfg.NoDelta, deltas: cfg.UseDeltaTraces, faults: cfg.Faults, arrivals: cfg.Arrivals, selfstab: cfg.SelfStabilize,
		healthRules: rules, dumpDir: cfg.DumpDir, alpha: alpha, stop: cfg.Stop,
	}, analytic: analysis.KLOTInterval(p)}

	// Row 2: Algorithm 1 on (T, L)-HiNet.
	alg1Phases := core.Theorem1Phases(theta, alpha)
	nrTotalT := cfg.P.NM * cfg.NRT
	jobAlg1 := rowJob{spec: runSpec{
		model: "(k+α*L, L)-HiNet",
		slug:  "alg1", phaseLen: T, metricsDir: cfg.MetricsDir, provDir: cfg.ProvenanceDir, timingDir: cfg.TimingDir,
		paceBudget: &provenance.Budget{PhaseLen: T, Phases: alg1Phases, Alpha: alpha, Theta: theta},
		budget:     alg1Phases * T,
		build: func(seed uint64) (ctvg.Dynamic, sim.Protocol) {
			adv := adversary.NewHiNet(adversary.HiNetConfig{
				N: n, Theta: theta, L: L, T: T,
				Reaffiliations: distribute(nrTotalT, alg1Phases-1),
				ChurnEdges:     cfg.ChurnEdges,
			}, xrand.New(seed))
			return adv, core.Alg1{T: T}
		},
		k: k, n: n, seeds: cfg.Seeds, workers: cfg.Workers, noCache: cfg.NoCache, noDelta: cfg.NoDelta, deltas: cfg.UseDeltaTraces, faults: cfg.Faults, arrivals: cfg.Arrivals, selfstab: cfg.SelfStabilize,
		healthRules: rules, dumpDir: cfg.DumpDir, alpha: alpha, stop: cfg.Stop,
	}, analytic: func() analysis.Cost { pp := p; pp.NR = cfg.NRT; return analysis.HiNetTInterval(pp) }()}

	// Row 3: KLO 1-interval flooding.
	jobFlood := rowJob{spec: runSpec{
		model: "1-interval connected [7]",
		slug:  "flood", phaseLen: 1, metricsDir: cfg.MetricsDir, provDir: cfg.ProvenanceDir, timingDir: cfg.TimingDir,
		budget: baseline.FloodRounds(n),
		build: func(seed uint64) (ctvg.Dynamic, sim.Protocol) {
			adv := adversary.NewOneInterval(n, 0, xrand.New(seed))
			return sim.NewFlat(adv), baseline.Flood{}
		},
		k: k, n: n, seeds: cfg.Seeds, workers: cfg.Workers, noCache: cfg.NoCache, noDelta: cfg.NoDelta, deltas: cfg.UseDeltaTraces, faults: cfg.Faults, arrivals: cfg.Arrivals, selfstab: cfg.SelfStabilize,
		healthRules: rules, dumpDir: cfg.DumpDir, alpha: alpha, stop: cfg.Stop,
	}, analytic: analysis.KLOOneInterval(p)}

	// Row 4: Algorithm 2 on (1, L)-HiNet.
	budget1 := core.Theorem2Rounds(n)
	nrTotal1 := cfg.P.NM * cfg.NR1
	jobAlg2 := rowJob{spec: runSpec{
		model: "(1, L)-HiNet",
		slug:  "alg2", phaseLen: 1, metricsDir: cfg.MetricsDir, provDir: cfg.ProvenanceDir, timingDir: cfg.TimingDir,
		budget: budget1,
		build: func(seed uint64) (ctvg.Dynamic, sim.Protocol) {
			adv := adversary.NewHiNet(adversary.HiNetConfig{
				N: n, Theta: theta, L: L, T: 1,
				Reaffiliations: distribute(nrTotal1, budget1-1),
				ChurnEdges:     cfg.ChurnEdges,
			}, xrand.New(seed))
			return adv, core.Alg2{}
		},
		k: k, n: n, seeds: cfg.Seeds, workers: cfg.Workers, noCache: cfg.NoCache, noDelta: cfg.NoDelta, deltas: cfg.UseDeltaTraces, faults: cfg.Faults, arrivals: cfg.Arrivals, selfstab: cfg.SelfStabilize,
		healthRules: rules, dumpDir: cfg.DumpDir, alpha: alpha, stop: cfg.Stop,
	}, analytic: func() analysis.Cost { pp := p; pp.NR = cfg.NR1; return analysis.HiNetOneInterval(pp) }()}

	return []rowJob{jobKLOT, jobAlg1, jobFlood, jobAlg2}, nil
}

// RunPoint executes all four rows at the configured operating point and
// returns them in the paper's Table 2 order.
func RunPoint(cfg PointConfig) ([]RowResult, error) {
	jobs, err := pointSpecs(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]RowResult, len(jobs))
	for i, job := range jobs {
		out[i], err = runRow(job.spec, job.analytic)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunGrid executes several operating points over ONE bounded worker pool:
// every (point, row, seed) replication becomes an independent task, so a
// grid keeps all cores busy even when individual rows have few seeds —
// where RunPoint-per-point parallelises only within a row. workers bounds
// the pool (0 = GOMAXPROCS). Results are assembled by index, so ordering
// is deterministic regardless of scheduling: out[i] are cfgs[i]'s rows in
// paper order, aggregated in seed order, and per-seed metrics, provenance
// and timing files land exactly where RunPoint would put them. The first
// error in (point, row, seed) order wins, matching the sequential path.
func RunGrid(cfgs []PointConfig, workers int) ([][]RowResult, error) {
	type task struct {
		point, row, seed int
	}
	jobs := make([][]rowJob, len(cfgs))
	var tasks []task
	for pi, cfg := range cfgs {
		pj, err := pointSpecs(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: point %d: %w", pi, err)
		}
		jobs[pi] = pj
		for ri, job := range pj {
			for si := 0; si < job.spec.seeds; si++ {
				tasks = append(tasks, task{pi, ri, si})
			}
		}
	}
	samples := parallel.Map(len(tasks), workers, func(ti int) seedSample {
		t := tasks[ti]
		return runSeed(jobs[t.point][t.row].spec, t.seed)
	})
	out := make([][]RowResult, len(cfgs))
	cursor := 0
	for pi := range cfgs {
		out[pi] = make([]RowResult, len(jobs[pi]))
		for ri, job := range jobs[pi] {
			rowSamples := samples[cursor : cursor+job.spec.seeds]
			cursor += job.spec.seeds
			var err error
			out[pi][ri], err = aggregateRow(job.spec, job.analytic, rowSamples)
			if err != nil {
				return nil, fmt.Errorf("experiment: point %d: %w", pi, err)
			}
		}
	}
	return out, nil
}

// Table3Report renders the full paper-vs-analytic-vs-measured comparison
// for the Table 3 point.
func Table3Report(cfg PointConfig) (*report.Table, []RowResult, error) {
	rows, err := RunPoint(cfg)
	if err != nil {
		return nil, nil, err
	}
	tb := report.NewTable(
		fmt.Sprintf("Table 3 — paper vs analytic vs simulated (n0=%d θ=%d k=%d α=%d L=%d, %d seeds)",
			cfg.P.N0, cfg.P.Theta, cfg.P.K, cfg.P.Alpha, cfg.P.L, cfg.Seeds),
		"model", "paper time", "paper comm", "formula time", "formula comm",
		"sim time", "sim comm", "sim done",
	)
	for i, r := range rows {
		pub := analysis.Table3Published[i]
		tb.AddRowf(r.Model, pub.Time, pub.Comm, r.Analytic.Time, r.Analytic.Comm,
			fmt.Sprintf("%.1f±%.1f", r.MeasuredTime, r.TimeStddev),
			fmt.Sprintf("%.0f±%.0f", r.MeasuredComm, r.CommStddev),
			fmt.Sprintf("%d/%d", r.Completed, r.Seeds))
	}
	return tb, rows, nil
}
