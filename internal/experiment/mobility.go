package experiment

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/hinet"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// MobilityPoint is one row of the mobility campaign: measured behaviour of
// Algorithm 2 and flat flooding on the same physically-driven dynamics.
type MobilityPoint struct {
	// Speed is the maximum node speed (field units per round).
	Speed float64
	// Alg2Time / Alg2Comm are mean completion round and token cost.
	Alg2Time, Alg2Comm float64
	// FloodTime / FloodComm for flooding on identical dynamics.
	FloodTime, FloodComm float64
	// MeasuredNR is the probe's per-member re-affiliation rate over the
	// run horizon — the physical counterpart of the paper's n_r knob.
	MeasuredNR float64
	// Alg2Done / FloodDone count completing replications.
	Alg2Done, FloodDone int
	// Seeds is the replication count.
	Seeds int
}

// MobilityCampaign measures the speed sweep: at each maximum speed it runs
// Algorithm 2 and flooding over random-waypoint unit-disk networks with
// incremental clustering, across seeds. The campaign grounds the paper's
// abstract n_r parameter in physical mobility: the probe's measured n_r
// rises with speed, and the clustering saving shrinks accordingly.
func MobilityCampaign(n, k int, speeds []float64, seeds int) ([]MobilityPoint, error) {
	if n < 10 || k < 1 || seeds < 1 {
		return nil, fmt.Errorf("experiment: invalid mobility campaign parameters")
	}
	horizon := 4 * n
	out := make([]MobilityPoint, 0, len(speeds))
	for _, speed := range speeds {
		pt := MobilityPoint{Speed: speed, Seeds: seeds}
		type sample struct {
			a2t, a2c, flt, flc float64
			nr                 float64
			a2done, fldone     bool
		}
		samples := parallel.Map(seeds, 0, func(i int) sample {
			seed := uint64(i)*7919 + 3
			cfg := adversary.MobilityConfig{
				N: n, Field: geom.Field{W: 100, H: 100}, Radius: 20,
				MinSpeed: speed / 4, MaxSpeed: speed, PauseRounds: 1,
				Cluster:         cluster.Config{},
				EnsureConnected: true,
			}
			assign := token.Spread(n, k, xrand.New(seed+31))

			adv := adversary.NewMobility(cfg, xrand.New(seed))
			m2 := sim.MustRunProtocol(adv, core.Alg2{}, assign,
				sim.Options{MaxRounds: horizon, StopWhenComplete: true})
			rep := hinet.Probe(adv, m2.Rounds)

			// Flooding on the identical physical topology: the mobility
			// adversary satisfies tvg.Dynamic, so NewFlat strips its
			// hierarchy.
			fadv := adversary.NewMobility(cfg, xrand.New(seed))
			mf := sim.MustRunProtocol(sim.NewFlat(fadv), baseline.Flood{}, assign,
				sim.Options{MaxRounds: horizon, StopWhenComplete: true})

			s := sample{
				a2c: float64(m2.TokensSent), flc: float64(mf.TokensSent),
				nr:     rep.MeasuredNR,
				a2done: m2.Complete, fldone: mf.Complete,
			}
			s.a2t = float64(m2.CompletionRound)
			if !m2.Complete {
				s.a2t = float64(horizon)
			}
			s.flt = float64(mf.CompletionRound)
			if !mf.Complete {
				s.flt = float64(horizon)
			}
			return s
		})
		for _, s := range samples {
			pt.Alg2Time += s.a2t / float64(seeds)
			pt.Alg2Comm += s.a2c / float64(seeds)
			pt.FloodTime += s.flt / float64(seeds)
			pt.FloodComm += s.flc / float64(seeds)
			pt.MeasuredNR += s.nr / float64(seeds)
			if s.a2done {
				pt.Alg2Done++
			}
			if s.fldone {
				pt.FloodDone++
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// MobilityTable renders the campaign.
func MobilityTable(pts []MobilityPoint) *report.Table {
	tb := report.NewTable(
		"Mobility campaign — Algorithm 2 vs flooding under random waypoint",
		"max speed", "measured n_r", "alg2 time", "alg2 comm", "flood comm", "saving", "alg2 done",
	)
	for _, pt := range pts {
		saving := report.Pct(1 - pt.Alg2Comm/pt.FloodComm)
		tb.AddRowf(pt.Speed, pt.MeasuredNR, pt.Alg2Time, pt.Alg2Comm, pt.FloodComm,
			saving, fmt.Sprintf("%d/%d", pt.Alg2Done, pt.Seeds))
	}
	return tb
}
