package experiment

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/report"
)

// ClaimStatus classifies how a claim of the paper reproduced.
type ClaimStatus string

const (
	// StatusExact: our computation matches the published number exactly.
	StatusExact ClaimStatus = "exact"
	// StatusHolds: the claim (a bound or ordering) holds executably.
	StatusHolds ClaimStatus = "holds"
	// StatusShape: absolute numbers differ (different substrate) but the
	// ordering/factor the paper reports is reproduced.
	StatusShape ClaimStatus = "shape"
	// StatusDiscrepancy: the published number disagrees with the paper's
	// own formula; our value follows the formula.
	StatusDiscrepancy ClaimStatus = "discrepancy"
	// StatusFails: the claim is violated by an executable counterexample.
	StatusFails ClaimStatus = "fails"
)

// Claim is one quantitative statement of the paper with its reproduction
// status and the test or harness output backing it.
type Claim struct {
	ID        string
	Source    string // where in the paper
	Statement string
	Status    ClaimStatus
	Evidence  string // test name or harness command
}

// Claims returns the full reproduction ledger. Statuses are backed by the
// test suite; TestClaimsLedgerConsistent cross-checks the cheap ones.
func Claims() []Claim {
	return []Claim{
		{
			ID: "T2-formulas", Source: "Table 2",
			Statement: "closed-form time/communication for all four model/algorithm pairs",
			Status:    StatusExact,
			Evidence:  "internal/analysis TestTable3ReproducesPaperNumbers; hinetbench -table 2",
		},
		{
			ID: "T3-kloT", Source: "Table 3 row 1",
			Statement: "(k+αL)-interval KLO: time 180, comm 8000",
			Status:    StatusExact,
			Evidence:  "analysis.Table3()[0]",
		},
		{
			ID: "T3-alg1", Source: "Table 3 row 2",
			Statement: "(k+αL, L)-HiNet: time 126, comm 4320",
			Status:    StatusExact,
			Evidence:  "analysis.Table3()[1]",
		},
		{
			ID: "T3-klo1", Source: "Table 3 row 3",
			Statement: "1-interval KLO: time 99, comm 79200",
			Status:    StatusExact,
			Evidence:  "analysis.Table3()[2]",
		},
		{
			ID: "T3-alg2", Source: "Table 3 row 4",
			Statement: "(1, L)-HiNet: time 99, comm 51680 (formula gives 50720 at nr=10)",
			Status:    StatusDiscrepancy,
			Evidence:  "analysis.Table3()[3]; EXPERIMENTS.md §Table 3",
		},
		{
			ID: "THM1", Source: "Theorem 1",
			Statement: "Algorithm 1 completes within ⌈θ/α⌉+1 phases of T=k+αL rounds on any (T, L)-HiNet",
			Status:    StatusHolds,
			Evidence:  "internal/core TestTheorem1CompletionWithinBound (+L3, +head churn variants)",
		},
		{
			ID: "RMK1", Source: "Remark 1",
			Statement: "∞-stable head set: members upload only in phase 0 and cost strictly drops",
			Status:    StatusHolds,
			Evidence:  "internal/core TestRemark1StableHeadsCompletes, TestRemark1ReducesMemberUploads",
		},
		{
			ID: "THM2", Source: "Theorem 2",
			Statement: "Algorithm 2 completes within n−1 rounds under 1-interval connectivity",
			Status:    StatusHolds,
			Evidence:  "internal/core TestTheorem2CompletionWithinNMinus1",
		},
		{
			ID: "THM3", Source: "Theorem 3",
			Statement: "Algorithm 2 completes within ⌈θ/α⌉+1 rounds under (αL)-interval head connectivity",
			Status:    StatusFails,
			Evidence:  "internal/core TestTheorem3BoundFailsOnChainBackbones (chain backbone counterexample; holds on constant-diameter backbones)",
		},
		{
			ID: "THM4", Source: "Theorem 4",
			Statement: "Algorithm 2 completes within θ·L+1 rounds under L-interval stable hierarchy",
			Status:    StatusHolds,
			Evidence:  "internal/core TestTheorem4StyleBoundWithStableHierarchy (tight on the chain counterexample)",
		},
		{
			ID: "L3", Source: "Section III.C",
			Statement: "in 1-hop clusterings the head connectivity bound L is at most 3",
			Status:    StatusHolds,
			Evidence:  "internal/cluster TestFormBackboneConnectsHeadsWithinL3; WCDS achieves L<=2 (TestWCDSAchievesL2)",
		},
		{
			ID: "HEADLINE", Source: "Section V / Conclusion",
			Statement: "hierarchical dissemination cuts communication by up to ~50% at similar or lower time cost",
			Status:    StatusShape,
			Evidence:  "hinetbench -table 3 (simulated: Alg1 −54% vs KLO-T, Alg2 −37% vs flooding)",
		},
		{
			ID: "NR-PREMISE", Source: "Section V",
			Statement: "the saving requires nr ≪ n0; it erodes (and analytically crosses over) as re-affiliation churn grows",
			Status:    StatusHolds,
			Evidence:  "hinetbench -sweep nr (analytic crossover at nr≈15); examples/p2p (EMDG churn boundary)",
		},
	}
}

// ClaimsTable renders the ledger.
func ClaimsTable() *report.Table {
	tb := report.NewTable("Reproduction ledger — every quantitative claim and its status",
		"id", "source", "status", "statement")
	for _, c := range Claims() {
		tb.AddRow(c.ID, c.Source, string(c.Status), c.Statement)
	}
	return tb
}

// VerifyCheapClaims recomputes the claims that are cheap to check inline
// (the exact analytic cells) and returns an error if the ledger has gone
// stale relative to the code.
func VerifyCheapClaims() error {
	rows := analysis.Table3()
	want := []analysis.Cost{
		{Time: 180, Comm: 8000},
		{Time: 126, Comm: 4320},
		{Time: 99, Comm: 79200},
		{Time: 99, Comm: 50720},
	}
	for i, w := range want {
		if rows[i].Cost != w {
			return fmt.Errorf("claims ledger stale: row %d computes %+v, ledger expects %+v",
				i, rows[i].Cost, w)
		}
	}
	return nil
}
