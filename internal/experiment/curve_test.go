package experiment

import (
	"strings"
	"testing"
)

func TestConvergenceCurves(t *testing.T) {
	cfg := Table3Config(1)
	curves, err := ConvergenceCurves(cfg, 7, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 6 {
		t.Fatalf("curves %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) != 60 {
			t.Fatalf("%s has %d points", c.Name, len(c.Points))
		}
		// Monotone non-decreasing delivery.
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i] < c.Points[i-1]-1e-12 {
				t.Fatalf("%s regressed at round %d", c.Name, i)
			}
		}
		// Starts below completion (k of n·k pairs pre-delivered).
		if c.Points[0] >= 1 {
			t.Fatalf("%s complete at round 0", c.Name)
		}
	}
	// The paper's four protocols (the first four curves) must finish
	// within 60 rounds at the Table 3 point; the extra comparators
	// (network coding, gossip) have longer randomized horizons and only
	// owe the monotonicity checked above.
	for _, c := range curves[:4] {
		if c.Points[len(c.Points)-1] < 1 {
			t.Fatalf("%s did not converge: %.3f", c.Name, c.Points[len(c.Points)-1])
		}
	}
}

func TestConvergenceCurvesValidation(t *testing.T) {
	cfg := Table3Config(1)
	cfg.P.K = 0
	if _, err := ConvergenceCurves(cfg, 1, 10); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1})
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("sparkline %q", s)
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	// Clamping.
	c := []rune(Sparkline([]float64{-1, 2}))
	if c[0] != '▁' || c[1] != '█' {
		t.Fatalf("clamping wrong: %q", string(c))
	}
}

func TestRenderCurves(t *testing.T) {
	curves := []Curve{
		{Name: "a", Points: []float64{0.5, 1, 1}},
		{Name: "never", Points: []float64{0.1, 0.2}},
	}
	out := RenderCurves(curves)
	if !strings.Contains(out, "done@2") {
		t.Fatalf("completion round missing:\n%s", out)
	}
	if !strings.Contains(out, "done@-") {
		t.Fatalf("incomplete marker missing:\n%s", out)
	}
}
