package experiment

// Steady-state load testing: run one protocol under continuous token
// traffic on its natural adversary and report throughput, queue depth and
// latency against the Theorem 1 pace — the saturation view that the
// fixed-batch Table 3 rows cannot give.

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/obs/recorder"
	"repro/internal/provenance"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// ArrivalConfig configures one steady-state load measurement.
type ArrivalConfig struct {
	// P is the operating point (n0, θ, k, α, L as in PointConfig.P; NR is
	// ignored — the load harness runs without re-affiliation churn unless
	// ChurnEdges adds topology churn).
	P analysis.Params
	// Proto selects the protocol/adversary pairing: "alg2" ((1, L)-HiNet,
	// the default), "alg1" ((T, L)-HiNet with T = k+αL), or "flood"
	// (1-interval connected flooding on a flat network).
	Proto string
	// Arrivals is the traffic process. Stop must be positive — it is the
	// measurement window; the run then gets DrainRounds of extra budget to
	// empty the queue. The initial k-token batch rides along as usual.
	Arrivals sim.Arrivals
	// DrainRounds is the post-window budget before the run is declared
	// backlogged (default 4·n0).
	DrainRounds int
	// StallWindow arms the engine's watchdog (default DrainRounds), so a
	// wedged queue terminates the run instead of idling out the budget.
	StallWindow int
	// SLA, when positive, attaches the provenance per-token deadline
	// monitor and reports the violation count (collected late or still
	// outstanding at the end).
	SLA int
	// ChurnEdges matches PointConfig.ChurnEdges.
	ChurnEdges int
	// Seed drives topology and assignment randomness; the arrival process
	// draws from its own Arrivals.Seed.
	Seed uint64
	// Workers is the engine shard count (0 or 1 = serial; results are
	// bit-identical either way).
	Workers int
	// HealthRules, when non-empty, attaches the online health engine
	// (internal/obs/health) with this rule spec; DumpDir, when non-empty,
	// receives a postmortem bundle per anomaly (internal/obs/recorder).
	// Either one arms the flight recorder.
	HealthRules string
	DumpDir     string
	// Stop, when non-nil, is polled at every round barrier; once it
	// returns true the run ends cleanly at its current round. The hook for
	// SIGINT-driven graceful shutdown.
	Stop func() bool
}

// ArrivalResult is one measured load point.
type ArrivalResult struct {
	// Proto is the protocol that ran.
	Proto string
	// OfferedRate is the duty-cycle-adjusted offered load in tokens per
	// round (Rate scaled by OnRounds/(OnRounds+OffRounds) when bursty).
	OfferedRate float64
	// Rounds is the number of rounds actually executed.
	Rounds int
	// Injected counts dynamically injected tokens (initial batch
	// excluded); Collected counts garbage-collected tokens (batch
	// included).
	Injected  int64
	Collected int64
	// PeakOutstanding / FinalOutstanding are the high-water and end-of-run
	// queue depths (live tokens, batch included).
	PeakOutstanding  int
	FinalOutstanding int
	// Throughput is collected tokens per executed round.
	Throughput float64
	// LatencyP50 / LatencyP99 / LatencyMax summarise the injection-to-
	// collection latency distribution in rounds (NaN when nothing was
	// collected).
	LatencyP50 float64
	LatencyP99 float64
	LatencyMax float64
	// SLAViolations counts per-token deadline misses (0 unless SLA set).
	SLAViolations int
	// HealthViolations counts SLO-rule violations and Bundles the
	// postmortem bundles written (0 unless HealthRules/DumpDir armed the
	// flight recorder).
	HealthViolations int
	Bundles          int
	// PaceThroughput is the Theorem 1 reference rate k/(M·T) tokens per
	// round — k tokens disseminated per M = ⌈θ/α⌉+1 phases of T = k+α·L
	// rounds. Saturation is OfferedRate / PaceThroughput: offered load as
	// a multiple of what the worst-case bound guarantees drains.
	PaceThroughput float64
	Saturation     float64
	// Complete reports a fully drained run; Verdict summarises the
	// outcome: "drained" (queue emptied within budget), "backlogged"
	// (budget exhausted with tokens outstanding) or "stalled" (the
	// watchdog saw a wedged queue).
	Complete bool
	Verdict  string
}

// ArrivalPoint builds an ArrivalConfig at a Table 3-proportioned operating
// point of n0 nodes and a k-token initial batch (θ ≈ 0.3·n0, α = 5, L = 2 —
// the SweepN0 scaling). Callers fill in the traffic process.
func ArrivalPoint(n0, k int) ArrivalConfig {
	return ArrivalConfig{P: scalePoint(n0, k, 5, 2, 0, 0, 1, 0).P}
}

// ArrivalLoad runs one steady-state load point and reports it.
func ArrivalLoad(cfg ArrivalConfig) (ArrivalResult, error) {
	p := cfg.P
	if err := p.Validate(); err != nil {
		return ArrivalResult{}, err
	}
	if err := cfg.Arrivals.Validate(p.N0); err != nil {
		return ArrivalResult{}, err
	}
	if cfg.Arrivals.Stop <= 0 {
		return ArrivalResult{}, fmt.Errorf("experiment: arrival load needs a finite measurement window (Arrivals.Stop > 0)")
	}
	n, k, T := p.N0, p.K, p.T()
	drain := cfg.DrainRounds
	if drain <= 0 {
		drain = 4 * n
	}
	stall := cfg.StallWindow
	if stall <= 0 {
		stall = drain
	}

	rng := xrand.New(cfg.Seed)
	var d ctvg.Dynamic
	var proto sim.Protocol
	name := cfg.Proto
	switch cfg.Proto {
	case "", "alg2":
		name = "alg2"
		d = adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: p.Theta, L: p.L, T: 1, ChurnEdges: cfg.ChurnEdges,
		}, rng)
		proto = core.Alg2{}
	case "alg1":
		d = adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: p.Theta, L: p.L, T: T, ChurnEdges: cfg.ChurnEdges,
		}, rng)
		proto = core.Alg1{T: T}
	case "flood":
		d = sim.NewFlat(adversary.NewOneInterval(n, cfg.ChurnEdges, rng))
		proto = baseline.Flood{}
	default:
		return ArrivalResult{}, fmt.Errorf("experiment: unknown arrival protocol %q (want alg2, alg1 or flood)", cfg.Proto)
	}

	reg := obs.NewRegistry()
	ocfg := obs.Config{N: n, K: k, Registry: reg, Arrivals: true}
	var col *obs.Collector
	var rec *recorder.Recorder
	if cfg.HealthRules != "" || cfg.DumpDir != "" {
		rules, err := health.ParseRules(cfg.HealthRules)
		if err != nil {
			return ArrivalResult{}, fmt.Errorf("experiment: %w", err)
		}
		// Health rules need phase structure; arrival streams otherwise run
		// without one. The Theorem-1 pace floor only governs Algorithm 1.
		ocfg.PhaseLen = 1
		if cfg.Proto == "alg1" {
			ocfg.PhaseLen = T
		} else {
			kept := rules[:0:0]
			for _, r := range rules {
				if r.Kind != health.KindPace {
					kept = append(kept, r)
				}
			}
			rules = kept
		}
		rec = recorder.New(recorder.Config{
			Obs:     ocfg,
			Rules:   rules,
			Alpha:   p.Alpha,
			DumpDir: cfg.DumpDir,
			Prefix:  "arrival_" + name,
		})
		col = rec.Collector()
	} else {
		col = obs.NewCollector(ocfg)
	}
	arr := cfg.Arrivals
	opts := sim.Options{
		MaxRounds:        arr.Stop + drain,
		StopWhenComplete: true,
		StallWindow:      stall,
		Observer:         col.Observer(),
		Workers:          cfg.Workers,
		Arrivals:         &arr,
	}
	if rec != nil {
		opts.Observer = rec.Observer()
	}
	if cfg.Stop != nil {
		stop := cfg.Stop
		opts.Stop = func(int) bool { return stop() }
	}
	var tracer *provenance.Tracer
	if cfg.SLA > 0 {
		tracer = provenance.New(provenance.Config{SLA: cfg.SLA, Registry: reg})
		opts.Tracer = tracer
	}
	assign := token.Spread(n, k, xrand.New(cfg.Seed^0xabcdef))
	met, err := sim.RunProtocol(d, proto, assign, opts)
	if err != nil {
		return ArrivalResult{}, err
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			return ArrivalResult{}, err
		}
	} else if err := col.Flush(); err != nil {
		return ArrivalResult{}, err
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return ArrivalResult{}, err
		}
	}

	offered := arr.Rate
	if arr.OnRounds > 0 {
		offered *= float64(arr.OnRounds) / float64(arr.OnRounds+arr.OffRounds)
	}
	pace := float64(k) / float64(core.Theorem1Phases(p.Theta, p.Alpha)*T)
	res := ArrivalResult{
		Proto:            name,
		OfferedRate:      offered,
		Rounds:           met.Rounds,
		Injected:         met.TokensInjected,
		Collected:        met.TokensCollected,
		PeakOutstanding:  met.PeakOutstanding,
		FinalOutstanding: met.OutstandingTokens,
		Throughput:       float64(met.TokensCollected) / float64(met.Rounds),
		LatencyP50:       col.LatencyQuantile(0.50),
		LatencyP99:       col.LatencyQuantile(0.99),
		LatencyMax:       reg.Histogram("sim_token_latency_rounds", "", obs.LatencyBuckets).Max(),
		PaceThroughput:   pace,
		Saturation:       offered / pace,
		Complete:         met.Complete,
	}
	if tracer != nil {
		res.SLAViolations = tracer.SLAViolationCount()
	}
	if rec != nil {
		if h := rec.Health(); h != nil {
			res.HealthViolations = h.Violations()
		}
		res.Bundles = len(rec.Bundles())
	}
	switch {
	case met.Stall != nil:
		res.Verdict = "stalled"
	case met.Complete:
		res.Verdict = "drained"
	default:
		res.Verdict = "backlogged"
	}
	return res, nil
}

// ArrivalSweep measures the same configuration at several offered rates
// (each rate replaces Arrivals.Rate; everything else is shared).
func ArrivalSweep(cfg ArrivalConfig, rates []float64) ([]ArrivalResult, error) {
	out := make([]ArrivalResult, 0, len(rates))
	for _, rate := range rates {
		c := cfg
		c.Arrivals.Rate = rate
		res, err := ArrivalLoad(c)
		if err != nil {
			return nil, fmt.Errorf("experiment: rate %v: %w", rate, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ArrivalTable renders load points in the steady-state report layout.
func ArrivalTable(title string, results []ArrivalResult) *report.Table {
	tb := report.NewTable(title,
		"proto", "offered/rnd", "rounds", "injected", "collected",
		"peak queue", "tput/rnd", "p50", "p99", "max", "sla miss",
		"saturation", "verdict",
	)
	for _, r := range results {
		tb.AddRowf(r.Proto, r.OfferedRate, r.Rounds, r.Injected, r.Collected,
			r.PeakOutstanding, r.Throughput, r.LatencyP50, r.LatencyP99,
			r.LatencyMax, r.SLAViolations, r.Saturation, r.Verdict)
	}
	return tb
}
