package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable3ReproducesPaperNumbers(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	// Row 0: (k+αL)-interval connected [7] — exact.
	if rows[0].Cost != (Cost{Time: 180, Comm: 8000}) {
		t.Fatalf("KLO-T row: %+v", rows[0].Cost)
	}
	// Row 1: (k+αL, L)-HiNet — exact.
	if rows[1].Cost != (Cost{Time: 126, Comm: 4320}) {
		t.Fatalf("HiNet-T row: %+v", rows[1].Cost)
	}
	// Row 2: 1-interval connected [7] — exact.
	if rows[2].Cost != (Cost{Time: 99, Comm: 79200}) {
		t.Fatalf("KLO-1 row: %+v", rows[2].Cost)
	}
	// Row 3: (1, L)-HiNet — the formula yields 50720; the paper prints
	// 51680 (a 960-token slip in the published table, see EXPERIMENTS.md).
	if rows[3].Cost != (Cost{Time: 99, Comm: 50720}) {
		t.Fatalf("HiNet-1 row: %+v", rows[3].Cost)
	}
	// Sanity: the published value is within 2% of the formula value, so
	// the paper's qualitative claim stands either way.
	pub := float64(Table3Published[3].Comm)
	got := float64(rows[3].Cost.Comm)
	if math.Abs(pub-got)/pub > 0.02 {
		t.Fatalf("formula %v vs published %v diverge by more than 2%%", got, pub)
	}
}

func TestTable3PublishedTimesMatch(t *testing.T) {
	rows := Table3()
	for i, r := range rows {
		if r.Cost.Time != Table3Published[i].Time {
			t.Fatalf("row %d time %d, published %d", i, r.Cost.Time, Table3Published[i].Time)
		}
	}
}

func TestHeadlineClaims(t *testing.T) {
	rows := Table3()
	kloT, hinetT := rows[0].Cost, rows[1].Cost
	klo1, hinet1 := rows[2].Cost, rows[3].Cost

	// Claim 1: Algorithm 1 communicates much less than KLO-T…
	if hinetT.Comm >= kloT.Comm {
		t.Fatal("HiNet-T not cheaper than KLO-T")
	}
	// …with ~46% reduction at the Table 3 point ("benefit can be as much
	// as 50%").
	if r := Reduction(kloT, hinetT); r < 0.40 || r > 0.55 {
		t.Fatalf("HiNet-T reduction %.2f outside the paper's ballpark", r)
	}
	// Claim 2: Algorithm 1 is also faster here (126 < 180).
	if hinetT.Time >= kloT.Time {
		t.Fatal("HiNet-T not faster than KLO-T at the Table 3 point")
	}
	// Claim 3: Algorithm 2 halves-ish the 1-interval flooding cost at the
	// same time cost.
	if hinet1.Comm >= klo1.Comm || hinet1.Time != klo1.Time {
		t.Fatalf("HiNet-1 claim fails: %+v vs %+v", hinet1, klo1)
	}
	if r := Reduction(klo1, hinet1); r < 0.30 {
		t.Fatalf("HiNet-1 reduction %.2f too small", r)
	}
}

func TestParamsValidate(t *testing.T) {
	good := Table3Params
	good.NR = 3
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N0: 1, Theta: 1, NM: 0, K: 1, Alpha: 1, L: 1},
		{N0: 10, Theta: 0, NM: 0, K: 1, Alpha: 1, L: 1},
		{N0: 10, Theta: 11, NM: 0, K: 1, Alpha: 1, L: 1},
		{N0: 10, Theta: 5, NM: 11, K: 1, Alpha: 1, L: 1},
		{N0: 10, Theta: 5, NM: 5, NR: -1, K: 1, Alpha: 1, L: 1},
		{N0: 10, Theta: 5, NM: 5, K: 0, Alpha: 1, L: 1},
		{N0: 10, Theta: 5, NM: 5, K: 1, Alpha: 0, L: 1},
		{N0: 10, Theta: 5, NM: 5, K: 1, Alpha: 1, L: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestTHelper(t *testing.T) {
	if Table3Params.T() != 18 {
		t.Fatalf("T = %d", Table3Params.T())
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(Cost{Comm: 100}, Cost{Comm: 60}); math.Abs(r-0.4) > 1e-12 {
		t.Fatalf("Reduction = %f", r)
	}
	if Reduction(Cost{}, Cost{Comm: 5}) != 0 {
		t.Fatal("zero-division guard failed")
	}
}

func TestQuickHiNetAlwaysBeatsKLOWhenChurnModest(t *testing.T) {
	// Property: whenever n_r < time (the paper's "n_r should be much less
	// than n_0" premise) and there is at least one member, the HiNet rows
	// are strictly cheaper in communication than their flat counterparts.
	f := func(seed int64) bool {
		s := uint64(seed)
		n0 := 20 + int(s%200)
		theta := 2 + int((s/7)%uint64(n0/2))
		nm := 1 + int((s/11)%uint64(n0/2))
		k := 1 + int((s/13)%32)
		alpha := 1 + int((s/17)%8)
		L := 1 + int((s/19)%3)
		p := Params{N0: n0, Theta: theta, NM: nm, K: k, Alpha: alpha, L: L}
		if p.Validate() != nil {
			return true // skip infeasible combinations
		}
		// 1-interval comparison: nr < n0-1 guarantees the saving since
		// members would otherwise broadcast every round.
		p.NR = int(s % uint64(n0-1))
		if HiNetOneInterval(p).Comm >= KLOOneInterval(p).Comm {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossoverNRT(t *testing.T) {
	// At the Table 3 point: (10·100 − 7·60)/40 = (1000−420)/40 = 14.5 —
	// matching Sweep C's observed crossover between nr=10 (x0.82) and
	// nr=15 (x1.02).
	got := CrossoverNRT(Table3Params)
	if math.Abs(got-14.5) > 1e-9 {
		t.Fatalf("CrossoverNRT = %f, want 14.5", got)
	}
	// Consistency with the row formulas: strictly below the threshold
	// Alg1 wins; strictly above it loses.
	below := Table3Params
	below.NR = 14
	if HiNetTInterval(below).Comm >= KLOTInterval(below).Comm {
		t.Fatal("below crossover but not cheaper")
	}
	above := Table3Params
	above.NR = 15
	if HiNetTInterval(above).Comm <= KLOTInterval(above).Comm {
		t.Fatal("above crossover but not costlier")
	}
	if CrossoverNRT(Params{NM: 0}) != 0 {
		t.Fatal("zero-member guard")
	}
}

func TestCrossoverNR1(t *testing.T) {
	if CrossoverNR1(Table3Params) != 99 {
		t.Fatalf("CrossoverNR1 = %f", CrossoverNR1(Table3Params))
	}
	// Verify against the formulas at the boundary.
	p := Table3Params
	p.NR = 98
	if HiNetOneInterval(p).Comm >= KLOOneInterval(p).Comm {
		t.Fatal("below crossover but not cheaper")
	}
	p.NR = 100
	if HiNetOneInterval(p).Comm <= KLOOneInterval(p).Comm {
		t.Fatal("above crossover but not costlier")
	}
}

func TestTable2RowMetadata(t *testing.T) {
	rows := Table2(Table3Params, 3, 10)
	wantModels := []string{
		"(k+α*L)-interval connected [7]",
		"(k+α*L, L)-HiNet",
		"1-interval connected [7]",
		"(1, L)-HiNet",
	}
	for i, r := range rows {
		if r.Model != wantModels[i] {
			t.Fatalf("row %d model %q", i, r.Model)
		}
		if r.TimeFormula == "" || r.CommFormula == "" {
			t.Fatalf("row %d missing formulas", i)
		}
	}
}
