// Package analysis implements the paper's closed-form performance model:
// the Table 2 time/communication formulas for all four model/algorithm
// pairs and the Table 3 numerical instance, plus comparison helpers used by
// the benchmark harness.
//
// Time cost is measured in rounds; communication cost in token-sends
// (total number of tokens transmitted), matching Section V of the paper.
package analysis

import "fmt"

// Params carries the notation of the paper's Table 1.
type Params struct {
	// N0 is the total number of nodes in the network (n₀).
	N0 int
	// Theta is the upper bound number of nodes that can be cluster head (θ).
	Theta int
	// NM is the average number of cluster member nodes in one round (n_m).
	NM int
	// NR is the average number of re-affiliations a cluster member
	// conducts (n_r).
	NR int
	// K is the number of tokens to be disseminated (k).
	K int
	// Alpha is the progress coefficient (α), any positive integer.
	Alpha int
	// L is the hop bound on cluster-head connectivity.
	L int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.N0 < 2:
		return fmt.Errorf("analysis: n0=%d too small", p.N0)
	case p.Theta < 1 || p.Theta > p.N0:
		return fmt.Errorf("analysis: theta=%d out of range", p.Theta)
	case p.NM < 0 || p.NM > p.N0:
		return fmt.Errorf("analysis: nm=%d out of range", p.NM)
	case p.NR < 0:
		return fmt.Errorf("analysis: nr=%d negative", p.NR)
	case p.K < 1:
		return fmt.Errorf("analysis: k=%d must be positive", p.K)
	case p.Alpha < 1:
		return fmt.Errorf("analysis: alpha=%d must be positive", p.Alpha)
	case p.L < 1:
		return fmt.Errorf("analysis: L=%d must be positive", p.L)
	}
	return nil
}

// T returns the phase length T = k + α·L used by the T-interval rows.
func (p Params) T() int { return p.K + p.Alpha*p.L }

// Cost is one Table 2 cell pair.
type Cost struct {
	// Time is the number of rounds.
	Time int
	// Comm is the total number of tokens sent.
	Comm int
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// KLOTInterval is the (k+α·L)-interval connected row of Table 2 (KLO's
// T-interval algorithm):
//
//	time = ⌈n0/(α·l)⌉ · (k + α·l)
//	comm = ⌈n0/(2α)⌉ · n0 · k
func KLOTInterval(p Params) Cost {
	return Cost{
		Time: ceilDiv(p.N0, p.Alpha*p.L) * p.T(),
		Comm: ceilDiv(p.N0, 2*p.Alpha) * p.N0 * p.K,
	}
}

// HiNetTInterval is the (k+α·L, L)-HiNet row of Table 2 (Algorithm 1):
//
//	time = (⌈θ/α⌉ + 1) · (k + α·l)
//	comm = (⌈θ/α⌉ + 1) · (n0 − n_m) · k + n_m · n_r · k
func HiNetTInterval(p Params) Cost {
	phases := ceilDiv(p.Theta, p.Alpha) + 1
	return Cost{
		Time: phases * p.T(),
		Comm: phases*(p.N0-p.NM)*p.K + p.NM*p.NR*p.K,
	}
}

// KLOOneInterval is the 1-interval connected row of Table 2 (flooding):
//
//	time = n0 − 1
//	comm = (n0 − 1) · n0 · k
func KLOOneInterval(p Params) Cost {
	return Cost{
		Time: p.N0 - 1,
		Comm: (p.N0 - 1) * p.N0 * p.K,
	}
}

// HiNetOneInterval is the (1, L)-HiNet row of Table 2 (Algorithm 2):
//
//	time = n0 − 1
//	comm = (n0 − 1) · (n0 − n_m) · k + n_m · n_r · k
func HiNetOneInterval(p Params) Cost {
	return Cost{
		Time: p.N0 - 1,
		Comm: (p.N0-1)*(p.N0-p.NM)*p.K + p.NM*p.NR*p.K,
	}
}

// Row is one line of Table 2/3.
type Row struct {
	// Model names the dynamics model / algorithm pair as in the paper.
	Model string
	// TimeFormula and CommFormula are the symbolic Table 2 entries.
	TimeFormula string
	CommFormula string
	// Cost holds the evaluated Table 3-style numbers for given Params.
	Cost Cost
}

// Table2 evaluates all four rows for the given parameters, in the paper's
// order. NR is interpreted per-row: nrT applies to the (k+αL, L)-HiNet row
// and nr1 to the (1, L)-HiNet row, reflecting the paper's observation that
// re-affiliations occur more often under higher dynamics.
func Table2(p Params, nrT, nr1 int) []Row {
	pT := p
	pT.NR = nrT
	p1 := p
	p1.NR = nr1
	return []Row{
		{
			Model:       "(k+α*L)-interval connected [7]",
			TimeFormula: "⌈n0/(α·l)⌉·(k+α·l)",
			CommFormula: "⌈n0/(2α)⌉·n0·k",
			Cost:        KLOTInterval(p),
		},
		{
			Model:       "(k+α*L, L)-HiNet",
			TimeFormula: "(⌈θ/α⌉+1)·(k+α·l)",
			CommFormula: "(⌈θ/α⌉+1)·(n0−nm)·k + nm·nr·k",
			Cost:        HiNetTInterval(pT),
		},
		{
			Model:       "1-interval connected [7]",
			TimeFormula: "n0−1",
			CommFormula: "(n0−1)·n0·k",
			Cost:        KLOOneInterval(p),
		},
		{
			Model:       "(1, L)-HiNet",
			TimeFormula: "n0−1",
			CommFormula: "(n0−1)·(n0−nm)·k + nm·nr·k",
			Cost:        HiNetOneInterval(p1),
		},
	}
}

// Table3Params is the paper's example network setup for Table 3: 100
// nodes, θ=30, n_m=40, k=8, α=5, L=2; n_r is 3 in the (T, L)-HiNet row and
// 10 in the (1, L)-HiNet row.
var Table3Params = Params{N0: 100, Theta: 30, NM: 40, K: 8, Alpha: 5, L: 2}

// Table3NRT and Table3NR1 are the per-row re-affiliation counts.
const (
	Table3NRT = 3
	Table3NR1 = 10
)

// Table3Published holds the numbers printed in the paper's Table 3, in
// Table 2 row order. Note: the published (1, L)-HiNet communication value
// (51680) does not match the paper's own formula with n_r=10, which yields
// 50720 — see EXPERIMENTS.md for the 960-token discrepancy analysis. All
// other cells reproduce exactly.
var Table3Published = []Cost{
	{Time: 180, Comm: 8000},
	{Time: 126, Comm: 4320},
	{Time: 99, Comm: 79200},
	{Time: 99, Comm: 51680},
}

// Table3 evaluates the paper's example instance with its formulas.
func Table3() []Row {
	return Table2(Table3Params, Table3NRT, Table3NR1)
}

// Reduction returns the fractional communication saving of b over a
// (positive when b is cheaper), e.g. 0.46 for Table 3's Algorithm 1 row.
func Reduction(a, b Cost) float64 {
	if a.Comm == 0 {
		return 0
	}
	return 1 - float64(b.Comm)/float64(a.Comm)
}

// CrossoverNRT returns the re-affiliation rate n_r at which Algorithm 1's
// analytic communication stops beating KLO-T's (the executable form of the
// paper's "n_r should be much less than n_0" premise). Solving
//
//	(⌈θ/α⌉+1)(n0−nm)k + nm·nr·k = ⌈n0/2α⌉·n0·k
//
// for nr gives (⌈n0/2α⌉·n0 − (⌈θ/α⌉+1)(n0−nm)) / nm. The result may be
// fractional; clustering pays strictly below it. NR in p is ignored.
func CrossoverNRT(p Params) float64 {
	if p.NM == 0 {
		return 0
	}
	phases := ceilDiv(p.Theta, p.Alpha) + 1
	klo := ceilDiv(p.N0, 2*p.Alpha) * p.N0
	return (float64(klo) - float64(phases*(p.N0-p.NM))) / float64(p.NM)
}

// CrossoverNR1 is the analogous threshold for Algorithm 2 vs 1-interval
// flooding: ((n0−1)·n0 − (n0−1)(n0−nm)) / nm = n0 − 1.
//
// Algorithm 2's saving therefore survives any n_r below n0−1 — i.e. as
// long as a member does not re-affiliate nearly every round of the
// execution, clustering pays; a clean closed form the paper states only
// qualitatively.
func CrossoverNR1(p Params) float64 {
	return float64(p.N0 - 1)
}
