package analysis_test

import (
	"fmt"

	"repro/internal/analysis"
)

// Example evaluates the paper's Table 2 formulas at its Table 3 operating
// point (n0=100, θ=30, nm=40, k=8, α=5, L=2).
func Example() {
	for _, row := range analysis.Table3() {
		fmt.Printf("%-31s time=%-4d comm=%d\n", row.Model, row.Cost.Time, row.Cost.Comm)
	}
	// Output:
	// (k+α*L)-interval connected [7]  time=180  comm=8000
	// (k+α*L, L)-HiNet                time=126  comm=4320
	// 1-interval connected [7]        time=99   comm=79200
	// (1, L)-HiNet                    time=99   comm=50720
}

func ExampleReduction() {
	rows := analysis.Table3()
	fmt.Printf("%.1f%%\n", 100*analysis.Reduction(rows[0].Cost, rows[1].Cost))
	// Output: 46.0%
}
