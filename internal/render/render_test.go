package render

import (
	"strings"
	"testing"

	"repro/internal/ctvg"
	"repro/internal/geom"
)

func TestNewSceneValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewScene(0, 5)
}

func TestSceneEmpty(t *testing.T) {
	s := NewScene(4, 2)
	want := "....\n....\n"
	if s.String() != want {
		t.Fatalf("got %q", s.String())
	}
}

func TestPlotCornersAndClamp(t *testing.T) {
	f := geom.Field{W: 10, H: 10}
	s := NewScene(5, 5)
	s.Plot(geom.Point{X: 0, Y: 0}, f, 'A')       // bottom-left
	s.Plot(geom.Point{X: 9.99, Y: 9.99}, f, 'B') // top-right
	s.Plot(geom.Point{X: -5, Y: 50}, f, 'C')     // clamped top-left
	out := s.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Top line printed first: contains C at column 0 and B at column 4.
	if lines[0][0] != 'C' || lines[0][4] != 'B' {
		t.Fatalf("top line %q", lines[0])
	}
	if lines[4][0] != 'A' {
		t.Fatalf("bottom line %q", lines[4])
	}
}

func TestGlyphs(t *testing.T) {
	h := ctvg.NewHierarchy(5)
	h.SetHead(0)
	h.SetHead(2)
	h.SetMember(1, 0)
	h.SetMember(3, 2)
	h.SetGateway(4, 0)
	idx := HeadIndex(h)
	if Glyph(h, idx, 0) != 'H' || Glyph(h, idx, 4) != 'g' {
		t.Fatal("head/gateway glyphs wrong")
	}
	if Glyph(h, idx, 1) != 'a' {
		t.Fatalf("member of first cluster glyph %c", Glyph(h, idx, 1))
	}
	if Glyph(h, idx, 3) != 'b' {
		t.Fatalf("member of second cluster glyph %c", Glyph(h, idx, 3))
	}
	u := ctvg.NewHierarchy(1)
	if Glyph(u, HeadIndex(u), 0) != '?' {
		t.Fatal("unaffiliated glyph wrong")
	}
}

func TestNetworkRender(t *testing.T) {
	f := geom.Field{W: 10, H: 10}
	pos := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 8, Y: 8}}
	h := ctvg.NewHierarchy(3)
	h.SetHead(0)
	h.SetMember(1, 0)
	h.SetGateway(2, 0)
	out := Network(pos, f, h, 20, 10)
	if !strings.Contains(out, "H") || !strings.Contains(out, "a") || !strings.Contains(out, "g") {
		t.Fatalf("render missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "H=head (1)") {
		t.Fatalf("legend wrong:\n%s", out)
	}
}

func TestNetworkHeadsOverwriteMembersOnCollision(t *testing.T) {
	f := geom.Field{W: 10, H: 10}
	// Head and member in the same cell: the head glyph must win.
	pos := []geom.Point{{X: 5, Y: 5}, {X: 5, Y: 5}}
	h := ctvg.NewHierarchy(2)
	h.SetHead(0)
	h.SetMember(1, 0)
	out := Network(pos, f, h, 10, 10)
	if !strings.Contains(out, "H") {
		t.Fatalf("head hidden by member:\n%s", out)
	}
	if strings.Contains(strings.Split(out, "\n")[4], "a") {
		t.Fatalf("member glyph should be overwritten:\n%s", out)
	}
}
