// Package render draws geometric network snapshots as ASCII scenes for the
// terminal: node positions on a character grid, with cluster roles encoded
// in the glyphs (H = head, g = gateway, lowercase letter = member of the
// cluster whose head has that letter's index). It powers the Fig. 1
// regeneration in cmd/hinetsim.
package render

import (
	"fmt"
	"strings"

	"repro/internal/ctvg"
	"repro/internal/geom"
)

// Scene renders positions within the field onto a grid of the given
// character dimensions. Multiple nodes mapping to one cell show the last
// one drawn; empty cells are dots.
type Scene struct {
	W, H  int
	cells [][]byte
}

// NewScene creates an empty w x h scene. Dimensions must be positive.
func NewScene(w, h int) *Scene {
	if w <= 0 || h <= 0 {
		panic("render: non-positive scene dimensions")
	}
	s := &Scene{W: w, H: h, cells: make([][]byte, h)}
	for y := range s.cells {
		s.cells[y] = []byte(strings.Repeat(".", w))
	}
	return s
}

// cell maps a field position to grid coordinates.
func (s *Scene) cell(p geom.Point, f geom.Field) (x, y int) {
	x = int(p.X / f.W * float64(s.W))
	y = int(p.Y / f.H * float64(s.H))
	if x >= s.W {
		x = s.W - 1
	}
	if y >= s.H {
		y = s.H - 1
	}
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	return x, y
}

// Plot places glyph at the position (clamped into the grid).
func (s *Scene) Plot(p geom.Point, f geom.Field, glyph byte) {
	x, y := s.cell(p, f)
	s.cells[y][x] = glyph
}

// String renders the grid, top row first.
func (s *Scene) String() string {
	var sb strings.Builder
	for y := s.H - 1; y >= 0; y-- { // y grows upward, terminal grows down
		sb.Write(s.cells[y])
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Glyph returns the role glyph for node v under hierarchy h: 'H' for
// heads, 'g' for gateways, a cluster-indexed lowercase letter for members,
// '?' for unaffiliated nodes.
func Glyph(h *ctvg.Hierarchy, headIndex map[int]int, v int) byte {
	switch h.Role[v] {
	case ctvg.Head:
		return 'H'
	case ctvg.Gateway:
		return 'g'
	case ctvg.Member:
		if idx, ok := headIndex[h.HeadOf(v)]; ok {
			return byte('a' + idx%26)
		}
		return 'm'
	default:
		return '?'
	}
}

// HeadIndex numbers the heads of a hierarchy 0..len-1 in ascending node
// order, for stable member glyphs.
func HeadIndex(h *ctvg.Hierarchy) map[int]int {
	idx := make(map[int]int)
	for i, hd := range h.Heads() {
		idx[hd] = i
	}
	return idx
}

// Network renders a full clustered snapshot: every node plotted with its
// role glyph, followed by a legend.
func Network(pos []geom.Point, f geom.Field, h *ctvg.Hierarchy, w, hh int) string {
	s := NewScene(w, hh)
	idx := HeadIndex(h)
	// Members first so heads/gateways overwrite them on collisions.
	for v, p := range pos {
		if h.Role[v] == ctvg.Member || h.Role[v] == ctvg.Unaffiliated {
			s.Plot(p, f, Glyph(h, idx, v))
		}
	}
	for v, p := range pos {
		if h.Role[v] == ctvg.Gateway {
			s.Plot(p, f, 'g')
		}
	}
	for v, p := range pos {
		if h.Role[v] == ctvg.Head {
			s.Plot(p, f, 'H')
		}
	}
	var sb strings.Builder
	sb.WriteString(s.String())
	fmt.Fprintf(&sb, "H=head (%d)  g=gateway (%d)  a..z=member of %d clusters  ?=unaffiliated\n",
		len(h.Heads()), len(h.Gateways()), len(h.Heads()))
	return sb.String()
}
