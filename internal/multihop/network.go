package multihop

import (
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// Network wraps a d-hop clustered static topology as a ctvg.Dynamic: the
// base graph and parent-oriented hierarchy are stable; random churn edges
// (which can only help dissemination) differ per round. It is the
// executable environment for running the paper's algorithms on multi-hop
// clusters.
type Network struct {
	base  *graph.Graph
	view  *ctvg.Hierarchy
	churn int
	rng   *xrand.Rand
	snaps []*graph.Graph
}

// NewNetwork builds a d-hop clustering of g and wraps it. maxLink bounds
// the inter-head bridge search; pass 0 for the default 2d+1.
func NewNetwork(g *graph.Graph, d, maxLink, churn int, rng *xrand.Rand) (*Network, *Hierarchy, error) {
	h, err := Build(g, d)
	if err != nil {
		return nil, nil, err
	}
	if maxLink <= 0 {
		maxLink = 2*d + 1
	}
	return &Network{
		base:  g,
		view:  h.ParentView(g, maxLink),
		churn: churn,
		rng:   rng,
	}, h, nil
}

// N implements ctvg.Dynamic.
func (nw *Network) N() int { return nw.base.N() }

// At implements ctvg.Dynamic.
func (nw *Network) At(r int) *graph.Graph {
	if r < 0 {
		panic("multihop: negative round")
	}
	if nw.churn == 0 {
		return nw.base
	}
	for len(nw.snaps) <= r {
		g := nw.base.Clone()
		for j := 0; j < nw.churn; j++ {
			u, v := nw.rng.Intn(g.N()), nw.rng.Intn(g.N())
			if u != v {
				g.AddEdge(u, v)
			}
		}
		nw.snaps = append(nw.snaps, g)
	}
	return nw.snaps[r]
}

// HierarchyAt implements ctvg.Dynamic.
func (nw *Network) HierarchyAt(r int) *ctvg.Hierarchy { return nw.view }

var _ ctvg.Dynamic = (*Network)(nil)
