package multihop_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/multihop"
)

// Example builds a 2-hop clustering of a 9-node path — the paper's
// future-work "multi-hop clusters" — and shows the parent-oriented view
// that lets Algorithm 1 run on it unchanged.
func Example() {
	g := graph.Path(9)
	h, err := multihop.Build(g, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("heads:", h.Heads)
	fmt.Println("node 8: head", h.HeadOf[8], "parent", h.Parent[8], "depth", h.Depth[8])
	L, _ := h.MaxHeadSeparation(g)
	fmt.Printf("head separation %d <= 2d+1 = %d\n", L, 2*2+1)
	// Output:
	// heads: [0 3 6]
	// node 8: head 6 parent 7 depth 2
	// head separation 3 <= 2d+1 = 5
}
