package multihop

import (
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

func TestBuildValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := Build(g, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	if _, err := Build(disc, 2); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestBuildOnPath(t *testing.T) {
	// Path of 9 nodes, d=2: head 0 covers 0..2; node 3 uncovered -> head
	// 3 covers 1..5; node 6 -> head 6 covers 4..8. Heads: 0, 3, 6.
	g := graph.Path(9)
	h, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Heads) != 3 || h.Heads[0] != 0 || h.Heads[1] != 3 || h.Heads[2] != 6 {
		t.Fatalf("heads %v", h.Heads)
	}
	if err := h.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Node 8 is depth 2 from head 6.
	if h.HeadOf[8] != 6 || h.Depth[8] != 2 || h.Parent[8] != 7 {
		t.Fatalf("node 8: head=%d depth=%d parent=%d", h.HeadOf[8], h.Depth[8], h.Parent[8])
	}
}

func TestBuildRandomGraphsValid(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := xrand.New(seed)
		g := graph.RandomConnected(50, 80, rng)
		for _, d := range []int{1, 2, 3} {
			h, err := Build(g, d)
			if err != nil {
				t.Fatalf("seed %d d %d: %v", seed, d, err)
			}
			if err := h.Validate(g); err != nil {
				t.Fatalf("seed %d d %d: %v", seed, d, err)
			}
			// The generalised linkage bound: heads at most 2d+1 apart.
			L, ok := h.MaxHeadSeparation(g)
			if !ok || L > 2*d+1 {
				t.Fatalf("seed %d d %d: head separation %d > 2d+1", seed, d, L)
			}
		}
	}
}

func TestValidateRejections(t *testing.T) {
	g := graph.Path(9)
	fresh := func() *Hierarchy {
		h, err := Build(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	cases := []struct {
		name   string
		mutate func(h *Hierarchy)
	}{
		{"unassigned node", func(h *Hierarchy) { h.HeadOf[4] = -1 }},
		{"head with parent", func(h *Hierarchy) { h.Parent[0] = 1 }},
		{"orphan non-head", func(h *Hierarchy) { h.Parent[4] = -1 }},
		{"non-adjacent parent", func(h *Hierarchy) { h.Parent[4] = 8 }},
		{"cross-cluster parent", func(h *Hierarchy) { h.Parent[4] = 5; h.Depth[4] = h.Depth[5] + 1 }},
		{"depth too large", func(h *Hierarchy) { h.D = 1 }},
		{"heads too close", func(h *Hierarchy) { h.Heads = append(h.Heads, 1); h.HeadOf[1] = 1; h.Parent[1] = -1; h.Depth[1] = 0 }},
	}
	for _, c := range cases {
		h := fresh()
		c.mutate(h)
		if h.Validate(g) == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestMembersOf(t *testing.T) {
	g := graph.Path(9)
	h, _ := Build(g, 2)
	m := h.MembersOf(3)
	// Multi-source BFS ties go to the earlier-seeded head: node 2 is at
	// distance 2 from head 0 and 1 from head 3 -> head 3? No: BFS seeds
	// heads in order 0,3,6; level-1 neighbours of 0 are {1}, of 3 are
	// {2,4}, of 6 are {5,7}. So 2 belongs to 3.
	want := map[int]bool{2: true, 4: true}
	if len(m) != 2 || !want[m[0]] || !want[m[1]] {
		t.Fatalf("MembersOf(3)=%v", m)
	}
}

func TestParentViewRoles(t *testing.T) {
	g := graph.Path(9)
	h, _ := Build(g, 2)
	view := h.ParentView(g, 5)
	// Heads keep the Head role.
	for _, hd := range h.Heads {
		if !view.IsHead(hd) {
			t.Fatalf("head %d lost role", hd)
		}
	}
	// Every non-head's cluster field is its parent.
	for v := 0; v < 9; v++ {
		if h.HeadOf[v] == v {
			continue
		}
		if view.Cluster[v] != h.Parent[v] {
			t.Fatalf("node %d view cluster %d != parent %d", v, view.Cluster[v], h.Parent[v])
		}
	}
	// On a path with bridges promoted, the relay subgraph spans the
	// whole path interior: every internal path node must relay.
	for v := 1; v < 8; v++ {
		if !view.IsRelay(v) && h.HeadOf[v] != v {
			// Leaves of the trees that are not on bridges may be members;
			// on a path, though, nodes 1..7 all lie between heads 0 and 6.
			t.Fatalf("interior node %d is not a relay (%v)", v, view.Role[v])
		}
	}
}

func TestRelaySubgraphConnected(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		rng := xrand.New(seed)
		g := graph.RandomConnected(40, 70, rng)
		h, err := Build(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		view := h.ParentView(g, 5)
		// Induced subgraph on relays must connect all heads.
		relay := graph.New(g.N())
		for _, e := range g.Edges() {
			if view.IsRelay(e.U) && view.IsRelay(e.V) {
				relay.AddEdge(e.U, e.V)
			}
		}
		if !relay.ConnectedSubset(h.Heads) {
			t.Fatalf("seed %d: relay subgraph does not connect heads", seed)
		}
	}
}

func TestAlg1CompletesOnMultiHopClusters(t *testing.T) {
	// The future-work scenario: Algorithm 1, unchanged, on d=2 and d=3
	// clusterings via the parent-oriented view.
	const n, k = 50, 6
	for _, d := range []int{2, 3} {
		for seed := uint64(0); seed < 4; seed++ {
			rng := xrand.New(seed)
			g := graph.RandomConnected(n, 80, rng)
			nw, h, err := NewNetwork(g, d, 0, 5, rng)
			if err != nil {
				t.Fatal(err)
			}
			// Generous phase length: k + backbone linkage + tree depth.
			T := k + (2*d + 1) + d
			budget := (len(h.Heads) + 2) * T
			assign := token.Spread(n, k, xrand.New(seed+50))
			met := sim.MustRunProtocol(nw, core.Alg1{T: T}, assign,
				sim.Options{MaxRounds: budget, StopWhenComplete: true})
			if !met.Complete {
				t.Fatalf("d=%d seed=%d: incomplete: %v", d, seed, met)
			}
		}
	}
}

func TestAlg2CompletesOnMultiHopClusters(t *testing.T) {
	const n, k = 40, 5
	rng := xrand.New(9)
	g := graph.RandomConnected(n, 70, rng)
	nw, _, err := NewNetwork(g, 2, 0, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	assign := token.Spread(n, k, xrand.New(10))
	met := sim.MustRunProtocol(nw, core.Alg2{}, assign,
		sim.Options{MaxRounds: 2 * n, StopWhenComplete: true})
	if !met.Complete {
		t.Fatalf("Alg2 incomplete: %v", met)
	}
}

func TestMultiHopCheaperThanFlooding(t *testing.T) {
	// The motivation carries over: d-hop clustering still beats flat
	// flooding on communication (with an even smaller relay fraction).
	const n, k = 60, 6
	rng := xrand.New(4)
	g := graph.RandomConnected(n, 100, rng)
	nw, h, err := NewNetwork(g, 2, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	assign := token.Spread(n, k, xrand.New(5))
	T := k + (2*2 + 1) + 2
	alg1 := sim.MustRunProtocol(nw, core.Alg1{T: T}, assign,
		sim.Options{MaxRounds: (len(h.Heads) + 2) * T})
	if !alg1.Complete {
		t.Fatalf("alg1 incomplete: %v", alg1)
	}
	flood := sim.MustRunProtocol(nw, baseline.Flood{}, assign,
		sim.Options{MaxRounds: alg1.Rounds})
	if alg1.TokensSent >= flood.TokensSent {
		t.Fatalf("multi-hop Alg1 (%d) not cheaper than flooding (%d)",
			alg1.TokensSent, flood.TokensSent)
	}
}

func TestNetworkChurnZeroReturnsBase(t *testing.T) {
	rng := xrand.New(1)
	g := graph.RandomConnected(20, 30, rng)
	nw, _, err := NewNetwork(g, 2, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if nw.At(0) != nw.At(5) {
		t.Fatal("churn-free network should return the base graph")
	}
}

func TestNetworkNegativeRoundPanics(t *testing.T) {
	rng := xrand.New(1)
	g := graph.RandomConnected(10, 15, rng)
	nw, _, _ := NewNetwork(g, 1, 0, 0, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.At(-1)
}

func TestHierarchyViewIsCTVGDynamic(t *testing.T) {
	rng := xrand.New(2)
	g := graph.RandomConnected(15, 25, rng)
	nw, _, _ := NewNetwork(g, 2, 0, 2, rng)
	var d ctvg.Dynamic = nw
	if d.N() != 15 {
		t.Fatal("interface wrong")
	}
}

func TestQuickBuildAlwaysValid(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		rng := xrand.New(seed)
		n := 8 + rng.Intn(40)
		g := graph.RandomConnected(n, n+rng.Intn(2*n), rng)
		d := 1 + int(dRaw%3)
		h, err := Build(g, d)
		if err != nil {
			return false
		}
		return h.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildD2(b *testing.B) {
	g := graph.RandomConnected(200, 400, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}
