// Package multihop implements the paper's stated future-work direction:
// cluster hierarchies whose members may be up to d hops from their head
// ("how to handle multi-hop clusters should be an interesting issue").
//
// Construction: a greedy d-hop independent dominating head set (no two
// heads within d hops; every node within d hops of a head), shortest-path
// trees rooted at the heads assigning every node a parent toward its head,
// and gateway marking on inter-head bridge paths (heads of neighbouring
// clusters are at most 2d+1 hops apart, generalising the paper's L <= 3
// observation for 1-hop clusters).
//
// The key design insight is the *parent-oriented view*: exporting the
// hierarchy to the engine with I(v) = parent(v) (rather than the cluster
// head) and marking every tree-internal node a Gateway makes the paper's
// Algorithms 1 and 2 run on d-hop clusters completely unchanged — members
// upload to their parent, tree-internal relays pipeline tokens up, across
// the inter-head backbone, and back down.
package multihop

import (
	"fmt"

	"repro/internal/ctvg"
	"repro/internal/graph"
)

// Hierarchy is a d-hop cluster structure over a static topology.
type Hierarchy struct {
	// D is the cluster radius in hops.
	D int
	// HeadOf[v] is the cluster head's node ID (HeadOf[h] == h for heads).
	HeadOf []int
	// Parent[v] is v's tree parent toward its head; -1 for heads.
	Parent []int
	// Depth[v] is v's hop distance from its head (0 for heads).
	Depth []int
	// Heads is the sorted head list.
	Heads []int
}

// Build constructs a d-hop clustering of the connected graph g. It returns
// an error if g is disconnected (clusters would be ill-defined for
// unreachable nodes) or d < 1.
func Build(g *graph.Graph, d int) (*Hierarchy, error) {
	if d < 1 {
		return nil, fmt.Errorf("multihop: d=%d must be at least 1", d)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("multihop: graph must be connected")
	}
	n := g.N()
	h := &Hierarchy{
		D:      d,
		HeadOf: make([]int, n),
		Parent: make([]int, n),
		Depth:  make([]int, n),
	}
	for v := range h.HeadOf {
		h.HeadOf[v] = -1
		h.Parent[v] = -1
		h.Depth[v] = -1
	}

	// Greedy d-hop independent dominating set in ID order: v becomes a
	// head iff no already-elected head lies within d hops.
	covered := make([]bool, n) // within d hops of some head
	for v := 0; v < n; v++ {
		if covered[v] {
			continue
		}
		h.Heads = append(h.Heads, v)
		for _, u := range g.NeighborhoodWithin(v, d) {
			covered[u] = true
		}
	}

	// Multi-source BFS from all heads simultaneously: nearest head wins,
	// ties broken by BFS order (lowest head first since Heads ascend and
	// the queue is seeded in order).
	queue := make([]int, 0, n)
	for _, hd := range h.Heads {
		h.HeadOf[hd] = hd
		h.Depth[hd] = 0
		queue = append(queue, hd)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if h.HeadOf[w] < 0 {
				h.HeadOf[w] = h.HeadOf[u]
				h.Parent[w] = u
				h.Depth[w] = h.Depth[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return h, nil
}

// Validate checks the structural invariants against the topology:
// domination within D hops, parent adjacency, parents one level shallower
// and in the same cluster, heads self-rooted.
func (h *Hierarchy) Validate(g *graph.Graph) error {
	n := g.N()
	if len(h.HeadOf) != n {
		return fmt.Errorf("multihop: size mismatch")
	}
	isHead := make([]bool, n)
	for _, hd := range h.Heads {
		isHead[hd] = true
	}
	for v := 0; v < n; v++ {
		switch {
		case h.HeadOf[v] < 0:
			return fmt.Errorf("multihop: node %d unassigned", v)
		case isHead[v]:
			if h.HeadOf[v] != v || h.Parent[v] != -1 || h.Depth[v] != 0 {
				return fmt.Errorf("multihop: head %d malformed", v)
			}
		default:
			p := h.Parent[v]
			if p < 0 {
				return fmt.Errorf("multihop: non-head %d has no parent", v)
			}
			if !g.HasEdge(v, p) {
				return fmt.Errorf("multihop: node %d not adjacent to parent %d", v, p)
			}
			if h.HeadOf[p] != h.HeadOf[v] {
				return fmt.Errorf("multihop: node %d and parent %d in different clusters", v, p)
			}
			if h.Depth[v] != h.Depth[p]+1 {
				return fmt.Errorf("multihop: node %d depth inconsistent", v)
			}
			if h.Depth[v] > h.D {
				return fmt.Errorf("multihop: node %d at depth %d > d=%d", v, h.Depth[v], h.D)
			}
		}
	}
	// d-hop independence of heads.
	for i, a := range h.Heads {
		da, _ := g.BFS(a)
		for _, b := range h.Heads[i+1:] {
			if da[b] <= h.D {
				t := da[b]
				return fmt.Errorf("multihop: heads %d and %d only %d hops apart", a, b, t)
			}
		}
	}
	return nil
}

// MembersOf returns the nodes of head k's cluster excluding k, ascending.
func (h *Hierarchy) MembersOf(k int) []int {
	var out []int
	for v, hd := range h.HeadOf {
		if hd == k && v != k {
			out = append(out, v)
		}
	}
	return out
}

// ParentView exports the parent-oriented ctvg.Hierarchy that runs the
// paper's algorithms unchanged on d-hop clusters:
//
//   - heads keep the Head role;
//   - tree-internal nodes (nodes with children) and inter-head bridge
//     nodes become Gateways, with I(v) = parent(v);
//   - leaves become Members with I(v) = parent(v).
//
// bridge nodes are the interiors of shortest paths between heads at most
// maxLink hops apart in g (pass 2*D+1 for neighbouring clusters).
func (h *Hierarchy) ParentView(g *graph.Graph, maxLink int) *ctvg.Hierarchy {
	n := len(h.HeadOf)
	out := ctvg.NewHierarchy(n)
	hasChild := make([]bool, n)
	for v := 0; v < n; v++ {
		if p := h.Parent[v]; p >= 0 {
			hasChild[p] = true
		}
	}
	for _, hd := range h.Heads {
		out.SetHead(hd)
	}
	for v := 0; v < n; v++ {
		if h.HeadOf[v] == v {
			continue
		}
		if hasChild[v] {
			out.SetGateway(v, h.Parent[v])
		} else {
			out.SetMember(v, h.Parent[v])
		}
	}
	// Inter-head bridges: promote interiors of head-to-head shortest
	// paths so the relay subgraph is connected across clusters.
	for _, a := range h.Heads {
		dist, parent := g.BFS(a)
		for _, b := range h.Heads {
			if b <= a || dist[b] > maxLink {
				continue
			}
			for cur := parent[b]; cur != a && cur != -1; cur = parent[cur] {
				if out.Role[cur] == ctvg.Member {
					out.SetGateway(cur, out.Cluster[cur])
				}
			}
		}
	}
	return out
}

// MaxHeadSeparation returns the largest head-to-head bottleneck linkage in
// g (the generalised L). For a d-hop clustering of a connected graph it is
// at most 2d+1.
func (h *Hierarchy) MaxHeadSeparation(g *graph.Graph) (int, bool) {
	return headLinkage(g, h.Heads)
}

// headLinkage is the bottleneck-MST linkage (duplicated from
// internal/hinet to keep the dependency graph acyclic: hinet depends on
// ctvg only; multihop is a leaf extension).
func headLinkage(g *graph.Graph, heads []int) (int, bool) {
	if len(heads) < 2 {
		return 0, true
	}
	k := len(heads)
	dist := make([][]int, k)
	for i, hd := range heads {
		d, _ := g.BFS(hd)
		dist[i] = make([]int, k)
		for j, h2 := range heads {
			dist[i][j] = d[h2]
			if d[h2] == graph.Inf && i != j {
				return 0, false
			}
		}
	}
	inTree := make([]bool, k)
	best := make([]int, k)
	for i := range best {
		best[i] = graph.Inf
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		best[j] = dist[0][j]
	}
	L := 0
	for added := 1; added < k; added++ {
		min, at := graph.Inf, -1
		for j := 0; j < k; j++ {
			if !inTree[j] && best[j] < min {
				min, at = best[j], j
			}
		}
		if min > L {
			L = min
		}
		inTree[at] = true
		for j := 0; j < k; j++ {
			if !inTree[j] && dist[at][j] < best[j] {
				best[j] = dist[at][j]
			}
		}
	}
	return L, true
}
