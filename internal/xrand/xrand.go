// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// The standard library's math/rand is avoided in library code for two
// reasons: its global source is shared mutable state, and its stream for a
// given seed is not guaranteed stable across Go releases. Experiments in
// this repository must be exactly reproducible from a seed, so we implement
// xoshiro256** (Blackman & Vigna, 2018) together with SplitMix64 for seeding
// and stream splitting.
//
// A Rand is NOT safe for concurrent use; give each goroutine its own stream
// via Split.
package xrand

import "math/bits"

// Rand is a xoshiro256** generator. The zero value is invalid; use New.
type Rand struct {
	s [4]uint64
}

// splitMix64 advances the SplitMix64 state and returns the next output.
// It is used to expand a 64-bit seed into the 256-bit xoshiro state and to
// derive independent child streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed. Distinct seeds
// yield decorrelated streams; the same seed always yields the same stream.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state. SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns the next 64 bits of the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's future output. It consumes one value from the receiver.
func (r *Rand) Split() *Rand {
	// Re-key through SplitMix64 so the child state is not a simple
	// function of a single xoshiro output.
	seed := r.Uint64()
	return New(seed)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Prob returns true with probability p (clamped to [0, 1]).
func (r *Rand) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Hash deterministically mixes a seed and three words into one uniform
// 64-bit value. It is the counter-based complement to the stream generator
// above: where a Rand carries mutable state and therefore a draw order,
// Hash(seed, a, b, c) is a pure function — the same tuple yields the same
// value no matter which goroutine evaluates it or in what order. Fault
// injection keys it on (seed, round, src, dst) so per-delivery randomness
// survives any engine parallelisation unchanged.
//
// Each word is folded in with a SplitMix64 finalisation round; the golden
// ratio offsets keep an all-zero tuple from fixing the state at zero.
func Hash(seed, a, b, c uint64) uint64 {
	x := seed + 0x9e3779b97f4a7c15
	x = hashMix(x ^ a)
	x = hashMix((x + 0x9e3779b97f4a7c15) ^ b)
	x = hashMix((x + 0x9e3779b97f4a7c15) ^ c)
	return x
}

// HashFloat64 maps Hash's output to a uniform float64 in [0, 1) with the
// same 53-bit construction as Rand.Float64.
func HashFloat64(seed, a, b, c uint64) float64 {
	return float64(Hash(seed, a, b, c)>>11) / (1 << 53)
}

// hashMix is the SplitMix64 output finalisation (Stafford variant 13): a
// bijective avalanche over 64 bits.
func hashMix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Perm returns a random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, with the
// Fisher-Yates algorithm.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on an empty slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Sample returns k distinct elements chosen uniformly from xs, in random
// order, without modifying xs. It panics if k > len(xs) or k < 0.
func Sample[T any](r *Rand, xs []T, k int) []T {
	if k < 0 || k > len(xs) {
		panic("xrand: Sample size out of range")
	}
	// Partial Fisher-Yates over a copy of the index space.
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	out := make([]T, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = xs[idx[i]]
	}
	return out
}
