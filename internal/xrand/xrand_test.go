package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent must not track each other.
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			t.Fatalf("parent and child emitted equal value at step %d", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(7).Split()
	c2 := New(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split streams from equal parents diverged at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square sanity test over 8 buckets.
	r := New(99)
	const buckets = 8
	const draws = 80000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[r.Uint64n(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 7 degrees of freedom; 99.9% critical value ~ 24.3.
	if chi2 > 24.3 {
		t.Fatalf("chi-square %f too high; counts %v", chi2, count)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f far from 0.5", mean)
	}
}

func TestProbExtremes(t *testing.T) {
	r := New(11)
	for i := 0; i < 100; i++ {
		if r.Prob(0) {
			t.Fatal("Prob(0) returned true")
		}
		if !r.Prob(1) {
			t.Fatal("Prob(1) returned false")
		}
		if r.Prob(-0.5) {
			t.Fatal("Prob(-0.5) returned true")
		}
		if !r.Prob(1.5) {
			t.Fatal("Prob(1.5) returned false")
		}
	}
}

func TestProbFrequency(t *testing.T) {
	r := New(13)
	const n = 50000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Prob(0.25) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.25) > 0.01 {
		t.Fatalf("Prob(0.25) frequency %f", freq)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermPropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 50)
		p := New(seed).Perm(n)
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(23)
	xs := make([]int, 30)
	for i := range xs {
		xs[i] = i * 10
	}
	for k := 0; k <= len(xs); k++ {
		got := Sample(r, xs, k)
		if len(got) != k {
			t.Fatalf("Sample k=%d returned %d items", k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if seen[v] {
				t.Fatalf("Sample k=%d returned duplicate %d", k, v)
			}
			if v%10 != 0 || v < 0 || v >= 300 {
				t.Fatalf("Sample returned foreign element %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample with k > len did not panic")
		}
	}()
	Sample(New(1), []int{1, 2}, 3)
}

func TestSampleDoesNotMutateInput(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5}
	orig := []int{1, 2, 3, 4, 5}
	Sample(r, xs, 3)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("Sample mutated input: %v", xs)
		}
	}
}

func TestPickCoversAll(t *testing.T) {
	r := New(31)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick over 300 draws only saw %v", seen)
	}
}

func TestShuffleSmall(t *testing.T) {
	r := New(37)
	// Shuffling 0 or 1 elements must be a no-op and not panic.
	r.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	r.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
