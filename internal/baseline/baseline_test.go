package baseline

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

func TestFloodName(t *testing.T) {
	if (Flood{}).Name() != "klo-flood" {
		t.Fatal("name wrong")
	}
	if (KLOT{T: 7}).Name() != "klo-tinterval(T=7)" {
		t.Fatal("KLOT name wrong")
	}
}

func TestFloodRoundsHelper(t *testing.T) {
	if FloodRounds(100) != 99 {
		t.Fatal("FloodRounds wrong")
	}
}

func TestFloodCompletesOnWorstCasePath(t *testing.T) {
	// Static path with the token at one end: the classic n-1 round case.
	const n = 12
	d := sim.NewFlat(tvg.Static{G: graph.Path(n)})
	assign := token.SingleSource(n, 1, 0)
	met := sim.MustRunProtocol(d, Flood{}, assign,
		sim.Options{MaxRounds: FloodRounds(n), StopWhenComplete: true})
	if !met.Complete || met.CompletionRound != n-1 {
		t.Fatalf("flood on path: %v", met)
	}
}

func TestFloodCompletesUnder1IntervalAdversary(t *testing.T) {
	const n, k = 25, 6
	for seed := uint64(0); seed < 8; seed++ {
		adv := adversary.NewOneInterval(n, 0, xrand.New(seed))
		assign := token.Spread(n, k, xrand.New(seed+123))
		met := sim.MustRunProtocol(sim.NewFlat(adv), Flood{}, assign,
			sim.Options{MaxRounds: FloodRounds(n), StopWhenComplete: true})
		if !met.Complete {
			t.Fatalf("seed %d: flood incomplete within n-1 rounds: %v", seed, met)
		}
	}
}

func TestFloodCostMatchesModel(t *testing.T) {
	// Run without early stop for exactly n-1 rounds: every node
	// broadcasts every round; once saturated each broadcast carries k
	// tokens, so total cost is bounded by (n-1)·n·k and reaches a
	// substantial fraction of it.
	const n, k = 15, 4
	adv := adversary.NewOneInterval(n, 0, xrand.New(9))
	assign := token.Spread(n, k, xrand.New(10))
	met := sim.MustRunProtocol(sim.NewFlat(adv), Flood{}, assign,
		sim.Options{MaxRounds: FloodRounds(n)})
	upper := int64((n - 1) * n * k)
	if met.TokensSent > upper {
		t.Fatalf("cost %d exceeds model bound %d", met.TokensSent, upper)
	}
	if met.Messages != int64((n-1)*n) {
		t.Fatalf("messages %d, want every node every round", met.Messages)
	}
	if met.TokensSent < upper/2 {
		t.Fatalf("cost %d suspiciously low vs bound %d", met.TokensSent, upper)
	}
}

func TestKLOTValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KLOT{}.Nodes(token.SingleSource(3, 1, 0))
}

func TestKLOTPhasesHelper(t *testing.T) {
	if KLOTPhases(100, 18, 8) != 10 {
		t.Fatalf("KLOTPhases = %d", KLOTPhases(100, 18, 8))
	}
	if KLOTPhases(101, 18, 8) != 11 {
		t.Fatalf("KLOTPhases = %d", KLOTPhases(101, 18, 8))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("T <= k accepted")
		}
	}()
	KLOTPhases(10, 5, 5)
}

func TestKLOTCompletesOnTIntervalAdversary(t *testing.T) {
	const n, k = 30, 5
	for seed := uint64(0); seed < 6; seed++ {
		T := k + 5 // progress 5 hops per phase
		adv := adversary.NewTInterval(n, T, 6, xrand.New(seed))
		assign := token.Spread(n, k, xrand.New(seed+321))
		phases := KLOTPhases(n, T, k)
		met := sim.MustRunProtocol(sim.NewFlat(adv), KLOT{T: T}, assign,
			sim.Options{MaxRounds: phases * T, StopWhenComplete: true})
		if !met.Complete {
			t.Fatalf("seed %d: KLOT incomplete within %d phases: %v", seed, phases, met)
		}
	}
}

func TestKLOTBroadcastsAscendingPerPhase(t *testing.T) {
	d := sim.NewFlat(tvg.Static{G: graph.Complete(2)})
	assign := token.SingleSource(2, 3, 0)
	var order []int
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.From == 0 {
			order = append(order, m.Tokens.Min())
		}
	}}
	// Phase length 4 > k: node 0 must emit 0,1,2 then go quiet, then
	// start over in the next phase.
	sim.MustRunProtocol(d, KLOT{T: 4}, assign, sim.Options{MaxRounds: 6, Observer: obs})
	want := []int{0, 1, 2, 0, 1} // rounds 0-2, silence round 3, phase 2 rounds 4-5
	if len(order) != len(want) {
		t.Fatalf("broadcasts %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("broadcasts %v, want %v", order, want)
		}
	}
}

func TestKLOTSingleTokenPerMessage(t *testing.T) {
	const n, k = 20, 4
	adv := adversary.NewTInterval(n, k+3, 4, xrand.New(5))
	assign := token.Spread(n, k, xrand.New(6))
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.Cost() != 1 {
			t.Fatalf("KLOT message carries %d tokens", m.Cost())
		}
	}}
	sim.MustRunProtocol(sim.NewFlat(adv), KLOT{T: k + 3}, assign,
		sim.Options{MaxRounds: 30, Observer: obs})
}

func BenchmarkFlood100(b *testing.B) {
	const n, k = 100, 8
	for i := 0; i < b.N; i++ {
		adv := adversary.NewOneInterval(n, 0, xrand.New(uint64(i)))
		assign := token.Spread(n, k, xrand.New(uint64(i)+1))
		sim.MustRunProtocol(sim.NewFlat(adv), Flood{}, assign,
			sim.Options{MaxRounds: n - 1, StopWhenComplete: true})
	}
}

func BenchmarkKLOT100(b *testing.B) {
	const n, k = 100, 8
	T := 18
	for i := 0; i < b.N; i++ {
		adv := adversary.NewTInterval(n, T, 10, xrand.New(uint64(i)))
		assign := token.Spread(n, k, xrand.New(uint64(i)+1))
		sim.MustRunProtocol(sim.NewFlat(adv), KLOT{T: T}, assign,
			sim.Options{MaxRounds: KLOTPhases(n, T, k) * T, StopWhenComplete: true})
	}
}
