// Package baseline implements the flat (cluster-free) dissemination
// algorithms of Kuhn, Lynch and Oshman (STOC 2010) that the paper compares
// against.
//
//   - Flood is the 1-interval connected baseline: every node broadcasts its
//     entire token set in every round. Under 1-interval connectivity all
//     nodes hold all k tokens after n-1 rounds; the paper's Table 2 charges
//     it (n0-1)·n0·k token-sends.
//   - KLOT is the T-interval connected protocol: execution is divided into
//     phases of T rounds; in every round each node broadcasts the smallest
//     token it has not yet broadcast in the current phase. The stable
//     spanning subgraph of each phase pipelines tokens T-k hops per phase,
//     so ⌈n0/(T-k)⌉ phases suffice; the paper charges it
//     ⌈n0/(2α)⌉·n0·k token-sends for T = k + α·L.
//
// Both protocols ignore the cluster hierarchy entirely — they run on the
// sim.Flat adapter or directly on clustered networks (the roles are simply
// not consulted).
package baseline

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/sim"
	"repro/internal/token"
)

// Flood is the KLO/O'Dell 1-interval baseline: full-set flooding.
type Flood struct{}

// Name implements sim.Protocol.
func (Flood) Name() string { return "klo-flood" }

// Nodes implements sim.Protocol.
func (Flood) Nodes(assign *token.Assignment) []sim.Node {
	nodes := make([]sim.Node, assign.N())
	for v := range nodes {
		nodes[v] = &floodNode{ta: assign.Initial[v].Clone(), ver: 1}
	}
	return nodes
}

// FloodRounds is the completion bound under 1-interval connectivity: n-1.
func FloodRounds(n int) int { return n - 1 }

type floodNode struct {
	ta *bitset.Set
	// ver / seen are the delta-delivery stamps (see sim.Message.Version):
	// flooding re-broadcasts the full set every round, so almost every
	// heard payload repeats a (sender, version) the receiver has already
	// absorbed and skips its union. ver starts at 1 so stamps are never
	// the unversioned 0.
	ver  uint32
	seen map[int]uint32
}

func (n *floodNode) Send(v sim.View) *sim.Message {
	payload := v.NewSet()
	payload.CopyFrom(n.ta)
	m := v.NewMessage()
	m.To = sim.NoAddr
	m.Kind = sim.KindBroadcast
	m.Tokens = payload
	m.Version = n.ver
	return m
}

func (n *floodNode) Deliver(v sim.View, msgs []*sim.Message) {
	delta := v.DeltaEnabled()
	for _, m := range msgs {
		if delta && m.Version != 0 {
			if n.seen == nil {
				n.seen = make(map[int]uint32)
			}
			if n.seen[m.From] >= m.Version {
				continue
			}
			n.seen[m.From] = m.Version
		}
		if n.ta.UnionChanged(m.Tokens) {
			n.ver++
		}
	}
}

func (n *floodNode) Tokens() *bitset.Set { return n.ta }

// Inject implements sim.Injector: an arriving token is a gain, so the
// content stamp advances and the next broadcast carries it.
func (n *floodNode) Inject(r, tok int) {
	if !n.ta.Contains(tok) {
		n.ta.Add(tok)
		n.ver++
	}
}

// Collect implements sim.Collectible. No version bump: the engine removes
// gc from every node at the same barrier, so receivers' absorbed-version
// claims shrink in lockstep with the payloads they stand for.
func (n *floodNode) Collect(gc *bitset.Set) {
	n.ta.DifferenceWith(gc)
}

// KLOT is the KLO T-interval connected protocol (token pipelining).
type KLOT struct {
	// T is the phase length in rounds; correctness under T-interval
	// connectivity requires T > k.
	T int
}

// Name implements sim.Protocol.
func (p KLOT) Name() string { return fmt.Sprintf("klo-tinterval(T=%d)", p.T) }

// Nodes implements sim.Protocol.
func (p KLOT) Nodes(assign *token.Assignment) []sim.Node {
	if p.T <= 0 {
		panic("baseline: KLOT requires T > 0")
	}
	nodes := make([]sim.Node, assign.N())
	for v := range nodes {
		nodes[v] = &klotNode{
			T:  p.T,
			ta: assign.Initial[v].Clone(),
			ts: bitset.New(assign.K),
		}
	}
	return nodes
}

// KLOTPhases returns the phase count sufficient under T-interval
// connectivity with T = k + progress: ⌈n/progress⌉ where progress = T - k
// is the per-phase pipelining distance. For the paper's parameterisation
// T = k + α·L this is ⌈n/(α·L)⌉, matching Table 2's time formula.
func KLOTPhases(n, T, k int) int {
	progress := T - k
	if progress <= 0 {
		panic("baseline: KLOT needs T > k for guaranteed progress")
	}
	return (n + progress - 1) / progress
}

type klotNode struct {
	T  int
	ta *bitset.Set
	ts *bitset.Set // tokens broadcast in the current phase
}

func (n *klotNode) Send(v sim.View) *sim.Message {
	if v.Round%n.T == 0 {
		n.ts.Clear()
	}
	t := n.ta.MinNotIn(n.ts)
	if t < 0 {
		return nil
	}
	n.ts.Add(t)
	payload := v.NewSet()
	payload.Add(t)
	m := v.NewMessage()
	m.To = sim.NoAddr
	m.Kind = sim.KindBroadcast
	m.Tokens = payload
	return m
}

func (n *klotNode) Deliver(v sim.View, msgs []*sim.Message) {
	for _, m := range msgs {
		n.ta.UnionWith(m.Tokens)
	}
}

func (n *klotNode) Tokens() *bitset.Set { return n.ta }

// Inject implements sim.Injector.
func (n *klotNode) Inject(r, tok int) {
	n.ta.Add(tok)
}

// Collect implements sim.Collectible. The sent-set is purged too: a stale
// ts bit on a reused slot would make MinNotIn skip the new token for the
// rest of the phase.
func (n *klotNode) Collect(gc *bitset.Set) {
	n.ta.DifferenceWith(gc)
	n.ts.DifferenceWith(gc)
}

var (
	_ sim.Protocol = Flood{}
	_ sim.Protocol = KLOT{}
)
