package tvg

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// The incremental checkers (stability-window skips in StableSubgraph,
// IntervalConnected, InfluenceTimes) must be pure optimisations. Each test
// compares the stability-aware path against a naive reference on the same
// trace, accessed both with and without the Stability interface.

// noStability strips the Stability interface from a Dynamic.
type noStability struct {
	d Dynamic
}

func (s noStability) N() int                { return s.d.N() }
func (s noStability) At(r int) *graph.Graph { return s.d.At(r) }

func naiveStableSubgraph(d Dynamic, from, T int) *graph.Graph {
	acc := d.At(from).Clone()
	for r := from + 1; r < from+T; r++ {
		acc = graph.Intersect(acc, d.At(r))
	}
	return acc
}

func naiveInfluenceTimes(d Dynamic, src, from, horizon int) []int {
	n := d.N()
	out := make([]int, n)
	for v := range out {
		out[v] = Inf
	}
	out[src] = 0
	reached := make([]bool, n)
	reached[src] = true
	frontier := 1
	for step := 0; step < horizon && frontier < n; step++ {
		g := d.At(from + step)
		var newly []int
		for v := 0; v < n; v++ {
			if reached[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if reached[u] {
					newly = append(newly, v)
					break
				}
			}
		}
		for _, v := range newly {
			reached[v] = true
			out[v] = step + 1
			frontier++
		}
	}
	return out
}

func TestStableSubgraphIncremental(t *testing.T) {
	tr := randomTrace(t, 20, 5, 4, 11)
	for from := 0; from < tr.Len()-1; from++ {
		for _, T := range []int{1, 2, 4, 7, tr.Len() - from} {
			if from+T > tr.Len() {
				continue
			}
			want := naiveStableSubgraph(noStability{tr}, from, T)
			got := StableSubgraph(tr, from, T)
			if !got.Equal(want) {
				t.Fatalf("StableSubgraph(from=%d, T=%d) diverges from naive reference", from, T)
			}
		}
	}
}

func TestIntervalConnectedIncremental(t *testing.T) {
	// A trace of connected windows must pass for every T, with and without
	// the stability fast path.
	tr := randomTrace(t, 16, 4, 5, 12)
	for _, T := range []int{1, 2, 5, 8} {
		fast := IntervalConnected(tr, T, tr.Len())
		slow := IntervalConnected(noStability{tr}, T, tr.Len())
		if fast != slow {
			t.Fatalf("T=%d: incremental %v, naive %v", T, fast, slow)
		}
	}

	// A window with a stable disconnection must fail identically: two stable
	// halves joined only in the middle rounds.
	a := graph.FromEdgeList(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	b := a.Clone()
	b.AddEdge(1, 2)
	tr2 := NewTrace([]*graph.Graph{a, a, b, a, a})
	for _, T := range []int{1, 2, 3} {
		fast := IntervalConnected(tr2, T, tr2.Len())
		slow := IntervalConnected(noStability{tr2}, T, tr2.Len())
		if fast != slow {
			t.Fatalf("disconnected trace, T=%d: incremental %v, naive %v", T, fast, slow)
		}
		if fast {
			t.Fatalf("disconnected trace, T=%d: reported connected", T)
		}
	}
}

func TestInfluenceTimesIncremental(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 6; trial++ {
		tr := randomTrace(t, 18, 4, 5, uint64(20+trial))
		n := tr.N()
		for _, src := range []int{0, n / 2, n - 1} {
			for _, from := range []int{0, 3, 7} {
				horizon := 1 + rng.Intn(tr.Len())
				want := naiveInfluenceTimes(noStability{tr}, src, from, horizon)
				got := InfluenceTimes(tr, src, from, horizon)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d src %d from %d horizon %d: InfluenceTimes diverges\n got  %v\n want %v",
						trial, src, from, horizon, got, want)
				}
			}
		}
	}
}

func TestInfluenceTimesLongStableWindow(t *testing.T) {
	// A path graph held stable: the flood must advance exactly one hop per
	// round inside the window, not jump to the window end.
	const n = 10
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	tr := NewTrace([]*graph.Graph{g, g, g, g, g, g, g, g, g, g, g, g})
	times := InfluenceTimes(tr, 0, 0, tr.Len())
	for v := 0; v < n; v++ {
		if times[v] != v {
			t.Fatalf("node %d influenced at %d, want %d", v, times[v], v)
		}
	}
	// Horizon shorter than the path: the tail must stay unreachable.
	times = InfluenceTimes(tr, 0, 0, 4)
	if times[4] != 4 || times[5] != Inf {
		t.Fatalf("horizon clamp wrong: times[4]=%d times[5]=%d", times[4], times[5])
	}
}
