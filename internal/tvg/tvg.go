// Package tvg implements the Time-Varying Graph model of flat dynamic
// networks and the T-interval connectivity property of Kuhn, Lynch and
// Oshman (STOC 2010).
//
// A TVG (Casteigts et al., 2012) is G = (V, E, Γ, ρ, ζ): a footprint edge
// set E over vertex set V, a lifetime Γ divided into synchronous rounds, a
// presence function ρ(e, t) saying whether edge e exists in round t, and a
// latency function ζ(e, t) giving the time to cross e. This repository's
// simulator is round-synchronous, so ζ ≡ 1 round; the paper's CTVG
// (internal/ctvg) extends this model with cluster roles and membership.
package tvg

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Dynamic is a dynamic network: a sequence of static snapshots on a fixed
// vertex set, one per round. Implementations may be recorded traces or
// lazily generated adversaries.
type Dynamic interface {
	// N returns the number of vertices (constant over the lifetime).
	N() int
	// At returns the communication graph of round r (r >= 0). The result
	// must be treated as read-only.
	At(r int) *graph.Graph
}

// Stability is the optional interface through which a Dynamic advertises
// its T-interval stable windows (Casteigts et al.: the maximal intervals
// over which the presence function is constant). The simulation engine uses
// it to freeze per-round state for the whole window instead of re-deriving
// it every round.
type Stability interface {
	// StableUntil returns the largest round s >= r such that every round
	// in [r, s] presents content-identical state to round r — the same
	// snapshot, and for clustered dynamics the same hierarchy too.
	// Implementations that cannot prove stability return r; math.MaxInt
	// means "stable forever".
	StableUntil(r int) int
}

// Trace is a Dynamic backed by a recorded snapshot list. Rounds beyond the
// recorded range repeat the final snapshot, so a finite trace describes an
// eventually-static network.
type Trace struct {
	n     int
	snaps []*graph.Graph
	// stable[r] is the precomputed StableUntil(r). Computed eagerly so a
	// trace shared by concurrent runs stays read-only.
	stable []int
}

// NewTrace builds a trace from snapshots, which must all share the same
// vertex count and be non-empty.
func NewTrace(snaps []*graph.Graph) *Trace {
	if len(snaps) == 0 {
		panic("tvg: empty trace")
	}
	n := snaps[0].N()
	for i, s := range snaps {
		if s.N() != n {
			panic(fmt.Sprintf("tvg: snapshot %d has %d vertices, want %d", i, s.N(), n))
		}
	}
	t := &Trace{n: n, snaps: snaps}
	t.stable = make([]int, len(snaps))
	t.stable[len(snaps)-1] = math.MaxInt // past-the-end rounds repeat it
	for r := len(snaps) - 2; r >= 0; r-- {
		if snaps[r].Equal(snaps[r+1]) {
			t.stable[r] = t.stable[r+1]
		} else {
			t.stable[r] = r
		}
	}
	return t
}

// N implements Dynamic.
func (t *Trace) N() int { return t.n }

// Len returns the number of recorded rounds.
func (t *Trace) Len() int { return len(t.snaps) }

// At implements Dynamic; rounds past the end repeat the last snapshot.
func (t *Trace) At(r int) *graph.Graph {
	if r < 0 {
		panic("tvg: negative round")
	}
	if r >= len(t.snaps) {
		r = len(t.snaps) - 1
	}
	return t.snaps[r]
}

// StableUntil implements Stability: the precomputed end of the window of
// rounds presenting the same snapshot as round r. Because rounds past the
// recorded range repeat the final snapshot, windows reaching the end extend
// to math.MaxInt.
func (t *Trace) StableUntil(r int) int {
	if r < 0 {
		panic("tvg: negative round")
	}
	if r >= len(t.snaps) {
		return math.MaxInt
	}
	return t.stable[r]
}

// Append adds a snapshot to the end of the trace. The stability index is
// repaired in place: only the trailing window that previously extended past
// the end can change, so the backward sweep stops at the first self-limited
// round.
func (t *Trace) Append(g *graph.Graph) {
	if g.N() != t.n {
		panic("tvg: appended snapshot has wrong vertex count")
	}
	t.snaps = append(t.snaps, g)
	t.stable = append(t.stable, math.MaxInt)
	for r := len(t.snaps) - 2; r >= 0 && t.stable[r] > r; r-- {
		if t.snaps[r].Equal(t.snaps[r+1]) {
			t.stable[r] = t.stable[r+1]
		} else {
			t.stable[r] = r
		}
	}
}

// Record materialises rounds [0, rounds) of any Dynamic into a Trace.
//
// Stable windows are deduplicated: when the source advertises Stability (or
// returns the identical *graph.Graph pointer for consecutive rounds), the
// whole window shares one clone instead of storing a copy per round, so a
// T-stable trace costs O(windows·E) memory rather than O(rounds·E). The
// shared pointers also let NewTrace's stability precompute hit the Equal
// pointer fast-path.
func Record(d Dynamic, rounds int) *Trace {
	if rounds <= 0 {
		panic("tvg: Record needs rounds > 0")
	}
	st, _ := d.(Stability)
	snaps := make([]*graph.Graph, rounds)
	var prevSrc, prevSnap *graph.Graph
	for r := 0; r < rounds; {
		src := d.At(r)
		snap := prevSnap
		if src != prevSrc || snap == nil {
			snap = src.Clone()
		}
		end := r
		if st != nil {
			if s := st.StableUntil(r); s > end {
				end = s
				if end > rounds-1 {
					end = rounds - 1
				}
			}
		}
		for w := r; w <= end; w++ {
			snaps[w] = snap
		}
		prevSrc, prevSnap = src, snap
		r = end + 1
	}
	return NewTrace(snaps)
}

// TVG is the explicit (V, E, Γ, ρ, ζ) presentation of a recorded dynamic
// network, matching Definition 1 of the paper minus the cluster extensions.
type TVG struct {
	// N is the number of vertices.
	N int
	// Footprint contains every edge that exists in at least one round.
	Footprint *graph.Graph
	// Lifetime is the number of recorded rounds.
	Lifetime int
	// Rho is the presence function: Rho(e, t) reports whether edge e is
	// available in round t.
	Rho func(e graph.Edge, t int) bool
	// Zeta is the latency function; in the synchronous round model every
	// present edge is crossed in exactly one round.
	Zeta func(e graph.Edge, t int) int
}

// FromTrace derives the explicit TVG view of a trace.
func FromTrace(t *Trace) *TVG {
	foot := graph.New(t.n)
	for _, s := range t.snaps {
		for _, e := range s.Edges() {
			foot.AddEdge(e.U, e.V)
		}
	}
	return &TVG{
		N:         t.n,
		Footprint: foot,
		Lifetime:  len(t.snaps),
		Rho: func(e graph.Edge, r int) bool {
			return t.At(r).HasEdge(e.U, e.V)
		},
		Zeta: func(e graph.Edge, r int) int { return 1 },
	}
}

// StableSubgraph returns the intersection of the snapshots of rounds
// [from, from+T): the maximal subgraph present throughout the window.
// When the dynamic advertises Stability, rounds inside a stability window
// are intersected once, so the cost is O(distinct snapshots), not O(T).
func StableSubgraph(d Dynamic, from, T int) *graph.Graph {
	if T <= 0 {
		panic("tvg: StableSubgraph needs T > 0")
	}
	st, _ := d.(Stability)
	acc := d.At(from).Clone()
	r := from + 1
	for r < from+T {
		if st != nil {
			if s := st.StableUntil(r - 1); s >= r {
				// Rounds r-1..s share one snapshot, already intersected.
				if s >= from+T-1 {
					break
				}
				r = s + 1
			}
		}
		acc = graph.Intersect(acc, d.At(r))
		r++
	}
	return acc
}

// WindowConnected reports whether a stable connected spanning subgraph
// exists across rounds [from, from+T). Because the maximal stable subgraph
// of a window is the intersection of its snapshots, such a subgraph exists
// iff the intersection is connected (and spans V by construction).
func WindowConnected(d Dynamic, from, T int) bool {
	return StableSubgraph(d, from, T).Connected()
}

// IntervalConnected reports whether the dynamic graph is T-interval
// connected over rounds [0, horizon): every window of T consecutive rounds
// within the horizon contains a stable connected spanning subgraph (KLO's
// definition, checked on sliding windows).
//
// When the dynamic advertises Stability, a slid window is re-checked only
// if its content changed: sliding [from-1, from-1+T) to [from, from+T)
// drops round from-1 and gains round from+T-1, so if round from-1 equals
// round from and round from+T-2 equals round from+T-1, the window's
// snapshot set — hence its intersection — is unchanged.
func IntervalConnected(d Dynamic, T, horizon int) bool {
	if T <= 0 || horizon < T {
		panic("tvg: IntervalConnected needs 0 < T <= horizon")
	}
	st, _ := d.(Stability)
	checked := false
	for from := 0; from+T <= horizon; from++ {
		if checked && st != nil &&
			st.StableUntil(from-1) >= from &&
			st.StableUntil(from+T-2) >= from+T-1 {
			continue
		}
		if !WindowConnected(d, from, T) {
			return false
		}
		checked = true
	}
	return true
}

// AlwaysConnected reports 1-interval connectivity over [0, horizon): every
// individual snapshot is connected.
func AlwaysConnected(d Dynamic, horizon int) bool {
	return IntervalConnected(d, 1, horizon)
}

// Static wraps a single graph as an unchanging Dynamic.
type Static struct {
	G *graph.Graph
}

// N implements Dynamic.
func (s Static) N() int { return s.G.N() }

// At implements Dynamic.
func (s Static) At(r int) *graph.Graph { return s.G }

// StableUntil implements Stability: a static network never changes.
func (s Static) StableUntil(r int) int { return math.MaxInt }

var (
	_ Dynamic   = (*Trace)(nil)
	_ Dynamic   = Static{}
	_ Stability = (*Trace)(nil)
	_ Stability = Static{}
)
