package tvg

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// randomTrace builds a Trace whose windows change by a few random edge
// flips each, the shape DeltaTrace exists for.
func randomTrace(t *testing.T, n, windows, winLen int, seed uint64) *Trace {
	t.Helper()
	rng := xrand.New(seed)
	g := graph.RandomConnected(n, 2*n, rng)
	var snaps []*graph.Graph
	for w := 0; w < windows; w++ {
		if w > 0 {
			g = g.Clone()
			for i := 0; i < 3; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					if g.HasEdge(u, v) {
						g.RemoveEdge(u, v)
					} else {
						g.AddEdge(u, v)
					}
				}
			}
		}
		for r := 0; r < winLen; r++ {
			snaps = append(snaps, g)
		}
	}
	return NewTrace(snaps)
}

func TestDeltaTraceMatchesTrace(t *testing.T) {
	tr := randomTrace(t, 24, 6, 4, 1)
	dt := RecordDeltas(tr, tr.Len())

	if dt.N() != tr.N() || dt.Len() != tr.Len() {
		t.Fatalf("shape mismatch: n=%d/%d len=%d/%d", dt.N(), tr.N(), dt.Len(), tr.Len())
	}
	// Forward, backward and random access must all agree with the oracle.
	for r := 0; r < tr.Len()+5; r++ {
		if !dt.At(r).Equal(tr.At(r)) {
			t.Fatalf("round %d: snapshot mismatch (forward)", r)
		}
		if got, want := dt.StableUntil(r), tr.StableUntil(r); got != want {
			t.Fatalf("round %d: StableUntil %d, want %d", r, got, want)
		}
	}
	for r := tr.Len() - 1; r >= 0; r-- {
		if !dt.At(r).Equal(tr.At(r)) {
			t.Fatalf("round %d: snapshot mismatch (backward)", r)
		}
	}
	rng := xrand.New(9)
	for i := 0; i < 50; i++ {
		r := rng.Intn(tr.Len())
		if !dt.At(r).Equal(tr.At(r)) {
			t.Fatalf("round %d: snapshot mismatch (random)", r)
		}
	}
}

func TestDeltaTracePointerStableWithinWindow(t *testing.T) {
	tr := randomTrace(t, 16, 4, 5, 2)
	dt := RecordDeltas(tr, tr.Len())
	for r := 0; r < tr.Len(); r++ {
		a, b := dt.At(r), dt.At(r)
		if a != b {
			t.Fatalf("round %d: repeated At returned distinct pointers", r)
		}
		if s := dt.StableUntil(r); s < tr.Len() && dt.At(s) != a {
			t.Fatalf("round %d: window-end snapshot pointer differs", r)
		}
	}
}

func TestDeltaTraceStorage(t *testing.T) {
	// 50 identical-content windows with 2 flips between each: the delta
	// trace must store ~4 changes per transition, not 50 snapshots.
	tr := randomTrace(t, 40, 50, 3, 3)
	dt := RecordDeltas(tr, tr.Len())
	if w := dt.Windows(); w != 50 {
		t.Fatalf("windows = %d, want 50", w)
	}
	if ch, max := dt.Changes(), 49*6; ch > max {
		t.Fatalf("stored %d changes, want <= %d", ch, max)
	}
}

func TestDeltaTraceMergesUnchangedWindows(t *testing.T) {
	g := graph.FromEdgeList(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	h := g.Clone()
	h.AddEdge(0, 3)
	// Content-equal but pointer-distinct snapshots must merge into one
	// window, exactly as NewTrace's Equal-based index does.
	tr := NewTrace([]*graph.Graph{g, g.Clone(), g.Clone(), h, h.Clone()})
	dt := RecordDeltas(tr, tr.Len())
	if w := dt.Windows(); w != 2 {
		t.Fatalf("windows = %d, want 2", w)
	}
	if got := dt.StableUntil(0); got != 2 {
		t.Fatalf("StableUntil(0) = %d, want 2", got)
	}
	if got := dt.StableUntil(3); got != math.MaxInt {
		t.Fatalf("StableUntil(3) = %d, want MaxInt", got)
	}
}

func TestDeltaTraceSingleWindow(t *testing.T) {
	g := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}})
	dt := RecordDeltas(Static{G: g}, 7)
	if dt.Windows() != 1 || dt.StableUntil(0) != math.MaxInt {
		t.Fatalf("static dynamic: windows=%d stable=%d", dt.Windows(), dt.StableUntil(0))
	}
	if !dt.At(100).Equal(g) {
		t.Fatal("past-end round differs from the single window")
	}
}
