package tvg

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// Append's in-place stability repair and StableUntil's boundary behaviour
// carry the engine's window cache; these tests pin the edge cases: the last
// round of a window, single-snapshot traces, and the invalidation of a
// previously-infinite trailing window after an Append.

func chain(n int, extra ...graph.Edge) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	for _, e := range extra {
		g.AddEdge(e.U, e.V)
	}
	return g
}

func TestTraceAppendRepairsTrailingWindow(t *testing.T) {
	a := chain(5)
	b := chain(5, graph.Edge{U: 0, V: 4})
	tr := NewTrace([]*graph.Graph{a, a, a})
	// The whole trace is one window extending past the end.
	for r := 0; r < 3; r++ {
		if got := tr.StableUntil(r); got != math.MaxInt {
			t.Fatalf("pre-append StableUntil(%d) = %d, want MaxInt", r, got)
		}
	}

	// Appending an equal snapshot must keep the window infinite.
	tr.Append(a.Clone())
	if got := tr.StableUntil(0); got != math.MaxInt {
		t.Fatalf("append-equal: StableUntil(0) = %d, want MaxInt", got)
	}

	// Appending a different snapshot must cut the old window at the old end
	// and open a new infinite one.
	tr.Append(b)
	for r := 0; r < 4; r++ {
		if got := tr.StableUntil(r); got != 3 {
			t.Fatalf("append-diff: StableUntil(%d) = %d, want 3", r, got)
		}
	}
	if got := tr.StableUntil(4); got != math.MaxInt {
		t.Fatalf("append-diff: StableUntil(4) = %d, want MaxInt", got)
	}

	// The repair sweep must not disturb windows before the trailing one:
	// append more of b, then check the a-window is still [0, 3].
	tr.Append(b.Clone())
	if got := tr.StableUntil(2); got != 3 {
		t.Fatalf("second append: StableUntil(2) = %d, want 3", got)
	}
	if got := tr.StableUntil(4); got != math.MaxInt {
		t.Fatalf("second append: StableUntil(4) = %d, want MaxInt", got)
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
}

func TestTraceStableUntilLastRoundOfWindow(t *testing.T) {
	a := chain(4)
	b := chain(4, graph.Edge{U: 0, V: 2})
	tr := NewTrace([]*graph.Graph{a, a, b, b, a})
	// Round 1 is the LAST round of the first window: its window ends at
	// itself plus the run of equal successors — here exactly round 1.
	if got := tr.StableUntil(1); got != 1 {
		t.Fatalf("StableUntil(1) = %d, want 1", got)
	}
	if got := tr.StableUntil(3); got != 3 {
		t.Fatalf("StableUntil(3) = %d, want 3", got)
	}
	// The final round opens the infinite trailing window.
	if got := tr.StableUntil(4); got != math.MaxInt {
		t.Fatalf("StableUntil(4) = %d, want MaxInt", got)
	}
	// Past-the-end rounds repeat the final snapshot forever.
	if got := tr.StableUntil(100); got != math.MaxInt {
		t.Fatalf("StableUntil(100) = %d, want MaxInt", got)
	}
}

func TestTraceSingleSnapshot(t *testing.T) {
	a := chain(3)
	tr := NewTrace([]*graph.Graph{a})
	if got := tr.StableUntil(0); got != math.MaxInt {
		t.Fatalf("StableUntil(0) = %d, want MaxInt", got)
	}
	if tr.At(7) != a {
		t.Fatal("past-end At must repeat the single snapshot")
	}
	// Appending a different snapshot to a single-snapshot trace must
	// invalidate round 0's infinite window.
	b := chain(3, graph.Edge{U: 0, V: 2})
	tr.Append(b)
	if got := tr.StableUntil(0); got != 0 {
		t.Fatalf("post-append StableUntil(0) = %d, want 0", got)
	}
	if got := tr.StableUntil(1); got != math.MaxInt {
		t.Fatalf("post-append StableUntil(1) = %d, want MaxInt", got)
	}
}

func TestTraceAppendMatchesRebuild(t *testing.T) {
	// Incremental Append must agree with NewTrace over the full snapshot
	// list, whatever the window structure.
	a := chain(4)
	b := chain(4, graph.Edge{U: 0, V: 2})
	c := chain(4, graph.Edge{U: 1, V: 3})
	seqs := [][]*graph.Graph{
		{a, a, b, b, b, c},
		{a, b, c, a, b, c},
		{a, a, a, a},
		{a, b, b.Clone(), b},
	}
	for si, seq := range seqs {
		inc := NewTrace(seq[:1])
		for _, g := range seq[1:] {
			inc.Append(g)
		}
		full := NewTrace(seq)
		for r := 0; r < len(seq)+2; r++ {
			if inc.StableUntil(r) != full.StableUntil(r) {
				t.Fatalf("seq %d round %d: incremental %d, rebuilt %d",
					si, r, inc.StableUntil(r), full.StableUntil(r))
			}
			if inc.At(r) != full.At(r) {
				t.Fatalf("seq %d round %d: snapshots differ", si, r)
			}
		}
	}
}
