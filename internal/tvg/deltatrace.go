package tvg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// DeltaSource is the optional interface through which a generating Dynamic
// emits its window transitions natively as edge deltas, so recording a
// delta trace never has to materialise two snapshots and diff them.
type DeltaSource interface {
	Dynamic
	// WindowDelta returns the delta transforming the snapshot of round
	// prevStart into the snapshot of round start. Both rounds must be
	// stability-window starts with prevStart < start, visited in ascending
	// order (matching how recording walks the dynamic).
	WindowDelta(prevStart, start int) *graph.Delta
}

// DeltaTrace is a Dynamic backed by one base snapshot plus one edge Delta
// per stability-window transition: the O(changes) counterpart of Trace's
// snapshot list. Rounds beyond the recorded range repeat the final window,
// so a finite delta trace describes an eventually-static network, exactly
// like Trace.
//
// At materialises the requested window on a cursor via copy-on-write
// Apply/Unapply, so a transition costs O(n + |changes|) regardless of |E|,
// and total memory stays O(E + total changes) — independent of the round
// count. Within one window, repeated At calls return the identical
// *graph.Graph pointer (which Record's dedup fast path and the engine's
// stability cache rely on); rewinding and replaying yields fresh pointers.
//
// The cursor makes a DeltaTrace stateful: unlike Trace it must not be
// shared by concurrent runs. The engine itself is fine — snapshots are
// fetched by the coordinating goroutine only — but give each concurrent
// run its own DeltaTrace (or record one Trace and share that).
type DeltaTrace struct {
	n      int
	length int
	starts []int          // starts[i] is the first round of window i; starts[0] == 0
	deltas []*graph.Delta // deltas[i] transforms window i-1 into window i; deltas[0] is nil

	cur  int // cursor: window index of curG
	curG *graph.Graph
	base *graph.Graph // window 0, kept so rewinds cannot drift
}

// NewDeltaTrace assembles a delta trace from a base snapshot, the start
// round of every later window and the delta entering it. rounds is the
// recorded length; starts must be strictly increasing within (0, rounds).
func NewDeltaTrace(base *graph.Graph, starts []int, deltas []*graph.Delta, rounds int) *DeltaTrace {
	if rounds <= 0 {
		panic("tvg: DeltaTrace needs rounds > 0")
	}
	if len(starts) != len(deltas) {
		panic(fmt.Sprintf("tvg: %d window starts but %d deltas", len(starts), len(deltas)))
	}
	prev := 0
	for i, s := range starts {
		if s <= prev || s >= rounds {
			panic(fmt.Sprintf("tvg: window start %d out of order (round %d, %d recorded)", i, s, rounds))
		}
		prev = s
	}
	t := &DeltaTrace{
		n:      base.N(),
		length: rounds,
		starts: append([]int{0}, starts...),
		deltas: append([]*graph.Delta{nil}, deltas...),
		base:   base,
		curG:   base,
	}
	return t
}

// N implements Dynamic.
func (t *DeltaTrace) N() int { return t.n }

// Len returns the number of recorded rounds.
func (t *DeltaTrace) Len() int { return t.length }

// Windows returns the number of stability windows.
func (t *DeltaTrace) Windows() int { return len(t.starts) }

// Changes returns the total number of edge changes across all transitions:
// the storage the delta representation actually pays for beyond one
// snapshot.
func (t *DeltaTrace) Changes() int {
	total := 0
	for _, d := range t.deltas[1:] {
		total += d.Len()
	}
	return total
}

// windowOf returns the index of the window containing round r (already
// clamped to the recorded range).
func (t *DeltaTrace) windowOf(r int) int {
	return sort.SearchInts(t.starts, r+1) - 1
}

// seek moves the cursor to window w and returns its snapshot.
func (t *DeltaTrace) seek(w int) *graph.Graph {
	for t.cur < w {
		t.curG = t.curG.ApplyDelta(t.deltas[t.cur+1])
		t.cur++
	}
	if t.cur > w {
		// Rewinding all the way to window 0 reuses the retained base
		// snapshot directly; partial rewinds unapply transition by
		// transition.
		if w == 0 {
			t.cur, t.curG = 0, t.base
		}
		for t.cur > w {
			t.curG = t.curG.UnapplyDelta(t.deltas[t.cur])
			t.cur--
		}
	}
	return t.curG
}

// At implements Dynamic; rounds past the end repeat the last window.
func (t *DeltaTrace) At(r int) *graph.Graph {
	if r < 0 {
		panic("tvg: negative round")
	}
	if r >= t.length {
		r = t.length - 1
	}
	return t.seek(t.windowOf(r))
}

// StableUntil implements Stability: rounds of the final window (and past
// the recorded range) extend forever, earlier windows run to the round
// before the next window start.
func (t *DeltaTrace) StableUntil(r int) int {
	if r < 0 {
		panic("tvg: negative round")
	}
	if r >= t.length {
		return math.MaxInt
	}
	w := t.windowOf(r)
	if w == len(t.starts)-1 {
		return math.MaxInt
	}
	return t.starts[w+1] - 1
}

// RecordDeltas materialises rounds [0, rounds) of any Dynamic into a
// DeltaTrace: the streaming counterpart of Record. When the source
// implements DeltaSource its native transitions are consumed; otherwise
// consecutive window snapshots are diffed with graph.DeltaBetween.
// Transitions that change nothing are merged into the preceding window, so
// the window structure matches what NewTrace's Equal-based dedup would
// produce.
func RecordDeltas(d Dynamic, rounds int) *DeltaTrace {
	if rounds <= 0 {
		panic("tvg: RecordDeltas needs rounds > 0")
	}
	st, _ := d.(Stability)
	src, native := d.(DeltaSource)

	prev := d.At(0)
	base := prev.Clone()
	var starts []int
	var deltas []*graph.Delta
	prevStart := 0
	next := func(r int) int {
		if st != nil {
			if s := st.StableUntil(r); s > r {
				if s >= rounds-1 {
					return rounds // this window covers the rest
				}
				return s + 1
			}
		}
		return r + 1
	}
	for r := next(0); r < rounds; r = next(r) {
		var delta *graph.Delta
		if native {
			delta = src.WindowDelta(prevStart, r)
		} else {
			cur := d.At(r)
			delta = graph.DeltaBetween(prev, cur)
			prev = cur
		}
		if delta.Empty() {
			continue
		}
		starts = append(starts, r)
		deltas = append(deltas, delta)
		prevStart = r
	}
	return NewDeltaTrace(base, starts, deltas, rounds)
}

var (
	_ Dynamic   = (*DeltaTrace)(nil)
	_ Stability = (*DeltaTrace)(nil)
)
