package tvg

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func path(n int) *graph.Graph { return graph.Path(n) }

func TestTraceBasics(t *testing.T) {
	a := path(4)
	b := graph.Ring(4)
	tr := NewTrace([]*graph.Graph{a, b})
	if tr.N() != 4 || tr.Len() != 2 {
		t.Fatalf("n=%d len=%d", tr.N(), tr.Len())
	}
	if tr.At(0) != a || tr.At(1) != b {
		t.Fatal("At returns wrong snapshot")
	}
	// Past the end repeats the last snapshot.
	if tr.At(10) != b {
		t.Fatal("At past end should repeat last snapshot")
	}
}

func TestTraceNegativeRoundPanics(t *testing.T) {
	tr := NewTrace([]*graph.Graph{path(3)})
	defer func() {
		if recover() == nil {
			t.Fatal("At(-1) did not panic")
		}
	}()
	tr.At(-1)
}

func TestNewTraceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched vertex counts did not panic")
		}
	}()
	NewTrace([]*graph.Graph{path(3), path(4)})
}

func TestNewTraceEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty trace did not panic")
		}
	}()
	NewTrace(nil)
}

func TestAppend(t *testing.T) {
	tr := NewTrace([]*graph.Graph{path(3)})
	tr.Append(graph.Ring(3))
	if tr.Len() != 2 || tr.At(1).M() != 3 {
		t.Fatal("Append failed")
	}
}

func TestAppendWrongSizePanics(t *testing.T) {
	tr := NewTrace([]*graph.Graph{path(3)})
	defer func() {
		if recover() == nil {
			t.Fatal("Append wrong size did not panic")
		}
	}()
	tr.Append(path(4))
}

func TestStableSubgraphIsIntersection(t *testing.T) {
	// Round 0: path 0-1-2-3; round 1: same path plus chord 0-2; round 2:
	// path only again. Stable subgraph over all three rounds is the path.
	g0 := path(4)
	g1 := path(4)
	g1.AddEdge(0, 2)
	g2 := path(4)
	tr := NewTrace([]*graph.Graph{g0, g1, g2})
	st := StableSubgraph(tr, 0, 3)
	if !st.Equal(path(4)) {
		t.Fatalf("stable subgraph %v", st.Edges())
	}
	// Window of one round is the snapshot itself.
	if !StableSubgraph(tr, 1, 1).Equal(g1) {
		t.Fatal("T=1 stable subgraph wrong")
	}
}

func TestIntervalConnected(t *testing.T) {
	// A network alternating between two different spanning trees of K4 is
	// 1-interval connected but not 2-interval connected when the trees
	// share no connected spanning intersection.
	t1 := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	t2 := graph.FromEdges(4, []graph.Edge{{U: 0, V: 2}, {U: 1, V: 3}, {U: 0, V: 3}})
	tr := NewTrace([]*graph.Graph{t1, t2, t1, t2})
	if !AlwaysConnected(tr, 4) {
		t.Fatal("should be 1-interval connected")
	}
	if IntervalConnected(tr, 2, 4) {
		t.Fatal("should not be 2-interval connected")
	}
}

func TestIntervalConnectedStableBackbone(t *testing.T) {
	// All snapshots contain a common spanning tree; extra edges churn.
	rng := xrand.New(5)
	backbone := graph.RandomTree(10, rng)
	snaps := make([]*graph.Graph, 8)
	for i := range snaps {
		s := backbone.Clone()
		for j := 0; j < 5; j++ {
			s.AddEdge(rng.Intn(10), (rng.Intn(9)+1+rng.Intn(10))%10)
		}
		snaps[i] = s
	}
	tr := NewTrace(snaps)
	if !IntervalConnected(tr, 8, 8) {
		t.Fatal("trace with common spanning tree should be 8-interval connected")
	}
}

func TestIntervalConnectedArgValidation(t *testing.T) {
	tr := NewTrace([]*graph.Graph{path(3)})
	defer func() {
		if recover() == nil {
			t.Fatal("bad args did not panic")
		}
	}()
	IntervalConnected(tr, 0, 1)
}

func TestDisconnectedSnapshotFailsAlwaysConnected(t *testing.T) {
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	tr := NewTrace([]*graph.Graph{path(4), disc})
	if AlwaysConnected(tr, 2) {
		t.Fatal("trace with disconnected snapshot is not 1-interval connected")
	}
}

func TestStatic(t *testing.T) {
	s := Static{G: graph.Ring(5)}
	if s.N() != 5 || s.At(0) != s.At(99) {
		t.Fatal("Static wrong")
	}
	if !IntervalConnected(s, 50, 100) {
		t.Fatal("static connected graph should be T-interval connected for any T")
	}
}

func TestRecord(t *testing.T) {
	s := Static{G: graph.Ring(5)}
	tr := Record(s, 3)
	if tr.Len() != 3 || tr.N() != 5 {
		t.Fatalf("record len=%d n=%d", tr.Len(), tr.N())
	}
	// Recorded snapshots are deep copies.
	tr.At(0).AddEdge(0, 2)
	if s.G.HasEdge(0, 2) {
		t.Fatal("Record aliased source graph")
	}
}

func TestFromTrace(t *testing.T) {
	g0 := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	g1 := graph.FromEdges(3, []graph.Edge{{U: 1, V: 2}})
	tr := NewTrace([]*graph.Graph{g0, g1})
	v := FromTrace(tr)
	if v.N != 3 || v.Lifetime != 2 {
		t.Fatalf("N=%d lifetime=%d", v.N, v.Lifetime)
	}
	if !v.Footprint.HasEdge(0, 1) || !v.Footprint.HasEdge(1, 2) || v.Footprint.M() != 2 {
		t.Fatalf("footprint %v", v.Footprint.Edges())
	}
	e01 := graph.NormEdge(0, 1)
	if !v.Rho(e01, 0) || v.Rho(e01, 1) {
		t.Fatal("presence function wrong")
	}
	if v.Zeta(e01, 0) != 1 {
		t.Fatal("latency must be one round")
	}
}

func TestWindowConnectedSingleRound(t *testing.T) {
	tr := NewTrace([]*graph.Graph{path(4)})
	if !WindowConnected(tr, 0, 1) {
		t.Fatal("connected snapshot should pass")
	}
}

func TestStableUntil(t *testing.T) {
	a := path(4)
	b := graph.Ring(4)
	// Rounds: [a, a, b, b, a] — two stable windows then a tail that repeats
	// forever (At clamps to the last snapshot).
	tr := NewTrace([]*graph.Graph{a, a.Clone(), b, b.Clone(), a})
	want := []int{1, 1, 3, 3, math.MaxInt}
	for r, w := range want {
		if got := tr.StableUntil(r); got != w {
			t.Errorf("StableUntil(%d) = %d want %d", r, got, w)
		}
	}
	// Past the recorded range the snapshot never changes again.
	if got := tr.StableUntil(100); got != math.MaxInt {
		t.Errorf("StableUntil(100) = %d want MaxInt", got)
	}
}

func TestStableUntilNegativePanics(t *testing.T) {
	tr := NewTrace([]*graph.Graph{path(3)})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative round")
		}
	}()
	tr.StableUntil(-1)
}

func TestAppendRepairsStability(t *testing.T) {
	a := path(4)
	b := graph.Ring(4)
	tr := NewTrace([]*graph.Graph{a, b, b.Clone()})
	// The trailing window currently extends forever: [0, MaxInt, MaxInt].
	if got := tr.StableUntil(1); got != math.MaxInt {
		t.Fatalf("pre-append StableUntil(1) = %d want MaxInt", got)
	}
	// Appending a different snapshot must close rounds 1-2 at 2 and open a
	// fresh forever-window at round 3.
	tr.Append(a.Clone())
	for r, w := range []int{0, 2, 2, math.MaxInt} {
		if got := tr.StableUntil(r); got != w {
			t.Errorf("post-append StableUntil(%d) = %d want %d", r, got, w)
		}
	}
	// Appending an equal snapshot extends the trailing window.
	tr.Append(a.Clone())
	if got := tr.StableUntil(3); got != math.MaxInt {
		t.Errorf("equal append broke the trailing window: StableUntil(3) = %d", got)
	}
}

func TestStaticStableForever(t *testing.T) {
	s := Static{G: path(3)}
	if got := s.StableUntil(0); got != math.MaxInt {
		t.Fatalf("Static.StableUntil(0) = %d want MaxInt", got)
	}
}

// windowedDynamic alternates between two snapshots in 3-round stable
// windows, advertising exactly those windows through Stability.
type windowedDynamic struct {
	a, b *graph.Graph
}

func (d windowedDynamic) N() int { return d.a.N() }

func (d windowedDynamic) At(r int) *graph.Graph {
	if (r/3)%2 == 0 {
		return d.a
	}
	return d.b
}

func (d windowedDynamic) StableUntil(r int) int { return (r/3+1)*3 - 1 }

func TestRecordDedupsStableWindows(t *testing.T) {
	d := windowedDynamic{a: path(5), b: graph.Ring(5)}
	tr := Record(d, 8)

	// The satellite contract: stability windows survive recording…
	for r, want := range []int{2, 2, 2, 5, 5, 5, math.MaxInt, math.MaxInt} {
		if got := tr.StableUntil(r); got != want {
			t.Errorf("StableUntil(%d) = %d want %d", r, got, want)
		}
	}
	// …and a window stores ONE snapshot, not one clone per round.
	if tr.At(0) != tr.At(1) || tr.At(1) != tr.At(2) {
		t.Error("rounds of the first stable window do not share a snapshot")
	}
	if tr.At(3) != tr.At(4) || tr.At(4) != tr.At(5) {
		t.Error("rounds of the second stable window do not share a snapshot")
	}
	if tr.At(2) == tr.At(3) {
		t.Error("distinct windows share a snapshot")
	}
	// Recorded snapshots are still copies, not aliases of the source.
	if tr.At(0) == d.a || tr.At(3) == d.b {
		t.Error("Record aliased the source graphs")
	}
	for r := 0; r < 8; r++ {
		if !tr.At(r).Equal(d.At(r)) {
			t.Fatalf("round %d content mismatch", r)
		}
	}
}

// TestRecordPointerDedupWithoutStability checks the fallback: a source that
// hands back the same *graph.Graph for consecutive rounds without
// implementing Stability still records one shared clone per run.
func TestRecordPointerDedupWithoutStability(t *testing.T) {
	type bare struct{ windowedDynamic } // embeds At/N, hides StableUntil
	d := bare{windowedDynamic{a: path(4), b: graph.Ring(4)}}
	var dyn Dynamic = struct {
		Dynamic
	}{d}
	if _, ok := dyn.(Stability); ok {
		t.Fatal("test setup: wrapper must not advertise Stability")
	}
	tr := Record(dyn, 6)
	if tr.At(0) != tr.At(2) {
		t.Error("same-pointer rounds were cloned separately")
	}
	if tr.At(2) == tr.At(3) {
		t.Error("different-pointer rounds share a clone")
	}
	// Rounds 3-5 are the trace tail, which repeats forever.
	for r, want := range []int{2, 2, 2, math.MaxInt, math.MaxInt, math.MaxInt} {
		if got := tr.StableUntil(r); got != want {
			t.Errorf("StableUntil(%d) = %d want %d", r, got, want)
		}
	}
}
