package tvg

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestInfluenceTimesStaticPath(t *testing.T) {
	d := Static{G: graph.Path(5)}
	times := InfluenceTimes(d, 0, 0, 10)
	for v := 0; v < 5; v++ {
		if times[v] != v {
			t.Fatalf("times[%d]=%d", v, times[v])
		}
	}
}

func TestInfluenceTimesHorizonCutoff(t *testing.T) {
	d := Static{G: graph.Path(5)}
	times := InfluenceTimes(d, 0, 0, 2)
	if times[2] != 2 || times[3] != Inf || times[4] != Inf {
		t.Fatalf("times %v", times)
	}
}

func TestInfluenceTimesDisconnected(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	d := Static{G: g}
	times := InfluenceTimes(d, 0, 0, 10)
	if times[1] != 1 || times[2] != Inf {
		t.Fatalf("times %v", times)
	}
}

func TestInfluenceThroughChangingEdges(t *testing.T) {
	// Round 0 has edge 0-1 only; round 1 has edge 1-2 only. Influence
	// from 0 reaches 2 in exactly 2 rounds even though no single snapshot
	// connects them.
	g0 := graph.New(3)
	g0.AddEdge(0, 1)
	g1 := graph.New(3)
	g1.AddEdge(1, 2)
	tr := NewTrace([]*graph.Graph{g0, g1})
	times := InfluenceTimes(tr, 0, 0, 5)
	if times[1] != 1 || times[2] != 2 {
		t.Fatalf("times %v", times)
	}
	// Starting at round 1, node 0 can never reach 2 (edge 0-1 is gone and
	// the trace repeats g1 forever).
	times = InfluenceTimes(tr, 0, 1, 5)
	if times[1] != Inf || times[2] != Inf {
		t.Fatalf("from round 1: times %v", times)
	}
}

func TestFloodTime(t *testing.T) {
	d := Static{G: graph.Path(4)}
	if got := FloodTime(d, 0, 0, 10); got != 3 {
		t.Fatalf("FloodTime=%d", got)
	}
	if got := FloodTime(d, 1, 0, 10); got != 2 {
		t.Fatalf("FloodTime from middle=%d", got)
	}
	if got := FloodTime(d, 0, 0, 2); got != Inf {
		t.Fatalf("FloodTime with small budget=%d", got)
	}
}

func TestDynamicDiameterStatic(t *testing.T) {
	// Static connected graph: dynamic diameter equals the graph diameter.
	d := Static{G: graph.Path(6)}
	if got := DynamicDiameter(d, 3, 10); got != 5 {
		t.Fatalf("DynamicDiameter=%d", got)
	}
}

func TestDynamicDiameterOneIntervalBound(t *testing.T) {
	// Any 1-interval connected network has dynamic diameter <= n-1.
	rng := xrand.New(3)
	snaps := make([]*graph.Graph, 12)
	for i := range snaps {
		snaps[i] = graph.RandomTree(8, rng)
	}
	tr := NewTrace(snaps)
	got := DynamicDiameter(tr, 4, 7)
	if got == Inf || got > 7 {
		t.Fatalf("DynamicDiameter=%d exceeds n-1", got)
	}
}

func TestDynamicDiameterInf(t *testing.T) {
	g := graph.New(3) // empty forever
	if got := DynamicDiameter(Static{G: g}, 1, 5); got != Inf {
		t.Fatalf("DynamicDiameter of empty graph = %d", got)
	}
}

func TestDynamicDiameterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DynamicDiameter(Static{G: graph.Path(2)}, 0, 5)
}

func BenchmarkDynamicDiameter(b *testing.B) {
	rng := xrand.New(1)
	snaps := make([]*graph.Graph, 30)
	for i := range snaps {
		snaps[i] = graph.RandomConnected(40, 60, rng)
	}
	tr := NewTrace(snaps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DynamicDiameter(tr, 5, 39)
	}
}
