package tvg

import "repro/internal/graph"

// Inf is the influence/flood time reported for unreachable pairs; it
// aliases graph.Inf.
const Inf = graph.Inf

// This file implements causal influence and the dynamic diameter of Kuhn &
// Oshman ("Dynamic Networks: Models and Algorithms", SIGACT News 2011), the
// other flat dynamics notion the paper's related-work section surveys.
//
// Node u causally influences node v by round t (written (u, 0) -> (v, t))
// if information present at u in round 0 can have reached v by round t via
// a chain of adjacent-in-their-round edges. The dynamic diameter is the
// smallest t such that within any window of t rounds every node causally
// influences every other.

// InfluenceTimes returns, for a flood started at src at the beginning of
// round `from`, the first round count after which each node is causally
// influenced: out[v] = smallest d such that (src, from) -> (v, from+d).
// out[src] = 0; unreachable nodes (within horizon rounds) get Inf.
//
// When the dynamic advertises Stability, all rounds of one stability
// window run as a single depth-bounded BFS on the window's snapshot, so
// the cost is O(windows · m), not O(rounds · m) — the difference between
// auditing a 100k-node trace and not.
func InfluenceTimes(d Dynamic, src, from, horizon int) []int {
	n := d.N()
	out := make([]int, n)
	for v := range out {
		out[v] = Inf
	}
	out[src] = 0
	reached := make([]bool, n)
	reached[src] = true
	reachedList := []int{src}
	count := 1
	st, _ := d.(Stability)
	for step := 0; step < horizon && count < n; {
		g := d.At(from + step)
		// budget = number of consecutive rounds sharing this snapshot.
		budget := 1
		if st != nil {
			if s := st.StableUntil(from + step); s > from+step {
				e := s - from
				if e > horizon-1 {
					e = horizon - 1
				}
				budget = e - step + 1
			}
		}
		// One BFS level per round: round step+b reaches every unreached
		// neighbor of what round step+b-1 reached. The first level expands
		// from ALL reached nodes (the graph just changed); deeper levels
		// expand only from the previous level, as in a standard BFS.
		level := reachedList
		for b := 1; b <= budget && len(level) > 0 && count < n; b++ {
			var next []int
			for _, u := range level {
				for _, w := range g.Neighbors(u) {
					if !reached[w] {
						reached[w] = true
						out[w] = step + b
						next = append(next, w)
						count++
					}
				}
			}
			reachedList = append(reachedList, next...)
			level = next
		}
		step += budget
	}
	return out
}

// FloodTime returns the number of rounds a flood starting at src in round
// `from` needs to reach all nodes, or Inf if it does not finish within
// horizon rounds.
func FloodTime(d Dynamic, src, from, horizon int) int {
	times := InfluenceTimes(d, src, from, horizon)
	worst := 0
	for _, t := range times {
		if t == Inf {
			return Inf
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// DynamicDiameter returns the dynamic diameter over start rounds
// [0, starts): the maximum over those start rounds r and all sources u of
// the flood time from (u, r), where each flood gets a budget of `limit`
// rounds. It returns Inf if some flood cannot finish within its budget.
//
// This is O(starts · n · limit · m) and intended for analysis of recorded
// traces, not inner loops.
func DynamicDiameter(d Dynamic, starts, limit int) int {
	if starts <= 0 || limit <= 0 {
		panic("tvg: DynamicDiameter needs starts > 0 and limit > 0")
	}
	n := d.N()
	diam := 0
	for r := 0; r < starts; r++ {
		for u := 0; u < n; u++ {
			t := FloodTime(d, u, r, limit)
			if t == Inf {
				return Inf
			}
			if t > diam {
				diam = t
			}
		}
	}
	return diam
}
