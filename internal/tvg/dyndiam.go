package tvg

import "repro/internal/graph"

// Inf is the influence/flood time reported for unreachable pairs; it
// aliases graph.Inf.
const Inf = graph.Inf

// This file implements causal influence and the dynamic diameter of Kuhn &
// Oshman ("Dynamic Networks: Models and Algorithms", SIGACT News 2011), the
// other flat dynamics notion the paper's related-work section surveys.
//
// Node u causally influences node v by round t (written (u, 0) -> (v, t))
// if information present at u in round 0 can have reached v by round t via
// a chain of adjacent-in-their-round edges. The dynamic diameter is the
// smallest t such that within any window of t rounds every node causally
// influences every other.

// InfluenceTimes returns, for a flood started at src at the beginning of
// round `from`, the first round count after which each node is causally
// influenced: out[v] = smallest d such that (src, from) -> (v, from+d).
// out[src] = 0; unreachable nodes (within horizon rounds) get Inf.
func InfluenceTimes(d Dynamic, src, from, horizon int) []int {
	n := d.N()
	out := make([]int, n)
	for v := range out {
		out[v] = Inf
	}
	out[src] = 0
	reached := make([]bool, n)
	reached[src] = true
	frontier := 1
	for step := 0; step < horizon && frontier < n; step++ {
		g := d.At(from + step)
		// One synchronous round: everything reached so far spreads one
		// hop along this round's edges.
		var newly []int
		for v := 0; v < n; v++ {
			if reached[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if reached[u] {
					newly = append(newly, v)
					break
				}
			}
		}
		for _, v := range newly {
			reached[v] = true
			out[v] = step + 1
			frontier++
		}
	}
	return out
}

// FloodTime returns the number of rounds a flood starting at src in round
// `from` needs to reach all nodes, or Inf if it does not finish within
// horizon rounds.
func FloodTime(d Dynamic, src, from, horizon int) int {
	times := InfluenceTimes(d, src, from, horizon)
	worst := 0
	for _, t := range times {
		if t == Inf {
			return Inf
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// DynamicDiameter returns the dynamic diameter over start rounds
// [0, starts): the maximum over those start rounds r and all sources u of
// the flood time from (u, r), where each flood gets a budget of `limit`
// rounds. It returns Inf if some flood cannot finish within its budget.
//
// This is O(starts · n · limit · m) and intended for analysis of recorded
// traces, not inner loops.
func DynamicDiameter(d Dynamic, starts, limit int) int {
	if starts <= 0 || limit <= 0 {
		panic("tvg: DynamicDiameter needs starts > 0 and limit > 0")
	}
	n := d.N()
	diam := 0
	for r := 0; r < starts; r++ {
		for u := 0; u < n; u++ {
			t := FloodTime(d, u, r, limit)
			if t == Inf {
				return Inf
			}
			if t > diam {
				diam = t
			}
		}
	}
	return diam
}
