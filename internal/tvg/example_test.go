package tvg_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tvg"
)

// Example shows causal influence across a network that is never connected
// in any single round but mixes over time: the edge 0-1 exists only in
// round 0, the edge 1-2 only in round 1, yet node 0 influences node 2
// within two rounds.
func Example() {
	g0 := graph.New(3)
	g0.AddEdge(0, 1)
	g1 := graph.New(3)
	g1.AddEdge(1, 2)
	tr := tvg.NewTrace([]*graph.Graph{g0, g1})

	times := tvg.InfluenceTimes(tr, 0, 0, 5)
	fmt.Println("influence times from node 0:", times)
	fmt.Println("1-interval connected:", tvg.AlwaysConnected(tr, 2))
	// Output:
	// influence times from node 0: [0 1 2]
	// 1-interval connected: false
}

// ExampleIntervalConnected checks the Kuhn–Lynch–Oshman T-interval
// property: a static connected graph satisfies it for every T.
func ExampleIntervalConnected() {
	s := tvg.Static{G: graph.Ring(5)}
	fmt.Println(tvg.IntervalConnected(s, 10, 20))
	// Output: true
}
