package sim_test

// The stability-window cache must be a pure optimisation: under any mix of
// reaffiliations, head churn and mid-window crashes, a cached run and a
// NoStabilityCache run — serial or parallel — must produce identical Metrics
// and byte-identical JSONL observer streams. This file is the adversarial
// check behind that promise (it lives in sim_test because the obs collector
// imports sim).

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// runCollected executes Algorithm 1 on d with a JSONL collector attached and
// returns the metrics plus the raw event stream.
func runCollected(t *testing.T, d ctvg.Dynamic, assign *token.Assignment, T, rounds, workers int, noCache bool, crashAt map[int]int) (*sim.Metrics, []byte) {
	t.Helper()
	var sink bytes.Buffer
	col := obs.NewCollector(obs.Config{
		N: d.N(), K: assign.K, PhaseLen: T, Sink: &sink, SizeFn: wire.Size,
	})
	opts := sim.Options{
		MaxRounds:        rounds,
		Observer:         col.Observer(),
		SizeFn:           wire.Size,
		Workers:          workers,
		NoStabilityCache: noCache,
	}
	if crashAt != nil {
		opts.Faults = &sim.Faults{CrashAt: crashAt}
	}
	met := sim.MustRunProtocol(d, core.Alg1{T: T}, assign, opts)
	if err := col.Flush(); err != nil {
		t.Fatalf("collector: %v", err)
	}
	return met, sink.Bytes()
}

func TestStabilityCacheEquivalence(t *testing.T) {
	const n, k, alpha, L = 80, 8, 2, 2
	theta := 12
	T := core.Theorem1T(k, alpha, L)
	rounds := core.Theorem1Phases(theta, alpha) * T

	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: T,
		Reaffiliations: 6, HeadChurn: 2, // churn-heavy: every boundary moves nodes and replaces heads
	}, xrand.New(1))
	trace := ctvg.Record(adv, rounds)
	if s := trace.StableUntil(0); s <= 0 {
		t.Fatalf("trace advertises no stable window (StableUntil(0)=%d); the cache would never engage", s)
	}
	assign := token.Spread(n, k, xrand.New(2))

	// Crashes land strictly inside stability windows, so the crashed-node
	// bookkeeping must work against frozen views.
	crashAt := map[int]int{5: 3, 33: T + 3, 61: 2*T + 7}

	dynamics := []struct {
		name string
		d    ctvg.Dynamic
	}{
		{"recorded-trace", trace}, // ctvg.Trace.StableUntil (precomputed windows)
		{"live-hinet", adv},       // adversary.HiNet.StableUntil (phase arithmetic)
	}
	for _, dyn := range dynamics {
		t.Run(dyn.name, func(t *testing.T) {
			refMet, refJSON := runCollected(t, dyn.d, assign, T, rounds, 1, false, crashAt)
			if len(refJSON) == 0 {
				t.Fatal("reference run produced no events")
			}
			for _, tc := range []struct {
				name    string
				workers int
				noCache bool
			}{
				{"serial-uncached", 1, true},
				{"parallel-cached", 4, false},
				{"parallel-uncached", 4, true},
			} {
				met, jsonl := runCollected(t, dyn.d, assign, T, rounds, tc.workers, tc.noCache, crashAt)
				if !reflect.DeepEqual(met, refMet) {
					t.Errorf("%s: metrics diverge:\n  got  %+v\n  want %+v", tc.name, met, refMet)
				}
				if !bytes.Equal(jsonl, refJSON) {
					t.Errorf("%s: JSONL stream diverges from serial cached run (%d vs %d bytes)",
						tc.name, len(jsonl), len(refJSON))
				}
			}
		})
	}
}
