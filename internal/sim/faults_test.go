package sim

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/token"
	"repro/internal/tvg"
)

func TestDropProbOneBlocksEverything(t *testing.T) {
	d := staticPath(4)
	assign := token.SingleSource(4, 1, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{
		MaxRounds: 20,
		Faults:    &Faults{DropProb: 1, Seed: 1},
	})
	if m.Complete {
		t.Fatal("completed with 100% loss")
	}
	// Cost is still charged: senders transmitted.
	if m.Messages == 0 {
		t.Fatal("no messages charged under loss")
	}
}

func TestModerateLossFloodStillCompletes(t *testing.T) {
	// Full-set flooding retransmits every round, so 30% loss only slows
	// it down.
	d := staticPath(6)
	assign := token.SingleSource(6, 2, 0)
	for seed := uint64(0); seed < 5; seed++ {
		m := MustRunProtocol(d, floodProto{}, assign, Options{
			MaxRounds:        200,
			StopWhenComplete: true,
			Faults:           &Faults{DropProb: 0.3, Seed: seed},
		})
		if !m.Complete {
			t.Fatalf("seed %d: flood incomplete under 30%% loss: %v", seed, m)
		}
		if m.CompletionRound < 5 {
			t.Fatalf("seed %d: completion %d faster than lossless diameter", seed, m.CompletionRound)
		}
	}
}

func TestLossIsPerReceiver(t *testing.T) {
	// Star: center broadcasts to 3 leaves; with 50% loss some leaves may
	// get it while others don't in the same round.
	g := graph.Star(4, 0)
	d := NewFlat(tvg.Static{G: g})
	assign := token.SingleSource(4, 1, 0)
	sawPartial := false
	for seed := uint64(0); seed < 30 && !sawPartial; seed++ {
		nodes := floodProto{}.Nodes(assign)
		MustRun(d, nodes, assign, Options{
			MaxRounds: 1,
			Faults:    &Faults{DropProb: 0.5, Seed: seed},
		})
		got := 0
		for v := 1; v < 4; v++ {
			if nodes[v].Tokens().Contains(0) {
				got++
			}
		}
		if got > 0 && got < 3 {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("per-receiver loss never produced a partial delivery in 30 seeds")
	}
}

func TestCrashExcludedFromCompletion(t *testing.T) {
	// Node 3 (the far end of the path) crashes at round 0; the rest must
	// still complete and the run counts as complete.
	d := staticPath(4)
	assign := token.SingleSource(4, 1, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{
		MaxRounds:        20,
		StopWhenComplete: true,
		Faults:           &Faults{CrashAt: map[int]int{3: 0}, Seed: 1},
	})
	if !m.Complete {
		t.Fatalf("live nodes did not complete: %v", m)
	}
}

func TestCrashedNodeStopsTransmitting(t *testing.T) {
	d := staticPath(3)
	assign := token.SingleSource(3, 1, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{
		MaxRounds: 4,
		Faults:    &Faults{CrashAt: map[int]int{1: 2}, Seed: 1},
	})
	// Rounds 0-1: 3 senders; rounds 2-3: 2 senders => 6+4 = 10 messages.
	if m.Messages != 10 {
		t.Fatalf("messages %d, want 10", m.Messages)
	}
}

func TestCrashPartitionsPath(t *testing.T) {
	// Crashing the middle of a path before the token crosses it strands
	// the far side: the run must NOT complete (node 2 is live but
	// unreachable).
	d := staticPath(3)
	assign := token.SingleSource(3, 1, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{
		MaxRounds: 30,
		Faults:    &Faults{CrashAt: map[int]int{1: 0}, Seed: 1},
	})
	if m.Complete {
		t.Fatal("completed across a crashed relay")
	}
}

func TestCrashedNodeDoesNotReceive(t *testing.T) {
	// Node 1 crashes at round 1; the token reaches it in round 1's
	// delivery phase only if it were alive. It must stay empty.
	d := staticPath(2)
	assign := token.SingleSource(2, 1, 0)
	nodes := floodProto{}.Nodes(assign)
	MustRun(d, nodes, assign, Options{
		MaxRounds: 5,
		Faults:    &Faults{CrashAt: map[int]int{1: 0}, Seed: 1},
	})
	if nodes[1].Tokens().Contains(0) {
		t.Fatal("crashed node received a token")
	}
}

func TestFaultsDeterministic(t *testing.T) {
	d := staticPath(6)
	assign := token.SingleSource(6, 2, 0)
	run := func() *Metrics {
		return MustRunProtocol(d, floodProto{}, assign, Options{
			MaxRounds:        100,
			StopWhenComplete: true,
			Faults:           &Faults{DropProb: 0.4, Seed: 9},
		})
	}
	a, b := run(), run()
	if a.CompletionRound != b.CompletionRound || a.TokensSent != b.TokensSent {
		t.Fatalf("fault injection nondeterministic: %v vs %v", a, b)
	}
}

func TestStallWatchdogAllNodesCrashed(t *testing.T) {
	// Crashing the entire population leaves zero live nodes, so the run can
	// never complete; the watchdog must cut it short with a diagnostic
	// instead of burning MaxRounds.
	d := staticPath(4)
	assign := token.SingleSource(4, 2, 0)
	var stalledAt = -1
	m := MustRunProtocol(d, floodProto{}, assign, Options{
		MaxRounds:   500,
		StallWindow: 6,
		Observer:    &Observer{Stalled: func(r int, rep *StallReport) { stalledAt = r }},
		Faults:      &Faults{CrashAt: map[int]int{0: 1, 1: 1, 2: 1, 3: 1}},
	})
	if m.Complete {
		t.Fatalf("completed with every node crashed: %v", m)
	}
	if m.Stall == nil {
		t.Fatalf("watchdog did not fire: %v", m)
	}
	if m.Rounds >= 500 {
		t.Fatalf("watchdog fired but the run still used all %d rounds", m.Rounds)
	}
	if m.Stall.Live != 0 || m.Stall.Down != 4 || m.Stall.PendingRecovery != 0 {
		t.Fatalf("diagnostic miscounts the population: %+v", m.Stall)
	}
	if m.Stall.Window != 6 || stalledAt != m.Stall.Round {
		t.Fatalf("observer/report disagree: event at %d, report %+v", stalledAt, m.Stall)
	}
	if s := m.Stall.String(); !strings.Contains(s, "no progress for 6 rounds") || !strings.Contains(s, "4 down") {
		t.Fatalf("diagnostic string unhelpful: %q", s)
	}
	if s := m.String(); !strings.Contains(s, "stalled@") {
		t.Fatalf("metrics summary hides the stall: %q", s)
	}
}

func TestStallWatchdogSilentWhileProgressing(t *testing.T) {
	// A slow but progressing run (heavy loss) must not trip a generous
	// watchdog, and a completed run must never carry a stall report.
	d := staticPath(6)
	assign := token.SingleSource(6, 2, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{
		MaxRounds:        300,
		StopWhenComplete: true,
		StallWindow:      100,
		Faults:           &Faults{DropProb: 0.3, Seed: 2},
	})
	if !m.Complete || m.Stall != nil {
		t.Fatalf("watchdog interfered with a completing run: %v", m)
	}
}

func TestNilFaultsIsNoop(t *testing.T) {
	d := staticPath(4)
	assign := token.SingleSource(4, 1, 0)
	a := MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 10})
	b := MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 10, Faults: &Faults{}})
	if a.TokensSent != b.TokensSent || a.CompletionRound != b.CompletionRound {
		t.Fatal("empty Faults changed behaviour")
	}
}
