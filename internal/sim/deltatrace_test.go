package sim_test

// Delta traces must be a pure storage optimisation: running any protocol
// over a ctvg.DeltaTrace (O(changes) storage, copy-on-write materialising
// cursor) must produce identical Metrics and byte-identical observer AND
// provenance JSONL streams as the same run over the snapshot ctvg.Trace it
// was recorded from — serial and on 4 workers. This is the conformance
// oracle for the delta-streamed dynamics pipeline; it rides `make race` so
// the stateful cursor is also proven safe under the engine's worker
// parallelism (snapshots are fetched by the coordinating goroutine only).

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

func TestDeltaTraceMatchesSnapshots(t *testing.T) {
	const n, k, alpha, L = 80, 8, 2, 2
	theta := 12
	T := core.Theorem1T(k, alpha, L)
	rounds := core.Theorem1Phases(theta, alpha) * T

	cfg := adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: T,
		Reaffiliations: 6, HeadChurn: 2,
	}
	// Same seed, two independent adversaries: one recorded as snapshots
	// (the oracle), one streamed into a delta trace.
	snapTrace := ctvg.Record(adversary.NewHiNet(cfg, xrand.New(1)), rounds)
	deltaTrace := ctvg.RecordDeltas(adversary.NewHiNet(cfg, xrand.New(1)), rounds)
	assign := token.Spread(n, k, xrand.New(2))
	crashAt := map[int]int{5: 3, 33: T + 3, 61: 2*T + 7}

	scenarios := []struct {
		name    string
		proto   sim.Protocol
		crashAt map[int]int
	}{
		{"alg1", core.Alg1{T: T}, nil},
		{"alg2", core.Alg2{}, nil},
		// Crashes exercise failover (acting heads, floods, NACK re-uploads),
		// the densest source of observer and provenance events.
		{"alg1-failover", core.Alg1{T: T, Failover: &core.Failover{Window: 2}}, crashAt},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			refMet, refObs, refProv := runDelta(t, snapTrace, sc.proto, assign, T, rounds, 1, false, sc.crashAt)
			if len(refObs) == 0 || len(refProv) == 0 {
				t.Fatal("snapshot oracle run produced empty streams")
			}
			for _, tc := range []struct {
				name    string
				workers int
			}{
				{"delta-serial", 1},
				{"delta-parallel", 4},
			} {
				met, obsJSON, provJSON := runDelta(t, deltaTrace, sc.proto, assign, T, rounds, tc.workers, false, sc.crashAt)
				if !reflect.DeepEqual(met, refMet) {
					t.Errorf("%s: metrics diverge:\n  got  %+v\n  want %+v", tc.name, met, refMet)
				}
				if !bytes.Equal(obsJSON, refObs) {
					t.Errorf("%s: observer JSONL diverges from snapshot oracle (%d vs %d bytes)",
						tc.name, len(obsJSON), len(refObs))
				}
				if !bytes.Equal(provJSON, refProv) {
					t.Errorf("%s: provenance JSONL diverges from snapshot oracle (%d vs %d bytes)",
						tc.name, len(provJSON), len(refProv))
				}
			}
		})
	}
}
