// Package sim implements the synchronous round-based execution model shared
// by every dissemination protocol in this repository.
//
// The model follows Kuhn–Lynch–Oshman: computation proceeds in rounds; in
// round r an oblivious adversary fixes the communication graph G_r before
// seeing any payload, every node hands the engine at most one message, and
// each message is delivered to all of the sender's G_r-neighbours at the end
// of the round (wireless local broadcast). Addressed messages are still
// heard by every neighbour — addressing is a protocol-level filter, not a
// transport feature — which matches the paper's ad hoc radio model.
//
// Communication cost is counted in token units, exactly as the paper's
// analysis does ("communication cost is represented by the total number of
// tokens sent"): a transmission carrying s tokens costs s. Raw message
// counts and per-role breakdowns are tracked as well.
package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// NoAddr marks a broadcast message with no addressed recipient.
const NoAddr = -1

// MsgKind labels the protocol step that produced a message; it is used for
// per-step accounting and for the Fig. 3 execution traces.
type MsgKind byte

const (
	// KindBroadcast is a plain flooding broadcast (flat protocols).
	KindBroadcast MsgKind = iota
	// KindUpload is a member-to-head token upload.
	KindUpload
	// KindRelay is a head/gateway broadcast down and across the hierarchy.
	KindRelay
	// KindCoded is a network-coded packet (random linear combination);
	// its Tokens field holds the GF(2) coefficient vector, not a token
	// set, and its cost comes from Units.
	KindCoded
)

// numKinds sizes the per-kind accounting arrays.
const numKinds = 4

// String returns a short human-readable kind name.
func (k MsgKind) String() string {
	switch k {
	case KindBroadcast:
		return "broadcast"
	case KindUpload:
		return "upload"
	case KindRelay:
		return "relay"
	case KindCoded:
		return "coded"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Message is one transmission. From is filled in by the engine.
type Message struct {
	From   int
	To     int // NoAddr for broadcast; otherwise the intended recipient
	Kind   MsgKind
	Tokens *bitset.Set
	// Units, when positive, overrides the cost accounting: the message is
	// charged Units token-equivalents instead of the payload cardinality.
	// Network-coded packets use it (one token-sized payload regardless of
	// how many coefficients the combination involves).
	Units int
}

// Cost returns the message's size in token units.
func (m *Message) Cost() int {
	if m.Units > 0 {
		return m.Units
	}
	if m.Tokens == nil {
		return 0
	}
	return m.Tokens.Len()
}

// View is what a node observes about itself at the start of a round: the
// round number, its current cluster role and head (provided by the
// clustering layer), and its current neighbour list — the paper's system
// model equips every node with "the capability of probing neighbors".
// Nodes do not see the global topology.
type View struct {
	Round int
	Role  ctvg.Role
	Head  int // current cluster head node ID, or ctvg.NoCluster
	// Neighbors is the node's current neighbour list, ascending. It
	// aliases engine storage and must not be modified or retained.
	Neighbors []int
}

// Node is a per-node protocol state machine.
type Node interface {
	// Send returns the node's transmission for this round, or nil.
	Send(v View) *Message
	// Deliver hands the node every message heard this round (from its
	// current neighbours), ordered by ascending sender ID.
	Deliver(v View, msgs []*Message)
	// Tokens returns the node's collected token set (the paper's TA).
	// The engine treats the result as read-only.
	Tokens() *bitset.Set
}

// Protocol builds fresh per-node state machines for a run.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Nodes returns one state machine per node, initialised from the
	// assignment. Implementations must copy the initial sets.
	Nodes(assign *token.Assignment) []Node
}

// Metrics aggregates the accounting of one run.
type Metrics struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Messages is the number of transmissions.
	Messages int64
	// TokensSent is the total communication cost in token units.
	TokensSent int64
	// MessagesByKind / TokensByKind break the totals down per message kind.
	MessagesByKind [numKinds]int64
	TokensByKind   [numKinds]int64
	// MessagesByRole / TokensByRole break the totals down by the sender's
	// cluster role at transmission time (indexed by ctvg.Role) — the
	// energy-budget view of the paper's motivation: who pays.
	MessagesByRole [4]int64
	TokensByRole   [4]int64
	// BytesSent is the wire-level cost; it is accumulated only when
	// Options.SizeFn is set (see internal/wire for the standard codec).
	BytesSent int64
	// CompletionRound is the 1-based round count after which every node
	// held all k tokens, or -1 if dissemination did not complete within
	// the executed rounds.
	CompletionRound int
	// Complete reports whether dissemination finished.
	Complete bool
}

// String summarises the metrics on one line.
func (m *Metrics) String() string {
	done := "incomplete"
	if m.Complete {
		done = fmt.Sprintf("complete@%d", m.CompletionRound)
	}
	return fmt.Sprintf("rounds=%d msgs=%d tokens=%d %s", m.Rounds, m.Messages, m.TokensSent, done)
}

// Observer receives per-round events; used by trace tooling and the Fig. 3
// scenario renderer. Either field may be nil.
type Observer struct {
	// RoundStart is called before messages are collected.
	RoundStart func(r int, g *graph.Graph, h *ctvg.Hierarchy)
	// Sent is called for every non-nil message of round r.
	Sent func(r int, msg *Message)
	// Progress, if set, is called after each round's deliveries with the
	// total number of (node, token) pairs delivered so far — the raw
	// material for convergence curves. The maximum is n·k.
	Progress func(r int, delivered int)
}

// Faults injects failures for robustness experiments. The paper assumes
// reliable links and live nodes; these knobs measure how far each protocol
// degrades beyond that assumption.
type Faults struct {
	// DropProb is the probability that any single (message, receiver)
	// delivery is lost, independently per receiver (radio fading).
	// Transmission cost is still charged — the sender paid for it.
	DropProb float64
	// CrashAt maps node -> round index at which the node crashes: from
	// that round on it neither sends nor receives. Crashed nodes are
	// excluded from the completion predicate (a crashed node can never
	// collect anything).
	CrashAt map[int]int
	// Seed drives the fault randomness (deterministic like everything
	// else).
	Seed uint64
}

func (f *Faults) active() bool {
	return f != nil && (f.DropProb > 0 || len(f.CrashAt) > 0)
}

// Options controls a run.
type Options struct {
	// MaxRounds bounds the execution (required, > 0).
	MaxRounds int
	// StopWhenComplete ends the run as soon as every node holds all k
	// tokens (checked at the end of each round).
	StopWhenComplete bool
	// Observer, if non-nil, receives per-round events.
	Observer *Observer
	// Faults, if non-nil, injects message loss and node crashes.
	Faults *Faults
	// SizeFn, if set, is evaluated on every transmission and accumulated
	// into Metrics.BytesSent (byte-level cost accounting).
	SizeFn func(*Message) int
	// Workers enables within-round parallelism: Send and Deliver of
	// distinct nodes run concurrently on up to Workers goroutines
	// (0 or 1 = serial). Node state is per-node and messages are treated
	// as read-only after Send, so results are bit-identical to the serial
	// engine. Requires Observer to be nil (observers see events in round
	// order, which parallel collection cannot promise).
	Workers int
}

// Run executes nodes against the dynamic network d for up to
// opts.MaxRounds rounds and returns the metrics. The assignment supplies k
// for the completion check. Nodes must already be initialised (see
// Protocol.Nodes).
func Run(d ctvg.Dynamic, nodes []Node, assign *token.Assignment, opts Options) *Metrics {
	n := d.N()
	if len(nodes) != n {
		panic(fmt.Sprintf("sim: %d nodes for a %d-vertex network", len(nodes), n))
	}
	if opts.MaxRounds <= 0 {
		panic("sim: MaxRounds must be positive")
	}
	parallelRun := opts.Workers > 1
	if parallelRun && opts.Observer != nil {
		panic("sim: Workers > 1 cannot be combined with an Observer")
	}
	if parallelRun && opts.Faults != nil && opts.Faults.DropProb > 0 {
		panic("sim: Workers > 1 cannot be combined with probabilistic message loss")
	}
	k := assign.K
	met := &Metrics{CompletionRound: -1}
	outbox := make([]*Message, n)
	views := make([]View, n)
	inbox := make([]*Message, 0, 16)

	var faultRng *xrand.Rand
	crashed := make([]bool, n)
	if opts.Faults.active() {
		faultRng = xrand.New(opts.Faults.Seed)
	}

	for r := 0; r < opts.MaxRounds; r++ {
		if opts.Faults != nil {
			for v, at := range opts.Faults.CrashAt {
				if r >= at && v >= 0 && v < n {
					crashed[v] = true
				}
			}
		}
		g := d.At(r)
		hier := d.HierarchyAt(r)
		if obs := opts.Observer; obs != nil && obs.RoundStart != nil {
			obs.RoundStart(r, g, hier)
		}

		// Collect phase: every node decides its transmission from its
		// local view only. Nodes are independent, so this fans out when
		// Workers > 1; the accounting pass below stays serial either way
		// so metrics accumulate in deterministic order.
		collect := func(v int) {
			views[v] = View{Round: r, Role: hier.Role[v], Head: hier.HeadOf(v), Neighbors: g.Neighbors(v)}
			if crashed[v] {
				outbox[v] = nil
				return
			}
			outbox[v] = nodes[v].Send(views[v])
		}
		if parallelRun {
			parallel.ForEachBlock(n, opts.Workers, collect)
		} else {
			for v := 0; v < n; v++ {
				collect(v)
			}
		}
		for v := 0; v < n; v++ {
			msg := outbox[v]
			if msg == nil {
				continue
			}
			msg.From = v
			cost := int64(msg.Cost())
			met.Messages++
			met.TokensSent += cost
			if int(msg.Kind) < len(met.MessagesByKind) {
				met.MessagesByKind[msg.Kind]++
				met.TokensByKind[msg.Kind] += cost
			}
			if opts.SizeFn != nil {
				met.BytesSent += int64(opts.SizeFn(msg))
			}
			if role := hier.Role[v]; int(role) < len(met.MessagesByRole) {
				met.MessagesByRole[role]++
				met.TokensByRole[role] += cost
			}
			if obs := opts.Observer; obs != nil && obs.Sent != nil {
				obs.Sent(r, msg)
			}
		}

		// Deliver phase: each node hears its neighbours' messages,
		// ordered by ascending sender ID (Neighbors is sorted). Messages
		// are read-only from here on, so delivery also fans out.
		if parallelRun {
			parallel.ForEachRange(n, opts.Workers, func(lo, hi int) {
				pinbox := make([]*Message, 0, 16)
				for v := lo; v < hi; v++ {
					if crashed[v] {
						continue
					}
					pinbox = pinbox[:0]
					for _, u := range g.Neighbors(v) {
						if outbox[u] != nil {
							pinbox = append(pinbox, outbox[u])
						}
					}
					nodes[v].Deliver(views[v], pinbox)
				}
			})
		} else {
			for v := 0; v < n; v++ {
				if crashed[v] {
					continue
				}
				inbox = inbox[:0]
				for _, u := range g.Neighbors(v) {
					if outbox[u] == nil {
						continue
					}
					if faultRng != nil && opts.Faults.DropProb > 0 && faultRng.Prob(opts.Faults.DropProb) {
						continue
					}
					inbox = append(inbox, outbox[u])
				}
				nodes[v].Deliver(views[v], inbox)
			}
		}

		if obs := opts.Observer; obs != nil && obs.Progress != nil {
			delivered := 0
			for _, nd := range nodes {
				delivered += nd.Tokens().Len()
			}
			obs.Progress(r, delivered)
		}

		met.Rounds = r + 1
		if doneLive(nodes, crashed, k, workersFor(opts, n)) {
			if !met.Complete {
				met.Complete = true
				met.CompletionRound = r + 1
			}
			if opts.StopWhenComplete {
				break
			}
		}
	}
	return met
}

// workersFor returns the worker count for auxiliary parallel passes.
func workersFor(opts Options, n int) int {
	if opts.Workers > 1 {
		return opts.Workers
	}
	return 1
}

// doneLive reports whether every non-crashed node holds all k tokens.
// Tokens() may be expensive (network coding decodes), so the scan fans out
// when the run is parallel; each node's Tokens() touches only that node's
// state.
func doneLive(nodes []Node, crashed []bool, k, workers int) bool {
	if workers <= 1 {
		for v, nd := range nodes {
			if crashed[v] {
				continue
			}
			if nd.Tokens().Len() != k {
				return false
			}
		}
		return true
	}
	var incomplete atomic.Bool
	parallel.ForEachRange(len(nodes), workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if incomplete.Load() {
				return
			}
			if crashed[v] {
				continue
			}
			if nodes[v].Tokens().Len() != k {
				incomplete.Store(true)
				return
			}
		}
	})
	return !incomplete.Load()
}

// RunProtocol is the convenience entry point: build fresh nodes from the
// protocol and run them.
func RunProtocol(d ctvg.Dynamic, p Protocol, assign *token.Assignment, opts Options) *Metrics {
	return Run(d, p.Nodes(assign), assign, opts)
}

// Flat adapts a flat (cluster-free) dynamic network to the ctvg.Dynamic
// interface by reporting every node unaffiliated in every round. Flat
// baselines run on it unchanged.
type Flat struct {
	D tvg.Dynamic

	hier *ctvg.Hierarchy // lazily built, all-unaffiliated
}

// NewFlat wraps a flat dynamic network.
func NewFlat(d tvg.Dynamic) *Flat {
	return &Flat{D: d, hier: ctvg.NewHierarchy(d.N())}
}

// N implements ctvg.Dynamic.
func (f *Flat) N() int { return f.D.N() }

// At implements ctvg.Dynamic.
func (f *Flat) At(r int) *graph.Graph { return f.D.At(r) }

// HierarchyAt implements ctvg.Dynamic.
func (f *Flat) HierarchyAt(r int) *ctvg.Hierarchy { return f.hier }

var _ ctvg.Dynamic = (*Flat)(nil)
