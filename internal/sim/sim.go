// Package sim implements the synchronous round-based execution model shared
// by every dissemination protocol in this repository.
//
// The model follows Kuhn–Lynch–Oshman: computation proceeds in rounds; in
// round r an oblivious adversary fixes the communication graph G_r before
// seeing any payload, every node hands the engine at most one message, and
// each message is delivered to all of the sender's G_r-neighbours at the end
// of the round (wireless local broadcast). Addressed messages are still
// heard by every neighbour — addressing is a protocol-level filter, not a
// transport feature — which matches the paper's ad hoc radio model.
//
// Communication cost is counted in token units, exactly as the paper's
// analysis does ("communication cost is represented by the total number of
// tokens sent"): a transmission carrying s tokens costs s. Raw message
// counts and per-role breakdowns are tracked as well.
package sim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// NoAddr marks a broadcast message with no addressed recipient.
const NoAddr = -1

// MsgKind labels the protocol step that produced a message; it is used for
// per-step accounting and for the Fig. 3 execution traces.
type MsgKind byte

const (
	// KindBroadcast is a plain flooding broadcast (flat protocols).
	KindBroadcast MsgKind = iota
	// KindUpload is a member-to-head token upload.
	KindUpload
	// KindRelay is a head/gateway broadcast down and across the hierarchy.
	KindRelay
	// KindCoded is a network-coded packet (random linear combination);
	// its Tokens field holds the GF(2) coefficient vector, not a token
	// set, and its cost comes from Units.
	KindCoded
)

// NumKinds sizes the per-kind accounting arrays.
const NumKinds = 4

// NumRoles sizes the per-role accounting arrays (indexed by ctvg.Role).
const NumRoles = 4

// String returns a short human-readable kind name.
func (k MsgKind) String() string {
	switch k {
	case KindBroadcast:
		return "broadcast"
	case KindUpload:
		return "upload"
	case KindRelay:
		return "relay"
	case KindCoded:
		return "coded"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Message is one transmission. From is filled in by the engine.
type Message struct {
	From   int
	To     int // NoAddr for broadcast; otherwise the intended recipient
	Kind   MsgKind
	Tokens *bitset.Set
	// Units, when positive, overrides the cost accounting: the message is
	// charged Units token-equivalents instead of the payload cardinality.
	// Network-coded packets use it (one token-sized payload regardless of
	// how many coefficients the combination involves).
	Units int
}

// Cost returns the message's size in token units.
func (m *Message) Cost() int {
	if m.Units > 0 {
		return m.Units
	}
	if m.Tokens == nil {
		return 0
	}
	return m.Tokens.Len()
}

// View is what a node observes about itself at the start of a round: the
// round number, its current cluster role and head (provided by the
// clustering layer), and its current neighbour list — the paper's system
// model equips every node with "the capability of probing neighbors".
// Nodes do not see the global topology.
type View struct {
	Round int
	Role  ctvg.Role
	Head  int // current cluster head node ID, or ctvg.NoCluster
	// Neighbors is the node's current neighbour list, ascending. It
	// aliases engine storage and must not be modified or retained.
	Neighbors []int

	// pool is the owning shard's message arena; nil outside an engine run
	// (hand-built Views in tests fall back to plain allocation).
	pool *msgPool
}

// NewMessage returns a zeroed Message for this round's transmission. Inside
// a run it comes from the shard's arena and is recycled at the round
// barrier, so protocols that build their Send result through it allocate
// nothing in steady state. The message (like any Send result) must not be
// retained past the round.
func (v View) NewMessage() *Message {
	if v.pool == nil {
		return new(Message)
	}
	return v.pool.message()
}

// NewSet returns an empty token set with the same arena lifetime as
// NewMessage: use it for message payloads, never for state that outlives
// the round.
func (v View) NewSet() *bitset.Set {
	if v.pool == nil {
		return new(bitset.Set)
	}
	return v.pool.set()
}

// Node is a per-node protocol state machine.
type Node interface {
	// Send returns the node's transmission for this round, or nil.
	Send(v View) *Message
	// Deliver hands the node every message heard this round (from its
	// current neighbours), ordered by ascending sender ID.
	Deliver(v View, msgs []*Message)
	// Tokens returns the node's collected token set (the paper's TA).
	// The engine treats the result as read-only.
	Tokens() *bitset.Set
}

// Protocol builds fresh per-node state machines for a run.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Nodes returns one state machine per node, initialised from the
	// assignment. Implementations must copy the initial sets.
	Nodes(assign *token.Assignment) []Node
}

// Metrics aggregates the accounting of one run.
type Metrics struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Messages is the number of transmissions.
	Messages int64
	// TokensSent is the total communication cost in token units.
	TokensSent int64
	// MessagesByKind / TokensByKind break the totals down per message kind.
	MessagesByKind [NumKinds]int64
	TokensByKind   [NumKinds]int64
	// MessagesByRole / TokensByRole break the totals down by the sender's
	// cluster role at transmission time (indexed by ctvg.Role) — the
	// energy-budget view of the paper's motivation: who pays.
	MessagesByRole [NumRoles]int64
	TokensByRole   [NumRoles]int64
	// BytesSent is the wire-level cost; it is accumulated only when
	// Options.SizeFn is set (see internal/wire for the standard codec).
	BytesSent int64
	// CompletionRound is the 1-based round count after which every node
	// held all k tokens, or -1 if dissemination did not complete within
	// the executed rounds.
	CompletionRound int
	// Complete reports whether dissemination finished.
	Complete bool
}

// String summarises the metrics on one line. The bytes= segment appears
// only when byte-level accounting (Options.SizeFn) charged anything, so
// wire-cost runs are summarised faithfully and token-unit runs stay terse.
func (m *Metrics) String() string {
	done := "incomplete"
	if m.Complete {
		done = fmt.Sprintf("complete@%d", m.CompletionRound)
	}
	if m.BytesSent > 0 {
		return fmt.Sprintf("rounds=%d msgs=%d tokens=%d bytes=%d %s",
			m.Rounds, m.Messages, m.TokensSent, m.BytesSent, done)
	}
	return fmt.Sprintf("rounds=%d msgs=%d tokens=%d %s", m.Rounds, m.Messages, m.TokensSent, done)
}

// Observer receives per-round events; used by trace tooling, the Fig. 3
// scenario renderer and the internal/obs metrics layer. Any field may be
// nil.
//
// Event ordering is deterministic regardless of Options.Workers: within a
// round, Crashed fires first (ascending node ID), then RoundStart, then
// one Sent per transmission in ascending sender ID, then Progress. Across
// rounds everything is ascending in r, so the full Sent stream is sorted
// by (round, sender). Parallel runs buffer per-shard and merge at the
// round barrier, so the observed stream is bit-identical to a serial run
// on the same inputs. Callbacks themselves are always invoked from the
// engine goroutine — observers need no locking.
type Observer struct {
	// RoundStart is called before messages are collected.
	RoundStart func(r int, g *graph.Graph, h *ctvg.Hierarchy)
	// Sent is called for every non-nil message of round r.
	Sent func(r int, msg *Message)
	// Progress, if set, is called after each round's deliveries with the
	// total number of (node, token) pairs delivered so far — the raw
	// material for convergence curves. The maximum is n·k.
	Progress func(r int, delivered int)
	// Crashed, if set, is called once when Faults.CrashAt fells node v at
	// the top of round r, in ascending node order within a round.
	Crashed func(r int, v int)
}

// Faults injects failures for robustness experiments. The paper assumes
// reliable links and live nodes; these knobs measure how far each protocol
// degrades beyond that assumption.
type Faults struct {
	// DropProb is the probability that any single (message, receiver)
	// delivery is lost, independently per receiver (radio fading).
	// Transmission cost is still charged — the sender paid for it.
	DropProb float64
	// CrashAt maps node -> round index at which the node crashes: from
	// that round on it neither sends nor receives. Crashed nodes are
	// excluded from the completion predicate (a crashed node can never
	// collect anything).
	CrashAt map[int]int
	// Seed drives the fault randomness (deterministic like everything
	// else).
	Seed uint64
}

func (f *Faults) active() bool {
	return f != nil && (f.DropProb > 0 || len(f.CrashAt) > 0)
}

// Options controls a run.
type Options struct {
	// MaxRounds bounds the execution (required, > 0).
	MaxRounds int
	// StopWhenComplete ends the run as soon as every node holds all k
	// tokens (checked at the end of each round).
	StopWhenComplete bool
	// Observer, if non-nil, receives per-round events.
	Observer *Observer
	// Faults, if non-nil, injects message loss and node crashes.
	Faults *Faults
	// SizeFn, if set, is evaluated on every transmission and accumulated
	// into Metrics.BytesSent (byte-level cost accounting). When Workers >
	// 1 it is called concurrently from the accounting shards and must be
	// pure (internal/wire.Size is).
	SizeFn func(*Message) int
	// Workers enables within-round parallelism: Send, Deliver and the
	// per-message accounting of distinct nodes run concurrently on up to
	// Workers goroutines (0 or 1 = serial; counts above the node count are
	// clamped to it, so tiny networks never spawn idle shards). Node state
	// is per-node and messages are treated as read-only after Send, so
	// results are bit-identical to the serial engine. Observers are
	// supported: each shard accumulates locally and the engine merges at
	// the round barrier, replaying events in deterministic (round, sender)
	// order (see Observer).
	Workers int
	// NoStabilityCache disables the stability-window fast path: the engine
	// then calls At/HierarchyAt and refreshes every node's view each round
	// even when the dynamic advertises frozen windows via ctvg.Stability.
	// The cached and uncached paths produce identical Metrics and observer
	// streams; the switch exists for A/B measurement and as an escape
	// hatch.
	NoStabilityCache bool
}

// Run executes nodes against the dynamic network d for up to
// opts.MaxRounds rounds and returns the metrics. The assignment supplies k
// for the completion check. Nodes must already be initialised (see
// Protocol.Nodes).
func Run(d ctvg.Dynamic, nodes []Node, assign *token.Assignment, opts Options) *Metrics {
	n := d.N()
	if len(nodes) != n {
		panic(fmt.Sprintf("sim: %d nodes for a %d-vertex network", len(nodes), n))
	}
	if opts.MaxRounds <= 0 {
		panic("sim: MaxRounds must be positive")
	}
	workers := workersFor(opts, n)
	parallelRun := workers > 1
	if parallelRun && opts.Faults != nil && opts.Faults.DropProb > 0 {
		panic("sim: Workers > 1 cannot be combined with probabilistic message loss")
	}
	k := assign.K
	obs := opts.Observer
	met := &Metrics{CompletionRound: -1}
	outbox := make([]*Message, n)
	views := make([]View, n)

	var faultRng *xrand.Rand
	crashed := make([]bool, n)
	var crashSchedule []crashEntry
	if opts.Faults.active() {
		faultRng = xrand.New(opts.Faults.Seed)
		crashSchedule = sortCrashes(opts.Faults.CrashAt, n)
	}

	// Parallel runs shard the per-message accounting: each worker owns a
	// contiguous sender block and private state (accumulator, message
	// arena, inbox scratch), and the engine merges the accumulators in
	// shard order at the round barrier. Shard order equals ascending
	// sender order, so merged metrics — and the observer event stream
	// replayed from outbox afterwards — are bit-identical to the serial
	// engine's. The shard partition is fixed for the whole run, so each
	// view is wired to its owning shard's arena exactly once.
	nshards := 1
	if parallelRun {
		nshards = parallel.Shards(n, workers)
	}
	shards := make([]shardState, nshards)
	for s := range shards {
		lo, hi := s*n/nshards, (s+1)*n/nshards
		for v := lo; v < hi; v++ {
			views[v].pool = &shards[s].pool
		}
	}

	// Stability-window cache: when the dynamic advertises T-interval
	// stable windows (ctvg.Stability), graph, hierarchy and the per-node
	// views are frozen on the window's first round and reused until the
	// window ends — churn or reaffiliation starts a new window, which
	// refetches everything. Rounds inside a window skip At/HierarchyAt and
	// all O(n) view rebuilding.
	stab, hasStab := d.(ctvg.Stability)
	if opts.NoStabilityCache {
		hasStab = false
	}
	cachedUntil := -1

	var g *graph.Graph
	var hier *ctvg.Hierarchy
	for r := 0; r < opts.MaxRounds; r++ {
		for i := range crashSchedule {
			ce := &crashSchedule[i]
			if r >= ce.at && !crashed[ce.node] {
				crashed[ce.node] = true
				if obs != nil && obs.Crashed != nil {
					obs.Crashed(r, ce.node)
				}
			}
		}
		fresh := r > cachedUntil
		if fresh {
			g = d.At(r)
			hier = d.HierarchyAt(r)
			cachedUntil = r
			if hasStab {
				if s := stab.StableUntil(r); s > r {
					cachedUntil = s
				}
			}
		}
		if obs != nil && obs.RoundStart != nil {
			obs.RoundStart(r, g, hier)
		}

		// Collect phase: every node decides its transmission from its
		// local view only, then the transmission is charged to the
		// accounting. Nodes are independent, so both steps fan out when
		// Workers > 1 (per-shard accumulators, merged below). Inside a
		// stable window only the round number changes; role, head and
		// neighbour slice keep the frozen window values.
		collect := func(v int) {
			vw := &views[v]
			vw.Round = r
			if fresh {
				vw.Role = hier.Role[v]
				vw.Head = hier.HeadOf(v)
				vw.Neighbors = g.Neighbors(v)
			}
			if crashed[v] {
				outbox[v] = nil
				return
			}
			outbox[v] = nodes[v].Send(*vw)
		}
		account := func(acc *shardAcc, v int) {
			msg := outbox[v]
			if msg == nil {
				return
			}
			msg.From = v
			cost := int64(msg.Cost())
			acc.messages++
			acc.tokens += cost
			if int(msg.Kind) < NumKinds {
				acc.msgsByKind[msg.Kind]++
				acc.tokensByKind[msg.Kind] += cost
			}
			if opts.SizeFn != nil {
				acc.bytes += int64(opts.SizeFn(msg))
			}
			if role := hier.Role[v]; int(role) < NumRoles {
				acc.msgsByRole[role]++
				acc.tokensByRole[role] += cost
			}
		}
		if parallelRun {
			parallel.ForEachShard(n, workers, func(s, lo, hi int) {
				acc := &shards[s].acc
				acc.reset()
				for v := lo; v < hi; v++ {
					collect(v)
					account(acc, v)
				}
			})
			for s := range shards {
				met.add(&shards[s].acc)
			}
			if obs != nil && obs.Sent != nil {
				for v := 0; v < n; v++ {
					if outbox[v] != nil {
						obs.Sent(r, outbox[v])
					}
				}
			}
		} else {
			acc := &shards[0].acc
			acc.reset()
			for v := 0; v < n; v++ {
				collect(v)
				account(acc, v)
				if outbox[v] != nil && obs != nil && obs.Sent != nil {
					obs.Sent(r, outbox[v])
				}
			}
			met.add(acc)
		}

		// Deliver phase: each node hears its neighbours' messages,
		// ordered by ascending sender ID (Neighbors is sorted). Messages
		// are read-only from here on, so delivery also fans out — over the
		// same shard partition as collect, so a node delivering through
		// View.NewSet stays on its arena's owning goroutine.
		if parallelRun {
			parallel.ForEachShard(n, workers, func(s, lo, hi int) {
				st := &shards[s]
				for v := lo; v < hi; v++ {
					if crashed[v] {
						continue
					}
					st.inbox = st.inbox[:0]
					for _, u := range views[v].Neighbors {
						if outbox[u] != nil {
							st.inbox = append(st.inbox, outbox[u])
						}
					}
					nodes[v].Deliver(views[v], st.inbox)
				}
			})
		} else {
			st := &shards[0]
			for v := 0; v < n; v++ {
				if crashed[v] {
					continue
				}
				st.inbox = st.inbox[:0]
				for _, u := range views[v].Neighbors {
					if outbox[u] == nil {
						continue
					}
					if faultRng != nil && opts.Faults.DropProb > 0 && faultRng.Prob(opts.Faults.DropProb) {
						continue
					}
					st.inbox = append(st.inbox, outbox[u])
				}
				nodes[v].Deliver(views[v], st.inbox)
			}
		}

		if obs != nil && obs.Progress != nil {
			// The delivered count is a sum of per-node popcounts; integer
			// addition commutes, so the sharded sum below matches the
			// serial one exactly.
			delivered := 0
			if parallelRun {
				parallel.ForEachShard(n, workers, func(s, lo, hi int) {
					sum := 0
					for v := lo; v < hi; v++ {
						sum += nodes[v].Tokens().Len()
					}
					shards[s].acc.delivered = sum
				})
				for s := range shards {
					delivered += shards[s].acc.delivered
				}
			} else {
				for _, nd := range nodes {
					delivered += nd.Tokens().Len()
				}
			}
			obs.Progress(r, delivered)
		}

		met.Rounds = r + 1
		done := doneLive(nodes, crashed, k, workers)

		// Round barrier: messages and payload sets handed out this round
		// are dead — nothing may retain them — so the arenas take them
		// back for the next round.
		for s := range shards {
			shards[s].pool.recycle()
		}

		if done {
			if !met.Complete {
				met.Complete = true
				met.CompletionRound = r + 1
			}
			if opts.StopWhenComplete {
				break
			}
		}
	}
	return met
}

// shardAcc is one worker's private slice of the round accounting. The
// serial engine uses a single stack-allocated instance, so the accounting
// path allocates nothing per message in either mode.
type shardAcc struct {
	messages     int64
	tokens       int64
	bytes        int64
	msgsByKind   [NumKinds]int64
	tokensByKind [NumKinds]int64
	msgsByRole   [NumRoles]int64
	tokensByRole [NumRoles]int64
	delivered    int
}

func (a *shardAcc) reset() { *a = shardAcc{} }

// add folds one shard's accounting into the run totals.
func (m *Metrics) add(a *shardAcc) {
	m.Messages += a.messages
	m.TokensSent += a.tokens
	m.BytesSent += a.bytes
	for i := range a.msgsByKind {
		m.MessagesByKind[i] += a.msgsByKind[i]
		m.TokensByKind[i] += a.tokensByKind[i]
	}
	for i := range a.msgsByRole {
		m.MessagesByRole[i] += a.msgsByRole[i]
		m.TokensByRole[i] += a.tokensByRole[i]
	}
}

// crashEntry is one scheduled crash, pre-sorted by node ID so activation —
// and the Crashed events it emits — happen in deterministic order (map
// range order is not).
type crashEntry struct {
	node, at int
}

// sortCrashes flattens CrashAt into a node-sorted schedule, dropping
// out-of-range nodes.
func sortCrashes(crashAt map[int]int, n int) []crashEntry {
	if len(crashAt) == 0 {
		return nil
	}
	out := make([]crashEntry, 0, len(crashAt))
	for v, at := range crashAt {
		if v >= 0 && v < n {
			out = append(out, crashEntry{node: v, at: at})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].node < out[j].node })
	return out
}

// workersFor resolves Options.Workers for a run over n nodes: at least 1,
// and never more than n — a worker without nodes would be an idle shard
// (and an empty accumulator slot) on every round barrier.
func workersFor(opts Options, n int) int {
	w := opts.Workers
	if w < 1 {
		return 1
	}
	if w > n {
		return n
	}
	return w
}

// doneLive reports whether every non-crashed node holds all k tokens.
// Tokens() may be expensive (network coding decodes), so the scan fans out
// when the run is parallel; each node's Tokens() touches only that node's
// state.
func doneLive(nodes []Node, crashed []bool, k, workers int) bool {
	if workers <= 1 {
		for v, nd := range nodes {
			if crashed[v] {
				continue
			}
			if nd.Tokens().Len() != k {
				return false
			}
		}
		return true
	}
	var incomplete atomic.Bool
	parallel.ForEachRange(len(nodes), workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if incomplete.Load() {
				return
			}
			if crashed[v] {
				continue
			}
			if nodes[v].Tokens().Len() != k {
				incomplete.Store(true)
				return
			}
		}
	})
	return !incomplete.Load()
}

// RunProtocol is the convenience entry point: build fresh nodes from the
// protocol and run them.
func RunProtocol(d ctvg.Dynamic, p Protocol, assign *token.Assignment, opts Options) *Metrics {
	return Run(d, p.Nodes(assign), assign, opts)
}

// Flat adapts a flat (cluster-free) dynamic network to the ctvg.Dynamic
// interface by reporting every node unaffiliated in every round. Flat
// baselines run on it unchanged.
type Flat struct {
	D tvg.Dynamic

	hier *ctvg.Hierarchy // lazily built, all-unaffiliated
}

// NewFlat wraps a flat dynamic network.
func NewFlat(d tvg.Dynamic) *Flat {
	return &Flat{D: d, hier: ctvg.NewHierarchy(d.N())}
}

// N implements ctvg.Dynamic.
func (f *Flat) N() int { return f.D.N() }

// At implements ctvg.Dynamic.
func (f *Flat) At(r int) *graph.Graph { return f.D.At(r) }

// HierarchyAt implements ctvg.Dynamic.
func (f *Flat) HierarchyAt(r int) *ctvg.Hierarchy { return f.hier }

// StableUntil implements ctvg.Stability by delegation: the all-unaffiliated
// hierarchy never changes, so the wrapper is exactly as stable as the flat
// network underneath (and promises nothing when that network does not
// advertise stability).
func (f *Flat) StableUntil(r int) int {
	if s, ok := f.D.(tvg.Stability); ok {
		return s.StableUntil(r)
	}
	return r
}

var (
	_ ctvg.Dynamic   = (*Flat)(nil)
	_ ctvg.Stability = (*Flat)(nil)
)
