// Package sim implements the synchronous round-based execution model shared
// by every dissemination protocol in this repository.
//
// The model follows Kuhn–Lynch–Oshman: computation proceeds in rounds; in
// round r an oblivious adversary fixes the communication graph G_r before
// seeing any payload, every node hands the engine at most one message, and
// each message is delivered to all of the sender's G_r-neighbours at the end
// of the round (wireless local broadcast). Addressed messages are still
// heard by every neighbour — addressing is a protocol-level filter, not a
// transport feature — which matches the paper's ad hoc radio model.
//
// Communication cost is counted in token units, exactly as the paper's
// analysis does ("communication cost is represented by the total number of
// tokens sent"): a transmission carrying s tokens costs s. Raw message
// counts and per-role breakdowns are tracked as well.
//
// Failures are injected through a declarative faults.Plan (crash-stop,
// crash-recovery, head-targeted kills, i.i.d. and bursty link loss,
// duplication); all fault randomness is counter-based, so a faulty run is
// bit-identical whether it executes serially or on Workers goroutines.
package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/token"
	"repro/internal/tvg"
)

// NoAddr marks a broadcast message with no addressed recipient.
const NoAddr = -1

// MsgKind labels the protocol step that produced a message; it is used for
// per-step accounting and for the Fig. 3 execution traces.
type MsgKind byte

const (
	// KindBroadcast is a plain flooding broadcast (flat protocols).
	KindBroadcast MsgKind = iota
	// KindUpload is a member-to-head token upload.
	KindUpload
	// KindRelay is a head/gateway broadcast down and across the hierarchy.
	KindRelay
	// KindCoded is a network-coded packet (random linear combination);
	// its Tokens field holds the GF(2) coefficient vector, not a token
	// set, and its cost comes from Units.
	KindCoded
)

// NumKinds sizes the per-kind accounting arrays.
const NumKinds = 4

// NumRoles sizes the per-role accounting arrays (indexed by ctvg.Role).
const NumRoles = 4

// String returns a short human-readable kind name.
func (k MsgKind) String() string {
	switch k {
	case KindBroadcast:
		return "broadcast"
	case KindUpload:
		return "upload"
	case KindRelay:
		return "relay"
	case KindCoded:
		return "coded"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Message is one transmission. From is filled in by the engine.
type Message struct {
	From int
	To   int // NoAddr for broadcast; otherwise the intended recipient
	Kind MsgKind
	// Version, when non-zero, is the sender's monotone content stamp for
	// the payload: the sender guarantees that within one run its Tokens
	// sets are non-decreasing in Version (equal Version ⇒ identical set,
	// higher Version ⇒ superset). A receiver that has already absorbed
	// (From, Version) may therefore skip the payload union — delta-aware
	// delivery; see View.DeltaEnabled. 0 means unversioned: never skipped.
	// The stamp is engine metadata, contributing to neither Cost nor the
	// wire encoding, so versioned and naive runs account identically. (It
	// sits next to Kind to fit that word's padding: pooled messages are
	// zeroed on every reuse, so struct size is hot-path cost.)
	Version uint32
	Tokens  *bitset.Set
	// Units, when positive, overrides the cost accounting: the message is
	// charged Units token-equivalents instead of the payload cardinality.
	// Network-coded packets use it (one token-sized payload regardless of
	// how many coefficients the combination involves).
	Units int
}

// Cost returns the message's size in token units.
func (m *Message) Cost() int {
	if m.Units > 0 {
		return m.Units
	}
	if m.Tokens == nil {
		return 0
	}
	return m.Tokens.Len()
}

// NoteKind labels a protocol-level repair action surfaced through
// View.Note: self-healing protocols report their failover decisions so the
// observability layer can correlate repairs with the faults that caused
// them.
type NoteKind byte

const (
	// NoteHandover: the node promoted itself to acting cluster head after
	// detecting its head's failure.
	NoteHandover NoteKind = iota
	// NoteFloodFallback: the node gave up on the hierarchy and escalated to
	// flooding.
	NoteFloodFallback
)

// NumNoteKinds sizes per-note accounting arrays.
const NumNoteKinds = 2

// String returns a short human-readable note name.
func (k NoteKind) String() string {
	switch k {
	case NoteHandover:
		return "handover"
	case NoteFloodFallback:
		return "flood_fallback"
	default:
		return fmt.Sprintf("note(%d)", byte(k))
	}
}

// View is what a node observes about itself at the start of a round: the
// round number, its current cluster role and head (provided by the
// clustering layer), and its current neighbour list — the paper's system
// model equips every node with "the capability of probing neighbors".
// Nodes do not see the global topology.
type View struct {
	Round int
	Role  ctvg.Role
	// noDelta mirrors Options.NoDeltaDelivery into every view (see
	// DeltaEnabled). It shares Role's padding: views live in one n-sized
	// slice per run, so View growth is charged n-fold.
	noDelta bool
	Head    int // current cluster head node ID, or ctvg.NoCluster
	// Neighbors is the node's current neighbour list, ascending. It
	// aliases engine storage and must not be modified or retained.
	Neighbors []int

	// id is the observing node's ID; Note reports it to the observer.
	id int
	// pool is the owning shard's message arena; nil outside an engine run
	// (hand-built Views in tests fall back to plain allocation).
	pool *msgPool
	// notes is the owning shard's note buffer; nil outside an engine run
	// (Note is then a no-op).
	notes *[]note
}

// DeltaEnabled reports whether receivers may honour Message.Version and
// skip payload unions they have provably already absorbed. False only when
// the run sets Options.NoDeltaDelivery (the naive A/B reference path);
// senders stamp versions either way, so the transmitted messages — and all
// accounting derived from them — are identical in both modes.
func (v View) DeltaEnabled() bool { return !v.noDelta }

// NewMessage returns a zeroed Message for this round's transmission. Inside
// a run it comes from the shard's arena and is recycled at the round
// barrier, so protocols that build their Send result through it allocate
// nothing in steady state. The message (like any Send result) must not be
// retained past the round.
func (v View) NewMessage() *Message {
	if v.pool == nil {
		return new(Message)
	}
	return v.pool.message()
}

// NewSet returns an empty token set with the same arena lifetime as
// NewMessage: use it for message payloads, never for state that outlives
// the round.
func (v View) NewSet() *bitset.Set {
	if v.pool == nil {
		return new(bitset.Set)
	}
	return v.pool.set()
}

// Note reports a repair action taken by the node this round (from Send or
// Deliver). Notes are buffered per shard and replayed to Observer.Noted at
// the round barrier in deterministic order, so the observed stream is
// identical under any Workers setting. Outside an engine run Note is a
// no-op.
func (v View) Note(kind NoteKind) {
	if v.notes == nil {
		return
	}
	*v.notes = append(*v.notes, note{node: v.id, kind: kind})
}

// note is one buffered View.Note emission.
type note struct {
	node int
	kind NoteKind
}

// Node is a per-node protocol state machine.
type Node interface {
	// Send returns the node's transmission for this round, or nil.
	Send(v View) *Message
	// Deliver hands the node every message heard this round (from its
	// current neighbours), ordered by ascending sender ID. Under fault
	// injection a duplicated message appears twice, back to back.
	Deliver(v View, msgs []*Message)
	// Tokens returns the node's collected token set (the paper's TA).
	// The engine treats the result as read-only.
	Tokens() *bitset.Set
}

// Recoverer is implemented by nodes that support crash-recovery. When a
// crashed node's downtime window ends, the engine calls OnRecover once, at
// the top of the rejoin round and before the node's next Send. The
// implementation must reset volatile protocol state (affiliation,
// phase-local bookkeeping) while retaining the token set — the model's
// stable storage. Nodes that do not implement Recoverer rejoin with their
// state untouched.
type Recoverer interface {
	OnRecover(r int)
}

// Protocol builds fresh per-node state machines for a run.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Nodes returns one state machine per node, initialised from the
	// assignment. Implementations must copy the initial sets.
	Nodes(assign *token.Assignment) []Node
}

// Metrics aggregates the accounting of one run.
type Metrics struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Messages is the number of transmissions.
	Messages int64
	// TokensSent is the total communication cost in token units.
	TokensSent int64
	// MessagesByKind / TokensByKind break the totals down per message kind.
	MessagesByKind [NumKinds]int64
	TokensByKind   [NumKinds]int64
	// MessagesByRole / TokensByRole break the totals down by the sender's
	// cluster role at transmission time (indexed by ctvg.Role) — the
	// energy-budget view of the paper's motivation: who pays.
	MessagesByRole [NumRoles]int64
	TokensByRole   [NumRoles]int64
	// BytesSent is the wire-level cost; it is accumulated only when
	// Options.SizeFn is set (see internal/wire for the standard codec).
	BytesSent int64
	// Drops / Dups count deliveries lost and duplicated by fault
	// injection. A dropped delivery still charged its sender.
	Drops int64
	Dups  int64
	// Recoveries counts crash-recovery rejoins.
	Recoveries int
	// FirstDeliveries / RedundantDeliveries are accumulated only when
	// Options.Tracer is set: the number of (node, token) first deliveries
	// recorded by the tracer, and the number of cost-bearing messages
	// heard that taught their receiver nothing new.
	FirstDeliveries     int64
	RedundantDeliveries int64
	// Handovers / FloodFallbacks count the protocol-level repair actions
	// reported through View.Note.
	Handovers      int
	FloodFallbacks int
	// Elections / Adoptions / HeadMerges count the self-stabilizing
	// clustering protocol's repair events, and MaintenanceBeacons its
	// message budget (one beacon per live node per round). All stay 0
	// unless Options.SelfStabilize is set.
	Elections          int
	Adoptions          int
	HeadMerges         int
	MaintenanceBeacons int64
	// ConvergenceReports counts convergence-watchdog firings (the
	// emergent hierarchy stayed invalid for a full watchdog window);
	// Reconvergences counts repaired divergence episodes — invalid
	// streaks that returned to validity.
	ConvergenceReports int
	Reconvergences     int
	// TokensInjected / TokensCollected count, in arrival-mode runs, the
	// dynamically injected tokens (the initial batch excluded) and the
	// tokens garbage-collected after full dissemination.
	TokensInjected  int64
	TokensCollected int64
	// OutstandingTokens is the number of live (injected, not yet collected)
	// tokens when the run ended; PeakOutstanding is the run's high-water
	// queue depth. Both include the initial batch and stay 0 with Arrivals
	// off.
	OutstandingTokens int
	PeakOutstanding   int
	// CompletionRound is the 1-based round count after which every node
	// held all k tokens, or -1 if dissemination did not complete within
	// the executed rounds.
	CompletionRound int
	// Complete reports whether dissemination finished.
	Complete bool
	// Stall is non-nil when the stall watchdog (Options.StallWindow)
	// terminated the run: dissemination made no progress for the whole
	// window and the report says what the run looked like when it gave up.
	Stall *StallReport
}

// String summarises the metrics on one line. The bytes= segment appears
// only when byte-level accounting (Options.SizeFn) charged anything, so
// wire-cost runs are summarised faithfully and token-unit runs stay terse.
func (m *Metrics) String() string {
	done := "incomplete"
	if m.Complete {
		done = fmt.Sprintf("complete@%d", m.CompletionRound)
	} else if m.Stall != nil {
		done = fmt.Sprintf("stalled@%d", m.Stall.Round)
	}
	if m.BytesSent > 0 {
		return fmt.Sprintf("rounds=%d msgs=%d tokens=%d bytes=%d %s",
			m.Rounds, m.Messages, m.TokensSent, m.BytesSent, done)
	}
	return fmt.Sprintf("rounds=%d msgs=%d tokens=%d %s", m.Rounds, m.Messages, m.TokensSent, done)
}

// StallReport is the stall watchdog's diagnostic: why the run was cut
// short, and what the population looked like at that moment.
type StallReport struct {
	// Round is the round index at which the watchdog fired.
	Round int
	// Window is the configured number of zero-progress rounds observed.
	Window int
	// Delivered / Total are the (node, token) pairs delivered versus the
	// n·k needed for completion.
	Delivered, Total int
	// Live, Down and PendingRecovery partition the node population when
	// the watchdog fired: up, permanently crashed, and crashed-but-
	// scheduled-to-rejoin.
	Live, Down, PendingRecovery int
}

// String formats the diagnostic on one line.
func (s *StallReport) String() string {
	return fmt.Sprintf("stalled at round %d: no progress for %d rounds, %d/%d token-pairs delivered, %d live / %d down / %d pending recovery",
		s.Round, s.Window, s.Delivered, s.Total, s.Live, s.Down, s.PendingRecovery)
}

// Observer receives per-round events; used by trace tooling, the Fig. 3
// scenario renderer and the internal/obs metrics layer. Any field may be
// nil.
//
// Event ordering is deterministic regardless of Options.Workers: within a
// round, Recovered fires first (ascending node ID), then Crashed
// (ascending node ID), then RoundStart, then — in self-stabilizing runs
// only — Maintenance and (on the round the convergence watchdog fires)
// Diverged, then Arrived (only in arrival-mode
// runs, ascending arrival sequence), then one Sent per transmission in
// ascending sender ID, then Noted in ascending node ID (per-node emission
// order preserved), then Deliveries (only when Options.Tracer is set),
// then LinkFaults, then Collected (arrival mode, ascending token slot),
// then Progress, then Barrier (once per executed round, with the run's
// Metrics so far), then — at most once per run, as its
// final event — Stalled. Across rounds everything is ascending in r, so
// the full Sent stream is sorted by (round, sender). Parallel runs buffer
// per-shard and merge at the round barrier, so the observed stream is
// bit-identical to a serial run on the same inputs. Callbacks themselves
// are always invoked from the engine goroutine — observers need no
// locking.
type Observer struct {
	// RoundStart is called before messages are collected.
	RoundStart func(r int, g *graph.Graph, h *ctvg.Hierarchy)
	// Sent is called for every non-nil message of round r.
	Sent func(r int, msg *Message)
	// Progress, if set, is called after each round's deliveries with the
	// total number of (node, token) pairs delivered so far — the raw
	// material for convergence curves. The maximum is n·k.
	Progress func(r int, delivered int)
	// Crashed, if set, is called once per crash when fault injection fells
	// node v at the top of round r, in ascending node order within a
	// round. A node may crash again after recovering.
	Crashed func(r int, v int)
	// Recovered, if set, is called once when node v rejoins at the top of
	// round r, in ascending node order within a round.
	Recovered func(r int, v int)
	// Noted, if set, receives the protocol repair actions reported through
	// View.Note this round.
	Noted func(r int, v int, kind NoteKind)
	// Deliveries, if set, receives the tracer's per-round delivery
	// accounting (first deliveries and redundant cost-bearing messages).
	// It fires only when Options.Tracer is set, after Noted and before
	// LinkFaults.
	Deliveries func(r int, first, redundant int)
	// LinkFaults, if set, is called after round r's deliveries whenever
	// fault injection dropped or duplicated at least one delivery, with
	// the round's counts.
	LinkFaults func(r int, drops, dups int)
	// Arrived, if set, is called for every token injected by the arrival
	// process (Options.Arrivals): round, target node, token slot, and the
	// token's global arrival sequence number (sequence numbers distinguish
	// generations when a collected token's slot is reused).
	Arrived func(r, v, tok int, seq int64)
	// Collected, if set, is called once per token garbage-collected at
	// round r's barrier, ascending in token slot, with the token's
	// sequence number and injection round (delivery latency is r - born).
	Collected func(r, tok int, seq int64, born int)
	// Stalled, if set, is called when the stall watchdog terminates the
	// run (see Options.StallWindow).
	Stalled func(r int, rep *StallReport)
	// Maintenance, if set, receives each round's self-stabilizing
	// clustering summary (repair events, beacon budget, validity). It
	// fires only when Options.SelfStabilize is set, right after
	// RoundStart.
	Maintenance func(r int, ms MaintenanceStats)
	// Diverged, if set, is called when the convergence watchdog fires:
	// the emergent hierarchy has not been valid for the configured
	// window. Unlike Stalled the run continues.
	Diverged func(r int, rep *ConvergenceReport)
	// Barrier, if set, is called once per executed round at the round
	// barrier, after Progress and before the completion/stall checks, with
	// the run's Metrics accumulated so far (met.Rounds already counts round
	// r). met aliases engine storage: read-only, valid only during the
	// call — snapshot (struct copy) anything retained past it. This is the
	// flight recorder's feed for mid-run Metrics snapshots; the disabled
	// (nil) path costs one nil check per round and allocates nothing.
	Barrier func(r int, met *Metrics)
}

// Tracer observes individual token deliveries at per-message granularity —
// the raw material for provenance DAGs (see internal/provenance). It is
// deliberately lower-level than Observer: callbacks other than RunStart,
// RoundStart and RoundEnd may run concurrently on shard goroutines.
//
// Contract: RunStart is called once from the engine goroutine before round
// 0, after the shard partition is fixed; the tracer may read every node's
// initial token set there. RoundStart is called from the engine goroutine
// each round (after Observer.RoundStart); hier aliases engine storage and
// is read-only, valid for the duration of the round. Delivered is called
// after nodes[v].Deliver for every live node that heard at least one
// message; when Workers > 1 the calls for distinct shards run concurrently,
// but the shard→node partition is fixed for the whole run, so per-node and
// per-shard tracer state needs no locking. inbox aliases shard scratch and
// tokens aliases node state: both are read-only and must not be retained
// past the call. RoundEnd is called from the engine goroutine at the round
// barrier (after note replay, before the link-fault fold and arena
// recycling); it merges the shard buffers in shard order — ascending node
// order — so tracer output is bit-identical to a serial run, and returns
// the round's first-delivery and redundant-delivery counts, which the
// engine folds into Metrics and Observer.Deliveries.
type Tracer interface {
	RunStart(n, k, shards int, nodes []Node)
	RoundStart(r int, hier *ctvg.Hierarchy)
	Delivered(shard, v int, vw *View, inbox []*Message, tokens *bitset.Set)
	RoundEnd(r int, crashed []bool) (first, redundant int)
}

// ArrivalTracer is the optional tracer extension for arrival-mode runs: a
// Tracer that also implements it receives every injection and every GC
// batch. Injected is called from the engine goroutine right after the token
// is handed to node v (before the round's Send), in ascending arrival
// sequence; Collected is called once per GC round from the engine goroutine
// at the round barrier, after RoundEnd, with the collected slot set (gc
// aliases engine scratch — read-only, not retained). A tracer that records
// first deliveries must prune the collected slots from its per-node known
// sets, or a reused slot's next generation would be silently untraced.
type ArrivalTracer interface {
	Injected(r, v, tok int, seq int64)
	Collected(r int, gc *bitset.Set)
}

// Faults declares the failures injected into a run. It is an alias for
// faults.Plan — see that package for the full model (crash-stop,
// crash-recovery, head-targeted kills, i.i.d. and Gilbert–Elliott bursty
// loss, duplication) and its determinism guarantees. The paper assumes
// reliable links and live nodes; these knobs measure how far each protocol
// degrades beyond that assumption.
type Faults = faults.Plan

// Options controls a run.
type Options struct {
	// MaxRounds bounds the execution (required, > 0).
	MaxRounds int
	// StopWhenComplete ends the run as soon as every node holds all k
	// tokens (checked at the end of each round).
	StopWhenComplete bool
	// Observer, if non-nil, receives per-round events.
	Observer *Observer
	// Tracer, if non-nil, receives per-delivery events for provenance
	// recording (see internal/provenance). The disabled (nil) path costs
	// one pointer comparison per hook site and allocates nothing.
	Tracer Tracer
	// Faults, if non-nil, injects failures; the plan is validated before
	// the run starts and a bad plan is a Run error. Fault randomness is
	// counter-based (pure in round, sender and receiver), so faulty runs
	// parallelise like fault-free ones and stay bit-identical to serial.
	Faults *Faults
	// SizeFn, if set, is evaluated on every transmission and accumulated
	// into Metrics.BytesSent (byte-level cost accounting). When Workers >
	// 1 it is called concurrently from the accounting shards and must be
	// pure (internal/wire.Size is).
	SizeFn func(*Message) int
	// Workers enables within-round parallelism: Send, Deliver and the
	// per-message accounting of distinct nodes run concurrently on up to
	// Workers goroutines (0 or 1 = serial; counts above the node count are
	// clamped to it, so tiny networks never spawn idle shards). Node state
	// is per-node and messages are treated as read-only after Send, so
	// results are bit-identical to the serial engine. Observers are
	// supported: each shard accumulates locally and the engine merges at
	// the round barrier, replaying events in deterministic (round, sender)
	// order (see Observer).
	Workers int
	// StallWindow, when positive, arms the stall watchdog: if the total
	// number of delivered (node, token) pairs does not increase for
	// StallWindow consecutive rounds while dissemination is incomplete,
	// the run terminates with a StallReport in Metrics.Stall instead of
	// spinning to MaxRounds. 0 disables the watchdog.
	StallWindow int
	// NoDeltaDelivery disables delta-aware delivery: receivers then union
	// every payload they hear, even ones whose (sender, version) stamp
	// proves they were already absorbed. Senders stamp versions either
	// way, so both paths transmit identical messages and produce identical
	// Metrics, observer streams and provenance; the switch exists for A/B
	// measurement of the skip's value (mirrored as PointConfig.NoDelta and
	// hinetbench -nodelta).
	NoDeltaDelivery bool
	// Timing, if non-nil, turns on engine self-profiling: every round
	// stage (crash bookkeeping, snapshot/thaw, hierarchy refresh, collect
	// fan-out, observer emit, delivery fan-out, barrier merges, tracer
	// emit, progress scan, arena recycle — see Stage) is measured on the
	// monotonic clock, wall time on the engine goroutine plus per-shard
	// time inside the fan-outs, and handed to the sink once per round at
	// the barrier, merged in shard order exactly like observer events.
	// The per-round record therefore has the same stage structure and
	// count under any Workers setting; only the measured durations differ.
	// The disabled (nil) path costs one nil check per stage edge and
	// allocates nothing (guarded by the repo's alloc-parity tests).
	Timing TimingSink
	// LabelCtx, when set together with Timing, is the base context whose
	// pprof label set the engine's per-stage stage=/shard= labels extend —
	// CLIs put an alg= label there (via runtime/pprof.Do) so CPU profiles
	// attribute samples by both protocol and stage. nil means Background.
	LabelCtx context.Context
	// Arrivals, if non-nil, switches the run into steady-state mode: tokens
	// keep arriving per the configured process (see Arrivals), and tokens
	// held by every live node are garbage-collected at the round barrier so
	// state stays bounded over unbounded runs. Every node must implement
	// Injector and Collectible; the assignment's k tokens form the initial
	// batch (slots 0..k-1). Completion then means: the arrival process is
	// exhausted (past Stop, or MaxTokens reached) and every injected token
	// has been collected. The disabled (nil) path costs one pointer
	// comparison per round and allocates nothing.
	Arrivals *Arrivals
	// NoStabilityCache disables the stability-window fast path: the engine
	// then calls At/HierarchyAt and refreshes every node's view each round
	// even when the dynamic advertises frozen windows via ctvg.Stability.
	// The cached and uncached paths produce identical Metrics and observer
	// streams; the switch exists for A/B measurement and as an escape
	// hatch.
	NoStabilityCache bool
	// Stop, if set, is polled once per round at the round barrier (after
	// Barrier/Stalled events): when it returns true the run ends cleanly
	// at that round, with Metrics and every observer/tracer/timing stream
	// consistent up to and including it. This is the cooperative
	// cancellation hook the CLIs use for SIGINT/SIGTERM handling — the
	// signal goroutine only flips an atomic flag, and all sink flushing
	// stays on the engine goroutine, race-free. The disabled (nil) path
	// costs one nil check per round and allocates nothing.
	Stop func(r int) bool
	// SelfStabilize, if non-nil, replaces the adversary-provided hierarchy
	// with one maintained by the message-passing self-stabilizing
	// clustering protocol (internal/cluster/selfstab): every live node
	// broadcasts one beacon per round over the same faulty links the
	// payload rides, each node recomputes its role from the beacons it
	// heard, and HierarchyAt is never consulted. Head-targeted crashes
	// then fell the *elected* heads. The stability-window cache is
	// bypassed — the emergent hierarchy may change every round. The
	// protocol step fans out over the same shard partition as delivery
	// and merges its counters in shard order, so self-stabilizing runs
	// keep the engine's serial/parallel bit-identity. The disabled (nil)
	// path costs one pointer comparison per round and allocates nothing.
	SelfStabilize *SelfStabilize
}

// Run executes nodes against the dynamic network d for up to
// opts.MaxRounds rounds and returns the metrics. The assignment supplies k
// for the completion check. Nodes must already be initialised (see
// Protocol.Nodes). Run fails up front — before any round executes — on a
// node/network size mismatch, a non-positive MaxRounds, or an invalid
// fault plan.
func Run(d ctvg.Dynamic, nodes []Node, assign *token.Assignment, opts Options) (*Metrics, error) {
	n := d.N()
	if len(nodes) != n {
		return nil, fmt.Errorf("sim: %d nodes for a %d-vertex network", len(nodes), n)
	}
	if opts.MaxRounds <= 0 {
		return nil, fmt.Errorf("sim: MaxRounds must be positive (got %d)", opts.MaxRounds)
	}
	inj, err := faults.New(opts.Faults, n)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	workers := workersFor(opts, n)
	parallelRun := workers > 1
	k := assign.K
	obs := opts.Observer
	met := &Metrics{CompletionRound: -1}
	outbox := make([]*Message, n)
	views := make([]View, n)

	// Steady-state arrival mode: all bookkeeping hangs off one pointer, so
	// the batch path below pays a nil comparison per round and nothing else.
	var arr *arrState
	if opts.Arrivals != nil {
		if err := opts.Arrivals.validate(n); err != nil {
			return nil, err
		}
		if arr, err = newArrState(opts.Arrivals, n, k, nodes); err != nil {
			return nil, err
		}
		met.OutstandingTokens = arr.liveCount()
		met.PeakOutstanding = arr.liveCount()
	}

	// Fault state. crashed marks nodes currently down; recoverAt holds the
	// rejoin round of nodes in a downtime window (faults.NoRecovery
	// otherwise); crashSchedule is the static plan, each entry fired once.
	crashed := make([]bool, n)
	var recoverAt []int
	var recovering []int // nodes in a downtime window, unordered
	var crashSchedule []crashEntry
	lossy, duplicating := inj.Lossy(), inj.Duplicating()
	if inj != nil {
		recoverAt = make([]int, n)
		for v := range recoverAt {
			recoverAt[v] = faults.NoRecovery
		}
		for _, c := range inj.Crashes() {
			crashSchedule = append(crashSchedule, crashEntry{node: c.Node, at: c.At, recoverAt: c.RecoverAt})
		}
	}
	var eventScratch []int // sorted crash/recovery IDs of the current round
	var noteScratch []note // merged View.Note buffer of the current round

	// Parallel runs shard the per-message accounting: each worker owns a
	// contiguous sender block and private state (accumulator, message
	// arena, inbox scratch, note buffer), and the engine merges the
	// accumulators in shard order at the round barrier. Shard order equals
	// ascending sender order, so merged metrics — and the observer event
	// stream replayed from outbox afterwards — are bit-identical to the
	// serial engine's. The shard partition is fixed for the whole run, so
	// each view is wired to its owning shard's arena exactly once.
	//
	// Shards are cut at equal cumulative round-0 degree rather than equal
	// node count: per-node round work is dominated by neighbour scans, so
	// on hub-heavy topologies (a star, a clustered HiNet) an equal-count
	// partition leaves one worker with nearly all edges. Blocks stay
	// contiguous and ascending, so every bit-identity guarantee above is
	// untouched — only the cut points move.
	nshards := 1
	if parallelRun {
		nshards = parallel.Shards(n, workers)
	}
	// bounds stays nil on serial runs: the slice leaks into ForEachBounds'
	// goroutine closures, so even a stack [2]int{0, n} would be charged to
	// the heap — and the serial paths below never consult it.
	var bounds []int
	if nshards > 1 {
		bounds = shardBounds(d.At(0), nshards)
	}
	shards := make([]shardState, nshards)
	for s := range shards {
		lo, hi := 0, n
		if bounds != nil {
			lo, hi = bounds[s], bounds[s+1]
		}
		for v := lo; v < hi; v++ {
			views[v].id = v
			views[v].pool = &shards[s].pool
			views[v].notes = &shards[s].notes
		}
	}
	for v := range views {
		views[v].noDelta = opts.NoDeltaDelivery
	}
	if arr != nil {
		// Unbounded runs must not let one burst round pin the arenas'
		// high-water capacity forever; batch runs keep the plain ratchet.
		for s := range shards {
			shards[s].pool.trim = true
		}
	}

	tracer := opts.Tracer
	if tracer != nil {
		tracer.RunStart(n, k, nshards, nodes)
	}
	var atr ArrivalTracer
	if arr != nil && tracer != nil {
		atr, _ = tracer.(ArrivalTracer)
	}

	// Timing: all self-profiling state hangs off one pointer, allocated
	// only when a sink is attached, so the disabled path stays strictly
	// allocation-free. segT is the running segment's start time.
	timer := opts.Timing
	var tst *timingState
	var segT time.Time
	if timer != nil {
		tst = newTimingState(opts.LabelCtx, nshards)
		timer.RunStart(nshards)
	}

	// Self-stabilizing clustering: all protocol state hangs off one
	// pointer, so the oracle-hierarchy path below pays a nil comparison
	// per round and nothing else. The beacon exchange is sharded over the
	// same bounds as delivery, so its per-receiver fault queries stay on
	// the shard that owns the receiver.
	var stb *stabState
	if opts.SelfStabilize != nil {
		stb = newStabState(opts.SelfStabilize, n, nshards)
	}
	var mtr MaintenanceTracer
	if stb != nil && tracer != nil {
		mtr, _ = tracer.(MaintenanceTracer)
	}

	// Stability-window cache: when the dynamic advertises T-interval
	// stable windows (ctvg.Stability), graph, hierarchy and the per-node
	// views are frozen on the window's first round and reused until the
	// window ends — churn or reaffiliation starts a new window, which
	// refetches everything. Rounds inside a window skip At/HierarchyAt and
	// all O(n) view rebuilding. Self-stabilizing runs bypass the cache:
	// the emergent hierarchy may change every round.
	stab, hasStab := d.(ctvg.Stability)
	if opts.NoStabilityCache || stb != nil {
		hasStab = false
	}
	cachedUntil := -1

	// Stall watchdog bookkeeping.
	needDelivered := opts.StallWindow > 0 || (obs != nil && obs.Progress != nil)
	lastDelivered := -1
	stallRun := 0

	// The round phases below are expressed as closures over the loop state
	// (round number, stability freshness, the current graph and hierarchy).
	// They are defined once here rather than inside the loop so the round
	// hot path never allocates for them: every captured variable is boxed
	// once per run, not once per round.
	var g *graph.Graph
	var hier *ctvg.Hierarchy
	var r int
	var fresh bool
	sizeFn := opts.SizeFn

	// The beacon exchange reuses the payload's per-link drop draws: a
	// beacon from u to v in round r is lost exactly when a payload on the
	// same link would be (Injector.Drop is pure in (round, src, dst), so
	// querying it here and again in the deliver fan-out yields one atomic
	// outcome per link per round — the beacon piggybacks on the node's
	// round transmission).
	if stb != nil {
		stbDrop := func(u, v int) bool { return lossy && inj.Drop(r, u, v) }
		stb.runShard = func(s, lo, hi int) { stb.state.Shard(s, lo, hi, stbDrop) }
	}

	// Collect phase: every node decides its transmission from its local
	// view only, then the transmission is charged to the accounting. Nodes
	// are independent, so both steps fan out when Workers > 1 (per-shard
	// accumulators, merged at the barrier). Inside a stable window only the
	// round number changes; role, head and neighbour slice keep the frozen
	// window values.
	collect := func(v int) {
		vw := &views[v]
		vw.Round = r
		if fresh {
			vw.Role = hier.Role[v]
			vw.Head = hier.HeadOf(v)
			vw.Neighbors = g.Neighbors(v)
		}
		if crashed[v] {
			outbox[v] = nil
			return
		}
		outbox[v] = nodes[v].Send(*vw)
	}
	account := func(acc *shardAcc, v int) {
		msg := outbox[v]
		if msg == nil {
			return
		}
		msg.From = v
		cost := int64(msg.Cost())
		acc.messages++
		acc.tokens += cost
		if int(msg.Kind) < NumKinds {
			acc.msgsByKind[msg.Kind]++
			acc.tokensByKind[msg.Kind] += cost
		}
		if sizeFn != nil {
			acc.bytes += int64(sizeFn(msg))
		}
		if role := hier.Role[v]; int(role) < NumRoles {
			acc.msgsByRole[role]++
			acc.tokensByRole[role] += cost
		}
	}
	collectShard := func(s, lo, hi int) {
		acc := &shards[s].acc
		acc.reset()
		for v := lo; v < hi; v++ {
			collect(v)
			account(acc, v)
		}
	}

	// Deliver phase: each node hears its neighbours' messages, ordered by
	// ascending sender ID (Neighbors is sorted); fault injection may drop a
	// delivery or hand it over twice. Messages are read-only from here on,
	// so delivery also fans out — over the same shard partition as collect,
	// so a node delivering through View.NewSet stays on its arena's owning
	// goroutine, and the per-receiver fault queries (whose burst-channel
	// state is keyed by receiver) stay on the shard that owns the receiver.
	deliverShard := func(s, lo, hi int) {
		st := &shards[s]
		for v := lo; v < hi; v++ {
			if crashed[v] {
				continue
			}
			st.inbox = st.inbox[:0]
			for _, u := range views[v].Neighbors {
				msg := outbox[u]
				if msg == nil {
					continue
				}
				if lossy && inj.Drop(r, u, v) {
					st.drops++
					continue
				}
				st.inbox = append(st.inbox, msg)
				if duplicating && inj.Duplicate(r, u, v) {
					st.dups++
					st.inbox = append(st.inbox, msg)
				}
			}
			nodes[v].Deliver(views[v], st.inbox)
			// A node with an empty inbox cannot have learned anything
			// this round, so the tracer only sees non-trivial deliveries.
			if tracer != nil && len(st.inbox) > 0 {
				tracer.Delivered(s, v, &views[v], st.inbox, nodes[v].Tokens())
			}
		}
	}

	// Arrival-mode GC, two sharded passes at the round barrier. Pass 1
	// scans every node once: the pre-GC delivered popcount, the counted
	// population (up, or down but rejoining — the same nodes doneLive
	// counts), and the intersection of counted nodes' token sets. Pass 2,
	// run only when the merged intersection contains live tokens, removes
	// the collected set from every node (crashed ones included: GC is an
	// accounting operation on stable storage) and measures exactly how many
	// pairs it dropped, so the post-GC delivered count is exact even when
	// permanently crashed nodes held part of the collected set. Set
	// intersection and integer addition commute, so merging the shards in
	// order is bit-identical to a serial scan. Both closures are built only
	// in arrival mode, keeping the batch path allocation-identical.
	var arrScan, arrCollect func(s, lo, hi int)
	if arr != nil {
		arrScan = func(s, lo, hi int) {
			st := &shards[s]
			st.interAny = false
			st.preSum, st.cntN, st.cntHeld = 0, 0, 0
			for v := lo; v < hi; v++ {
				tk := nodes[v].Tokens()
				l := tk.Len()
				st.preSum += l
				if crashed[v] && (recoverAt == nil || recoverAt[v] == faults.NoRecovery) {
					continue
				}
				st.cntN++
				st.cntHeld += l
				if !st.interAny {
					st.inter.CopyFrom(tk)
					st.interAny = true
				} else {
					st.inter.IntersectWith(tk)
				}
			}
		}
		arrCollect = func(s, lo, hi int) {
			st := &shards[s]
			removed := 0
			for v := lo; v < hi; v++ {
				pre := nodes[v].Tokens().Len()
				arr.collects[v].Collect(arr.gc)
				removed += pre - nodes[v].Tokens().Len()
			}
			st.removed = removed
		}
	}

	// The fan-out entry points are the raw shard closures when timing is
	// off and timed wrappers (per-shard clock, stage=/shard= pprof labels)
	// when it is on. Wrapping conditionally — instead of capturing a flag
	// inside the hot closures — keeps the timing-off round loop exactly
	// what it was, in both instructions and allocations.
	runCollect, runDeliver := collectShard, deliverShard
	if tst != nil {
		runCollect = tst.wrapShard(StageCollect, tst.collectCtx, collectShard)
		runDeliver = tst.wrapShard(StageDeliver, tst.deliverCtx, deliverShard)
	}

	for r = 0; r < opts.MaxRounds; r++ {
		// Recoveries first: a node whose downtime window ends at r is up
		// for the whole round. Volatile protocol state resets through the
		// Recoverer hook; the token set (stable storage) is retained.
		segT = tst.seg(StageFaults)
		if len(recovering) > 0 {
			eventScratch = eventScratch[:0]
			keep := recovering[:0]
			for _, v := range recovering {
				if recoverAt[v] <= r {
					crashed[v] = false
					recoverAt[v] = faults.NoRecovery
					eventScratch = append(eventScratch, v)
				} else {
					keep = append(keep, v)
				}
			}
			recovering = keep
			sort.Ints(eventScratch)
			for _, v := range eventScratch {
				met.Recoveries++
				if rec, ok := nodes[v].(Recoverer); ok {
					rec.OnRecover(r)
				}
				if obs != nil && obs.Recovered != nil {
					obs.Recovered(r, v)
				}
			}
		}

		// Static crashes, then — once this round's hierarchy is known —
		// head-targeted ones. Both feed one sorted Crashed event batch.
		eventScratch = eventScratch[:0]
		fell := func(v, recAt int) {
			crashed[v] = true
			if recAt != faults.NoRecovery {
				recoverAt[v] = recAt
				recovering = append(recovering, v)
			}
			eventScratch = append(eventScratch, v)
		}
		for i := range crashSchedule {
			ce := &crashSchedule[i]
			if !ce.done && r >= ce.at {
				ce.done = true
				if !crashed[ce.node] {
					fell(ce.node, ce.recoverAt)
				}
			}
		}
		tst.end(StageFaults, segT)
		fresh = r > cachedUntil
		if fresh {
			segT = tst.seg(StageSnapshot)
			g = d.At(r)
			tst.end(StageSnapshot, segT)
			segT = tst.seg(StageHierarchy)
			if stb != nil {
				// One protocol round: every live node beacons, every live
				// node recomputes its role from what it heard. The emergent
				// hierarchy replaces the adversary's for everything below —
				// views, head-targeted crashes, accounting, tracing.
				stb.state.Begin(g, crashed)
				if parallelRun {
					parallel.ForEachBounds(bounds, stb.runShard)
				} else {
					stb.runShard(0, 0, n)
				}
				stb.round = stb.state.Commit()
				hier = stb.state.Hierarchy()
				cachedUntil = r
			} else {
				hier = d.HierarchyAt(r)
				cachedUntil = r
				if hasStab {
					if s := stab.StableUntil(r); s > r {
						cachedUntil = s
					}
				}
			}
			tst.end(StageHierarchy, segT)
		}
		segT = tst.seg(StageFaults)
		if kill, recAt := inj.HeadCrash(r); kill {
			for v := 0; v < n; v++ {
				if !crashed[v] && hier.Role[v] == ctvg.Head {
					fell(v, recAt)
				}
			}
		}
		if len(eventScratch) > 0 {
			sort.Ints(eventScratch)
			if obs != nil && obs.Crashed != nil {
				for _, v := range eventScratch {
					obs.Crashed(r, v)
				}
			}
		}
		tst.end(StageFaults, segT)
		if stb != nil {
			// Validity is judged against the post-crash population, so a
			// head felled this very round already invalidates its members;
			// the convergence watchdog advances here.
			segT = tst.seg(StageHierarchy)
			stb.observe(r, met, crashed)
			tst.end(StageHierarchy, segT)
		}
		segT = tst.seg(StageObserve)
		if obs != nil && obs.RoundStart != nil {
			obs.RoundStart(r, g, hier)
		}
		if stb != nil && obs != nil {
			if obs.Maintenance != nil {
				obs.Maintenance(r, stb.ms)
			}
			if stb.rep != nil && obs.Diverged != nil {
				obs.Diverged(r, stb.rep)
			}
		}
		tst.end(StageObserve, segT)
		segT = tst.seg(StageTracer)
		if tracer != nil {
			tracer.RoundStart(r, hier)
			if mtr != nil {
				mtr.Maintenance(r, stb.ms)
			}
		}
		tst.end(StageTracer, segT)

		// Arrival injection: new tokens reach their target nodes before the
		// round's Send, on the engine goroutine, so serial and parallel runs
		// inject identically. Timed under the faults stage — like crashes
		// and recoveries, arrivals are externally scheduled events.
		if arr != nil {
			segT = tst.seg(StageFaults)
			arr.inject(r, crashed, hier, obs, atr, met)
			tst.end(StageFaults, segT)
		}

		// Collect, then merge the per-shard accumulators in shard order
		// and replay the Sent stream from outbox in ascending sender
		// order — identical for serial and parallel runs.
		segT = tst.seg(StageCollect)
		if parallelRun {
			parallel.ForEachBounds(bounds, runCollect)
		} else {
			runCollect(0, 0, n)
		}
		tst.end(StageCollect, segT)
		segT = tst.seg(StageMerge)
		for s := range shards {
			met.add(&shards[s].acc)
		}
		tst.end(StageMerge, segT)
		segT = tst.seg(StageObserve)
		if obs != nil && obs.Sent != nil {
			for v := 0; v < n; v++ {
				if outbox[v] != nil {
					obs.Sent(r, outbox[v])
				}
			}
		}
		tst.end(StageObserve, segT)

		// Deliver.
		segT = tst.seg(StageDeliver)
		if parallelRun {
			parallel.ForEachBounds(bounds, runDeliver)
		} else {
			runDeliver(0, 0, n)
		}
		tst.end(StageDeliver, segT)

		// Replay the round's buffered repair notes in deterministic
		// order: ascending node ID, per-node emission order preserved
		// (each node lives on exactly one shard, and the sort is stable).
		segT = tst.seg(StageMerge)
		noteScratch = noteScratch[:0]
		for s := range shards {
			noteScratch = append(noteScratch, shards[s].notes...)
			shards[s].notes = shards[s].notes[:0]
		}
		if len(noteScratch) > 0 {
			sort.SliceStable(noteScratch, func(i, j int) bool {
				return noteScratch[i].node < noteScratch[j].node
			})
			for _, nt := range noteScratch {
				switch nt.kind {
				case NoteHandover:
					met.Handovers++
				case NoteFloodFallback:
					met.FloodFallbacks++
				}
				if obs != nil && obs.Noted != nil {
					obs.Noted(r, nt.node, nt.kind)
				}
			}
		}
		tst.end(StageMerge, segT)

		// Round barrier for the tracer: merge its shard buffers in
		// deterministic order and fold the delivery accounting into the run
		// totals before the arenas reclaim this round's messages.
		segT = tst.seg(StageTracer)
		if tracer != nil {
			first, redundant := tracer.RoundEnd(r, crashed)
			met.FirstDeliveries += int64(first)
			met.RedundantDeliveries += int64(redundant)
			if obs != nil && obs.Deliveries != nil {
				obs.Deliveries(r, first, redundant)
			}
		}
		tst.end(StageTracer, segT)

		// Fold the round's link-fault counts into the run totals.
		segT = tst.seg(StageMerge)
		roundDrops, roundDups := 0, 0
		for s := range shards {
			roundDrops += shards[s].drops
			roundDups += shards[s].dups
			shards[s].drops, shards[s].dups = 0, 0
		}
		if roundDrops > 0 || roundDups > 0 {
			met.Drops += int64(roundDrops)
			met.Dups += int64(roundDups)
			if obs != nil && obs.LinkFaults != nil {
				obs.LinkFaults(r, roundDrops, roundDups)
			}
		}
		tst.end(StageMerge, segT)

		segT = tst.seg(StageProgress)
		delivered := 0
		countedN, outstanding := 0, 0
		if arr != nil {
			// Pass 1: scan, then merge the shard intersections in order.
			if parallelRun {
				parallel.ForEachBounds(bounds, arrScan)
			} else {
				arrScan(0, 0, n)
			}
			countedHeld, haveInter := 0, false
			for s := range shards {
				st := &shards[s]
				delivered += st.preSum
				countedN += st.cntN
				countedHeld += st.cntHeld
				if !st.interAny {
					continue
				}
				if !haveInter {
					arr.gc.CopyFrom(&st.inter)
					haveInter = true
				} else {
					arr.gc.IntersectWith(&st.inter)
				}
			}
			if !haveInter {
				arr.gc.Clear()
			}
			arr.gc.IntersectWith(arr.live)
			// Pass 2: collect the fully disseminated tokens and rebase the
			// accounting on the post-GC universe, so Progress and the
			// totals below stay mutually consistent.
			if gcLen := arr.gc.Len(); gcLen > 0 {
				if atr != nil {
					atr.Collected(r, arr.gc)
				}
				if parallelRun {
					parallel.ForEachBounds(bounds, arrCollect)
				} else {
					arrCollect(0, 0, n)
				}
				for s := range shards {
					delivered -= shards[s].removed
				}
				countedHeld -= countedN * gcLen
				arr.gc.Range(func(tok int) bool {
					if obs != nil && obs.Collected != nil {
						obs.Collected(r, tok, arr.seq[tok], arr.born[tok])
					}
					arr.live.Remove(tok)
					arr.free.Add(tok)
					return true
				})
				arr.collected += int64(gcLen)
				met.TokensCollected += int64(gcLen)
			}
			outstanding = countedN*arr.liveCount() - countedHeld
			met.OutstandingTokens = arr.liveCount()
			if obs != nil && obs.Progress != nil {
				obs.Progress(r, delivered)
			}
		} else if needDelivered {
			// The delivered count is a sum of per-node popcounts; integer
			// addition commutes, so the sharded sum below matches the
			// serial one exactly.
			if parallelRun {
				parallel.ForEachBounds(bounds, func(s, lo, hi int) {
					sum := 0
					for v := lo; v < hi; v++ {
						sum += nodes[v].Tokens().Len()
					}
					shards[s].acc.delivered = sum
				})
				for s := range shards {
					delivered += shards[s].acc.delivered
				}
			} else {
				for _, nd := range nodes {
					delivered += nd.Tokens().Len()
				}
			}
			if obs != nil && obs.Progress != nil {
				obs.Progress(r, delivered)
			}
		}

		met.Rounds = r + 1
		if obs != nil && obs.Barrier != nil {
			obs.Barrier(r, met)
		}
		var done bool
		if arr != nil {
			// Steady state is complete when the arrival process can inject
			// nothing more and every token has been collected — which
			// requires at least one counted node, same as doneLive.
			done = countedN > 0 && arr.live.Empty() && arr.exhausted(r+1)
		} else {
			done = doneLive(nodes, crashed, recoverAt, k, workers)
		}
		tst.end(StageProgress, segT)

		// Round barrier: messages and payload sets handed out this round
		// are dead — nothing may retain them — so the arenas take them
		// back for the next round.
		segT = tst.seg(StageRecycle)
		for s := range shards {
			shards[s].pool.recycle()
		}
		tst.end(StageRecycle, segT)

		// Timing barrier: flush exactly one record per executed round —
		// before the done/stall breaks, so truncated runs report their
		// final round too — then restore the caller's pprof labels.
		if tst != nil {
			if timer.SampleArena(r) {
				msgs, sets, setBytes := 0, 0, int64(0)
				for s := range shards {
					m, sc, b := shards[s].pool.stats()
					msgs += m
					sets += sc
					setBytes += b
				}
				timer.Arena(r, msgs, sets, setBytes)
			}
			timer.RoundEnd(r, &tst.wall, tst.shard)
			tst.reset()
			pprof.SetGoroutineLabels(tst.baseCtx)
		}

		if done {
			if !met.Complete {
				met.Complete = true
				met.CompletionRound = r + 1
			}
			if opts.StopWhenComplete {
				break
			}
		}
		if opts.StallWindow > 0 && !met.Complete {
			// A stall is outstanding work with no progress. Under arrivals
			// a flat delivered count is healthy whenever nothing is
			// outstanding (every live pair delivered, the next burst not
			// yet arrived), so idle gaps reset the watchdog instead of
			// tripping it; an all-dead population (countedN == 0) still
			// counts as stalled — nobody is left to make progress.
			healthyIdle := arr != nil && countedN > 0 && outstanding == 0
			if delivered == lastDelivered && !healthyIdle {
				stallRun++
			} else {
				stallRun = 0
				lastDelivered = delivered
			}
			if stallRun >= opts.StallWindow {
				// Total tracks the live token universe: k for batch runs,
				// injected-minus-collected (plus the initial batch) under
				// arrivals.
				total := n * k
				if arr != nil {
					total = n * arr.liveCount()
				}
				rep := stallReport(r, opts.StallWindow, delivered, total, crashed, recoverAt)
				met.Stall = rep
				if obs != nil && obs.Stalled != nil {
					obs.Stalled(r, rep)
				}
				break
			}
		}
		if opts.Stop != nil && opts.Stop(r) {
			break
		}
	}
	return met, nil
}

// MustRun is Run for call sites where a failure is a programming error:
// it panics instead of returning one.
func MustRun(d ctvg.Dynamic, nodes []Node, assign *token.Assignment, opts Options) *Metrics {
	m, err := Run(d, nodes, assign, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// stallReport snapshots the population for the watchdog diagnostic.
func stallReport(r, window, delivered, total int, crashed []bool, recoverAt []int) *StallReport {
	rep := &StallReport{Round: r, Window: window, Delivered: delivered, Total: total}
	for v := range crashed {
		switch {
		case !crashed[v]:
			rep.Live++
		case recoverAt != nil && recoverAt[v] != faults.NoRecovery:
			rep.PendingRecovery++
		default:
			rep.Down++
		}
	}
	return rep
}

// shardAcc is one worker's private slice of the round accounting. The
// serial engine uses a single stack-allocated instance, so the accounting
// path allocates nothing per message in either mode.
type shardAcc struct {
	messages     int64
	tokens       int64
	bytes        int64
	msgsByKind   [NumKinds]int64
	tokensByKind [NumKinds]int64
	msgsByRole   [NumRoles]int64
	tokensByRole [NumRoles]int64
	delivered    int
}

func (a *shardAcc) reset() { *a = shardAcc{} }

// add folds one shard's accounting into the run totals.
func (m *Metrics) add(a *shardAcc) {
	m.Messages += a.messages
	m.TokensSent += a.tokens
	m.BytesSent += a.bytes
	for i := range a.msgsByKind {
		m.MessagesByKind[i] += a.msgsByKind[i]
		m.TokensByKind[i] += a.tokensByKind[i]
	}
	for i := range a.msgsByRole {
		m.MessagesByRole[i] += a.msgsByRole[i]
		m.TokensByRole[i] += a.tokensByRole[i]
	}
}

// crashEntry is one scheduled crash from the static plan, pre-sorted by
// node ID so activation — and the Crashed events it emits — happen in
// deterministic order. done marks entries that already fired, so a node
// that crashed, recovered and stayed up is not felled again by its old
// schedule entry.
type crashEntry struct {
	node, at, recoverAt int
	done                bool
}

// shardBounds cuts [0, n) into nshards contiguous blocks of roughly equal
// cumulative weight, where node v weighs deg(v)+1 in the round-0 graph (the
// +1 keeps isolated nodes from collapsing into one giant block and bounds
// every cut even on an empty graph). The s-th cut is placed at the first
// node where the running weight reaches s/nshards of the total, so heavily
// connected prefixes (a star centre, a dense cluster) get correspondingly
// fewer nodes. Blocks may be empty on extreme skew; callers must still
// visit empty shards (parallel.ForEachBounds does).
//
// The round-0 snapshot is a heuristic for the whole run — recomputing cuts
// per round would move nodes between shards and break the fixed node→arena
// wiring the delivery path relies on.
func shardBounds(g *graph.Graph, nshards int) []int {
	n := g.N()
	bounds := make([]int, nshards+1)
	bounds[nshards] = n
	if nshards <= 1 {
		return bounds
	}
	total := int64(2*g.M() + n)
	var cum int64
	s := 1
	for v := 0; v < n && s < nshards; v++ {
		cum += int64(g.Degree(v) + 1)
		for s < nshards && cum*int64(nshards) >= int64(s)*total {
			bounds[s] = v + 1
			s++
		}
	}
	for ; s < nshards; s++ {
		bounds[s] = n
	}
	return bounds
}

// workersFor resolves Options.Workers for a run over n nodes: at least 1,
// and never more than n — a worker without nodes would be an idle shard
// (and an empty accumulator slot) on every round barrier.
func workersFor(opts Options, n int) int {
	w := opts.Workers
	if w < 1 {
		return 1
	}
	if w > n {
		return n
	}
	return w
}

// doneLive reports whether dissemination is complete: every node that is
// up — or down but scheduled to rejoin, since its token set (stable
// storage) survives the outage — holds all k tokens. Permanently crashed
// nodes are excluded (they can never collect anything), but if no node at
// all is up or rejoining the run cannot be complete: there is nobody left
// to disseminate to. Tokens() may be expensive (network coding decodes),
// so the scan fans out when the run is parallel; each node's Tokens()
// touches only that node's state.
func doneLive(nodes []Node, crashed []bool, recoverAt []int, k, workers int) bool {
	counts := func(v int) bool {
		if !crashed[v] {
			return true
		}
		return recoverAt != nil && recoverAt[v] != faults.NoRecovery
	}
	if workers <= 1 {
		any := false
		for v, nd := range nodes {
			if !counts(v) {
				continue
			}
			any = true
			if nd.Tokens().Len() != k {
				return false
			}
		}
		return any
	}
	var incomplete, considered atomic.Bool
	parallel.ForEachRange(len(nodes), workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if incomplete.Load() {
				return
			}
			if !counts(v) {
				continue
			}
			considered.Store(true)
			if nodes[v].Tokens().Len() != k {
				incomplete.Store(true)
				return
			}
		}
	})
	return considered.Load() && !incomplete.Load()
}

// RunProtocol is the convenience entry point: build fresh nodes from the
// protocol and run them.
func RunProtocol(d ctvg.Dynamic, p Protocol, assign *token.Assignment, opts Options) (*Metrics, error) {
	return Run(d, p.Nodes(assign), assign, opts)
}

// MustRunProtocol is RunProtocol with MustRun's panic-on-error contract.
func MustRunProtocol(d ctvg.Dynamic, p Protocol, assign *token.Assignment, opts Options) *Metrics {
	m, err := RunProtocol(d, p, assign, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// Flat adapts a flat (cluster-free) dynamic network to the ctvg.Dynamic
// interface by reporting every node unaffiliated in every round. Flat
// baselines run on it unchanged.
type Flat struct {
	D tvg.Dynamic

	hier *ctvg.Hierarchy // lazily built, all-unaffiliated
}

// NewFlat wraps a flat dynamic network.
func NewFlat(d tvg.Dynamic) *Flat {
	return &Flat{D: d, hier: ctvg.NewHierarchy(d.N())}
}

// N implements ctvg.Dynamic.
func (f *Flat) N() int { return f.D.N() }

// At implements ctvg.Dynamic.
func (f *Flat) At(r int) *graph.Graph { return f.D.At(r) }

// HierarchyAt implements ctvg.Dynamic.
func (f *Flat) HierarchyAt(r int) *ctvg.Hierarchy { return f.hier }

// StableUntil implements ctvg.Stability by delegation: the all-unaffiliated
// hierarchy never changes, so the wrapper is exactly as stable as the flat
// network underneath (and promises nothing when that network does not
// advertise stability).
func (f *Flat) StableUntil(r int) int {
	if s, ok := f.D.(tvg.Stability); ok {
		return s.StableUntil(r)
	}
	return r
}

var (
	_ ctvg.Dynamic   = (*Flat)(nil)
	_ ctvg.Stability = (*Flat)(nil)
)
