package sim

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// floodNode is a minimal test protocol: broadcast the full token set every
// round and absorb everything heard.
type floodNode struct {
	ta *bitset.Set
}

func (f *floodNode) Send(v View) *Message {
	return &Message{To: NoAddr, Kind: KindBroadcast, Tokens: f.ta.Clone()}
}

func (f *floodNode) Deliver(v View, msgs []*Message) {
	for _, m := range msgs {
		f.ta.UnionWith(m.Tokens)
	}
}

func (f *floodNode) Tokens() *bitset.Set { return f.ta }

type floodProto struct{}

func (floodProto) Name() string { return "test-flood" }

func (floodProto) Nodes(a *token.Assignment) []Node {
	out := make([]Node, a.N())
	for v := range out {
		out[v] = &floodNode{ta: a.Initial[v].Clone()}
	}
	return out
}

// silentNode never transmits; used for negative tests.
type silentNode struct{ ta *bitset.Set }

func (s *silentNode) Send(v View) *Message            { return nil }
func (s *silentNode) Deliver(v View, msgs []*Message) {}
func (s *silentNode) Tokens() *bitset.Set             { return s.ta }

func staticPath(n int) ctvg.Dynamic {
	return NewFlat(tvg.Static{G: graph.Path(n)})
}

func TestFloodCompletesOnPath(t *testing.T) {
	// One token at node 0 of a 6-node path: flooding needs exactly 5
	// rounds to reach node 5.
	d := staticPath(6)
	assign := token.SingleSource(6, 1, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 20, StopWhenComplete: true})
	if !m.Complete {
		t.Fatalf("did not complete: %v", m)
	}
	if m.CompletionRound != 5 {
		t.Fatalf("completion round %d, want 5", m.CompletionRound)
	}
	if m.Rounds != 5 {
		t.Fatalf("rounds %d, want 5 with StopWhenComplete", m.Rounds)
	}
}

func TestRunContinuesWithoutStopWhenComplete(t *testing.T) {
	d := staticPath(3)
	assign := token.SingleSource(3, 1, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 10})
	if m.Rounds != 10 {
		t.Fatalf("rounds %d, want 10", m.Rounds)
	}
	if !m.Complete || m.CompletionRound != 2 {
		t.Fatalf("completion %v@%d", m.Complete, m.CompletionRound)
	}
}

func TestMetricsAccounting(t *testing.T) {
	// 3-node path, 2 tokens at node 0, run exactly 1 round: every node
	// broadcasts its TA. Costs: node0 sends 2 tokens, others send 0.
	d := staticPath(3)
	assign := token.SingleSource(3, 2, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 1})
	if m.Messages != 3 {
		t.Fatalf("messages %d, want 3", m.Messages)
	}
	if m.TokensSent != 2 {
		t.Fatalf("tokens sent %d, want 2", m.TokensSent)
	}
	if m.MessagesByKind[KindBroadcast] != 3 || m.TokensByKind[KindBroadcast] != 2 {
		t.Fatalf("per-kind accounting wrong: %v %v", m.MessagesByKind, m.TokensByKind)
	}
	if m.Complete {
		t.Fatal("cannot be complete after 1 round on a path of diameter 2")
	}
}

func TestPerRoleAccounting(t *testing.T) {
	// Star cluster: head 0 + members 1, 2 all flooding. Per-role totals
	// must attribute one message per node per round to its role.
	g := graph.Star(3, 0)
	h := ctvg.NewHierarchy(3)
	h.SetHead(0)
	h.SetMember(1, 0)
	h.SetMember(2, 0)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(3, 2, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 2})
	if m.MessagesByRole[ctvg.Head] != 2 {
		t.Fatalf("head messages %d, want 2", m.MessagesByRole[ctvg.Head])
	}
	if m.MessagesByRole[ctvg.Member] != 4 {
		t.Fatalf("member messages %d, want 4", m.MessagesByRole[ctvg.Member])
	}
	// Token attribution: round 0 head sends 2 tokens, members send 0;
	// round 1 everyone has both tokens -> head 2, members 4.
	if m.TokensByRole[ctvg.Head] != 4 {
		t.Fatalf("head tokens %d, want 4", m.TokensByRole[ctvg.Head])
	}
	if m.TokensByRole[ctvg.Member] != 4 {
		t.Fatalf("member tokens %d, want 4", m.TokensByRole[ctvg.Member])
	}
}

func TestIncompleteRun(t *testing.T) {
	d := staticPath(4)
	assign := token.SingleSource(4, 1, 0)
	nodes := make([]Node, 4)
	for v := 0; v < 4; v++ {
		nodes[v] = &silentNode{ta: assign.Initial[v].Clone()}
	}
	m := MustRun(d, nodes, assign, Options{MaxRounds: 8})
	if m.Complete || m.CompletionRound != -1 {
		t.Fatalf("silent protocol reported complete: %v", m)
	}
	if m.Messages != 0 || m.TokensSent != 0 {
		t.Fatalf("silent protocol sent messages: %v", m)
	}
}

func TestDeliverOrderAscendingSender(t *testing.T) {
	// Node 1 on a path hears 0 and 2; senders must arrive in order 0, 2.
	g := graph.Path(3)
	d := NewFlat(tvg.Static{G: g})
	assign := token.Spread(3, 3, xrand.New(7))
	var heard []int
	probe := &probeNode{ta: bitset.New(3), onDeliver: func(msgs []*Message) {
		for _, m := range msgs {
			heard = append(heard, m.From)
		}
	}}
	nodes := []Node{
		&floodNode{ta: assign.Initial[0].Clone()},
		probe,
		&floodNode{ta: assign.Initial[2].Clone()},
	}
	MustRun(d, nodes, assign, Options{MaxRounds: 1})
	if len(heard) != 2 || heard[0] != 0 || heard[1] != 2 {
		t.Fatalf("heard %v, want [0 2]", heard)
	}
}

type probeNode struct {
	ta        *bitset.Set
	onDeliver func(msgs []*Message)
}

func (p *probeNode) Send(v View) *Message { return nil }
func (p *probeNode) Deliver(v View, msgs []*Message) {
	p.onDeliver(msgs)
}
func (p *probeNode) Tokens() *bitset.Set { return p.ta }

func TestObserverCalled(t *testing.T) {
	d := staticPath(3)
	assign := token.SingleSource(3, 1, 0)
	starts, sends := 0, 0
	obs := &Observer{
		RoundStart: func(r int, g *graph.Graph, h *ctvg.Hierarchy) { starts++ },
		Sent:       func(r int, msg *Message) { sends++ },
	}
	MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 2, Observer: obs})
	if starts != 2 {
		t.Fatalf("RoundStart calls %d", starts)
	}
	if sends != 6 { // 3 nodes x 2 rounds
		t.Fatalf("Sent calls %d", sends)
	}
}

func TestViewReflectsHierarchy(t *testing.T) {
	// Build a clustered dynamic and verify nodes see their role and head.
	g := graph.Star(3, 0)
	h := ctvg.NewHierarchy(3)
	h.SetHead(0)
	h.SetMember(1, 0)
	h.SetMember(2, 0)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})

	assign := token.SingleSource(3, 1, 0)
	var got []View
	nodes := make([]Node, 3)
	for v := 0; v < 3; v++ {
		nodes[v] = &viewProbe{ta: assign.Initial[v].Clone(), sink: &got}
	}
	MustRun(d, nodes, assign, Options{MaxRounds: 1})
	if len(got) != 3 {
		t.Fatalf("views %v", got)
	}
	if got[0].Role != ctvg.Head || got[0].Head != 0 {
		t.Fatalf("head view %v", got[0])
	}
	if got[1].Role != ctvg.Member || got[1].Head != 0 {
		t.Fatalf("member view %v", got[1])
	}
}

type viewProbe struct {
	ta   *bitset.Set
	sink *[]View
}

func (p *viewProbe) Send(v View) *Message {
	*p.sink = append(*p.sink, v)
	return nil
}
func (p *viewProbe) Deliver(v View, msgs []*Message) {}
func (p *viewProbe) Tokens() *bitset.Set             { return p.ta }

func TestRunValidation(t *testing.T) {
	d := staticPath(3)
	assign := token.SingleSource(3, 1, 0)
	t.Run("wrong node count", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		MustRun(d, []Node{&silentNode{ta: bitset.New(1)}}, assign, Options{MaxRounds: 1})
	})
	t.Run("zero rounds", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		MustRunProtocol(d, floodProto{}, assign, Options{})
	})
}

func TestFlatAdapter(t *testing.T) {
	f := NewFlat(tvg.Static{G: graph.Ring(4)})
	if f.N() != 4 {
		t.Fatalf("N=%d", f.N())
	}
	h := f.HierarchyAt(5)
	for v := 0; v < 4; v++ {
		if h.Role[v] != ctvg.Unaffiliated {
			t.Fatal("flat hierarchy not unaffiliated")
		}
	}
	if f.At(0).M() != 4 {
		t.Fatal("At wrong")
	}
}

func TestMessageCost(t *testing.T) {
	if (&Message{}).Cost() != 0 {
		t.Fatal("nil payload cost not 0")
	}
	m := &Message{Tokens: bitset.FromSlice([]int{1, 5, 9})}
	if m.Cost() != 3 {
		t.Fatalf("cost %d", m.Cost())
	}
	coded := &Message{Tokens: bitset.FromSlice([]int{1, 5, 9}), Units: 1}
	if coded.Cost() != 1 {
		t.Fatalf("Units override failed: cost %d", coded.Cost())
	}
}

func TestKindString(t *testing.T) {
	if KindBroadcast.String() != "broadcast" || KindUpload.String() != "upload" || KindRelay.String() != "relay" {
		t.Fatal("kind strings wrong")
	}
	if KindCoded.String() != "coded" {
		t.Fatal("coded kind string wrong")
	}
	if MsgKind(9).String() != "kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestMetricsString(t *testing.T) {
	m := &Metrics{Rounds: 3, Messages: 5, TokensSent: 7, Complete: true, CompletionRound: 3}
	if m.String() != "rounds=3 msgs=5 tokens=7 complete@3" {
		t.Fatalf("got %q", m.String())
	}
	m2 := &Metrics{Rounds: 3, CompletionRound: -1}
	if m2.String() != "rounds=3 msgs=0 tokens=0 incomplete" {
		t.Fatalf("got %q", m2.String())
	}
	// Byte-level accounting (Options.SizeFn runs) must show up.
	m3 := &Metrics{Rounds: 2, Messages: 4, TokensSent: 6, BytesSent: 512, CompletionRound: -1}
	if m3.String() != "rounds=2 msgs=4 tokens=6 bytes=512 incomplete" {
		t.Fatalf("got %q", m3.String())
	}
}

func TestCrashedEventsSortedAndDeterministic(t *testing.T) {
	// CrashAt is a map; activation must nevertheless emit Crashed events
	// in ascending node order within a round, every run.
	for i := 0; i < 20; i++ {
		d := staticPath(8)
		assign := token.SingleSource(8, 1, 0)
		var got [][2]int
		obs := &Observer{Crashed: func(r, v int) { got = append(got, [2]int{r, v}) }}
		MustRunProtocol(d, floodProto{}, assign, Options{
			MaxRounds: 5,
			Observer:  obs,
			Faults:    &Faults{CrashAt: map[int]int{7: 2, 3: 0, 5: 0, 6: 9}},
		})
		want := [][2]int{{0, 3}, {0, 5}, {2, 7}} // node 6 crashes beyond MaxRounds
		if len(got) != len(want) {
			t.Fatalf("crash events %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("crash events %v, want %v", got, want)
			}
		}
	}
}

func BenchmarkEngineFlood(b *testing.B) {
	d := staticPath(100)
	assign := token.SingleSource(100, 8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 99, StopWhenComplete: true})
	}
}
