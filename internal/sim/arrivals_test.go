package sim_test

// Engine-level tests for steady-state arrival mode: configuration
// validation, the Injector/Collectible contract, drain-and-GC accounting,
// bounded slot reuse, burst/hotspot shaping, deterministic replay,
// serial-vs-parallel equivalence, and the two progress-accounting
// regressions this mode exposed (the quiet-gap stall false positive and the
// hardcoded n·k stall total). It lives in sim_test because it drives the
// real protocols from internal/baseline and internal/core.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// staticDyn wraps a single snapshot as a (repeating) clustered dynamic.
func staticDyn(g *graph.Graph, h *ctvg.Hierarchy) ctvg.Dynamic {
	if h == nil {
		return sim.NewFlat(tvg.Static{G: g})
	}
	return ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
}

// arrEvent is one observer callback rendered to a comparable string.
type arrEvent struct {
	r, v, tok int
	seq       int64
	born      int
	collected bool
}

// arrLog captures the arrival-mode observer stream for assertions.
type arrLog struct {
	arrived   []arrEvent
	collected []arrEvent
}

func (l *arrLog) observer() *sim.Observer {
	return &sim.Observer{
		Arrived: func(r, v, tok int, seq int64) {
			l.arrived = append(l.arrived, arrEvent{r: r, v: v, tok: tok, seq: seq})
		},
		Collected: func(r, tok int, seq int64, born int) {
			l.collected = append(l.collected, arrEvent{r: r, tok: tok, seq: seq, born: born, collected: true})
		},
	}
}

func TestArrivalsValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  sim.Arrivals
		want string
	}{
		{"zero-rate", sim.Arrivals{Rate: 0}, "Rate"},
		{"negative-rate", sim.Arrivals{Rate: -1}, "Rate"},
		{"on-without-off", sim.Arrivals{Rate: 1, OnRounds: 2}, "OnRounds"},
		{"off-without-on", sim.Arrivals{Rate: 1, OffRounds: 2}, "OnRounds"},
		{"negative-start", sim.Arrivals{Rate: 1, Start: -1}, "Start"},
		{"stop-before-start", sim.Arrivals{Rate: 1, Start: 5, Stop: 5}, "Stop"},
		{"negative-cap", sim.Arrivals{Rate: 1, MaxTokens: -1}, "MaxTokens"},
		{"hotspot-out-of-range", sim.Arrivals{Rate: 1, Hotspot: true, HotspotNode: 9}, "HotspotNode"},
	}
	d := staticDyn(graph.Path(4), nil)
	assign := token.SingleSource(4, 1, 0)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			_, err := sim.RunProtocol(d, baseline.Flood{}, assign, sim.Options{
				MaxRounds: 10, Arrivals: &cfg,
			})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error mentioning %q, got %v", tc.want, err)
			}
		})
	}
}

// plainNode deliberately implements neither Injector nor Collectible.
type plainNode struct{ ta *bitset.Set }

func (n *plainNode) Send(v sim.View) *sim.Message            { return nil }
func (n *plainNode) Deliver(v sim.View, msgs []*sim.Message) {}
func (n *plainNode) Tokens() *bitset.Set                     { return n.ta }

func TestArrivalsRequireSupport(t *testing.T) {
	d := staticDyn(graph.Path(3), nil)
	assign := token.SingleSource(3, 1, 0)
	nodes := []sim.Node{
		&plainNode{ta: assign.Initial[0].Clone()},
		&plainNode{ta: assign.Initial[1].Clone()},
		&plainNode{ta: assign.Initial[2].Clone()},
	}
	_, err := sim.Run(d, nodes, assign, sim.Options{
		MaxRounds: 10,
		Arrivals:  &sim.Arrivals{Rate: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "Injector") {
		t.Fatalf("want Injector/Collectible error, got %v", err)
	}
}

// TestArrivalsDrainAndGC is the core steady-state contract: with a bounded
// arrival window the run completes, every injected token (plus the initial
// batch) is garbage-collected exactly once, the observer sees every
// injection and collection, and collection latency respects the network
// diameter.
func TestArrivalsDrainAndGC(t *testing.T) {
	const n, k = 8, 2
	d := staticDyn(graph.Path(n), nil)
	var log arrLog
	met := sim.MustRunProtocol(d, baseline.Flood{}, token.SingleSource(n, k, 0), sim.Options{
		MaxRounds:        300,
		StopWhenComplete: true,
		StallWindow:      50,
		Observer:         log.observer(),
		Arrivals:         &sim.Arrivals{Rate: 1, Seed: 7, Stop: 40},
	})
	if !met.Complete {
		t.Fatalf("run did not complete: %v", met)
	}
	if met.TokensInjected == 0 {
		t.Fatal("no tokens injected over 40 rounds at rate 1")
	}
	if want := met.TokensInjected + k; met.TokensCollected != want {
		t.Errorf("TokensCollected = %d, want injected+batch = %d", met.TokensCollected, want)
	}
	if met.OutstandingTokens != 0 {
		t.Errorf("OutstandingTokens = %d after a drained run", met.OutstandingTokens)
	}
	if got := int64(len(log.arrived)); got != met.TokensInjected {
		t.Errorf("observer saw %d arrivals, metrics say %d", got, met.TokensInjected)
	}
	if got := int64(len(log.collected)); got != met.TokensCollected {
		t.Errorf("observer saw %d collections, metrics say %d", got, met.TokensCollected)
	}
	// Sequence numbers: arrivals are globally ordered starting after the
	// initial batch, and every arrival's sequence is eventually collected.
	seqs := map[int64]bool{}
	for i, e := range log.arrived {
		if e.seq != int64(k+i) {
			t.Fatalf("arrival %d has sequence %d, want %d", i, e.seq, k+i)
		}
		seqs[e.seq] = true
	}
	for s := int64(0); s < int64(k); s++ {
		seqs[s] = true // initial batch
	}
	for _, e := range log.collected {
		if !seqs[e.seq] {
			t.Errorf("collected unknown sequence %d", e.seq)
		}
		delete(seqs, e.seq)
		// Full-set flooding covers distance d in d rounds and the farthest
		// node on path(8) is at least 4 hops from any injection point, so a
		// token is never collectable in the round it arrives.
		if lat := e.r - e.born; lat < 3 {
			t.Errorf("token seq %d collected with latency %d on a diameter-7 path", e.seq, lat)
		}
	}
	if len(seqs) != 0 {
		t.Errorf("%d sequences never collected: %v", len(seqs), seqs)
	}
}

// TestArrivalsBoundedSlots proves the GC actually bounds state: over a long
// run on a fast-draining network the slot universe (and with it every
// bitset in the system) stays near the peak queue depth, far below the
// total injected count, and freed slots are reused for later generations.
func TestArrivalsBoundedSlots(t *testing.T) {
	const n = 4
	d := staticDyn(graph.Path(n), nil)
	var log arrLog
	met := sim.MustRunProtocol(d, baseline.Flood{}, token.SingleSource(n, 1, 0), sim.Options{
		MaxRounds:        400,
		StopWhenComplete: true,
		StallWindow:      50,
		Observer:         log.observer(),
		Arrivals:         &sim.Arrivals{Rate: 2, Seed: 11, Stop: 200},
	})
	if !met.Complete || met.TokensInjected < 200 {
		t.Fatalf("want a completed run with >=200 arrivals, got complete=%v injected=%d",
			met.Complete, met.TokensInjected)
	}
	maxSlot := 0
	gens := map[int]map[int64]bool{}
	for _, e := range log.arrived {
		if e.tok > maxSlot {
			maxSlot = e.tok
		}
		if gens[e.tok] == nil {
			gens[e.tok] = map[int64]bool{}
		}
		gens[e.tok][e.seq] = true
	}
	// A path(4) drains every token within 3 rounds, so the slot universe
	// should stay around Rate * drain-time, nowhere near 200+.
	if maxSlot >= 64 {
		t.Errorf("slot universe grew to %d for %d injections — GC is not recycling slots",
			maxSlot+1, met.TokensInjected)
	}
	if met.PeakOutstanding >= 64 {
		t.Errorf("PeakOutstanding = %d, want bounded queue depth", met.PeakOutstanding)
	}
	reused := 0
	for _, g := range gens {
		if len(g) > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Error("no slot hosted more than one token generation over 400+ arrivals")
	}
}

func TestArrivalsMaxTokens(t *testing.T) {
	d := staticDyn(graph.Path(4), nil)
	met := sim.MustRunProtocol(d, baseline.Flood{}, token.SingleSource(4, 1, 0), sim.Options{
		MaxRounds:        200,
		StopWhenComplete: true,
		Arrivals:         &sim.Arrivals{Rate: 10, Seed: 1, MaxTokens: 5},
	})
	if met.TokensInjected != 5 {
		t.Errorf("TokensInjected = %d, want exactly MaxTokens = 5", met.TokensInjected)
	}
	if !met.Complete {
		t.Errorf("run did not complete after exhausting MaxTokens: %v", met)
	}
}

// TestArrivalsBurstWindows pins the on/off shaping: every injection falls
// inside [Start, Stop) and within the OnRounds part of each burst period.
func TestArrivalsBurstWindows(t *testing.T) {
	d := staticDyn(graph.Path(4), nil)
	var log arrLog
	met := sim.MustRunProtocol(d, baseline.Flood{}, token.SingleSource(4, 1, 0), sim.Options{
		MaxRounds:        200,
		StopWhenComplete: true,
		Observer:         log.observer(),
		Arrivals: &sim.Arrivals{
			Rate: 5, Seed: 3,
			OnRounds: 2, OffRounds: 3,
			Start: 5, Stop: 20,
		},
	})
	if met.TokensInjected == 0 {
		t.Fatal("no arrivals despite rate 5 across six on-rounds")
	}
	for _, e := range log.arrived {
		if e.r < 5 || e.r >= 20 {
			t.Errorf("arrival at round %d outside window [5, 20)", e.r)
		}
		if (e.r-5)%5 >= 2 {
			t.Errorf("arrival at round %d falls in an off-window", e.r)
		}
	}
}

// TestArrivalsHotspot pins cluster-targeted injection: with Hotspot aimed
// at a member, every arrival lands on that member's cluster (head
// included), never on the other cluster.
func TestArrivalsHotspot(t *testing.T) {
	// Two star clusters bridged at their heads: {0: head, 1, 2} and
	// {3: head, 4, 5}.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(3, 5)
	g.AddEdge(0, 3)
	h := ctvg.NewHierarchy(6)
	h.SetHead(0)
	h.SetMember(1, 0)
	h.SetMember(2, 0)
	h.SetHead(3)
	h.SetMember(4, 3)
	h.SetMember(5, 3)
	d := staticDyn(g, h)
	var log arrLog
	met := sim.MustRunProtocol(d, baseline.Flood{}, token.SingleSource(6, 1, 0), sim.Options{
		MaxRounds:        200,
		StopWhenComplete: true,
		Observer:         log.observer(),
		Arrivals: &sim.Arrivals{
			Rate: 2, Seed: 9, Stop: 30,
			Hotspot: true, HotspotNode: 1,
		},
	})
	if met.TokensInjected == 0 {
		t.Fatal("no arrivals at rate 2 over 30 rounds")
	}
	for _, e := range log.arrived {
		if e.v > 2 {
			t.Errorf("hotspot arrival landed on node %d outside cluster {0,1,2}", e.v)
		}
	}
}

// TestArrivalsPureLoad runs with an empty initial assignment (K = 0): all
// traffic enters through the arrival process.
func TestArrivalsPureLoad(t *testing.T) {
	const n = 5
	d := staticDyn(graph.Path(n), nil)
	assign := token.Empty(n)
	if err := assign.Validate(); err != nil {
		t.Fatalf("empty assignment must validate: %v", err)
	}
	met := sim.MustRunProtocol(d, baseline.Flood{}, assign, sim.Options{
		MaxRounds:        300,
		StopWhenComplete: true,
		StallWindow:      50,
		Arrivals:         &sim.Arrivals{Rate: 1, Seed: 5, Stop: 50},
	})
	if !met.Complete {
		t.Fatalf("pure-arrival run did not complete: %v", met)
	}
	if met.TokensCollected != met.TokensInjected || met.TokensInjected == 0 {
		t.Errorf("collected %d of %d injected", met.TokensCollected, met.TokensInjected)
	}
}

// TestStallWatchdogQuietGap is the regression test for the watchdog false
// positive: a quiet arrival gap longer than StallWindow — zero outstanding
// work, flat delivered count — must not be reported as a stall. Before the
// fix the watchdog treated any flat delivered count as a stall and killed
// the run mid-gap.
func TestStallWatchdogQuietGap(t *testing.T) {
	d := staticDyn(graph.Path(3), nil)
	met := sim.MustRunProtocol(d, baseline.Flood{}, token.SingleSource(3, 1, 0), sim.Options{
		MaxRounds:        200,
		StopWhenComplete: true,
		StallWindow:      10, // much shorter than the 40-round quiet gap
		Arrivals: &sim.Arrivals{
			Rate: 4, Seed: 3,
			OnRounds: 1, OffRounds: 40, // bursts at rounds 0 and 41 only
			Stop: 42,
		},
	})
	if met.Stall != nil {
		t.Fatalf("watchdog fired during a healthy idle gap: %v", met.Stall)
	}
	if !met.Complete {
		t.Fatalf("run did not complete: %v", met)
	}
	if met.Rounds <= 40 {
		t.Fatalf("run ended at round %d, before the second burst — gap not exercised", met.Rounds)
	}
}

// TestStallWatchdogStillFires proves the quiet-gap fix did not neuter the
// watchdog: with outstanding work that cannot progress (an isolated node
// that can never receive the tokens) the run must still stall, and — the
// second regression — the report's Total must track the live token
// universe (n · outstanding), not the hardcoded initial n·k.
func TestStallWatchdogStillFires(t *testing.T) {
	// Nodes 0 and 1 are connected; node 2 is isolated and unreachable.
	g := graph.New(3)
	g.AddEdge(0, 1)
	d := staticDyn(g, nil)
	met := sim.MustRunProtocol(d, baseline.Flood{}, token.SingleSource(3, 1, 0), sim.Options{
		MaxRounds:   100,
		StallWindow: 8,
		Arrivals: &sim.Arrivals{
			Rate: 8, Seed: 1, Stop: 1, // one burst at round 0, then nothing
		},
	})
	if met.Stall == nil {
		t.Fatalf("no stall despite an unreachable node: %v", met)
	}
	if met.TokensInjected == 0 {
		t.Fatal("want at least one arrival at rate 8 (P(0) ~ 3e-4)")
	}
	liveTok := 1 + int(met.TokensInjected) // nothing ever collected
	if met.TokensCollected != 0 {
		t.Fatalf("collected %d tokens with an isolated node", met.TokensCollected)
	}
	if want := 3 * liveTok; met.Stall.Total != want {
		t.Errorf("StallReport.Total = %d, want n*live = %d (pre-fix code reported n*k = 3)",
			met.Stall.Total, want)
	}
	if met.OutstandingTokens != liveTok {
		t.Errorf("OutstandingTokens = %d, want %d", met.OutstandingTokens, liveTok)
	}
}

// runArrival executes one arrival-mode run against a recorded HiNet trace
// with crashes and recoveries, capturing metrics and the full observer
// stream rendered to strings.
func runArrival(t *testing.T, trace ctvg.Dynamic, proto sim.Protocol, assign *token.Assignment, rounds, workers int, arr sim.Arrivals) (*sim.Metrics, []string) {
	t.Helper()
	var events []string
	ev := func(format string, args ...any) {
		events = append(events, fmt.Sprintf(format, args...))
	}
	obs := &sim.Observer{
		RoundStart: func(r int, g *graph.Graph, h *ctvg.Hierarchy) { ev("start %d", r) },
		Sent:       func(r int, m *sim.Message) { ev("sent %d %d %d %d %d", r, m.From, m.To, int(m.Kind), m.Tokens.Len()) },
		Progress:   func(r, delivered int) { ev("progress %d %d", r, delivered) },
		Crashed:    func(r, v int) { ev("crash %d %d", r, v) },
		Recovered:  func(r, v int) { ev("recover %d %d", r, v) },
		Arrived:    func(r, v, tok int, seq int64) { ev("arrive %d %d %d %d", r, v, tok, seq) },
		Collected:  func(r, tok int, seq int64, born int) { ev("collect %d %d %d %d", r, tok, seq, born) },
		Stalled:    func(r int, rep *sim.StallReport) { ev("stall %d %s", r, rep) },
	}
	met, err := sim.RunProtocol(trace, proto, assign, sim.Options{
		MaxRounds:        rounds,
		StopWhenComplete: true,
		StallWindow:      64,
		Observer:         obs,
		Workers:          workers,
		Arrivals:         &arr,
		Faults: &sim.Faults{
			CrashAt:      map[int]int{3: 2, 11: 5},
			RecoverAfter: map[int]int{3: 7},
		},
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return met, events
}

// TestArrivalsSerialParallelIdentical is the determinism contract under
// load: an arrival-mode run over a churning HiNet trace with crashes and
// recoveries produces identical metrics and a bit-identical observer
// stream whether it executes serially or on 4 workers — and replays
// identically from the same seed.
func TestArrivalsSerialParallelIdentical(t *testing.T) {
	const n, k = 40, 4
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: 8, L: 2, T: 12,
		Reaffiliations: 4, HeadChurn: 1,
	}, xrand.New(5))
	trace := ctvg.Record(adv, 160)
	assign := token.Spread(n, k, xrand.New(6))
	arr := sim.Arrivals{Rate: 1.5, Seed: 21, Stop: 100}

	for _, proto := range []sim.Protocol{
		baseline.Flood{},
		core.Alg2{Failover: &core.Failover{Window: 2}},
	} {
		t.Run(proto.Name(), func(t *testing.T) {
			refMet, refEvents := runArrival(t, trace, proto, assign, 160, 1, arr)
			if refMet.TokensInjected == 0 {
				t.Fatal("reference run injected nothing")
			}
			for _, workers := range []int{2, 4} {
				met, events := runArrival(t, trace, proto, assign, 160, workers, arr)
				if !reflect.DeepEqual(met, refMet) {
					t.Errorf("workers=%d: metrics diverge:\n  got  %+v\n  want %+v", workers, met, refMet)
				}
				if !reflect.DeepEqual(events, refEvents) {
					for i := range events {
						if i >= len(refEvents) || events[i] != refEvents[i] {
							t.Fatalf("workers=%d: observer stream diverges at event %d: %q vs %q",
								workers, i, events[i], refEvents[i])
						}
					}
					t.Fatalf("workers=%d: observer stream diverges in length: %d vs %d",
						workers, len(events), len(refEvents))
				}
			}
			// Replay: same seed, same everything.
			met2, events2 := runArrival(t, trace, proto, assign, 160, 1, arr)
			if !reflect.DeepEqual(met2, refMet) || !reflect.DeepEqual(events2, refEvents) {
				t.Error("replay with identical seed diverged")
			}
		})
	}
}
