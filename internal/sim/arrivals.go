package sim

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/xrand"
)

// Arrivals configures steady-state token traffic: instead of disseminating
// only the assignment's fixed k-token batch, the engine injects new tokens
// as the run proceeds — a Poisson process, optionally modulated into bursty
// on/off windows and optionally concentrated on one cluster — and
// garbage-collects tokens once every live node holds them, so per-node
// bitsets, delivered accounting and pooled arenas stay bounded over
// unbounded runs.
//
// Token identity under GC: tokens occupy *slots* in the shared bitset
// universe. A collected token's slot is returned to a free list and reused
// by a later arrival (smallest free slot first), so the live universe never
// grows past the peak number of concurrently outstanding tokens. Streams
// that must tell generations apart (observer events, provenance records)
// carry the token's arrival sequence number alongside its slot.
//
// All randomness is counter-based — pure in (seed, round, draw index) — so
// an arrival-mode run is bit-identical whether it executes serially or on
// Workers goroutines, and replays exactly from the same seed.
type Arrivals struct {
	// Rate is the expected number of token arrivals per active round
	// (Poisson distributed). Required, > 0.
	Rate float64
	// Seed drives the counter-based arrival randomness (draw counts, target
	// nodes). Runs with equal seeds and configs inject identically.
	Seed uint64
	// OnRounds / OffRounds, when positive, modulate the process into bursts:
	// arrivals occur at Rate for OnRounds rounds, then pause for OffRounds,
	// repeating. Both zero means a steady process; setting exactly one of
	// them is a configuration error.
	OnRounds  int
	OffRounds int
	// Hotspot, when true, concentrates every arrival on the cluster that
	// contains node HotspotNode at injection time (its members, gateways and
	// head). Rounds where that cluster is entirely down, or where the node
	// is unaffiliated, inject into the node itself if it is up, and skip the
	// arrival otherwise.
	Hotspot     bool
	HotspotNode int
	// Start / Stop bound the arrival window: arrivals begin at round Start
	// (default 0) and cease at round Stop. Stop <= 0 means the process never
	// stops — the run then ends only at MaxRounds (or a stall).
	Start int
	Stop  int
	// MaxTokens, when positive, caps the total number of injected tokens;
	// the process stops early once the cap is reached.
	MaxTokens int
}

// Validate checks the configuration against a network of n nodes. A nil
// receiver (arrivals disabled) is valid.
func (a *Arrivals) Validate(n int) error {
	if a == nil {
		return nil
	}
	return a.validate(n)
}

// validate checks the configuration against a network of n nodes.
func (a *Arrivals) validate(n int) error {
	if !(a.Rate > 0) || math.IsInf(a.Rate, 0) {
		return fmt.Errorf("sim: Arrivals.Rate must be positive and finite (got %v)", a.Rate)
	}
	if (a.OnRounds > 0) != (a.OffRounds > 0) {
		return fmt.Errorf("sim: Arrivals.OnRounds and OffRounds must be set together (got %d/%d)", a.OnRounds, a.OffRounds)
	}
	if a.OnRounds < 0 || a.OffRounds < 0 {
		return fmt.Errorf("sim: Arrivals burst windows must be non-negative (got %d/%d)", a.OnRounds, a.OffRounds)
	}
	if a.Start < 0 {
		return fmt.Errorf("sim: Arrivals.Start must be non-negative (got %d)", a.Start)
	}
	if a.Stop > 0 && a.Stop <= a.Start {
		return fmt.Errorf("sim: Arrivals.Stop (%d) must exceed Start (%d)", a.Stop, a.Start)
	}
	if a.MaxTokens < 0 {
		return fmt.Errorf("sim: Arrivals.MaxTokens must be non-negative (got %d)", a.MaxTokens)
	}
	if a.Hotspot && (a.HotspotNode < 0 || a.HotspotNode >= n) {
		return fmt.Errorf("sim: Arrivals.HotspotNode %d outside [0, %d)", a.HotspotNode, n)
	}
	return nil
}

// Injector is implemented by protocol nodes that accept dynamically
// arriving tokens: Inject hands node state one token (by slot) that arrived
// at the node in round r, before the round's Send. The node must add it to
// its collected set and treat it like any other token it originated — in
// particular, versioned senders must bump their content stamp, and upload
// protocols must (re-)schedule the token for upload. Arrival-mode runs
// require every node to implement Injector and Collectible.
type Injector interface {
	Inject(r, tok int)
}

// Collectible is implemented by protocol nodes that support token
// garbage-collection: Collect removes the slots in gc from every token set
// the node holds — the collected set and any protocol bookkeeping keyed by
// token (sent-sets, received-sets), so a reused slot starts from a clean
// slate. The engine calls it at the round barrier, on every node including
// crashed ones (GC is an engine-level accounting operation on stable
// storage, not a protocol step), with the same gc set for all nodes.
//
// Delta-aware senders need not bump their content stamp here: the engine
// removes gc from every node and every in-flight payload died at the same
// barrier, so a receiver's absorbed-(sender, version) claims stay sound —
// both sides shrank by exactly gc. (A later re-arrival on a reused slot is
// safe too: the injection itself bumps the version.)
type Collectible interface {
	Collect(gc *bitset.Set)
}

// Purpose constants separate the counter-based random streams of the
// arrival process.
const (
	arrStreamCount  = 0xa121 // per-round Poisson draw
	arrStreamTarget = 0xa122 // per-arrival target-node choice
)

// arrState is the engine's bookkeeping for one arrival-mode run. All of it
// hangs off a single pointer in the round loop, so arrivals-off runs pay
// one nil comparison and allocate nothing.
type arrState struct {
	cfg Arrivals
	n   int
	k   int // initial batch size; arrival sequence numbers start here

	// live holds the slots of outstanding (injected, not yet collected)
	// tokens; free holds previously used slots available for reuse. next is
	// the first never-used slot.
	live *bitset.Set
	free *bitset.Set
	next int

	// born[s] / seq[s] are the injection round and global arrival sequence
	// number of the token currently occupying slot s (the initial batch is
	// born at round 0 with sequence 0..k-1).
	born []int
	seq  []int64

	injected  int64 // arrivals injected (excluding the initial batch)
	collected int64 // tokens garbage-collected

	// cand is the per-round injection candidate scratch; gc and inter are
	// the round's GC result and intersection scratch.
	cand  []int
	gc    *bitset.Set
	inter *bitset.Set

	injectors []Injector
	collects  []Collectible
}

// newArrState builds the arrival bookkeeping for a run of n nodes whose
// initial batch is k tokens (slots 0..k-1, all live).
func newArrState(cfg *Arrivals, n, k int, nodes []Node) (*arrState, error) {
	a := &arrState{
		cfg:       *cfg,
		n:         n,
		k:         k,
		live:      bitset.New(k),
		free:      bitset.New(k),
		next:      k,
		born:      make([]int, k),
		seq:       make([]int64, k),
		gc:        bitset.New(k),
		inter:     bitset.New(k),
		injectors: make([]Injector, n),
		collects:  make([]Collectible, n),
	}
	for s := 0; s < k; s++ {
		a.live.Add(s)
		a.seq[s] = int64(s)
	}
	for v, nd := range nodes {
		inj, okI := nd.(Injector)
		col, okC := nd.(Collectible)
		if !okI || !okC {
			return nil, fmt.Errorf("sim: Arrivals requires every node to implement Injector and Collectible; node %d (%T) does not", v, nd)
		}
		a.injectors[v] = inj
		a.collects[v] = col
	}
	return a, nil
}

// active reports whether round r lies in the arrival window (ignoring the
// MaxTokens cap).
func (a *arrState) active(r int) bool {
	if r < a.cfg.Start || (a.cfg.Stop > 0 && r >= a.cfg.Stop) {
		return false
	}
	if a.cfg.OnRounds > 0 {
		if (r-a.cfg.Start)%(a.cfg.OnRounds+a.cfg.OffRounds) >= a.cfg.OnRounds {
			return false
		}
	}
	return true
}

// exhausted reports whether no arrival can occur at round r or later.
func (a *arrState) exhausted(r int) bool {
	if a.cfg.MaxTokens > 0 && a.injected >= int64(a.cfg.MaxTokens) {
		return true
	}
	return a.cfg.Stop > 0 && r >= a.cfg.Stop
}

// count draws the round's arrival count: Poisson(Rate) via Knuth's
// product-of-uniforms method on the counter-based stream, clamped by the
// MaxTokens budget. Rates above 30 are split into independent chunks so the
// running product cannot underflow into a pathological loop.
func (a *arrState) count(r int) int {
	if !a.active(r) {
		return 0
	}
	k := 0
	rate := a.cfg.Rate
	for chunk := 0; rate > 0; chunk++ {
		lam := rate
		if lam > 30 {
			lam = 30
		}
		rate -= lam
		threshold := math.Exp(-lam)
		p := 1.0
		for i := 0; ; i++ {
			p *= xrand.HashFloat64(a.cfg.Seed^arrStreamCount, uint64(r), uint64(chunk), uint64(i))
			if p <= threshold {
				break
			}
			k++
		}
	}
	if a.cfg.MaxTokens > 0 {
		if budget := int(int64(a.cfg.MaxTokens) - a.injected); k > budget {
			k = budget
		}
	}
	return k
}

// targets rebuilds the round's injection candidate list: live nodes, and
// under Hotspot only those in HotspotNode's current cluster (head included;
// an unaffiliated hotspot node stands alone).
func (a *arrState) targets(crashed []bool, hier *ctvg.Hierarchy) []int {
	a.cand = a.cand[:0]
	if a.cfg.Hotspot {
		hot := hier.HeadOf(a.cfg.HotspotNode)
		for v := 0; v < a.n; v++ {
			if crashed[v] {
				continue
			}
			if v == a.cfg.HotspotNode || (hot != ctvg.NoCluster && (hier.HeadOf(v) == hot || v == hot)) {
				a.cand = append(a.cand, v)
			}
		}
		return a.cand
	}
	for v := 0; v < a.n; v++ {
		if !crashed[v] {
			a.cand = append(a.cand, v)
		}
	}
	return a.cand
}

// alloc takes a token slot: the smallest free slot if any, else a brand-new
// one. Smallest-first reuse keeps the slot universe — and with it every
// bitset word in the system — bounded by the peak number of concurrently
// outstanding tokens.
func (a *arrState) alloc() int {
	if !a.free.Empty() {
		s := a.free.Min()
		a.free.Remove(s)
		return s
	}
	s := a.next
	a.next++
	a.born = append(a.born, 0)
	a.seq = append(a.seq, 0)
	return s
}

// liveCount is the number of outstanding tokens (initial batch included).
func (a *arrState) liveCount() int { return a.live.Len() }

// inject runs one round of the arrival process on the engine goroutine:
// draw the round's Poisson count, pick a target per arrival from the live
// candidates, hand the token to the node (before the round's Send), and
// notify the tracer and observer in arrival-sequence order. Rounds outside
// the window, past the MaxTokens budget, or with no live candidate inject
// nothing (the draw is consumed either way, so later rounds are unaffected).
func (a *arrState) inject(r int, crashed []bool, hier *ctvg.Hierarchy, obs *Observer, atr ArrivalTracer, met *Metrics) {
	count := a.count(r)
	if count == 0 {
		return
	}
	cand := a.targets(crashed, hier)
	if len(cand) == 0 {
		return
	}
	for i := 0; i < count; i++ {
		v := cand[xrand.Hash(a.cfg.Seed^arrStreamTarget, uint64(r), uint64(i), 0)%uint64(len(cand))]
		s := a.alloc()
		a.born[s] = r
		seq := int64(a.k) + a.injected
		a.seq[s] = seq
		a.live.Add(s)
		a.injected++
		met.TokensInjected++
		a.injectors[v].Inject(r, s)
		if atr != nil {
			atr.Injected(r, v, s, seq)
		}
		if obs != nil && obs.Arrived != nil {
			obs.Arrived(r, v, s, seq)
		}
	}
	if l := a.live.Len(); l > met.PeakOutstanding {
		met.PeakOutstanding = l
	}
}
