package sim

import "repro/internal/bitset"

// msgPool is a per-shard arena of Message structs and payload bitsets. The
// engine hands one pool to every node of a shard (through View.NewMessage /
// View.NewSet) and recycles it at the round barrier: handed-out objects stay
// valid for exactly the round they were produced in — long enough for
// accounting, observers and delivery — and are reused wholesale afterwards,
// so steady-state rounds allocate nothing.
//
// Each pool is owned by the shard goroutine that executes its nodes' Send
// and Deliver calls (the collect and deliver phases use the same contiguous
// partition), so no locking is needed.
type msgPool struct {
	msgs []*Message
	sets []*bitset.Set
	// used* mark the arena high-water of the current round.
	usedMsgs int
	usedSets int
	// trim enables the steady-state decay policy (see recycle). The engine
	// sets it only for arrivals-mode runs; batch runs keep the plain ratchet
	// so the hot path stays branch-for-branch identical to earlier records.
	trim bool
	// lowRounds counts consecutive recycles with both arenas under a quarter
	// of their capacity; peak* track the high-water usage inside the streak.
	lowRounds int
	peakMsgs  int
	peakSets  int
}

// trimAfter is how many consecutive quiet rounds (usage under ¼ of
// capacity) the pool tolerates before shrinking the arenas. Long enough
// that phase-periodic traffic (uploads every T rounds) never thrashes,
// short enough that one burst round stops pinning peak memory for the rest
// of an unbounded run.
const trimAfter = 64

// trimFloor is the arena length below which trimming is never attempted;
// a few dozen objects are noise.
const trimFloor = 32

// message returns a zeroed Message valid until the end of the round.
func (p *msgPool) message() *Message {
	if p.usedMsgs == len(p.msgs) {
		p.msgs = append(p.msgs, new(Message))
	}
	m := p.msgs[p.usedMsgs]
	p.usedMsgs++
	*m = Message{}
	return m
}

// set returns an empty bitset valid until the end of the round, retaining
// whatever word capacity it accumulated in earlier rounds.
func (p *msgPool) set() *bitset.Set {
	if p.usedSets == len(p.sets) {
		p.sets = append(p.sets, new(bitset.Set))
	}
	s := p.sets[p.usedSets]
	p.usedSets++
	s.Clear()
	return s
}

// recycle returns every handed-out object to the arena. Called by the
// engine at the round barrier, after delivery and observation are done.
//
// Without trimming the arena ratchets: one burst round pins its high-water
// capacity (and every pooled bitset's word storage) for the rest of the
// run — fine for finite batch runs, a leak for unbounded steady-state ones.
// With trim set, a streak of trimAfter recycles in which both arenas stayed
// under ¼ of capacity shrinks them to twice the streak's peak usage, with
// fresh backing arrays so the old Messages and their payload words become
// collectable.
func (p *msgPool) recycle() {
	if p.trim {
		if p.usedMsgs > p.peakMsgs {
			p.peakMsgs = p.usedMsgs
		}
		if p.usedSets > p.peakSets {
			p.peakSets = p.usedSets
		}
		if (len(p.msgs) > trimFloor || len(p.sets) > trimFloor) &&
			p.usedMsgs*4 <= len(p.msgs) && p.usedSets*4 <= len(p.sets) {
			if p.lowRounds++; p.lowRounds >= trimAfter {
				p.shrink()
			}
		} else {
			p.lowRounds, p.peakMsgs, p.peakSets = 0, 0, 0
		}
	}
	p.usedMsgs, p.usedSets = 0, 0
}

// shrink reallocates both arenas at twice the recent peak (floor trimFloor),
// dropping the excess objects and their backing arrays.
func (p *msgPool) shrink() {
	keep := func(n, peak int) int {
		want := 2 * peak
		if want < trimFloor {
			want = trimFloor
		}
		if want > n {
			want = n
		}
		return want
	}
	if n := keep(len(p.msgs), p.peakMsgs); n < len(p.msgs) {
		p.msgs = append(make([]*Message, 0, n), p.msgs[:n]...)
	}
	if n := keep(len(p.sets), p.peakSets); n < len(p.sets) {
		p.sets = append(make([]*bitset.Set, 0, n), p.sets[:n]...)
	}
	p.lowRounds, p.peakMsgs, p.peakSets = 0, 0, 0
}

// stats reports the arena's retained footprint — pooled messages, pooled
// payload sets, and the bitset word storage (in bytes) those sets hold on
// to across rounds — for the timing layer's resource gauges. The engine
// samples it at the round barrier, after recycle, so it measures the
// high-water capacity the arena keeps, not the current round's usage.
func (p *msgPool) stats() (msgs, sets int, setBytes int64) {
	msgs, sets = len(p.msgs), len(p.sets)
	for _, s := range p.sets {
		setBytes += 8 * int64(cap(s.Words()))
	}
	return msgs, sets, setBytes
}

// shardState bundles everything one worker shard owns across rounds: its
// accounting accumulator, its message/set arena, its reusable inbox
// scratch, its link-fault counters and its View.Note buffer. The serial
// engine uses a single shard.
type shardState struct {
	acc   shardAcc
	pool  msgPool
	inbox []*Message
	// drops / dups count this round's injected link faults for the
	// receivers the shard owns; the engine folds and zeroes them at the
	// round barrier.
	drops int
	dups  int
	// notes buffers the shard's View.Note emissions for the round; the
	// engine merges, replays and truncates it at the round barrier.
	notes []note
	// Arrival-mode GC scratch (see the barrier in Run): inter accumulates
	// the shard's intersection of counted nodes' token sets (interAny marks
	// it meaningful), preSum / cntN / cntHeld are the shard's pre-GC
	// delivered popcount and counted-node stats, and removed counts the
	// (node, token) pairs the shard's Collect pass dropped.
	inter    bitset.Set
	interAny bool
	preSum   int
	cntN     int
	cntHeld  int
	removed  int
}
