package sim

import "repro/internal/bitset"

// msgPool is a per-shard arena of Message structs and payload bitsets. The
// engine hands one pool to every node of a shard (through View.NewMessage /
// View.NewSet) and recycles it at the round barrier: handed-out objects stay
// valid for exactly the round they were produced in — long enough for
// accounting, observers and delivery — and are reused wholesale afterwards,
// so steady-state rounds allocate nothing.
//
// Each pool is owned by the shard goroutine that executes its nodes' Send
// and Deliver calls (the collect and deliver phases use the same contiguous
// partition), so no locking is needed.
type msgPool struct {
	msgs []*Message
	sets []*bitset.Set
	// used* mark the arena high-water of the current round.
	usedMsgs int
	usedSets int
}

// message returns a zeroed Message valid until the end of the round.
func (p *msgPool) message() *Message {
	if p.usedMsgs == len(p.msgs) {
		p.msgs = append(p.msgs, new(Message))
	}
	m := p.msgs[p.usedMsgs]
	p.usedMsgs++
	*m = Message{}
	return m
}

// set returns an empty bitset valid until the end of the round, retaining
// whatever word capacity it accumulated in earlier rounds.
func (p *msgPool) set() *bitset.Set {
	if p.usedSets == len(p.sets) {
		p.sets = append(p.sets, new(bitset.Set))
	}
	s := p.sets[p.usedSets]
	p.usedSets++
	s.Clear()
	return s
}

// recycle returns every handed-out object to the arena. Called by the
// engine at the round barrier, after delivery and observation are done.
func (p *msgPool) recycle() {
	p.usedMsgs, p.usedSets = 0, 0
}

// stats reports the arena's retained footprint — pooled messages, pooled
// payload sets, and the bitset word storage (in bytes) those sets hold on
// to across rounds — for the timing layer's resource gauges. The engine
// samples it at the round barrier, after recycle, so it measures the
// high-water capacity the arena keeps, not the current round's usage.
func (p *msgPool) stats() (msgs, sets int, setBytes int64) {
	msgs, sets = len(p.msgs), len(p.sets)
	for _, s := range p.sets {
		setBytes += 8 * int64(cap(s.Words()))
	}
	return msgs, sets, setBytes
}

// shardState bundles everything one worker shard owns across rounds: its
// accounting accumulator, its message/set arena, its reusable inbox
// scratch, its link-fault counters and its View.Note buffer. The serial
// engine uses a single shard.
type shardState struct {
	acc   shardAcc
	pool  msgPool
	inbox []*Message
	// drops / dups count this round's injected link faults for the
	// receivers the shard owns; the engine folds and zeroes them at the
	// round barrier.
	drops int
	dups  int
	// notes buffers the shard's View.Note emissions for the round; the
	// engine merges, replays and truncates it at the round barrier.
	notes []note
}
