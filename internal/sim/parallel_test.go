package sim

import (
	"testing"

	"repro/internal/token"
)

func TestParallelMatchesSerial(t *testing.T) {
	// Bit-identical metrics and final token sets between serial and
	// 4-worker execution.
	d := staticPath(40)
	assign := token.SingleSource(40, 6, 0)

	serialNodes := floodProto{}.Nodes(assign)
	serial := Run(d, serialNodes, assign, Options{MaxRounds: 39})

	parNodes := floodProto{}.Nodes(assign)
	par := Run(d, parNodes, assign, Options{MaxRounds: 39, Workers: 4})

	if serial.TokensSent != par.TokensSent || serial.Messages != par.Messages {
		t.Fatalf("cost mismatch: serial %v vs parallel %v", serial, par)
	}
	if serial.CompletionRound != par.CompletionRound {
		t.Fatalf("completion mismatch: %d vs %d", serial.CompletionRound, par.CompletionRound)
	}
	for v := range serialNodes {
		if !serialNodes[v].Tokens().Equal(parNodes[v].Tokens()) {
			t.Fatalf("node %d final state differs", v)
		}
	}
}

func TestParallelWithCrashFaults(t *testing.T) {
	d := staticPath(10)
	assign := token.SingleSource(10, 1, 0)
	m := RunProtocol(d, floodProto{}, assign, Options{
		MaxRounds: 30,
		Workers:   4,
		Faults:    &Faults{CrashAt: map[int]int{9: 0}},
	})
	if !m.Complete {
		t.Fatalf("parallel run with crash incomplete: %v", m)
	}
}

func TestParallelRejectsObserver(t *testing.T) {
	d := staticPath(3)
	assign := token.SingleSource(3, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunProtocol(d, floodProto{}, assign, Options{
		MaxRounds: 2, Workers: 4, Observer: &Observer{},
	})
}

func TestParallelRejectsDropProb(t *testing.T) {
	d := staticPath(3)
	assign := token.SingleSource(3, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunProtocol(d, floodProto{}, assign, Options{
		MaxRounds: 2, Workers: 4, Faults: &Faults{DropProb: 0.5},
	})
}

// The two engine benchmarks document the parallelism granularity rule:
// flooding on a path does ~150ns of work per node-round, far below the
// goroutine fan-out cost, so Workers > 1 LOSES here. Protocols with heavy
// per-node steps (GF(2) decoding — see internal/netcode's
// BenchmarkCodedSerial/Parallel) win. Choose Workers accordingly.
func BenchmarkEngineSerial1000(b *testing.B) {
	d := staticPath(1000)
	assign := token.SingleSource(1000, 8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunProtocol(d, floodProto{}, assign, Options{MaxRounds: 50})
	}
}

func BenchmarkEngineParallel1000(b *testing.B) {
	d := staticPath(1000)
	assign := token.SingleSource(1000, 8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunProtocol(d, floodProto{}, assign, Options{MaxRounds: 50, Workers: 4})
	}
}
