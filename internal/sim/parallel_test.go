package sim

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/token"
	"repro/internal/tvg"
)

func TestParallelMatchesSerial(t *testing.T) {
	// Bit-identical metrics and final token sets between serial and
	// 4-worker execution.
	d := staticPath(40)
	assign := token.SingleSource(40, 6, 0)

	serialNodes := floodProto{}.Nodes(assign)
	serial := MustRun(d, serialNodes, assign, Options{MaxRounds: 39})

	parNodes := floodProto{}.Nodes(assign)
	par := MustRun(d, parNodes, assign, Options{MaxRounds: 39, Workers: 4})

	if serial.TokensSent != par.TokensSent || serial.Messages != par.Messages {
		t.Fatalf("cost mismatch: serial %v vs parallel %v", serial, par)
	}
	if serial.CompletionRound != par.CompletionRound {
		t.Fatalf("completion mismatch: %d vs %d", serial.CompletionRound, par.CompletionRound)
	}
	for v := range serialNodes {
		if !serialNodes[v].Tokens().Equal(parNodes[v].Tokens()) {
			t.Fatalf("node %d final state differs", v)
		}
	}
}

func TestParallelWithCrashFaults(t *testing.T) {
	d := staticPath(10)
	assign := token.SingleSource(10, 1, 0)
	m := MustRunProtocol(d, floodProto{}, assign, Options{
		MaxRounds: 30,
		Workers:   4,
		Faults:    &Faults{CrashAt: map[int]int{9: 0}},
	})
	if !m.Complete {
		t.Fatalf("parallel run with crash incomplete: %v", m)
	}
}

// recordedEvent flattens one observer callback for stream comparison.
type recordedEvent struct {
	round, from, to int
	kind            MsgKind
	cost            int
	delivered       int // -1 for Sent events
}

// recordRun executes a run with a recording observer and returns the
// flattened event stream (Sent and Progress interleaved in arrival order).
func recordRun(workers int) ([]recordedEvent, *Metrics) {
	d := staticPath(40)
	assign := token.SingleSource(40, 6, 0)
	var events []recordedEvent
	obs := &Observer{
		Sent: func(r int, m *Message) {
			events = append(events, recordedEvent{round: r, from: m.From, to: m.To, kind: m.Kind, cost: m.Cost(), delivered: -1})
		},
		Progress: func(r, delivered int) {
			events = append(events, recordedEvent{round: r, from: -1, delivered: delivered})
		},
	}
	met := MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 39, Observer: obs, Workers: workers})
	return events, met
}

func TestParallelObserverMatchesSerial(t *testing.T) {
	// Workers > 1 with a non-nil observer no longer panics, and the merged
	// event stream is identical to the serial engine's on the same seed.
	serial, smet := recordRun(0)
	par, pmet := recordRun(4)
	if smet.String() != pmet.String() {
		t.Fatalf("metrics diverge: %v vs %v", smet, pmet)
	}
	if len(serial) != len(par) {
		t.Fatalf("event counts diverge: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("event %d diverges: serial %+v parallel %+v", i, serial[i], par[i])
		}
	}
}

func TestSentEventsAscendingRoundSender(t *testing.T) {
	for _, workers := range []int{0, 4} {
		events, _ := recordRun(workers)
		lastRound, lastFrom := -1, -1
		for _, e := range events {
			if e.delivered >= 0 {
				continue // Progress event
			}
			if e.round < lastRound || (e.round == lastRound && e.from <= lastFrom) {
				t.Fatalf("workers=%d: Sent order violated at (round=%d, from=%d) after (%d, %d)",
					workers, e.round, e.from, lastRound, lastFrom)
			}
			if e.round > lastRound {
				lastFrom = -1
			}
			lastRound, lastFrom = e.round, e.from
		}
	}
}

func TestProgressMonotonic(t *testing.T) {
	for _, workers := range []int{0, 4} {
		events, _ := recordRun(workers)
		prev, seen := -1, 0
		for _, e := range events {
			if e.delivered < 0 {
				continue
			}
			if e.delivered < prev {
				t.Fatalf("workers=%d: progress regressed from %d to %d", workers, prev, e.delivered)
			}
			prev = e.delivered
			seen++
		}
		if seen != 39 {
			t.Fatalf("workers=%d: %d progress events, want 39", workers, seen)
		}
	}
}

// recordStarRun is recordRun on a hub-and-spokes star: the degenerate input
// for the degree-aware shard partition. Node 0 touches every edge, so
// cutting by cumulative degree puts the hub (nearly) alone in shard 0 and
// may leave trailing shards empty — the merged event stream must still be
// the serial one bit for bit.
func recordStarRun(workers int) ([]recordedEvent, *Metrics) {
	d := NewFlat(tvg.Static{G: graph.Star(41, 0)})
	assign := token.SingleSource(41, 6, 3) // source on a leaf: traffic crosses the hub
	var events []recordedEvent
	obs := &Observer{
		Sent: func(r int, m *Message) {
			events = append(events, recordedEvent{round: r, from: m.From, to: m.To, kind: m.Kind, cost: m.Cost(), delivered: -1})
		},
		Progress: func(r, delivered int) {
			events = append(events, recordedEvent{round: r, from: -1, delivered: delivered})
		},
	}
	met := MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 6, Observer: obs, Workers: workers})
	return events, met
}

func TestParallelStarMatchesSerial(t *testing.T) {
	serial, smet := recordStarRun(0)
	par, pmet := recordStarRun(4)
	if smet.String() != pmet.String() {
		t.Fatalf("metrics diverge: %v vs %v", smet, pmet)
	}
	if !smet.Complete {
		t.Fatal("star flood incomplete; test is vacuous")
	}
	if len(serial) != len(par) {
		t.Fatalf("event counts diverge: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("event %d diverges: serial %+v parallel %+v", i, serial[i], par[i])
		}
	}
}

func TestShardBoundsDegreeAware(t *testing.T) {
	check := func(name string, g *graph.Graph, nshards int) []int {
		t.Helper()
		b := shardBounds(g, nshards)
		if len(b) != nshards+1 || b[0] != 0 || b[nshards] != g.N() {
			t.Fatalf("%s: malformed bounds %v", name, b)
		}
		for s := 0; s < nshards; s++ {
			if b[s] > b[s+1] {
				t.Fatalf("%s: bounds not non-decreasing: %v", name, b)
			}
		}
		return b
	}

	// Star: the hub carries weight ~n of a total ~2n, so shard 0 must stop
	// right after it instead of taking the first n/4 nodes.
	star := check("star", graph.Star(100, 0), 4)
	if star[1] != 1 {
		t.Errorf("star: shard 0 covers [0, %d), want the hub alone", star[1])
	}

	// Ring: uniform degree, so degree-aware cuts collapse to (near-)equal
	// node counts.
	ring := check("ring", graph.Ring(100), 4)
	for s := 0; s < 4; s++ {
		if sz := ring[s+1] - ring[s]; sz < 24 || sz > 26 {
			t.Errorf("ring: shard %d has %d nodes, want ~25 (bounds %v)", s, sz, ring)
		}
	}

	// One shard: trivially the whole range.
	check("one-shard", graph.Path(10), 1)
}

// recordFaultyRun is recordRun under a lossy, crashing, recovering fault
// plan: counter-based fault randomness is a pure function of
// (seed, round, src, dst), so the stream must not depend on Workers.
func recordFaultyRun(workers int) ([]recordedEvent, *Metrics) {
	d := staticPath(40)
	assign := token.SingleSource(40, 6, 0)
	var events []recordedEvent
	obs := &Observer{
		Sent: func(r int, m *Message) {
			events = append(events, recordedEvent{round: r, from: m.From, to: m.To, kind: m.Kind, cost: m.Cost(), delivered: -1})
		},
		Progress: func(r, delivered int) {
			events = append(events, recordedEvent{round: r, from: -1, delivered: delivered})
		},
	}
	met := MustRunProtocol(d, floodProto{}, assign, Options{
		MaxRounds: 80, Observer: obs, Workers: workers,
		Faults: &Faults{
			Seed:         7,
			DropProb:     0.1,
			CrashAt:      map[int]int{5: 3, 20: 10},
			RecoverAfter: map[int]int{5: 8},
		},
	})
	return events, met
}

func TestParallelDropsMatchSerial(t *testing.T) {
	// DropProb > 0 no longer forces serial execution: fault randomness is
	// drawn from a counter-based RNG, so a 4-worker run must replay the
	// exact serial event stream, drop for drop.
	serial, smet := recordFaultyRun(0)
	par, pmet := recordFaultyRun(4)
	if smet.String() != pmet.String() {
		t.Fatalf("metrics diverge: %v vs %v", smet, pmet)
	}
	if smet.Drops == 0 {
		t.Fatal("fault plan injected no drops; test is vacuous")
	}
	if smet.Drops != pmet.Drops || smet.Recoveries != pmet.Recoveries {
		t.Fatalf("fault counters diverge: drops %d/%d recoveries %d/%d",
			smet.Drops, pmet.Drops, smet.Recoveries, pmet.Recoveries)
	}
	if len(serial) != len(par) {
		t.Fatalf("event counts diverge: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("event %d diverges: serial %+v parallel %+v", i, serial[i], par[i])
		}
	}
}

func TestRunRejectsInvalidPlan(t *testing.T) {
	d := staticPath(3)
	assign := token.SingleSource(3, 1, 0)
	_, err := RunProtocol(d, floodProto{}, assign, Options{
		MaxRounds: 2, Faults: &Faults{CrashAt: map[int]int{99: 0}},
	})
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
	if want := "CrashAt names node 99"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

// The two engine benchmarks document the parallelism granularity rule:
// flooding on a path does ~150ns of work per node-round, far below the
// goroutine fan-out cost, so Workers > 1 LOSES here. Protocols with heavy
// per-node steps (GF(2) decoding — see internal/netcode's
// BenchmarkCodedSerial/Parallel) win. Choose Workers accordingly.
func BenchmarkEngineSerial1000(b *testing.B) {
	d := staticPath(1000)
	assign := token.SingleSource(1000, 8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 50})
	}
}

func BenchmarkEngineParallel1000(b *testing.B) {
	d := staticPath(1000)
	assign := token.SingleSource(1000, 8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustRunProtocol(d, floodProto{}, assign, Options{MaxRounds: 50, Workers: 4})
	}
}
