package sim

import (
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/token"
)

func TestWorkersForClamp(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 5, 1},  // unset → serial
		{-3, 5, 1}, // nonsense → serial
		{1, 5, 1},
		{4, 5, 4},
		{5, 5, 5},
		{8, 5, 5},  // more workers than nodes → clamp to n
		{64, 1, 1}, // single node never parallelises
		{16, 16, 16},
	}
	for _, c := range cases {
		if got := workersFor(Options{Workers: c.workers}, c.n); got != c.want {
			t.Errorf("workersFor(Workers=%d, n=%d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestWorkersExceedingNodes(t *testing.T) {
	// Regression: Workers larger than the node count used to be passed to
	// the shard partition unclamped. The run must behave exactly like the
	// serial one.
	d := staticPath(3)
	assign := token.SingleSource(3, 1, 0)
	opts := Options{MaxRounds: 6}
	want := MustRunProtocol(d, floodProto{}, assign, opts)
	opts.Workers = 64
	got := MustRunProtocol(d, floodProto{}, assign, opts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Workers=64 over 3 nodes diverges from serial:\n  got  %+v\n  want %+v", got, want)
	}
	if !got.Complete {
		t.Fatal("clamped run did not complete")
	}
}

// arenaFlood is floodNode rebuilt on the View arena: payloads come from
// NewSet/NewMessage and die at the round barrier, like the real protocols.
type arenaFlood struct{ ta *bitset.Set }

func (f *arenaFlood) Send(v View) *Message {
	payload := v.NewSet()
	payload.CopyFrom(f.ta)
	m := v.NewMessage()
	m.To = NoAddr
	m.Kind = KindBroadcast
	m.Tokens = payload
	return m
}

func (f *arenaFlood) Deliver(v View, msgs []*Message) {
	for _, m := range msgs {
		f.ta.UnionWith(m.Tokens)
	}
}

func (f *arenaFlood) Tokens() *bitset.Set { return f.ta }

func TestRunHotPathAllocFree(t *testing.T) {
	// The arena makes the steady-state round loop allocation-free: across a
	// 200-round run over 50 broadcasting nodes, an engine without pooling
	// would allocate at least rounds·n message+payload pairs (20 000). With
	// pooling, everything after the first round's arena warm-up comes from
	// recycled storage, so the whole run must stay well under one allocation
	// per (node, round).
	const n, rounds = 50, 200
	assign := token.SingleSource(n, 4, 0)
	for t1 := 1; t1 < 4; t1++ {
		assign.Initial[0].Add(t1)
	}
	d := staticPath(n)
	nodes := make([]Node, n)
	for v := range nodes {
		nodes[v] = &arenaFlood{ta: assign.Initial[v].Clone()}
	}
	avg := testing.AllocsPerRun(5, func() {
		MustRun(d, nodes, assign, Options{MaxRounds: rounds})
	})
	if avg > 2000 {
		t.Fatalf("Run allocated %.0f times over %d rounds x %d nodes; the arena is not recycling", avg, rounds, n)
	}
}
