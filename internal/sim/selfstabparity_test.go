package sim_test

// Determinism regression for the self-stabilizing clustering protocol:
// with SelfStabilize on, a full fault plan active, and BOTH telemetry
// sinks attached (obs collector and provenance tracer), a parallel run
// must be indistinguishable from the serial run — identical Metrics and
// byte-identical JSONL on both streams. Under `go test -race` this also
// proves the per-shard maintenance stats, the double-buffered cluster
// state, and the beacon/drop piggyback are race-free.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// runSelfStabPlan executes resilient Algorithm 1 on a churning HiNet with
// the emergent hierarchy maintained by the clustering protocol, under
// every fault class at once, and returns metrics plus both raw JSONL
// streams. The adversary is rebuilt per call so each run replays the
// same dynamics.
func runSelfStabPlan(t *testing.T, workers int) (*sim.Metrics, []byte, []byte) {
	t.Helper()
	const n, k, T, theta, L = 60, 6, 10, 8, 2
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: T,
		Reaffiliations: 4, ChurnEdges: 6,
	}, xrand.New(3))
	assign := token.Spread(n, k, xrand.New(4))

	var obsSink, provSink bytes.Buffer
	col := obs.NewCollector(obs.Config{N: n, K: k, PhaseLen: T, Sink: &obsSink})
	tracer := provenance.New(provenance.Config{Sink: &provSink})
	met, err := sim.RunProtocol(adv, core.Alg1{T: T, Failover: &core.Failover{Window: 3}}, assign, sim.Options{
		MaxRounds:     30 * T,
		Observer:      col.Observer(),
		Tracer:        tracer,
		Workers:       workers,
		StallWindow:   10 * T,
		SelfStabilize: &sim.SelfStabilize{Watchdog: T},
		Faults: &sim.Faults{
			Seed:              11,
			DropProb:          0.05,
			Burst:             &faults.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.4, DropBad: 0.8},
			DupProb:           0.02,
			CrashAt:           map[int]int{7: 5, 19: 12},
			RecoverAfter:      map[int]int{7: 9},
			HeadCrashRounds:   []int{15},
			HeadCrashDowntime: 8,
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := col.Flush(); err != nil {
		t.Fatalf("collector: %v", err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatalf("tracer: %v", err)
	}
	return met, obsSink.Bytes(), provSink.Bytes()
}

func TestSelfStabParallelByteIdentical(t *testing.T) {
	ref, refObs, refProv := runSelfStabPlan(t, 1)
	if len(refObs) == 0 || len(refProv) == 0 {
		t.Fatal("reference run produced no telemetry")
	}
	// The plan must actually exercise the repair machinery, or the
	// parity claim is vacuous.
	if ref.Elections == 0 || ref.MaintenanceBeacons == 0 {
		t.Fatalf("selfstab under-exercised: elections=%d beacons=%d",
			ref.Elections, ref.MaintenanceBeacons)
	}
	if ref.Drops == 0 || ref.Dups == 0 || ref.Recoveries == 0 {
		t.Fatalf("fault plan under-exercised: drops=%d dups=%d recoveries=%d",
			ref.Drops, ref.Dups, ref.Recoveries)
	}
	if !bytes.Contains(refProv, []byte(`{"t":"maint"`)) {
		t.Fatal("provenance stream carries no maintenance records")
	}
	for _, workers := range []int{2, 4} {
		met, obsJSON, provJSON := runSelfStabPlan(t, workers)
		if !reflect.DeepEqual(met, ref) {
			t.Errorf("workers=%d: metrics diverge:\n  got  %+v\n  want %+v", workers, met, ref)
		}
		if !bytes.Equal(obsJSON, refObs) {
			t.Errorf("workers=%d: observer JSONL diverges from serial run (%d vs %d bytes)",
				workers, len(obsJSON), len(refObs))
		}
		if !bytes.Equal(provJSON, refProv) {
			t.Errorf("workers=%d: provenance JSONL diverges from serial run (%d vs %d bytes)",
				workers, len(provJSON), len(refProv))
		}
	}
}
