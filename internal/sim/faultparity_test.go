package sim_test

// Satellite regression for the fault subsystem: under a full fault plan —
// i.i.d. drops, Gilbert–Elliott bursty loss, duplication, crash-recovery
// and head-targeted crashes — a 4-worker run must be indistinguishable
// from the serial run: identical Metrics and a byte-identical JSONL
// observer stream. Under `go test -race` this also proves the fault path
// (counter-based RNG, per-shard burst state, note buffering) is race-free.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// runFullFaultPlan executes the resilient Algorithm 1 on a churning HiNet
// under every fault class at once and returns metrics plus the raw JSONL.
// The adversary is rebuilt per call so each run replays the same dynamics.
func runFullFaultPlan(t *testing.T, workers int) (*sim.Metrics, []byte) {
	t.Helper()
	const n, k, T, theta, L = 60, 6, 10, 8, 2
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: T,
		Reaffiliations: 4, ChurnEdges: 6,
	}, xrand.New(3))
	assign := token.Spread(n, k, xrand.New(4))

	var sink bytes.Buffer
	col := obs.NewCollector(obs.Config{N: n, K: k, PhaseLen: T, Sink: &sink})
	met, err := sim.RunProtocol(adv, core.Alg1{T: T, Failover: &core.Failover{Window: 3}}, assign, sim.Options{
		MaxRounds:   20 * T,
		Observer:    col.Observer(),
		Workers:     workers,
		StallWindow: 6 * T,
		Faults: &sim.Faults{
			Seed:              11,
			DropProb:          0.05,
			Burst:             &faults.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.4, DropBad: 0.8},
			DupProb:           0.02,
			CrashAt:           map[int]int{7: 5, 19: 12},
			RecoverAfter:      map[int]int{7: 9},
			HeadCrashRounds:   []int{15},
			HeadCrashDowntime: 8,
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := col.Flush(); err != nil {
		t.Fatalf("collector: %v", err)
	}
	return met, sink.Bytes()
}

func TestFaultPlanParallelByteIdentical(t *testing.T) {
	ref, refJSON := runFullFaultPlan(t, 1)
	if len(refJSON) == 0 {
		t.Fatal("reference run produced no events")
	}
	// The plan must actually exercise every fault class, or the parity
	// claim is vacuous.
	if ref.Drops == 0 || ref.Dups == 0 || ref.Recoveries == 0 {
		t.Fatalf("fault plan under-exercised: drops=%d dups=%d recoveries=%d",
			ref.Drops, ref.Dups, ref.Recoveries)
	}
	for _, workers := range []int{2, 4} {
		met, jsonl := runFullFaultPlan(t, workers)
		if !reflect.DeepEqual(met, ref) {
			t.Errorf("workers=%d: metrics diverge:\n  got  %+v\n  want %+v", workers, met, ref)
		}
		if !bytes.Equal(jsonl, refJSON) {
			t.Errorf("workers=%d: JSONL stream diverges from serial run (%d vs %d bytes)",
				workers, len(jsonl), len(refJSON))
		}
	}
}
