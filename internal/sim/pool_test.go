package sim

import "testing"

// poolRound simulates one engine round taking n messages (each with a
// payload set) from the pool and recycling at the barrier.
func poolRound(p *msgPool, n int) {
	for i := 0; i < n; i++ {
		m := p.message()
		m.Tokens = p.set()
	}
	p.recycle()
}

// TestMsgPoolTrimDecay is the regression test for the arena ratchet: one
// burst round used to pin the high-water capacity for the rest of the run.
// With the steady-state trim enabled, a long streak of quiet rounds must
// shrink the arenas back toward the quiet working set.
func TestMsgPoolTrimDecay(t *testing.T) {
	p := &msgPool{trim: true}
	poolRound(p, 1000)
	msgs, sets, _ := p.stats()
	if msgs != 1000 || sets != 1000 {
		t.Fatalf("burst arena = %d msgs / %d sets, want 1000/1000", msgs, sets)
	}

	// Quiet traffic at 1% of the burst: after the trim streak the arenas
	// must decay instead of holding the burst capacity forever.
	for r := 0; r < 2*trimAfter; r++ {
		poolRound(p, 10)
	}
	msgs, sets, bytes := p.stats()
	if msgs >= 1000 || sets >= 1000 {
		t.Fatalf("arena did not decay after quiet streak: %d msgs / %d sets", msgs, sets)
	}
	if msgs > 2*trimFloor || sets > 2*trimFloor {
		t.Fatalf("arena decayed only to %d msgs / %d sets (%d set bytes), want <= %d", msgs, sets, bytes, 2*trimFloor)
	}

	// The pool still serves bursts after a trim, and a sustained high load
	// resets the streak so capacity is not thrashed away.
	poolRound(p, 500)
	for r := 0; r < 2*trimAfter; r++ {
		poolRound(p, 400)
	}
	msgs, _, _ = p.stats()
	if msgs < 400 {
		t.Fatalf("trim fired under sustained load: %d msgs retained", msgs)
	}
}

// TestMsgPoolNoTrimRatchet pins the batch-mode contract: with trim off the
// arena keeps its high-water capacity, which is what the alloc-parity
// benchmarks rely on (capacity reached once is never re-grown).
func TestMsgPoolNoTrimRatchet(t *testing.T) {
	p := &msgPool{}
	poolRound(p, 300)
	for r := 0; r < 4*trimAfter; r++ {
		poolRound(p, 1)
	}
	msgs, sets, _ := p.stats()
	if msgs != 300 || sets != 300 {
		t.Fatalf("batch-mode arena changed size: %d msgs / %d sets, want 300/300", msgs, sets)
	}
}
