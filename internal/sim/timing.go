package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"time"
)

// Stage identifies one instrumented slice of the engine's round loop — the
// granularity of the self-profiling layer (Options.Timing). The enum order
// is the canonical reporting order, roughly the order the stages run inside
// a round; a stage may cover more than one code segment (StageFaults wraps
// both the recovery sweep and the head-crash sweep, StageMerge every
// barrier fold) and its per-round value is the sum of its segments.
type Stage uint8

const (
	// StageFaults: crash/recovery bookkeeping — downtime-window rejoins,
	// static and head-targeted crash activation, Crashed/Recovered events.
	StageFaults Stage = iota
	// StageSnapshot: materialising the round's communication graph (the
	// ctvg.Dynamic.At call, a cache thaw or a CSR snapshot build).
	StageSnapshot
	// StageHierarchy: refreshing the clustering hierarchy and the
	// stability-window bookkeeping (ctvg.Dynamic.HierarchyAt, StableUntil).
	StageHierarchy
	// StageCollect: the per-shard protocol step — every node's Send plus
	// per-message accounting, fanned out over the shard partition.
	StageCollect
	// StageObserve: observer emission on the engine goroutine —
	// Observer.RoundStart and the ascending-sender Sent replay.
	StageObserve
	// StageDeliver: the delivery fan-out — inbox assembly, link-fault
	// queries and every node's Deliver, over the same shard partition.
	StageDeliver
	// StageMerge: the round-barrier folds — per-shard accumulator merge,
	// note merge/replay, link-fault fold.
	StageMerge
	// StageTracer: provenance tracer emission on the engine goroutine
	// (Tracer.RoundStart and the shard-merging Tracer.RoundEnd).
	StageTracer
	// StageProgress: the delivered scan, progress events and the
	// completion check (doneLive).
	StageProgress
	// StageRecycle: returning this round's messages and payload sets to
	// the per-shard arenas.
	StageRecycle
	// NumStages sizes per-stage arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"faults", "snapshot", "hierarchy", "collect", "observe",
	"deliver", "merge", "tracer", "progress", "recycle",
}

// String returns the stage's canonical name — the `stage=` pprof label
// value and the key used in timing JSONL and BENCH_*.json stage ceilings.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", byte(s))
}

// StageByName returns the stage with the given canonical name.
func StageByName(name string) (Stage, bool) {
	for s, n := range stageNames {
		if n == name {
			return Stage(s), true
		}
	}
	return NumStages, false
}

// TimingSink receives the engine's self-profiling stream; internal/obs
// provides the standard implementation (obs.Timing). Like the Observer and
// Tracer hooks, every callback is invoked from the engine goroutine, at the
// round barrier, so sinks need no locking; per-shard durations are handed
// over already merged in shard order, which makes a sink's output
// independent of Options.Workers up to the durations themselves.
type TimingSink interface {
	// RunStart is called once before round 0 with the shard count, so the
	// sink can size per-shard series.
	RunStart(nshards int)
	// RoundEnd is called once per executed round at the round barrier.
	// wall holds the engine goroutine's per-stage monotonic-clock
	// durations for the round (nanoseconds); shard holds one per-stage
	// array per shard, populated for the fan-out stages (StageCollect,
	// StageDeliver) with each shard goroutine's own duration. Both alias
	// engine storage: read-only, not retained past the call.
	RoundEnd(r int, wall *[NumStages]int64, shard [][NumStages]int64)
	// SampleArena reports whether the engine should take the (mildly
	// expensive) arena/resource sample this round; when it returns true
	// the engine calls Arena before RoundEnd.
	SampleArena(r int) bool
	// Arena receives the arena occupancy sample: total pooled messages,
	// pooled payload sets and the bytes of bitset word storage those sets
	// retain, summed over all shards.
	Arena(r int, msgs, sets int, setBytes int64)
}

// timingState is the engine's per-run timing scratch. All timing state
// hangs off this one pointer, allocated only when Options.Timing is set, so
// the disabled path adds no allocations — a local array whose address
// escaped into an interface call would be heap-allocated even on rounds
// that never take the branch.
type timingState struct {
	wall  [NumStages]int64
	shard [][NumStages]int64

	// Pre-built pprof label contexts, one per stage plus per-shard
	// variants for the fan-out stages, derived from Options.LabelCtx (or
	// Background). Built once per run: SetGoroutineLabels on a prepared
	// context is cheap enough for sixteen calls a round, building label
	// sets is not.
	baseCtx    context.Context
	stageCtx   [NumStages]context.Context
	collectCtx []context.Context
	deliverCtx []context.Context
}

func newTimingState(base context.Context, nshards int) *timingState {
	if base == nil {
		base = context.Background()
	}
	t := &timingState{
		baseCtx:    base,
		shard:      make([][NumStages]int64, nshards),
		collectCtx: make([]context.Context, nshards),
		deliverCtx: make([]context.Context, nshards),
	}
	for st := Stage(0); st < NumStages; st++ {
		t.stageCtx[st] = pprof.WithLabels(base, pprof.Labels("stage", st.String()))
	}
	for s := 0; s < nshards; s++ {
		sh := strconv.Itoa(s)
		t.collectCtx[s] = pprof.WithLabels(base, pprof.Labels(
			"stage", StageCollect.String(), "shard", sh))
		t.deliverCtx[s] = pprof.WithLabels(base, pprof.Labels(
			"stage", StageDeliver.String(), "shard", sh))
	}
	return t
}

// seg opens a stage segment on the engine goroutine: the goroutine's pprof
// labels switch to the stage and the monotonic clock is read. On a nil
// receiver (timing disabled) it does nothing and returns the zero Time;
// callers pair it with end, which is equally inert, so the disabled path
// costs one nil check per segment edge.
func (t *timingState) seg(st Stage) time.Time {
	if t == nil {
		return time.Time{}
	}
	pprof.SetGoroutineLabels(t.stageCtx[st])
	return time.Now()
}

// end closes a stage segment opened by seg, folding its duration into the
// round's wall array.
func (t *timingState) end(st Stage, t0 time.Time) {
	if t == nil {
		return
	}
	t.wall[st] += int64(time.Since(t0))
}

// wrapShard decorates a shard body with a per-shard monotonic clock and
// stage=/shard= pprof labels. The returned closure runs on the shard's
// goroutine (or the engine goroutine when serial); distinct shards write
// distinct slots, so no synchronisation is needed beyond the fan-out's own
// barrier. Only called when timing is on — the timing-off path keeps the
// raw shard closures, untouched.
func (t *timingState) wrapShard(st Stage, ctxs []context.Context, fn func(s, lo, hi int)) func(s, lo, hi int) {
	return func(s, lo, hi int) {
		pprof.SetGoroutineLabels(ctxs[s])
		t0 := time.Now()
		fn(s, lo, hi)
		t.shard[s][st] += int64(time.Since(t0))
	}
}

// reset zeroes the per-round accumulators after a RoundEnd flush.
func (t *timingState) reset() {
	t.wall = [NumStages]int64{}
	for s := range t.shard {
		t.shard[s] = [NumStages]int64{}
	}
}
