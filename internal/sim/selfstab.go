package sim

import (
	"fmt"

	"repro/internal/cluster/selfstab"
	"repro/internal/ctvg"
)

// SelfStabilize configures the emergent clustering mode (see
// Options.SelfStabilize): the run's hierarchy is maintained by the
// message-passing self-stabilizing protocol in internal/cluster/selfstab
// instead of being handed down by the adversary.
type SelfStabilize struct {
	// OrphanAfter is the number of consecutive rounds a member tolerates
	// silence from its head before treating itself as orphaned; 0 means
	// the protocol default of 2.
	OrphanAfter int
	// Watchdog arms the convergence watchdog: when the emergent hierarchy
	// has not been valid (every live node covered, heads bridged through
	// live relays) for Watchdog consecutive rounds, the engine emits a
	// structured ConvergenceReport through Observer.Diverged and counts it
	// in Metrics.ConvergenceReports. Unlike the stall watchdog the run
	// continues — divergence is the protocol's repair window, not a
	// failure. 0 disables the reports (validity is still tracked, so
	// rounds-to-reconverge telemetry works either way).
	Watchdog int
}

// MaintenanceStats summarises one round of the self-stabilizing clustering
// protocol; it is handed to Observer.Maintenance and, for tracers that
// implement MaintenanceTracer, to the provenance ledger.
type MaintenanceStats struct {
	// Elections / Adoptions / HeadMerges count this round's repair events
	// (nodes electing themselves head, orphaned or unaffiliated nodes
	// joining a cluster, heads abdicating to a lower-ID neighbour).
	Elections  int
	Adoptions  int
	HeadMerges int
	// BeaconsSent is the round's maintenance message budget: one beacon
	// per live node. BeaconsHeard counts the receptions that survived the
	// link faults.
	BeaconsSent  int
	BeaconsHeard int
	// Valid reports whether the emergent hierarchy was valid this round
	// (after fault injection felled its victims).
	Valid bool
	// Reconverged, when positive, reports that this round ended an invalid
	// streak of that many rounds — the protocol's rounds-to-reconverge.
	Reconverged int
}

// ConvergenceReport is the convergence watchdog's structured diagnostic:
// the emergent hierarchy has not been valid for Window consecutive rounds,
// and this is what the live population looked like when the watchdog
// fired.
type ConvergenceReport struct {
	// Round is the round index at which the watchdog fired.
	Round int
	// Window is the configured invalid-round threshold; InvalidFor is the
	// actual streak length when the report fired (== Window).
	Window     int
	InvalidFor int
	// Heads and Unaffiliated count live heads and live nodes with no
	// cluster; Orphaned counts live members or gateways whose named head
	// is dead or no longer a head.
	Heads        int
	Unaffiliated int
	Orphaned     int
}

// String formats the diagnostic on one line.
func (c *ConvergenceReport) String() string {
	return fmt.Sprintf("hierarchy invalid at round %d: not valid for %d rounds, %d heads, %d unaffiliated, %d orphaned",
		c.Round, c.InvalidFor, c.Heads, c.Unaffiliated, c.Orphaned)
}

// MaintenanceTracer is the optional tracer extension for self-stabilizing
// runs: a Tracer that also implements it receives each round's clustering
// maintenance summary, so the ledger can attribute the maintenance message
// budget alongside the dissemination traffic it rides with. Maintenance is
// called from the engine goroutine right after Tracer.RoundStart.
type MaintenanceTracer interface {
	Maintenance(r int, ms MaintenanceStats)
}

// stabState is the engine-side bundle for Options.SelfStabilize. Like the
// timing and arrival subsystems, everything hangs off one pointer so the
// disabled path stays allocation-free.
type stabState struct {
	state      *selfstab.State
	window     int
	round      selfstab.Stats // last Commit's merged counters
	ms         MaintenanceStats
	rep        *ConvergenceReport // non-nil only on the round the watchdog fires
	invalidRun int
	runShard   func(s, lo, hi int)
}

func newStabState(cfg *SelfStabilize, n, nshards int) *stabState {
	return &stabState{
		state:  selfstab.New(n, selfstab.Config{OrphanAfter: cfg.OrphanAfter}, nshards),
		window: cfg.Watchdog,
	}
}

// observe runs after the round's fault injection: it snapshots the round's
// maintenance stats, evaluates hierarchy validity against the post-crash
// population, advances the convergence watchdog and folds the counters
// into the run metrics.
func (sb *stabState) observe(r int, met *Metrics, crashed []bool) {
	rd := sb.round
	ms := MaintenanceStats{
		Elections:    rd.Elections,
		Adoptions:    rd.Adoptions,
		HeadMerges:   rd.HeadMerges,
		BeaconsSent:  rd.BeaconsSent,
		BeaconsHeard: rd.BeaconsHeard,
	}
	ms.Valid = sb.state.Valid()
	sb.rep = nil
	if ms.Valid {
		if sb.invalidRun > 0 {
			ms.Reconverged = sb.invalidRun
			met.Reconvergences++
		}
		sb.invalidRun = 0
	} else {
		sb.invalidRun++
		if sb.window > 0 && sb.invalidRun == sb.window {
			sb.rep = sb.report(r, crashed)
			met.ConvergenceReports++
		}
	}
	met.Elections += ms.Elections
	met.Adoptions += ms.Adoptions
	met.HeadMerges += ms.HeadMerges
	met.MaintenanceBeacons += int64(ms.BeaconsSent)
	sb.ms = ms
}

func (sb *stabState) report(r int, crashed []bool) *ConvergenceReport {
	h := sb.state.Hierarchy()
	rep := &ConvergenceReport{Round: r, Window: sb.window, InvalidFor: sb.invalidRun}
	for v := 0; v < h.N(); v++ {
		if crashed[v] {
			continue
		}
		switch h.Role[v] {
		case ctvg.Head:
			rep.Heads++
		case ctvg.Unaffiliated:
			rep.Unaffiliated++
		default:
			if c := h.Cluster[v]; c == ctvg.NoCluster || crashed[c] || h.Role[c] != ctvg.Head {
				rep.Orphaned++
			}
		}
	}
	return rep
}
