package sim_test

// Delta-aware delivery must be a pure optimisation: skipping the union of a
// (sender, version) payload the receiver has already absorbed may change
// timings, never results. This file proves the contract end to end: for
// protocols whose payloads actually carry version stamps (Algorithm 2's
// every-round relay broadcasts, Algorithm 1's failover floods and acting
// heads, the KLO flood baseline), a NoDeltaDelivery run — serial or on 4
// workers, i.e. through the degree-aware shard partition — must produce
// identical Metrics and byte-identical observer AND provenance JSONL
// streams. (It lives in sim_test because obs and provenance import sim.)

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// runDelta executes proto on d with both a JSONL collector and a provenance
// tracer attached, and returns the metrics plus both raw streams.
func runDelta(t *testing.T, d ctvg.Dynamic, proto sim.Protocol, assign *token.Assignment, phaseLen, rounds, workers int, noDelta bool, crashAt map[int]int) (*sim.Metrics, []byte, []byte) {
	t.Helper()
	var obsSink, provSink bytes.Buffer
	col := obs.NewCollector(obs.Config{
		N: d.N(), K: assign.K, PhaseLen: phaseLen, Sink: &obsSink, SizeFn: wire.Size,
	})
	tr := provenance.New(provenance.Config{Sink: &provSink})
	opts := sim.Options{
		MaxRounds:       rounds,
		Observer:        col.Observer(),
		Tracer:          tr,
		SizeFn:          wire.Size,
		Workers:         workers,
		NoDeltaDelivery: noDelta,
	}
	if crashAt != nil {
		opts.Faults = &sim.Faults{CrashAt: crashAt}
	}
	met := sim.MustRunProtocol(d, proto, assign, opts)
	if err := col.Flush(); err != nil {
		t.Fatalf("collector: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("tracer: %v", err)
	}
	return met, obsSink.Bytes(), provSink.Bytes()
}

func TestDeltaDeliveryEquivalence(t *testing.T) {
	const n, k, alpha, L = 80, 8, 2, 2
	theta := 12
	T := core.Theorem1T(k, alpha, L)
	rounds := core.Theorem1Phases(theta, alpha) * T

	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: T,
		Reaffiliations: 6, HeadChurn: 2,
	}, xrand.New(1))
	trace := ctvg.Record(adv, rounds)
	assign := token.Spread(n, k, xrand.New(2))

	// Crashes force the failover machinery (acting heads, floods, NACK
	// re-uploads) to run, which is where most versioned payloads and the
	// subtlest skip decisions live.
	crashAt := map[int]int{5: 3, 33: T + 3, 61: 2*T + 7}

	scenarios := []struct {
		name    string
		proto   sim.Protocol
		rounds  int
		crashAt map[int]int
	}{
		// Alg2 relays broadcast full versioned sets every round: the
		// highest-skip-rate protocol, fault-free.
		{"alg2", core.Alg2{}, rounds, nil},
		// Alg2 + failover + crashes: acting heads, implicit-NACK subset
		// checks against payloads whose union was elided.
		{"alg2-failover", core.Alg2{Failover: &core.Failover{Window: 2}}, rounds, crashAt},
		// Alg1 + failover + crashes: versioned flood fallback and
		// phase-boundary retransmission alongside unversioned single-token
		// traffic.
		{"alg1-failover", core.Alg1{T: T, Failover: &core.Failover{Window: 2}}, rounds, crashAt},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			refMet, refObs, refProv := runDelta(t, trace, sc.proto, assign, T, sc.rounds, 1, false, sc.crashAt)
			if len(refObs) == 0 || len(refProv) == 0 {
				t.Fatal("reference run produced empty streams")
			}
			for _, tc := range []struct {
				name    string
				workers int
				noDelta bool
			}{
				{"serial-nodelta", 1, true},
				{"parallel-delta", 4, false},
				{"parallel-nodelta", 4, true},
			} {
				met, obsJSON, provJSON := runDelta(t, trace, sc.proto, assign, T, sc.rounds, tc.workers, tc.noDelta, sc.crashAt)
				if !reflect.DeepEqual(met, refMet) {
					t.Errorf("%s: metrics diverge:\n  got  %+v\n  want %+v", tc.name, met, refMet)
				}
				if !bytes.Equal(obsJSON, refObs) {
					t.Errorf("%s: observer JSONL diverges from serial delta run (%d vs %d bytes)",
						tc.name, len(obsJSON), len(refObs))
				}
				if !bytes.Equal(provJSON, refProv) {
					t.Errorf("%s: provenance JSONL diverges from serial delta run (%d vs %d bytes)",
						tc.name, len(provJSON), len(refProv))
				}
			}
		})
	}
}

// TestDeltaDeliveryFloodBaseline pins the same contract on the flat flood
// baseline over a star graph — the topology that most stresses the
// degree-aware shard partition (one hub holds half of all edge endpoints).
func TestDeltaDeliveryFloodBaseline(t *testing.T) {
	const n, k = 60, 6
	d := sim.NewFlat(tvg.Static{G: graph.Star(n, 0)})
	assign := token.Spread(n, k, xrand.New(3))
	rounds := baseline.FloodRounds(n)

	refMet, refObs, refProv := runDelta(t, d, baseline.Flood{}, assign, 1, rounds, 1, false, nil)
	for _, tc := range []struct {
		name    string
		workers int
		noDelta bool
	}{
		{"serial-nodelta", 1, true},
		{"parallel-delta", 4, false},
		{"parallel-nodelta", 4, true},
	} {
		met, obsJSON, provJSON := runDelta(t, d, baseline.Flood{}, assign, 1, rounds, tc.workers, tc.noDelta, nil)
		if !reflect.DeepEqual(met, refMet) {
			t.Errorf("%s: metrics diverge:\n  got  %+v\n  want %+v", tc.name, met, refMet)
		}
		if !bytes.Equal(obsJSON, refObs) {
			t.Errorf("%s: observer JSONL diverges (%d vs %d bytes)", tc.name, len(obsJSON), len(refObs))
		}
		if !bytes.Equal(provJSON, refProv) {
			t.Errorf("%s: provenance JSONL diverges (%d vs %d bytes)", tc.name, len(provJSON), len(refProv))
		}
	}
}
