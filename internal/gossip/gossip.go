// Package gossip implements the randomized gossip protocols the paper's
// related-work section surveys (Kempe et al. FOCS'03, Mosk-Aoyama & Shah
// PODC'06): probabilistic token exchange with one random neighbour per
// round, the classic alternative to deterministic flooding in *static*
// environments.
//
// Gossip is included as a comparator: it shows why the paper's setting
// wants deterministic guarantees — in adversarial dynamic graphs gossip
// delivers only with high probability and its completion time degrades
// with churn, whereas flooding and the HiNet algorithms carry proofs.
//
// Two variants:
//
//   - Push: each round a node sends its token set to one uniformly chosen
//     current neighbour.
//   - PushPull: like Push, but a node that received pushes answers the
//     pushers (one per round, FIFO) before resuming random pushing —
//     the round-based analogue of the push-pull exchange.
package gossip

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// Push is uniform push gossip.
type Push struct {
	// Seed derives each node's private partner-selection randomness.
	Seed uint64
}

// Name implements sim.Protocol.
func (p Push) Name() string { return fmt.Sprintf("gossip-push(seed=%d)", p.Seed) }

// Nodes implements sim.Protocol.
func (p Push) Nodes(assign *token.Assignment) []sim.Node {
	return build(assign, p.Seed, false)
}

// PushPull is push gossip with reply-to-pusher behaviour.
type PushPull struct {
	// Seed derives each node's private partner-selection randomness.
	Seed uint64
}

// Name implements sim.Protocol.
func (p PushPull) Name() string { return fmt.Sprintf("gossip-pushpull(seed=%d)", p.Seed) }

// Nodes implements sim.Protocol.
func (p PushPull) Nodes(assign *token.Assignment) []sim.Node {
	return build(assign, p.Seed, true)
}

func build(assign *token.Assignment, seed uint64, pull bool) []sim.Node {
	master := xrand.New(seed)
	nodes := make([]sim.Node, assign.N())
	for v := range nodes {
		nodes[v] = &gossipNode{
			id:   v,
			ta:   assign.Initial[v].Clone(),
			rng:  master.Split(),
			pull: pull,
		}
	}
	return nodes
}

type gossipNode struct {
	id   int
	ta   *bitset.Set
	rng  *xrand.Rand
	pull bool

	pending []int // pushers awaiting a pull reply (FIFO)
}

// Send implements sim.Node: push TA to one partner.
func (n *gossipNode) Send(v sim.View) *sim.Message {
	target := -1
	if n.pull && len(n.pending) > 0 {
		target = n.pending[0]
		n.pending = n.pending[1:]
	} else if len(v.Neighbors) > 0 {
		target = xrand.Pick(n.rng, v.Neighbors)
	}
	if target < 0 {
		return nil
	}
	payload := v.NewSet()
	payload.CopyFrom(n.ta)
	m := v.NewMessage()
	m.To = target
	m.Kind = sim.KindBroadcast
	m.Tokens = payload
	return m
}

// Deliver implements sim.Node: absorb pushes addressed to this node.
func (n *gossipNode) Deliver(v sim.View, msgs []*sim.Message) {
	for _, m := range msgs {
		if m.To != n.id {
			continue
		}
		n.ta.UnionWith(m.Tokens)
		if n.pull {
			n.pending = append(n.pending, m.From)
		}
	}
}

// Tokens implements sim.Node.
func (n *gossipNode) Tokens() *bitset.Set { return n.ta }

var (
	_ sim.Protocol = Push{}
	_ sim.Protocol = PushPull{}
)
