package gossip

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

func TestNames(t *testing.T) {
	if (Push{Seed: 3}).Name() != "gossip-push(seed=3)" {
		t.Fatal("push name")
	}
	if (PushPull{Seed: 3}).Name() != "gossip-pushpull(seed=3)" {
		t.Fatal("pushpull name")
	}
}

func TestPushCompletesOnCompleteGraph(t *testing.T) {
	// Classic epidemic spreading: O(log n) rounds whp on K_n. With n=32
	// a 60-round budget is astronomically safe for fixed seeds.
	const n = 32
	d := sim.NewFlat(tvg.Static{G: graph.Complete(n)})
	for seed := uint64(0); seed < 5; seed++ {
		assign := token.SingleSource(n, 1, 0)
		met := sim.MustRunProtocol(d, Push{Seed: seed}, assign,
			sim.Options{MaxRounds: 60, StopWhenComplete: true})
		if !met.Complete {
			t.Fatalf("seed %d: push gossip incomplete on K_n: %v", seed, met)
		}
		if met.CompletionRound < 5 {
			t.Fatalf("seed %d: completion in %d rounds is faster than 1-per-push allows",
				seed, met.CompletionRound)
		}
	}
}

func TestPushPullFasterOrEqualOnAverage(t *testing.T) {
	const n, k, seeds = 32, 4, 8
	d := sim.NewFlat(tvg.Static{G: graph.Complete(n)})
	var push, pushpull int
	for seed := uint64(0); seed < seeds; seed++ {
		assign := token.Spread(n, k, xrand.New(seed+40))
		mp := sim.MustRunProtocol(d, Push{Seed: seed}, assign,
			sim.Options{MaxRounds: 200, StopWhenComplete: true})
		mpp := sim.MustRunProtocol(d, PushPull{Seed: seed}, assign,
			sim.Options{MaxRounds: 200, StopWhenComplete: true})
		if !mp.Complete || !mpp.Complete {
			t.Fatalf("seed %d incomplete", seed)
		}
		push += mp.CompletionRound
		pushpull += mpp.CompletionRound
	}
	// Pull replies cannot hurt on a complete graph; allow small noise.
	if pushpull > push+seeds {
		t.Fatalf("push-pull (%d total rounds) much slower than push (%d)", pushpull, push)
	}
}

func TestGossipOnlyAddresseeAbsorbs(t *testing.T) {
	// Node 1 pushes to exactly one of its two neighbours on a path; the
	// other must not absorb.
	g := graph.Path(3)
	d := sim.NewFlat(tvg.Static{G: g})
	assign := token.SingleSource(3, 1, 1)
	nodes := Push{Seed: 7}.Nodes(assign)
	sim.MustRun(d, nodes, assign, sim.Options{MaxRounds: 1})
	got0 := nodes[0].Tokens().Contains(0)
	got2 := nodes[2].Tokens().Contains(0)
	if got0 == got2 {
		t.Fatalf("exactly one neighbour should have the token (got0=%v got2=%v)", got0, got2)
	}
}

func TestPushPullRepliesToPusher(t *testing.T) {
	// Star with center 0 holding nothing; leaf 1 holds the token and
	// pushes to 0 (its only neighbour). Next round, 0 must reply to 1
	// (pull) rather than push to a random other leaf — observable when 0
	// has pending repliers.
	g := graph.Star(4, 0)
	d := sim.NewFlat(tvg.Static{G: g})
	assign := token.SingleSource(4, 1, 1)
	var round1Target = -2
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if r == 1 && m.From == 0 {
			round1Target = m.To
		}
	}}
	sim.MustRunProtocol(d, PushPull{Seed: 5}, assign,
		sim.Options{MaxRounds: 2, Observer: obs})
	if round1Target != 1 {
		t.Fatalf("center replied to %d, want pusher 1", round1Target)
	}
}

func TestGossipSurvivesDynamicGraphs(t *testing.T) {
	// On 1-interval dynamics gossip still completes eventually (no
	// worst-case guarantee, but overwhelmingly within a generous budget).
	const n, k = 24, 4
	for seed := uint64(0); seed < 4; seed++ {
		adv := adversary.NewOneInterval(n, 3*n, xrand.New(seed))
		assign := token.Spread(n, k, xrand.New(seed+9))
		met := sim.MustRunProtocol(sim.NewFlat(adv), PushPull{Seed: seed}, assign,
			sim.Options{MaxRounds: 40 * n, StopWhenComplete: true})
		if !met.Complete {
			t.Fatalf("seed %d: gossip incomplete within 40n rounds: %v", seed, met)
		}
	}
}

func TestGossipIsolatedNodeSilent(t *testing.T) {
	g := graph.New(2) // no edges
	d := sim.NewFlat(tvg.Static{G: g})
	assign := token.SingleSource(2, 1, 0)
	met := sim.MustRunProtocol(d, Push{Seed: 1}, assign, sim.Options{MaxRounds: 5})
	if met.Messages != 0 {
		t.Fatalf("isolated nodes pushed %d messages", met.Messages)
	}
}

func TestGossipDeterministicWithSeed(t *testing.T) {
	const n, k = 20, 3
	run := func() *sim.Metrics {
		adv := adversary.NewOneInterval(n, 2*n, xrand.New(4))
		assign := token.Spread(n, k, xrand.New(5))
		return sim.MustRunProtocol(sim.NewFlat(adv), Push{Seed: 11}, assign,
			sim.Options{MaxRounds: 300, StopWhenComplete: true})
	}
	a, b := run(), run()
	if a.CompletionRound != b.CompletionRound || a.TokensSent != b.TokensSent {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func BenchmarkPushGossip(b *testing.B) {
	const n, k = 64, 8
	d := sim.NewFlat(tvg.Static{G: graph.Complete(n)})
	for i := 0; i < b.N; i++ {
		assign := token.Spread(n, k, xrand.New(uint64(i)))
		sim.MustRunProtocol(d, Push{Seed: uint64(i)}, assign,
			sim.Options{MaxRounds: 300, StopWhenComplete: true})
	}
}
