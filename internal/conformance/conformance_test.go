package conformance

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/gossip"
	"repro/internal/netcode"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// recordedNet freezes a HiNet adversary so causal reachability and the
// protocol run see identical snapshots.
func recordedNet(seed uint64, T int) (*ctvg.Trace, *token.Assignment) {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 30, Theta: 6, L: 2, T: T, Reaffiliations: 2, HeadChurn: 1, Heads: 4, ChurnEdges: 4,
	}, xrand.New(seed))
	tr := ctvg.Record(adv, 60)
	assign := token.Spread(30, 5, xrand.New(seed+100))
	return tr, assign
}

// TestAllProtocolsConformant holds every protocol in the repository to the
// causality/monotonicity/domain/determinism invariants.
func TestAllProtocolsConformant(t *testing.T) {
	tr, assign := recordedNet(1, 10)
	protocols := []sim.Protocol{
		core.Alg1{T: 10},
		core.Alg1{T: 10, StableHeads: true},
		core.Alg1{T: 10, Promiscuous: true},
		core.Alg1{T: 10, UploadLowFirst: true},
		core.Alg2{},
		baseline.Flood{},
		baseline.KLOT{T: 10},
		netcode.CodedFlood{Seed: 7},
		gossip.Push{Seed: 7},
		gossip.PushPull{Seed: 7},
	}
	for _, p := range protocols {
		if vs := Check(tr, p, assign, 60); len(vs) != 0 {
			t.Fatalf("%s: %d violations, first: %v", p.Name(), len(vs), vs[0])
		}
	}
}

// cheatProto violates causality: every node magically knows everything
// from round 0. The kit must catch it.
type cheatProto struct{}

func (cheatProto) Name() string { return "cheat" }
func (cheatProto) Nodes(a *token.Assignment) []sim.Node {
	full := bitset.New(a.K)
	for t := 0; t < a.K; t++ {
		full.Add(t)
	}
	nodes := make([]sim.Node, a.N())
	for v := range nodes {
		nodes[v] = &cheatNode{ta: full.Clone()}
	}
	return nodes
}

type cheatNode struct{ ta *bitset.Set }

func (c *cheatNode) Send(v sim.View) *sim.Message            { return nil }
func (c *cheatNode) Deliver(v sim.View, msgs []*sim.Message) {}
func (c *cheatNode) Tokens() *bitset.Set                     { return c.ta }

func TestKitCatchesCausalityCheat(t *testing.T) {
	tr, assign := recordedNet(2, 10)
	vs := Check(tr, cheatProto{}, assign, 10)
	if len(vs) == 0 {
		t.Fatal("causality cheat not caught")
	}
}

// shrinkProto violates monotonicity: it forgets tokens after round 3.
type shrinkProto struct{}

func (shrinkProto) Name() string { return "shrink" }
func (shrinkProto) Nodes(a *token.Assignment) []sim.Node {
	nodes := make([]sim.Node, a.N())
	for v := range nodes {
		nodes[v] = &shrinkNode{ta: a.Initial[v].Clone()}
	}
	return nodes
}

type shrinkNode struct{ ta *bitset.Set }

func (s *shrinkNode) Send(v sim.View) *sim.Message {
	return &sim.Message{To: sim.NoAddr, Kind: sim.KindBroadcast, Tokens: s.ta.Clone()}
}
func (s *shrinkNode) Deliver(v sim.View, msgs []*sim.Message) {
	for _, m := range msgs {
		s.ta.UnionWith(m.Tokens)
	}
	if v.Round == 3 {
		s.ta.Clear()
	}
}
func (s *shrinkNode) Tokens() *bitset.Set { return s.ta }

func TestKitCatchesShrinkage(t *testing.T) {
	tr, assign := recordedNet(3, 10)
	vs := Check(tr, shrinkProto{}, assign, 10)
	if len(vs) == 0 {
		t.Fatal("shrinkage not caught")
	}
}

// rogueProto violates domain safety: it invents token k.
type rogueProto struct{}

func (rogueProto) Name() string { return "rogue" }
func (rogueProto) Nodes(a *token.Assignment) []sim.Node {
	nodes := make([]sim.Node, a.N())
	for v := range nodes {
		ta := a.Initial[v].Clone()
		ta.Add(a.K) // out of domain
		nodes[v] = &cheatNode{ta: ta}
	}
	return nodes
}

func TestKitCatchesDomainViolation(t *testing.T) {
	tr, assign := recordedNet(4, 10)
	vs := Check(tr, rogueProto{}, assign, 5)
	if len(vs) == 0 {
		t.Fatal("domain violation not caught")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Round: 3, Node: 7, Desc: "x"}
	if v.String() != "round 3 node 7: x" {
		t.Fatalf("got %q", v.String())
	}
}
