// Package conformance is a reusable safety harness for dissemination
// protocols: it runs any sim.Protocol against a recorded dynamic network
// and checks the invariants every correct protocol must satisfy,
// independent of its algorithmic strategy:
//
//   - causality: a node may hold token t in round r only if some initial
//     owner of t causally influenced it by round r (information cannot
//     outrun the dynamic graph — checked against tvg.InfluenceTimes);
//   - monotonicity: TA never shrinks;
//   - domain safety: no token outside {0..k-1} ever appears;
//   - determinism: two runs from identical inputs produce identical
//     metrics and final states.
//
// The kit exists for downstream protocol authors: a new protocol that
// passes Check on the standard scenarios is at least not cheating the
// model. Every protocol in this repository is held to it (see the test).
package conformance

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
)

// Violation describes one invariant breach.
type Violation struct {
	Round int
	Node  int
	Desc  string
}

func (v Violation) String() string {
	return fmt.Sprintf("round %d node %d: %s", v.Round, v.Node, v.Desc)
}

// Check runs the protocol on the recorded network for `rounds` rounds and
// returns all invariant violations (empty = conformant). The network must
// be a recorded trace (or otherwise deterministic and re-readable), since
// causal reachability is precomputed from its snapshots.
func Check(d ctvg.Dynamic, p sim.Protocol, assign *token.Assignment, rounds int) []Violation {
	var out []Violation

	// Precompute causal availability: earliest[t][v] = first round count
	// after which v can possibly know token t (0 for initial owners).
	earliest := make([][]int, assign.K)
	for t := 0; t < assign.K; t++ {
		earliest[t] = make([]int, d.N())
		for v := range earliest[t] {
			earliest[t][v] = tvg.Inf
		}
		for owner := 0; owner < assign.N(); owner++ {
			if !assign.Initial[owner].Contains(t) {
				continue
			}
			times := tvg.InfluenceTimes(d, owner, 0, rounds)
			for v, tm := range times {
				if tm < earliest[t][v] {
					earliest[t][v] = tm
				}
			}
		}
	}

	inner := p.Nodes(assign)
	nodes := make([]sim.Node, len(inner))
	for v := range inner {
		nodes[v] = &auditNode{
			id:       v,
			inner:    inner[v],
			k:        assign.K,
			earliest: earliest,
			prev:     bitset.New(assign.K),
			report: func(vio Violation) {
				out = append(out, vio)
			},
		}
	}
	first := sim.MustRun(d, nodes, assign, sim.Options{MaxRounds: rounds})

	// Determinism: replay and compare.
	second := sim.MustRunProtocol(d, p, assign, sim.Options{MaxRounds: rounds})
	if first.TokensSent != second.TokensSent || first.Messages != second.Messages ||
		first.CompletionRound != second.CompletionRound {
		out = append(out, Violation{Round: -1, Node: -1,
			Desc: fmt.Sprintf("nondeterministic: %v vs %v", first, second)})
	}
	return out
}

// auditNode wraps a protocol node and audits its token set after every
// delivery.
type auditNode struct {
	id       int
	inner    sim.Node
	k        int
	earliest [][]int
	prev     *bitset.Set
	report   func(Violation)
}

func (a *auditNode) Send(v sim.View) *sim.Message { return a.inner.Send(v) }

func (a *auditNode) Deliver(v sim.View, msgs []*sim.Message) {
	a.inner.Deliver(v, msgs)
	ta := a.inner.Tokens()

	// Monotonicity.
	if !a.prev.SubsetOf(ta) {
		a.report(Violation{Round: v.Round, Node: a.id,
			Desc: fmt.Sprintf("token set shrank: had %v, now %v", a.prev, ta)})
	}
	// Domain safety.
	if max := ta.Max(); max >= a.k {
		a.report(Violation{Round: v.Round, Node: a.id,
			Desc: fmt.Sprintf("out-of-domain token %d (k=%d)", max, a.k)})
	}
	// Causality: token t present => reachable by round v.Round+1.
	ta.Range(func(t int) bool {
		if t < a.k && a.earliest[t][a.id] > v.Round+1 {
			a.report(Violation{Round: v.Round, Node: a.id,
				Desc: fmt.Sprintf("holds token %d before causal reachability (earliest %d)",
					t, a.earliest[t][a.id])})
			return false
		}
		return true
	})
	a.prev = ta.Clone()
}

func (a *auditNode) Tokens() *bitset.Set { return a.inner.Tokens() }
