package trace

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/ctvg"
	"repro/internal/xrand"
)

func recordedHiNet(t *testing.T, rounds int) *ctvg.Trace {
	t.Helper()
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 20, Theta: 4, L: 2, T: 5, Reaffiliations: 2, ChurnEdges: 3,
	}, xrand.New(5))
	return ctvg.Record(adv, rounds)
}

func TestRoundTrip(t *testing.T) {
	orig := recordedHiNet(t, 12)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.Len() != orig.Len() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.N(), got.Len(), orig.N(), orig.Len())
	}
	for r := 0; r < orig.Len(); r++ {
		if !got.At(r).Equal(orig.At(r)) {
			t.Fatalf("round %d graphs differ", r)
		}
		if !got.HierarchyAt(r).Equal(orig.HierarchyAt(r)) {
			t.Fatalf("round %d hierarchies differ", r)
		}
	}
}

func TestRecordAndWrite(t *testing.T) {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 10, Theta: 3, L: 2, T: 4, ChurnEdges: 1,
	}, xrand.New(9))
	var buf bytes.Buffer
	if err := RecordAndWrite(&buf, adv, 8); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 8 || got.N() != 10 {
		t.Fatalf("shape %d/%d", got.N(), got.Len())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX\x01"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("CTVG\x07"))); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	orig := recordedHiNet(t, 6)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncate at a spread of offsets; every prefix must error, never
	// panic or succeed.
	for _, cut := range []int{0, 3, 5, 7, 10, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsCorruptRole(t *testing.T) {
	orig := recordedHiNet(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip every byte one at a time in the first quarter and require that
	// Read either errors or returns a structurally sane trace — never
	// panics.
	for i := len(magic) + 1; i < len(data)/4; i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		got, err := Read(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		if got.N() < 0 || got.Len() < 1 {
			t.Fatalf("byte %d: corrupt accepted with insane shape", i)
		}
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	// Hand-craft a header with zero rounds.
	data := append([]byte("CTVG\x01"), 5, 0) // n=5, rounds=0
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("zero-round trace accepted")
	}
}

func BenchmarkWrite(b *testing.B) {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 100, Theta: 30, L: 2, T: 10, Reaffiliations: 3, ChurnEdges: 10,
	}, xrand.New(1))
	tr := ctvg.Record(adv, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 100, Theta: 30, L: 2, T: 10, Reaffiliations: 3, ChurnEdges: 10,
	}, xrand.New(1))
	tr := ctvg.Record(adv, 50)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
