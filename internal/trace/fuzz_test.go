package trace

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/ctvg"
	"repro/internal/xrand"
)

// FuzzRead drives the trace decoder with arbitrary bytes: it must never
// panic, and any trace it does accept must be structurally sane and
// re-encodable.
func FuzzRead(f *testing.F) {
	// Seed corpus: a real encoded trace plus adversarial prefixes.
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 8, Theta: 3, L: 2, T: 3, ChurnEdges: 1,
	}, xrand.New(1))
	var buf bytes.Buffer
	if err := Write(&buf, ctvg.Record(adv, 4)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var dbuf bytes.Buffer
	if err := WriteDelta(&dbuf, ctvg.Record(adv, 4)); err != nil {
		f.Fatal(err)
	}
	f.Add(dbuf.Bytes())
	// A longer multi-phase trace with re-affiliations and edge churn — the
	// kind `hinettrace stats` replays — in both formats, so the fuzzer
	// starts from inputs that exercise delta chains across phase
	// boundaries, not just a single short phase.
	long := adversary.NewHiNet(adversary.HiNetConfig{
		N: 12, Theta: 4, L: 2, T: 4,
		Reaffiliations: 2, ChurnEdges: 3,
	}, xrand.New(7))
	rec := ctvg.Record(long, 12)
	var lbuf, ldbuf bytes.Buffer
	if err := Write(&lbuf, rec); err != nil {
		f.Fatal(err)
	}
	f.Add(lbuf.Bytes())
	if err := WriteDelta(&ldbuf, rec); err != nil {
		f.Fatal(err)
	}
	f.Add(ldbuf.Bytes())
	f.Add([]byte("CTVG\x02"))
	f.Add([]byte("CTVG\x01"))
	f.Add([]byte("CTVG\x01\x05\x01"))
	f.Add([]byte{})
	f.Add([]byte("XXXXXXXX"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr.N() < 0 || tr.Len() < 1 {
			t.Fatalf("accepted insane trace: n=%d rounds=%d", tr.N(), tr.Len())
		}
		// Anything accepted must round-trip.
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.N() != tr.N() || tr2.Len() != tr.Len() {
			t.Fatal("round trip changed shape")
		}
	})
}
