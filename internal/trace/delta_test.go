package trace

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/ctvg"
	"repro/internal/xrand"
)

func TestDeltaRoundTrip(t *testing.T) {
	orig := recordedHiNet(t, 20)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.Len() != orig.Len() {
		t.Fatalf("shape %d/%d vs %d/%d", got.N(), got.Len(), orig.N(), orig.Len())
	}
	for r := 0; r < orig.Len(); r++ {
		if !got.At(r).Equal(orig.At(r)) {
			t.Fatalf("round %d graphs differ", r)
		}
		if !got.HierarchyAt(r).Equal(orig.HierarchyAt(r)) {
			t.Fatalf("round %d hierarchies differ", r)
		}
	}
}

func TestDeltaSmallerOnStableTraces(t *testing.T) {
	// A HiNet trace (stable structure + light churn) must compress well
	// under delta encoding.
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 80, Theta: 20, L: 2, T: 10, Reaffiliations: 2, ChurnEdges: 4,
	}, xrand.New(3))
	tr := ctvg.Record(adv, 60)

	var full, delta bytes.Buffer
	if err := Write(&full, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteDelta(&delta, tr); err != nil {
		t.Fatal(err)
	}
	ratio := float64(delta.Len()) / float64(full.Len())
	if ratio > 0.5 {
		t.Fatalf("delta encoding only reached ratio %.2f (%d vs %d bytes)",
			ratio, delta.Len(), full.Len())
	}
	t.Logf("delta ratio %.2f (%d vs %d bytes)", ratio, delta.Len(), full.Len())
}

func TestDeltaSingleRound(t *testing.T) {
	orig := recordedHiNet(t, 1)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.At(0).Equal(orig.At(0)) {
		t.Fatal("single-round delta trace wrong")
	}
}

func TestDeltaRejectsTruncation(t *testing.T) {
	orig := recordedHiNet(t, 8)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 4, 5, 8, len(data) / 3, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDeltaValidatesStructure(t *testing.T) {
	orig := recordedHiNet(t, 10)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded trace structurally invalid: %v", err)
	}
}

func BenchmarkWriteDelta(b *testing.B) {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 100, Theta: 30, L: 2, T: 10, Reaffiliations: 3, ChurnEdges: 10,
	}, xrand.New(1))
	tr := ctvg.Record(adv, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteDelta(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}
