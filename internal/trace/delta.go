package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/tvg"
)

// Version 2 of the trace format delta-encodes consecutive rounds. HiNet
// traces are dominated by stable structure (the backbone and member stars
// persist for whole phases), so storing per-round edge/role/membership
// diffs against the previous round shrinks traces by an order of magnitude
// on typical adversaries.
//
// Layout (after the shared "CTVG" magic and version byte 2):
//
//	n varint, rounds varint
//	round 0: full encoding (as v1: edges, roles, clusters)
//	round r>0:
//	  removed-edge count varint, then pairs
//	  added-edge count varint, then pairs
//	  role-change count varint, then (node varint, role byte)
//	  cluster-change count varint, then (node varint, cluster+1 varint)
const versionDelta = 2

// WriteDelta serialises a trace in the delta format.
func WriteDelta(w io.Writer, t *ctvg.Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := bw.WriteByte(versionDelta); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(scratch[:], x)
		_, err := bw.Write(scratch[:n])
		return err
	}
	n := t.N()
	rounds := t.Len()
	if err := putUvarint(uint64(n)); err != nil {
		return err
	}
	if err := putUvarint(uint64(rounds)); err != nil {
		return err
	}

	writeEdges := func(es []graph.Edge) error {
		if err := putUvarint(uint64(len(es))); err != nil {
			return err
		}
		for _, e := range es {
			if err := putUvarint(uint64(e.U)); err != nil {
				return err
			}
			if err := putUvarint(uint64(e.V)); err != nil {
				return err
			}
		}
		return nil
	}

	// Round 0: full.
	g0 := t.At(0)
	if err := writeEdges(g0.Edges()); err != nil {
		return err
	}
	h0 := t.HierarchyAt(0)
	for v := 0; v < n; v++ {
		if err := bw.WriteByte(byte(h0.Role[v])); err != nil {
			return err
		}
	}
	for v := 0; v < n; v++ {
		if err := putUvarint(uint64(h0.Cluster[v] + 1)); err != nil {
			return err
		}
	}

	// Rounds 1..: diffs.
	for r := 1; r < rounds; r++ {
		prevG, curG := t.At(r-1), t.At(r)
		var removed, added []graph.Edge
		for _, e := range prevG.Edges() {
			if !curG.HasEdge(e.U, e.V) {
				removed = append(removed, e)
			}
		}
		for _, e := range curG.Edges() {
			if !prevG.HasEdge(e.U, e.V) {
				added = append(added, e)
			}
		}
		if err := writeEdges(removed); err != nil {
			return err
		}
		if err := writeEdges(added); err != nil {
			return err
		}

		prevH, curH := t.HierarchyAt(r-1), t.HierarchyAt(r)
		var roleChanges, clusterChanges []int
		for v := 0; v < n; v++ {
			if prevH.Role[v] != curH.Role[v] {
				roleChanges = append(roleChanges, v)
			}
			if prevH.Cluster[v] != curH.Cluster[v] {
				clusterChanges = append(clusterChanges, v)
			}
		}
		if err := putUvarint(uint64(len(roleChanges))); err != nil {
			return err
		}
		for _, v := range roleChanges {
			if err := putUvarint(uint64(v)); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(curH.Role[v])); err != nil {
				return err
			}
		}
		if err := putUvarint(uint64(len(clusterChanges))); err != nil {
			return err
		}
		for _, v := range clusterChanges {
			if err := putUvarint(uint64(v)); err != nil {
				return err
			}
			if err := putUvarint(uint64(curH.Cluster[v] + 1)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// readDelta decodes the body of a version-2 trace (magic and version
// already consumed).
func readDelta(br *bufio.Reader) (*ctvg.Trace, error) {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	n64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: reading n: %w", err)
	}
	rounds64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: reading rounds: %w", err)
	}
	const limit = 1 << 24
	if n64 > limit || rounds64 > limit {
		return nil, fmt.Errorf("trace: implausible sizes n=%d rounds=%d", n64, rounds64)
	}
	n, rounds := int(n64), int(rounds64)
	if rounds == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}

	readEdgeList := func(g *graph.Graph, add bool, round int) error {
		m64, err := readUvarint()
		if err != nil {
			return fmt.Errorf("trace: round %d edge count: %w", round, err)
		}
		if m64 > uint64(n)*uint64(n) {
			return fmt.Errorf("trace: round %d implausible edge count %d", round, m64)
		}
		for j := uint64(0); j < m64; j++ {
			u64, err := readUvarint()
			if err != nil {
				return fmt.Errorf("trace: round %d edge %d: %w", round, j, err)
			}
			v64, err := readUvarint()
			if err != nil {
				return fmt.Errorf("trace: round %d edge %d: %w", round, j, err)
			}
			if u64 >= uint64(n) || v64 >= uint64(n) {
				return fmt.Errorf("trace: round %d edge %d out of range", round, j)
			}
			if add {
				g.AddEdge(int(u64), int(v64))
			} else {
				g.RemoveEdge(int(u64), int(v64))
			}
		}
		return nil
	}

	snaps := make([]*graph.Graph, rounds)
	hiers := make([]*ctvg.Hierarchy, rounds)

	// Round 0: full.
	g := graph.New(n)
	if err := readEdgeList(g, true, 0); err != nil {
		return nil, err
	}
	h := ctvg.NewHierarchy(n)
	for v := 0; v < n; v++ {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: round 0 roles: %w", err)
		}
		if b > byte(ctvg.Unaffiliated) {
			return nil, fmt.Errorf("trace: round 0 node %d invalid role %d", v, b)
		}
		h.Role[v] = ctvg.Role(b)
	}
	for v := 0; v < n; v++ {
		c64, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: round 0 clusters: %w", err)
		}
		if c64 > uint64(n) {
			return nil, fmt.Errorf("trace: round 0 node %d cluster out of range", v)
		}
		h.Cluster[v] = int(c64) - 1
	}
	snaps[0] = g
	hiers[0] = h

	for r := 1; r < rounds; r++ {
		g = g.Clone()
		if err := readEdgeList(g, false, r); err != nil { // removals
			return nil, err
		}
		if err := readEdgeList(g, true, r); err != nil { // additions
			return nil, err
		}
		h = h.Clone()
		rc64, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: round %d role changes: %w", r, err)
		}
		if rc64 > uint64(n) {
			return nil, fmt.Errorf("trace: round %d implausible role changes", r)
		}
		for j := uint64(0); j < rc64; j++ {
			v64, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: round %d role change %d: %w", r, j, err)
			}
			b, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: round %d role change %d: %w", r, j, err)
			}
			if v64 >= uint64(n) || b > byte(ctvg.Unaffiliated) {
				return nil, fmt.Errorf("trace: round %d role change %d out of range", r, j)
			}
			h.Role[v64] = ctvg.Role(b)
		}
		cc64, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: round %d cluster changes: %w", r, err)
		}
		if cc64 > uint64(n) {
			return nil, fmt.Errorf("trace: round %d implausible cluster changes", r)
		}
		for j := uint64(0); j < cc64; j++ {
			v64, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: round %d cluster change %d: %w", r, j, err)
			}
			c64, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: round %d cluster change %d: %w", r, j, err)
			}
			if v64 >= uint64(n) || c64 > uint64(n) {
				return nil, fmt.Errorf("trace: round %d cluster change %d out of range", r, j)
			}
			h.Cluster[v64] = int(c64) - 1
		}
		snaps[r] = g
		hiers[r] = h
	}
	return ctvg.NewTrace(tvg.NewTrace(snaps), hiers), nil
}
