// Package trace implements a compact binary record/replay format for CTVG
// traces (per-round communication graphs plus cluster hierarchies).
//
// Recorded traces make experiments forensically replayable: an adversary's
// run can be frozen to disk, inspected with cmd/hinettrace, and replayed
// bit-identically against any protocol. The format is self-contained and
// versioned:
//
//	magic "CTVG"  version u8
//	n varint, rounds varint
//	per round:
//	  m varint, then m edge pairs (u varint, v varint)
//	  n role bytes
//	  n cluster varints (value+1, so NoCluster=-1 encodes as 0)
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/tvg"
)

const (
	magic   = "CTVG"
	version = 1
)

// Write serialises a recorded trace.
func Write(w io.Writer, t *ctvg.Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	n := t.N()
	rounds := t.Len()
	if err := putUvarint(uint64(n)); err != nil {
		return err
	}
	if err := putUvarint(uint64(rounds)); err != nil {
		return err
	}
	for r := 0; r < rounds; r++ {
		g := t.At(r)
		edges := g.Edges()
		if err := putUvarint(uint64(len(edges))); err != nil {
			return err
		}
		for _, e := range edges {
			if err := putUvarint(uint64(e.U)); err != nil {
				return err
			}
			if err := putUvarint(uint64(e.V)); err != nil {
				return err
			}
		}
		h := t.HierarchyAt(r)
		for v := 0; v < n; v++ {
			if err := bw.WriteByte(byte(h.Role[v])); err != nil {
				return err
			}
		}
		for v := 0; v < n; v++ {
			if err := putUvarint(uint64(h.Cluster[v] + 1)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write (version 1) or WriteDelta
// (version 2), dispatching on the version byte.
func Read(r io.Reader) (*ctvg.Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:len(magic)])
	}
	switch head[len(magic)] {
	case version:
		return readFull(br)
	case versionDelta:
		return readDelta(br)
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", head[len(magic)])
	}
}

// readFull decodes the body of a version-1 trace.
func readFull(br *bufio.Reader) (*ctvg.Trace, error) {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	n64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: reading n: %w", err)
	}
	rounds64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: reading rounds: %w", err)
	}
	const limit = 1 << 24
	if n64 > limit || rounds64 > limit {
		return nil, fmt.Errorf("trace: implausible sizes n=%d rounds=%d", n64, rounds64)
	}
	n, rounds := int(n64), int(rounds64)
	if rounds == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	snaps := make([]*graph.Graph, rounds)
	hiers := make([]*ctvg.Hierarchy, rounds)
	for ri := 0; ri < rounds; ri++ {
		m64, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: round %d edge count: %w", ri, err)
		}
		if m64 > uint64(n)*uint64(n) {
			return nil, fmt.Errorf("trace: round %d implausible edge count %d", ri, m64)
		}
		g := graph.New(n)
		for j := uint64(0); j < m64; j++ {
			u64, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: round %d edge %d: %w", ri, j, err)
			}
			v64, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: round %d edge %d: %w", ri, j, err)
			}
			if u64 >= uint64(n) || v64 >= uint64(n) {
				return nil, fmt.Errorf("trace: round %d edge %d out of range", ri, j)
			}
			g.AddEdge(int(u64), int(v64))
		}
		h := ctvg.NewHierarchy(n)
		for v := 0; v < n; v++ {
			b, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: round %d roles: %w", ri, err)
			}
			if b > byte(ctvg.Unaffiliated) {
				return nil, fmt.Errorf("trace: round %d node %d invalid role %d", ri, v, b)
			}
			h.Role[v] = ctvg.Role(b)
		}
		for v := 0; v < n; v++ {
			c64, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: round %d clusters: %w", ri, err)
			}
			if c64 > uint64(n) {
				return nil, fmt.Errorf("trace: round %d node %d cluster out of range", ri, v)
			}
			h.Cluster[v] = int(c64) - 1
		}
		snaps[ri] = g
		hiers[ri] = h
	}
	return ctvg.NewTrace(tvg.NewTrace(snaps), hiers), nil
}

// RecordAndWrite materialises `rounds` rounds of a dynamic network and
// writes them in one step.
func RecordAndWrite(w io.Writer, d ctvg.Dynamic, rounds int) error {
	return Write(w, ctvg.Record(d, rounds))
}
