package trace_test

import (
	"bytes"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/ctvg"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Example records a dynamic network, round-trips it through the compact
// delta format, and replays it bit-identically.
func Example() {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 20, Theta: 4, L: 2, T: 5, ChurnEdges: 2,
	}, xrand.New(9))
	original := ctvg.Record(adv, 15)

	var buf bytes.Buffer
	if err := trace.WriteDelta(&buf, original); err != nil {
		panic(err)
	}
	replayed, err := trace.Read(&buf)
	if err != nil {
		panic(err)
	}

	identical := true
	for r := 0; r < original.Len(); r++ {
		if !replayed.At(r).Equal(original.At(r)) ||
			!replayed.HierarchyAt(r).Equal(original.HierarchyAt(r)) {
			identical = false
		}
	}
	fmt.Println("rounds:", replayed.Len(), "bit-identical:", identical)
	// Output: rounds: 15 bit-identical: true
}
