package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Title", "model", "time", "comm")
	tb.AddRow("a", "1", "100")
	tb.AddRow("longer-model", "22", "3")
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	// All data lines equal width (aligned columns, trailing pads).
	if len(lines[2]) == 0 || lines[2][0] != '-' {
		t.Fatalf("missing separator:\n%s", out)
	}
	if !strings.Contains(lines[3], "a") || !strings.Contains(lines[4], "longer-model") {
		t.Fatalf("rows missing:\n%s", out)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len=%d", tb.Len())
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow("1")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("empty title emitted a blank line")
	}
}

func TestAddRowMismatchPanics(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("t", "s", "i", "f")
	tb.AddRowf("x", 42, 0.4567)
	if !strings.Contains(tb.String(), "0.46") {
		t.Fatalf("float not formatted:\n%s", tb.String())
	}
	if !strings.Contains(tb.String(), "42") {
		t.Fatal("int missing")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("plain", `with,comma`)
	tb.AddRow(`with"quote`, "line\nbreak")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"line\nbreak\"\n"
	if got != want {
		t.Fatalf("csv:\n%q\nwant\n%q", got, want)
	}
}

func TestJSON(t *testing.T) {
	tb := NewTable("a title", "col a", "col b")
	tb.AddRow("x", `quote"y`)
	tb.AddRow("1", "2")
	var sb strings.Builder
	if err := tb.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `{"title":"a title","columns":["col a","col b"],` +
		`"rows":[{"col a":"x","col b":"quote\"y"},{"col a":"1","col b":"2"}]}` + "\n"
	if got != want {
		t.Fatalf("json:\n%q\nwant\n%q", got, want)
	}
}

func TestUnicodeAlignment(t *testing.T) {
	tb := NewTable("t", "⌈θ/α⌉", "v")
	tb.AddRow("xxxxx", "1")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// Header and row should be padded to the same visible width; compare
	// rune counts.
	if rl(lines[1]) == 0 {
		t.Fatal("no header")
	}
	if rl(lines[3]) < 5 {
		t.Fatalf("row too short: %q", lines[3])
	}
}

func rl(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

func TestPctRatio(t *testing.T) {
	if Pct(0.463) != "46.3%" {
		t.Fatalf("Pct = %q", Pct(0.463))
	}
	if Ratio(100, 54) != "x0.54" {
		t.Fatalf("Ratio = %q", Ratio(100, 54))
	}
	if Ratio(0, 5) != "-" {
		t.Fatal("Ratio zero guard")
	}
}
