// Package report renders experiment results as aligned text tables and CSV,
// matching the layout of the paper's tables so harness output can be read
// side by side with the publication.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells under a header.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; it panics if the cell count does not match the
// header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.header) {
		panic(fmt.Sprintf("report: row has %d cells, header has %d", len(cells), len(t.header)))
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.2f", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = runeLen(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if l := runeLen(c); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-runeLen(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths)*2 - 2
	for _, w2 := range widths {
		total += w2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas, quotes or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvEscape(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteJSON renders the table as one JSON object with the title, the
// column names in order, and one object per row keyed by column name.
// Cells stay strings — the table layer never re-parses what formatting
// already rendered.
func (t *Table) WriteJSON(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(`{"title":`)
	sb.WriteString(jsonString(t.title))
	sb.WriteString(`,"columns":[`)
	for i, h := range t.header {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(jsonString(h))
	}
	sb.WriteString(`],"rows":[`)
	for i, row := range t.rows {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('{')
		for j, c := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(jsonString(t.header[j]))
			sb.WriteByte(':')
			sb.WriteString(jsonString(c))
		}
		sb.WriteByte('}')
	}
	sb.WriteString("]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func jsonString(s string) string {
	b, _ := json.Marshal(s) // a string never fails to marshal
	return string(b)
}

// String renders the text form.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.WriteText(&sb)
	return sb.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// runeLen counts runes, so the unicode column-math headers (⌈θ/α⌉…) align.
func runeLen(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Pct formats a fraction as a percentage string, e.g. 0.463 -> "46.3%".
func Pct(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}

// Ratio formats b/a as "x0.54" style factors; a of zero yields "-".
func Ratio(a, b float64) string {
	if a == 0 {
		return "-"
	}
	return fmt.Sprintf("x%.2f", b/a)
}
