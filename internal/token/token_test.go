package token

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/xrand"
)

func TestSpread(t *testing.T) {
	rng := xrand.New(1)
	a := Spread(10, 6, rng)
	if a.N() != 10 || a.K != 6 {
		t.Fatalf("n=%d k=%d", a.N(), a.K)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exactly k singleton owners.
	owners := 0
	for _, s := range a.Initial {
		switch s.Len() {
		case 0:
		case 1:
			owners++
		default:
			t.Fatalf("Spread node holds %d tokens", s.Len())
		}
	}
	if owners != 6 {
		t.Fatalf("owners=%d", owners)
	}
}

func TestSpreadKEqualsN(t *testing.T) {
	a := Spread(5, 5, xrand.New(2))
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for v, s := range a.Initial {
		if s.Len() != 1 {
			t.Fatalf("node %d holds %d tokens", v, s.Len())
		}
	}
}

func TestSpreadPanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Spread(3, 4) did not panic")
		}
	}()
	Spread(3, 4, xrand.New(1))
}

func TestSingleSource(t *testing.T) {
	a := SingleSource(8, 5, 3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Initial[3].Len() != 5 {
		t.Fatalf("source holds %d", a.Initial[3].Len())
	}
	for v, s := range a.Initial {
		if v != 3 && !s.Empty() {
			t.Fatalf("node %d not empty", v)
		}
	}
}

func TestRandom(t *testing.T) {
	a := Random(4, 20, xrand.New(3))
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range a.Initial {
		total += s.Len()
	}
	if total != 20 {
		t.Fatalf("total tokens %d", total)
	}
}

func TestValidateRejections(t *testing.T) {
	a := SingleSource(4, 3, 0)
	a.K = 0
	if a.Validate() == nil {
		t.Fatal("k=0 accepted")
	}

	b := SingleSource(4, 3, 0)
	b.Initial[1] = nil
	if b.Validate() == nil {
		t.Fatal("nil set accepted")
	}

	c := SingleSource(4, 3, 0)
	c.Initial[1].Add(7) // out of domain
	if c.Validate() == nil {
		t.Fatal("out-of-domain token accepted")
	}

	d := SingleSource(4, 3, 0)
	d.Initial[0].Remove(2) // token 2 now unassigned
	if d.Validate() == nil {
		t.Fatal("missing token accepted")
	}
}

func TestFull(t *testing.T) {
	a := SingleSource(4, 3, 0)
	f := a.Full()
	if f.Len() != 3 || !f.Contains(0) || !f.Contains(2) || f.Contains(3) {
		t.Fatalf("Full = %v", f)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := SingleSource(4, 3, 0)
	c := a.Clone()
	c.Initial[0].Remove(1)
	if !a.Initial[0].Contains(1) {
		t.Fatal("Clone shares sets")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{63},
		{64},
		{0, 1, 2, 200},
		{5, 70, 500},
	}
	for _, elems := range cases {
		s := bitset.FromSlice(elems)
		buf := EncodeSet(nil, s)
		got, rest, err := DecodeSet(buf)
		if err != nil {
			t.Fatalf("%v: %v", elems, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d leftover bytes", elems, len(rest))
		}
		if !got.Equal(s) {
			t.Fatalf("%v: round trip mismatch: %v", elems, got)
		}
	}
}

func TestCodecConcatenation(t *testing.T) {
	a := bitset.FromSlice([]int{1, 2})
	b := bitset.FromSlice([]int{100})
	buf := EncodeSet(EncodeSet(nil, a), b)
	gotA, rest, err := DecodeSet(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := DecodeSet(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !gotA.Equal(a) || !gotB.Equal(b) {
		t.Fatal("concatenated decode failed")
	}
}

func TestCodecTrimsTrailingZeros(t *testing.T) {
	s := bitset.New(10000) // large capacity, tiny content
	s.Add(1)
	buf := EncodeSet(nil, s)
	if len(buf) > 16 {
		t.Fatalf("encoding not trimmed: %d bytes", len(buf))
	}
}

func TestCodecErrors(t *testing.T) {
	if _, _, err := DecodeSet(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	s := bitset.FromSlice([]int{1, 100})
	buf := EncodeSet(nil, s)
	if _, _, err := DecodeSet(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		s := &bitset.Set{}
		for _, b := range raw {
			s.Add(int(b))
		}
		got, rest, err := DecodeSet(EncodeSet(nil, s))
		return err == nil && len(rest) == 0 && got.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpreadAlwaysValid(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := 1 + int(nRaw%60)
		k := 1 + int(kRaw)%n
		return Spread(n, k, xrand.New(seed)).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintLen(t *testing.T) {
	cases := []uint64{0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, 1 << 20, 1<<63 - 1, ^uint64(0)}
	for _, x := range cases {
		if got, want := UvarintLen(x), len(binary.AppendUvarint(nil, x)); got != want {
			t.Errorf("UvarintLen(%#x) = %d, encoding is %d bytes", x, got, want)
		}
	}
}

func TestEncodedSetSizeMatchesEncoding(t *testing.T) {
	// Trailing zero words are produced by Add-then-Remove; the size
	// arithmetic must apply the same trim the encoder does.
	trimmed := bitset.FromSlice([]int{3, 500})
	trimmed.Remove(500)
	sets := []*bitset.Set{
		{},
		bitset.FromSlice([]int{0}),
		bitset.FromSlice([]int{63, 64, 1000}),
		trimmed,
	}
	for _, s := range sets {
		if got, want := EncodedSetSize(s), len(EncodeSet(nil, s)); got != want {
			t.Errorf("EncodedSetSize(%v) = %d, encoding is %d bytes", s, got, want)
		}
	}
	// nil is sized like the empty set (callers encode nil payloads as empty).
	if got, want := EncodedSetSize(nil), len(EncodeSet(nil, &bitset.Set{})); got != want {
		t.Errorf("EncodedSetSize(nil) = %d, empty encoding is %d bytes", got, want)
	}
}

func TestQuickEncodedSetSize(t *testing.T) {
	f := func(raw []byte) bool {
		s := &bitset.Set{}
		for _, b := range raw {
			s.Add(int(b) * 3) // spread across several words
		}
		return EncodedSetSize(s) == len(EncodeSet(nil, s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
