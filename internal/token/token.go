// Package token defines the k-token dissemination problem instance: the
// token domain, the initial assignment of tokens to nodes, and a compact
// binary codec for token sets used by the trace format.
//
// Following the paper (and Kuhn–Lynch–Oshman), each node receives an
// initial set of tokens drawn from a domain of size k such that every token
// is held by at least one node; the goal is for every node to collect and
// output all k tokens. Token IDs are the dense integers 0..k-1 and are
// mutually comparable, matching the paper's requirement that "each token is
// stamped with a unique id, and the id is comparable with others".
package token

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/xrand"
)

// Assignment is an initial distribution of k tokens over n nodes.
type Assignment struct {
	// K is the size of the token domain.
	K int
	// Initial[v] is the token set node v starts with.
	Initial []*bitset.Set
}

// N returns the number of nodes.
func (a *Assignment) N() int { return len(a.Initial) }

// Validate checks that every token 0..K-1 is held by at least one node and
// that no node holds a token outside the domain.
func (a *Assignment) Validate() error {
	if a.K < 0 {
		return fmt.Errorf("token: k=%d must be non-negative", a.K)
	}
	union := bitset.New(a.K)
	for v, s := range a.Initial {
		if s == nil {
			return fmt.Errorf("token: node %d has nil initial set", v)
		}
		if max := s.Max(); max >= a.K {
			return fmt.Errorf("token: node %d holds out-of-domain token %d (k=%d)", v, max, a.K)
		}
		union.UnionWith(s)
	}
	if union.Len() != a.K {
		return fmt.Errorf("token: only %d of %d tokens assigned", union.Len(), a.K)
	}
	return nil
}

// Full returns the complete token set {0..K-1}.
func (a *Assignment) Full() *bitset.Set {
	s := bitset.New(a.K)
	for t := 0; t < a.K; t++ {
		s.Add(t)
	}
	return s
}

// Clone returns a deep copy (initial sets are copied, so a run cannot
// corrupt the assignment).
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{K: a.K, Initial: make([]*bitset.Set, len(a.Initial))}
	for v, s := range a.Initial {
		c.Initial[v] = s.Clone()
	}
	return c
}

// Spread assigns k tokens to k distinct nodes chosen uniformly (one token
// each); remaining nodes start empty. Requires k <= n.
func Spread(n, k int, rng *xrand.Rand) *Assignment {
	if k > n {
		panic(fmt.Sprintf("token: Spread needs k <= n (k=%d, n=%d)", k, n))
	}
	a := empty(n, k)
	owners := rng.Perm(n)[:k]
	for t, v := range owners {
		a.Initial[v].Add(t)
	}
	return a
}

// SingleSource assigns all k tokens to one node; everyone else starts
// empty.
func SingleSource(n, k, src int) *Assignment {
	a := empty(n, k)
	for t := 0; t < k; t++ {
		a.Initial[src].Add(t)
	}
	return a
}

// Empty returns an assignment with no initial tokens (K = 0): every node
// starts with an empty set. It exists for pure-arrival steady-state runs
// (sim.Options.Arrivals), where all traffic enters through the arrival
// process rather than an initial batch.
func Empty(n int) *Assignment { return empty(n, 0) }

// Random gives every token to a uniformly chosen owner (independently), so
// a node may own several tokens and k may exceed n.
func Random(n, k int, rng *xrand.Rand) *Assignment {
	a := empty(n, k)
	for t := 0; t < k; t++ {
		a.Initial[rng.Intn(n)].Add(t)
	}
	return a
}

func empty(n, k int) *Assignment {
	a := &Assignment{K: k, Initial: make([]*bitset.Set, n)}
	for v := range a.Initial {
		a.Initial[v] = bitset.New(k)
	}
	return a
}

// --- binary codec ---

// EncodeSet appends a length-prefixed little-endian encoding of a token set
// to buf and returns the extended buffer. The encoding is the packed word
// array trimmed of trailing zero words.
func EncodeSet(buf []byte, s *bitset.Set) []byte {
	words := s.Words()
	// Trim trailing zero words for compactness.
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, w := range words[:n] {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// UvarintLen returns the number of bytes binary.AppendUvarint emits for x.
func UvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// EncodedSetSize returns len(EncodeSet(nil, s)) by arithmetic, without
// producing the encoding. A nil set is treated as empty.
func EncodedSetSize(s *bitset.Set) int {
	var words []uint64
	if s != nil {
		words = s.Words()
	}
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	return UvarintLen(uint64(n)) + 8*n
}

// DecodeSet reads a token set encoded by EncodeSet from buf, returning the
// set and the remaining bytes.
func DecodeSet(buf []byte) (*bitset.Set, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("token: truncated set header")
	}
	buf = buf[sz:]
	// Compare by division: n*8 can wrap for adversarial word counts, which
	// would slip a huge allocation past the length check.
	if n > uint64(len(buf))/8 {
		return nil, nil, fmt.Errorf("token: truncated set body (want %d words, have %d bytes)", n, len(buf))
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	s := &bitset.Set{}
	s.SetWords(words)
	return s, buf[n*8:], nil
}
