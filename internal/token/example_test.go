package token_test

import (
	"fmt"

	"repro/internal/token"
	"repro/internal/xrand"
)

// Example sets up a k-token dissemination instance: 4 tokens spread over
// 10 nodes, one per owner, validated against the problem definition.
func Example() {
	a := token.Spread(10, 4, xrand.New(1))
	fmt.Println("valid:", a.Validate() == nil)
	total := 0
	for _, s := range a.Initial {
		total += s.Len()
	}
	fmt.Println("tokens assigned:", total)
	fmt.Println("goal:", a.Full())
	// Output:
	// valid: true
	// tokens assigned: 4
	// goal: {0, 1, 2, 3}
}
