// Package core implements the paper's contribution: the hierarchical
// k-token dissemination algorithms for (T, L)-HiNet dynamic networks.
//
//   - Alg1 is Algorithm 1 (Fig. 4): M phases of T rounds; members upload
//     the max-ID token their head does not yet know, one per round;
//     heads and gateways pipeline-broadcast the min-ID token not yet sent
//     this phase. Theorem 1: with T >= k + α·L, all nodes hold all k
//     tokens after M >= θ/α + 1 phases.
//   - Alg1 with StableHeads set is the Remark 1 variant for an ∞-interval
//     stable head set: members upload only during the first phase and
//     never re-upload after re-affiliation; terminates in |V_h|/α + 1
//     phases.
//   - Alg2 is Algorithm 2 (Fig. 5) for the worst-case (1, L)-HiNet:
//     heads/gateways broadcast their entire token set every round, members
//     send their entire set only upon (re-)affiliation. Theorems 2-4 give
//     round bounds of n-1, θ/α + 1 and θ·L + 1 under increasingly strong
//     assumptions.
//   - Both algorithms accept a Failover configuration that adds the
//     self-healing paths (heartbeats, head handover, flood fallback) for
//     networks whose heads can crash; see Failover.
//
// Every node is a sim.Node state machine driven purely by its local view
// (round number, own role, current head), so the algorithms run unchanged
// on scripted HiNet adversaries and on mobility-driven hierarchies.
package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/sim"
	"repro/internal/token"
)

// Alg1 is Algorithm 1: hierarchical k-token dissemination in (T, L)-HiNet.
type Alg1 struct {
	// T is the phase length in rounds (Theorem 1 requires T >= k + α·L).
	T int
	// StableHeads enables the Remark 1 optimisation, valid when the head
	// set is ∞-interval stable: members upload only during phase 0.
	StableHeads bool
	// Failover, when non-nil, enables the self-healing variant: relay
	// heartbeats, member-side head-failure detection with handover, flood
	// fallback, and phase-boundary retransmission of unacknowledged
	// uploads (loss tolerance). See Failover for the mechanism.
	Failover *Failover
	// UploadLowFirst is an ABLATION switch, not part of the paper's
	// design: members upload the MIN-ID unknown token instead of the
	// paper's max-ID rule. The paper's choice is deliberate: heads
	// broadcast min-first, so members working max-first approach the head
	// from the opposite end of the ID space and rarely upload a token the
	// head is about to broadcast anyway. The ablation quantifies that
	// collision-avoidance (see BenchmarkAblationUploadOrder).
	UploadLowFirst bool
	// Promiscuous is an ABLATION switch, not part of the paper's design:
	// members absorb relay broadcasts from any neighbour instead of only
	// their own cluster head. The paper's pseudo code restricts members
	// to "receive t' from its cluster head"; this flag measures what that
	// restriction costs (it can only speed things up, never add cost,
	// since members transmit no more either way). TR bookkeeping still
	// tracks only the own head's broadcasts, so upload suppression is
	// unchanged. Failover mode implies the same absorption rule — an
	// orphaned member's only token source is a foreign relay.
	Promiscuous bool
}

// Name implements sim.Protocol.
func (p Alg1) Name() string {
	suffix := ""
	if p.Failover != nil {
		suffix = "-failover"
	}
	if p.StableHeads {
		return fmt.Sprintf("hinet-alg1-stable%s(T=%d)", suffix, p.T)
	}
	return fmt.Sprintf("hinet-alg1%s(T=%d)", suffix, p.T)
}

// Nodes implements sim.Protocol.
func (p Alg1) Nodes(assign *token.Assignment) []sim.Node {
	if p.T <= 0 {
		panic("core: Alg1 requires T > 0")
	}
	if p.Failover != nil {
		p.Failover.window() // validate up front
	}
	nodes := make([]sim.Node, assign.N())
	for v := range nodes {
		nodes[v] = &alg1Node{
			id:       v,
			proto:    p,
			fo:       p.Failover,
			ta:       assign.Initial[v].Clone(),
			ts:       bitset.New(assign.K),
			tr:       bitset.New(assign.K),
			lastHead: ctvg.NoCluster,
			ver:      1,
		}
	}
	return nodes
}

// Theorem1T returns the phase length Theorem 1 requires: T = k + α·L.
func Theorem1T(k, alpha, L int) int { return k + alpha*L }

// Theorem1Phases returns the phase count Theorem 1 requires:
// M = ⌈θ/α⌉ + 1.
func Theorem1Phases(theta, alpha int) int { return ceilDiv(theta, alpha) + 1 }

// Remark1Phases returns the phase count of the Remark 1 variant:
// M = ⌈|V_h|/α⌉ + 1 where heads is the (constant) number of serving heads.
func Remark1Phases(heads, alpha int) int { return ceilDiv(heads, alpha) + 1 }

func ceilDiv(a, b int) int {
	if b <= 0 {
		panic("core: non-positive divisor")
	}
	return (a + b - 1) / b
}

// alg1Node is the per-node state machine of Algorithm 1. The three sets
// are exactly the paper's: ta — tokens ever collected (TA); ts — tokens
// sent in the current phase (relay) or sent to the current head (member)
// (TS); tr — tokens received from the current head (TR, members only).
//
// The failover fields are volatile repair state: sinceHead / sinceAnyRelay
// count consecutive rounds of relay silence, acting marks a member serving
// as stand-in head, flooding marks a node that has abandoned the hierarchy.
type alg1Node struct {
	id    int
	proto Alg1
	fo    *Failover

	ta *bitset.Set
	ts *bitset.Set
	tr *bitset.Set

	lastHead int

	// The silence counters are int32 deliberately: together with the four
	// flags and ver they pack the delta-delivery state into the space the
	// pre-delta struct already occupied, keeping the 1000-node benchmark's
	// per-run node footprint at the BENCH_PR2 size class.
	sinceHead     int32
	sinceAnyRelay int32
	wasRelay      bool
	started       bool
	acting        bool
	flooding      bool

	// ver is the monotone content version of ta: bumped whenever ta gains
	// an element, stamped onto full-TA payloads (floods). seen records, per
	// sender, the highest stamp whose payload was absorbed; both survive
	// OnRecover — ta does too, so the subset guarantee behind the delta
	// skip keeps holding across an outage, and resetting ver would let one
	// (sender, version) pair name two different sets. seen is allocated
	// lazily on the first versioned delivery, so fault-free Algorithm 1
	// runs (whose payloads are all single tokens) never pay for it.
	ver  uint32
	seen map[int]uint32
}

// absorb unions a payload into TA, keeping the content version stamp in
// step. Every TA union must route through it.
func (n *alg1Node) absorb(t *bitset.Set) {
	if n.ta.UnionChanged(t) {
		n.ver++
	}
}

// skipDelta reports whether a versioned payload is provably a subset of TA
// already: the sender's stamps are monotone in content, so once version V
// from a sender is absorbed, anything it stamps <= V is contained in TA —
// which never shrinks. On a fresh (sender, version) the stamp is recorded
// and the caller unions. Skipping elides only the idempotent union; all
// other bookkeeping a message drives must run before this check.
func (n *alg1Node) skipDelta(v sim.View, m *sim.Message) bool {
	if m.Version == 0 || !v.DeltaEnabled() {
		return false
	}
	if n.seen == nil {
		n.seen = make(map[int]uint32)
	}
	if n.seen[m.From] >= m.Version {
		return true
	}
	n.seen[m.From] = m.Version
	return false
}

// Send implements sim.Node.
func (n *alg1Node) Send(v sim.View) *sim.Message {
	relay := v.Role == ctvg.Head || v.Role == ctvg.Gateway

	// Role transitions invalidate the bookkeeping sets: a promoted member
	// must re-broadcast from scratch; a demoted relay starts a fresh
	// member conversation with its head. The clustering layer outranks any
	// acting-head stand-in.
	if n.started && relay != n.wasRelay {
		n.ts.Clear()
		n.tr.Clear()
		n.lastHead = ctvg.NoCluster
		n.acting = false
	}
	n.wasRelay = relay
	n.started = true

	if n.flooding {
		return n.sendFlood(v)
	}
	if relay {
		return n.sendRelay(v)
	}
	if v.Role == ctvg.Member {
		if n.fo != nil {
			if m, handled := n.memberFailover(v); handled {
				return m
			}
		}
		return n.sendMember(v)
	}
	return nil // unaffiliated nodes are silent under Algorithm 1
}

// memberFailover runs the resilient member's repair state machine before
// the normal Fig. 4 member logic. It returns handled = true when the node
// acted as a stand-in (or escalated) this round.
func (n *alg1Node) memberFailover(v sim.View) (msg *sim.Message, handled bool) {
	if v.Head == ctvg.NoCluster {
		return nil, false
	}
	if v.Head != n.lastHead {
		// Re-affiliated by the clustering layer: the silence record is
		// about the old head and means nothing for the new one.
		n.sinceHead, n.sinceAnyRelay = 0, 0
		n.acting = false
		return nil, false
	}
	if int(n.sinceHead) >= n.fo.floodAfter() {
		n.flooding = true
		v.Note(sim.NoteFloodFallback)
		return n.sendFlood(v), true
	}
	if n.acting {
		if n.sinceHead == 0 {
			// The real head is audible again (crash-recovery): stand down
			// and re-open a fresh member conversation with it.
			n.acting = false
			n.ts.Clear()
			n.tr.Clear()
			n.lastHead = ctvg.NoCluster
			return nil, false
		}
		return n.sendRelay(v), true
	}
	if int(n.sinceHead) >= n.fo.window() && int(n.sinceAnyRelay) >= n.fo.window() {
		// The head is gone and no other relay is audible either: there is
		// nobody better placed, so serve the cluster ourselves. TS becomes
		// relay bookkeeping (tokens broadcast this phase) from here on.
		n.acting = true
		v.Note(sim.NoteHandover)
		n.ts.Clear()
		return n.sendRelay(v), true
	}
	return nil, false
}

// sendRelay implements the head/gateway side of Fig. 4: broadcast the
// min-ID token not yet sent this phase; TS is emptied at each phase
// boundary. In failover mode an idle relay broadcasts an empty heartbeat
// (cost 0) so that silence always means failure.
func (n *alg1Node) sendRelay(v sim.View) *sim.Message {
	if v.Round%n.proto.T == 0 {
		n.ts.Clear()
	}
	t := n.ta.MinNotIn(n.ts)
	if t < 0 {
		if n.fo == nil {
			return nil
		}
		m := v.NewMessage()
		m.To = sim.NoAddr
		m.Kind = sim.KindRelay
		m.Tokens = v.NewSet()
		return m
	}
	n.ts.Add(t)
	payload := v.NewSet()
	payload.Add(t)
	m := v.NewMessage()
	m.To = sim.NoAddr
	m.Kind = sim.KindRelay
	m.Tokens = payload
	return m
}

// sendMember implements the member side of Fig. 4: on a head change, empty
// TS and TR; then upload the max-ID token in TA \ (TS ∪ TR), one per
// round. Under StableHeads (Remark 1) uploads happen only in phase 0. In
// failover mode each phase boundary drops unacknowledged uploads from TS
// (TS ∩= TR), so a token whose upload was lost is retransmitted instead of
// being marked sent forever.
func (n *alg1Node) sendMember(v sim.View) *sim.Message {
	if v.Head != n.lastHead {
		n.ts.Clear()
		n.tr.Clear()
		n.lastHead = v.Head
	} else if n.fo != nil && v.Round%n.proto.T == 0 {
		n.ts.IntersectWith(n.tr)
	}
	if v.Head == ctvg.NoCluster {
		return nil
	}
	if n.proto.StableHeads && v.Round >= n.proto.T {
		return nil // Remark 1: never upload after the first phase
	}
	// TA \ (TS ∪ TR) without materialising the union.
	var t int
	if n.proto.UploadLowFirst {
		t = n.ta.MinNotInUnion(n.ts, n.tr)
	} else {
		t = n.ta.MaxNotInUnion(n.ts, n.tr)
	}
	if t < 0 {
		return nil
	}
	n.ts.Add(t)
	payload := v.NewSet()
	payload.Add(t)
	m := v.NewMessage()
	m.To = v.Head
	m.Kind = sim.KindUpload
	m.Tokens = payload
	return m
}

// sendFlood broadcasts the full token set: the KLO-flooding degradation a
// resilient node falls back to when the hierarchy around it has died.
func (n *alg1Node) sendFlood(v sim.View) *sim.Message {
	payload := v.NewSet()
	payload.CopyFrom(n.ta)
	m := v.NewMessage()
	m.To = sim.NoAddr
	m.Kind = sim.KindBroadcast
	m.Tokens = payload
	m.Version = n.ver
	return m
}

// Deliver implements sim.Node.
func (n *alg1Node) Deliver(v sim.View, msgs []*sim.Message) {
	relay := v.Role == ctvg.Head || v.Role == ctvg.Gateway
	heardHead, heardRelay, heardFlood := false, false, false
	for _, m := range msgs {
		switch {
		case relay && m.Kind == sim.KindRelay:
			// Heads and gateways absorb every relay broadcast heard:
			// this is the KLO pipelining over the head subgraph Υ.
			n.absorb(m.Tokens)
		case relay && m.Kind == sim.KindUpload && m.To == n.id:
			// A head accepts uploads addressed to it.
			n.absorb(m.Tokens)
		case v.Role == ctvg.Member && m.Kind == sim.KindRelay && m.From == v.Head:
			// A member receives tokens only from its own cluster head
			// ("receive t' from its cluster head").
			n.absorb(m.Tokens)
			n.tr.UnionWith(m.Tokens)
		case v.Role == ctvg.Member && m.Kind == sim.KindRelay && (n.proto.Promiscuous || n.fo != nil):
			// Ablation / failover: overhear foreign relays too (TA only —
			// TR keeps tracking the own head so uploads stay correct).
			n.absorb(m.Tokens)
		}
		if n.fo == nil {
			continue
		}
		switch m.Kind {
		case sim.KindRelay:
			heardRelay = true
			if m.From == v.Head {
				heardHead = true
			}
		case sim.KindBroadcast:
			// A flood: absorb it, and join it — flooding is contagious, so
			// one desperate region recruits everyone reachable from it.
			// Floods carry full-TA version stamps, so a repeat of an
			// already-absorbed (sender, version) skips the union — the
			// contagion bookkeeping above it never skips.
			heardFlood = true
			if !n.skipDelta(v, m) {
				n.absorb(m.Tokens)
			}
		case sim.KindUpload:
			// An acting head adopts uploads stranded on the dead head it
			// stands in for.
			if n.acting {
				n.absorb(m.Tokens)
			}
		}
	}
	if n.fo != nil {
		if heardHead {
			n.sinceHead = 0
		} else {
			n.sinceHead++
		}
		if heardRelay {
			n.sinceAnyRelay = 0
		} else {
			n.sinceAnyRelay++
		}
		if heardFlood && !n.flooding {
			n.flooding = true
			v.Note(sim.NoteFloodFallback)
		}
	}
}

// Tokens implements sim.Node.
func (n *alg1Node) Tokens() *bitset.Set { return n.ta }

// Inject implements sim.Injector: the arrival lands in TA like an
// originally assigned token — a member will upload it (it is in neither TS
// nor TR), a relay will pipeline it — and the content stamp advances so
// versioned floods of the grown set are never skipped.
func (n *alg1Node) Inject(r, tok int) {
	if !n.ta.Contains(tok) {
		n.ta.Add(tok)
		n.ver++
	}
}

// Collect implements sim.Collectible: all three of the paper's sets are
// purged. TS/TR must not keep bits for collected slots — a stale TS or TR
// bit on a reused slot would suppress the member upload of the slot's next
// token forever.
func (n *alg1Node) Collect(gc *bitset.Set) {
	n.ta.DifferenceWith(gc)
	n.ts.DifferenceWith(gc)
	n.tr.DifferenceWith(gc)
}

// OnRecover implements sim.Recoverer: volatile protocol state — bookkeeping
// sets, affiliation, repair state — resets; the token set (stable storage)
// survives the outage. The node re-affiliates and re-uploads exactly like a
// freshly re-affiliated member (the paper's Remark 1 scenario).
func (n *alg1Node) OnRecover(int) {
	n.ts.Clear()
	n.tr.Clear()
	n.lastHead = ctvg.NoCluster
	n.wasRelay = false
	n.started = false
	n.sinceHead, n.sinceAnyRelay = 0, 0
	n.acting = false
	n.flooding = false
}

var (
	_ sim.Protocol  = Alg1{}
	_ sim.Recoverer = (*alg1Node)(nil)
)
