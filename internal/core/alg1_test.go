package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/hinet"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

func TestTheorem1Helpers(t *testing.T) {
	if Theorem1T(8, 5, 2) != 18 {
		t.Fatalf("Theorem1T = %d", Theorem1T(8, 5, 2))
	}
	if Theorem1Phases(30, 5) != 7 {
		t.Fatalf("Theorem1Phases = %d", Theorem1Phases(30, 5))
	}
	if Theorem1Phases(31, 5) != 8 {
		t.Fatalf("Theorem1Phases(31,5) = %d", Theorem1Phases(31, 5))
	}
	if Remark1Phases(10, 3) != 5 {
		t.Fatalf("Remark1Phases = %d", Remark1Phases(10, 3))
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ceilDiv(1, 0)
}

func TestAlg1RequiresPositiveT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Alg1{}.Nodes(token.SingleSource(3, 1, 0))
}

func TestAlg1Name(t *testing.T) {
	if (Alg1{T: 5}).Name() != "hinet-alg1(T=5)" {
		t.Fatal("name wrong")
	}
	if (Alg1{T: 5, StableHeads: true}).Name() != "hinet-alg1-stable(T=5)" {
		t.Fatal("stable name wrong")
	}
}

// scriptedTwoClusters builds the Fig. 3-style scenario: member 1 holds the
// only token; it must travel 1 -> head 0 -> gateway 2 -> head 3 -> member 4.
func scriptedTwoClusters() (ctvg.Dynamic, *token.Assignment) {
	g := graph.New(5)
	g.AddEdge(0, 1) // member edge
	g.AddEdge(0, 2) // head-gateway
	g.AddEdge(2, 3) // gateway-head
	g.AddEdge(3, 4) // member edge
	h := ctvg.NewHierarchy(5)
	h.SetHead(0)
	h.SetHead(3)
	h.SetMember(1, 0)
	h.SetGateway(2, 0)
	h.SetMember(4, 3)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	return d, token.SingleSource(5, 1, 1)
}

func TestAlg1ScriptedTokenFlow(t *testing.T) {
	d, assign := scriptedTwoClusters()
	p := Alg1{T: 10}
	var uploads, relays int
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		switch m.Kind {
		case sim.KindUpload:
			uploads++
			if m.From != 1 || m.To != 0 {
				t.Fatalf("unexpected upload %d->%d", m.From, m.To)
			}
		case sim.KindRelay:
			relays++
		}
	}}
	met := sim.MustRunProtocol(d, p, assign, sim.Options{MaxRounds: 10, StopWhenComplete: true, Observer: obs})
	if !met.Complete {
		t.Fatalf("scripted scenario incomplete: %v", met)
	}
	// Flow: round 0 upload 1->0; round 1 head 0 broadcasts (member 1 and
	// gateway 2 hear); round 2 gateway relays (head 3 hears); round 3
	// head 3 broadcasts (member 4 hears). Completion after round 4
	// at the latest (member 1's TR bookkeeping happens round 1).
	if met.CompletionRound > 5 {
		t.Fatalf("completion too slow: %v", met)
	}
	if uploads != 1 {
		t.Fatalf("uploads = %d, want exactly 1", uploads)
	}
	if relays == 0 {
		t.Fatal("no relay broadcasts observed")
	}
}

func TestAlg1MemberDoesNotReuploadKnownTokens(t *testing.T) {
	// Head 0 holds the token; member 1 receives it via TR and must never
	// upload it back.
	g := graph.Star(3, 0)
	h := ctvg.NewHierarchy(3)
	h.SetHead(0)
	h.SetMember(1, 0)
	h.SetMember(2, 0)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(3, 2, 0)
	uploads := 0
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.Kind == sim.KindUpload {
			uploads++
		}
	}}
	met := sim.MustRunProtocol(d, Alg1{T: 6}, assign, sim.Options{MaxRounds: 18, Observer: obs})
	if !met.Complete {
		t.Fatalf("incomplete: %v", met)
	}
	if uploads != 0 {
		t.Fatalf("members uploaded %d tokens the head already had", uploads)
	}
}

// runTheorem1 builds a verified (T,L)-HiNet adversary and runs Algorithm 1
// for exactly the Theorem 1 phase budget.
func runTheorem1(t *testing.T, seed uint64, cfg adversary.HiNetConfig, k, alpha int, stable bool) *sim.Metrics {
	t.Helper()
	T := Theorem1T(k, alpha, cfg.L)
	if cfg.T != T {
		t.Fatalf("test bug: adversary T=%d, theorem needs %d", cfg.T, T)
	}
	adv := adversary.NewHiNet(cfg, xrand.New(seed))
	var phases int
	if stable {
		heads := cfg.Heads
		if heads == 0 {
			heads = cfg.Theta
		}
		phases = Remark1Phases(heads, alpha)
	} else {
		phases = Theorem1Phases(cfg.Theta, alpha)
	}
	// Verify the adversary really is a (T, L)-HiNet for the whole run.
	if err := (hinet.Model{T: T, L: cfg.L}).CheckValid(adv, phases); err != nil {
		t.Fatalf("adversary violates model: %v", err)
	}
	assign := token.Spread(cfg.N, k, xrand.New(seed+1000))
	return sim.MustRunProtocol(adv, Alg1{T: T, StableHeads: stable}, assign,
		sim.Options{MaxRounds: phases * T, StopWhenComplete: true})
}

func TestTheorem1CompletionWithinBound(t *testing.T) {
	// Theorem 1: T >= k + α·L and M >= ⌈θ/α⌉ + 1 phases guarantee
	// completion. Exercised across seeds and parameter points, with
	// member re-affiliation churn and per-round edge churn active.
	k, alpha := 6, 2
	for seed := uint64(0); seed < 8; seed++ {
		cfg := adversary.HiNetConfig{
			N: 40, Theta: 6, L: 2,
			T:              Theorem1T(k, alpha, 2),
			Reaffiliations: 3,
			ChurnEdges:     5,
		}
		met := runTheorem1(t, seed, cfg, k, alpha, false)
		if !met.Complete {
			t.Fatalf("seed %d: incomplete within Theorem 1 bound: %v", seed, met)
		}
	}
}

func TestTheorem1L3(t *testing.T) {
	k, alpha := 4, 1
	for seed := uint64(0); seed < 4; seed++ {
		cfg := adversary.HiNetConfig{
			N: 50, Theta: 5, L: 3,
			T:              Theorem1T(k, alpha, 3),
			Reaffiliations: 2,
			ChurnEdges:     4,
		}
		met := runTheorem1(t, seed, cfg, k, alpha, false)
		if !met.Complete {
			t.Fatalf("seed %d: incomplete: %v", seed, met)
		}
	}
}

func TestTheorem1WithHeadChurn(t *testing.T) {
	// Head churn within the θ pool: Theorem 1 still applies since the
	// hierarchy is stable within each phase.
	k, alpha := 5, 2
	for seed := uint64(0); seed < 6; seed++ {
		cfg := adversary.HiNetConfig{
			N: 45, Theta: 8, Heads: 5, L: 2,
			T:              Theorem1T(k, alpha, 2),
			Reaffiliations: 2,
			HeadChurn:      1,
			ChurnEdges:     4,
		}
		met := runTheorem1(t, seed, cfg, k, alpha, false)
		if !met.Complete {
			t.Fatalf("seed %d: incomplete: %v", seed, met)
		}
	}
}

func TestRemark1StableHeadsCompletes(t *testing.T) {
	k, alpha := 6, 2
	for seed := uint64(0); seed < 6; seed++ {
		cfg := adversary.HiNetConfig{
			N: 40, Theta: 6, L: 2,
			T:              Theorem1T(k, alpha, 2),
			Reaffiliations: 3, // members still churn; heads do not
			ChurnEdges:     5,
		}
		met := runTheorem1(t, seed, cfg, k, alpha, true)
		if !met.Complete {
			t.Fatalf("seed %d: Remark 1 variant incomplete: %v", seed, met)
		}
	}
}

func TestRemark1ReducesMemberUploads(t *testing.T) {
	// The Remark 1 variant must spend strictly fewer upload tokens than
	// plain Algorithm 1 when members re-affiliate (re-affiliating members
	// re-upload their whole TA under Algorithm 1, never under Remark 1).
	k, alpha := 6, 2
	cfg := adversary.HiNetConfig{
		N: 40, Theta: 6, L: 2,
		T:              Theorem1T(k, alpha, 2),
		Reaffiliations: 6,
		ChurnEdges:     5,
	}
	phases := Theorem1Phases(cfg.Theta, alpha)
	T := cfg.T
	run := func(stable bool) *sim.Metrics {
		adv := adversary.NewHiNet(cfg, xrand.New(42))
		assign := token.Spread(cfg.N, k, xrand.New(43))
		return sim.MustRunProtocol(adv, Alg1{T: T, StableHeads: stable}, assign,
			sim.Options{MaxRounds: phases * T})
	}
	plain := run(false)
	stable := run(true)
	if !plain.Complete || !stable.Complete {
		t.Fatalf("runs incomplete: plain=%v stable=%v", plain, stable)
	}
	up, us := plain.TokensByKind[sim.KindUpload], stable.TokensByKind[sim.KindUpload]
	if us >= up {
		t.Fatalf("Remark 1 uploads %d not below plain %d", us, up)
	}
}

func TestAlg1UnaffiliatedNodesSilent(t *testing.T) {
	g := graph.Path(3)
	h := ctvg.NewHierarchy(3) // everyone unaffiliated
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(3, 1, 0)
	met := sim.MustRunProtocol(d, Alg1{T: 4}, assign, sim.Options{MaxRounds: 8})
	if met.Messages != 0 {
		t.Fatalf("unaffiliated nodes transmitted %d messages", met.Messages)
	}
}

func TestAlg1RoleTransitionResetsState(t *testing.T) {
	// Round 0-3: node 1 is a member of head 0. Round 4+: node 1 becomes a
	// head itself (0 demoted to its member). Node 1 must start relaying
	// everything it knows, including tokens it already "sent" as a member.
	g := graph.New(2)
	g.AddEdge(0, 1)
	h1 := ctvg.NewHierarchy(2)
	h1.SetHead(0)
	h1.SetMember(1, 0)
	h2 := ctvg.NewHierarchy(2)
	h2.SetHead(1)
	h2.SetMember(0, 1)
	snaps := []*graph.Graph{g, g, g, g, g, g, g, g}
	hier := []*ctvg.Hierarchy{h1, h1, h1, h1, h2, h2, h2, h2}
	d := ctvg.NewTrace(tvg.NewTrace(snaps), hier)

	// Token 0 starts at node 1.
	assign := token.SingleSource(2, 1, 1)
	nodes := Alg1{T: 4}.Nodes(assign)
	met := sim.MustRun(d, nodes, assign, sim.Options{MaxRounds: 8})
	if !met.Complete {
		t.Fatalf("incomplete after role transition: %v", met)
	}
	// As a member node 1 uploaded token 0 (head 0 got it); as a head it
	// must also have broadcast at least once.
	if met.TokensByKind[sim.KindRelay] == 0 {
		t.Fatal("no relay traffic after promotion")
	}
}

func TestAlg1MemberIgnoresForeignHeads(t *testing.T) {
	// Member 2 is affiliated to head 0 but also adjacent to head 1, which
	// holds the token. Per the paper, a member receives only from its own
	// head, so node 2 must not learn the token from head 1's broadcast
	// until head 0 knows it (which never happens here: 0 and 1 are not
	// connected via any relay path).
	g := graph.New(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	h := ctvg.NewHierarchy(3)
	h.SetHead(0)
	h.SetHead(1)
	h.SetMember(2, 0)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(3, 1, 1)
	nodes := Alg1{T: 4}.Nodes(assign)
	sim.MustRun(d, nodes, assign, sim.Options{MaxRounds: 8})
	if nodes[2].Tokens().Contains(0) {
		t.Fatal("member absorbed a broadcast from a foreign head")
	}
}

func TestAlg1RelayPipelineOrder(t *testing.T) {
	// A relay must broadcast tokens in ascending ID order within a phase
	// (min(TA \ TS) each round).
	g := graph.Star(2, 0)
	h := ctvg.NewHierarchy(2)
	h.SetHead(0)
	h.SetMember(1, 0)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(2, 3, 0)
	var order []int
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.Kind == sim.KindRelay && m.From == 0 {
			order = append(order, m.Tokens.Min())
		}
	}}
	sim.MustRunProtocol(d, Alg1{T: 5}, assign, sim.Options{MaxRounds: 3, Observer: obs})
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("relay order %v, want [0 1 2]", order)
	}
}

func TestAlg1MemberUploadsDescendingOrder(t *testing.T) {
	// A member uploads max(TA \ (TS ∪ TR)) each round: descending IDs.
	g := graph.Star(2, 0)
	h := ctvg.NewHierarchy(2)
	h.SetHead(0)
	h.SetMember(1, 0)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(2, 3, 1)
	var order []int
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.Kind == sim.KindUpload {
			order = append(order, m.Tokens.Min())
		}
	}}
	sim.MustRunProtocol(d, Alg1{T: 8}, assign, sim.Options{MaxRounds: 3, Observer: obs})
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("upload order %v, want [2 1 0]", order)
	}
}

func BenchmarkAlg1Table3Point(b *testing.B) {
	// The Table 3 operating point: n=100, θ=30, k=8, α=5, L=2.
	k, alpha := 8, 5
	cfg := adversary.HiNetConfig{
		N: 100, Theta: 30, L: 2,
		T:              Theorem1T(k, alpha, 2),
		Reaffiliations: 3,
		ChurnEdges:     10,
	}
	T := cfg.T
	phases := Theorem1Phases(cfg.Theta, alpha)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := adversary.NewHiNet(cfg, xrand.New(uint64(i)))
		assign := token.Spread(cfg.N, k, xrand.New(uint64(i)+1))
		sim.MustRunProtocol(adv, Alg1{T: T}, assign, sim.Options{MaxRounds: phases * T})
	}
}

// Ensure bitset import is exercised for the helper (compile-time guard).
var _ = bitset.New
