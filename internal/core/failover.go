package core

// Failover configures the self-healing variants of Algorithms 1 and 2.
//
// The paper's algorithms trust the hierarchy: a member talks only to its
// cluster head, so a crashed head silently orphans its whole cluster — the
// cluster's tokens never reach the backbone and the backbone's tokens never
// reach the cluster. The clustering layer cannot help: role assignment is
// part of the (oblivious) network model, which does not observe crashes.
//
// Failover repairs this at the protocol level with three mechanisms, each
// driven only by what a node can hear locally:
//
//   - Heartbeats (Algorithm 1 only): a resilient head or gateway with
//     nothing to relay broadcasts an empty relay message (cost 0 in token
//     units), so head silence means head failure, never head idleness.
//     Algorithm 2's relays broadcast their full set every round and need no
//     separate heartbeat.
//
//   - Handover: a member that has heard nothing from its head for Window
//     rounds — and no other relay either, so there is nobody better placed
//     to defer to — promotes itself to acting head: it starts relaying
//     like a head and absorbs uploads stranded on the dead one. The
//     promotion is reversible: the moment the real head is heard again
//     (crash-recovery), the acting head stands down and re-opens a normal
//     member conversation.
//
//   - Flood fallback: if head silence persists for FloodAfter rounds the
//     node abandons the hierarchy and floods its full token set every
//     round (the KLO baseline the paper degrades to when structure is
//     gone). Flooding is contagious — hearing a flood switches the hearer
//     into flooding too — so one desperate region recruits the nodes
//     around it and completion follows from connectivity alone, at
//     flooding cost. Algorithm 2's acting heads already broadcast full
//     sets, so it needs no separate flood state.
//
// Both repair actions are reported through View.Note (NoteHandover,
// NoteFloodFallback) so runs can be audited round by round.
//
// In a fault-free execution none of the triggers fire (heads are never
// silent for Window rounds thanks to heartbeats) and the resilient
// variants transmit the same token payloads as the originals, plus
// zero-cost heartbeats.
type Failover struct {
	// Window is the number of consecutive silent rounds after which a
	// member considers its head dead. Must be positive. Downtimes shorter
	// than Window are absorbed without any repair action.
	Window int
	// FloodAfter is the number of consecutive silent rounds after which a
	// node escalates from handover to flooding; 0 means 3×Window. Values
	// in (0, Window) are treated as Window: flooding never precedes
	// detection.
	FloodAfter int
}

// window returns the validated detection window.
func (f *Failover) window() int {
	if f.Window <= 0 {
		panic("core: Failover.Window must be positive")
	}
	return f.Window
}

// floodAfter returns the escalation threshold, defaulted and clamped.
func (f *Failover) floodAfter() int {
	w := f.window()
	fa := f.FloodAfter
	if fa <= 0 {
		fa = 3 * w
	}
	if fa < w {
		fa = w
	}
	return fa
}
