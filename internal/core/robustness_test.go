package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// The robustness suite probes the paper's reliable-link assumption with the
// engine's fault injection. Findings (documented, not fixed — the paper's
// model explicitly assumes reliable synchronous delivery):
//
//   - relay traffic is self-healing under loss: heads/gateways retransmit
//     every round (Alg 2) or every phase (Alg 1), so relay-held tokens
//     survive moderate loss;
//   - member uploads are the fragile step: Algorithm 2 sends them once per
//     affiliation, so a lost upload strands a member-held token until the
//     member re-affiliates.

// staticCluster builds a single stable star cluster: head 0, members 1..n-1.
func staticCluster(n int) ctvg.Dynamic {
	g := graph.Star(n, 0)
	h := ctvg.NewHierarchy(n)
	h.SetHead(0)
	for v := 1; v < n; v++ {
		h.SetMember(v, 0)
	}
	return ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
}

func TestAlg2RelayTokensSurviveLoss(t *testing.T) {
	// Token starts at the head; 30% loss; relays rebroadcast every round
	// so every member eventually hears it.
	d := staticCluster(8)
	assign := token.SingleSource(8, 2, 0)
	for seed := uint64(0); seed < 5; seed++ {
		m := sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{
			MaxRounds:        300,
			StopWhenComplete: true,
			Faults:           &sim.Faults{DropProb: 0.3, Seed: seed},
		})
		if !m.Complete {
			t.Fatalf("seed %d: relay-held tokens did not survive 30%% loss: %v", seed, m)
		}
	}
}

func TestAlg2MemberUploadIsTheFragileStep(t *testing.T) {
	// Token starts at a member; the member uploads exactly once. At 90%
	// loss most seeds lose that upload and the token is stranded forever
	// on a static hierarchy — while flooding (which retransmits) always
	// completes eventually under the same loss.
	const n = 8
	d := staticCluster(n)
	assign := token.SingleSource(n, 1, 3) // member 3 holds the token
	stranded := 0
	for seed := uint64(0); seed < 6; seed++ {
		m := sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{
			MaxRounds: 400,
			Faults:    &sim.Faults{DropProb: 0.9, Seed: seed},
		})
		if !m.Complete {
			stranded++
		}
		f := sim.MustRunProtocol(d, baseline.Flood{}, assign, sim.Options{
			MaxRounds:        4000,
			StopWhenComplete: true,
			Faults:           &sim.Faults{DropProb: 0.9, Seed: seed},
		})
		if !f.Complete {
			t.Fatalf("seed %d: flooding failed to complete under loss", seed)
		}
	}
	if stranded == 0 {
		t.Fatal("no seed stranded a member token at 90% loss — fragile step not reproduced")
	}
}

func TestAlg1SurvivesModerateLossOnStableHierarchy(t *testing.T) {
	// Algorithm 1's member keeps uploading TA \ (TS ∪ TR) — but TS marks
	// tokens as sent even when the delivery is dropped, so like Alg 2 it
	// relies on reliable links for uploads. Relay pipelining, however,
	// restarts every phase, so head-held tokens survive loss. Token at
	// the head, 20% loss: must complete (with an inflated budget).
	d := staticCluster(6)
	assign := token.SingleSource(6, 3, 0)
	for seed := uint64(0); seed < 5; seed++ {
		m := sim.MustRunProtocol(d, Alg1{T: 8}, assign, sim.Options{
			MaxRounds:        50 * 8,
			StopWhenComplete: true,
			Faults:           &sim.Faults{DropProb: 0.2, Seed: seed},
		})
		if !m.Complete {
			t.Fatalf("seed %d: Alg1 head-held tokens lost at 20%% loss: %v", seed, m)
		}
	}
}

func TestAlg2SurvivesHeadCrashWithMaintainedClustering(t *testing.T) {
	// A maintained clustering layer (mobility adversary machinery on a
	// static field, zero speed would freeze it — use slow speed) re-elects
	// around a crashed head... crash injection freezes the node but the
	// adversary does not observe crashes, so instead verify the adversary-
	// level resilience: crash a MEMBER and require the rest to finish.
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 30, Theta: 6, L: 2, T: 1, Reaffiliations: 2, ChurnEdges: 3,
	}, xrand.New(4))
	assign := token.Spread(30, 5, xrand.New(5))
	// Choose a crash victim that holds no token so no information dies
	// with it.
	victim := -1
	for v := 0; v < 30; v++ {
		if assign.Initial[v].Empty() {
			victim = v
			break
		}
	}
	m := sim.MustRunProtocol(adv, Alg2{}, assign, sim.Options{
		MaxRounds:        29,
		StopWhenComplete: true,
		Faults:           &sim.Faults{CrashAt: map[int]int{victim: 3}, Seed: 6},
	})
	if !m.Complete {
		t.Fatalf("crash of a token-free member blocked dissemination: %v", m)
	}
}
