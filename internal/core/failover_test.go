package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// staticCliqueCluster builds a single stable cluster on a complete graph:
// head 0, members 1..n-1, every pair adjacent. Unlike staticCluster's star,
// members stay mutually connected when the head dies, so self-healing has a
// network to heal over.
func staticCliqueCluster(n int) ctvg.Dynamic {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	h := ctvg.NewHierarchy(n)
	h.SetHead(0)
	for v := 1; v < n; v++ {
		h.SetMember(v, 0)
	}
	return ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
}

func TestFailoverWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Window <= 0")
		}
	}()
	Alg1{T: 5, Failover: &Failover{}}.Nodes(token.SingleSource(3, 1, 0))
}

func TestFailoverNames(t *testing.T) {
	fo := &Failover{Window: 2}
	if got := (Alg1{T: 7, Failover: fo}).Name(); got != "hinet-alg1-failover(T=7)" {
		t.Fatalf("Alg1 name %q", got)
	}
	if got := (Alg2{Failover: fo}).Name(); got != "hinet-alg2-failover" {
		t.Fatalf("Alg2 name %q", got)
	}
}

func TestFailoverFaultFreeNoSpuriousRepair(t *testing.T) {
	// On a healthy network the repair machinery must never trigger: no
	// handovers, no flood fallback, and completion no later than the plain
	// protocol's.
	d := staticCliqueCluster(8)
	assign := token.Spread(8, 4, xrand.New(1))
	plain := sim.MustRunProtocol(d, Alg1{T: 6}, assign, sim.Options{
		MaxRounds: 60, StopWhenComplete: true,
	})
	fo := sim.MustRunProtocol(d, Alg1{T: 6, Failover: &Failover{Window: 2}}, assign, sim.Options{
		MaxRounds: 60, StopWhenComplete: true,
	})
	if !plain.Complete || !fo.Complete {
		t.Fatalf("fault-free runs incomplete: plain %v, failover %v", plain, fo)
	}
	if fo.Handovers != 0 || fo.FloodFallbacks != 0 {
		t.Fatalf("spurious repair on a healthy network: %d handovers, %d floods",
			fo.Handovers, fo.FloodFallbacks)
	}
	if fo.CompletionRound > plain.CompletionRound {
		t.Fatalf("failover slowed a fault-free run: %d vs %d",
			fo.CompletionRound, plain.CompletionRound)
	}

	p2 := sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{MaxRounds: 60, StopWhenComplete: true})
	f2 := sim.MustRunProtocol(d, Alg2{Failover: &Failover{Window: 2}}, assign, sim.Options{
		MaxRounds: 60, StopWhenComplete: true,
	})
	if !f2.Complete || f2.Handovers != 0 || f2.FloodFallbacks != 0 ||
		f2.CompletionRound > p2.CompletionRound {
		t.Fatalf("Alg2 failover diverges fault-free: plain %v, failover %v (%d handovers)",
			p2, f2, f2.Handovers)
	}
}

func TestAlg1HandoverOnHeadCrash(t *testing.T) {
	// The head dies before it has relayed anything; plain Algorithm 1
	// strands every member-held token, the failover variant promotes an
	// acting head and finishes.
	const n = 8
	d := staticCliqueCluster(n)
	assign := token.SingleSource(n, 3, 1) // member 1 holds all tokens
	crash := &sim.Faults{CrashAt: map[int]int{0: 1}}

	plain := sim.MustRunProtocol(d, Alg1{T: 6}, assign, sim.Options{
		MaxRounds: 120, StopWhenComplete: true, Faults: crash,
	})
	if plain.Complete {
		t.Fatalf("plain Alg1 completed across a dead head: %v", plain)
	}

	m := sim.MustRunProtocol(d, Alg1{T: 6, Failover: &Failover{Window: 2, FloodAfter: 1000}}, assign, sim.Options{
		MaxRounds: 120, StopWhenComplete: true, Faults: crash,
	})
	if !m.Complete {
		t.Fatalf("failover Alg1 did not survive the head crash: %v", m)
	}
	if m.Handovers == 0 {
		t.Fatal("no handover recorded — completion happened some other way")
	}
	if m.FloodFallbacks != 0 {
		t.Fatalf("escalated to flooding (%d) though handover suffices", m.FloodFallbacks)
	}
}

func TestAlg1FloodFallbackEscalation(t *testing.T) {
	// With FloodAfter at its default (3×Window) a permanently dead head
	// eventually pushes the cluster into flooding, which also completes.
	const n = 6
	d := staticCliqueCluster(n)
	// Enough tokens that acting-head pipelining cannot finish before the
	// escalation deadline (floodAfter = 3×1) passes.
	assign := token.SingleSource(n, 6, 1)
	m := sim.MustRunProtocol(d, Alg1{T: 8, Failover: &Failover{Window: 1}}, assign, sim.Options{
		MaxRounds: 100, StopWhenComplete: true,
		Faults: &sim.Faults{CrashAt: map[int]int{0: 0}},
	})
	if !m.Complete {
		t.Fatalf("flood fallback did not complete: %v", m)
	}
	if m.FloodFallbacks == 0 {
		t.Fatal("no flood fallback recorded under a permanently dead head with Window=1")
	}
}

func TestAlg2HandoverOnHeadCrash(t *testing.T) {
	const n = 8
	d := staticCliqueCluster(n)
	assign := token.SingleSource(n, 3, 1)
	crash := &sim.Faults{CrashAt: map[int]int{0: 1}}

	plain := sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{
		MaxRounds: 120, StopWhenComplete: true, Faults: crash,
	})
	if plain.Complete {
		t.Fatalf("plain Alg2 completed across a dead head: %v", plain)
	}

	m := sim.MustRunProtocol(d, Alg2{Failover: &Failover{Window: 2}}, assign, sim.Options{
		MaxRounds: 120, StopWhenComplete: true, Faults: crash,
	})
	if !m.Complete {
		t.Fatalf("failover Alg2 did not survive the head crash: %v", m)
	}
	if m.Handovers == 0 {
		t.Fatal("no handover recorded")
	}
}

func TestAlg1HeadRecoveryStandDown(t *testing.T) {
	// The head crashes holding tokens nobody else has, an acting head takes
	// over, then the real head rejoins (tokens retained on stable storage,
	// volatile state reset) and the stand-ins yield. Completion is
	// impossible before the rejoin, so the run proves both the recovery and
	// the stand-down work.
	const n = 8
	d := staticCliqueCluster(n)
	assign := token.SingleSource(n, 4, 0) // all tokens start at the head
	m := sim.MustRunProtocol(d, Alg1{T: 6, Failover: &Failover{Window: 2, FloodAfter: 1000}}, assign, sim.Options{
		// Crash at round 1: only token 0 was broadcast, tokens 1-3 are down
		// with the head until it rejoins at round 11.
		MaxRounds: 300, StopWhenComplete: true,
		Faults: &sim.Faults{CrashAt: map[int]int{0: 1}, RecoverAfter: map[int]int{0: 10}},
	})
	if !m.Complete {
		t.Fatalf("did not complete across crash + recovery: %v", m)
	}
	if m.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", m.Recoveries)
	}
	if m.Handovers == 0 {
		t.Fatal("outage of 10 rounds with Window=2 produced no handover")
	}
}

func TestCrashRecoveryAtPhaseBoundary(t *testing.T) {
	// Satellite check: crash and recovery landing exactly on phase
	// boundaries (round m·T) must not wedge the phase bookkeeping — the
	// boundary round both clears relay TS and intersects member TS with TR,
	// and the recovering node re-enters exactly there.
	const n, T = 8, 6
	d := staticCliqueCluster(n)
	for _, who := range []int{0, 3} { // the head, then a member
		assign := token.Spread(n, 4, xrand.New(5))
		proto := Alg1{T: T, Failover: &Failover{Window: 2, FloodAfter: 1000}}
		nodes := proto.Nodes(assign)
		// Fixed horizon, no early stop: the run is forced through the crash
		// at round T, the downtime, the rejoin at round 2T and several
		// post-recovery phases, whatever round dissemination finishes in.
		m := sim.MustRun(d, nodes, assign, sim.Options{
			MaxRounds: 8 * T,
			Faults: &sim.Faults{
				CrashAt:      map[int]int{who: T}, // falls exactly at the phase-1 boundary
				RecoverAfter: map[int]int{who: T}, // rejoins exactly at the next one (round 2T)
			},
		})
		if !m.Complete {
			t.Fatalf("node %d: phase-boundary crash/recovery wedged the run: %v", who, m)
		}
		if m.Recoveries != 1 {
			t.Fatalf("node %d: recoveries = %d, want 1", who, m.Recoveries)
		}
		// Stable storage: the rejoined node kept its pre-crash tokens and
		// caught back up to the full set.
		for v, node := range nodes {
			if node.Tokens().Len() != assign.K {
				t.Fatalf("node %d (crash victim %d): final set %v incomplete", v, who, node.Tokens())
			}
		}
	}
}

func TestAlg1ResilientRepairsLostUploads(t *testing.T) {
	// Plain Algorithm 1 marks an uploaded token sent even when the delivery
	// is dropped, stranding it forever (see robustness_test.go). The
	// failover variant re-arms unacknowledged uploads at each phase
	// boundary (TS ∩= TR), so member-held tokens survive heavy loss.
	const n = 6
	d := staticCliqueCluster(n)
	assign := token.SingleSource(n, 1, 3) // member 3 holds the only token
	stranded := 0
	for seed := uint64(0); seed < 6; seed++ {
		faults := &sim.Faults{DropProb: 0.9, Seed: seed}
		plain := sim.MustRunProtocol(d, Alg1{T: 5}, assign, sim.Options{
			MaxRounds: 400, Faults: faults,
		})
		if !plain.Complete {
			stranded++
		}
		res := sim.MustRunProtocol(d, Alg1{T: 5, Failover: &Failover{Window: 3, FloodAfter: 1000}}, assign, sim.Options{
			MaxRounds: 2000, StopWhenComplete: true, Faults: faults,
		})
		if !res.Complete {
			t.Fatalf("seed %d: resilient Alg1 lost the member token at 90%% loss: %v", seed, res)
		}
	}
	if stranded == 0 {
		t.Fatal("plain Alg1 never stranded the upload — the comparison is vacuous")
	}
}

func TestAlg2ImplicitNACKRepairsLostUploads(t *testing.T) {
	// Algorithm 2's one-shot upload is its fragile step. In failover mode
	// the head's full-set broadcast acts as an implicit NACK: a member that
	// sees the head still missing its tokens after the grace window
	// re-uploads.
	const n = 6
	d := staticCliqueCluster(n)
	assign := token.SingleSource(n, 1, 3)
	stranded := 0
	for seed := uint64(0); seed < 6; seed++ {
		faults := &sim.Faults{DropProb: 0.9, Seed: seed}
		plain := sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{
			MaxRounds: 400, Faults: faults,
		})
		if !plain.Complete {
			stranded++
		}
		res := sim.MustRunProtocol(d, Alg2{Failover: &Failover{Window: 3}}, assign, sim.Options{
			MaxRounds: 2000, StopWhenComplete: true, Faults: faults,
		})
		if !res.Complete {
			t.Fatalf("seed %d: failover Alg2 lost the member token at 90%% loss: %v", seed, res)
		}
	}
	if stranded == 0 {
		t.Fatal("plain Alg2 never stranded the upload — the comparison is vacuous")
	}
}

func TestTheorem1HoldsFaultFreeAndDegradesBoundedly(t *testing.T) {
	// Satellite conformance check. Fault-free, the resilient variant must
	// still meet Theorem 1's budget of M = ⌈θ/α⌉ + 1 phases of T rounds
	// (the repair paths are inert without faults, so the theorem's proof
	// carries over). Under 5% i.i.d. loss the bound no longer applies —
	// but completion must degrade by at most an asserted slack factor, not
	// collapse.
	const n, k, alpha, L, theta = 60, 6, 2, 2, 8
	T := Theorem1T(k, alpha, L)
	budget := Theorem1Phases(theta, alpha) * T
	const slack = 4 // lossy runs may take up to 4x the theorem budget

	for seed := uint64(0); seed < 3; seed++ {
		mk := func() ctvg.Dynamic {
			return adversary.NewHiNet(adversary.HiNetConfig{
				N: n, Theta: theta, L: L, T: T, Reaffiliations: 3, ChurnEdges: 4,
			}, xrand.New(seed))
		}
		assign := token.Spread(n, k, xrand.New(seed+100))
		proto := Alg1{T: T, Failover: &Failover{Window: 3, FloodAfter: 1000}}

		clean := sim.MustRunProtocol(mk(), proto, assign, sim.Options{
			MaxRounds: budget, StopWhenComplete: true,
		})
		if !clean.Complete {
			t.Fatalf("seed %d: fault-free resilient Alg1 missed Theorem 1's budget of %d rounds: %v",
				seed, budget, clean)
		}
		if clean.Handovers != 0 || clean.FloodFallbacks != 0 {
			t.Fatalf("seed %d: repair fired without faults (%d handovers, %d floods)",
				seed, clean.Handovers, clean.FloodFallbacks)
		}

		lossy := sim.MustRunProtocol(mk(), proto, assign, sim.Options{
			MaxRounds: slack * budget, StopWhenComplete: true,
			Faults: &sim.Faults{DropProb: 0.05, Seed: seed + 1},
		})
		if !lossy.Complete {
			t.Fatalf("seed %d: 5%% loss pushed completion past %dx the theorem budget (%d rounds): %v",
				seed, slack, slack*budget, lossy)
		}
	}
}

func TestAllHeadsCrashMidPhaseStillDisseminates(t *testing.T) {
	// Acceptance criterion: crash every live cluster head mid-phase; the
	// self-healing path (handover, and flooding if it comes to that) must
	// still deliver all k tokens to every surviving node.
	const n, k, alpha, L, theta = 50, 5, 2, 2, 6
	T := Theorem1T(k, alpha, L)
	for seed := uint64(0); seed < 3; seed++ {
		adv := adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, L: L, T: T, Reaffiliations: 2, ChurnEdges: 8,
		}, xrand.New(seed))
		assign := token.Spread(n, k, xrand.New(seed+200))
		m := sim.MustRunProtocol(adv, Alg1{T: T, Failover: &Failover{Window: 3}}, assign, sim.Options{
			MaxRounds:        60 * T,
			StopWhenComplete: true,
			StallWindow:      20 * T,
			Faults: &sim.Faults{
				Seed:            seed,
				HeadCrashRounds: []int{T + T/2}, // mid-phase decapitation
			},
		})
		if !m.Complete {
			t.Fatalf("seed %d: dissemination died with the head set: %v (stall: %v)", seed, m, m.Stall)
		}
		if m.Handovers == 0 && m.FloodFallbacks == 0 {
			t.Fatalf("seed %d: completed but no repair action recorded — heads not actually crashed?", seed)
		}
	}
}
