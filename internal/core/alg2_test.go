package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/cluster"
	"repro/internal/ctvg"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

func TestTheoremRoundHelpers(t *testing.T) {
	if Theorem2Rounds(100) != 99 {
		t.Fatalf("Theorem2Rounds = %d", Theorem2Rounds(100))
	}
	if Theorem3Rounds(30, 5) != 7 {
		t.Fatalf("Theorem3Rounds = %d", Theorem3Rounds(30, 5))
	}
	if Theorem4Rounds(30, 2) != 61 {
		t.Fatalf("Theorem4Rounds = %d", Theorem4Rounds(30, 2))
	}
}

func TestAlg2Name(t *testing.T) {
	if (Alg2{}).Name() != "hinet-alg2" {
		t.Fatal("name wrong")
	}
}

// oneLHiNet builds a (1, L)-HiNet adversary: the hierarchy may change
// every round (T=1), yet every round is internally clustered and connected.
func oneLHiNet(seed uint64, n, theta, L, reaffil int) *adversary.HiNet {
	return adversary.NewHiNet(adversary.HiNetConfig{
		N: n, Theta: theta, L: L, T: 1,
		Reaffiliations: reaffil,
		HeadChurn:      1,
		ChurnEdges:     3,
	}, xrand.New(seed))
}

func TestTheorem2CompletionWithinNMinus1(t *testing.T) {
	// Theorem 2: under 1-interval connectivity, Algorithm 2 completes
	// within n-1 rounds. The (1, L)-HiNet adversary re-shuffles the
	// hierarchy every single round.
	const n, k = 30, 5
	for seed := uint64(0); seed < 8; seed++ {
		adv := oneLHiNet(seed, n, 6, 2, 4)
		// Hypothesis check: every round's snapshot is connected.
		if !tvg.AlwaysConnected(adv, Theorem2Rounds(n)) {
			t.Fatalf("seed %d: adversary not 1-interval connected", seed)
		}
		assign := token.Spread(n, k, xrand.New(seed+500))
		met := sim.MustRunProtocol(adv, Alg2{}, assign,
			sim.Options{MaxRounds: Theorem2Rounds(n), StopWhenComplete: true})
		if !met.Complete {
			t.Fatalf("seed %d: incomplete within n-1 rounds: %v", seed, met)
		}
	}
}

func TestTheorem4StyleBoundWithStableHierarchy(t *testing.T) {
	// With an L-interval stable hierarchy (phases of T=L rounds),
	// Algorithm 2 completes within θ·L + 1 rounds.
	const n, k, theta, L = 40, 6, 6, 2
	for seed := uint64(0); seed < 6; seed++ {
		adv := adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, L: L, T: L,
			Reaffiliations: 2,
			ChurnEdges:     4,
		}, xrand.New(seed))
		assign := token.Spread(n, k, xrand.New(seed+700))
		met := sim.MustRunProtocol(adv, Alg2{}, assign,
			sim.Options{MaxRounds: Theorem4Rounds(theta, L), StopWhenComplete: true})
		if !met.Complete {
			t.Fatalf("seed %d: incomplete within θL+1 rounds: %v", seed, met)
		}
	}
}

func TestAlg2MemberSendsOncePerAffiliation(t *testing.T) {
	// Static hierarchy: every member uploads exactly once, in round 0.
	g := graph.Star(4, 0)
	h := ctvg.NewHierarchy(4)
	h.SetHead(0)
	for v := 1; v < 4; v++ {
		h.SetMember(v, 0)
	}
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.Spread(4, 4, xrand.New(3))
	uploads := 0
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.Kind == sim.KindUpload {
			uploads++
			if r != 0 {
				t.Fatalf("upload in round %d on a static hierarchy", r)
			}
		}
	}}
	met := sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{MaxRounds: 6, Observer: obs})
	if !met.Complete {
		t.Fatalf("incomplete: %v", met)
	}
	if uploads != 3 {
		t.Fatalf("uploads = %d, want 3 (one per member)", uploads)
	}
}

func TestAlg2ReuploadOnHeadChange(t *testing.T) {
	// Member 2 switches from head 0 to head 1 in round 2: it must upload
	// again, to the new head.
	g := graph.New(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1)
	h1 := ctvg.NewHierarchy(3)
	h1.SetHead(0)
	h1.SetHead(1)
	h1.SetMember(2, 0)
	h2 := h1.Clone()
	h2.SetMember(2, 1)
	d := ctvg.NewTrace(
		tvg.NewTrace([]*graph.Graph{g, g, g, g}),
		[]*ctvg.Hierarchy{h1, h1, h2, h2},
	)
	assign := token.SingleSource(3, 2, 2)
	var uploadTargets []int
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.Kind == sim.KindUpload {
			uploadTargets = append(uploadTargets, m.To)
		}
	}}
	sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{MaxRounds: 4, Observer: obs})
	if len(uploadTargets) != 2 || uploadTargets[0] != 0 || uploadTargets[1] != 1 {
		t.Fatalf("upload targets %v, want [0 1]", uploadTargets)
	}
}

func TestAlg2RelaysBroadcastFullSetEveryRound(t *testing.T) {
	g := graph.Star(3, 0)
	h := ctvg.NewHierarchy(3)
	h.SetHead(0)
	h.SetMember(1, 0)
	h.SetMember(2, 0)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(3, 3, 0)
	headBroadcasts := 0
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.Kind == sim.KindRelay && m.From == 0 {
			headBroadcasts++
			if m.Cost() != 3 {
				t.Fatalf("round %d: head broadcast %d tokens, want full set 3", r, m.Cost())
			}
		}
	}}
	sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{MaxRounds: 4, Observer: obs})
	if headBroadcasts != 4 {
		t.Fatalf("head broadcast %d times in 4 rounds", headBroadcasts)
	}
}

func TestAlg2MemberOverhearsAnyRelay(t *testing.T) {
	// Per Fig. 5 members union in everything received from neighbours:
	// member 2 (affiliated to head 0) adjacent to gateway 1 of another
	// cluster must absorb the gateway's broadcast.
	g := graph.New(4)
	g.AddEdge(0, 2) // member edge to its head
	g.AddEdge(1, 2) // adjacency to a foreign gateway
	g.AddEdge(1, 3) // gateway's own head
	h := ctvg.NewHierarchy(4)
	h.SetHead(0)
	h.SetHead(3)
	h.SetGateway(1, 3)
	h.SetMember(2, 0)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(4, 1, 1) // gateway holds the token
	nodes := Alg2{}.Nodes(assign)
	sim.MustRun(d, nodes, assign, sim.Options{MaxRounds: 1})
	if !nodes[2].Tokens().Contains(0) {
		t.Fatal("member did not overhear the gateway broadcast")
	}
}

func TestAlg2UnaffiliatedSilent(t *testing.T) {
	g := graph.Path(3)
	h := ctvg.NewHierarchy(3)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(3, 1, 0)
	met := sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{MaxRounds: 5})
	if met.Messages != 0 {
		t.Fatalf("unaffiliated nodes sent %d messages", met.Messages)
	}
}

func TestAlg2OnMobilityCompletes(t *testing.T) {
	cfg := adversary.MobilityConfig{
		N: 30, Field: geom.Field{W: 60, H: 60}, Radius: 18,
		MinSpeed: 0.5, MaxSpeed: 2,
		Cluster:         cluster.Config{},
		EnsureConnected: true,
	}
	for seed := uint64(0); seed < 4; seed++ {
		adv := adversary.NewMobility(cfg, xrand.New(seed))
		assign := token.Spread(cfg.N, 5, xrand.New(seed+99))
		met := sim.MustRunProtocol(adv, Alg2{}, assign,
			sim.Options{MaxRounds: 4 * cfg.N, StopWhenComplete: true})
		if !met.Complete {
			t.Fatalf("seed %d: incomplete on mobility: %v", seed, met)
		}
	}
}

func BenchmarkAlg2Table3Point(b *testing.B) {
	const n, k = 100, 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := oneLHiNet(uint64(i), n, 30, 2, 10)
		assign := token.Spread(n, k, xrand.New(uint64(i)+1))
		sim.MustRunProtocol(adv, Alg2{}, assign, sim.Options{MaxRounds: n - 1, StopWhenComplete: true})
	}
}
