package core

import (
	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/sim"
	"repro/internal/token"
)

// Alg2 is Algorithm 2 (Fig. 5): k-token dissemination in the worst-case
// (1, L)-HiNet, where only single-round stability is guaranteed.
//
// Heads and gateways broadcast their entire token set every round; a member
// sends its entire set to its cluster head exactly once per affiliation —
// in the first round, and again whenever its cluster head changes. The
// price for tolerating single-round dynamics is that packets carry whole
// sets rather than single tokens.
type Alg2 struct {
	// Failover, when non-nil, enables the self-healing variant: members
	// detect a dead head by its silence (relays broadcast every round, so
	// Algorithm 2 needs no separate heartbeat), promote themselves to
	// acting head when nothing else is audible, and re-upload when a
	// relay's full-set broadcast reveals it is missing tokens they hold —
	// the implicit-NACK path that also repairs lost uploads. See Failover.
	Failover *Failover
}

// Name implements sim.Protocol.
func (p Alg2) Name() string {
	if p.Failover != nil {
		return "hinet-alg2-failover"
	}
	return "hinet-alg2"
}

// Nodes implements sim.Protocol.
func (p Alg2) Nodes(assign *token.Assignment) []sim.Node {
	if p.Failover != nil {
		p.Failover.window() // validate up front
	}
	nodes := make([]sim.Node, assign.N())
	for v := range nodes {
		nodes[v] = &alg2Node{
			id:       v,
			fo:       p.Failover,
			ta:       assign.Initial[v].Clone(),
			lastHead: ctvg.NoCluster,
			needSend: true,
			uploadTo: ctvg.NoCluster,
			ver:      1,
		}
	}
	return nodes
}

// Theorem2Rounds returns the always-sufficient round bound of Theorem 2:
// M = n - 1 under 1-interval connectivity.
func Theorem2Rounds(n int) int { return n - 1 }

// Theorem3Rounds returns Theorem 3's bound: M = ⌈θ/α⌉ + 1 rounds when the
// network has (α·L)-interval cluster head connectivity.
func Theorem3Rounds(theta, alpha int) int { return ceilDiv(theta, alpha) + 1 }

// Theorem4Rounds returns Theorem 4's bound: M = θ·L + 1 rounds when the
// network has an L-interval stable hierarchy.
func Theorem4Rounds(theta, L int) int { return theta*L + 1 }

// alg2Node is the per-node state machine of Algorithm 2. The failover
// fields mirror alg1Node's: silence counters, the acting-head flag, plus
// the re-upload bookkeeping (lastUpload for the implicit-NACK grace
// window, uploadTo for redirecting a repair upload to the relay that
// revealed the gap).
type alg2Node struct {
	id int
	fo *Failover

	ta       *bitset.Set
	lastHead int
	needSend bool // member must (re-)send TA to its current head

	sinceHead     int32
	sinceAnyRelay int32
	acting        bool
	lastUpload    int
	uploadTo      int

	// ver / seen implement delta-aware delivery exactly as in alg1Node:
	// ver is the monotone content version of ta, stamped onto every
	// full-TA payload (relay broadcasts and member uploads alike — both
	// snapshot ta, so one counter versions both); seen records per sender
	// the highest stamp absorbed. Both survive OnRecover, like ta itself.
	// Algorithm 2 broadcasts whole sets every round, so this is where the
	// PR 4 redundancy account showed most unions teach nothing.
	ver  uint32
	seen map[int]uint32
}

// absorb unions a payload into TA, keeping the content version in step.
func (n *alg2Node) absorb(t *bitset.Set) {
	if n.ta.UnionChanged(t) {
		n.ver++
	}
}

// skipDelta is alg1Node.skipDelta's contract verbatim: true means the
// versioned payload is provably already contained in TA, and only the
// union may be elided — NACK subset checks and silence bookkeeping run
// regardless.
func (n *alg2Node) skipDelta(v sim.View, m *sim.Message) bool {
	if m.Version == 0 || !v.DeltaEnabled() {
		return false
	}
	if n.seen == nil {
		n.seen = make(map[int]uint32)
	}
	if n.seen[m.From] >= m.Version {
		return true
	}
	n.seen[m.From] = m.Version
	return false
}

// Send implements sim.Node.
func (n *alg2Node) Send(v sim.View) *sim.Message {
	if v.Role == ctvg.Head || v.Role == ctvg.Gateway {
		n.acting = false
		return n.relayBroadcast(v)
	}
	if v.Role != ctvg.Member {
		return nil
	}
	if n.fo != nil {
		if v.Head != n.lastHead {
			// Re-affiliated: the silence record is about the old head.
			n.sinceHead, n.sinceAnyRelay = 0, 0
			n.acting = false
		} else if n.acting {
			if n.sinceHead == 0 {
				// The real head is audible again (crash-recovery): stand
				// down and re-send our set to it.
				n.acting = false
				n.needSend = true
			} else {
				return n.relayBroadcast(v)
			}
		} else if v.Head != ctvg.NoCluster &&
			int(n.sinceHead) >= n.fo.window() && int(n.sinceAnyRelay) >= n.fo.window() {
			// Head dead, nothing better audible: serve the cluster. An
			// acting head's every-round full-set broadcast doubles as the
			// flood fallback, so Algorithm 2 needs no separate flood state.
			n.acting = true
			v.Note(sim.NoteHandover)
			return n.relayBroadcast(v)
		}
	}
	if v.Head != n.lastHead {
		n.lastHead = v.Head
		n.needSend = true
	}
	if !n.needSend || v.Head == ctvg.NoCluster {
		return nil
	}
	n.needSend = false
	n.lastUpload = v.Round
	to := v.Head
	if n.uploadTo != ctvg.NoCluster {
		to = n.uploadTo
		n.uploadTo = ctvg.NoCluster
	}
	payload := v.NewSet()
	payload.CopyFrom(n.ta)
	m := v.NewMessage()
	m.To = to
	m.Kind = sim.KindUpload
	m.Tokens = payload
	m.Version = n.ver
	return m
}

// relayBroadcast is the head/gateway side of Fig. 5 (also used by acting
// heads): broadcast the entire token set. The payload is a round-scoped
// arena copy of TA, not an aliased pointer: TA keeps growing as deliveries
// come in, while the transmitted snapshot must stay frozen.
func (n *alg2Node) relayBroadcast(v sim.View) *sim.Message {
	payload := v.NewSet()
	payload.CopyFrom(n.ta)
	m := v.NewMessage()
	m.To = sim.NoAddr
	m.Kind = sim.KindRelay
	m.Tokens = payload
	m.Version = n.ver
	return m
}

// Deliver implements sim.Node. Per Fig. 5 every role unions in what it
// hears from neighbours: relays accept broadcasts and uploads addressed to
// them; members accept any overheard relay broadcast. In failover mode a
// relay's full-set broadcast additionally serves as an implicit NACK: a
// member holding tokens the relay lacks schedules a re-upload (after a
// grace window, so an in-flight upload is not repeated).
func (n *alg2Node) Deliver(v sim.View, msgs []*sim.Message) {
	relay := v.Role == ctvg.Head || v.Role == ctvg.Gateway
	heardHead, heardRelay := false, false
	for _, m := range msgs {
		switch {
		case m.Kind == sim.KindRelay:
			if !n.skipDelta(v, m) {
				n.absorb(m.Tokens)
			}
		case relay && m.Kind == sim.KindUpload && m.To == n.id:
			if !n.skipDelta(v, m) {
				n.absorb(m.Tokens)
			}
		case m.Kind == sim.KindUpload && n.acting:
			// An acting head adopts uploads stranded on the dead head.
			if !n.skipDelta(v, m) {
				n.absorb(m.Tokens)
			}
		}
		if n.fo == nil || m.Kind != sim.KindRelay {
			continue
		}
		heardRelay = true
		fromHead := m.From == v.Head
		if fromHead {
			heardHead = true
		}
		if v.Role == ctvg.Member && !n.acting && !n.needSend &&
			(fromHead || int(n.sinceHead) >= n.fo.window()) &&
			v.Round-n.lastUpload >= n.fo.window() &&
			!n.ta.SubsetOf(m.Tokens) {
			n.needSend = true
			if !fromHead {
				n.uploadTo = m.From
			}
		}
	}
	if n.fo != nil {
		if heardHead {
			n.sinceHead = 0
		} else {
			n.sinceHead++
		}
		if heardRelay {
			n.sinceAnyRelay = 0
		} else {
			n.sinceAnyRelay++
		}
	}
}

// Tokens implements sim.Node.
func (n *alg2Node) Tokens() *bitset.Set { return n.ta }

// Inject implements sim.Injector. needSend is re-armed: an Algorithm 2
// member transmits nothing after its one per-affiliation upload, so without
// a fresh upload a token injected at an already-uploaded member would never
// reach the hierarchy.
func (n *alg2Node) Inject(r, tok int) {
	if !n.ta.Contains(tok) {
		n.ta.Add(tok)
		n.ver++
		n.needSend = true
	}
}

// Collect implements sim.Collectible.
func (n *alg2Node) Collect(gc *bitset.Set) {
	n.ta.DifferenceWith(gc)
}

// OnRecover implements sim.Recoverer: volatile state resets, the token set
// survives, and the rejoining member re-uploads to its head — exactly the
// re-affiliation upload path of Fig. 5.
func (n *alg2Node) OnRecover(int) {
	n.lastHead = ctvg.NoCluster
	n.needSend = true
	n.sinceHead, n.sinceAnyRelay = 0, 0
	n.acting = false
	n.lastUpload = 0
	n.uploadTo = ctvg.NoCluster
}

var (
	_ sim.Protocol  = Alg2{}
	_ sim.Recoverer = (*alg2Node)(nil)
)
