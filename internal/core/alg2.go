package core

import (
	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/sim"
	"repro/internal/token"
)

// Alg2 is Algorithm 2 (Fig. 5): k-token dissemination in the worst-case
// (1, L)-HiNet, where only single-round stability is guaranteed.
//
// Heads and gateways broadcast their entire token set every round; a member
// sends its entire set to its cluster head exactly once per affiliation —
// in the first round, and again whenever its cluster head changes. The
// price for tolerating single-round dynamics is that packets carry whole
// sets rather than single tokens.
type Alg2 struct{}

// Name implements sim.Protocol.
func (Alg2) Name() string { return "hinet-alg2" }

// Nodes implements sim.Protocol.
func (Alg2) Nodes(assign *token.Assignment) []sim.Node {
	nodes := make([]sim.Node, assign.N())
	for v := range nodes {
		nodes[v] = &alg2Node{
			id:       v,
			ta:       assign.Initial[v].Clone(),
			lastHead: ctvg.NoCluster,
			needSend: true,
		}
	}
	return nodes
}

// Theorem2Rounds returns the always-sufficient round bound of Theorem 2:
// M = n - 1 under 1-interval connectivity.
func Theorem2Rounds(n int) int { return n - 1 }

// Theorem3Rounds returns Theorem 3's bound: M = ⌈θ/α⌉ + 1 rounds when the
// network has (α·L)-interval cluster head connectivity.
func Theorem3Rounds(theta, alpha int) int { return ceilDiv(theta, alpha) + 1 }

// Theorem4Rounds returns Theorem 4's bound: M = θ·L + 1 rounds when the
// network has an L-interval stable hierarchy.
func Theorem4Rounds(theta, L int) int { return theta*L + 1 }

// alg2Node is the per-node state machine of Algorithm 2.
type alg2Node struct {
	id int

	ta       *bitset.Set
	lastHead int
	needSend bool // member must (re-)send TA to its current head
}

// Send implements sim.Node.
func (n *alg2Node) Send(v sim.View) *sim.Message {
	if v.Role == ctvg.Head || v.Role == ctvg.Gateway {
		// Relays broadcast TA in every round. The broadcast payload is a
		// round-scoped arena copy of TA, not an aliased pointer: TA keeps
		// growing as deliveries come in, while the transmitted snapshot
		// must stay frozen.
		payload := v.NewSet()
		payload.CopyFrom(n.ta)
		m := v.NewMessage()
		m.To = sim.NoAddr
		m.Kind = sim.KindRelay
		m.Tokens = payload
		return m
	}
	if v.Role != ctvg.Member {
		return nil
	}
	if v.Head != n.lastHead {
		n.lastHead = v.Head
		n.needSend = true
	}
	if !n.needSend || v.Head == ctvg.NoCluster {
		return nil
	}
	n.needSend = false
	payload := v.NewSet()
	payload.CopyFrom(n.ta)
	m := v.NewMessage()
	m.To = v.Head
	m.Kind = sim.KindUpload
	m.Tokens = payload
	return m
}

// Deliver implements sim.Node. Per Fig. 5 every role unions in what it
// hears from neighbours: relays accept broadcasts and uploads addressed to
// them; members accept any overheard relay broadcast.
func (n *alg2Node) Deliver(v sim.View, msgs []*sim.Message) {
	relay := v.Role == ctvg.Head || v.Role == ctvg.Gateway
	for _, m := range msgs {
		switch {
		case m.Kind == sim.KindRelay:
			n.ta.UnionWith(m.Tokens)
		case relay && m.Kind == sim.KindUpload && m.To == n.id:
			n.ta.UnionWith(m.Tokens)
		}
	}
}

// Tokens implements sim.Node.
func (n *alg2Node) Tokens() *bitset.Set { return n.ta }

var _ sim.Protocol = Alg2{}
