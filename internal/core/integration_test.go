package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// clusteredStatic turns a random connected topology into a CTVG using the
// real clustering substrate (head election + gateway selection) and holds
// it static — the "deployed clustering layer" integration path, as opposed
// to the scripted HiNet adversary.
func clusteredStatic(t *testing.T, n, m int, rule cluster.Election, seed uint64) (ctvg.Dynamic, *ctvg.Hierarchy, *graph.Graph) {
	t.Helper()
	rng := xrand.New(seed)
	g := graph.RandomConnected(n, m, rng)
	h := cluster.Form(g, cluster.Config{Election: rule})
	if err := h.Validate(g); err != nil {
		t.Fatal(err)
	}
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	return d, h, g
}

// TestAlg1OnFormedClusters runs Algorithm 1 on hierarchies produced by
// each real election rule (MIS lowest-ID, highest-degree, WCDS), not by
// the scripted adversary. Completion must hold with a budget derived from
// the formed hierarchy's own parameters.
func TestAlg1OnFormedClusters(t *testing.T) {
	const n, k = 60, 6
	for _, rule := range []cluster.Election{cluster.LowestID, cluster.HighestDegree, cluster.WCDS} {
		for seed := uint64(0); seed < 4; seed++ {
			d, h, _ := clusteredStatic(t, n, 100, rule, seed)
			theta := len(h.Heads())
			// Static hierarchy: T-interval stable for any T. Budget from
			// Theorem 1 with α=1, L=3 (the worst 1-hop linkage).
			T := Theorem1T(k, 1, 3)
			budget := Theorem1Phases(theta, 1) * T
			assign := token.Spread(n, k, xrand.New(seed+60))
			met := sim.MustRunProtocol(d, Alg1{T: T}, assign,
				sim.Options{MaxRounds: budget, StopWhenComplete: true})
			if !met.Complete {
				t.Fatalf("rule %v seed %d: incomplete (θ=%d): %v", rule, seed, theta, met)
			}
		}
	}
}

// TestAlg1OnFormedClustersBeatsFlooding closes the loop on the paper's
// motivation with the real clustering substrate: fewer token-sends than
// flooding on the same topology and budget.
func TestAlg1OnFormedClustersBeatsFlooding(t *testing.T) {
	const n, k = 80, 8
	d, h, _ := clusteredStatic(t, n, 140, cluster.LowestID, 9)
	theta := len(h.Heads())
	T := Theorem1T(k, 1, 3)
	budget := Theorem1Phases(theta, 1) * T
	assign := token.Spread(n, k, xrand.New(10))

	alg1 := sim.MustRunProtocol(d, Alg1{T: T}, assign, sim.Options{MaxRounds: budget})
	if !alg1.Complete {
		t.Fatalf("alg1 incomplete: %v", alg1)
	}
	flood := sim.MustRunProtocol(d, baseline.Flood{}, assign, sim.Options{MaxRounds: alg1.Rounds})
	if alg1.TokensSent >= flood.TokensSent {
		t.Fatalf("Alg1 on formed clusters (%d) not cheaper than flooding (%d)",
			alg1.TokensSent, flood.TokensSent)
	}
}

// TestAlg2OnMaintainedClusters drives Algorithm 2 through the maintenance
// path: topology perturbed every round, hierarchy incrementally maintained
// (the cluster.Maintain code), dissemination must still complete in n-1
// rounds since every snapshot is connected.
func TestAlg2OnMaintainedClusters(t *testing.T) {
	const n, k = 40, 5
	rng := xrand.New(21)
	// Build a per-round maintained trace: perturb by toggling random
	// extra edges over a stable random tree (always connected).
	backbone := graph.RandomTree(n, rng)
	rounds := Theorem2Rounds(n)
	snaps := make([]*graph.Graph, rounds)
	hiers := make([]*ctvg.Hierarchy, rounds)
	var prev *ctvg.Hierarchy
	for r := 0; r < rounds; r++ {
		g := backbone.Clone()
		for j := 0; j < 8; j++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		var h *ctvg.Hierarchy
		if prev == nil {
			h = cluster.Form(g, cluster.Config{})
		} else {
			h, _ = cluster.Maintain(g, prev, cluster.Config{})
		}
		if err := h.Validate(g); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		snaps[r] = g
		hiers[r] = h
		prev = h
	}
	d := ctvg.NewTrace(tvg.NewTrace(snaps), hiers)
	assign := token.Spread(n, k, xrand.New(22))
	met := sim.MustRunProtocol(d, Alg2{}, assign,
		sim.Options{MaxRounds: rounds, StopWhenComplete: true})
	if !met.Complete {
		t.Fatalf("Alg2 on maintained clusters incomplete: %v", met)
	}
}
